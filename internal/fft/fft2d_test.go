package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randGrid(r *rand.Rand, rows, cols int) []complex128 {
	return randVec(r, rows*cols)
}

func TestPlan2DMatchesSeparableDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {3, 5}, {24, 24}, {16, 8}} {
		rows, cols := dims[0], dims[1]
		p := NewPlan2D(rows, cols)
		x := randGrid(r, rows, cols)

		// Direct 2-D DFT.
		want := make([]complex128, rows*cols)
		for kr := 0; kr < rows; kr++ {
			for kc := 0; kc < cols; kc++ {
				var sum complex128
				for jr := 0; jr < rows; jr++ {
					for jc := 0; jc < cols; jc++ {
						ang := -2 * math.Pi * (float64(kr*jr)/float64(rows) + float64(kc*jc)/float64(cols))
						sum += x[jr*cols+jc] * complex(math.Cos(ang), math.Sin(ang))
					}
				}
				want[kr*cols+kc] = sum
			}
		}
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxDiff(got, want); d > 1e-8*float64(rows*cols) {
			t.Fatalf("%dx%d: 2D FFT differs from direct DFT by %g", rows, cols, d)
		}
	}
}

func TestPlan2DRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{2, 2}, {24, 24}, {7, 9}, {32, 16}} {
		rows, cols := dims[0], dims[1]
		p := NewPlan2D(rows, cols)
		x := randGrid(r, rows, cols)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > 1e-9*float64(rows*cols) {
			t.Fatalf("%dx%d: roundtrip error %g", rows, cols, d)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	rows, cols := 64, 64
	p := NewPlan2D(rows, cols)
	x := randGrid(r, rows, cols)
	serial := append([]complex128(nil), x...)
	parallel := append([]complex128(nil), x...)
	p.Forward(serial)
	p.ForwardParallel(parallel, 4)
	if d := maxDiff(serial, parallel); d != 0 {
		t.Fatalf("parallel forward differs from serial by %g", d)
	}
	p.Inverse(serial)
	p.InverseParallel(parallel, 3)
	if d := maxDiff(serial, parallel); d != 0 {
		t.Fatalf("parallel inverse differs from serial by %g", d)
	}
}

func TestTransformBatch(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	p := NewPlan2D(24, 24)
	const n = 33
	batch := make([][]complex128, n)
	want := make([][]complex128, n)
	for i := range batch {
		batch[i] = randGrid(r, 24, 24)
		want[i] = append([]complex128(nil), batch[i]...)
		p.Forward(want[i])
	}
	p.TransformBatch(batch, false, 4)
	for i := range batch {
		if d := maxDiff(batch[i], want[i]); d != 0 {
			t.Fatalf("batch element %d differs by %g", i, d)
		}
	}
	// Inverse batch returns to (scaled) original.
	p.TransformBatch(batch, true, 0)
}

func TestCenteredRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for _, n := range []int{8, 24, 25} {
		p := NewPlan2D(n, n)
		x := randGrid(r, n, n)
		y := append([]complex128(nil), x...)
		p.ForwardCentered(y)
		p.InverseCentered(y)
		if d := maxDiff(x, y); d > 1e-10*float64(n*n) {
			t.Fatalf("n=%d: centered roundtrip error %g", n, d)
		}
	}
}

func TestCenteredImpulseAtCenterGivesFlatSpectrum(t *testing.T) {
	// An impulse at the image center must transform to a constant
	// (all-ones) uv plane: this is the property the subgrid pipeline
	// relies on for the phase conventions to cancel.
	n := 24
	p := NewPlan2D(n, n)
	x := make([]complex128, n*n)
	x[(n/2)*n+n/2] = 1
	p.ForwardCentered(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-10 {
			t.Fatalf("pixel %d = %v, want 1", i, v)
		}
	}
}

func TestCenteredShiftTheorem2D(t *testing.T) {
	// Moving the impulse one pixel off center multiplies the centered
	// spectrum by a linear phase ramp exp(-2*pi*i*(u)/n).
	n := 16
	p := NewPlan2D(n, n)
	x := make([]complex128, n*n)
	x[(n/2)*n+n/2+1] = 1 // one pixel in +x
	p.ForwardCentered(x)
	for ky := 0; ky < n; ky++ {
		for kx := 0; kx < n; kx++ {
			ang := -2 * math.Pi * float64(kx-n/2) / float64(n)
			want := complex(math.Cos(ang), math.Sin(ang))
			got := x[ky*n+kx]
			if cmplx.Abs(got-want) > 1e-10 {
				t.Fatalf("(%d,%d): got %v want %v", ky, kx, got, want)
			}
		}
	}
}

func TestShift2DRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for _, dims := range [][2]int{{4, 6}, {5, 5}, {24, 24}} {
		rows, cols := dims[0], dims[1]
		x := randGrid(r, rows, cols)
		y := append([]complex128(nil), x...)
		Shift2D(y, rows, cols)
		InverseShift2D(y, rows, cols)
		if maxDiff(x, y) != 0 {
			t.Fatalf("%dx%d: 2D shift roundtrip not exact", rows, cols)
		}
	}
}

func BenchmarkFFTSubgrid24(b *testing.B) {
	benchFFT2D(b, 24)
}

func BenchmarkFFTSubgrid32(b *testing.B) {
	benchFFT2D(b, 32)
}

func BenchmarkFFTSubgrid64(b *testing.B) {
	benchFFT2D(b, 64)
}

func BenchmarkFFTGrid1024(b *testing.B) {
	benchFFT2D(b, 1024)
}

func benchFFT2D(b *testing.B, n int) {
	p := NewPlan2D(n, n)
	x := randGrid(rand.New(rand.NewSource(1)), n, n)
	b.SetBytes(int64(n * n * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFTGrid1024Parallel(b *testing.B) {
	p := NewPlan2D(1024, 1024)
	x := randGrid(rand.New(rand.NewSource(1)), 1024, 1024)
	b.SetBytes(int64(1024 * 1024 * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardParallel(x, 0)
	}
}
