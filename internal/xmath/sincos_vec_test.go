package xmath

import (
	"math"
	"math/rand"
	"testing"
)

// hostTiers enumerates every tier this host can actually execute, so
// the per-tier property tests below cover the full dispatch matrix on
// capable hardware and degrade to the scalar row elsewhere. Forcing a
// tier through IDG_SIMD exercises the same per-tier entry points.
func hostTiers() []SIMDTier {
	tiers := []SIMDTier{SIMDScalar}
	for t := SIMDAVX2; t <= DetectedSIMD(); t++ {
		tiers = append(tiers, t)
	}
	return tiers
}

// TestSincosVecAccuracy: the documented SincosFast bound — 4 float32
// ulps against math.Sincos over the kernel argument range — extends to
// every lane width.
func TestSincosVecAccuracy(t *testing.T) {
	const n = 200001
	const limit = 1e4
	x := make([]float64, n)
	for i := range x {
		x[i] = -limit + 2*limit*float64(i)/float64(n-1)
	}
	sin := make([]float64, n)
	cos := make([]float64, n)
	for _, tier := range hostTiers() {
		sincosVecTier(tier, sin, cos, x)
		maxErr := 0.0
		for i, v := range x {
			sr, cr := math.Sincos(v)
			if d := math.Abs(sin[i] - sr); d > maxErr {
				maxErr = d
			}
			if d := math.Abs(cos[i] - cr); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > 4*6e-8 {
			t.Errorf("tier %v: max error %g exceeds 4 float32 ulps", tier, maxErr)
		}
	}
}

// TestSincosVecTierBitwise: every tier, every batch size and every
// lane position produces bit-identical results to the portable scalar
// sequence — the property that makes kernel output independent of the
// IDG_SIMD override and of batch chopping.
func TestSincosVecTierBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 253} {
		x := make([]float64, n)
		for i := range x {
			x[i] = (rng.Float64() - 0.5) * 2e4
		}
		// Sprinkle exact fold/reduction boundaries.
		if n >= 4 {
			x[0], x[1], x[2], x[3] = 0, math.Pi/2, -math.Pi/2, math.Pi
		}
		wantSin := make([]float64, n)
		wantCos := make([]float64, n)
		for i, v := range x {
			wantSin[i], wantCos[i] = sincosFastFMA(v)
		}
		sin := make([]float64, n)
		cos := make([]float64, n)
		for _, tier := range hostTiers() {
			for i := range sin {
				sin[i], cos[i] = math.NaN(), math.NaN()
			}
			sincosVecTier(tier, sin, cos, x)
			for i := range x {
				if math.Float64bits(sin[i]) != math.Float64bits(wantSin[i]) ||
					math.Float64bits(cos[i]) != math.Float64bits(wantCos[i]) {
					t.Fatalf("tier %v, n=%d, i=%d, x=%g: got (%x, %x), want (%x, %x)",
						tier, n, i, x[i],
						math.Float64bits(sin[i]), math.Float64bits(cos[i]),
						math.Float64bits(wantSin[i]), math.Float64bits(wantCos[i]))
				}
			}
		}
	}
}

// TestSincosVecMatchesScalarFastClass: the fused sequence stays in the
// same error class as scalar SincosFast (they differ only in the last
// float64 bits, far below the float32-ulp bound both document).
func TestSincosVecMatchesScalarFastClass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		x := (rng.Float64() - 0.5) * 2e4
		s1, c1 := sincosFastFMA(x)
		s2, c2 := SincosFast(x)
		if math.Abs(s1-s2) > 1e-9 || math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("x=%g: fused (%g, %g) vs scalar (%g, %g)", x, s1, c1, s2, c2)
		}
	}
}

func TestSincosFastFixedWidths(t *testing.T) {
	var x4, s4, c4 [4]float64
	var x8, s8, c8 [8]float64
	for i := range x8 {
		x8[i] = float64(i)*1.7 - 5
	}
	copy(x4[:], x8[:4])
	SincosFast4(&s4, &c4, &x4)
	SincosFast8(&s8, &c8, &x8)
	for i := 0; i < 8; i++ {
		ws, wc := sincosFastFMA(x8[i])
		if s8[i] != ws || c8[i] != wc {
			t.Fatalf("SincosFast8 lane %d: got (%g, %g), want (%g, %g)", i, s8[i], c8[i], ws, wc)
		}
		if i < 4 && (s4[i] != ws || c4[i] != wc) {
			t.Fatalf("SincosFast4 lane %d mismatch", i)
		}
	}
}

func TestSincosVecShortOutputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short output slice")
		}
	}()
	SincosVec(make([]float64, 2), make([]float64, 4), make([]float64, 4))
}

func benchSincosVec(b *testing.B, tier SIMDTier, n int) {
	if tier > DetectedSIMD() {
		b.Skipf("tier %v not supported here", tier)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.37
	}
	sin := make([]float64, n)
	cos := make([]float64, n)
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sincosVecTier(tier, sin, cos, x)
	}
}

func BenchmarkSincosVecScalar(b *testing.B) { benchSincosVec(b, SIMDScalar, 192) }
func BenchmarkSincosVecAVX2(b *testing.B)   { benchSincosVec(b, SIMDAVX2, 192) }
func BenchmarkSincosVecAVX512(b *testing.B) { benchSincosVec(b, SIMDAVX512, 192) }
