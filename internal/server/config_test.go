package server

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestConfigValidate pins the typed-validation contract: every bad
// knob is rejected with a *ConfigError naming the field, every
// rejection matches ErrInvalidConfig, and the zero config (plus
// reasonable explicit values) passes.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name      string
		cfg       Config
		wantField string // "" means the config must validate
	}{
		{"zero value", Config{}, ""},
		{"explicit everything", Config{
			Addr: "127.0.0.1:8321", MaxSessions: 16, MaxSessionsPerTenant: 4,
			MaxInflightPerTenant: 32, SessionInflightDefault: 2,
			IdleTimeout: time.Minute, DrainTimeout: 10 * time.Second,
			MaxFrameBytes: 1 << 16,
		}, ""},
		{"port 0 asks the kernel", Config{Addr: "127.0.0.1:0"}, ""},

		{"addr without port", Config{Addr: "127.0.0.1"}, "Addr"},
		{"addr without host", Config{Addr: ":8321"}, "Addr"},
		{"addr port not a number", Config{Addr: "127.0.0.1:http"}, "Addr"},
		{"addr port too large", Config{Addr: "127.0.0.1:65536"}, "Addr"},

		{"negative session cap", Config{MaxSessions: -1}, "MaxSessions"},
		{"negative tenant session cap", Config{MaxSessionsPerTenant: -2}, "MaxSessionsPerTenant"},
		{"negative tenant budget", Config{MaxInflightPerTenant: -1}, "MaxInflightPerTenant"},
		{"negative session default", Config{SessionInflightDefault: -1}, "SessionInflightDefault"},
		{"default exceeds tenant budget", Config{
			SessionInflightDefault: 8, MaxInflightPerTenant: 4,
		}, "SessionInflightDefault"},
		{"resolved default exceeds tiny budget", Config{
			// SessionInflightDefault resolves to 4 > the explicit budget
			// of 2: no default session could ever be admitted.
			MaxInflightPerTenant: 2,
		}, "SessionInflightDefault"},
		{"negative idle timeout", Config{IdleTimeout: -time.Second}, "IdleTimeout"},
		{"negative drain timeout", Config{DrainTimeout: -time.Second}, "DrainTimeout"},
		{"negative frame cap", Config{MaxFrameBytes: -1}, "MaxFrameBytes"},
		{"frame cap below one sample", Config{MaxFrameBytes: MinFramePayloadCap - 1}, "MaxFrameBytes"},
		{"frame cap at one sample", Config{MaxFrameBytes: MinFramePayloadCap}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("bad %s accepted", tc.wantField)
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Errorf("error %v does not match ErrInvalidConfig", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not a *ConfigError", err)
			}
			if ce.Field != tc.wantField {
				t.Errorf("rejected field %q, want %q (reason: %s)", ce.Field, tc.wantField, ce.Reason)
			}
			if !strings.Contains(err.Error(), tc.wantField) {
				t.Errorf("error %q does not name the field %q", err, tc.wantField)
			}
		})
	}
}

// TestConfigResolvedDefaults pins the documented zero-value defaults:
// they are load-bearing (admission quotas, timeouts) so a silent
// change would shift server behaviour under every operator who relies
// on the zero config.
func TestConfigResolvedDefaults(t *testing.T) {
	c := &Config{}
	if got := c.addr(); got != "127.0.0.1:0" {
		t.Errorf("default addr %q", got)
	}
	if got := c.maxSessions(); got != 64 {
		t.Errorf("default max sessions %d", got)
	}
	if got := c.maxSessionsPerTenant(); got != 4 {
		t.Errorf("default tenant sessions %d", got)
	}
	if got := c.maxInflightPerTenant(); got != 64 {
		t.Errorf("default tenant inflight %d", got)
	}
	if got := c.sessionInflightDefault(); got != 4 {
		t.Errorf("default session inflight %d", got)
	}
	if got := c.idleTimeout(); got != 2*time.Minute {
		t.Errorf("default idle timeout %v", got)
	}
	if got := c.drainTimeout(); got != 30*time.Second {
		t.Errorf("default drain timeout %v", got)
	}
	if got := c.maxFrameBytes(); got != DefaultMaxFramePayload {
		t.Errorf("default frame cap %d", got)
	}
}

// TestSessionConfigValidate covers the wire-facing session config
// checks the server applies before paying for a backend open.
func TestSessionConfigValidate(t *testing.T) {
	good := SessionConfig{
		NrStations: 4, NrTimesteps: 8, NrChannels: 2,
		GridSize: 64, SubgridSize: 8,
	}
	if err := good.validate(); err != nil {
		t.Fatalf("valid session config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*SessionConfig)
	}{
		{"one station", func(c *SessionConfig) { c.NrStations = 1 }},
		{"no timesteps", func(c *SessionConfig) { c.NrTimesteps = 0 }},
		{"no channels", func(c *SessionConfig) { c.NrChannels = 0 }},
		{"tiny grid", func(c *SessionConfig) { c.GridSize = 1 }},
		{"subgrid over grid", func(c *SessionConfig) { c.SubgridSize = 128 }},
		{"negative workers", func(c *SessionConfig) { c.Workers = -1 }},
		{"negative shards", func(c *SessionConfig) { c.GridShards = -1 }},
		{"negative inflight", func(c *SessionConfig) { c.MaxInflightChunks = -1 }},
		{"negative checkpoint period", func(c *SessionConfig) { c.CheckpointEvery = -1 }},
		{"checkpoint period without checkpoint", func(c *SessionConfig) { c.CheckpointEvery = 8 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := good
			tc.mut(&c)
			if err := c.validate(); err == nil {
				t.Fatal("bad session config accepted")
			}
		})
	}
}
