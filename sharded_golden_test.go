package repro

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
)

// shardedGoldenObservation is goldenObservation with the streaming
// scheduler opted in: same pinned dataset and serial reference kernels,
// plus the given shard count. With shards == 1 (and the fixture's
// Workers == 1) the streamed pass must reproduce the committed golden
// hash bit-for-bit — chunking and sharding are pure reorganizations of
// the same serial arithmetic.
func shardedGoldenObservation(t *testing.T, shards int) *Observation {
	t.Helper()
	o := goldenObservation(t)
	p := o.Kernels.Params()
	p.GridShards = shards
	k, err := core.NewKernels(p)
	if err != nil {
		t.Fatal(err)
	}
	o.Kernels = k
	return o
}

// TestShardedGoldenConformance pins the tentpole's equivalence claim
// to the committed golden fingerprint: the streamed, sharded gridding
// pass at one shard hashes to exactly the bits of the classic serial
// pipeline recorded in testdata/golden_grid.json.
func TestShardedGoldenConformance(t *testing.T) {
	o := shardedGoldenObservation(t, 1)
	g, _, rep, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() {
		t.Fatalf("clean golden run degraded: %s", rep)
	}
	got := fingerprintGrid(g)
	if got.Nonzero == 0 {
		t.Fatal("streamed gridding produced an all-zero grid")
	}

	data, err := os.ReadFile(goldenGridFile)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenGridConformance -update .` to create it)", err)
	}
	var want goldenGrid
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.SHA256 != want.SHA256 {
		t.Errorf("streamed grid hash %s, want golden %s\n got: %+v\nwant: %+v",
			got.SHA256, want.SHA256, got, want)
	}
}

// TestShardedGoldenMultiShard checks the relaxed side of the claim:
// with several shards (and several workers) the accumulation order is
// scheduler-dependent, so the grid may differ from the serial
// reference — but only by floating-point reassociation, bounded at
// 1e-12 of the grid peak.
func TestShardedGoldenMultiShard(t *testing.T) {
	ref := goldenObservation(t)
	refGrid, _, err := ref.GridAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	peak := fingerprintGrid(refGrid).PeakAbs

	for _, shards := range []int{3, 5} {
		o := shardedGoldenObservation(t, shards)
		p := o.Kernels.Params()
		p.Workers = 4
		p.StreamChunkItems = 8
		k, err := core.NewKernels(p)
		if err != nil {
			t.Fatal(err)
		}
		o.Kernels = k
		g, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if d := g.MaxAbsDiff(refGrid); d > 1e-12*peak {
			t.Errorf("shards=%d: streamed grid deviates %g from the serial golden grid (bound %g)",
				shards, d, 1e-12*peak)
		}
	}
}
