// Package perfmodel derives the paper's performance evaluation from
// first principles: exact operation counts per kernel (the paper: "the
// operation count is known exactly"), data-movement counts, and the
// platform models of the arch package. It regenerates the runtime
// distribution (Fig. 9), throughput (Fig. 10), the device-memory and
// shared-memory rooflines (Fig. 11, 13), the triple-buffering pipeline
// (Fig. 7) and the W-projection comparison (Fig. 16).
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/plan"
)

// Dataset describes the workload a model run is evaluated on, in
// counts only (no visibility data is needed).
type Dataset struct {
	Name          string
	NrBaselines   int
	NrTimesteps   int
	NrChannels    int
	GridSize      int
	SubgridSize   int
	ATermInterval int

	// NrSubgrids is the number of work items of the execution plan.
	NrSubgrids float64
	// NrVisibilities is the number of gridded visibilities.
	NrVisibilities float64
	// TimestepSubgridPairs is sum over work items of their time steps.
	TimestepSubgridPairs float64
}

// Validate checks the dataset for consistency.
func (d *Dataset) Validate() error {
	if d.NrVisibilities <= 0 || d.NrSubgrids <= 0 || d.SubgridSize < 2 {
		return fmt.Errorf("perfmodel: degenerate dataset %+v", d)
	}
	return nil
}

// FromPlan extracts the dataset counts from a real execution plan.
func FromPlan(name string, p *plan.Plan, nrBaselines, nrTimesteps int) Dataset {
	st := p.Stats()
	return Dataset{
		Name:          name,
		NrBaselines:   nrBaselines,
		NrTimesteps:   nrTimesteps,
		NrChannels:    len(p.Frequencies),
		GridSize:      p.GridSize,
		SubgridSize:   p.SubgridSize,
		ATermInterval: p.ATermUpdateInterval,

		NrSubgrids:           float64(st.NrSubgrids),
		NrVisibilities:       float64(st.NrGriddedVisibilities),
		TimestepSubgridPairs: float64(st.NrTimestepSubgridPairs),
	}
}

// PaperDataset returns the benchmark of Section VI-A in closed form:
// 150 stations (11,175 baselines), 8,192 time steps, 16 channels,
// A-terms updated every 256 steps, 24x24 subgrids on a 2048x2048 grid.
// Subgrid counts assume the A-term update interval dominates the
// partitioning (one subgrid per baseline per 256-step slot), which the
// streaming planner reproduces within a few percent for this layout
// (cmd/idgbench -experiment plan recomputes the exact numbers).
func PaperDataset() Dataset {
	const (
		baselines = 11175
		timesteps = 8192
		channels  = 16
		interval  = 256
	)
	subgrids := float64(baselines) * float64(timesteps/interval)
	return Dataset{
		Name:          "SKA1-low (paper Section VI-A)",
		NrBaselines:   baselines,
		NrTimesteps:   timesteps,
		NrChannels:    channels,
		GridSize:      2048,
		SubgridSize:   24,
		ATermInterval: interval,

		NrSubgrids:           subgrids,
		NrVisibilities:       float64(baselines) * timesteps * channels,
		TimestepSubgridPairs: float64(baselines) * timesteps,
	}
}

// KernelCounts holds the exact operation and data-movement counts of
// one kernel over a dataset. Ops follow the paper's definition
// (+, -, * each one op; sin and cos each one op); Flops excludes the
// sincos evaluations (the unit Fig. 15 reports GFlops/W in).
type KernelCounts struct {
	Name        string
	Ops         float64
	Flops       float64
	Sincos      float64
	DeviceBytes float64
	// SharedBytes is the GPU software-managed cache traffic
	// (Fig. 13); zero for CPU-only kernels.
	SharedBytes float64
	// PCIe transfer volumes for the GPU path.
	HtoDBytes, DtoHBytes float64
	// Rho is the FMA/sincos ratio of the kernel's instruction mix
	// (infinite for sincos-free kernels).
	Rho float64
}

// OperationalIntensity returns ops per device-memory byte.
func (c KernelCounts) OperationalIntensity() float64 {
	if c.DeviceBytes == 0 {
		return math.Inf(1)
	}
	return c.Ops / c.DeviceBytes
}

// SharedIntensity returns ops per shared-memory byte.
func (c KernelCounts) SharedIntensity() float64 {
	if c.SharedBytes == 0 {
		return math.Inf(1)
	}
	return c.Ops / c.SharedBytes
}

// Sizes of the single-precision types the kernels move (the paper's
// implementations compute in float32).
const (
	visBytes   = 4 * 8 // 4 correlations, complex64
	uvwBytes   = 3 * 4 // float32 u, v, w
	pixelBytes = 4 * 8 // 4 correlations, complex64
	atermBytes = 2 * 4 * 8
)

// Shared-memory traffic per gridder/degridder inner iteration, in
// bytes. These two constants are the only calibrated data-movement
// numbers in the model (the paper measured data movement rather than
// deriving it); they are fitted so that the shared-memory roofline
// reproduces the measured 74% (gridder) and 55% (degridder) of peak
// on PASCAL (Section VI-C2). The degridder moves exactly one pixel
// (32 B) per iteration through shared memory; the gridder streams
// visibilities, which are partially broadcast across the warp, hence
// the lower effective traffic.
const (
	gridderSharedBytesPerIter   = 23.4
	degridderSharedBytesPerIter = 32.0
)

// GridderCounts returns the exact counts of the gridder kernel
// (Algorithm 1) over the dataset.
func GridderCounts(d Dataset) KernelCounts {
	sg2 := float64(d.SubgridSize * d.SubgridSize)
	iters := d.NrVisibilities * sg2 // one sincos + 17 FMAs each

	// Phase-index computation: 3 FMAs per (pixel, time step).
	phaseFMA := 6 * d.TimestepSubgridPairs * sg2
	// A-term sandwich (2 complex 2x2 matmuls = 96 flops) plus taper
	// (8 real mults) per subgrid pixel.
	corrFMA := 104 * d.NrSubgrids * sg2

	flops := 34*iters + phaseFMA + corrFMA
	sincos := 2 * iters
	c := KernelCounts{
		Name:        "gridder",
		Ops:         flops + sincos,
		Flops:       flops,
		Sincos:      sincos,
		SharedBytes: gridderSharedBytesPerIter * iters,
		Rho:         (flops / 2) / iters,
	}
	c.DeviceBytes = d.NrVisibilities*visBytes +
		d.TimestepSubgridPairs*uvwBytes +
		d.NrSubgrids*sg2*(pixelBytes+atermBytes)
	c.HtoDBytes = d.NrVisibilities*visBytes + d.TimestepSubgridPairs*uvwBytes
	return c
}

// DegridderCounts returns the exact counts of the degridder kernel
// (Algorithm 2).
func DegridderCounts(d Dataset) KernelCounts {
	sg2 := float64(d.SubgridSize * d.SubgridSize)
	iters := d.NrVisibilities * sg2

	phaseFMA := 6 * d.TimestepSubgridPairs * sg2
	corrFMA := 104 * d.NrSubgrids * sg2

	flops := 34*iters + phaseFMA + corrFMA
	sincos := 2 * iters
	c := KernelCounts{
		Name:        "degridder",
		Ops:         flops + sincos,
		Flops:       flops,
		Sincos:      sincos,
		SharedBytes: degridderSharedBytesPerIter * iters,
		Rho:         (flops / 2) / iters,
	}
	c.DeviceBytes = d.NrVisibilities*visBytes +
		d.TimestepSubgridPairs*uvwBytes +
		d.NrSubgrids*sg2*(pixelBytes+atermBytes)
	c.DtoHBytes = d.NrVisibilities * visBytes
	c.HtoDBytes = d.TimestepSubgridPairs * uvwBytes
	return c
}

// SubgridFFTCounts returns the counts of one subgrid FFT pass
// (4 correlations per subgrid, 5 n log2 n per 1-D transform).
func SubgridFFTCounts(d Dataset) KernelCounts {
	n := float64(d.SubgridSize)
	perSubgrid := 4 * 10 * n * n * math.Log2(n)
	c := KernelCounts{
		Name:  "subgrid-fft",
		Ops:   perSubgrid * d.NrSubgrids,
		Flops: perSubgrid * d.NrSubgrids,
		Rho:   math.Inf(1),
	}
	// Two read+write passes over the data per transform direction.
	c.DeviceBytes = d.NrSubgrids * n * n * pixelBytes * 4
	return c
}

// AdderCounts returns the counts of the adder: every subgrid pixel is
// read, the grid region read and written back (atomically on GPUs).
func AdderCounts(d Dataset) KernelCounts {
	sg2 := float64(d.SubgridSize * d.SubgridSize)
	return KernelCounts{
		Name:        "adder",
		Ops:         8 * sg2 * d.NrSubgrids, // one complex add per correlation
		Flops:       8 * sg2 * d.NrSubgrids,
		DeviceBytes: 3 * pixelBytes * sg2 * d.NrSubgrids,
		Rho:         math.Inf(1),
	}
}

// SplitterCounts returns the counts of the splitter (pure copy).
func SplitterCounts(d Dataset) KernelCounts {
	sg2 := float64(d.SubgridSize * d.SubgridSize)
	return KernelCounts{
		Name:        "splitter",
		DeviceBytes: 2 * pixelBytes * sg2 * d.NrSubgrids,
		Rho:         math.Inf(1),
	}
}
