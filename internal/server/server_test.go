package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faulttol"
	"repro/internal/obs"
)

// fakeBackend grids nothing: it stores streamed samples verbatim and
// fingerprints them, so the handler tests exercise the full session
// machinery without paying for plans or FFTs.
type fakeBackend struct {
	nb, nt, nc int
	// openErr fails Open; runErr fails Run; runPanic panics inside Run;
	// blockRun makes Run wait for its context (a drain straggler).
	openErr  error
	runErr   error
	runPanic bool
	blockRun bool

	mu     sync.Mutex
	opened int
}

type fakeSession struct {
	b *fakeBackend

	mu   sync.Mutex
	data []float32
	done bool
}

func (b *fakeBackend) Open(cfg SessionConfig) (BackendSession, error) {
	if b.openErr != nil {
		return nil, b.openErr
	}
	b.mu.Lock()
	b.opened++
	b.mu.Unlock()
	s := &fakeSession{b: b}
	s.data = make([]float32, b.nb*b.nt*b.nc*8)
	return s, nil
}

func (s *fakeSession) Dims() (int, int, int) { return s.b.nb, s.b.nt, s.b.nc }

func (s *fakeSession) SetVisibilities(baseline, sampleOffset int, samples []float32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := (baseline*s.b.nt*s.b.nc + sampleOffset) * 8
	copy(s.data[off:], samples)
	return nil
}

func (s *fakeSession) payload() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := make([]byte, len(s.data))
	for i, v := range s.data {
		p[i] = byte(int(v) & 0xff)
	}
	return p
}

func (s *fakeSession) Run(ctx context.Context) (*Result, error) {
	if s.b.runPanic {
		panic("injected backend panic")
	}
	if s.b.runErr != nil {
		return nil, s.b.runErr
	}
	if s.b.blockRun {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	sum := sha256.Sum256(s.payload())
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	return &Result{GridSize: s.b.nb, SHA256: hex.EncodeToString(sum[:])}, nil
}

func (s *fakeSession) WriteGrid(w io.Writer) error {
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if !done {
		return errors.New("no finished grid")
	}
	_, err := w.Write(s.payload())
	return err
}

// newTestServer builds a server on the fake backend behind httptest.
func newTestServer(t *testing.T, cfg Config, back Backend) (*Server, *Client) {
	t.Helper()
	if back == nil {
		back = &fakeBackend{nb: 3, nt: 4, nc: 2}
	}
	s, err := New(cfg, back)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, &Client{Base: hs.URL, Tenant: "test", HTTP: hs.Client()}
}

func testSessionConfig() SessionConfig {
	return SessionConfig{
		NrStations: 3, NrTimesteps: 4, NrChannels: 2,
		GridSize: 64, SubgridSize: 8, MaxInflightChunks: 2,
	}
}

// streamAll pushes every sample of every baseline in one request.
func streamAll(t *testing.T, c *Client, id string, nb, nt, nc int) {
	t.Helper()
	err := c.StreamVis(id, func(w *FrameWriter) error {
		for b := 0; b < nb; b++ {
			buf := make([]float32, nt*nc*8)
			for i := range buf {
				buf[i] = float32((b + i) % 97)
			}
			if err := w.WriteVis(b, 0, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSessionLifecycle drives one session end to end and checks the
// grid transfer hashes to the result's SHA-256.
func TestSessionLifecycle(t *testing.T) {
	observer := obs.New(0)
	back := &fakeBackend{nb: 3, nt: 4, nc: 2}
	s, c := newTestServer(t, Config{Observer: observer}, back)

	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if info.NrBaselines != 3 || info.NrTimesteps != 4 || info.NrChannels != 2 {
		t.Fatalf("session dims %+v", info)
	}
	if info.MaxInflightChunks != 2 {
		t.Fatalf("inflight bound %d, want the requested 2", info.MaxInflightChunks)
	}
	if got := s.ActiveSessions(); got != 1 {
		t.Fatalf("%d active sessions after create", got)
	}
	if got := s.TenantInflight("test"); got != 2 {
		t.Fatalf("tenant inflight %d after create, want 2", got)
	}

	streamAll(t, c, info.SessionID, 3, 4, 2)
	res, err := c.Finalize(info.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if res.SHA256 == "" {
		t.Fatal("finalize returned no hash")
	}
	sha, n, err := c.FetchGridSHA256(info.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if sha != res.SHA256 {
		t.Fatalf("grid transfer hash %s != result hash %s (%d bytes)", sha, res.SHA256, n)
	}
	if err := c.Delete(info.SessionID); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d active sessions after delete", got)
	}
	if got := s.TenantInflight("test"); got != 0 {
		t.Fatalf("tenant inflight %d after delete, want 0", got)
	}

	snap := observer.Metrics.Snapshot()
	for name, want := range map[string]float64{
		MetricSessionsCreated: 1, MetricSessionsDone: 1, MetricSessionsDeleted: 1,
		GaugeSessionsActive: 0, GaugeInflightChunks: 0, GaugeInflightChunksPeak: 2,
	} {
		if got := metricValue(t, snap, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := metricValue(t, snap, TenantInflightPeakGauge("test")); got != 2 {
		t.Errorf("tenant peak gauge %v, want 2", got)
	}
}

// metricValue digs one counter or gauge out of a snapshot.
func metricValue(t *testing.T, snap obs.Snapshot, name string) float64 {
	t.Helper()
	if v, ok := snap.Counters[name]; ok {
		return float64(v)
	}
	if v, ok := snap.Gauges[name]; ok {
		return v
	}
	t.Fatalf("metric %s missing from snapshot", name)
	return 0
}

// TestUnknownSession pins 404s across the session endpoints.
func TestUnknownSession(t *testing.T) {
	_, c := newTestServer(t, Config{}, nil)
	if err := c.StreamVis("nope", func(w *FrameWriter) error { return nil }); !isHTTP(err, 404) {
		t.Errorf("stream to unknown session: %v, want 404", err)
	}
	if _, err := c.Finalize("nope"); !isHTTP(err, 404) {
		t.Errorf("finalize of unknown session: %v, want 404", err)
	}
	if _, _, err := c.FetchGridSHA256("nope"); !isHTTP(err, 404) {
		t.Errorf("grid of unknown session: %v, want 404", err)
	}
	// Delete tolerates 404 by contract (idempotent cleanup).
	if err := c.Delete("nope"); err != nil {
		t.Errorf("delete of unknown session: %v, want nil", err)
	}
}

func isHTTP(err error, code int) bool {
	return err != nil && strings.Contains(err.Error(), fmt.Sprintf("HTTP %d", code))
}

// TestStateConflicts pins the 409s of the session state machine:
// double finalize, streaming into a finalized session, fetching a
// grid before finalize.
func TestStateConflicts(t *testing.T) {
	_, c := newTestServer(t, Config{}, nil)
	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.FetchGridSHA256(info.SessionID); !isHTTP(err, 409) {
		t.Errorf("grid before finalize: %v, want 409", err)
	}
	streamAll(t, c, info.SessionID, 3, 4, 2)
	if _, err := c.Finalize(info.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finalize(info.SessionID); !isHTTP(err, 409) {
		t.Errorf("second finalize: %v, want 409", err)
	}
	if err := c.StreamVis(info.SessionID, func(w *FrameWriter) error { return nil }); !isHTTP(err, 409) {
		t.Errorf("stream after finalize: %v, want 409", err)
	}
}

// TestStreamRejectsOutOfRange pins the bounds checks between the wire
// and the backend: baselines and sample ranges outside the
// observation 400 without touching backend state.
func TestStreamRejectsOutOfRange(t *testing.T) {
	_, c := newTestServer(t, Config{}, nil)
	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = c.StreamVis(info.SessionID, func(w *FrameWriter) error {
		return w.WriteVis(99, 0, make([]float32, 8))
	})
	if !isHTTP(err, 400) || !strings.Contains(err.Error(), "baseline 99") {
		t.Errorf("out-of-range baseline: %v, want a 400 naming it", err)
	}
	err = c.StreamVis(info.SessionID, func(w *FrameWriter) error {
		return w.WriteVis(0, 7, make([]float32, 16)) // samples [7, 9) of 8
	})
	if !isHTTP(err, 400) || !strings.Contains(err.Error(), "outside the baseline") {
		t.Errorf("out-of-range samples: %v, want a 400 naming the range", err)
	}
}

// TestQuotaAdmission pins the 429 family: per-tenant session quota,
// per-tenant in-flight budget, global session cap — and that the
// rejection counter advances.
func TestQuotaAdmission(t *testing.T) {
	observer := obs.New(0)
	cfg := Config{
		MaxSessions:            3,
		MaxSessionsPerTenant:   2,
		MaxInflightPerTenant:   4,
		SessionInflightDefault: 2,
		Observer:               observer,
	}
	s, c := newTestServer(t, cfg, nil)

	// Two sessions of inflight 2 fill tenant "test" exactly.
	a, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(testSessionConfig()); !isHTTP(err, 429) {
		t.Fatalf("third session of a 2-quota tenant: %v, want 429", err)
	}

	// A second tenant is admitted (quotas are per tenant)...
	c2 := &Client{Base: c.Base, Tenant: "other", HTTP: c.HTTP}
	if _, err := c2.CreateSession(testSessionConfig()); err != nil {
		t.Fatal(err)
	}
	// ...but the global cap of 3 now rejects anyone.
	c3 := &Client{Base: c.Base, Tenant: "third", HTTP: c.HTTP}
	if _, err := c3.CreateSession(testSessionConfig()); !isHTTP(err, 429) {
		t.Fatalf("session over the global cap: %v, want 429", err)
	}

	// Freeing one tenant slot also frees its in-flight budget; a
	// session asking for more than the remaining budget is rejected.
	if err := c.Delete(a.SessionID); err != nil {
		t.Fatal(err)
	}
	big := testSessionConfig()
	big.MaxInflightChunks = 3 // 2 reserved + 3 > 4
	if _, err := c.CreateSession(big); !isHTTP(err, 429) {
		t.Fatalf("session over the in-flight budget: %v, want 429", err)
	}
	big.MaxInflightChunks = 2
	if _, err := c.CreateSession(big); err != nil {
		t.Fatalf("session within the freed budget: %v", err)
	}
	if got := s.TenantInflight("test"); got != 4 {
		t.Fatalf("tenant inflight %d, want 4", got)
	}
	if got := metricValue(t, observer.Metrics.Snapshot(), MetricAdmissionRejected); got != 3 {
		t.Errorf("rejection counter %v, want 3", got)
	}
}

// TestInflightDefaultResolution: a session that requests no in-flight
// bound is pinned to the server's default, so it still consumes a
// finite share of the tenant budget.
func TestInflightDefaultResolution(t *testing.T) {
	_, c := newTestServer(t, Config{SessionInflightDefault: 3}, nil)
	cfg := testSessionConfig()
	cfg.MaxInflightChunks = 0
	info, err := c.CreateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.MaxInflightChunks != 3 {
		t.Fatalf("resolved inflight bound %d, want the server default 3", info.MaxInflightChunks)
	}
}

// TestCheckpointRequiresRoot: checkpoint sessions are rejected when
// the server has no checkpoint root (clients never pick paths).
func TestCheckpointRequiresRoot(t *testing.T) {
	_, c := newTestServer(t, Config{}, nil)
	cfg := testSessionConfig()
	cfg.Checkpoint = true
	if _, err := c.CreateSession(cfg); !isHTTP(err, 400) {
		t.Fatalf("checkpoint without a root: %v, want 400", err)
	}
}

// TestOpenFailureReleasesAdmission: a failed backend open must return
// the reserved quota, or failed opens would leak tenant budget.
func TestOpenFailureReleasesAdmission(t *testing.T) {
	back := &fakeBackend{nb: 3, nt: 4, nc: 2, openErr: errors.New("no plan for you")}
	s, c := newTestServer(t, Config{}, back)
	if _, err := c.CreateSession(testSessionConfig()); !isHTTP(err, 400) {
		t.Fatalf("failed open: %v, want 400", err)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions after failed open", got)
	}
	if got := s.TenantInflight("test"); got != 0 {
		t.Fatalf("tenant inflight %d after failed open, want 0", got)
	}
}

// TestBackendPanicIsolation: a panicking backend fails its session as
// ErrKernelPanic; the server keeps serving and the session reports
// failed.
func TestBackendPanicIsolation(t *testing.T) {
	back := &fakeBackend{nb: 3, nt: 4, nc: 2, runPanic: true}
	s, c := newTestServer(t, Config{}, back)
	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Finalize(info.SessionID)
	if !isHTTP(err, 500) || !strings.Contains(err.Error(), faulttol.ErrKernelPanic.Error()) {
		t.Fatalf("panicking finalize: %v, want a 500 carrying ErrKernelPanic", err)
	}
	// The server survived: a fresh session on the same server works
	// once the backend behaves.
	back.runPanic = false
	info2, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finalize(info2.SessionID); err != nil {
		t.Fatalf("finalize after a panic-failed session: %v", err)
	}
	if got := s.ActiveSessions(); got != 2 {
		t.Fatalf("%d sessions registered (failed sessions stay until deleted)", got)
	}
}

// TestIdleExpiry: sessions untouched past the idle timeout are swept;
// a finalizing session never is.
func TestIdleExpiry(t *testing.T) {
	observer := obs.New(0)
	// A generous timeout: the sweeps below pass explicit clocks, and a
	// short timeout would let a loaded test machine age the "fresh"
	// session past it for real.
	s, c := newTestServer(t, Config{IdleTimeout: time.Minute, Observer: observer}, nil)
	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Not yet idle.
	if n := s.sweepIdle(time.Now()); n != 0 {
		t.Fatalf("swept %d fresh sessions", n)
	}
	// Pretend the deadline passed.
	if n := s.sweepIdle(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("swept %d sessions past the deadline, want 1", n)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions after expiry", got)
	}
	if _, err := c.Finalize(info.SessionID); !isHTTP(err, 404) {
		t.Fatalf("finalize of an expired session: %v, want 404", err)
	}
	if got := metricValue(t, observer.Metrics.Snapshot(), MetricSessionsExpired); got != 1 {
		t.Errorf("expired counter %v, want 1", got)
	}

	// A finalizing session is not expirable no matter how stale.
	back := &fakeBackend{nb: 1, nt: 1, nc: 1, blockRun: true}
	s2, c2 := newTestServer(t, Config{IdleTimeout: 50 * time.Millisecond}, back)
	info2, err := c2.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c2.Finalize(info2.SessionID) // blocks until drain cancels it
	}()
	waitFor(t, func() bool {
		s2.mu.Lock()
		sess := s2.sessions[info2.SessionID]
		s2.mu.Unlock()
		return sess != nil && sess.currentState() == StateFinalizing
	})
	if n := s2.sweepIdle(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("swept %d finalizing sessions, want 0", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := s2.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions after drain", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrain pins the drain contract: admissions answer 503, terminal
// sessions are released, a blocked finalize is canceled at the
// deadline, and the registry is empty on return.
func TestDrain(t *testing.T) {
	observer := obs.New(0)
	back := &fakeBackend{nb: 3, nt: 4, nc: 2, blockRun: true}
	s, c := newTestServer(t, Config{DrainTimeout: 100 * time.Millisecond, Observer: observer}, back)

	// One session stuck in finalize, one still streaming.
	stuck, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	idle, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = idle
	finDone := make(chan error, 1)
	go func() {
		_, err := c.Finalize(stuck.SessionID)
		finDone <- err
	}()
	waitFor(t, func() bool {
		s.mu.Lock()
		sess := s.sessions[stuck.SessionID]
		s.mu.Unlock()
		return sess != nil && sess.currentState() == StateFinalizing
	})

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// While draining, creates answer 503.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})
	if _, err := c.CreateSession(testSessionConfig()); !isHTTP(err, 503) {
		t.Fatalf("create while draining: %v, want 503", err)
	}

	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if err := <-finDone; err == nil {
		t.Fatal("blocked finalize returned success after drain canceled it")
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions survived the drain, want 0", got)
	}
	snap := observer.Metrics.Snapshot()
	if got := metricValue(t, snap, MetricSessionsDrained); got != 2 {
		t.Errorf("drained counter %v, want 2", got)
	}
	if got := metricValue(t, snap, GaugeInflightChunks); got != 0 {
		t.Errorf("inflight gauge %v after drain, want 0", got)
	}
}

// TestDrainReleasesTerminalSessions: sessions already done when the
// drain begins are released immediately, not canceled.
func TestDrainReleasesTerminalSessions(t *testing.T) {
	s, c := newTestServer(t, Config{DrainTimeout: 5 * time.Second}, nil)
	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	streamAll(t, c, info.SessionID, 3, 4, 2)
	if _, err := c.Finalize(info.SessionID); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("drain of a terminal-only registry took %v", d)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions after drain", got)
	}
}

// TestHealthAndMetricsEndpoints smoke-tests the operational surface.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	observer := obs.New(0)
	_, c := newTestServer(t, Config{Observer: observer}, nil)
	resp, err := c.HTTP.Get(c.Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	resp, err = c.HTTP.Get(c.Base + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz: HTTP %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), MetricSessionsCreated) {
		t.Fatalf("metricz body %q lacks the session counters", body)
	}

	// Without an observer the metrics endpoint 404s.
	_, c2 := newTestServer(t, Config{}, nil)
	resp, err = c2.HTTP.Get(c2.Base + "/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metricz without observer: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestStartServeDrain exercises the real listener path (Start, Addr,
// janitor) rather than httptest.
func TestStartServeDrain(t *testing.T) {
	back := &fakeBackend{nb: 3, nt: 4, nc: 2}
	s, err := New(Config{Addr: "127.0.0.1:0", IdleTimeout: 20 * time.Millisecond}, back)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address after Start")
	}
	c := &Client{Base: "http://" + addr, Tenant: "test"}
	info, err := c.CreateSession(testSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	_ = info
	// The janitor expires the untouched session on its own.
	waitFor(t, func() bool { return s.ActiveSessions() == 0 })
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The listener is down after drain.
	if _, err := c.CreateSession(testSessionConfig()); err == nil {
		t.Fatal("create succeeded after drain closed the listener")
	}
}
