package xmath

import (
	"fmt"
	"os"
	"strings"
	"sync"
)

// SIMDTier identifies the widest vector instruction tier a code path
// may use. Tiers are ordered: a kernel compiled for a tier may run on
// any host whose tier is >= it, so "clamp to the detected tier" is the
// only comparison dispatch ever needs.
type SIMDTier int

const (
	// SIMDScalar uses only the portable Go kernels.
	SIMDScalar SIMDTier = iota
	// SIMDAVX2 requires AVX2 + FMA with OS-enabled YMM state (the
	// hand-vectorized 256-bit tile kernels and the 4-lane sincos).
	SIMDAVX2
	// SIMDAVX512 additionally requires AVX-512 F/DQ/BW/VL with
	// OS-enabled ZMM and opmask state: the 8-lane sincos, and the
	// EVEX-encoded dual-pixel form of the blocked float32 gridder tile
	// (256-bit arithmetic on registers Y16-Y31, which need AVX-512VL).
	SIMDAVX512
)

func (t SIMDTier) String() string {
	switch t {
	case SIMDScalar:
		return "scalar"
	case SIMDAVX2:
		return "avx2"
	case SIMDAVX512:
		return "avx512"
	default:
		return fmt.Sprintf("SIMDTier(%d)", int(t))
	}
}

// ParseSIMDTier parses a tier name as accepted by the IDG_SIMD
// environment variable: "scalar" (aliases "off", "none"), "avx2",
// "avx512".
func ParseSIMDTier(s string) (SIMDTier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "scalar", "off", "none":
		return SIMDScalar, nil
	case "avx2":
		return SIMDAVX2, nil
	case "avx512":
		return SIMDAVX512, nil
	default:
		return SIMDScalar, fmt.Errorf("xmath: unknown SIMD tier %q (want scalar, avx2 or avx512)", s)
	}
}

// DetectedSIMD returns the widest tier this CPU and OS support,
// ignoring any override. Always SIMDScalar off amd64.
func DetectedSIMD() SIMDTier { return detectedSIMD }

var (
	activeOnce sync.Once
	activeTier SIMDTier
)

// ActiveSIMD returns the tier the process actually dispatches on: the
// detected tier, lowered by the IDG_SIMD environment variable when it
// names a narrower one. IDG_SIMD can only lower the tier — forcing a
// tier the host lacks would fault — and unparseable values are
// ignored. Resolved once; later environment changes have no effect.
func ActiveSIMD() SIMDTier {
	activeOnce.Do(func() {
		activeTier = simdTierFromEnv(detectedSIMD, os.Getenv("IDG_SIMD"))
	})
	return activeTier
}

// simdTierFromEnv resolves the active tier from the detected one and
// an IDG_SIMD value (pure, for tests).
func simdTierFromEnv(detected SIMDTier, env string) SIMDTier {
	if env == "" {
		return detected
	}
	t, err := ParseSIMDTier(env)
	if err != nil || t > detected {
		return detected
	}
	return t
}
