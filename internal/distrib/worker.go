package distrib

import (
	"bufio"
	"context"
	"fmt"
	"net"

	"repro/internal/grid"
	"repro/internal/server"
)

// WorkerSpec identifies one worker attempt: which partition of how
// many, along which axis, whether this attempt should resume from the
// worker's checkpoint, and where the coordinator is listening. The
// coordinator fills it in and hands it to the Launcher; exec-style
// launchers turn it into cmd/idgworker flags.
type WorkerSpec struct {
	Index   int
	Workers int
	Axis    Axis
	// Resume is set on every attempt after the first: the worker should
	// resume from its checkpoint directory instead of starting fresh.
	Resume bool
	// CoordinatorAddr is the host:port the worker delivers its partial
	// grid to.
	CoordinatorAddr string
}

// Launcher starts one worker attempt and blocks until the worker
// process (or goroutine) exits, returning its terminal error. The
// coordinator restarts a failed worker with Resume set, up to its
// restart budget. Implementations live above this package: the facade
// runs workers as in-process goroutines, cmd/idgdistrib execs
// cmd/idgworker.
type Launcher interface {
	Start(ctx context.Context, spec WorkerSpec) error
}

// LauncherFunc adapts a function to the Launcher interface.
type LauncherFunc func(ctx context.Context, spec WorkerSpec) error

// Start calls f.
func (f LauncherFunc) Start(ctx context.Context, spec WorkerSpec) error {
	return f(ctx, spec)
}

// NonzeroRowSpan returns the smallest row range [lo, hi) covering
// every nonzero cell of g across all correlation planes, so Deliver
// ships only the band a sparse partition actually touched. An all-zero
// grid returns (0, 0).
func NonzeroRowSpan(g *grid.Grid) (lo, hi int) {
	lo, hi = g.N, 0
	for c := 0; c < grid.NrCorrelations; c++ {
		for y := 0; y < g.N; y++ {
			row := g.Data[c][y*g.N : (y+1)*g.N]
			nonzero := false
			for _, v := range row {
				if v != 0 {
					nonzero = true
					break
				}
			}
			if nonzero {
				if y < lo {
					lo = y
				}
				if y+1 > hi {
					hi = y + 1
				}
			}
		}
	}
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// Deliver streams a finished partial grid to the coordinator: dial,
// Hello, the nonzero row span chunked into FrameBands under the
// payload cap, and a closing FrameResult carrying the fingerprint of
// the whole partial grid. maxPayload <= 0 selects the server default.
func Deliver(ctx context.Context, spec WorkerSpec, planSum [32]byte, g *grid.Grid, maxPayload int) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", spec.CoordinatorAddr)
	if err != nil {
		return fmt.Errorf("distrib: worker %d dialing coordinator: %w", spec.Index, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	hello := Hello{Worker: spec.Index, Workers: spec.Workers, Axis: spec.Axis, PlanSum: planSum}
	if err := server.WriteFrame(bw, EncodeHello(hello)); err != nil {
		return fmt.Errorf("distrib: worker %d sending hello: %w", spec.Index, err)
	}
	lo, hi := NonzeroRowSpan(g)
	step := BandRowsPerFrame(g.N, maxPayload)
	for y := lo; y < hi; y += step {
		end := y + step
		if end > hi {
			end = hi
		}
		f, err := EncodeBand(g, y, end)
		if err != nil {
			return err
		}
		if err := server.WriteFrame(bw, f); err != nil {
			return fmt.Errorf("distrib: worker %d sending band [%d, %d): %w", spec.Index, y, end, err)
		}
	}
	res := Result{Worker: spec.Index, Fingerprint: FingerprintOf(g)}
	if err := server.WriteFrame(bw, EncodeResult(res)); err != nil {
		return fmt.Errorf("distrib: worker %d sending result: %w", spec.Index, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("distrib: worker %d flushing reduction stream: %w", spec.Index, err)
	}
	return nil
}
