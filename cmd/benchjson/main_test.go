package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func visBench(name string, mvisPerSec float64) Benchmark {
	v := mvisPerSec * 1e6
	return Benchmark{Name: name, Iterations: 10, NsPerOp: 1e6, VisPerSec: &v}
}

func TestParseBenchOutput(t *testing.T) {
	const out = `goos: linux
goarch: amd64
pkg: repro
cpu: generic
BenchmarkGridderKernel-8   	     193	   5922618 ns/op	         0.3458 MVis/s	       0 B/op	       0 allocs/op
BenchmarkPlain   	     100	      1000 ns/op
PASS
`
	rep, err := Parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkGridderKernel-8" || b.Iterations != 193 {
		t.Fatalf("bad first benchmark: %+v", b)
	}
	if b.VisPerSec == nil || *b.VisPerSec != 0.3458e6 {
		t.Fatalf("MVis/s not converted: %+v", b.VisPerSec)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Fatalf("allocs/op not parsed: %+v", b.AllocsPerOp)
	}
	if rep.Benchmarks[1].VisPerSec != nil {
		t.Fatal("plain benchmark must not have VisPerSec")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.30),
		visBench("BenchmarkDegridderKernel-8", 0.60),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.29), // -3.3%: inside threshold
		visBench("BenchmarkDegridderKernel-8", 0.75),
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("compare failed:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "FAIL") {
		t.Fatalf("unexpected FAIL line:\n%s", sb.String())
	}
}

func TestCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.30),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.20), // -33%
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("33%% regression passed a 10%% gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Fatalf("missing FAIL line:\n%s", sb.String())
	}
}

// A -count N re-measure produces duplicate names in the new report;
// the gate must judge the best run, so one noisy-slow sample among
// good ones cannot fail CI (and the duplicates must not warn as
// "only in new").
func TestCompareDuplicatesGateOnBestRun(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.30),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.20), // -33%: noise
		visBench("BenchmarkGridderKernel-8", 0.31), // best run: fine
		visBench("BenchmarkGridderKernel-8", 0.26),
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("best duplicate run within threshold still failed:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "only in") {
		t.Fatalf("duplicate runs reported as new benchmarks:\n%s", sb.String())
	}
}

// A baseline benchmark that vanished from the new report fails the
// gate with an actionable message: a silently shrinking benchmark set
// would let a deleted or renamed benchmark dodge the regression check.
func TestCompareMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.30),
		visBench("BenchmarkRetired-8", 1.0),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.31),
		visBench("BenchmarkBrandNew-8", 2.0),
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("missing baseline benchmark must fail the gate:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "BenchmarkRetired-8") ||
		!strings.Contains(out, "missing from") || !strings.Contains(out, "-allow-missing") {
		t.Fatalf("missing-benchmark FAIL line must name the benchmark and the escape hatch:\n%s", out)
	}
	// Growth stays a warning: BenchmarkBrandNew-8 must not FAIL.
	if !strings.Contains(out, "only in") || !strings.Contains(out, "BenchmarkBrandNew-8") {
		t.Fatalf("missing WARN line for the new-only benchmark:\n%s", out)
	}
}

// -allow-missing restores the warn-only behaviour for deliberate
// subset runs (CI re-measures two of the six baseline kernels).
func TestCompareAllowMissingWarns(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.30),
		visBench("BenchmarkRetired-8", 1.0),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkGridderKernel-8", 0.31),
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("-allow-missing must not fail on a one-sided benchmark:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "WARN") || !strings.Contains(sb.String(), "BenchmarkRetired-8") {
		t.Fatalf("missing WARN line under -allow-missing:\n%s", sb.String())
	}
}

// ns/op-only benchmarks fall back to inverse op time; mixing metric
// kinds between the two sides is not comparable and only warns.
func TestCompareNsPerOpFallbackAndMixedKinds(t *testing.T) {
	dir := t.TempDir()
	nsBench := func(name string, ns float64) Benchmark {
		return Benchmark{Name: name, Iterations: 10, NsPerOp: ns}
	}
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		nsBench("BenchmarkFFT-8", 1000),
		nsBench("BenchmarkMixed-8", 1000),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		nsBench("BenchmarkFFT-8", 2000), // 2x slower
		visBench("BenchmarkMixed-8", 0.5),
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("2x ns/op regression passed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkMixed-8") || !strings.Contains(sb.String(), "not comparable") {
		t.Fatalf("mixed metric kinds must warn:\n%s", sb.String())
	}
}

func TestCompareNothingComparableErrors(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkA-8", 1),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkB-8", 1),
	}})
	var sb strings.Builder
	if _, err := runCompare(&sb, oldP, newP, 10, false); err == nil {
		t.Fatal("disjoint benchmark sets must be an error, not a silent pass")
	}
}

// bestRuns must keep first-appearance order and pick the
// best-throughput duplicate — the committed-baseline path of -best,
// and since the compare gate now collapses the baseline side too, a
// -count N baseline must gate exactly like a -best one.
func TestBestRunsCollapsesDuplicates(t *testing.T) {
	in := []Benchmark{
		visBench("BenchmarkA", 0.20),
		visBench("BenchmarkB", 0.50),
		visBench("BenchmarkA", 0.30), // best A
		visBench("BenchmarkB", 0.40),
		visBench("BenchmarkA", 0.10),
	}
	out := bestRuns(in)
	if len(out) != 2 {
		t.Fatalf("collapsed to %d entries, want 2: %+v", len(out), out)
	}
	if out[0].Name != "BenchmarkA" || out[1].Name != "BenchmarkB" {
		t.Fatalf("order not preserved: %+v", out)
	}
	if *out[0].VisPerSec != 0.30e6 || *out[1].VisPerSec != 0.50e6 {
		t.Fatalf("best runs not selected: A=%v B=%v", *out[0].VisPerSec, *out[1].VisPerSec)
	}
}

// A baseline holding duplicate runs (written without -best) must not
// produce spurious missing-benchmark failures: each name is compared
// once, best against best.
func TestCompareDuplicateBaseline(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkX", 0.30),
		visBench("BenchmarkX", 0.32),
		visBench("BenchmarkX", 0.29),
	}})
	newP := writeReport(t, dir, "new.json", &Report{Benchmarks: []Benchmark{
		visBench("BenchmarkX", 0.31),
	}})
	var sb strings.Builder
	ok, err := runCompare(&sb, oldP, newP, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("duplicate-baseline compare failed:\n%s", sb.String())
	}
	if n := strings.Count(sb.String(), "BenchmarkX"); n != 1 {
		t.Fatalf("BenchmarkX compared %d times, want once:\n%s", n, sb.String())
	}
}
