// Package powersensor simulates the PowerSensor tool of reference
// [31] (Romein & Veenboer): a device that samples the power draw of a
// full PCI-E device at high time resolution, with markers that let
// the analyst attribute energy to individual compute kernels — the
// instrument behind Fig. 14 and Fig. 15. The simulation integrates a
// platform's modelled power state over a virtual timeline.
package powersensor

import (
	"fmt"
	"sort"
)

// Sample is one power reading.
type Sample struct {
	Seconds float64
	Watts   float64
}

// Marker labels a time span of the capture.
type Marker struct {
	Label      string
	Start, End float64
}

// Sensor accumulates a virtual capture. The zero value is not usable;
// construct with New.
type Sensor struct {
	resolution float64
	idleWatts  float64

	now     float64
	samples []Sample
	markers []Marker
	open    map[string]float64
}

// New creates a sensor sampling at the given resolution (seconds per
// sample) with the device's idle power.
func New(resolution, idleWatts float64) (*Sensor, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("powersensor: resolution %g must be positive", resolution)
	}
	if idleWatts < 0 {
		return nil, fmt.Errorf("powersensor: negative idle power %g", idleWatts)
	}
	return &Sensor{
		resolution: resolution,
		idleWatts:  idleWatts,
		open:       make(map[string]float64),
	}, nil
}

// Now returns the current virtual time.
func (s *Sensor) Now() float64 { return s.now }

// Run advances the timeline by duration seconds at the given power
// draw, recording samples.
func (s *Sensor) Run(duration, watts float64) error {
	if duration < 0 || watts < 0 {
		return fmt.Errorf("powersensor: negative duration or power")
	}
	end := s.now + duration
	for t := s.now; t < end; t += s.resolution {
		s.samples = append(s.samples, Sample{Seconds: t, Watts: watts})
	}
	s.now = end
	return nil
}

// Idle advances the timeline at the idle power.
func (s *Sensor) Idle(duration float64) error {
	return s.Run(duration, s.idleWatts)
}

// Mark opens a labelled region at the current time (like the real
// PowerSensor's marker writes into the capture stream).
func (s *Sensor) Mark(label string) error {
	if _, ok := s.open[label]; ok {
		return fmt.Errorf("powersensor: marker %q already open", label)
	}
	s.open[label] = s.now
	return nil
}

// Unmark closes a labelled region.
func (s *Sensor) Unmark(label string) error {
	start, ok := s.open[label]
	if !ok {
		return fmt.Errorf("powersensor: marker %q not open", label)
	}
	delete(s.open, label)
	s.markers = append(s.markers, Marker{Label: label, Start: start, End: s.now})
	return nil
}

// Samples returns the capture.
func (s *Sensor) Samples() []Sample { return s.samples }

// Markers returns the closed marker regions, ordered by start time.
func (s *Sensor) Markers() []Marker {
	out := append([]Marker(nil), s.markers...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TotalJoules integrates the whole capture.
func (s *Sensor) TotalJoules() float64 {
	var e float64
	for _, smp := range s.samples {
		e += smp.Watts * s.resolution
	}
	return e
}

// MarkerJoules integrates the capture within a marker's span; this is
// how per-kernel energy (Fig. 15) is extracted from the trace.
func (s *Sensor) MarkerJoules(label string) (float64, error) {
	var found bool
	var e float64
	for _, m := range s.markers {
		if m.Label != label {
			continue
		}
		found = true
		for _, smp := range s.samples {
			if smp.Seconds >= m.Start && smp.Seconds < m.End {
				e += smp.Watts * s.resolution
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("powersensor: no closed marker %q", label)
	}
	return e, nil
}

// MeanWatts returns the average power over the capture.
func (s *Sensor) MeanWatts() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.TotalJoules() / (float64(len(s.samples)) * s.resolution)
}
