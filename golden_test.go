package repro

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
)

// -update regenerates testdata/golden_grid.json from the current code:
//
//	go test -run TestGoldenGridConformance -update .
//
// Commit the regenerated file only when a numerical change is
// intended; an unexplained hash change means the gridding math moved.
var updateGolden = flag.Bool("update", false, "rewrite the golden grid conformance file")

const goldenGridFile = "testdata/golden_grid.json"

// goldenGrid is the committed fingerprint of one deterministic
// grid->FFT->add pass: the exported GridFingerprint (the same hash the
// server's session results carry, so wire-streamed sessions are
// comparable against this file's currency). The hash pins the exact
// bits; the diagnostics exist so a mismatch tells a human roughly what
// moved (energy, support, peak) without bisecting first.
type goldenGrid = GridFingerprint

// goldenObservation builds the fixed observation the golden file is
// keyed to. Everything that could perturb the output bits is pinned:
// the station layout seed is constant (layout.SKA1LowConfig), Workers
// is 1 so floating-point accumulation order is the serial order, and
// the kernels run the reference path (DisableBatching) so the hash
// does not depend on host FMA/AVX2 dispatch.
func goldenObservation(t *testing.T) *Observation {
	t.Helper()
	cfg := ObservationConfig{
		NrStations:     10,
		NrTimesteps:    48,
		NrChannels:     4,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       256,
		SubgridSize:    16,
		KernelSupport:  4,
		GridMargin:     16,
		ATermInterval:  16,
		Workers:        1,
	}
	o, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := o.Kernels.Params()
	p.DisableBatching = true
	k, err := core.NewKernels(p)
	if err != nil {
		t.Fatal(err)
	}
	o.Kernels = k
	pix := o.ImageSize / float64(cfg.GridSize)
	model := SkyModel{
		{L: 20 * pix, M: -12 * pix, I: 1},
		{L: -36 * pix, M: 26 * pix, I: 0.5},
		{L: 8 * pix, M: 44 * pix, I: 0.25},
	}
	if err := o.FillFromModel(model); err != nil {
		t.Fatal(err)
	}
	return o
}

// fingerprintGrid hashes the little-endian float64 bytes of every
// correlation plane (real then imaginary per cell) and collects the
// human-readable diagnostics; it delegates to the exported
// FingerprintGrid so the golden file, the serving path and client-side
// verification all hash identically.
func fingerprintGrid(g *grid.Grid) goldenGrid {
	return FingerprintGrid(g)
}

// TestGoldenGridConformance runs the full grid -> subgrid FFT -> adder
// pipeline on a deterministic observation and compares the resulting
// grid bit-for-bit against the committed golden fingerprint.
func TestGoldenGridConformance(t *testing.T) {
	o := goldenObservation(t)
	g, _, err := o.GridAll(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := fingerprintGrid(g)
	if got.Nonzero == 0 {
		t.Fatal("gridded observation produced an all-zero grid")
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenGridFile), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenGridFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s: %+v", goldenGridFile, got)
		return
	}

	data, err := os.ReadFile(goldenGridFile)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenGridConformance -update .` to create it)", err)
	}
	var want goldenGrid
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.SHA256 != want.SHA256 {
		t.Errorf("grid hash %s, want %s\n got: %+v\nwant: %+v\n(an intended numerical change needs -update)",
			got.SHA256, want.SHA256, got, want)
	}
}

// TestGoldenGridDeterminism guards the premise of the golden file: two
// independent builds of the same observation must produce identical
// bits, or the conformance hash would flake.
func TestGoldenGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("second full gridding pass in -short mode")
	}
	hash := func() string {
		o := goldenObservation(t)
		g, _, err := o.GridAll(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintGrid(g).SHA256
	}
	if a, b := hash(), hash(); a != b {
		t.Fatalf("two identical runs hashed differently: %s vs %s", a, b)
	}
}
