#!/bin/sh
# Kernel/pipeline benchmark runner: measures the gridder and degridder
# kernels (both precisions) and the full warm pipeline passes with
# allocation tracking, and writes the machine-readable
# BENCH_kernels.json (ns/op, allocs/op, visibilities/sec; see
# cmd/benchjson) for diffing against BENCH_kernels_seed.json.
#
# Usage:
#   scripts/bench.sh          # full run, rewrites BENCH_kernels.json
#   scripts/bench.sh -short   # 1-iteration smoke run (CI); result is
#                             # parsed and validated but not committed
#   scripts/bench.sh -distrib # re-measure the distributed scalability
#                             # benchmark and rewrite BENCH_distrib.json
#                             # (best of 3 runs, matching the CI gate)
#
# BENCH_OUT overrides the output path in any mode.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-distrib" ]; then
    out="${BENCH_OUT:-BENCH_distrib.json}"
    go test -run '^$' -bench 'BenchmarkDistribScale' -benchtime "${BENCH_TIME:-1s}" -count 3 . |
        go run ./cmd/benchjson -best > "$out"
    echo "bench.sh: wrote $out" >&2
    exit 0
fi

bench='BenchmarkGridderKernel$|BenchmarkGridderKernelFloat32$|BenchmarkDegridderKernel$|BenchmarkDegridderKernelFloat32$|BenchmarkFullGriddingPass$|BenchmarkFullDegriddingPass$|BenchmarkAdderKernel$|BenchmarkAdderSharded$|BenchmarkSplitterSharded$|BenchmarkStreamedGriddingPass$|BenchmarkSubgridFFTStage$|BenchmarkGridFFT2048$'
out="${BENCH_OUT:-BENCH_kernels.json}"
# The full pipeline passes take ~0.5 s per iteration; give them a few
# iterations so the committed numbers aren't single-sample noise.
benchtime="-benchtime=${BENCH_TIME:-3s}"
if [ "${1:-}" = "-short" ]; then
    benchtime='-benchtime=1x'
    if [ -z "${BENCH_OUT:-}" ]; then
        out="$(mktemp)"
        trap 'rm -f "$out"' EXIT
    fi
fi

raw="$(go test -run '^$' -bench "$bench" -benchmem $benchtime .)"
printf '%s\n' "$raw"
printf '%s\n' "$raw" | go run ./cmd/benchjson > "$out"
echo "bench.sh: wrote $out" >&2
