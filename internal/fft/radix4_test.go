package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/xmath"
)

// engineSizes is the coverage matrix the radix-4 rework must hold on:
// every length 1..17 (all three 1-D paths and their leading-stage
// parities), the paper's 24-pixel subgrid, pure powers of two, a
// 2/3/5-smooth length and primes (Bluestein).
var engineSizes = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
	24, 32, 64, 60, 31, 127,
}

func randSignal(seed int64, n int) []complex128 {
	rnd := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	return x
}

func maxRelDiff(got, want []complex128) float64 {
	var scale float64
	for _, v := range want {
		if a := cmplx.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	var worst float64
	for i := range got {
		if d := cmplx.Abs(got[i]-want[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// The new engine must match the naive O(n^2) DFT on every size.
func TestEngineMatchesDirectDFT(t *testing.T) {
	for _, n := range engineSizes {
		x := randSignal(int64(n), n)
		want := DFTDirect(x)
		got := append([]complex128(nil), x...)
		NewPlan(n).Forward(got)
		if d := maxRelDiff(got, want); d > 1e-12 {
			t.Errorf("n=%d: forward differs from direct DFT by %g", n, d)
		}
	}
}

// The new engine must match the legacy radix-2 path to reordered-
// summation rounding on every size.
func TestEngineMatchesLegacyRadix2(t *testing.T) {
	for _, n := range engineSizes {
		x := randSignal(int64(100+n), n)
		p := NewPlan(n)
		want := append([]complex128(nil), x...)
		p.forwardLegacy(want)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxRelDiff(got, want); d > 1e-13 {
			t.Errorf("n=%d: radix-4 differs from legacy radix-2 by %g", n, d)
		}
	}
}

// Forward then Inverse must reproduce the input on every size.
func TestEngineRoundTrip(t *testing.T) {
	for _, n := range engineSizes {
		x := randSignal(int64(200+n), n)
		got := append([]complex128(nil), x...)
		p := NewPlan(n)
		p.Forward(got)
		p.Inverse(got)
		if d := maxRelDiff(got, x); d > 1e-12 {
			t.Errorf("n=%d: roundtrip error %g", n, d)
		}
	}
}

// The fused-centering 2-D path must match the explicit rotate-based
// legacy path on even sizes (including rectangular and the odd-log2
// leading-stage case), and the odd-size fallback must match too.
func TestCenteredMatchesLegacy2D(t *testing.T) {
	cases := [][2]int{{2, 2}, {4, 4}, {8, 8}, {16, 16}, {24, 24}, {32, 32},
		{16, 24}, {24, 16}, {8, 32}, {25, 25}, {15, 9}, {64, 64}}
	for _, rc := range cases {
		rows, cols := rc[0], rc[1]
		x := randSignal(int64(rows*100+cols), rows*cols)
		p := NewPlan2D(rows, cols)
		for _, inverse := range []bool{false, true} {
			want := append([]complex128(nil), x...)
			got := append([]complex128(nil), x...)
			if inverse {
				p.InverseCenteredLegacy(want)
				p.InverseCentered(got)
			} else {
				p.ForwardCenteredLegacy(want)
				p.ForwardCentered(got)
			}
			if d := maxRelDiff(got, want); d > 1e-13 {
				t.Errorf("%dx%d inverse=%v: fused centering differs from legacy by %g",
					rows, cols, inverse, d)
			}
		}
	}
}

// Centered forward then centered inverse must reproduce the input.
func TestCenteredRoundTrip2D(t *testing.T) {
	for _, rc := range [][2]int{{16, 16}, {24, 24}, {25, 25}, {24, 32}} {
		rows, cols := rc[0], rc[1]
		x := randSignal(int64(rows+cols), rows*cols)
		got := append([]complex128(nil), x...)
		p := NewPlan2D(rows, cols)
		p.ForwardCentered(got)
		p.InverseCentered(got)
		if d := maxRelDiff(got, x); d > 1e-12 {
			t.Errorf("%dx%d: centered roundtrip error %g", rows, cols, d)
		}
	}
}

// TransformPlanes must equal the per-plane centered transforms (with
// the forward normalization applied separately), bitwise.
func TestTransformPlanesMatchesCentered(t *testing.T) {
	for _, n := range []int{16, 24, 25} {
		p := NewPlan2D(n, n)
		scale := complex(1/float64(n*n), 0)
		for _, inverse := range []bool{false, true} {
			planes := make([][]complex128, 4)
			want := make([][]complex128, 4)
			for c := range planes {
				planes[c] = randSignal(int64(n*10+c), n*n)
				want[c] = append([]complex128(nil), planes[c]...)
				if inverse {
					p.InverseCentered(want[c])
				} else {
					p.ForwardCentered(want[c])
					for i := range want[c] {
						want[c][i] *= scale
					}
				}
			}
			p.TransformPlanes(planes, inverse, scale)
			for c := range planes {
				for i := range planes[c] {
					if planes[c][i] != want[c][i] {
						t.Fatalf("n=%d inverse=%v plane %d elem %d: %v != %v",
							n, inverse, c, i, planes[c][i], want[c][i])
					}
				}
			}
		}
	}
}

// Plans built with the scalar tier must match plans built with the
// detected tier bitwise: the AVX2 butterflies perform the same IEEE
// operations as the scalar loops.
func TestEngineTierBitwise(t *testing.T) {
	defer func(orig func() xmath.SIMDTier) { planTier = orig }(planTier)
	for _, n := range []int{8, 16, 24, 32, 64, 128, 127} {
		x := randSignal(int64(300+n), n*n)

		planTier = func() xmath.SIMDTier { return xmath.SIMDScalar }
		scalar := append([]complex128(nil), x...)
		NewPlan2D(n, n).ForwardCentered(scalar)

		planTier = xmath.DetectedSIMD
		vec := append([]complex128(nil), x...)
		NewPlan2D(n, n).ForwardCentered(vec)

		for i := range scalar {
			if scalar[i] != vec[i] {
				t.Fatalf("n=%d elem %d: scalar %v != vector %v", n, i, scalar[i], vec[i])
			}
		}
	}
}

// TransformBatch and concurrent TransformPlanes from many goroutines
// share one plan's scratch pool; run under -race this checks the
// pooled buffers never alias.
func TestConcurrentPlaneTransformsRace(t *testing.T) {
	const n = 24
	p := NewPlan2D(n, n)
	scale := complex(1/float64(n*n), 0)
	want := randSignal(7, n*n)
	ref := append([]complex128(nil), want...)
	p.TransformPlanes([][]complex128{ref}, false, scale)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				x := append([]complex128(nil), want...)
				p.TransformPlanes([][]complex128{x}, false, scale)
				for i := range x {
					if x[i] != ref[i] {
						t.Errorf("concurrent transform diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// Steady-state transforms must not allocate: the column tiles, the
// 1-D scratch and the Bluestein convolution buffers are all pooled.
func TestTransformsZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" || raceEnabled {
		t.Skip("cover/race instrumentation allocates")
	}
	cases := []struct {
		name string
		run  func()
	}{
		{"ForwardCentered24", func() {
			p := CachedPlan2D(24, 24)
			x := make([]complex128, 24*24)
			p.ForwardCentered(x) // warm pools
			if n := testing.AllocsPerRun(10, func() { p.ForwardCentered(x) }); n > 0 {
				t.Errorf("ForwardCentered(24): %v allocs/op", n)
			}
		}},
		{"TransformPlanes16", func() {
			p := CachedPlan2D(16, 16)
			planes := make([][]complex128, 4)
			for c := range planes {
				planes[c] = make([]complex128, 16*16)
			}
			p.TransformPlanes(planes, false, 1)
			if n := testing.AllocsPerRun(10, func() { p.TransformPlanes(planes, true, 1) }); n > 0 {
				t.Errorf("TransformPlanes(16): %v allocs/op", n)
			}
		}},
		{"Bluestein127", func() {
			p := CachedPlan(127)
			x := make([]complex128, 127)
			p.Forward(x)
			if n := testing.AllocsPerRun(10, func() { p.Forward(x) }); n > 0 {
				t.Errorf("Bluestein(127): %v allocs/op", n)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { c.run() })
	}
}

// The centered transform of a centered impulse is flat with the right
// amplitude — a direct check of the fused sign bookkeeping (sigma and
// both checkerboards) against the analytic answer.
func TestFusedCenteringAnalytic(t *testing.T) {
	for _, n := range []int{8, 16, 24} {
		x := make([]complex128, n*n)
		x[(n/2)*n+n/2] = 1 // impulse at the phase center
		NewPlan2D(n, n).ForwardCentered(x)
		for i, v := range x {
			if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
				t.Fatalf("n=%d: spectrum[%d] = %v, want 1", n, i, v)
			}
		}
	}
}
