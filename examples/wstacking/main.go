// W-stacking: predict visibilities for a wide-field, low-elevation
// observation where the w terms are large. Plain IDG on a single w=0
// plane loses accuracy once the w-phase oscillates faster than the
// subgrid sampling; partitioning the visibilities into W-layers
// (Section IV: "larger subgrids can be used in connection with
// W-stacking") restores near-exact predictions. The example prints
// the degridding error of both pipelines against the analytic
// measurement equation.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/taper"

	"repro"
)

// buildObs creates a wide-field observation pointed far from transit
// (large w), with or without W-layers.
func buildObs(wstep float64) (*repro.Observation, repro.SkyModel, error) {
	cfg := repro.DefaultObservation()
	cfg.NrStations = 10
	cfg.NrTimesteps = 96
	cfg.NrChannels = 2
	cfg.GridSize = 256
	cfg.SubgridSize = 12
	cfg.KernelSupport = 3
	cfg.GridMargin = 32
	cfg.CoreOnly = true         // short baselines -> wide field of view
	cfg.HourAngleStartDeg = -82 // far from transit -> large w terms
	cfg.WStepLambda = wstep
	obs, err := cfg.BuildPlan()
	if err != nil {
		return nil, nil, err
	}
	if err := obs.AllocateVisibilities(); err != nil {
		return nil, nil, err
	}
	pixel := obs.ImageSize / float64(cfg.GridSize)
	// A source far from the phase center, where n(l,m) is largest.
	model := repro.SkyModel{{L: 85 * pixel, M: 62 * pixel, I: 1}}
	return obs, model, nil
}

// degridError predicts the model image through the pipeline and
// returns the maximum relative deviation from the analytic
// (taper-weighted) measurement equation.
func degridError(obs *repro.Observation, model repro.SkyModel, stacked bool) float64 {
	n := obs.Config.GridSize
	img := model.Rasterize(n, obs.ImageSize)
	var err error
	if stacked {
		_, err = obs.DegridWStacked(context.Background(), nil, img)
	} else {
		g := repro.ImageToGrid(img, 0)
		_, err = obs.DegridAll(context.Background(), nil, g)
	}
	if err != nil {
		log.Fatal(err)
	}
	// Expected: the source flux is weighted by the taper at its
	// position.
	src := model[0]
	half := obs.ImageSize / 2
	flux := src.I * taper.Spheroidal(src.L/half) * taper.Spheroidal(src.M/half)
	expect := repro.SkyModel{{L: src.L, M: src.M, I: flux}}
	freqs := obs.Config.Frequencies()
	maxErr := 0.0
	for b := range obs.Vis.Data {
		for t := 0; t < obs.Vis.NrTimesteps; t++ {
			coord := obs.Vis.UVW[b][t]
			for c := 0; c < obs.Vis.NrChannels; c++ {
				sc := coord.Scale(freqs[c])
				want := expect.Predict(sc.U, sc.V, sc.W)
				got := obs.Vis.Data[b][t*obs.Vis.NrChannels+c]
				if d := got.MaxAbsDiff(want) / flux; d > maxErr {
					maxErr = d
				}
			}
		}
	}
	return maxErr
}

func main() {
	plain, model, err := buildObs(0)
	if err != nil {
		log.Fatal(err)
	}
	maxW := plain.Simulator.MaxW(plain.Config.NrTimesteps) *
		plain.Config.StartFrequency / 299792458.0
	fmt.Printf("field of view %.3f direction cosines, max |w| = %.0f wavelengths\n",
		plain.ImageSize, maxW)

	plainErr := degridError(plain, model, false)
	fmt.Printf("\nplain IDG (single w-plane)  : max relative error %.2e\n", plainErr)

	stacked, model2, err := buildObs(60)
	if err != nil {
		log.Fatal(err)
	}
	planes := 0
	seen := map[int]bool{}
	for _, it := range stacked.Plan.Items {
		if !seen[it.WPlane] {
			seen[it.WPlane] = true
			planes++
		}
	}
	stackErr := degridError(stacked, model2, true)
	fmt.Printf("w-stacked IDG (%2d layers)   : max relative error %.2e\n", planes, stackErr)

	if stackErr > plainErr/5 {
		log.Fatal("w-stacking should improve degridding accuracy substantially")
	}
	if stackErr > 0.02 {
		log.Fatal("stacked error unexpectedly large")
	}
	fmt.Printf("\nw-stacking improved prediction accuracy by %.0fx\n", plainErr/stackErr)
}
