// Package layout generates synthetic radio-telescope station layouts.
// The paper's benchmark uses proposed antenna coordinates for the
// SKA1-low telescope (150 stations, 11,175 baselines); those exact
// coordinates are not distributed with the paper, so this package
// builds the standard SKA1-low-like configuration from its published
// design: a dense randomly-filled core plus three logarithmic spiral
// arms. A LOFAR-like compact configuration is provided as a second
// preset. Generation is deterministic given the seed.
package layout

import (
	"fmt"
	"math"
	"math/rand"
)

// Station is a station position in local east-north-up coordinates,
// in meters, relative to the array center.
type Station struct {
	Name    string
	E, N, U float64
}

// Config describes a generated array layout.
type Config struct {
	// NrStations is the total number of stations to place.
	NrStations int
	// CoreFraction is the fraction of stations inside the dense core.
	CoreFraction float64
	// CoreRadius is the core radius in meters.
	CoreRadius float64
	// ArmCount is the number of logarithmic spiral arms.
	ArmCount int
	// MaxRadius is the outer radius of the spiral arms in meters.
	MaxRadius float64
	// Seed makes the random core placement reproducible.
	Seed int64
}

// SKA1LowConfig returns the configuration used for the paper's
// benchmark dataset: 150 stations, dense ~500 m core holding half the
// stations, three spiral arms out to 35 km.
func SKA1LowConfig() Config {
	return Config{
		NrStations:   150,
		CoreFraction: 0.5,
		CoreRadius:   500,
		ArmCount:     3,
		MaxRadius:    35000,
		Seed:         0x5ca1ab1e,
	}
}

// LOFARLikeConfig returns a compact LOFAR-like configuration with ~50
// stations (Section I of the paper), useful for smaller tests.
func LOFARLikeConfig() Config {
	return Config{
		NrStations:   50,
		CoreFraction: 0.6,
		CoreRadius:   1500,
		ArmCount:     5,
		MaxRadius:    40000,
		Seed:         0x10f4a,
	}
}

// Generate places the stations of cfg. The core stations are drawn
// uniformly from a disc; the remaining stations are spread along
// logarithmic spiral arms with small deterministic jitter.
func Generate(cfg Config) []Station {
	if cfg.NrStations < 2 {
		panic(fmt.Sprintf("layout: need at least 2 stations, got %d", cfg.NrStations))
	}
	if cfg.ArmCount < 1 {
		panic("layout: need at least one arm")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	stations := make([]Station, 0, cfg.NrStations)

	nCore := int(float64(cfg.NrStations) * cfg.CoreFraction)
	for i := 0; i < nCore; i++ {
		// Uniform over the disc: radius ~ sqrt(u).
		r := cfg.CoreRadius * math.Sqrt(rng.Float64())
		phi := rng.Float64() * 2 * math.Pi
		stations = append(stations, Station{
			Name: fmt.Sprintf("C%03d", i),
			E:    r * math.Cos(phi),
			N:    r * math.Sin(phi),
		})
	}

	nArm := cfg.NrStations - nCore
	perArm := nArm / cfg.ArmCount
	extra := nArm - perArm*cfg.ArmCount
	idx := 0
	for a := 0; a < cfg.ArmCount; a++ {
		count := perArm
		if a < extra {
			count++
		}
		armPhase := 2 * math.Pi * float64(a) / float64(cfg.ArmCount)
		for i := 0; i < count; i++ {
			// Logarithmic radius progression from the core edge to
			// MaxRadius; winding of ~3/4 turn over the arm length.
			f := (float64(i) + 0.5) / float64(count)
			r := cfg.CoreRadius * math.Pow(cfg.MaxRadius/cfg.CoreRadius, f)
			phi := armPhase + 1.5*math.Pi*f
			// Jitter by up to 4% of the radius to avoid gridded
			// artifacts in the uv coverage.
			jr := 1 + 0.04*(rng.Float64()*2-1)
			jphi := 0.02 * (rng.Float64()*2 - 1)
			stations = append(stations, Station{
				Name: fmt.Sprintf("A%d%03d", a, i),
				E:    r * jr * math.Cos(phi+jphi),
				N:    r * jr * math.Sin(phi+jphi),
			})
			idx++
		}
	}
	return stations
}

// NrBaselines returns the number of distinct station pairs for n
// stations: n*(n-1)/2. For the paper's 150 stations this is 11,175.
func NrBaselines(nrStations int) int {
	return nrStations * (nrStations - 1) / 2
}

// MaxBaselineLength returns the longest pairwise distance in meters.
func MaxBaselineLength(stations []Station) float64 {
	maxLen := 0.0
	for i := range stations {
		for j := i + 1; j < len(stations); j++ {
			de := stations[i].E - stations[j].E
			dn := stations[i].N - stations[j].N
			du := stations[i].U - stations[j].U
			if l := math.Sqrt(de*de + dn*dn + du*du); l > maxLen {
				maxLen = l
			}
		}
	}
	return maxLen
}
