// Package noise adds thermal (radiometer) noise to simulated
// visibilities: independent complex Gaussian noise per correlation,
// the standard model for system-temperature noise after correlation.
// It lets the examples and tests study how imaging sensitivity scales
// with the visibility count — the sqrt(N) averaging gain that makes
// gridding throughput (Fig. 10) matter in the first place.
package noise

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// AddGaussian adds zero-mean complex Gaussian noise with standard
// deviation sigma per real component to every correlation of every
// visibility, deterministically from seed.
func AddGaussian(vs *core.VisibilitySet, sigma float64, seed int64) error {
	if sigma < 0 {
		return fmt.Errorf("noise: negative sigma %g", sigma)
	}
	if sigma == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	for b := range vs.Data {
		for i := range vs.Data[b] {
			for p := 0; p < 4; p++ {
				vs.Data[b][i][p] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			}
		}
	}
	return nil
}

// Stats summarizes the visibility distribution; tests use it to check
// the injected noise.
type Stats struct {
	Mean   complex128
	StdDev float64
	N      int64
}

// Measure computes first and second moments of the XX correlation.
func Measure(vs *core.VisibilitySet) Stats {
	var sumRe, sumIm, sum2 float64
	var n int64
	for b := range vs.Data {
		for i := range vs.Data[b] {
			v := vs.Data[b][i][0]
			sumRe += real(v)
			sumIm += imag(v)
			sum2 += real(v)*real(v) + imag(v)*imag(v)
			n++
		}
	}
	if n == 0 {
		return Stats{}
	}
	meanRe, meanIm := sumRe/float64(n), sumIm/float64(n)
	// Variance per real component.
	variance := sum2/float64(2*n) - (meanRe*meanRe+meanIm*meanIm)/2
	if variance < 0 {
		variance = 0
	}
	return Stats{
		Mean:   complex(meanRe, meanIm),
		StdDev: math.Sqrt(variance),
		N:      n,
	}
}

// ImageRMS returns the rms of an image region excluding a box around
// the given center (so source flux does not bias the noise estimate).
func ImageRMS(img []float64, n, cx, cy, exclude int) float64 {
	var s float64
	var count int
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if abs(x-cx) <= exclude && abs(y-cy) <= exclude {
				continue
			}
			v := img[y*n+x]
			s += v * v
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(s / float64(count))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
