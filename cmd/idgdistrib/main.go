// Command idgdistrib coordinates a distributed imaging pass on one
// machine: it execs -workers idgworker processes over localhost TCP,
// assigns each a partition of the plan along -axis, restarts killed
// workers with -resume so they continue from their private
// checkpoints, tree-reduces the delivered partial grids, and prints
// the final grid fingerprint (the same SHA-256 the golden conformance
// suite pins).
//
//	idgdistrib -workers 4 -axis rows -checkpoint-root /tmp/ckpt
//	idgdistrib -workers 4 -kill 2:before-rename   # chaos: worker 2 dies once
//
// A run with -kill must print the same final SHA-256 as a clean run
// of the same configuration: workers grid serially (bit-deterministic
// resume) and the reduction tree's associativity is fixed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"repro"
)

func main() {
	var (
		workers   = flag.Int("workers", 4, "worker processes")
		axisName  = flag.String("axis", "rows", "partition axis: rows or wplanes")
		ckptRoot  = flag.String("checkpoint-root", "", "root directory for per-worker checkpoint directories (empty: no checkpointing)")
		ckptEach  = flag.Int("checkpoint-every", 2, "checkpoint period in streamed chunks")
		chunkItem = flag.Int("chunk-items", 8, "work items per streamed chunk")
		restarts  = flag.Int("max-restarts", 2, "restart budget per worker")
		kill      = flag.String("kill", "", "inject one crash: index:event[@chunk] (e.g. 2:before-rename); applied to the worker's first attempt only")
		workerBin = flag.String("worker-bin", "", "path to the idgworker binary (default: next to this binary, else PATH)")
		outPath   = flag.String("out", "", "write the final grid (fingerprint byte order) to this file")
		jsonOut   = flag.Bool("json", false, "print the final fingerprint as JSON")
		verbose   = flag.Bool("v", false, "log coordinator progress")

		stations = flag.Int("stations", 10, "number of stations")
		steps    = flag.Int("steps", 48, "time steps")
		channels = flag.Int("channels", 4, "channels")
		gridSize = flag.Int("grid", 256, "grid size in pixels")
		subgrid  = flag.Int("subgrid", 16, "subgrid size in pixels")
		support  = flag.Int("support", 4, "kernel support in uv cells")
		margin   = flag.Int("margin", 16, "grid margin in pixels")
		aterm    = flag.Int("aterm-interval", 16, "time steps per A-term slot")
		wstep    = flag.Float64("wstep", 0, "W-layer thickness in wavelengths (0: no W-stacking)")
		sources  = flag.Int("sources", 3, "standard sky model sources")
	)
	flag.Parse()

	axis, err := repro.ParseDistribAxis(*axisName)
	if err != nil {
		fail(err)
	}
	killIndex, killSpec := -1, ""
	if *kill != "" {
		i := strings.IndexByte(*kill, ':')
		if i < 0 {
			fail(fmt.Errorf("-kill wants index:event[@chunk], got %q", *kill))
		}
		killIndex, err = strconv.Atoi((*kill)[:i])
		if err != nil || killIndex < 0 || killIndex >= *workers {
			fail(fmt.Errorf("-kill worker index in %q is not a worker of this run", *kill))
		}
		killSpec = (*kill)[i+1:]
		if *ckptRoot == "" {
			fail(fmt.Errorf("-kill needs -checkpoint-root: a killed worker resumes from its checkpoint"))
		}
	}

	bin := *workerBin
	if bin == "" {
		if self, err := os.Executable(); err == nil {
			cand := filepath.Join(filepath.Dir(self), "idgworker")
			if _, err := os.Stat(cand); err == nil {
				bin = cand
			}
		}
		if bin == "" {
			bin = "idgworker" // PATH lookup
		}
	}

	cfg := repro.ObservationConfig{
		NrStations:     *stations,
		NrTimesteps:    *steps,
		NrChannels:     *channels,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       *gridSize,
		SubgridSize:    *subgrid,
		KernelSupport:  *support,
		GridMargin:     *margin,
		ATermInterval:  *aterm,
		WStepLambda:    *wstep,
		Workers:        1,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var killed atomic.Bool
	launcher := repro.DistribLauncherFunc(func(ctx context.Context, spec repro.DistribWorkerSpec) error {
		args := []string{
			"-coordinator", spec.CoordinatorAddr,
			"-index", strconv.Itoa(spec.Index),
			"-workers", strconv.Itoa(spec.Workers),
			"-axis", spec.Axis.String(),
			"-stations", strconv.Itoa(*stations),
			"-steps", strconv.Itoa(*steps),
			"-channels", strconv.Itoa(*channels),
			"-grid", strconv.Itoa(*gridSize),
			"-subgrid", strconv.Itoa(*subgrid),
			"-support", strconv.Itoa(*support),
			"-margin", strconv.Itoa(*margin),
			"-aterm-interval", strconv.Itoa(*aterm),
			"-wstep", fmt.Sprint(*wstep),
			"-sources", strconv.Itoa(*sources),
			"-chunk-items", strconv.Itoa(*chunkItem),
		}
		if *ckptRoot != "" {
			args = append(args,
				"-checkpoint-dir", filepath.Join(*ckptRoot, fmt.Sprintf("worker%02d", spec.Index)),
				"-checkpoint-every", strconv.Itoa(*ckptEach))
		}
		if spec.Resume {
			args = append(args, "-resume")
		}
		if spec.Index == killIndex && !spec.Resume && killed.CompareAndSwap(false, true) {
			args = append(args, "-inject-crash", killSpec)
		}
		cmd := exec.CommandContext(ctx, bin, args...)
		cmd.Stdout = os.Stderr // worker chatter must not pollute the fingerprint output
		cmd.Stderr = os.Stderr
		return cmd.Run()
	})

	g, sum, err := repro.RunDistributed(ctx, repro.DistribOptions{
		Config:         cfg,
		Workers:        *workers,
		Axis:           axis,
		CheckpointRoot: *ckptRoot,
		MaxRestarts:    *restarts,
		ChunkItems:     *chunkItem,
		Launcher:       launcher,
		Logf: func(format string, args ...any) {
			if *verbose {
				fmt.Fprintf(os.Stderr, "idgdistrib: "+format+"\n", args...)
			}
		},
	})
	if err != nil {
		fail(err)
	}

	fp := repro.FingerprintGrid(g)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail(err)
		}
		if err := repro.WriteGridBinary(f, g); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *jsonOut {
		out := struct {
			repro.GridFingerprint
			Workers  int    `json:"workers"`
			Axis     string `json:"axis"`
			Restarts int    `json:"restarts"`
		}{fp, sum.Workers, sum.Axis.String(), sum.Restarts}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	}
	fmt.Printf("final sha256 %s (workers %d, axis %s, restarts %d, nonzero %d)\n",
		fp.SHA256, sum.Workers, sum.Axis, sum.Restarts, fp.Nonzero)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idgdistrib:", err)
	os.Exit(1)
}
