package flagging

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

func testSet(t *testing.T) *core.VisibilitySet {
	t.Helper()
	baselines := []uvwsim.Baseline{{P: 0, Q: 1}, {P: 0, Q: 2}}
	const nt, nc = 4, 3
	uvw := make([][]uvwsim.UVW, len(baselines))
	for b := range uvw {
		uvw[b] = make([]uvwsim.UVW, nt)
	}
	vs := core.MustNewVisibilitySet(baselines, uvw, nc)
	for b := range vs.Data {
		for i := range vs.Data[b] {
			for p := 0; p < 4; p++ {
				vs.Data[b][i][p] = complex(1, -1)
			}
		}
	}
	return vs
}

func TestSampleFinite(t *testing.T) {
	ok := xmath.Matrix2{1, 2i, -3, complex(4, -5)}
	if !SampleFinite(ok) {
		t.Fatal("finite sample reported non-finite")
	}
	for p := 0; p < 4; p++ {
		for _, bad := range []complex128{
			complex(math.NaN(), 0), complex(0, math.NaN()),
			complex(math.Inf(1), 0), complex(0, math.Inf(-1)),
		} {
			m := ok
			m[p] = bad
			if SampleFinite(m) {
				t.Fatalf("corrupt component %d (%v) reported finite", p, bad)
			}
		}
	}
}

func TestApplyFlagsNonFiniteAndClipped(t *testing.T) {
	vs := testSet(t)
	vs.Data[0][2][1] = complex(math.NaN(), 0)
	vs.Data[1][5][3] = complex(0, math.Inf(1))
	vs.Data[1][7][0] = complex(1e6, 0) // clipped, finite

	st := Apply(vs, Config{NonFinite: true, MaxAmplitude: 100})
	if st.NonFinite != 2 || st.Clipped != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Flagged != 3 || st.NewlyFlagged() != 3 {
		t.Fatalf("totals: %+v", st)
	}
	if st.Total != vs.NrVisibilities() {
		t.Fatalf("Total = %d, want %d", st.Total, vs.NrVisibilities())
	}
	nc := vs.NrChannels
	for _, want := range [][3]int{{0, 2 / nc, 2 % nc}, {1, 5 / nc, 5 % nc}, {1, 7 / nc, 7 % nc}} {
		if !vs.Flagged(want[0], want[1], want[2]) {
			t.Fatalf("sample %v not flagged", want)
		}
	}
	if vs.NrFlagged() != 3 {
		t.Fatalf("NrFlagged = %d", vs.NrFlagged())
	}
}

// A sample failing both detectors counts once, as NonFinite.
func TestApplyDetectorPrecedence(t *testing.T) {
	vs := testSet(t)
	vs.Data[0][0][0] = complex(math.Inf(1), 0)
	st := Apply(vs, Config{NonFinite: true, MaxAmplitude: 1})
	if st.NonFinite != 1 {
		t.Fatalf("NonFinite = %d", st.NonFinite)
	}
	// Every remaining sample has amplitude sqrt(2) > 1.
	if want := vs.NrVisibilities() - 1; st.Clipped != want {
		t.Fatalf("Clipped = %d, want %d", st.Clipped, want)
	}
}

func TestApplyIsIdempotent(t *testing.T) {
	vs := testSet(t)
	vs.Data[0][1][2] = complex(math.NaN(), math.NaN())
	cfg := DefaultConfig()
	first := Apply(vs, cfg)
	second := Apply(vs, cfg)
	if first.NewlyFlagged() != 1 {
		t.Fatalf("first pass flagged %d", first.NewlyFlagged())
	}
	if second.NewlyFlagged() != 0 {
		t.Fatalf("second pass re-flagged %d samples", second.NewlyFlagged())
	}
	if second.Flagged != 1 {
		t.Fatalf("second pass total %d", second.Flagged)
	}
}

func TestDisabledDetectorsAllocateNoFlags(t *testing.T) {
	vs := testSet(t)
	st := Apply(vs, Config{})
	if st.NewlyFlagged() != 0 || vs.Flags != nil {
		t.Fatalf("disabled pass mutated the set: %+v, flags %v", st, vs.Flags != nil)
	}
}

func TestConvenienceWrappers(t *testing.T) {
	vs := testSet(t)
	vs.Data[0][0][0] = complex(math.NaN(), 0)
	if n := FlagNonFinite(vs); n != 1 {
		t.Fatalf("FlagNonFinite = %d", n)
	}
	vs2 := testSet(t)
	if n := FlagAmplitude(vs2, 1); n != vs2.NrVisibilities() {
		t.Fatalf("FlagAmplitude = %d", n)
	}
}
