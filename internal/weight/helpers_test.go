package weight

import (
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/sky"
	"repro/internal/uvwsim"
)

// planFor builds the execution plan matching the test geometry.
func planFor(gridSize int, imageSize float64, freqs []float64, tracks [][]uvwsim.UVW) (*plan.Plan, error) {
	return plan.New(plan.Config{
		GridSize:    gridSize,
		SubgridSize: 24,
		ImageSize:   imageSize,
		Frequencies: freqs,
		// Match the margin the core kernels assume.
		KernelSupport:       6,
		ATermUpdateInterval: 0,
	}, tracks)
}

func coreNewGrid(n int) *grid.Grid { return grid.NewGrid(n) }

func stokesI(img *grid.Grid) []float64 { return sky.StokesI(img) }
