// Package dataio serializes observations to a compact binary format
// (the paper intends "to make both the input data as well as the
// software publicly available"; this is the repository's interchange
// format). A file holds the observation dimensions, channel
// frequencies, station pairs, double-precision uvw tracks and
// single-precision visibilities (the paper's implementations compute
// in float32), protected by a CRC-64 checksum.
package dataio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// magic identifies the file format; the trailing digit is the format
// version.
const magic = "IDGVIS1\n"

var crcTable = crc64.MakeTable(crc64.ECMA)

// Header describes a stored observation.
type Header struct {
	NrBaselines int
	NrTimesteps int
	NrChannels  int
	Frequencies []float64
}

// Write stores a visibility set and its channel frequencies.
func Write(w io.Writer, vs *core.VisibilitySet, freqs []float64) error {
	if len(freqs) != vs.NrChannels {
		return fmt.Errorf("dataio: %d frequencies for %d channels", len(freqs), vs.NrChannels)
	}
	crc := crc64.New(crcTable)
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	dims := []int64{int64(len(vs.Baselines)), int64(vs.NrTimesteps), int64(vs.NrChannels)}
	if err := binary.Write(bw, binary.LittleEndian, dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, freqs); err != nil {
		return err
	}
	for _, b := range vs.Baselines {
		if err := binary.Write(bw, binary.LittleEndian, [2]int32{int32(b.P), int32(b.Q)}); err != nil {
			return err
		}
	}
	// uvw tracks in double precision.
	for _, track := range vs.UVW {
		for _, c := range track {
			if err := binary.Write(bw, binary.LittleEndian, [3]float64{c.U, c.V, c.W}); err != nil {
				return err
			}
		}
	}
	// Visibilities in single precision, 4 correlations interleaved.
	buf := make([]float32, 8)
	for _, data := range vs.Data {
		for _, m := range data {
			for p := 0; p < 4; p++ {
				buf[2*p] = float32(real(m[p]))
				buf[2*p+1] = float32(imag(m[p]))
			}
			if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailing checksum over everything written so far (not itself
	// checksummed).
	return binary.Write(w, binary.LittleEndian, crc.Sum64())
}

// reader tracks a CRC while decoding.
type reader struct {
	r   *bufio.Reader
	crc hash.Hash64
}

func (rd *reader) read(v interface{}) error {
	return binary.Read(io.TeeReader(rd.r, rd.crc), binary.LittleEndian, v)
}

// ReadHeader decodes only the header of a stored observation.
func ReadHeader(r io.Reader) (Header, error) {
	rd := &reader{r: bufio.NewReader(r), crc: crc64.New(crcTable)}
	h, err := rd.header()
	return h, err
}

func (rd *reader) header() (Header, error) {
	var h Header
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(io.TeeReader(rd.r, rd.crc), got); err != nil {
		return h, fmt.Errorf("dataio: reading magic: %w", err)
	}
	if string(got) != magic {
		return h, fmt.Errorf("dataio: bad magic %q", got)
	}
	var dims [3]int64
	if err := rd.read(&dims); err != nil {
		return h, err
	}
	// Bound every dimension individually and in product before any
	// allocation happens, so a corrupt header is rejected with a
	// descriptive error instead of an attempted multi-terabyte
	// allocation. The caps comfortably cover the paper's full
	// benchmark (11175 baselines x 8192 steps x 16 channels).
	switch {
	case dims[0] < 1 || dims[0] > maxBaselines:
		return h, fmt.Errorf("dataio: implausible baseline count %d (max %d)", dims[0], int64(maxBaselines))
	case dims[1] < 1 || dims[1] > maxTimesteps:
		return h, fmt.Errorf("dataio: implausible timestep count %d (max %d)", dims[1], int64(maxTimesteps))
	case dims[2] < 1 || dims[2] > maxChannels:
		return h, fmt.Errorf("dataio: implausible channel count %d (max %d)", dims[2], int64(maxChannels))
	case dims[0]*dims[1]*dims[2] > maxSamples:
		return h, fmt.Errorf("dataio: implausible dimensions %v (%d samples > max %d)",
			dims, dims[0]*dims[1]*dims[2], int64(maxSamples))
	}
	h.NrBaselines = int(dims[0])
	h.NrTimesteps = int(dims[1])
	h.NrChannels = int(dims[2])
	h.Frequencies = make([]float64, h.NrChannels)
	if err := rd.read(&h.Frequencies); err != nil {
		return h, err
	}
	for i, f := range h.Frequencies {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return h, fmt.Errorf("dataio: bad frequency %d: %g", i, f)
		}
	}
	return h, nil
}

// Header plausibility bounds; crossing any of them means the file is
// corrupt (or from a far larger instrument than this format targets).
const (
	maxBaselines = 1 << 24 // ~16.7M baselines (> 5000 stations)
	maxTimesteps = 1 << 26 // ~67M steps (> 2 years at 1 s)
	maxChannels  = 1 << 16
	// maxSamples bounds the total visibility allocation (64 bytes per
	// sample => at most 128 GiB, the scale of the paper's full set).
	maxSamples = 1 << 31
)

// Read decodes a stored observation, verifying the checksum.
func Read(r io.Reader) (*core.VisibilitySet, []float64, error) {
	rd := &reader{r: bufio.NewReader(r), crc: crc64.New(crcTable)}
	h, err := rd.header()
	if err != nil {
		return nil, nil, err
	}
	baselines := make([]uvwsim.Baseline, h.NrBaselines)
	for i := range baselines {
		var pq [2]int32
		if err := rd.read(&pq); err != nil {
			return nil, nil, fmt.Errorf("dataio: reading baseline %d: %w", i, err)
		}
		if pq[0] < 0 || pq[1] < 0 {
			return nil, nil, fmt.Errorf("dataio: baseline %d has negative stations (%d, %d)", i, pq[0], pq[1])
		}
		baselines[i] = uvwsim.Baseline{P: int(pq[0]), Q: int(pq[1])}
	}
	// Allocate track by track so a truncated file fails on its first
	// short read instead of after the full up-front allocation.
	uvw := make([][]uvwsim.UVW, h.NrBaselines)
	for b := range uvw {
		uvw[b] = make([]uvwsim.UVW, h.NrTimesteps)
		for t := range uvw[b] {
			var c [3]float64
			if err := rd.read(&c); err != nil {
				return nil, nil, fmt.Errorf("dataio: reading uvw of baseline %d: %w", b, err)
			}
			uvw[b][t] = uvwsim.UVW{U: c[0], V: c[1], W: c[2]}
		}
	}
	vs, err := core.NewVisibilitySet(baselines, uvw, h.NrChannels)
	if err != nil {
		return nil, nil, fmt.Errorf("dataio: %w", err)
	}
	buf := make([]float32, 8)
	for b := range vs.Data {
		for i := range vs.Data[b] {
			if err := rd.read(&buf); err != nil {
				return nil, nil, fmt.Errorf("dataio: reading visibilities of baseline %d: %w", b, err)
			}
			var m xmath.Matrix2
			for p := 0; p < 4; p++ {
				m[p] = complex(float64(buf[2*p]), float64(buf[2*p+1]))
			}
			vs.Data[b][i] = m
		}
	}
	want := rd.crc.Sum64()
	var got uint64
	if err := binary.Read(rd.r, binary.LittleEndian, &got); err != nil {
		return nil, nil, fmt.Errorf("dataio: reading checksum: %w", err)
	}
	if got != want {
		return nil, nil, fmt.Errorf("dataio: checksum mismatch: file %016x, computed %016x", got, want)
	}
	return vs, h.Frequencies, nil
}
