package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// colBlock is the tile width of the cache-blocked column pass: B
// adjacent columns are gathered into a contiguous rows x B scratch,
// transformed as B-wide vector lanes (power-of-two rows) or B
// independent contiguous columns (mixed/Bluestein rows), and scattered
// back. Eight complex128 columns are two cache lines per tile row, so
// the gather walks the source at full line utilization, and the
// butterfly legs stride B*16 bytes instead of cols*16 — which for
// power-of-two grids would alias to a handful of L1 sets.
const colBlock = 8

// Plan2D performs 2-D transforms on row-major data of size rows x cols.
// Like Plan, a Plan2D is safe for concurrent use; per-call state lives
// in a pooled scratch struct so steady-state transforms allocate
// nothing.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan // length rows: transforms along a column
	colPlan    *Plan // length cols: transforms along a row
	sigma      complex128
	fusedOK    bool // fused centering needs both sides even
	scratch    sync.Pool
}

type p2dScratch struct {
	tile []complex128 // rows*colBlock tile / column staging
	oneD []complex128 // scratch for non-pow2 1-D transforms
}

// NewPlan2D creates a 2-D plan. Square plans share the underlying 1-D
// plan between the two dimensions.
func NewPlan2D(rows, cols int) *Plan2D {
	p := &Plan2D{rows: rows, cols: cols}
	p.colPlan = NewPlan(cols)
	if rows == cols {
		p.rowPlan = p.colPlan
	} else {
		p.rowPlan = NewPlan(rows)
	}
	p.fusedOK = rows%2 == 0 && cols%2 == 0
	p.sigma = 1
	if (rows/2+cols/2)%2 == 1 {
		p.sigma = -1
	}
	oneD := p.rowPlan.scratchLen()
	if l := p.colPlan.scratchLen(); l > oneD {
		oneD = l
	}
	p.scratch.New = func() interface{} {
		return &p2dScratch{
			tile: make([]complex128, rows*colBlock),
			oneD: make([]complex128, oneD),
		}
	}
	return p
}

// Rows returns the number of rows of the plan.
func (p *Plan2D) Rows() int { return p.rows }

// Cols returns the number of columns of the plan.
func (p *Plan2D) Cols() int { return p.cols }

func (p *Plan2D) checkLen(x []complex128) {
	if len(x) != p.rows*p.cols {
		panic(fmt.Sprintf("fft: input length %d does not match %dx%d plan",
			len(x), p.rows, p.cols))
	}
}

// Forward transforms x (row-major, rows x cols) in place.
func (p *Plan2D) Forward(x []complex128) {
	p.checkLen(x)
	p.runSerial(x, false, false, 1)
}

// Inverse applies the inverse 2-D transform in place, scaling by
// 1/(rows*cols) overall.
func (p *Plan2D) Inverse(x []complex128) {
	p.checkLen(x)
	p.runSerial(x, true, false, complex(1/float64(p.rows*p.cols), 0))
}

// runSerial is the 2-D driver: a row pass in place, then the blocked
// column pass tile by tile. fused folds the centering sign flips into
// the passes; scale is applied once, during the column-tile scatter.
func (p *Plan2D) runSerial(x []complex128, inverse, fused bool, scale complex128) {
	sc := p.scratch.Get().(*p2dScratch)
	p.rowPass(x, 0, p.rows, inverse, fused, sc)
	for c0 := 0; c0 < p.cols; c0 += colBlock {
		cw := p.cols - c0
		if cw > colBlock {
			cw = colBlock
		}
		p.colTile(x, c0, cw, inverse, fused, scale, sc)
	}
	p.scratch.Put(sc)
}

// rowPass transforms rows [r0, r1) in place. preFlip negates the
// odd-index elements of every row first: the (-1)^c half of the fused
// centering's (-1)^(r+c) input checkerboard.
func (p *Plan2D) rowPass(x []complex128, r0, r1 int, inverse, preFlip bool, sc *p2dScratch) {
	for r := r0; r < r1; r++ {
		row := x[r*p.cols : (r+1)*p.cols]
		if preFlip {
			flipOdd(row)
		}
		if inverse {
			p.colPlan.backwardWith(row, sc.oneD)
		} else {
			p.colPlan.forwardWith(row, sc.oneD)
		}
	}
}

// colTile transforms columns [c0, c0+cw) of x. When fused, the gather
// applies the (-1)^r input flip and the scatter applies the output
// checkerboard (-1)^(k+l) together with the scale (which already
// carries the caller's sigma factor).
func (p *Plan2D) colTile(x []complex128, c0, cw int, inverse, fused bool, scale complex128, sc *p2dScratch) {
	rows, cols := p.rows, p.cols
	if p.rowPlan.pow2 {
		// Gather into a row-major rows x cw tile and run the engine's
		// lane-parallel schedule directly on it.
		tile := sc.tile[:rows*cw]
		for r := 0; r < rows; r++ {
			src := x[r*cols+c0 : r*cols+c0+cw]
			dst := tile[r*cw : r*cw+cw]
			if fused && r&1 == 1 {
				for j, v := range src {
					dst[j] = -v
				}
			} else {
				copy(dst, src)
			}
		}
		p.rowPlan.colPow2(tile, cw, inverse)
		p.scatterTile(x, tile, c0, cw, fused, scale)
		return
	}
	// Non-power-of-two rows: stage each column contiguously and run cw
	// independent 1-D transforms.
	for j := 0; j < cw; j++ {
		col := sc.tile[j*rows : (j+1)*rows]
		for r := 0; r < rows; r++ {
			v := x[r*cols+c0+j]
			if fused && r&1 == 1 {
				v = -v
			}
			col[r] = v
		}
		if inverse {
			p.rowPlan.backwardWith(col, sc.oneD)
		} else {
			p.rowPlan.forwardWith(col, sc.oneD)
		}
	}
	// Scatter column-major staging back (transposed relative to
	// scatterTile's row-major tile).
	for r := 0; r < rows; r++ {
		dst := x[r*cols+c0 : r*cols+c0+cw]
		if !fused {
			if scale == 1 {
				for j := 0; j < cw; j++ {
					dst[j] = sc.tile[j*rows+r]
				}
			} else {
				for j := 0; j < cw; j++ {
					dst[j] = sc.tile[j*rows+r] * scale
				}
			}
			continue
		}
		s := scale
		if (r+c0)&1 == 1 {
			s = -scale
		}
		for j := 0; j < cw; j++ {
			dst[j] = sc.tile[j*rows+r] * s
			s = -s
		}
	}
}

// scatterTile writes a row-major rows x cw tile back into columns
// [c0, c0+cw), applying the output checkerboard and scale.
func (p *Plan2D) scatterTile(x, tile []complex128, c0, cw int, fused bool, scale complex128) {
	rows, cols := p.rows, p.cols
	for r := 0; r < rows; r++ {
		src := tile[r*cw : r*cw+cw]
		dst := x[r*cols+c0 : r*cols+c0+cw]
		if !fused {
			if scale == 1 {
				copy(dst, src)
			} else {
				for j, v := range src {
					dst[j] = v * scale
				}
			}
			continue
		}
		s := scale
		if (r+c0)&1 == 1 {
			s = -scale
		}
		for j, v := range src {
			dst[j] = v * s
			s = -s
		}
	}
}

func flipOdd(x []complex128) {
	for i := 1; i < len(x); i += 2 {
		x[i] = -x[i]
	}
}

// ForwardParallel transforms x in place using up to workers goroutines
// (<=0 means GOMAXPROCS). Large grid transforms (2048 x 2048 in the
// paper's dataset) benefit from this; subgrid transforms are too small
// and are instead batched across subgrids, see TransformBatch.
func (p *Plan2D) ForwardParallel(x []complex128, workers int) {
	p.checkLen(x)
	p.runParallel(x, false, false, 1, workers)
}

// InverseParallel is the parallel variant of Inverse.
func (p *Plan2D) InverseParallel(x []complex128, workers int) {
	p.checkLen(x)
	p.runParallel(x, true, false, complex(1/float64(p.rows*p.cols), 0), workers)
}

// runParallel splits the row pass by row ranges and the column pass by
// tile ranges. Tiles are independent and the per-column math is
// identical to the serial schedule, so parallel output is bitwise
// equal to serial.
func (p *Plan2D) runParallel(x []complex128, inverse, fused bool, scale complex128, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.rows {
		workers = p.rows
	}
	if workers <= 1 {
		p.runSerial(x, inverse, fused, scale)
		return
	}
	var wg sync.WaitGroup
	chunk := (p.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p.rows {
			hi = p.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := p.scratch.Get().(*p2dScratch)
			p.rowPass(x, lo, hi, inverse, fused, sc)
			p.scratch.Put(sc)
		}(lo, hi)
	}
	wg.Wait()
	tiles := (p.cols + colBlock - 1) / colBlock
	tw := workers
	if tw > tiles {
		tw = tiles
	}
	chunk = (tiles + tw - 1) / tw
	for w := 0; w < tw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > tiles {
			hi = tiles
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := p.scratch.Get().(*p2dScratch)
			for t := lo; t < hi; t++ {
				c0 := t * colBlock
				cw := p.cols - c0
				if cw > colBlock {
					cw = colBlock
				}
				p.colTile(x, c0, cw, inverse, fused, scale, sc)
			}
			p.scratch.Put(sc)
		}(lo, hi)
	}
	wg.Wait()
}

// TransformBatch applies the plan to many independent row-major arrays
// in parallel (the "embarrassingly parallel" subgrid FFT step of the
// paper, Section V-B(c)). Each element of batch must have length
// rows*cols. inverse selects the transform direction.
func (p *Plan2D) TransformBatch(batch [][]complex128, inverse bool, workers int) {
	scale := complex128(1)
	if inverse {
		scale = complex(1/float64(p.rows*p.cols), 0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for _, x := range batch {
			p.checkLen(x)
			p.runSerial(x, inverse, false, scale)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan []complex128, len(batch))
	for _, x := range batch {
		next <- x
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for x := range next {
				p.checkLen(x)
				p.runSerial(x, inverse, false, scale)
			}
		}()
	}
	wg.Wait()
}

// TransformPlanes runs the centered transform on each plane (all four
// correlations of one subgrid, typically) and multiplies by scale, all
// in one pass: TransformPlanes(planes, inverse, 1/(rows*cols)) is
// InverseCentered on every plane, and the forward direction matches
// ForwardCentered followed by a scale sweep — with the shift rotates
// and the normalization sweep fused away.
func (p *Plan2D) TransformPlanes(planes [][]complex128, inverse bool, scale complex128) {
	if !p.fusedOK {
		// Odd sizes fall back to explicit shift rotates around the
		// blocked transform; scale stays fused into the column scatter.
		for _, x := range planes {
			p.checkLen(x)
			InverseShift2D(x, p.rows, p.cols)
			p.runSerial(x, inverse, false, scale)
			Shift2D(x, p.rows, p.cols)
		}
		return
	}
	for _, x := range planes {
		p.checkLen(x)
		p.runSerial(x, inverse, true, p.sigma*scale)
	}
}
