package repro

import (
	"context"
	"math"
	"testing"
)

func TestATermProviderConstructors(t *testing.T) {
	id := IdentityATerms()
	if d := id.Evaluate(0, 0, 0.01, 0.01).MaxAbsDiff(Identity2()); d != 0 {
		t.Fatal("identity provider wrong")
	}
	beam := GaussianBeamATerms(0.05, 0)
	center := beam.Evaluate(0, 0, 0, 0)
	edge := beam.Evaluate(0, 0, 0.05, 0)
	if real(edge[0]) >= real(center[0]) {
		t.Fatal("beam must fall off")
	}
	screen := PhaseScreenATerms(10)
	m := screen.Evaluate(1, 1, 0.01, 0.02)
	if math.Abs(real(m[0])*real(m[0])+imag(m[0])*imag(m[0])-1) > 1e-12 {
		t.Fatal("phase screen must be unimodular")
	}
}

func TestATermSchedulerAlias(t *testing.T) {
	s := ATermScheduler{UpdateInterval: 128}
	if s.Slot(129) != 1 {
		t.Fatal("scheduler alias broken")
	}
}

func TestCleanThroughFacade(t *testing.T) {
	n := 32
	psf := make([]float64, n*n)
	psf[(n/2)*n+n/2] = 1
	dirty := make([]float64, n*n)
	dirty[10*n+12] = 2
	res, err := Hogbom(dirty, psf, n, CleanParams{Gain: 0.5, MaxIterations: 100, Threshold: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model[10*n+12]-2) > 1e-6 {
		t.Fatalf("CLEAN through facade recovered %g", res.Model[10*n+12])
	}
	restored := RestoreImage(res, n, 1.5)
	if restored[10*n+12] < 1.9 {
		t.Fatal("restore through facade lost flux")
	}
}

func TestPixelLMHelpers(t *testing.T) {
	l, m := PixelToLM(140, 100, 256, 0.1)
	x, y := LMToPixel(l, m, 256, 0.1)
	if x != 140 || y != 100 {
		t.Fatalf("pixel roundtrip (%d,%d)", x, y)
	}
}

func TestScaleImageAndWScreen(t *testing.T) {
	img := NewGrid(16)
	img.Set(0, 8, 8, 2)
	ScaleImage(img, 0.5)
	if img.At(0, 8, 8) != 1 {
		t.Fatal("ScaleImage wrong")
	}
	orig := img.Clone()
	ApplyWScreen(img, 0.2, 50, +1)
	ApplyWScreen(img, 0.2, 50, -1)
	if d := img.MaxAbsDiff(orig); d > 1e-9 {
		t.Fatalf("w screen roundtrip %g", d)
	}
}

func TestObservationPSF(t *testing.T) {
	cfg := smallObservation()
	obs, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Put data in; PSF must not clobber it.
	pix := obs.ImageSize / float64(cfg.GridSize)
	obs.FillFromModel(SkyModel{{L: 10 * pix, M: 0, I: 1}})
	before := obs.Vis.Data[0][0]
	psf, err := obs.PSF(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if obs.Vis.Data[0][0] != before {
		t.Fatal("PSF computation clobbered the visibilities")
	}
	center := (cfg.GridSize/2)*cfg.GridSize + cfg.GridSize/2
	if math.Abs(psf[center]-1) > 0.02 {
		t.Fatalf("PSF peak %.3f, want 1", psf[center])
	}
	// PSF is symmetric about the center for conjugate-covered uv.
	off := psf[center+5]
	mirror := psf[center-5]
	if math.Abs(off-mirror) > 0.05 {
		t.Fatalf("PSF asymmetric: %g vs %g", off, mirror)
	}
}

func TestWStackedFacadeRoundtrip(t *testing.T) {
	cfg := smallObservation()
	cfg.SubgridSize = 16
	cfg.KernelSupport = 4
	cfg.CoreOnly = true
	cfg.HourAngleStartDeg = -60
	cfg.WStepLambda = 100
	obs, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	pix := obs.ImageSize / float64(cfg.GridSize)
	model := SkyModel{{L: 15 * pix, M: 10 * pix, I: 1}}
	obs.FillFromModel(model)
	grids, times, err := obs.GridWStacked(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if times.Gridder <= 0 {
		t.Fatal("no gridder time recorded")
	}
	img := obs.CombineWStackedImage(grids)
	if img.Norm2() == 0 {
		t.Fatal("empty combined image")
	}
	// Degrid through the facade too.
	modelImg := model.Rasterize(cfg.GridSize, obs.ImageSize)
	if _, err := obs.DegridWStacked(context.Background(), nil, modelImg); err != nil {
		t.Fatal(err)
	}
	if obs.Vis.Data[0][0] == (Matrix2{}) {
		t.Fatal("degrid produced no data")
	}
}
