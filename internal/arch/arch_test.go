package arch

import (
	"math"
	"testing"
)

// TestTableIValues pins the platform descriptions to Table I of the
// paper.
func TestTableIValues(t *testing.T) {
	h, f, p := Haswell(), Fiji(), Pascal()

	if h.NrFPUs() != 448 {
		t.Fatalf("Haswell FPUs = %d, want 448", h.NrFPUs())
	}
	if f.NrFPUs() != 4096 {
		t.Fatalf("Fiji FPUs = %d, want 4096", f.NrFPUs())
	}
	if p.NrFPUs() != 2560 {
		t.Fatalf("Pascal FPUs = %d, want 2560", p.NrFPUs())
	}

	cases := []struct {
		pl         *Platform
		peak, bw   float64
		tdp, clock float64
	}{
		{h, 2.78, 136, 290, 2.60},
		{f, 8.60, 512, 275, 1.05},
		{p, 9.22, 320, 180, 1.80},
	}
	for _, c := range cases {
		if c.pl.PeakTFlops != c.peak || c.pl.MemBandwidthGBs != c.bw ||
			c.pl.TDPWatts != c.tdp || c.pl.ClockGHz != c.clock {
			t.Fatalf("%s: Table I values wrong: %+v", c.pl.Name, c.pl)
		}
	}
}

func TestFijiPeakConsistentWithConfig(t *testing.T) {
	// For the GPUs the peak follows from FPUs x 2 x clock.
	f := Fiji()
	want := float64(f.NrFPUs()) * 2 * f.ClockGHz * 1e9 / 1e12
	if math.Abs(want-f.PeakTFlops) > 0.01 {
		t.Fatalf("Fiji peak %g inconsistent with config (%g)", f.PeakTFlops, want)
	}
	p := Pascal()
	want = float64(p.NrFPUs()) * 2 * p.ClockGHz * 1e9 / 1e12
	if math.Abs(want-p.PeakTFlops) > 0.01 {
		t.Fatalf("Pascal peak %g inconsistent with config (%g)", p.PeakTFlops, want)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"HASWELL", "FIJI", "PASCAL"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%q) failed: %v", name, err)
		}
	}
	if _, err := ByName("EPYC"); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestMixFractionLimits(t *testing.T) {
	for _, p := range Platforms() {
		// Pure FMA stream reaches the peak.
		if f := p.MixFraction(1e9); math.Abs(f-1) > 1e-6 {
			t.Fatalf("%s: fraction at huge rho = %g, want 1", p.Name, f)
		}
		// Fractions never exceed 1 (the ops definition counts a
		// sincos pair as only 2 ops).
		for _, rho := range []float64{0, 0.5, 1, 2, 4, 8, 17, 64, 1024} {
			if f := p.MixFraction(rho); f < 0 || f > 1 {
				t.Fatalf("%s: fraction(%g) = %g out of range", p.Name, rho, f)
			}
		}
	}
}

func TestMixFractionMonotone(t *testing.T) {
	for _, p := range Platforms() {
		prev := -1.0
		for rho := 0.25; rho <= 4096; rho *= 2 {
			f := p.MixFraction(rho)
			if f < prev-1e-12 {
				t.Fatalf("%s: fraction not monotone at rho=%g", p.Name, rho)
			}
			prev = f
		}
	}
}

// TestSincosHardwareAdvantage reproduces the core observation of
// Fig. 12: at the kernels' rho = 17, Pascal retains nearly its full
// throughput thanks to the SFUs, while Fiji and Haswell lose half or
// more of theirs.
func TestSincosHardwareAdvantage(t *testing.T) {
	h, f, p := Haswell(), Fiji(), Pascal()
	fh := h.MixFraction(KernelRho)
	ff := f.MixFraction(KernelRho)
	fp := p.MixFraction(KernelRho)
	if fp < 0.90 {
		t.Fatalf("Pascal fraction at rho=17 is %.3f, want >= 0.90 (SFU overlap)", fp)
	}
	if ff > 0.60 || ff < 0.40 {
		t.Fatalf("Fiji fraction at rho=17 is %.3f, want ~0.5 (quarter-rate ALUs)", ff)
	}
	if fh > 0.30 {
		t.Fatalf("Haswell fraction at rho=17 is %.3f, want <= 0.30 (software sincos)", fh)
	}
	if !(fp > ff && ff > fh) {
		t.Fatalf("ordering violated: pascal %.3f, fiji %.3f, haswell %.3f", fp, ff, fh)
	}
}

// TestPascalSFUSaturation: for very small rho the SFU queue becomes
// the bottleneck and even Pascal's throughput falls.
func TestPascalSFUSaturation(t *testing.T) {
	p := Pascal()
	if f := p.MixFraction(1); f > 0.5 {
		t.Fatalf("Pascal at rho=1 should be SFU-bound, got fraction %.3f", f)
	}
	// But still far better than the ALU platforms.
	if p.MixFraction(1) < 2*Fiji().MixFraction(1) {
		t.Fatal("Pascal should dominate Fiji at small rho")
	}
}

func TestMixFractionPanicsOnNegativeRho(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Haswell().MixFraction(-1)
}

func TestMixOpsPerSec(t *testing.T) {
	p := Pascal()
	if got := p.MixOpsPerSec(1e9); math.Abs(got-9.22e12) > 1e9 {
		t.Fatalf("peak ops = %g", got)
	}
}

// TestHostLike pins the synthetic host platform used by cmd/idgbench
// for its measured-vs-roofline readout.
func TestHostLike(t *testing.T) {
	h := HostLike(4)
	if h.NrComputeUnits != 4 {
		t.Fatalf("cores = %d", h.NrComputeUnits)
	}
	// Peak must be cores * clock * FPU issue * vector width * 2 (FMA).
	want := 4 * 2.7e9 * 2 * 4 * 2 / 1e12
	if math.Abs(h.PeakTFlops-want) > 1e-9 {
		t.Fatalf("PeakTFlops = %g, want %g", h.PeakTFlops, want)
	}
	// Degenerate core counts clamp to one unit instead of a zero roof.
	if h0 := HostLike(0); h0.NrComputeUnits < 1 || h0.PeakTFlops <= 0 {
		t.Fatalf("HostLike(0) = %+v", h0)
	}
	// The sincos-bound mix fraction must behave like the other ALU
	// platforms: well below peak at rho=1, approaching peak at high rho.
	if f := h.MixFraction(1); f > 0.2 {
		t.Fatalf("host at rho=1 should be sincos-bound, got fraction %.3f", f)
	}
	if f := h.MixFraction(4096); f < 0.9 {
		t.Fatalf("host at rho=4096 should approach peak, got fraction %.3f", f)
	}
	// HOST is a diagnostic platform, not a paper row: it must not leak
	// into the Fig. 9-16 platform sweeps.
	for _, p := range Platforms() {
		if p.Name == h.Name {
			t.Fatal("HostLike leaked into Platforms()")
		}
	}
}
