package distrib

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/grid"
)

// Config configures a coordinator.
type Config struct {
	// Workers is the number of partitions (and worker processes).
	Workers int
	// Axis is the partition axis every worker must announce.
	Axis Axis
	// GridSize is the expected grid size of every partial.
	GridSize int
	// ExpectPlanSums, when non-nil, pins each worker's sub-plan
	// fingerprint: a Hello whose PlanSum differs from
	// ExpectPlanSums[worker] is rejected — the worker is gridding a
	// different partition (or a different observation) than assigned.
	// Must have length Workers when set.
	ExpectPlanSums [][32]byte
	// MaxPayload caps reduction frame payloads on both sides
	// (<= 0: the server package's default).
	MaxPayload int
	// MaxRestarts bounds how many times one worker may be relaunched
	// (with Resume set) after a failure. 0 means a failed worker fails
	// the run.
	MaxRestarts int
	// ResultWait bounds how long the coordinator waits for a worker's
	// result frames after its launcher reports a clean exit — the
	// window in which an in-flight reduction stream finishes decoding.
	// <= 0 selects 30 seconds.
	ResultWait time.Duration
	// Logf, when set, receives progress notes.
	Logf func(format string, args ...any)
}

// DefaultResultWait bounds the post-exit result wait when Config
// leaves it zero.
const DefaultResultWait = 30 * time.Second

// Summary reports how a distributed run went.
type Summary struct {
	Workers int
	Axis    Axis
	// Restarts counts worker relaunches across the whole run.
	Restarts int
	// Discarded counts reduction streams rejected before acceptance
	// (bad hello, fingerprint mismatch, truncation).
	Discarded int
	// WorkerFingerprints holds every accepted partial's fingerprint,
	// indexed by worker.
	WorkerFingerprints []Fingerprint
	// Final is the fingerprint of the reduced grid.
	Final Fingerprint
	// Notes records rejected streams and relaunches, newest last.
	Notes []string
}

// Coordinator assigns partitions, accepts reduction streams, restarts
// failed workers with Resume set, and tree-reduces the accepted
// partials into the final grid. One Coordinator runs one distributed
// pass: create, Run, discard.
type Coordinator struct {
	cfg Config
	ln  net.Listener

	mu        sync.Mutex
	partials  []*grid.Grid  // accepted partial per worker, nil until delivered
	prints    []Fingerprint // fingerprint per accepted partial
	arrived   []chan struct{}
	restarts  int
	discarded int
	notes     []string
}

// New validates cfg and opens the coordinator's loopback listener.
// The caller must Run (which closes the listener) or Close.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("distrib: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.GridSize < 1 {
		return nil, fmt.Errorf("distrib: invalid grid size %d", cfg.GridSize)
	}
	if cfg.Axis != AxisRows && cfg.Axis != AxisWPlanes {
		return nil, fmt.Errorf("distrib: unknown partition axis %d", cfg.Axis)
	}
	if cfg.ExpectPlanSums != nil && len(cfg.ExpectPlanSums) != cfg.Workers {
		return nil, fmt.Errorf("distrib: %d plan fingerprints for %d workers", len(cfg.ExpectPlanSums), cfg.Workers)
	}
	if cfg.ResultWait <= 0 {
		cfg.ResultWait = DefaultResultWait
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("distrib: opening coordinator listener: %w", err)
	}
	c := &Coordinator{
		cfg:      cfg,
		ln:       ln,
		partials: make([]*grid.Grid, cfg.Workers),
		prints:   make([]Fingerprint, cfg.Workers),
		arrived:  make([]chan struct{}, cfg.Workers),
	}
	for i := range c.arrived {
		c.arrived[i] = make(chan struct{})
	}
	return c, nil
}

// Addr returns the coordinator's listen address for WorkerSpecs.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the listener without running (error cleanup path).
func (c *Coordinator) Close() error { return c.ln.Close() }

func (c *Coordinator) note(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.mu.Lock()
	c.notes = append(c.notes, msg)
	c.mu.Unlock()
	if c.cfg.Logf != nil {
		c.cfg.Logf("%s", msg)
	}
}

// Run launches every worker through the launcher, restarts failures
// with Resume set up to MaxRestarts each, accepts and verifies their
// reduction streams, and returns the tree-reduced grid with a run
// summary. The listener is closed on return.
func (c *Coordinator) Run(ctx context.Context, launcher Launcher) (*grid.Grid, *Summary, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	defer c.ln.Close()

	var accepting sync.WaitGroup
	go c.acceptLoop(ctx, &accepting)

	var wg sync.WaitGroup
	errs := make([]error, c.cfg.Workers)
	for i := 0; i < c.cfg.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.manageWorker(ctx, launcher, i)
			if errs[i] != nil {
				cancel() // one worker out of budget fails the run
			}
		}(i)
	}
	wg.Wait()
	c.ln.Close() // unblock Accept, then drain in-flight streams
	accepting.Wait()

	// Report the root cause: one worker's failure cancels the others,
	// so a bare context.Canceled is fallout, not the failure itself.
	firstErr := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if firstErr < 0 {
			firstErr = i
		}
		if !errors.Is(err, context.Canceled) {
			return nil, nil, fmt.Errorf("distrib: worker %d: %w", i, err)
		}
	}
	if firstErr >= 0 {
		return nil, nil, fmt.Errorf("distrib: worker %d: %w", firstErr, errs[firstErr])
	}

	c.mu.Lock()
	sum := &Summary{
		Workers:            c.cfg.Workers,
		Axis:               c.cfg.Axis,
		Restarts:           c.restarts,
		Discarded:          c.discarded,
		WorkerFingerprints: append([]Fingerprint(nil), c.prints...),
		Notes:              append([]string(nil), c.notes...),
	}
	gs := append([]*grid.Grid(nil), c.partials...)
	c.mu.Unlock()

	g := TreeReduce(gs)
	if g == nil {
		g = grid.NewGrid(c.cfg.GridSize)
	}
	sum.Final = FingerprintOf(g)
	return g, sum, nil
}

// manageWorker runs one worker to acceptance: launch, wait for its
// exit, and either confirm its result arrived or relaunch with Resume
// while the restart budget lasts.
func (c *Coordinator) manageWorker(ctx context.Context, launcher Launcher, i int) error {
	for attempt := 0; ; attempt++ {
		spec := WorkerSpec{
			Index:           i,
			Workers:         c.cfg.Workers,
			Axis:            c.cfg.Axis,
			Resume:          attempt > 0,
			CoordinatorAddr: c.Addr(),
		}
		lerr := launcher.Start(ctx, spec)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if lerr == nil {
			// Clean exit: the result may still be decoding in the accept
			// goroutine; give the stream a bounded window to land.
			select {
			case <-c.arrived[i]:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.cfg.ResultWait):
				lerr = errors.New("worker exited cleanly but its result never arrived")
			}
		} else {
			// A worker can die after a complete delivery (e.g. a crash in
			// teardown); an accepted result outranks the exit status.
			select {
			case <-c.arrived[i]:
				c.note("worker %d attempt %d failed after delivering (%v); result kept", i, attempt+1, lerr)
				return nil
			default:
			}
		}
		if attempt >= c.cfg.MaxRestarts {
			return fmt.Errorf("failed after %d attempt(s): %w", attempt+1, lerr)
		}
		c.mu.Lock()
		c.restarts++
		c.mu.Unlock()
		c.note("worker %d attempt %d failed (%v); relaunching with resume", i, attempt+1, lerr)
	}
}

// acceptLoop accepts reduction streams until the listener closes.
func (c *Coordinator) acceptLoop(ctx context.Context, accepting *sync.WaitGroup) {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed by Run
		}
		accepting.Add(1)
		go func() {
			defer accepting.Done()
			c.handleStream(ctx, conn)
		}()
	}
}

// handleStream decodes one worker's reduction stream, assembles its
// partial grid, and accepts it only if the recomputed fingerprint
// matches the one the worker declared. A stream failing any check is
// discarded whole; the worker's manager will time out and relaunch.
func (c *Coordinator) handleStream(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	br := bufio.NewReaderSize(conn, 1<<16)

	f, err := ReadReduceFrame(br, c.cfg.MaxPayload)
	if err != nil {
		c.discard("stream with no hello: %v", err)
		return
	}
	h, err := DecodeHello(f)
	if err != nil {
		c.discard("bad hello: %v", err)
		return
	}
	if h.Worker < 0 || h.Worker >= c.cfg.Workers || h.Workers != c.cfg.Workers || h.Axis != c.cfg.Axis {
		c.discard("hello for worker %d/%d axis %v does not match run (%d workers, axis %v)",
			h.Worker, h.Workers, h.Axis, c.cfg.Workers, c.cfg.Axis)
		return
	}
	if c.cfg.ExpectPlanSums != nil && h.PlanSum != c.cfg.ExpectPlanSums[h.Worker] {
		c.discard("worker %d announced a sub-plan fingerprint that does not match its assigned partition", h.Worker)
		return
	}

	g := grid.NewGrid(c.cfg.GridSize)
	for {
		f, err := ReadReduceFrame(br, c.cfg.MaxPayload)
		if err != nil {
			c.discard("worker %d stream truncated: %v", h.Worker, err)
			return
		}
		switch f.Type {
		case FrameBand:
			if _, _, err := DecodeBandInto(g, f); err != nil {
				c.discard("worker %d: %v", h.Worker, err)
				return
			}
		case FrameResult:
			r, err := DecodeResult(f)
			if err != nil {
				c.discard("worker %d: %v", h.Worker, err)
				return
			}
			if r.Worker != h.Worker {
				c.discard("worker %d stream closed with worker %d's result", h.Worker, r.Worker)
				return
			}
			got := FingerprintOf(g)
			if got != r.Fingerprint {
				c.discard("worker %d partial fingerprint mismatch: declared %x, assembled %x",
					h.Worker, r.Fingerprint.SHA256[:8], got.SHA256[:8])
				return
			}
			c.deliver(h.Worker, g, got)
			return
		default:
			c.discard("worker %d sent frame type %d mid-stream", h.Worker, f.Type)
			return
		}
	}
}

func (c *Coordinator) discard(format string, args ...any) {
	c.mu.Lock()
	c.discarded++
	c.mu.Unlock()
	c.note("discarding reduction stream: "+format, args...)
}

// deliver records worker i's verified partial. The first accepted
// delivery wins; a duplicate (a relaunched worker racing its
// predecessor's late stream) is dropped — both were verified against
// the same assigned sub-plan, so they carry the same bits in the
// serial-worker configurations the conformance suite pins.
func (c *Coordinator) deliver(i int, g *grid.Grid, fp Fingerprint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partials[i] != nil {
		c.notes = append(c.notes, fmt.Sprintf("worker %d delivered twice; keeping the first accepted partial", i))
		return
	}
	c.partials[i] = g
	c.prints[i] = fp
	close(c.arrived[i])
}
