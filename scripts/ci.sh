#!/bin/sh
# CI gate: vet, build, full test suite with the race detector, the
# chaos tests raced a second time with fresh counts, and a one-shot
# smoke run of the kernel benchmarks (validates the bench -> JSON
# tooling without burning benchmark time). Mirrors `make ci` for
# environments without make.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -race -count=2 ./internal/faultinject/ ./internal/faulttol/
go test -race -run 'Facade|Chaos|Cancel' . ./internal/core/
scripts/bench.sh -short
