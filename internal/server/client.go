package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client drives the server's HTTP API. It is the programmatic face of
// the wire protocol, shared by cmd/idgload, the conformance tests and
// the CI integration pass.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8321".
	Base string
	// Tenant is sent as the X-Tenant header ("default" when empty).
	Tenant string
	// HTTP overrides the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	return c.http().Do(req)
}

// apiError decodes the server's JSON error body into a Go error.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) postJSON(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SessionInfo is the server's answer to a session open.
type SessionInfo struct {
	SessionID         string `json:"session_id"`
	NrBaselines       int    `json:"nr_baselines"`
	NrTimesteps       int    `json:"nr_timesteps"`
	NrChannels        int    `json:"nr_channels"`
	MaxInflightChunks int    `json:"max_inflight_chunks"`
}

// CreateSession opens an observation session.
func (c *Client) CreateSession(cfg SessionConfig) (SessionInfo, error) {
	var info SessionInfo
	err := c.postJSON("/v1/sessions", cfg, &info)
	return info, err
}

// FrameWriter encodes frames onto a stream request body.
type FrameWriter struct {
	w io.Writer
}

// WriteVis sends one run of samples (8 float32 per visibility) of a
// baseline.
func (fw *FrameWriter) WriteVis(baseline, sampleOffset int, samples []float32) error {
	f, err := EncodeVis(baseline, sampleOffset, samples)
	if err != nil {
		return err
	}
	return WriteFrame(fw.w, f)
}

// StreamVis opens one chunk-stream request and calls write to emit
// frames; the request body streams as write produces them. A FrameDone
// terminator is appended automatically.
func (c *Client) StreamVis(sessionID string, write func(w *FrameWriter) error) error {
	pr, pw := io.Pipe()
	go func() {
		err := write(&FrameWriter{w: pw})
		if err == nil {
			err = WriteFrame(pw, Frame{Type: FrameDone})
		}
		pw.CloseWithError(err)
	}()
	req, err := http.NewRequest(http.MethodPost, c.Base+"/v1/sessions/"+sessionID+"/chunks", pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-idg-frames")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	resp.Body.Close()
	return nil
}

// Finalize runs the session's gridding pass and returns the result.
// It blocks for the duration of the pass.
func (c *Client) Finalize(sessionID string) (Result, error) {
	var res Result
	err := c.postJSON("/v1/sessions/"+sessionID+"/finalize", struct{}{}, &res)
	return res, err
}

// FetchGridSHA256 streams the finished grid and returns the hex
// SHA-256 of its bytes — by construction the same hash as
// Result.SHA256, so a client can verify the transfer end to end.
func (c *Client) FetchGridSHA256(sessionID string) (string, int64, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/sessions/"+sessionID+"/grid", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return "", 0, err
	}
	if resp.StatusCode >= 300 {
		return "", 0, apiError(resp)
	}
	defer resp.Body.Close()
	h := sha256.New()
	n, err := io.Copy(h, resp.Body)
	if err != nil {
		return "", n, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// Delete releases the session.
func (c *Client) Delete(sessionID string) error {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/v1/sessions/"+sessionID, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusNotFound {
		return apiError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
