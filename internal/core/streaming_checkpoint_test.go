package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
)

// Core-level checkpoint tests use a local kill sentinel: faultinject
// imports core (for its chaos helpers), so these tests cannot import
// faultinject back. The facade chaos suite exercises the real
// faultinject.CrashHook.
type testKill struct {
	ev    checkpoint.Event
	chunk int
}

// killHookAt panics with testKill the first time ev fires at or past
// atChunk, mirroring faultinject.CrashHook.
func killHookAt(ev checkpoint.Event, atChunk int) checkpoint.Hook {
	fired := false
	return func(e checkpoint.Event, chunk int) {
		if fired || e != ev || chunk < atChunk {
			return
		}
		fired = true
		panic(testKill{ev: e, chunk: chunk})
	}
}

// ckptParams returns bit-deterministic streaming parameters (serial
// dispatch, single shard) with checkpointing into dir.
func ckptParams(sc *scenario, dir string) Params {
	params := sc.kernels.Params()
	params.GridShards = 1
	params.Workers = 1
	params.StreamChunkItems = 4
	params.CheckpointDir = dir
	params.CheckpointEvery = 2
	return params
}

// runStreamed runs an uninterrupted streamed pass with params and
// returns the resulting grid.
func runStreamed(t *testing.T, sc *scenario, params Params) *grid.Grid {
	t.Helper()
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	sh := grid.NewSharded(grid.NewGrid(params.GridSize), 1)
	if _, rep, err := k.GridVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh, faulttol.Config{}); err != nil {
		t.Fatal(err)
	} else if rep.ItemsProcessed != len(sc.plan.Items) {
		t.Fatalf("uninterrupted pass processed %d of %d items", rep.ItemsProcessed, len(sc.plan.Items))
	}
	return sh.Master()
}

// resumeFromDir loads the newest valid snapshot in dir and continues
// the pass with a hook-free kernel set, returning the finished grid
// and report.
func resumeFromDir(t *testing.T, sc *scenario, params Params) (*grid.Grid, *faulttol.Report) {
	t.Helper()
	params.CheckpointHook = nil
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	sn, _, _, err := checkpoint.LoadLatest(params.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.NewGrid(params.GridSize)
	start := 0
	rep := faulttol.NewReport(faulttol.Config{})
	if sn != nil {
		g = sn.Grid
		rep.RestoreState(sn.Report)
		start = sn.NextChunk
	}
	sh := grid.NewSharded(g, 1)
	if _, err := k.ResumeVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh, faulttol.Config{}, rep, start); err != nil {
		t.Fatal(err)
	}
	return g, rep
}

// TestStreamedCheckpointResumeEquivalence is the core acceptance
// property: kill a checkpointed streamed pass at each protocol event,
// resume from the surviving snapshots, and require the finished grid
// to be bit-identical to an uninterrupted pass.
func TestStreamedCheckpointResumeEquivalence(t *testing.T) {
	sc := buildScenario(t, defaultScenarioConfig())
	sc.fillFromModel(nil)
	ref := runStreamed(t, sc, ckptParams(sc, t.TempDir()))

	kills := []struct {
		name string
		ev   checkpoint.Event
		at   int
	}{
		{"chunk-committed-mid-epoch", checkpoint.EventChunkCommitted, 3},
		{"before-write", checkpoint.EventBeforeWrite, -1},
		{"before-rename", checkpoint.EventBeforeRename, -1},
		{"after-write", checkpoint.EventAfterWrite, 2},
	}
	for _, kc := range kills {
		t.Run(kc.name, func(t *testing.T) {
			params := ckptParams(sc, t.TempDir())
			params.CheckpointHook = killHookAt(kc.ev, kc.at)
			k, err := NewKernels(params)
			if err != nil {
				t.Fatal(err)
			}
			sh := grid.NewSharded(grid.NewGrid(params.GridSize), 1)
			func() {
				defer func() {
					r := recover()
					if _, ok := r.(testKill); !ok {
						t.Fatalf("expected the injected kill, recovered %v", r)
					}
				}()
				k.GridVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh, faulttol.Config{})
				t.Fatal("pass completed without hitting the crash point")
			}()

			g, rep := resumeFromDir(t, sc, params)
			if d := g.MaxAbsDiff(ref); d != 0 {
				t.Fatalf("resumed grid differs bitwise from uninterrupted pass (max diff %g)", d)
			}
			if rep.ItemsProcessed != len(sc.plan.Items) {
				t.Fatalf("resumed report counts %d of %d items", rep.ItemsProcessed, len(sc.plan.Items))
			}
		})
	}
}

// TestResumeCursorOutOfRange: a cursor past the plan's chunk count is
// a mismatched snapshot, not a silent no-op.
func TestResumeCursorOutOfRange(t *testing.T) {
	sc := buildScenario(t, defaultScenarioConfig())
	sc.fillFromModel(nil)
	params := ckptParams(sc, t.TempDir())
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	sh := grid.NewSharded(grid.NewGrid(params.GridSize), 1)
	_, err = k.ResumeVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh, faulttol.Config{}, nil, 1<<20)
	if err == nil {
		t.Fatal("out-of-range resume cursor accepted")
	}
}

// TestRetryBackoffBudgetStopsRetrying: with a permanently failing item
// and a budget covering only the first backoff, the retry loop must
// stop early — the item error reports fewer attempts than MaxRetries
// allows and the report carries the exhaustion note.
func TestRetryBackoffBudgetStopsRetrying(t *testing.T) {
	sc := buildScenario(t, defaultScenarioConfig())
	sc.fillFromModel(nil)
	params := sc.kernels.Params()
	params.GridShards = 1
	params.Workers = 1
	params.StreamChunkItems = 4
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	victim := sc.plan.Items[0]
	ft := faulttol.Config{
		Policy:       faulttol.Retry,
		MaxRetries:   5,
		RetryBackoff: 20 * time.Millisecond,
		RetryBudget:  20 * time.Millisecond, // covers attempt 2's delay only
		Hook: func(item plan.WorkItem, attempt int) {
			if item.Baseline == victim.Baseline &&
				item.TimeStart == victim.TimeStart &&
				item.Channel0 == victim.Channel0 {
				panic("permanent injected fault")
			}
		},
	}
	sh := grid.NewSharded(grid.NewGrid(params.GridSize), 1)
	_, rep, err := k.GridVisibilitiesStreamed(context.Background(), sc.plan, sc.vs, nil, sh, ft)
	if err == nil {
		t.Fatal("permanently failing item did not fail the retry-policy pass")
	}
	var ie *faulttol.ItemError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v is not an ItemError", err)
	}
	if ie.Attempts >= 1+ft.MaxRetries {
		t.Fatalf("item ran all %d attempts despite the exhausted backoff budget", ie.Attempts)
	}
	if ie.Attempts < 2 {
		t.Fatalf("item made %d attempts, the budget covered at least one retry", ie.Attempts)
	}
	found := false
	for _, n := range rep.Notes {
		if n == "faulttol: retry backoff budget exhausted; remaining failures were not retried" {
			found = true
		}
	}
	if !found {
		t.Fatalf("report notes %v lack the budget-exhaustion note", rep.Notes)
	}
}
