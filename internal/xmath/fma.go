package xmath

import (
	"math"
	"sync"
	"time"
)

// The tiled kernel hot loops (internal/core) fuse their multiply-adds
// with math.FMA, which the Go compiler turns into a single hardware
// instruction on amd64 (VFMADD, behind a cheap runtime feature test)
// and arm64 (FMADD). On hardware without fused multiply-add the same
// call falls back to a ~30x slower software emulation that computes the
// exact product — correct, but far worse than a plain mul+add. The
// kernels therefore probe once at startup whether math.FMA is fast and
// otherwise keep the unfused formulation.

var (
	fmaOnce sync.Once
	fastFMA bool
	fmaSink float64
)

// HasFastFMA reports whether math.FMA compiles to a fused hardware
// instruction on this machine. The probe times a dependent math.FMA
// chain against the equivalent mul+add chain: hardware FMA runs at the
// same order (often faster), while the software fallback is an order of
// magnitude slower. The result is computed once and cached; a
// misdetection can only cost performance, never correctness.
func HasFastFMA() bool {
	fmaOnce.Do(func() { fastFMA = probeFastFMA() })
	return fastFMA
}

func probeFastFMA() bool {
	const iters = 4096
	best := func(f func() float64) time.Duration {
		d := time.Duration(math.MaxInt64)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			fmaSink = f()
			if e := time.Since(start); e < d {
				d = e
			}
		}
		return d
	}
	fused := best(func() float64 {
		acc := 1.0
		for i := 0; i < iters; i++ {
			acc = math.FMA(acc, 0.9999999, 1e-9)
		}
		return acc
	})
	plain := best(func() float64 {
		acc := 1.0
		for i := 0; i < iters; i++ {
			acc = acc*0.9999999 + 1e-9
		}
		return acc
	})
	// Hardware FMA stays within a small factor of the mul+add chain
	// (both are latency-bound); the portable fallback does not.
	return fused < 3*plain
}

// Eps32 is the relative rounding step of float32 (2^-23, one ulp at
// 1.0). The float32 kernel error bounds below are quoted in multiples
// of it.
const Eps32 = 0x1p-23

// Float32AccumBound bounds the absolute error of accumulating n
// phasor-rotated terms in float32, against the same sum carried in
// float64, when the term magnitudes sum to sumAbs: every input rounds
// once to float32 (the planar visibility/pixel arrays and the phasor
// components), every product and running addition round once more, and
// a serial (or any reassociated) sum of n such terms compounds to at
// most
//
//	(n + 8) * Eps32 * sumAbs.
//
// Phase arguments and the sincos seeds stay in float64 on the float32
// path, so their error is identical to the float64 path's and does not
// appear here; the rotation recurrence drift does (see
// Float32PhasorDriftBound) and must be added by callers whose phasors
// advance by rotation between exact re-syncs.
func Float32AccumBound(n int, sumAbs float64) float64 {
	return float64(n+8) * Eps32 * sumAbs
}

// Float32PhasorDriftBound is PhasorDriftBound for a rotation recurrence
// carried in float32: after k steps from an exactly seeded phasor the
// sin/cos components drift by at most k * 6 * Eps32 (same argument as
// the float64 bound, scaled to the wider rounding step).
func Float32PhasorDriftBound(k int) float64 {
	return float64(k) * 6 * Eps32
}
