package core

// The paper aids vectorization "by using runtime compilation, i.e. we
// only compile the kernel when the parameters are known at runtime"
// (Section V-B-a). Go has no runtime compilation, but the analogue is
// selecting a channel-reduction routine whose trip count is a
// compile-time constant: the compiler fully unrolls the fixed-width
// loops below, eliminating the loop-carried bounds checks of the
// generic version. The gridder picks the widest specialization that
// matches the work item's channel count. The reducers are generic over
// the kernel precision; Go instantiates a fully specialized body per
// width, so neither precision pays for the other.

// reduceGeneric handles any channel count.
func reduceGeneric[F floatT](acc *[8]F, phRe, phIm []F, re, im *[4][]F, base, nc int) {
	for c := 0; c < nc; c++ {
		cr, ci := phRe[c], phIm[c]
		j := base + c
		vr, vi := re[0][j], im[0][j]
		acc[0] += vr*cr - vi*ci
		acc[1] += vr*ci + vi*cr
		vr, vi = re[1][j], im[1][j]
		acc[2] += vr*cr - vi*ci
		acc[3] += vr*ci + vi*cr
		vr, vi = re[2][j], im[2][j]
		acc[4] += vr*cr - vi*ci
		acc[5] += vr*ci + vi*cr
		vr, vi = re[3][j], im[3][j]
		acc[6] += vr*cr - vi*ci
		acc[7] += vr*ci + vi*cr
	}
}

// reduceN is the shared body: slicing the phasor buffers to a
// constant length lets the compiler drop bounds checks in the hot
// loop (the slice length is known at each call site above).
func reduceN[F floatT](acc *[8]F, phRe, phIm []F, re, im *[4][]F, base int) {
	r0 := re[0][base:]
	i0 := im[0][base:]
	r1 := re[1][base:]
	i1 := im[1][base:]
	r2 := re[2][base:]
	i2 := im[2][base:]
	r3 := re[3][base:]
	i3 := im[3][base:]
	for c := range phRe {
		cr, ci := phRe[c], phIm[c]
		vr, vi := r0[c], i0[c]
		acc[0] += vr*cr - vi*ci
		acc[1] += vr*ci + vi*cr
		vr, vi = r1[c], i1[c]
		acc[2] += vr*cr - vi*ci
		acc[3] += vr*ci + vi*cr
		vr, vi = r2[c], i2[c]
		acc[4] += vr*cr - vi*ci
		acc[5] += vr*ci + vi*cr
		vr, vi = r3[c], i3[c]
		acc[6] += vr*cr - vi*ci
		acc[7] += vr*ci + vi*cr
	}
}

// reduceChannels selects the reduction routine for a channel count: a
// constant-trip-count call for the SIMD-friendly widths, the generic
// loop otherwise. Dispatching with a switch at every call (rather than
// returning a func once per tile) keeps the hot path free of
// dictionary-bound closures — a function value of a generic
// instantiation allocates when created inside generic code.
func reduceChannels[F floatT](acc *[8]F, phRe, phIm []F, re, im *[4][]F, base, nc int) {
	switch nc {
	case 4:
		reduceN(acc, phRe[:4], phIm[:4], re, im, base)
	case 8:
		reduceN(acc, phRe[:8], phIm[:8], re, im, base)
	case 16:
		reduceN(acc, phRe[:16], phIm[:16], re, im, base)
	default:
		reduceGeneric(acc, phRe, phIm, re, im, base, nc)
	}
}
