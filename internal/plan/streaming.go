package plan

import (
	"errors"
	"runtime"
	"sync"

	"repro/internal/uvwsim"
)

// TrackGenerator produces the uvw track of baseline b into buf (which
// has capacity for the full track) and returns the filled slice.
// Implementations must be safe for concurrent calls with distinct
// buffers; uvwsim.Simulator.BaselineTrack qualifies.
type TrackGenerator func(b int, buf []uvwsim.UVW) []uvwsim.UVW

// NewStreaming builds an execution plan without materializing all
// baseline tracks at once: tracks are generated per baseline, and
// baselines are planned in parallel. For the paper's full dataset
// (11,175 baselines x 8,192 time steps) this needs megabytes instead
// of gigabytes. The resulting plan is identical to New on the same
// tracks (items ordered by channel block, then baseline, then time).
func NewStreaming(cfg Config, nrBaselines, nrTimesteps int, gen TrackGenerator, workers int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nrBaselines < 1 || nrTimesteps < 1 {
		return nil, errors.New("plan: empty observation")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nrBaselines {
		workers = nrBaselines
	}

	p := &Plan{Config: cfg}
	cb := cfg.channelBlock()

	// Per-baseline partial plans, merged in deterministic order.
	type result struct {
		items   []WorkItem
		dropped int
	}
	results := make([]result, nrBaselines)

	for c0 := 0; c0 < len(cfg.Frequencies); c0 += cb {
		nc := cb
		if c0+nc > len(cfg.Frequencies) {
			nc = len(cfg.Frequencies) - c0
		}
		var wg sync.WaitGroup
		next := make(chan int, nrBaselines)
		for b := 0; b < nrBaselines; b++ {
			next <- b
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]uvwsim.UVW, nrTimesteps)
				sub := &Plan{Config: cfg}
				for b := range next {
					track := gen(b, buf)
					sub.Items = sub.Items[:0]
					sub.DroppedVisibilities = 0
					sub.planBaselineAdaptive(b, track, c0, nc)
					results[b] = result{
						items:   append([]WorkItem(nil), sub.Items...),
						dropped: sub.DroppedVisibilities,
					}
				}
			}()
		}
		wg.Wait()
		for b := 0; b < nrBaselines; b++ {
			p.Items = append(p.Items, results[b].items...)
			p.DroppedVisibilities += results[b].dropped
			results[b] = result{}
		}
	}
	return p, nil
}
