package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/perfmodel"
	"repro/internal/report"
	"repro/internal/sky"

	"repro"
)

// -trace / -metrics / -grid-shards / -max-inflight flags; the
// experiment table's fixed run(scale) signature means runMeasured
// picks them up from package scope.
var (
	traceFile   string
	showMetrics bool
	gridShards  int
	maxInflight int
)

// runMeasured executes the real Go IDG pipeline on a scaled-down copy
// of the paper dataset and reports wall-clock per-stage times and
// throughput — the measured companion to the modelled Fig. 9/10 rows
// (this machine is the fourth "platform" next to HASWELL, FIJI and
// PASCAL).
func runMeasured(scale float64) {
	cfg := repro.DefaultObservation()
	if scale != 1.0 {
		cfg.NrTimesteps = int(float64(cfg.NrTimesteps) * scale)
		if cfg.NrTimesteps < 16 {
			cfg.NrTimesteps = 16
		}
	}
	fmt.Printf("dataset: %d stations, %d steps, %d channels, %d-pixel subgrids on a %d-pixel grid (%d workers)\n",
		cfg.NrStations, cfg.NrTimesteps, cfg.NrChannels, cfg.SubgridSize, cfg.GridSize,
		runtime.GOMAXPROCS(0))

	// Observation is opt-in: the measured run is the one experiment
	// executing real kernels, so it is the one worth tracing.
	var observer *repro.Observer
	if traceFile != "" || showMetrics {
		observer = repro.NewObserver(0)
		cfg.Observer = observer
	}
	cfg.GridShards = gridShards
	cfg.MaxInflightChunks = maxInflight
	if cfg.GridShards > 0 || cfg.MaxInflightChunks > 0 {
		fmt.Printf("streaming: %d grid shards, %d in-flight chunks (0 = default)\n",
			cfg.GridShards, cfg.MaxInflightChunks)
	}

	obs, err := cfg.Build()
	if err != nil {
		fatal(err)
	}
	pix := obs.ImageSize / float64(cfg.GridSize)
	model := repro.SkyModel{
		{L: 40 * pix, M: -24 * pix, I: 1},
		{L: -80 * pix, M: 60 * pix, I: 0.5},
	}
	start := time.Now()
	if err := obs.FillFromModel(model); err != nil {
		fatal(err)
	}
	fillTime := time.Since(start)

	g, gridTimes, err := obs.GridAll(context.Background(), nil)
	if err != nil {
		fatal(err)
	}
	degridTimes, err := obs.DegridAll(context.Background(), nil, g)
	if err != nil {
		fatal(err)
	}

	st := obs.Plan.Stats()
	nvis := float64(st.NrGriddedVisibilities)
	t := report.NewTable("stage", "seconds", "share")
	cycle := gridTimes
	cycle.Add(degridTimes)
	add := func(name string, d time.Duration) {
		t.AddRow(name, d.Seconds(), fmt.Sprintf("%.1f%%", 100*d.Seconds()/cycle.Total().Seconds()))
	}
	add("gridder", gridTimes.Gridder)
	add("degridder", degridTimes.Degridder)
	add("subgrid FFT", gridTimes.SubgridFFT+degridTimes.SubgridFFT)
	add("adder", gridTimes.Adder)
	add("splitter", degridTimes.Splitter)
	t.Render(os.Stdout)

	fmt.Printf("\nvisibilities gridded: %.0f (workload generation took %.2fs)\n", nvis, fillTime.Seconds())
	gridMVis := nvis / gridTimes.Total().Seconds() / 1e6
	degridMVis := nvis / degridTimes.Total().Seconds() / 1e6

	// Roofline check: the same instruction-mix model that produces
	// Fig. 10, instantiated for a host-like CPU (arch.HostLike) and this
	// run's exact operation counts. Exceeding 100% means the kernels
	// beat the model's rho = 17 sincos assumption, which the phasor
	// recurrence is designed to do.
	host := arch.HostLike(runtime.GOMAXPROCS(0))
	d := perfmodel.FromPlan("measured", obs.Plan, len(obs.Simulator.Baselines()), cfg.NrTimesteps)
	modelGrid, modelDegrid := perfmodel.ThroughputMVisPerSec(host, d)
	fmt.Printf("gridding   : %6.1f MVis/s (%.0f%% of the %s roofline, %.1f MVis/s)\n",
		gridMVis, 100*gridMVis/modelGrid, host.Name, modelGrid)
	fmt.Printf("degridding : %6.1f MVis/s (%.0f%% of the %s roofline, %.1f MVis/s)\n",
		degridMVis, 100*degridMVis/modelDegrid, host.Name, modelDegrid)
	// The dispatch actually measured: roofline percentages are only
	// interpretable next to the kernel code path that produced them.
	fmt.Println(obs.Kernels.SIMDInfo())
	fmt.Println("fft: " + fft.EngineInfo())
	frac := (gridTimes.Gridder + degridTimes.Degridder).Seconds() / cycle.Total().Seconds()
	fmt.Printf("gridder+degridder share: %.1f%% (paper: >93%%)\n", 100*frac)
	fftFrac := (gridTimes.SubgridFFT + degridTimes.SubgridFFT).Seconds() / cycle.Total().Seconds()
	fmt.Printf("subgrid FFT share: %.1f%% of the grid+degrid cycle\n", 100*fftFrac)

	// Sanity: the dirty image must recover the brighter source.
	img := core.GridToImage(g, 0)
	core.ScaleImage(img, float64(cfg.GridSize*cfg.GridSize)/nvis)
	core.ApplyTaperCorrection(img, obs.Kernels.TaperCorrection(cfg.GridSize))
	si := sky.StokesI(img)
	best, bi := -1.0, 0
	for i, v := range si {
		if v > best {
			best, bi = v, i
		}
	}
	x, y := sky.LMToPixel(model[0].L, model[0].M, cfg.GridSize, obs.ImageSize)
	fmt.Printf("image check: peak %.3f at (%d,%d), expected ~%.1f at (%d,%d)\n",
		best, bi%cfg.GridSize, bi/cfg.GridSize, model[0].I, x, y)

	// Measured metrics next to the modelled rooflines above.
	if showMetrics {
		fmt.Println("\nmeasured pipeline metrics:")
		observer.Metrics.Snapshot().Table().Render(os.Stdout)
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			fatal(err)
		}
		if err := observer.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d spans, %d dropped) - load it in chrome://tracing or ui.perfetto.dev\n",
			traceFile, observer.Tracer.Len(), observer.Tracer.Dropped())
	}
}
