package core

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// propItem builds a deterministic random work item with data.
func propItem(seed uint64, nt, nc int) (plan.WorkItem, []uvwsim.UVW, []xmath.Matrix2) {
	rnd := newTestRand(seed)
	item := plan.WorkItem{
		NrTimesteps: nt, NrChannels: nc,
		X0: 100 + int(20*rnd()), Y0: 110 + int(20*rnd()),
	}
	uvw := make([]uvwsim.UVW, nt)
	for t := range uvw {
		uvw[t] = uvwsim.UVW{U: 40 * rnd(), V: 40 * rnd(), W: 4 * rnd()}
	}
	vis := make([]xmath.Matrix2, nt*nc)
	for i := range vis {
		for p := 0; p < 4; p++ {
			vis[i][p] = complex(rnd(), rnd())
		}
	}
	return item, uvw, vis
}

// TestGridderLinearity: the gridder is a linear operator in the
// visibilities: G(a*v1 + v2) == a*G(v1) + G(v2).
func TestGridderLinearity(t *testing.T) {
	k := testKernels(t, 256, 16)
	f := func(seed uint64) bool {
		item, uvw, v1 := propItem(seed, 4, 2)
		_, _, v2 := propItem(seed^0xdead, 4, 2)
		a := complex(1.7, -0.3)

		mix := make([]xmath.Matrix2, len(v1))
		for i := range mix {
			mix[i] = v1[i].Scale(a).Add(v2[i])
		}
		sMix := grid.NewSubgrid(16, item.X0, item.Y0)
		k.GridSubgrid(item, uvw, mix, nil, nil, sMix)

		s1 := grid.NewSubgrid(16, item.X0, item.Y0)
		k.GridSubgrid(item, uvw, v1, nil, nil, s1)
		s2 := grid.NewSubgrid(16, item.X0, item.Y0)
		k.GridSubgrid(item, uvw, v2, nil, nil, s2)
		for c := range sMix.Data {
			for i := range sMix.Data[c] {
				want := a*s1.Data[c][i] + s2.Data[c][i]
				if cAbs(sMix.Data[c][i]-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDegridderLinearity: the degridder is linear in the subgrid.
func TestDegridderLinearity(t *testing.T) {
	k := testKernels(t, 256, 16)
	f := func(seed uint64) bool {
		item, uvw, _ := propItem(seed, 3, 2)
		rnd := newTestRand(seed ^ 0xbeef)
		s1 := grid.NewSubgrid(16, item.X0, item.Y0)
		s2 := grid.NewSubgrid(16, item.X0, item.Y0)
		for c := range s1.Data {
			for i := range s1.Data[c] {
				s1.Data[c][i] = complex(rnd(), rnd())
				s2.Data[c][i] = complex(rnd(), rnd())
			}
		}
		a := complex(-0.5, 2.1)
		mix := grid.NewSubgrid(16, item.X0, item.Y0)
		for c := range mix.Data {
			for i := range mix.Data[c] {
				mix.Data[c][i] = a*s1.Data[c][i] + s2.Data[c][i]
			}
		}
		out := func(s *grid.Subgrid) []xmath.Matrix2 {
			v := make([]xmath.Matrix2, item.NrVisibilities())
			k.DegridSubgrid(item, s, uvw, nil, nil, v)
			return v
		}
		vMix, v1, v2 := out(mix), out(s1), out(s2)
		for i := range vMix {
			want := v1[i].Scale(a).Add(v2[i])
			if vMix[i].MaxAbsDiff(want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestScalarATermScalesPixels: a constant scalar A-term g at both
// stations multiplies the gridded pixels by conj(g)*g = |g|^2 (the
// gridder applies the adjoint correction).
func TestScalarATermScalesPixels(t *testing.T) {
	k := testKernels(t, 256, 16)
	item, uvw, vis := propItem(7, 4, 2)
	// A non-unimodular gain, so |g|^2 != 1 and scaling errors show.
	g := complex(1.2, -0.5)
	gm := xmath.Matrix2{g, 0, 0, g}
	maps := make([]xmath.Matrix2, 16*16)
	for i := range maps {
		maps[i] = gm
	}
	plain := grid.NewSubgrid(16, item.X0, item.Y0)
	k.GridSubgrid(item, uvw, vis, nil, nil, plain)
	corrected := grid.NewSubgrid(16, item.X0, item.Y0)
	k.GridSubgrid(item, uvw, vis, maps, maps, corrected)

	scale := complex(real(g)*real(g)+imag(g)*imag(g), 0) // |g|^2
	for c := range plain.Data {
		for i := range plain.Data[c] {
			want := plain.Data[c][i] * scale
			if cAbs(corrected.Data[c][i]-want) > 1e-9 {
				t.Fatalf("pixel %d: got %v want %v", i, corrected.Data[c][i], want)
			}
		}
	}
}

// TestUVWShiftMovesSubgridAnchor: shifting all uvw coordinates by an
// exact grid-cell offset and moving the subgrid anchor by the same
// number of pixels yields the identical subgrid content — the
// equivariance the adder relies on.
func TestUVWShiftMovesSubgridAnchor(t *testing.T) {
	k := testKernels(t, 256, 16)
	item, uvw, vis := propItem(21, 4, 2)

	a := grid.NewSubgrid(16, item.X0, item.Y0)
	k.GridSubgrid(item, uvw, vis, nil, nil, a)

	// Shift u by exactly 10 grid cells = 10/ImageSize wavelengths;
	// with a single-frequency-independent shift this only works
	// per-channel, so restrict to channel 0's frequency.
	item1 := item
	item1.NrChannels = 1
	vis1 := make([]xmath.Matrix2, item1.NrTimesteps)
	for t2 := 0; t2 < item1.NrTimesteps; t2++ {
		vis1[t2] = vis[t2*item.NrChannels]
	}
	a1 := grid.NewSubgrid(16, item1.X0, item1.Y0)
	k.GridSubgrid(item1, uvw, vis1, nil, nil, a1)

	lambda := uvwsim.SpeedOfLight / 150e6
	shift := 10.0 / 0.1 * lambda // 10 cells in meters at channel 0
	uvwShifted := make([]uvwsim.UVW, len(uvw))
	for i, c := range uvw {
		uvwShifted[i] = uvwsim.UVW{U: c.U + shift, V: c.V, W: c.W}
	}
	item2 := item1
	item2.X0 += 10
	a2 := grid.NewSubgrid(16, item2.X0, item2.Y0)
	k.GridSubgrid(item2, uvwShifted, vis1, nil, nil, a2)

	if d := a1.MaxAbsDiff(a2); d > 1e-8 {
		t.Fatalf("shift equivariance violated: %g", d)
	}
}

// TestPlanCoverageProperty: random observations always yield plans
// whose coverage validates.
func TestPlanCoverageProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := newTestRand(seed)
		nb := 3 + int(5*(rnd()+1)/2)
		nt := 16 + int(48*(rnd()+1)/2)
		tracks := make([][]uvwsim.UVW, nb)
		for b := range tracks {
			tracks[b] = make([]uvwsim.UVW, nt)
			u, v, w := 400*rnd(), 400*rnd(), 40*rnd()
			du, dv := rnd(), rnd()
			for i := range tracks[b] {
				tracks[b][i] = uvwsim.UVW{
					U: u + du*float64(i), V: v + dv*float64(i), W: w,
				}
			}
		}
		cfg := plan.Config{
			GridSize:    512,
			SubgridSize: 24,
			ImageSize:   0.5,
			Frequencies: []float64{150e6, 151e6},
			// uvw above are in meters; at 150 MHz and ImageSize 0.5
			// the pixel span stays within the grid.
			KernelSupport:          4,
			MaxTimestepsPerSubgrid: 16,
			ATermUpdateInterval:    8,
		}
		p, err := plan.New(cfg, tracks)
		if err != nil {
			return false
		}
		_, err = p.ValidateCoverage(tracks)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
