package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Server metric names (registered in Config.Observer when set).
const (
	MetricSessionsCreated   = "server_sessions_created_total"
	MetricSessionsDone      = "server_sessions_done_total"
	MetricSessionsFailed    = "server_sessions_failed_total"
	MetricSessionsExpired   = "server_sessions_expired_total"
	MetricSessionsDeleted   = "server_sessions_deleted_total"
	MetricSessionsDrained   = "server_sessions_drained_total"
	MetricAdmissionRejected = "server_admission_rejected_total"
	MetricStreamFrames      = "server_stream_frames_total"
	MetricStreamBytes       = "server_stream_bytes_total"
	// GaugeSessionsActive is the number of currently registered
	// sessions; GaugeInflightChunks the reserved in-flight chunk
	// budget across them; GaugeInflightChunksPeak its high-water mark
	// since startup (the soak suite checks this never exceeds the sum
	// of tenant budgets).
	GaugeSessionsActive     = "server_sessions_active"
	GaugeInflightChunks     = "server_inflight_chunks"
	GaugeInflightChunksPeak = "server_inflight_chunks_peak"
	// HistSessionSeconds is the create-to-finalize latency
	// distribution.
	HistSessionSeconds = "server_session_seconds"
)

// TenantInflightPeakGauge names the per-tenant high-water mark of
// reserved in-flight chunks.
func TenantInflightPeakGauge(tenant string) string {
	return "server_tenant_inflight_chunks_peak:" + tenant
}

// serverObs holds pre-resolved nil-safe metric handles (the kernelObs
// pattern: a nil observer costs one branch per event).
type serverObs struct {
	created, done, failed, expired, deleted, drained, rejected *obs.Counter
	frames, bytes                                              *obs.Counter
	active, inflight, inflightPeak                             *obs.Gauge
	sessionSeconds                                             *obs.Histogram
	reg                                                        *obs.Registry
}

func newServerObs(o *obs.Observer) serverObs {
	var so serverObs
	if o == nil || o.Metrics == nil {
		return so
	}
	r := o.Metrics
	so.reg = r
	so.created = r.Counter(MetricSessionsCreated)
	so.done = r.Counter(MetricSessionsDone)
	so.failed = r.Counter(MetricSessionsFailed)
	so.expired = r.Counter(MetricSessionsExpired)
	so.deleted = r.Counter(MetricSessionsDeleted)
	so.drained = r.Counter(MetricSessionsDrained)
	so.rejected = r.Counter(MetricAdmissionRejected)
	so.frames = r.Counter(MetricStreamFrames)
	so.bytes = r.Counter(MetricStreamBytes)
	so.active = r.Gauge(GaugeSessionsActive)
	so.inflight = r.Gauge(GaugeInflightChunks)
	so.inflightPeak = r.Gauge(GaugeInflightChunksPeak)
	so.sessionSeconds, _ = r.Histogram(HistSessionSeconds, obs.DurationBuckets)
	return so
}

// tenantState is one tenant's admission accounting.
type tenantState struct {
	sessions     int
	inflight     int
	inflightPeak int
	peakGauge    *obs.Gauge
}

// Server is the multi-tenant gridding service.
type Server struct {
	cfg  Config
	back Backend
	ob   serverObs

	mu           sync.Mutex
	sessions     map[string]*session
	tenants      map[string]*tenantState
	draining     bool
	inflight     int
	inflightPeak int
	seq          uint64

	ln   net.Listener
	hsrv *http.Server
	// janitorStop stops the idle sweeper started by Start.
	janitorStop chan struct{}
}

// New validates the config and builds a server around the backend.
func New(cfg Config, back Backend) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if back == nil {
		return nil, &ConfigError{Field: "Backend", Reason: "nil gridding backend"}
	}
	return &Server{
		cfg:      cfg,
		back:     back,
		ob:       newServerObs(cfg.Observer),
		sessions: make(map[string]*session),
		tenants:  make(map[string]*tenantState),
	}, nil
}

// Handler returns the HTTP API. Endpoints (all under /v1):
//
//	POST   /v1/sessions            open a session (JSON SessionConfig; X-Tenant header)
//	POST   /v1/sessions/{id}/chunks stream visibility frames (binary wire format)
//	POST   /v1/sessions/{id}/finalize run the gridding pass, return the Result
//	GET    /v1/sessions/{id}       session state
//	GET    /v1/sessions/{id}/grid  the finished grid (binary, LE complex128)
//	DELETE /v1/sessions/{id}       abort/release the session
//	GET    /v1/healthz             liveness + drain state
//	GET    /v1/metricz             metrics snapshot (JSON; 404 without an Observer)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/chunks", s.handleStream)
	mux.HandleFunc("POST /v1/sessions/{id}/finalize", s.handleFinalize)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/grid", s.handleGrid)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metricz", s.handleMetrics)
	return mux
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// tenantOf resolves the request's tenant (the X-Tenant header;
// "default" when absent).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// createResponse answers a session open.
type createResponse struct {
	SessionID         string `json:"session_id"`
	NrBaselines       int    `json:"nr_baselines"`
	NrTimesteps       int    `json:"nr_timesteps"`
	NrChannels        int    `json:"nr_channels"`
	MaxInflightChunks int    `json:"max_inflight_chunks"`
}

// statusResponse answers a session status poll.
type statusResponse struct {
	SessionID string  `json:"session_id"`
	Tenant    string  `json:"tenant"`
	State     State   `json:"state"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	var cfg SessionConfig
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "decoding session config: %v", err)
		return
	}
	if err := cfg.validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid session config: %v", err)
		return
	}
	if cfg.Checkpoint && s.cfg.CheckpointRoot == "" {
		httpError(w, http.StatusBadRequest, "checkpoint requested but the server has no checkpoint root")
		return
	}
	if cfg.MaxInflightChunks == 0 {
		cfg.MaxInflightChunks = s.cfg.sessionInflightDefault()
	}

	// Admission: reserve registry and budget slots under the lock, then
	// pay for the (possibly slow) backend open outside it.
	id, err := s.admit(tenant, cfg.MaxInflightChunks)
	if err != nil {
		var full *admissionError
		code := http.StatusTooManyRequests
		if errors.As(err, &full) && full.drain {
			code = http.StatusServiceUnavailable
		}
		s.ob.rejected.Inc()
		httpError(w, code, "%v", err)
		return
	}
	if cfg.Checkpoint {
		cfg.CheckpointDir = filepath.Join(s.cfg.CheckpointRoot, id)
	}
	back, err := s.back.Open(cfg)
	if err != nil {
		s.release(tenant, cfg.MaxInflightChunks, id, nil)
		httpError(w, http.StatusBadRequest, "opening session: %v", err)
		return
	}
	now := time.Now()
	sess := &session{
		id: id, tenant: tenant, cfg: cfg, inflight: cfg.MaxInflightChunks,
		back: back, created: now, state: StateStreaming, lastTouch: now,
	}
	s.mu.Lock()
	s.sessions[id] = sess
	s.mu.Unlock()
	s.ob.created.Inc()

	nb, nt, nc := back.Dims()
	writeJSON(w, http.StatusCreated, createResponse{
		SessionID: id, NrBaselines: nb, NrTimesteps: nt, NrChannels: nc,
		MaxInflightChunks: cfg.MaxInflightChunks,
	})
}

// admissionError is a quota or drain rejection.
type admissionError struct {
	msg   string
	drain bool
}

func (e *admissionError) Error() string { return e.msg }

// admit reserves a session slot and inflight budget, returning the new
// session ID. The reservation is released by release (open failure) or
// remove (session end).
func (s *Server) admit(tenant string, inflight int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", &admissionError{msg: "server is draining, not admitting sessions", drain: true}
	}
	if len(s.sessions) >= s.cfg.maxSessions() {
		return "", &admissionError{msg: fmt.Sprintf("server at its %d-session capacity", s.cfg.maxSessions())}
	}
	t := s.tenants[tenant]
	if t == nil {
		t = &tenantState{}
		if s.ob.reg != nil {
			t.peakGauge = s.ob.reg.Gauge(TenantInflightPeakGauge(tenant))
		}
		s.tenants[tenant] = t
	}
	if t.sessions >= s.cfg.maxSessionsPerTenant() {
		return "", &admissionError{msg: fmt.Sprintf("tenant %q at its %d-session quota", tenant, s.cfg.maxSessionsPerTenant())}
	}
	if t.inflight+inflight > s.cfg.maxInflightPerTenant() {
		return "", &admissionError{msg: fmt.Sprintf(
			"tenant %q in-flight chunk budget exhausted: %d reserved + %d requested > %d",
			tenant, t.inflight, inflight, s.cfg.maxInflightPerTenant())}
	}
	t.sessions++
	t.inflight += inflight
	if t.inflight > t.inflightPeak {
		t.inflightPeak = t.inflight
		t.peakGauge.Set(float64(t.inflightPeak))
	}
	s.inflight += inflight
	if s.inflight > s.inflightPeak {
		s.inflightPeak = s.inflight
		s.ob.inflightPeak.Set(float64(s.inflightPeak))
	}
	s.ob.inflight.Set(float64(s.inflight))

	var b [8]byte
	rand.Read(b[:])
	s.seq++
	id := fmt.Sprintf("s%06d-%s", s.seq, hex.EncodeToString(b[:4]))
	s.ob.active.Set(float64(len(s.sessions) + 1)) // the caller registers id next
	return id, nil
}

// release undoes an admission whose backend open failed.
func (s *Server) release(tenant string, inflight int, id string, _ *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.releaseLocked(tenant, inflight)
	s.ob.active.Set(float64(len(s.sessions)))
}

func (s *Server) releaseLocked(tenant string, inflight int) {
	if t := s.tenants[tenant]; t != nil {
		t.sessions--
		t.inflight -= inflight
	}
	s.inflight -= inflight
	s.ob.inflight.Set(float64(s.inflight))
}

// remove unregisters a session and releases its reservation.
func (s *Server) remove(sess *session, reason removeReason) {
	sess.abort()
	s.mu.Lock()
	if _, ok := s.sessions[sess.id]; !ok {
		s.mu.Unlock()
		return
	}
	delete(s.sessions, sess.id)
	s.releaseLocked(sess.tenant, sess.inflight)
	s.ob.active.Set(float64(len(s.sessions)))
	s.mu.Unlock()
	switch reason {
	case removeDeleted:
		s.ob.deleted.Inc()
	case removeExpired:
		s.ob.expired.Inc()
	case removeDrained:
		s.ob.drained.Inc()
	}
}

func (s *Server) lookup(r *http.Request) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[r.PathValue("id")]
	return sess, ok
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	if err := sess.beginStream(); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	defer sess.endStream()
	nb, nt, nc := sess.back.Dims()
	samplesPerBaseline := nt * nc

	var frames, samples int64
	counted := &countingReader{r: r.Body}
	for {
		f, err := ReadFrame(counted, s.cfg.maxFrameBytes())
		if err == io.EOF {
			break
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "frame %d: %v", frames, err)
			return
		}
		if f.Type == FrameDone {
			break
		}
		c, err := f.DecodeVis()
		if err != nil {
			httpError(w, http.StatusBadRequest, "frame %d: %v", frames, err)
			return
		}
		if c.Baseline >= nb {
			httpError(w, http.StatusBadRequest, "frame %d: baseline %d outside the observation's %d baselines", frames, c.Baseline, nb)
			return
		}
		if c.SampleOffset+len(c.Samples)/8 > samplesPerBaseline {
			httpError(w, http.StatusBadRequest, "frame %d: samples [%d, %d) outside the baseline's %d samples",
				frames, c.SampleOffset, c.SampleOffset+len(c.Samples)/8, samplesPerBaseline)
			return
		}
		if err := applyVis(sess.back, c); err != nil {
			httpError(w, http.StatusBadRequest, "frame %d: %v", frames, err)
			return
		}
		frames++
		samples += int64(len(c.Samples) / 8)
		sess.touch(time.Now())
	}
	s.ob.frames.Add(frames)
	s.ob.bytes.Add(counted.n)
	writeJSON(w, http.StatusOK, map[string]int64{"frames": frames, "samples": samples})
}

// countingReader tallies wire bytes for the stream metrics.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	// The run is bounded by the request context (client disconnect
	// cancels it) and by the drain path through sess.abort.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if err := sess.beginFinalize(cancel); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	res, err := runBackend(ctx, sess.back)
	sess.endFinalize(res, err, time.Now())
	s.ob.sessionSeconds.Observe(time.Since(sess.created).Seconds())
	if err != nil {
		s.ob.failed.Inc()
		httpError(w, http.StatusInternalServerError, "gridding failed: %v", err)
		return
	}
	s.ob.done.Inc()
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	sess.mu.Lock()
	resp := statusResponse{SessionID: sess.id, Tenant: sess.tenant, State: sess.state, Result: sess.res}
	if sess.runErr != nil {
		resp.Error = sess.runErr.Error()
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	if st := sess.currentState(); st != StateDone {
		httpError(w, http.StatusConflict, "session is %s, the grid exists only after a successful finalize", st)
		return
	}
	sess.touch(time.Now())
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := sess.back.WriteGrid(w); err != nil {
		// Headers are gone; the client sees a truncated body.
		return
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.remove(sess, removeDeleted)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := map[string]any{"status": "ok", "draining": s.draining, "active_sessions": len(s.sessions)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.ob.reg == nil {
		httpError(w, http.StatusNotFound, "server runs without an observer")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.ob.reg.Snapshot().WriteJSON(w)
}

// ActiveSessions returns the number of registered sessions (the
// leak-check the drain and soak tests pin to zero).
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// TenantInflight returns a tenant's currently reserved in-flight chunk
// budget.
func (s *Server) TenantInflight(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[tenant]; t != nil {
		return t.inflight
	}
	return 0
}

// sweepIdle removes every session idle past the deadline.
func (s *Server) sweepIdle(now time.Time) int {
	deadline := now.Add(-s.cfg.idleTimeout())
	s.mu.Lock()
	var idle []*session
	for _, sess := range s.sessions {
		if sess.idleSince(deadline) {
			idle = append(idle, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range idle {
		s.remove(sess, removeExpired)
	}
	return len(idle)
}

// Start listens on the configured address and serves in the
// background; Addr reports the bound address. Use Serve for the
// blocking run-until-canceled form.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.addr())
	if err != nil {
		return err
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.Handler()}
	go s.hsrv.Serve(ln)
	stop := make(chan struct{})
	s.mu.Lock()
	s.janitorStop = stop
	s.mu.Unlock()
	go s.janitor(stop)
	return nil
}

// janitor periodically expires idle sessions until stop is closed.
func (s *Server) janitor(stop <-chan struct{}) {
	period := s.cfg.idleTimeout() / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.sweepIdle(now)
		}
	}
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs until ctx is canceled, then drains.
func (s *Server) Serve(ctx context.Context) error {
	if err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	return s.Drain(context.Background())
}

// Drain gracefully shuts the server down: admissions stop immediately
// (creates answer 503), existing sessions keep streaming and may
// finalize within DrainTimeout — terminal (done/failed) sessions are
// released as they are seen — and whatever remains after the timeout
// is canceled (a checkpointing session keeps its last durable
// snapshot for ResumeStreamed) and removed. On return the registry is
// empty and the listener, if any, is closed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.janitorStop != nil {
		close(s.janitorStop)
		s.janitorStop = nil
	}
	s.mu.Unlock()

	deadline := time.NewTimer(s.cfg.drainTimeout())
	defer deadline.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
drain:
	for {
		// Release sessions that have reached a terminal state; their
		// results were delivered in the finalize response.
		s.mu.Lock()
		var terminal []*session
		n := len(s.sessions)
		for _, sess := range s.sessions {
			switch sess.currentState() {
			case StateDone, StateFailed:
				terminal = append(terminal, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range terminal {
			s.remove(sess, removeDrained)
		}
		if n == len(terminal) {
			break
		}
		select {
		case <-deadline.C:
			break drain
		case <-ctx.Done():
			break drain
		case <-tick.C:
		}
	}

	// Cancel and remove the stragglers: streaming sessions that never
	// finalized and finalizes still running at the deadline.
	s.mu.Lock()
	rest := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		rest = append(rest, sess)
	}
	s.mu.Unlock()
	for _, sess := range rest {
		s.remove(sess, removeDrained) // remove aborts any running finalize
	}

	if s.hsrv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return s.hsrv.Shutdown(sctx)
	}
	return nil
}
