package plan

import (
	"math"
	"testing"

	"repro/internal/layout"
	"repro/internal/uvwsim"
)

// testConfig returns a small but realistic configuration: a 512-pixel
// grid, 24-pixel subgrids, 8 channels around 150 MHz, sized so the
// 20-station layout's baselines fit.
func testConfig(imageSize float64) Config {
	freqs := make([]float64, 8)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*200e3
	}
	return Config{
		GridSize:               512,
		SubgridSize:            24,
		ImageSize:              imageSize,
		Frequencies:            freqs,
		KernelSupport:          4,
		MaxTimestepsPerSubgrid: 128,
		ATermUpdateInterval:    64,
	}
}

func testTracks(t *testing.T, nrStations, nt int) ([][]uvwsim.UVW, *uvwsim.Simulator) {
	t.Helper()
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = nrStations
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	return sim.AllTracks(nt), sim
}

// imageSizeFor picks an image size such that max |u|,|v| maps within
// the grid with margin.
func imageSizeFor(sim *uvwsim.Simulator, nt, gridSize int, maxFreq float64) float64 {
	maxUV := sim.MaxUV(nt) * maxFreq / uvwsim.SpeedOfLight // wavelengths
	return float64(gridSize/2-40) / maxUV
}

func buildTestPlan(t *testing.T, nrStations, nt int) (*Plan, [][]uvwsim.UVW) {
	t.Helper()
	tracks, sim := testTracks(t, nrStations, nt)
	cfg := testConfig(imageSizeFor(sim, nt, 512, 151.4e6))
	p, err := New(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	return p, tracks
}

func TestPlanCoversAllVisibilities(t *testing.T) {
	p, tracks := buildTestPlan(t, 12, 256)
	covered, err := p.ValidateCoverage(tracks)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(tracks)) * 256 * int64(len(p.Frequencies))
	if covered+int64(p.DroppedVisibilities) != total {
		t.Fatalf("covered %d + dropped %d != total %d", covered, p.DroppedVisibilities, total)
	}
	if p.DroppedVisibilities > int(total/100) {
		t.Fatalf("dropped too many visibilities: %d of %d", p.DroppedVisibilities, total)
	}
}

func TestPlanGroupsManyTimestepsPerSubgrid(t *testing.T) {
	// Short baselines move slowly through the uv plane, so the greedy
	// sweep must pack many time steps per subgrid on average; this is
	// the whole point of IDG (amortizing the subgrid FFT).
	p, _ := buildTestPlan(t, 12, 256)
	st := p.Stats()
	if st.AvgTimestepsPerSubgrid < 4 {
		t.Fatalf("average %.2f timesteps/subgrid; expected batching", st.AvgTimestepsPerSubgrid)
	}
}

func TestTmaxRespected(t *testing.T) {
	p, _ := buildTestPlan(t, 12, 256)
	for i := range p.Items {
		if p.Items[i].NrTimesteps > p.MaxTimestepsPerSubgrid {
			t.Fatalf("item %d has %d timesteps > Tmax %d", i, p.Items[i].NrTimesteps, p.MaxTimestepsPerSubgrid)
		}
	}
}

func TestATermSlotBoundariesForceSplits(t *testing.T) {
	p, _ := buildTestPlan(t, 12, 256)
	for i := range p.Items {
		it := &p.Items[i]
		first := it.TimeStart / p.ATermUpdateInterval
		last := (it.TimeStart + it.NrTimesteps - 1) / p.ATermUpdateInterval
		if first != last || first != it.ATermSlot {
			t.Fatalf("item %d spans A-term slots %d..%d (slot %d)", i, first, last, it.ATermSlot)
		}
	}
}

func TestSmallerSubgridsYieldMoreItems(t *testing.T) {
	// Disable the A-term and Tmax split triggers so that only uv
	// motion forces new subgrids, then a tighter subgrid must split
	// the long tracks more often.
	tracks, sim := testTracks(t, 12, 2048)
	img := imageSizeFor(sim, 2048, 512, 151.4e6)
	cfgBig := testConfig(img)
	cfgBig.SubgridSize = 32
	cfgBig.ATermUpdateInterval = 0
	cfgBig.MaxTimestepsPerSubgrid = 0
	cfgSmall := testConfig(img)
	cfgSmall.SubgridSize = 16
	cfgSmall.KernelSupport = 2
	cfgSmall.ATermUpdateInterval = 0
	cfgSmall.MaxTimestepsPerSubgrid = 0
	big, err := New(cfgBig, tracks)
	if err != nil {
		t.Fatal(err)
	}
	small, err := New(cfgSmall, tracks)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Items) <= len(big.Items) {
		t.Fatalf("16px subgrids gave %d items, 32px gave %d; want more for smaller",
			len(small.Items), len(big.Items))
	}
}

func TestChannelBlocks(t *testing.T) {
	tracks, sim := testTracks(t, 10, 128)
	cfg := testConfig(imageSizeFor(sim, 128, 512, 151.4e6))
	cfg.ChannelBlockSize = 4 // 8 channels -> 2 blocks
	p, err := New(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ValidateCoverage(tracks); err != nil {
		t.Fatal(err)
	}
	for i := range p.Items {
		if p.Items[i].NrChannels != 4 {
			t.Fatalf("item %d has %d channels, want 4", i, p.Items[i].NrChannels)
		}
		if c0 := p.Items[i].Channel0; c0 != 0 && c0 != 4 {
			t.Fatalf("item %d starts at channel %d", i, c0)
		}
	}
}

func TestWStackingAssignsPlanes(t *testing.T) {
	tracks, sim := testTracks(t, 12, 128)
	cfg := testConfig(imageSizeFor(sim, 128, 512, 151.4e6))
	cfg.WStepLambda = 50
	p, err := New(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ValidateCoverage(tracks); err != nil {
		t.Fatal(err)
	}
	planes := make(map[int]bool)
	for i := range p.Items {
		it := &p.Items[i]
		planes[it.WPlane] = true
		if math.Abs(it.WOffset-float64(it.WPlane)*50) > 1e-9 {
			t.Fatalf("item %d WOffset %.1f inconsistent with plane %d", i, it.WOffset, it.WPlane)
		}
	}
	if len(planes) < 2 {
		t.Fatal("expected multiple W-planes for this layout")
	}
}

func TestWorkGroups(t *testing.T) {
	p, _ := buildTestPlan(t, 10, 128)
	groups := p.WorkGroups(7)
	total := 0
	for i, g := range groups {
		if len(g) == 0 || len(g) > 7 {
			t.Fatalf("group %d has %d items", i, len(g))
		}
		total += len(g)
	}
	if total != len(p.Items) {
		t.Fatalf("groups cover %d items, want %d", total, len(p.Items))
	}
	// m <= 0 means one group with everything.
	if g := p.WorkGroups(0); len(g) != 1 || len(g[0]) != len(p.Items) {
		t.Fatal("WorkGroups(0) should return a single full group")
	}
}

func TestStatsConsistency(t *testing.T) {
	p, tracks := buildTestPlan(t, 10, 128)
	st := p.Stats()
	if st.NrSubgrids != len(p.Items) {
		t.Fatal("NrSubgrids mismatch")
	}
	covered, err := p.ValidateCoverage(tracks)
	if err != nil {
		t.Fatal(err)
	}
	if st.NrGriddedVisibilities != covered {
		t.Fatalf("stats say %d gridded, coverage says %d", st.NrGriddedVisibilities, covered)
	}
	wantPairs := covered * int64(p.SubgridSize) * int64(p.SubgridSize)
	if st.NrVisibilityPixelPairs != wantPairs {
		t.Fatalf("pixel pairs %d, want %d", st.NrVisibilityPixelPairs, wantPairs)
	}
}

func TestConfigValidation(t *testing.T) {
	freqs := []float64{150e6}
	bad := []Config{
		{GridSize: 1, SubgridSize: 8, ImageSize: 0.1, Frequencies: freqs},
		{GridSize: 128, SubgridSize: 1, ImageSize: 0.1, Frequencies: freqs},
		{GridSize: 128, SubgridSize: 256, ImageSize: 0.1, Frequencies: freqs},
		{GridSize: 128, SubgridSize: 24, ImageSize: 0, Frequencies: freqs},
		{GridSize: 128, SubgridSize: 24, ImageSize: 0.1},
		{GridSize: 128, SubgridSize: 24, ImageSize: 0.1, Frequencies: freqs, KernelSupport: -1},
		{GridSize: 128, SubgridSize: 24, ImageSize: 0.1, Frequencies: freqs, KernelSupport: 12},
		{GridSize: 128, SubgridSize: 24, ImageSize: 0.1, Frequencies: freqs, WStepLambda: -1},
		{GridSize: 128, SubgridSize: 24, ImageSize: 0.1, Frequencies: []float64{-1}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should fail validation", i)
		}
	}
	good := testConfig(0.05)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestNewRejectsRaggedTracks(t *testing.T) {
	tracks := [][]uvwsim.UVW{make([]uvwsim.UVW, 4), make([]uvwsim.UVW, 5)}
	cfg := testConfig(0.05)
	if _, err := New(cfg, tracks); err == nil {
		t.Fatal("expected error for ragged tracks")
	}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("expected error for no baselines")
	}
}

func TestTimeBlocksAreContiguousPerBaseline(t *testing.T) {
	p, _ := buildTestPlan(t, 10, 128)
	// For each (baseline, channel block), the time blocks must tile
	// [0, nt) in order without gaps (modulo dropped visibilities,
	// which this small setup does not produce).
	type key struct{ b, c0 int }
	next := make(map[key]int)
	for i := range p.Items {
		it := &p.Items[i]
		k := key{it.Baseline, it.Channel0}
		if want, ok := next[k]; ok && it.TimeStart != want {
			t.Fatalf("baseline %d: block starts at %d, want %d", it.Baseline, it.TimeStart, want)
		}
		next[k] = it.TimeStart + it.NrTimesteps
	}
	for k, end := range next {
		if end != 128 {
			t.Fatalf("baseline %d channels@%d: blocks end at %d, want 128", k.b, k.c0, end)
		}
	}
}
