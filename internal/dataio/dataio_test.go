package dataio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/uvwsim"
)

func sampleSet(t *testing.T) (*core.VisibilitySet, []float64) {
	t.Helper()
	baselines := []uvwsim.Baseline{{P: 0, Q: 1}, {P: 0, Q: 2}, {P: 1, Q: 2}}
	const nt, nc = 5, 4
	uvw := make([][]uvwsim.UVW, len(baselines))
	state := uint64(1)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<52) - 1
	}
	for b := range uvw {
		uvw[b] = make([]uvwsim.UVW, nt)
		for i := range uvw[b] {
			uvw[b][i] = uvwsim.UVW{U: 1e4 * next(), V: 1e4 * next(), W: 1e3 * next()}
		}
	}
	vs := core.MustNewVisibilitySet(baselines, uvw, nc)
	for b := range vs.Data {
		for i := range vs.Data[b] {
			for p := 0; p < 4; p++ {
				vs.Data[b][i][p] = complex(next(), next())
			}
		}
	}
	freqs := []float64{150e6, 150.2e6, 150.4e6, 150.6e6}
	return vs, freqs
}

func TestRoundtrip(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	got, gotFreqs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotFreqs) != len(freqs) || gotFreqs[0] != freqs[0] {
		t.Fatal("frequencies mangled")
	}
	if len(got.Baselines) != len(vs.Baselines) || got.Baselines[2] != vs.Baselines[2] {
		t.Fatal("baselines mangled")
	}
	// uvw is exact (float64).
	for b := range vs.UVW {
		for i := range vs.UVW[b] {
			if got.UVW[b][i] != vs.UVW[b][i] {
				t.Fatal("uvw mangled")
			}
		}
	}
	// Visibilities roundtrip through float32.
	var maxErr float64
	for b := range vs.Data {
		for i := range vs.Data[b] {
			if d := got.Data[b][i].MaxAbsDiff(vs.Data[b][i]); d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 1e-6 {
		t.Fatalf("visibility roundtrip error %g exceeds float32 precision", maxErr)
	}
}

func TestReadHeaderOnly(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NrBaselines != 3 || h.NrTimesteps != 5 || h.NrChannels != 4 {
		t.Fatalf("header = %+v", h)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one visibility byte (keep header intact).
	data[len(data)-20] ^= 0xFF
	if _, _, err := Read(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("expected checksum error, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, _, err := Read(strings.NewReader("NOTAFILE" + strings.Repeat("x", 100))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{4, 20, len(data) / 2, len(data) - 4} {
		if _, _, err := Read(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("truncation at %d bytes not detected", n)
		}
	}
}

func TestImplausibleDimensionsRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	// Dimensions that would allocate petabytes.
	for _, v := range []int64{1 << 30, 1 << 30, 1 << 30} {
		for i := 0; i < 8; i++ {
			buf.WriteByte(byte(v >> (8 * i)))
		}
	}
	if _, err := ReadHeader(&buf); err == nil {
		t.Fatal("expected dimension sanity error")
	}
}

func TestFrequencyCountMismatch(t *testing.T) {
	vs, _ := sampleSet(t)
	if err := Write(&bytes.Buffer{}, vs, []float64{150e6}); err == nil {
		t.Fatal("expected frequency count error")
	}
}

func TestBadFrequencyRejected(t *testing.T) {
	vs, freqs := sampleSet(t)
	freqs[1] = math.NaN()
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(&buf); err == nil {
		t.Fatal("expected frequency validation error")
	}
}
