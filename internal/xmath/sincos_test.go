package xmath

import (
	"math"
	"math/rand"
	"testing"
)

// The paper (Section VI-C) uses arguments in [-1e4, 1e4] and requires a
// maximum error of a few float32 ulps (4 ulps SVML medium accuracy on
// the CPU, 2 ulps for the GPU special function units). The float32 ulp
// near 1.0 is ~6e-8, so the thresholds below correspond to those bounds
// expressed as absolute error of values in [-1, 1].

const kernelArgRange = 1e4

func TestSincosFastAccuracy(t *testing.T) {
	err := MaxSincosError(SincosFast, kernelArgRange, 200001)
	if err > 4*6e-8 {
		t.Fatalf("SincosFast max error %g exceeds 4 float32 ulps", err)
	}
}

func TestSincosLUTAccuracy(t *testing.T) {
	err := MaxSincosError(SincosLUT, kernelArgRange, 200001)
	// The LUT models an SFU: bounded absolute error well below single
	// precision visibility noise, but looser than the polynomial.
	if err > 5e-7 {
		t.Fatalf("SincosLUT max error %g exceeds SFU-like bound", err)
	}
}

func TestSincosAccurateMatchesLibm(t *testing.T) {
	if err := MaxSincosError(SincosAccurate, kernelArgRange, 10001); err != 0 {
		t.Fatalf("reference evaluator deviates from libm: %g", err)
	}
}

func TestSincosPythagoreanIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, f := range []struct {
		name string
		fn   SincosFunc
		tol  float64
	}{
		{"fast", SincosFast, 1e-7},
		{"lut", SincosLUT, 2e-6},
	} {
		for i := 0; i < 10000; i++ {
			x := (r.Float64()*2 - 1) * kernelArgRange
			s, c := f.fn(x)
			if d := math.Abs(s*s + c*c - 1); d > f.tol {
				t.Fatalf("%s: sin^2+cos^2-1 = %g at x=%g", f.name, d, x)
			}
		}
	}
}

func TestSincosSymmetry(t *testing.T) {
	// sin is odd, cos is even; the fast evaluator must preserve this for
	// the gridder/degridder conjugate symmetry to hold.
	for i := 0; i < 1000; i++ {
		x := float64(i) * 0.0173
		s1, c1 := SincosFast(x)
		s2, c2 := SincosFast(-x)
		if math.Abs(s1+s2) > 1e-15 || math.Abs(c1-c2) > 1e-15 {
			t.Fatalf("symmetry violated at x=%g", x)
		}
	}
}

func TestPhasorUnitModulus(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		x := (r.Float64()*2 - 1) * kernelArgRange
		p := Phasor(x, SincosFast)
		if d := math.Abs(real(p)*real(p) + imag(p)*imag(p) - 1); d > 1e-7 {
			t.Fatalf("|phasor|^2-1 = %g", d)
		}
	}
}

func TestPhasorMatchesEuler(t *testing.T) {
	for _, x := range []float64{0, 0.5, -0.5, math.Pi, -math.Pi / 3, 123.456} {
		p := Phasor(x, SincosAccurate)
		want := complex(math.Cos(x), math.Sin(x))
		if cabs(p-want) > 1e-15 {
			t.Fatalf("phasor(%g) = %v, want %v", x, p, want)
		}
	}
}

func TestReduceTwoPiRange(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 100000; i++ {
		x := (r.Float64()*2 - 1) * kernelArgRange
		red := reduceTwoPi(x)
		if red < -math.Pi-1e-9 || red > math.Pi+1e-9 {
			t.Fatalf("reduction out of range: x=%g -> %g", x, red)
		}
		// sin must be invariant under the reduction.
		if d := math.Abs(math.Sin(x) - math.Sin(red)); d > 1e-10 {
			t.Fatalf("reduction changed the angle: x=%g err=%g", x, d)
		}
	}
}

func TestFloat32ULP(t *testing.T) {
	if u := Float32ULP(1.0); math.Abs(u-1.1920928955078125e-07) > 1e-20 {
		t.Fatalf("ulp(1.0) = %g", u)
	}
	if Float32ULP(0) <= 0 {
		t.Fatal("ulp(0) must be positive")
	}
}

func BenchmarkSincosAccurate(b *testing.B) {
	benchSincos(b, SincosAccurate)
}

func BenchmarkSincosFast(b *testing.B) {
	benchSincos(b, SincosFast)
}

func BenchmarkSincosLUT(b *testing.B) {
	benchSincos(b, SincosLUT)
}

func benchSincos(b *testing.B, f SincosFunc) {
	var s, c float64
	for i := 0; i < b.N; i++ {
		ds, dc := f(float64(i) * 0.0137)
		s += ds
		c += dc
	}
	sinkFloat = s + c
}

var sinkFloat float64
