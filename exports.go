package repro

import (
	"context"

	"repro/internal/aterm"
	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/sky"
	"repro/internal/xmath"
)

// A-term providers (direction-dependent effects).

// IdentityATerms returns the trivial provider used by the paper's
// benchmark ("all set to identity").
func IdentityATerms() ATermProvider { return aterm.Identity{} }

// GaussianBeamATerms returns a station power-beam provider with the
// given beam sigma (direction cosines) and per-slot pointing wobble.
func GaussianBeamATerms(sigma, wobble float64) ATermProvider {
	return aterm.GaussianBeam{Sigma: sigma, Wobble: wobble}
}

// PhaseScreenATerms returns an ionosphere-like per-station phase
// gradient provider; strength is in radians per direction cosine.
func PhaseScreenATerms(strength float64) ATermProvider {
	return aterm.PhaseScreen{Strength: strength}
}

// ATermScheduler maps time steps to A-term slots.
type ATermScheduler = aterm.Scheduler

// CLEAN deconvolution.

type (
	// CleanParams configures Högbom CLEAN.
	CleanParams = clean.Params
	// CleanResult holds components, model and residual images.
	CleanResult = clean.Result
	// CleanComponent is one extracted delta component.
	CleanComponent = clean.Component
)

// Hogbom runs Högbom CLEAN on an n x n dirty image with the given PSF.
func Hogbom(dirty, psf []float64, n int, p CleanParams) (*CleanResult, error) {
	return clean.Hogbom(dirty, psf, n, p)
}

// RestoreImage convolves CLEAN components with a Gaussian beam and
// adds the residual.
func RestoreImage(res *CleanResult, n int, beamSigma float64) []float64 {
	return clean.Restore(res, n, beamSigma)
}

// Imaging helpers.

// ScaleImage multiplies all image planes by s.
func ScaleImage(img *Grid, s float64) { core.ScaleImage(img, s) }

// ApplyWScreen multiplies an image by exp(sign * 2*pi*i * w * n(l,m)),
// the W-stacking layer correction.
func ApplyWScreen(img *Grid, imageSize, w, sign float64) {
	core.ApplyWScreen(img, imageSize, w, sign)
}

// NewVisibilitySet allocates zeroed visibilities over the baselines
// and uvw tracks. Mismatched dimensions return an error wrapping
// ErrBadInput.
func NewVisibilitySet(baselines []Baseline, uvw [][]UVW, nrChannels int) (*VisibilitySet, error) {
	return core.NewVisibilitySet(baselines, uvw, nrChannels)
}

// MustNewVisibilitySet is NewVisibilitySet panicking on invalid input,
// for tests and short programs.
func MustNewVisibilitySet(baselines []Baseline, uvw [][]UVW, nrChannels int) *VisibilitySet {
	return core.MustNewVisibilitySet(baselines, uvw, nrChannels)
}

// PixelToLM converts image pixel indices to direction cosines.
func PixelToLM(x, y, n int, imageSize float64) (l, m float64) {
	return sky.PixelToLM(x, y, n, imageSize)
}

// LMToPixel converts direction cosines to the nearest image pixel.
func LMToPixel(l, m float64, n int, imageSize float64) (x, y int) {
	return sky.LMToPixel(l, m, n, imageSize)
}

// Identity2 returns the 2x2 identity Jones matrix.
func Identity2() Matrix2 { return xmath.Identity2() }

// W-stacking entry points (forward to the core package).

// GridWStacked grids every W-layer onto its own grid.
func (o *Observation) GridWStacked(ctx context.Context, prov ATermProvider) (map[int]*Grid, StageTimes, error) {
	if err := o.AllocateVisibilities(); err != nil {
		return nil, StageTimes{}, err
	}
	return o.Kernels.GridVisibilitiesWStacked(ctx, o.Plan, o.Vis, prov)
}

// CombineWStackedImage applies per-layer w screens and sums the layer
// images.
func (o *Observation) CombineWStackedImage(grids map[int]*Grid) *Grid {
	return o.Kernels.CombineWStackedImage(grids, o.Plan.WStepLambda)
}

// DegridWStacked predicts visibilities from a sky image through the
// W-stacking pipeline.
func (o *Observation) DegridWStacked(ctx context.Context, prov ATermProvider, img *Grid) (StageTimes, error) {
	if err := o.AllocateVisibilities(); err != nil {
		return StageTimes{}, err
	}
	return o.Kernels.DegridVisibilitiesWStacked(ctx, o.Plan, o.Vis, prov, img)
}

// PSF grids unit visibilities and returns the normalized Stokes I
// point spread function (restoring the observation's visibilities
// afterwards).
func (o *Observation) PSF(ctx context.Context) ([]float64, error) {
	if err := o.AllocateVisibilities(); err != nil {
		return nil, err
	}
	backup := make([][]Matrix2, len(o.Vis.Data))
	for b := range o.Vis.Data {
		backup[b] = append([]Matrix2(nil), o.Vis.Data[b]...)
	}
	defer func() {
		for b := range o.Vis.Data {
			copy(o.Vis.Data[b], backup[b])
		}
	}()
	if err := o.FillFromModel(SkyModel{{L: 0, M: 0, I: 1}}); err != nil {
		return nil, err
	}
	img, err := o.DirtyImage(ctx, nil)
	if err != nil {
		return nil, err
	}
	return sky.StokesI(img), nil
}
