package fft

import (
	"fmt"
	"sync"
)

// Plans are immutable after construction and relatively expensive to
// build (twiddle tables, bit-reversal permutations, Bluestein chirp
// transforms), while the pipelines create transforms of the same few
// sizes over and over (every GridToImage call, every W-layer, every
// streamed chunk worker). The cache below memoizes them behind an
// RWMutex: steady-state lookups take only the read lock, so concurrent
// chunk workers no longer serialize on a global mutex. Plans are built
// outside any lock; a losing racer's plan is discarded and the first
// stored one wins, keeping the shared-plan invariant.

var (
	cacheMu sync.RWMutex
	cache1D = make(map[int]*Plan)
	cache2D = make(map[[2]int]*Plan2D)
)

// CachedPlan returns a shared plan for length n.
func CachedPlan(n int) *Plan {
	cacheMu.RLock()
	p := cache1D[n]
	cacheMu.RUnlock()
	if p != nil {
		return p
	}
	fresh := NewPlan(n)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache1D[n]; ok {
		return p
	}
	cache1D[n] = fresh
	return fresh
}

// CachedPlan2D returns a shared 2-D plan for rows x cols.
func CachedPlan2D(rows, cols int) *Plan2D {
	key := [2]int{rows, cols}
	cacheMu.RLock()
	p := cache2D[key]
	cacheMu.RUnlock()
	if p != nil {
		return p
	}
	fresh := NewPlan2D(rows, cols)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache2D[key]; ok {
		return p
	}
	cache2D[key] = fresh
	return fresh
}

// EngineInfo describes the active FFT engine configuration in one
// line, for the CLI stage reports.
func EngineInfo() string {
	return fmt.Sprintf("fused radix-4 + mixed-radix/Bluestein, fused centering, blocked columns (B=%d), simd=%s",
		colBlock, planTier())
}
