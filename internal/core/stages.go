package core

import (
	"sync"

	"repro/internal/grid"
)

// FFTSubgrids Fourier-transforms a batch of subgrids in place, image
// domain -> uv domain (the "subgrid FFTs" step of Fig. 4). Each
// correlation plane is transformed independently with the centered
// convention; the work is embarrassingly parallel over subgrids, as
// noted in Section V-B-c.
func (k *Kernels) FFTSubgrids(subgrids []*grid.Subgrid) {
	k.transformSubgrids(subgrids, false)
}

// InverseFFTSubgrids transforms subgrids uv domain -> image domain,
// used between the splitter and the degridder.
func (k *Kernels) InverseFFTSubgrids(subgrids []*grid.Subgrid) {
	k.transformSubgrids(subgrids, true)
}

func (k *Kernels) transformSubgrids(subgrids []*grid.Subgrid, inverse bool) {
	if k.ob.enabled() {
		k.ob.subgrids(k.ob.sgFFT, countLive(subgrids))
	}
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	// The forward transform is scaled by 1/N~^2 so that (a) gridding a
	// visibility deposits unit total weight onto the grid and (b) the
	// degridding pipeline is the exact adjoint of the gridding
	// pipeline (the inverse transform already carries the 1/N~^2 of
	// fft.InverseCentered).
	norm := complex(1/float64(k.params.SubgridSize*k.params.SubgridSize), 0)
	transform := func(s *grid.Subgrid) {
		for c := 0; c < grid.NrCorrelations; c++ {
			if inverse {
				k.sgFFT.InverseCentered(s.Data[c])
			} else {
				k.sgFFT.ForwardCentered(s.Data[c])
				for i := range s.Data[c] {
					s.Data[c][i] *= norm
				}
			}
		}
	}
	if workers <= 1 {
		for _, s := range subgrids {
			if s != nil {
				transform(s)
			}
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		// Skipped (nil) subgrids of a degraded run carry no data.
		if s != nil {
			ch <- s
		}
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				transform(s)
			}
		}()
	}
	wg.Wait()
}

// Adder accumulates uv-domain subgrids onto the grid. Subgrids may
// overlap, so parallelizing over subgrids would need per-pixel
// synchronization; following Section V-B-d the adder parallelizes
// over grid rows instead: each worker owns a contiguous band of rows
// and adds the intersecting slice of every subgrid, so no two workers
// ever touch the same pixel.
func (k *Kernels) Adder(subgrids []*grid.Subgrid, g *grid.Grid) {
	if g.N != k.params.GridSize {
		panic("core: grid size does not match kernel parameters")
	}
	if k.ob.enabled() {
		k.ob.subgrids(k.ob.sgAdd, countLive(subgrids))
	}
	workers := k.params.workers()
	if workers > g.N {
		workers = g.N
	}
	addBand := func(rowLo, rowHi int) {
		for _, s := range subgrids {
			if s == nil {
				continue
			}
			if !s.InBounds(g.N) {
				panic("core: subgrid outside grid")
			}
			lo, hi := s.Y0, s.Y0+s.N
			if lo < rowLo {
				lo = rowLo
			}
			if hi > rowHi {
				hi = rowHi
			}
			for y := lo; y < hi; y++ {
				sy := y - s.Y0
				for c := 0; c < grid.NrCorrelations; c++ {
					dst := g.Data[c][y*g.N+s.X0 : y*g.N+s.X0+s.N]
					src := s.Data[c][sy*s.N : (sy+1)*s.N]
					for x := range dst {
						dst[x] += src[x]
					}
				}
			}
		}
	}
	if workers <= 1 || len(subgrids) == 0 {
		addBand(0, g.N)
		return
	}
	var wg sync.WaitGroup
	band := (g.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*band, (w+1)*band
		if hi > g.N {
			hi = g.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			addBand(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Splitter extracts uv-domain subgrids from the grid (the reverse of
// the adder). The grid is read-only here, so the splitter parallelizes
// over subgrids (Section V-B-d). Each destination subgrid must already
// carry its anchor (X0, Y0).
func (k *Kernels) Splitter(g *grid.Grid, subgrids []*grid.Subgrid) {
	if g.N != k.params.GridSize {
		panic("core: grid size does not match kernel parameters")
	}
	if k.ob.enabled() {
		k.ob.subgrids(k.ob.sgSplit, countLive(subgrids))
	}
	split := func(s *grid.Subgrid) {
		if s == nil {
			return
		}
		if !s.InBounds(g.N) {
			panic("core: subgrid outside grid")
		}
		for c := 0; c < grid.NrCorrelations; c++ {
			for y := 0; y < s.N; y++ {
				gy := s.Y0 + y
				copy(s.Data[c][y*s.N:(y+1)*s.N], g.Data[c][gy*g.N+s.X0:gy*g.N+s.X0+s.N])
			}
		}
	}
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	if workers <= 1 {
		for _, s := range subgrids {
			split(s)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		ch <- s
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				split(s)
			}
		}()
	}
	wg.Wait()
}

// countLive counts the non-nil subgrids of a batch (skipped items of a
// degraded run leave nil slots).
func countLive(subgrids []*grid.Subgrid) int {
	n := 0
	for _, s := range subgrids {
		if s != nil {
			n++
		}
	}
	return n
}

// AdderSerialLocked is the ablation alternative to Adder: it
// parallelizes over subgrids and serializes every grid update behind a
// single mutex, modelling the "prohibitive synchronization costs" the
// paper avoids. Only benchmarks use it.
func (k *Kernels) AdderSerialLocked(subgrids []*grid.Subgrid, g *grid.Grid) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		ch <- s
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				mu.Lock()
				for c := 0; c < grid.NrCorrelations; c++ {
					for y := 0; y < s.N; y++ {
						gy := s.Y0 + y
						dst := g.Data[c][gy*g.N+s.X0 : gy*g.N+s.X0+s.N]
						src := s.Data[c][y*s.N : (y+1)*s.N]
						for x := range dst {
							dst[x] += src[x]
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
