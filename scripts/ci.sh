#!/bin/sh
# CI gate: vet, build, full test suite with the race detector, the
# chaos tests raced a second time with fresh counts, a one-shot smoke
# run of the kernel benchmarks (validates the bench -> JSON tooling
# without burning benchmark time), and a kernel performance regression
# gate against the committed baseline. Mirrors `make ci` for
# environments without make.
set -eux

go vet ./...
go build ./...
# Cross-compile check: the SIMD dispatch layer must keep the pure-Go
# fallbacks buildable on a register-poor non-amd64 target (the asm
# kernels are amd64-only; arm64 exercises the !amd64 stub files).
GOOS=linux GOARCH=arm64 go build ./...
# Fast-fail race pass over the concurrency-heavy packages (pipelines,
# fault tolerance, the lock-free metrics/tracer, the session server)
# in short mode before paying for the full raced suite below.
go test -race -short ./internal/core/... ./internal/faulttol/... ./internal/obs/... ./internal/checkpoint/... ./internal/server/... ./internal/distrib/...
# The same short race pass with the SIMD tier forced down via the
# IDG_SIMD override: the scalar tier runs the generic Go tiles, the
# avx2 tier runs the 4/8-lane AVX2 kernels on hosts whose detected
# tier is avx512 (the override can only lower the tier, so these are
# no-ops on narrower hosts rather than failures).
IDG_SIMD=scalar go test -race -short ./internal/core/ ./internal/xmath/ ./internal/fft/
IDG_SIMD=avx2 go test -race -short ./internal/core/ ./internal/xmath/ ./internal/fft/
go test -race ./...
go test -race -count=2 ./internal/faultinject/ ./internal/faulttol/
# Kill-and-resume chaos harness and the checkpoint round-trip golden
# test run raced here: the crash hooks panic on the scheduler's
# coordinating goroutine and the resumed grid must still hash to the
# committed golden fingerprint. 'Distrib' pulls in the distributed
# coordinator chaos suite: concurrent reduction streams, worker kills
# mid-reduction, and relaunch-with-resume, all under the race
# detector.
go test -race -run 'Facade|Chaos|Cancel|Shard|Soak|Streamed|Checkpoint|Resume|Kill|Distrib' . ./internal/core/ ./internal/checkpoint/ ./internal/distrib/
# Server integration pass: build the service binaries, boot idgserver
# on a kernel-assigned port, replay a short multi-tenant idgload run
# with -verify (every session's grid SHA-256 checked against the
# locally computed golden hash), then SIGTERM and require a clean
# drain (the server exits non-zero if any session survives it).
scripts/server_smoke.sh
# Distributed integration pass: coordinator + 4 exec'd worker
# processes, run clean and then with one worker killed mid-stream;
# both runs must print the same final grid SHA-256 and the chaos run
# must report exactly one restart.
scripts/distrib_smoke.sh
scripts/bench.sh -short

# Performance regression gate: briefly re-measure the four kernel
# benchmarks (both precisions) plus the two FFT-stage benchmarks and
# compare their throughput against BENCH_kernels.json; a slowdown
# beyond BENCH_THRESHOLD percent (default 10) fails CI. The float32
# kernels are in the gate because they are the SIMD dispatch layer's
# reason to exist: losing the vector path (a dispatch regression)
# roughly halves their MVis/s, far beyond any threshold. The FFT
# benchmarks guard the radix-4 engine the same way: falling back to
# the seed per-plane path is a >3x slowdown on the subgrid stage.
# -allow-missing because this is a deliberate subset run: the
# baseline holds the full bench.sh set, CI re-measures only the
# kernels. -count 3 because benchjson gates on the best duplicate
# run — single-sample minima on a shared CI box measure scheduling
# noise, not regressions.
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
go test -run '^$' -bench 'BenchmarkGridderKernel$|BenchmarkGridderKernelFloat32$|BenchmarkDegridderKernel$|BenchmarkDegridderKernelFloat32$|BenchmarkSubgridFFTStage$|BenchmarkGridFFT2048$' -benchtime 1s -count 3 . |
    go run ./cmd/benchjson > "$out"
go run ./cmd/benchjson -compare -allow-missing -threshold "${BENCH_THRESHOLD:-10}" BENCH_kernels.json "$out"
# Distributed scalability gate: re-measure the 1/2/4/8-worker
# distributed passes and compare against BENCH_distrib.json. The
# threshold is looser (default 30 percent) because each sample is a
# whole multi-worker pass — process scheduling noise dwarfs kernel
# noise — but a fill that reverts to the full visibility set per
# worker or a wire path that ships full zero grids still blows far
# past it at workers=8.
go test -run '^$' -bench 'BenchmarkDistribScale' -benchtime 1s -count 3 . |
    go run ./cmd/benchjson > "$out"
go run ./cmd/benchjson -compare -threshold "${BENCH_DISTRIB_THRESHOLD:-30}" BENCH_distrib.json "$out"
