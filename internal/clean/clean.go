// Package clean implements Högbom CLEAN deconvolution and image
// restoration. The paper's imaging cycle (Fig. 2) alternates gridding
// and an inverse FFT with a "variant of the CLEAN algorithm" that
// extracts bright sources into the sky model, whose visibilities are
// then predicted (degridded) and subtracted. This package provides
// that variant for the example imager.
package clean

import (
	"errors"
	"fmt"
	"math"
)

// Params configures a CLEAN run.
type Params struct {
	// Gain is the loop gain: the fraction of the peak removed per
	// iteration (typically 0.1).
	Gain float64
	// MaxIterations bounds the minor cycle count.
	MaxIterations int
	// Threshold stops cleaning when the absolute peak of the residual
	// falls below it.
	Threshold float64
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	switch {
	case p.Gain <= 0 || p.Gain > 1:
		return fmt.Errorf("clean: gain %g outside (0, 1]", p.Gain)
	case p.MaxIterations < 1:
		return fmt.Errorf("clean: max iterations %d < 1", p.MaxIterations)
	case p.Threshold < 0:
		return fmt.Errorf("clean: negative threshold %g", p.Threshold)
	}
	return nil
}

// Component is one CLEAN component: a delta function at an image pixel.
type Component struct {
	X, Y int
	Flux float64
}

// Result holds the outcome of a CLEAN run.
type Result struct {
	// Components lists the extracted deltas (one per iteration; the
	// same pixel may appear multiple times).
	Components []Component
	// Model is the component image (sum of deltas).
	Model []float64
	// Residual is the dirty image after subtraction.
	Residual []float64
	// Iterations is the number of minor cycles executed.
	Iterations int
	// FinalPeak is the residual's absolute peak at termination.
	FinalPeak float64
}

// Hogbom runs Högbom CLEAN on a dirty image with the given PSF. Both
// images are n x n, row-major; the PSF must peak (value ~1) at its
// center pixel (n/2, n/2). The dirty image is not modified.
func Hogbom(dirty, psf []float64, n int, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(dirty) != n*n || len(psf) != n*n {
		return nil, fmt.Errorf("clean: image size mismatch: dirty %d, psf %d, want %d", len(dirty), len(psf), n*n)
	}
	center := (n/2)*n + n/2
	if math.Abs(psf[center]-1) > 0.1 {
		return nil, errors.New("clean: PSF must be normalized to ~1 at its center")
	}
	res := &Result{
		Model:    make([]float64, n*n),
		Residual: append([]float64(nil), dirty...),
	}
	for iter := 0; iter < p.MaxIterations; iter++ {
		// Find the absolute peak.
		px, peak := 0, 0.0
		for i, v := range res.Residual {
			if a := math.Abs(v); a > peak {
				peak, px = a, i
			}
		}
		res.FinalPeak = peak
		if peak <= p.Threshold {
			return res, nil
		}
		x, y := px%n, px/n
		flux := p.Gain * res.Residual[px]
		res.Components = append(res.Components, Component{X: x, Y: y, Flux: flux})
		res.Model[px] += flux
		subtractShiftedPSF(res.Residual, psf, n, x, y, flux)
		res.Iterations = iter + 1
	}
	// Recompute the final peak after the last subtraction.
	res.FinalPeak = absPeak(res.Residual)
	return res, nil
}

func absPeak(img []float64) float64 {
	m := 0.0
	for _, v := range img {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// subtractShiftedPSF subtracts flux * PSF centered at (x, y) from img.
func subtractShiftedPSF(img, psf []float64, n, x, y int, flux float64) {
	// PSF pixel (px, py) corresponds to offset (px - n/2, py - n/2).
	for py := 0; py < n; py++ {
		iy := y + py - n/2
		if iy < 0 || iy >= n {
			continue
		}
		rowImg := iy * n
		rowPSF := py * n
		for px := 0; px < n; px++ {
			ix := x + px - n/2
			if ix < 0 || ix >= n {
				continue
			}
			img[rowImg+ix] -= flux * psf[rowPSF+px]
		}
	}
}

// Restore convolves the CLEAN components with a circular Gaussian beam
// of the given standard deviation (in pixels) and adds the residual,
// producing the restored image.
func Restore(res *Result, n int, beamSigma float64) []float64 {
	if beamSigma <= 0 {
		panic(fmt.Sprintf("clean: beam sigma %g must be positive", beamSigma))
	}
	out := append([]float64(nil), res.Residual...)
	// Evaluate the beam out to 5 sigma.
	r := int(5*beamSigma) + 1
	inv := 1 / (2 * beamSigma * beamSigma)
	for _, c := range res.Components {
		for dy := -r; dy <= r; dy++ {
			y := c.Y + dy
			if y < 0 || y >= n {
				continue
			}
			for dx := -r; dx <= r; dx++ {
				x := c.X + dx
				if x < 0 || x >= n {
					continue
				}
				out[y*n+x] += c.Flux * math.Exp(-float64(dx*dx+dy*dy)*inv)
			}
		}
	}
	return out
}

// MergedComponents sums components that landed on the same pixel,
// which is the compact sky-model form handed to the predict step.
func (r *Result) MergedComponents() []Component {
	sums := make(map[[2]int]float64)
	for _, c := range r.Components {
		sums[[2]int{c.X, c.Y}] += c.Flux
	}
	out := make([]Component, 0, len(sums))
	for k, f := range sums {
		out = append(out, Component{X: k[0], Y: k[1], Flux: f})
	}
	return out
}
