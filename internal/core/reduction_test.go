package core

import (
	"fmt"
	"testing"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// TestChannelSpecializationsMatchReference verifies the channel
// reducers against the direct Algorithm 1 transcription for every
// width 1..17 — covering all fixed-width specializations, the generic
// fallback, and both off-by-one neighbours of every specialization.
// The phasor recurrence is disabled on the batched kernel so both
// paths evaluate identical sincos arguments and the comparison
// isolates the reduction order (tolerance 1e-12).
func TestChannelSpecializationsMatchReference(t *testing.T) {
	for nc := 1; nc <= 17; nc++ {
		t.Run(fmt.Sprintf("nc=%d", nc), func(t *testing.T) {
			freqs := make([]float64, nc)
			for i := range freqs {
				freqs[i] = 150e6 + float64(i)*250e3
			}
			params := Params{
				GridSize: 256, SubgridSize: 16, ImageSize: 0.1, Frequencies: freqs,
				DisablePhasorRecurrence: true,
			}
			batched, err := NewKernels(params)
			if err != nil {
				t.Fatal(err)
			}
			params.DisableBatching = true
			ref, err := NewKernels(params)
			if err != nil {
				t.Fatal(err)
			}

			const nt = 9
			item := plan.WorkItem{NrTimesteps: nt, NrChannels: nc, X0: 100, Y0: 90}
			rnd := newTestRand(uint64(nc) + 100)
			uvw := make([]uvwsim.UVW, nt)
			for i := range uvw {
				uvw[i] = uvwsim.UVW{U: 30 * rnd(), V: 30 * rnd(), W: 3 * rnd()}
			}
			vis := make([]xmath.Matrix2, nt*nc)
			for i := range vis {
				for p := 0; p < 4; p++ {
					vis[i][p] = complex(rnd(), rnd())
				}
			}
			a := grid.NewSubgrid(16, item.X0, item.Y0)
			b := grid.NewSubgrid(16, item.X0, item.Y0)
			batched.GridSubgrid(item, uvw, vis, nil, nil, a)
			ref.GridSubgrid(item, uvw, vis, nil, nil, b)
			if d := a.MaxAbsDiff(b); d > 1e-12 {
				t.Fatalf("specialized reducer differs from reference by %g", d)
			}
		})
	}
}

// TestReduceChannelsWidths pins the switch dispatch: every width —
// specialized or generic — must accumulate exactly nc channels, no
// more, no fewer.
func TestReduceChannelsWidths(t *testing.T) {
	for _, nc := range []int{1, 2, 3, 4, 5, 8, 12, 16, 32} {
		phRe := make([]float64, nc)
		phIm := make([]float64, nc)
		var re, im [4][]float64
		for i := range phRe {
			phRe[i] = 1
		}
		for p := range re {
			re[p] = make([]float64, 64)
			im[p] = make([]float64, 64)
			for i := range re[p] {
				re[p][i] = 1
			}
		}
		var acc [8]float64
		reduceChannels(&acc, phRe, phIm, &re, &im, 0, nc)
		if acc[0] != float64(nc) {
			t.Fatalf("nc=%d: accumulated %v channels", nc, acc[0])
		}
	}
}
