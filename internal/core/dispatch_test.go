package core

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/xmath"
)

// coreHostTiers enumerates every SIMD tier this host can execute, so
// the per-tier tests cover the full dispatch matrix on capable
// hardware and degrade to the scalar row elsewhere. The forceSIMD seam
// exercises the same tier resolution the IDG_SIMD environment override
// feeds (ci runs the short suite again under IDG_SIMD=scalar/avx2 to
// cover the env entry point itself).
func coreHostTiers() []xmath.SIMDTier {
	tiers := []xmath.SIMDTier{xmath.SIMDScalar}
	for tr := xmath.SIMDAVX2; tr <= xmath.DetectedSIMD(); tr++ {
		tiers = append(tiers, tr)
	}
	return tiers
}

// forceTier pins a Kernels value's dispatch tier via the test seam.
func forceTier(tier xmath.SIMDTier) func(*Params) {
	return func(p *Params) { p.forceSIMD = &tier }
}

// TestFloat32VectorKernelsMatchScalar pins the hand-vectorized
// eight-lane float32 path against the generic float32 tiles: both
// apply the same resync cadence and the same float64 seeding, so they
// agree to within twice the documented float32 bound (each side's
// drift plus accumulation rounding) on hardware where the vector
// kernels run at all.
func TestFloat32VectorKernelsMatchScalar(t *testing.T) {
	if dispatchFor(xmath.ActiveSIMD()).gridVec32 == nil {
		t.Skip("vector kernels unavailable on this CPU")
	}
	const sg, nt, nc = 16, 10, 21 // nc with a 5-channel tail past 2 octs
	item, uvw, vis, maxAmp := tilingItem(97, nt, nc)
	in, pixAmp := randomSubgrid(sg, item, 101)
	vecK := tilingKernels(t, sg, nc, func(p *Params) { p.Precision = Float32 })
	scalK := tilingKernels(t, sg, nc, func(p *Params) {
		p.Precision = Float32
		p.DisableVectorKernels = true
	})
	phaseBound := recurrencePhaseBound(vecK, item, uvw)

	a := grid.NewSubgrid(sg, item.X0, item.Y0)
	b := grid.NewSubgrid(sg, item.X0, item.Y0)
	vecK.GridSubgrid(item, uvw, vis, nil, nil, a)
	scalK.GridSubgrid(item, uvw, vis, nil, nil, b)
	tol := 2 * float32GridBound(nt*nc, maxAmp, phaseBound)
	if d := a.MaxAbsDiff(b); d > tol {
		t.Fatalf("float32 vector gridder differs from scalar by %g (bound %g)", d, tol)
	}

	va := make([]xmath.Matrix2, nt*nc)
	vb := make([]xmath.Matrix2, nt*nc)
	vecK.DegridSubgrid(item, in, uvw, nil, nil, va)
	scalK.DegridSubgrid(item, in, uvw, nil, nil, vb)
	npix := sg * sg
	tol = 2 * float32GridBound(npix, pixAmp, phaseBound)
	for i := range va {
		for p := 0; p < 4; p++ {
			if d := cmplx.Abs(va[i][p] - vb[i][p]); d > tol {
				t.Fatalf("float32 vector degridder differs from scalar by %g at vis %d (bound %g)", d, i, tol)
			}
		}
	}
}

// TestDispatchPerTier runs both precisions at every executable tier
// (forceSIMD seam) against the reference transcription: the dispatch
// table must route to a kernel whose result stays within the
// documented per-precision bound no matter which tier is active.
func TestDispatchPerTier(t *testing.T) {
	const sg, nt, nc = 12, 8, 21 // tails on both lane widths
	item, uvw, vis, maxAmp := tilingItem(103, nt, nc)
	ref := tilingKernels(t, sg, nc, func(p *Params) { p.DisableBatching = true })
	want := grid.NewSubgrid(sg, item.X0, item.Y0)
	ref.GridSubgrid(item, uvw, vis, nil, nil, want)
	phaseBound := recurrencePhaseBound(ref, item, uvw)
	for _, tier := range coreHostTiers() {
		for _, prec := range []Precision{Float64, Float32} {
			k := tilingKernels(t, sg, nc, func(p *Params) {
				p.Precision = prec
				forceTier(tier)(p)
			})
			got := grid.NewSubgrid(sg, item.X0, item.Y0)
			k.GridSubgrid(item, uvw, vis, nil, nil, got)
			tol := 2*2*math.Sqrt2*float64(nt*nc)*maxAmp*phaseBound + 1e-9
			if prec == Float32 {
				tol = 2*float32GridBound(nt*nc, maxAmp, phaseBound) + 1e-9
			}
			if d := got.MaxAbsDiff(want); d > tol {
				t.Fatalf("tier %v %v: gridder differs from reference by %g (bound %g)", tier, prec, d, tol)
			}
		}
	}
}

// TestScalarTierMatchesAblation: forcing the scalar tier and setting
// DisableVectorKernels must select the same generic tiles — bitwise
// identical results — so the ablation flag and the dispatch table
// cannot drift apart.
func TestScalarTierMatchesAblation(t *testing.T) {
	const sg, nt, nc = 8, 6, 16
	item, uvw, vis, _ := tilingItem(107, nt, nc)
	in, _ := randomSubgrid(sg, item, 109)
	for _, prec := range []Precision{Float64, Float32} {
		forced := tilingKernels(t, sg, nc, func(p *Params) {
			p.Precision = prec
			forceTier(xmath.SIMDScalar)(p)
		})
		ablated := tilingKernels(t, sg, nc, func(p *Params) {
			p.Precision = prec
			p.DisableVectorKernels = true
		})
		a := grid.NewSubgrid(sg, item.X0, item.Y0)
		b := grid.NewSubgrid(sg, item.X0, item.Y0)
		forced.GridSubgrid(item, uvw, vis, nil, nil, a)
		ablated.GridSubgrid(item, uvw, vis, nil, nil, b)
		if !subgridsEqual(a, b) {
			t.Fatalf("%v: forced-scalar gridder differs from DisableVectorKernels", prec)
		}
		va := make([]xmath.Matrix2, nt*nc)
		vb := make([]xmath.Matrix2, nt*nc)
		forced.DegridSubgrid(item, in, uvw, nil, nil, va)
		ablated.DegridSubgrid(item, in, uvw, nil, nil, vb)
		if !visEqual(va, vb) {
			t.Fatalf("%v: forced-scalar degridder differs from DisableVectorKernels", prec)
		}
	}
}

// TestSIMDInfo pins the dispatch report: the strings the commands log
// must reflect the tier resolution and kernel selection actually in
// effect.
func TestSIMDInfo(t *testing.T) {
	def := tilingKernels(t, 8, 8, nil)
	si := def.SIMDInfo()
	if _, err := xmath.ParseSIMDTier(si.Detected); err != nil {
		t.Fatalf("Detected %q does not parse: %v", si.Detected, err)
	}
	active, err := xmath.ParseSIMDTier(si.Active)
	if err != nil {
		t.Fatalf("Active %q does not parse: %v", si.Active, err)
	}
	if active > xmath.DetectedSIMD() {
		t.Fatalf("active tier %v exceeds detected %v", active, xmath.DetectedSIMD())
	}
	if xmath.ActiveSIMD() >= xmath.SIMDAVX2 {
		want32 := "avx2+fma 8-lane"
		if xmath.ActiveSIMD() >= xmath.SIMDAVX512 {
			want32 = "avx2+fma 8-lane, evex 2-pixel blocks"
		}
		if si.Tiles64 != "avx2+fma 4-lane" || si.Tiles32 != want32 {
			t.Fatalf("vector-capable host reports tiles64=%q tiles32=%q", si.Tiles64, si.Tiles32)
		}
	} else if si.Tiles64 != "generic" || si.Tiles32 != "generic" {
		t.Fatalf("scalar host reports tiles64=%q tiles32=%q", si.Tiles64, si.Tiles32)
	}
	// tilingKernels configures SincosAccurate, so the batch evaluator
	// must degrade to the configured scalar function and say so.
	if si.Sincos != "scalar (configured)" {
		t.Fatalf("configured-evaluator kernels report sincos=%q", si.Sincos)
	}
	// The default evaluator batches through SincosVec.
	defFast := tilingKernels(t, 8, 8, func(p *Params) { p.Sincos = nil })
	if got := defFast.SIMDInfo().Sincos; !strings.HasPrefix(got, "sincosvec/") {
		t.Fatalf("default-evaluator kernels report sincos=%q", got)
	}
	// Ablation and forced-scalar kernels report generic tiles.
	for name, mod := range map[string]func(*Params){
		"DisableVectorKernels": func(p *Params) { p.DisableVectorKernels = true },
		"forceSIMD=scalar":     forceTier(xmath.SIMDScalar),
	} {
		si := tilingKernels(t, 8, 8, mod).SIMDInfo()
		if si.Tiles64 != "generic" || si.Tiles32 != "generic" {
			t.Fatalf("%s reports tiles64=%q tiles32=%q", name, si.Tiles64, si.Tiles32)
		}
	}
	if !strings.Contains(si.String(), "simd: detected=") {
		t.Fatalf("SIMDInfo.String() = %q", si.String())
	}
}

// TestKernelPathVector32Counter: the float32 vector path reports its
// own dispatch counter, so measured float32 numbers are attributable
// to the kernel that produced them.
func TestKernelPathVector32Counter(t *testing.T) {
	if dispatchFor(xmath.ActiveSIMD()).gridVec32 == nil {
		t.Skip("vector kernels unavailable on this CPU")
	}
	const sg, nt, nc = 8, 4, 16
	item, uvw, vis, _ := tilingItem(113, nt, nc)
	ob := obs.New(0)
	k := tilingKernels(t, sg, nc, func(p *Params) {
		p.Precision = Float32
		p.Observer = ob
	})
	out := grid.NewSubgrid(sg, item.X0, item.Y0)
	k.GridSubgrid(item, uvw, vis, nil, nil, out)
	pv := make([]xmath.Matrix2, nt*nc)
	k.DegridSubgrid(item, out, uvw, nil, nil, pv)
	snap := ob.Metrics.Snapshot()
	if got := snap.Counters[obs.MetricKernelPathVector32]; got != 2 {
		t.Fatalf("%s = %d, want 2 (one gridder + one degridder call)",
			obs.MetricKernelPathVector32, got)
	}
	if got := snap.Counters[obs.MetricKernelPathTiled32]; got != 0 {
		t.Fatalf("generic float32 path counted %d on a vector-capable host", got)
	}
}
