// Package faultinject is a deterministic fault-injection harness for
// the IDG pipelines. It corrupts visibilities with NaN/Inf values,
// builds faulttol hooks that panic or delay inside selected work
// items, and selects its victims by hashing stable item coordinates —
// the same seed always hits the same items regardless of worker
// scheduling, so chaos tests can predict the exact degradation the
// pipeline must report.
package faultinject

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faulttol"
	"repro/internal/plan"
)

// hash64 is FNV-1a over a fixed-width key; deterministic across runs
// and platforms (unlike hash/maphash).
func hash64(seed uint64, parts ...int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ (seed * prime)
	for _, p := range parts {
		v := uint64(p)
		for b := 0; b < 8; b++ {
			h ^= (v >> (8 * b)) & 0xff
			h *= prime
		}
	}
	return h
}

// selected maps a hash to a Bernoulli(fraction) draw.
func selected(h uint64, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	return float64(h>>11)/float64(1<<53) < fraction
}

// Selector deterministically picks a fraction of work items by
// hashing (Baseline, TimeStart, Channel0) with a seed.
type Selector struct {
	// Fraction is the expected fraction of items selected in [0, 1].
	Fraction float64
	// Seed varies the selection.
	Seed uint64
}

// Selected reports whether the item is a victim.
func (s Selector) Selected(item plan.WorkItem) bool {
	return selected(hash64(s.Seed, item.Baseline, item.TimeStart, item.Channel0), s.Fraction)
}

// Count returns how many of the given items the selector hits.
func (s Selector) Count(items []plan.WorkItem) int {
	n := 0
	for i := range items {
		if s.Selected(items[i]) {
			n++
		}
	}
	return n
}

// SelectedVisibilities sums the visibilities covered by selected
// items — the exact degradation a skip-and-flag run must report when
// every selected item fails permanently.
func (s Selector) SelectedVisibilities(items []plan.WorkItem) int64 {
	var n int64
	for i := range items {
		if s.Selected(items[i]) {
			n += int64(items[i].NrVisibilities())
		}
	}
	return n
}

// PanicHook returns a hook that panics on every attempt of the
// selected items — a permanently crashing kernel.
func PanicHook(sel Selector) faulttol.Hook {
	return func(item plan.WorkItem, attempt int) {
		if sel.Selected(item) {
			panic("faultinject: injected kernel panic")
		}
	}
}

// FlakyHook returns a hook that panics on the first failAttempts
// attempts of the selected items and then succeeds — a transient
// fault that a retry policy rides out.
func FlakyHook(sel Selector, failAttempts int) faulttol.Hook {
	return func(item plan.WorkItem, attempt int) {
		if attempt <= failAttempts && sel.Selected(item) {
			panic("faultinject: injected transient panic")
		}
	}
}

// DelayHook returns a hook that sleeps for d inside selected items — a
// straggling worker for cancellation and deadline tests.
func DelayHook(sel Selector, d time.Duration) faulttol.Hook {
	return func(item plan.WorkItem, attempt int) {
		if sel.Selected(item) {
			time.Sleep(d)
		}
	}
}

// Chain composes hooks; each runs in order.
func Chain(hooks ...faulttol.Hook) faulttol.Hook {
	return func(item plan.WorkItem, attempt int) {
		for _, h := range hooks {
			h(item, attempt)
		}
	}
}

// Kill is the panic value thrown by CrashHook to simulate the process
// dying at a checkpoint-protocol point: unlike an injected kernel
// panic it is thrown outside the faulttol recovery scope, so it
// unwinds the whole streamed pass exactly like a kill -9 would end it
// (modulo deferred cleanup). Chaos tests recover it at the top and
// then exercise the resume path.
type Kill struct {
	// Event is the checkpoint-protocol point the crash fired at.
	Event checkpoint.Event
	// Chunk is the last committed chunk index at the crash (-1 if
	// none).
	Chunk int
}

// String describes the simulated crash.
func (k Kill) String() string {
	return fmt.Sprintf("faultinject: simulated kill at %s (chunk %d)", k.Event, k.Chunk)
}

// CrashHook returns a checkpoint.Hook that panics with a Kill at the
// first occurrence of event ev with a committed-chunk index >=
// atChunk (use atChunk < 0 for the first occurrence of ev at all).
// The hook fires at most once, so a resumed run that installs the
// same hook value is not re-killed. Crash points are deterministic:
// the scheduler fires checkpoint events from its coordinating
// goroutine in chunk order.
func CrashHook(ev checkpoint.Event, atChunk int) checkpoint.Hook {
	var fired atomic.Bool
	return func(e checkpoint.Event, chunk int) {
		if e != ev || chunk < atChunk {
			return
		}
		if fired.CompareAndSwap(false, true) {
			panic(Kill{Event: e, Chunk: chunk})
		}
	}
}

// Corruption identifies one corrupted visibility sample.
type Corruption struct {
	Baseline, Timestep, Channel int
}

// CorruptVisibilities overwrites a deterministic fraction of samples
// with NaNs (every correlation) and returns the corrupted sample
// coordinates. The same seed corrupts the same samples.
func CorruptVisibilities(vs *core.VisibilitySet, fraction float64, seed uint64) []Corruption {
	nan := complex(math.NaN(), math.NaN())
	var out []Corruption
	for b := range vs.Data {
		for t := 0; t < vs.NrTimesteps; t++ {
			for c := 0; c < vs.NrChannels; c++ {
				if !selected(hash64(seed, b, t, c), fraction) {
					continue
				}
				for p := 0; p < 4; p++ {
					vs.Data[b][t*vs.NrChannels+c][p] = nan
				}
				out = append(out, Corruption{Baseline: b, Timestep: t, Channel: c})
			}
		}
	}
	return out
}
