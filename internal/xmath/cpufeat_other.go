//go:build !amd64

package xmath

// HasAVX2FMA reports whether this CPU supports the AVX2 and FMA
// instruction sets the hand-vectorized kernel loops in internal/core
// require. Always false off amd64.
func HasAVX2FMA() bool { return false }
