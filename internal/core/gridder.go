package core

import (
	"fmt"
	"math"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

const twoPi = 2 * math.Pi

// GridSubgrid executes Algorithm 1 of the paper for one work item: it
// accumulates the item's visibilities onto the image-domain subgrid,
// then applies the A-term adjoint and the taper.
//
// uvw holds one coordinate per covered time step (meters); vis holds
// the covered visibilities indexed [t*item.NrChannels + c]. atermP and
// atermQ are the per-pixel station responses (nil for identity). The
// subgrid out is overwritten, including its anchor metadata.
func (k *Kernels) GridSubgrid(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid) {
	s := k.getScratch()
	k.gridSubgridScratch(item, uvw, vis, atermP, atermQ, out, s, k.params.workers())
	k.putScratch(s)
}

// gridSubgridScratch is GridSubgrid with caller-owned scratch buffers
// and an explicit pixel-tile parallelism hint: the pipeline threads one
// scratch per worker through it so the steady state allocates nothing,
// and raises par above 1 when a work group has fewer items than
// workers so the item's pixel tiles fan out (see runTiles).
func (k *Kernels) gridSubgridScratch(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, s *scratch, par int) {
	k.checkItem(item, uvw, vis)
	out.X0, out.Y0, out.WOffset = item.X0, item.Y0, item.WOffset
	if k.params.DisableBatching {
		if k.ob.enabled() {
			k.ob.kernelPath(k.ob.pathRef)
		}
		k.gridSubgridReference(item, uvw, vis, atermP, atermQ, out)
		return
	}
	if k.params.Precision == Float32 {
		tile := gridTile[float32]
		vec := k.disp.gridVec32 != nil && k.useRecurrence(item.NrChannels)
		if vec {
			tile = k.disp.gridVec32
		}
		if k.ob.enabled() {
			if vec {
				k.ob.kernelPath(k.ob.pathVec32)
			} else {
				k.ob.kernelPath(k.ob.pathTiled32)
			}
		}
		gridSubgridTiled[float32](k, item, uvw, vis, atermP, atermQ, out, s, par, tile)
	} else {
		tile := gridTile[float64]
		vec := k.disp.gridVec64 != nil && k.useRecurrence(item.NrChannels)
		if vec {
			tile = k.disp.gridVec64
		}
		if k.ob.enabled() {
			if vec {
				k.ob.kernelPath(k.ob.pathVec)
			} else {
				k.ob.kernelPath(k.ob.pathTiled64)
			}
		}
		gridSubgridTiled[float64](k, item, uvw, vis, atermP, atermQ, out, s, par, tile)
	}
}

// phasorMinChannels is the smallest channel count for which the
// recurrence wins: it replaces nc sincos evaluations per (pixel, time
// step) with two plus nc-1 complex rotations.
const phasorMinChannels = 3

// useRecurrence reports whether the phasor rotation recurrence applies
// to a work item of nc channels.
func (k *Kernels) useRecurrence(nc int) bool {
	return k.uniformScale && nc >= phasorMinChannels
}

// checkItem validates a work item against its buffers. It panics with
// errors wrapping faulttol.ErrBadInput so that the fault-tolerant
// pipeline runner classifies the failure as deterministic bad input
// (not retried) while direct kernel callers still crash loudly.
func (k *Kernels) checkItem(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2) {
	if len(uvw) != item.NrTimesteps {
		panic(fmt.Errorf("%w: uvw length %d does not match work item (%d timesteps)",
			faulttol.ErrBadInput, len(uvw), item.NrTimesteps))
	}
	if len(vis) != item.NrVisibilities() {
		panic(fmt.Errorf("%w: visibility count %d does not match work item (%d)",
			faulttol.ErrBadInput, len(vis), item.NrVisibilities()))
	}
	if item.Channel0 < 0 || item.Channel0+item.NrChannels > len(k.scale) {
		panic(fmt.Errorf("%w: work item channels [%d, %d) out of bounds (%d kernel channels)",
			faulttol.ErrBadInput, item.Channel0, item.Channel0+item.NrChannels, len(k.scale)))
	}
}

// gridSubgridReference is the direct transcription of Algorithm 1,
// kept as the correctness reference and the "no batching" ablation.
func (k *Kernels) gridSubgridReference(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid) {
	sg := k.params.SubgridSize
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	for i := 0; i < sg*sg; i++ {
		l, m, n := k.l[i], k.m[i], k.n[i]
		phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
		var sum xmath.Matrix2
		for t := 0; t < item.NrTimesteps; t++ {
			c3 := uvw[t]
			phaseIndex := c3.U*l + c3.V*m + c3.W*n
			for c := 0; c < item.NrChannels; c++ {
				phase := phaseIndex*k.scale[item.Channel0+c] - phaseOffset
				sin, cos := k.sincos(phase)
				phi := complex(cos, sin)
				v := vis[t*item.NrChannels+c]
				sum[0] += phi * v[0]
				sum[1] += phi * v[1]
				sum[2] += phi * v[2]
				sum[3] += phi * v[3]
			}
		}
		k.storePixel(out, i, sum, atermP, atermQ)
	}
}

// storePixel applies the A-term adjoint (Ap^H * S * Aq) and the taper,
// then writes the pixel.
func (k *Kernels) storePixel(out *grid.Subgrid, i int, sum xmath.Matrix2, atermP, atermQ []xmath.Matrix2) {
	if atermP != nil {
		sum = atermP[i].Hermitian().Mul(sum).Mul(atermQ[i])
	}
	tp := complex(k.taper[i], 0)
	out.Data[0][i] = sum[0] * tp
	out.Data[1][i] = sum[1] * tp
	out.Data[2][i] = sum[2] * tp
	out.Data[3][i] = sum[3] * tp
}

// gridSubgridTiled implements the optimized CPU strategy of
// Section V-B with the paper's GPU work decomposition layered on top:
// the visibilities are transposed once into planar real/imaginary
// arrays of the kernel precision F (optimization (1) of Section
// V-B-a), then the subgrid's pixels are processed in row tiles
// (runTiles) that read the shared planar block and write disjoint
// pixel ranges. Per-pixel accumulation order is independent of the
// tile and block sizes, so the result is identical for every
// decomposition (and bitwise reproducible under concurrent tiles).
func gridSubgridTiled[F floatT](k *Kernels, item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, s *scratch, par int, tile gridTileFn[F]) {
	sg := k.params.SubgridSize
	nt, nc := item.NrTimesteps, item.NrChannels
	b := bufsOf[F](s)
	backing := grow(&b.planar, 8*nt*nc)
	var re, im [4][]F
	for p := 0; p < 4; p++ {
		re[p] = backing[(2*p)*nt*nc : (2*p+1)*nt*nc]
		im[p] = backing[(2*p+1)*nt*nc : (2*p+2)*nt*nc]
	}
	for j, v := range vis {
		re[0][j], im[0][j] = F(real(v[0])), F(imag(v[0]))
		re[1][j], im[1][j] = F(real(v[1])), F(imag(v[1]))
		re[2][j], im[2][j] = F(real(v[2])), F(imag(v[2]))
		re[3][j], im[3][j] = F(real(v[3])), F(imag(v[3]))
	}
	tr := k.tileRows(sg)
	if ntiles := (sg + tr - 1) / tr; par <= 1 || ntiles <= 1 {
		// Serial fast path: direct tile calls, no closure — the parallel
		// branch's fn escapes into worker goroutines, and that single
		// closure allocation is the only per-item heap traffic left.
		for r0 := 0; r0 < sg; r0 += tr {
			r1 := r0 + tr
			if r1 > sg {
				r1 = sg
			}
			tile(k, item, uvw, s, atermP, atermQ, out, s, r0, r1)
		}
		return
	}
	k.runTiles(s, par, sg, func(ts *scratch, row0, row1 int) {
		tile(k, item, uvw, s, atermP, atermQ, out, ts, row0, row1)
	})
}

// gridTileFn is the per-tile gridder kernel: the generic gridTile, or
// the hand-vectorized gridTileVec on float64/amd64. Both read the
// shared planar visibility block out of the item-owner scratch sb
// (re-deriving the plane headers locally keeps them off the heap: the
// tile call is indirect, so pointer arguments would escape) and write
// the disjoint pixel rows [row0, row1) of out.
type gridTileFn[F floatT] func(k *Kernels, item plan.WorkItem, uvw []uvwsim.UVW, sb *scratch, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, ts *scratch, row0, row1 int)

// visPlanes re-derives the planar visibility block headers laid down
// by gridSubgridTiled in sb's arena.
func visPlanes[F floatT](sb *scratch, ntnc int) (re, im [4][]F) {
	backing := bufsOf[F](sb).planar
	for p := 0; p < 4; p++ {
		re[p] = backing[(2*p)*ntnc : (2*p+1)*ntnc]
		im[p] = backing[(2*p+1)*ntnc : (2*p+2)*ntnc]
	}
	return re, im
}

// gridTile grids the pixel rows [row0, row1) of one work item against
// the shared planar visibility block. The time x channel loop is
// cache-blocked (visBlockSteps): each block of the planar arrays is
// streamed across the whole tile before moving on, so the block stays
// L1-resident instead of the full nt x nc footprint.
func gridTile[F floatT](k *Kernels, item plan.WorkItem, uvw []uvwsim.UVW, sb *scratch, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, ts *scratch, row0, row1 int) {
	sg := k.params.SubgridSize
	nt, nc := item.NrTimesteps, item.NrChannels
	tb := bufsOf[F](ts)
	// Home the plane headers in the (heap-resident) tile scratch: their
	// addresses cross the any()-based FMA dispatch below, which would
	// move stack locals to the heap once per tile.
	tb.reP, tb.imP = visPlanes[F](sb, nt*nc)
	re, im := &tb.reP, &tb.imP
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	pix0, pix1 := row0*sg, row1*sg
	acc := grow(&tb.acc, 8*(pix1-pix0))
	for i := range acc {
		acc[i] = 0
	}
	useRec := k.useRecurrence(nc)
	phRe := grow(&tb.phRe, nc)
	phIm := grow(&tb.phIm, nc)
	scale := k.scale[item.Channel0 : item.Channel0+nc]
	block := k.visBlockSteps(nt, nc)
	for t0 := 0; t0 < nt; t0 += block {
		t1 := t0 + block
		if t1 > nt {
			t1 = nt
		}
		for i := pix0; i < pix1; i++ {
			l, m, n := k.l[i], k.m[i], k.n[i]
			phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
			a := (*[8]F)(acc[8*(i-pix0):])
			for t := t0; t < t1; t++ {
				c3 := uvw[t]
				phaseIndex := c3.U*l + c3.V*m + c3.W*n
				if useRec {
					// The channel phase step phaseIndex*dscale is constant
					// for this (pixel, time step): rotate instead of
					// re-evaluating, fused with the channel reduction.
					rotateAccumulate(a, re, im, t*nc, nc,
						phaseIndex*scale[0]-phaseOffset, phaseIndex*k.dscale,
						k.sincos, k.fastFMA)
				} else {
					for c := 0; c < nc; c++ {
						sv, cv := k.sincos(phaseIndex*scale[c] - phaseOffset)
						phIm[c], phRe[c] = F(sv), F(cv)
					}
					reduceChannels(a, phRe, phIm, re, im, t*nc, nc)
				}
			}
		}
	}
	for i := pix0; i < pix1; i++ {
		a := acc[8*(i-pix0):]
		sum := xmath.Matrix2{
			complex(float64(a[0]), float64(a[1])), complex(float64(a[2]), float64(a[3])),
			complex(float64(a[4]), float64(a[5])), complex(float64(a[6]), float64(a[7])),
		}
		k.storePixel(out, i, sum, atermP, atermQ)
	}
}

// rotateAccumulate fuses the phasor rotation recurrence with the
// channel reduction of one (pixel, time step): instead of filling a
// phasor buffer (xmath.PhasorRotator.Fill) and reducing it in a second
// pass, the phasor advances in registers while each channel's four
// correlations accumulate, eliminating the buffer store/reload from
// the innermost loop. The recurrence re-syncs with an exact evaluation
// every xmath.DefaultPhasorResync channels, preserving the documented
// drift bound. The phase arguments stay float64 in both precisions;
// the rotation itself runs in F (the float32 drift bound is
// xmath.Float32PhasorDriftBound).
func rotateAccumulate[F floatT](acc *[8]F, re, im *[4][]F, j0, nc int, base, delta float64, sincos xmath.SincosFunc, fastFMA bool) {
	if fastFMA {
		if a, ok := any(acc).(*[8]float64); ok {
			rotateAccumulateFMA(a, any(re).(*[4][]float64), any(im).(*[4][]float64),
				j0, nc, base, delta, sincos)
			return
		}
	}
	sv, cv := sincos(base)
	ds, dc := sincos(delta)
	ps, pc := F(sv), F(cv)
	fs, fc := F(ds), F(dc)
	r0 := re[0][j0 : j0+nc]
	i0 := im[0][j0 : j0+nc]
	r1 := re[1][j0 : j0+nc]
	i1 := im[1][j0 : j0+nc]
	r2 := re[2][j0 : j0+nc]
	i2 := im[2][j0 : j0+nc]
	r3 := re[3][j0 : j0+nc]
	i3 := im[3][j0 : j0+nc]
	var a0a, a0b, a1a, a1b, a2a, a2b, a3a, a3b F
	var a4a, a4b, a5a, a5b, a6a, a6b, a7a, a7b F
	for c := 0; c < nc; c++ {
		if c > 0 && c%xmath.DefaultPhasorResync == 0 {
			sv, cv = sincos(base + float64(c)*delta)
			ps, pc = F(sv), F(cv)
		}
		vr, vi := r0[c], i0[c]
		a0a += vr * pc
		a0b += vi * ps
		a1a += vr * ps
		a1b += vi * pc
		vr, vi = r1[c], i1[c]
		a2a += vr * pc
		a2b += vi * ps
		a3a += vr * ps
		a3b += vi * pc
		vr, vi = r2[c], i2[c]
		a4a += vr * pc
		a4b += vi * ps
		a5a += vr * ps
		a5b += vi * pc
		vr, vi = r3[c], i3[c]
		a6a += vr * pc
		a6b += vi * ps
		a7a += vr * ps
		a7b += vi * pc
		ps, pc = ps*fc+pc*fs, pc*fc-ps*fs
	}
	acc[0] += a0a - a0b
	acc[1] += a1a + a1b
	acc[2] += a2a - a2b
	acc[3] += a3a + a3b
	acc[4] += a4a - a4b
	acc[5] += a5a + a5b
	acc[6] += a6a - a6b
	acc[7] += a7a + a7b
}

// rotateAccumulateFMA is the float64 specialization of
// rotateAccumulate on hardware with fused multiply-add: every product
// runs as math.FMA (Go never contracts a*b+c on its own), halving the
// floating-point issue pressure of the innermost loop. Each of the
// eight accumulators is further split into two independent partial
// banks — one per product of the complex multiply — so every
// loop-carried chain is one FMA deep instead of two; the sixteen
// independent chains hide the FMA latency behind the issue rate. The
// banks recombine on exit (a = bankA -/+ bankB), which only
// reassociates the sum: the fused and split variants differ from the
// generic one only in rounding, well inside the recurrence bound the
// property tests assert.
func rotateAccumulateFMA(acc *[8]float64, re, im *[4][]float64, j0, nc int, base, delta float64, sincos xmath.SincosFunc) {
	ps, pc := sincos(base)
	fs, fc := sincos(delta)
	r0 := re[0][j0 : j0+nc]
	i0 := im[0][j0 : j0+nc]
	r1 := re[1][j0 : j0+nc]
	i1 := im[1][j0 : j0+nc]
	r2 := re[2][j0 : j0+nc]
	i2 := im[2][j0 : j0+nc]
	r3 := re[3][j0 : j0+nc]
	i3 := im[3][j0 : j0+nc]
	var a0a, a0b, a1a, a1b, a2a, a2b, a3a, a3b float64
	var a4a, a4b, a5a, a5b, a6a, a6b, a7a, a7b float64
	for c := 0; c < nc; c++ {
		if c > 0 && c%xmath.DefaultPhasorResync == 0 {
			ps, pc = sincos(base + float64(c)*delta)
		}
		vr, vi := r0[c], i0[c]
		a0a = math.FMA(vr, pc, a0a)
		a0b = math.FMA(vi, ps, a0b)
		a1a = math.FMA(vr, ps, a1a)
		a1b = math.FMA(vi, pc, a1b)
		vr, vi = r1[c], i1[c]
		a2a = math.FMA(vr, pc, a2a)
		a2b = math.FMA(vi, ps, a2b)
		a3a = math.FMA(vr, ps, a3a)
		a3b = math.FMA(vi, pc, a3b)
		vr, vi = r2[c], i2[c]
		a4a = math.FMA(vr, pc, a4a)
		a4b = math.FMA(vi, ps, a4b)
		a5a = math.FMA(vr, ps, a5a)
		a5b = math.FMA(vi, pc, a5b)
		vr, vi = r3[c], i3[c]
		a6a = math.FMA(vr, pc, a6a)
		a6b = math.FMA(vi, ps, a6b)
		a7a = math.FMA(vr, ps, a7a)
		a7b = math.FMA(vi, pc, a7b)
		ps, pc = math.FMA(ps, fc, pc*fs), math.FMA(pc, fc, -(ps*fs))
	}
	acc[0] += a0a - a0b
	acc[1] += a1a + a1b
	acc[2] += a2a - a2b
	acc[3] += a3a + a3b
	acc[4] += a4a - a4b
	acc[5] += a5a + a5b
	acc[6] += a6a - a6b
	acc[7] += a7a + a7b
}
