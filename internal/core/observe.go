package core

import (
	"errors"
	"time"

	"repro/internal/faulttol"
	"repro/internal/obs"
	"repro/internal/plan"
)

// kernelObs is the pipelines' pre-resolved view of an obs.Observer:
// every instrument the hot path reports into is looked up once at
// NewKernels, so a report costs one atomic add and no registry lookup.
// A nil *kernelObs (Params.Observer == nil) disables observation; the
// hot path then pays a single nil check and takes no timestamps, which
// keeps the four kernel benchmarks at 0 allocs/op.
type kernelObs struct {
	tracer *obs.Tracer

	// The obs instruments are nil-safe, so a metrics-less observer
	// (Observer.Metrics == nil) just leaves these nil.
	visGrid, visDegrid    *obs.Counter
	sgGrid, sgDegrid      *obs.Counter
	sgFFT, sgAdd, sgSplit *obs.Counter
	flagged               *obs.Counter
	retries, skips        *obs.Counter
	panics, dropped       *obs.Counter
	wplanes, cycles       *obs.Counter
	residualPeak          *obs.Gauge
	itemSeconds           *obs.Histogram
	stageNs               map[obs.Stage]*obs.Counter

	// Kernel dispatch-path counters (which code path actually ran:
	// essential when a perf number surprises).
	pathRef, pathTiled32, pathTiled64, pathVec, pathVec32 *obs.Counter

	// Sharded-grid and streaming-scheduler instruments.
	shardLocks, shardContended *obs.Counter
	streamChunks               *obs.Counter
	streamInflight             *obs.Gauge
	streamPeakSubgrids         *obs.Gauge

	// Retry-visibility and checkpoint-durability instruments.
	retryAttempts *obs.Counter
	retrySeconds  *obs.Histogram
	ckptWrites    *obs.Counter
	ckptBytes     *obs.Counter
	ckptRestores  *obs.Counter
	ckptSeconds   *obs.Histogram
}

// newKernelObs resolves the observer's instruments; nil in, nil out.
func newKernelObs(o *obs.Observer) *kernelObs {
	if o == nil {
		return nil
	}
	ko := &kernelObs{tracer: o.Tracer}
	if r := o.Metrics; r != nil {
		ko.visGrid = r.Counter(obs.MetricGridVisibilities)
		ko.visDegrid = r.Counter(obs.MetricDegridVisibilities)
		ko.sgGrid = r.Counter(obs.MetricGridSubgrids)
		ko.sgDegrid = r.Counter(obs.MetricDegridSubgrids)
		ko.sgFFT = r.Counter(obs.MetricFFTSubgrids)
		ko.sgAdd = r.Counter(obs.MetricAddedSubgrids)
		ko.sgSplit = r.Counter(obs.MetricSplitSubgrids)
		ko.flagged = r.Counter(obs.MetricFlaggedVisibilities)
		ko.retries = r.Counter(obs.MetricItemRetries)
		ko.skips = r.Counter(obs.MetricItemSkips)
		ko.panics = r.Counter(obs.MetricKernelPanics)
		ko.dropped = r.Counter(obs.MetricDroppedVisibilities)
		ko.wplanes = r.Counter(obs.MetricWPlanes)
		ko.cycles = r.Counter(obs.MetricMajorCycles)
		ko.residualPeak = r.Gauge(obs.GaugeResidualPeak)
		ko.itemSeconds, _ = r.Histogram(obs.HistItemSeconds, obs.DurationBuckets)
		ko.pathRef = r.Counter(obs.MetricKernelPathReference)
		ko.pathTiled32 = r.Counter(obs.MetricKernelPathTiled32)
		ko.pathTiled64 = r.Counter(obs.MetricKernelPathTiled64)
		ko.pathVec = r.Counter(obs.MetricKernelPathVector)
		ko.pathVec32 = r.Counter(obs.MetricKernelPathVector32)
		ko.shardLocks = r.Counter(obs.MetricShardLocks)
		ko.shardContended = r.Counter(obs.MetricShardContention)
		ko.streamChunks = r.Counter(obs.MetricStreamChunks)
		ko.streamInflight = r.Gauge(obs.GaugeStreamInflight)
		ko.streamPeakSubgrids = r.Gauge(obs.GaugeStreamPeakSubgrids)
		ko.retryAttempts = r.Counter(obs.MetricRetryAttempts)
		ko.retrySeconds, _ = r.Histogram(obs.HistRetryItemSeconds, obs.DurationBuckets)
		ko.ckptWrites = r.Counter(obs.MetricCheckpointWrites)
		ko.ckptBytes = r.Counter(obs.MetricCheckpointBytes)
		ko.ckptRestores = r.Counter(obs.MetricCheckpointRestores)
		ko.ckptSeconds, _ = r.Histogram(obs.HistCheckpointWriteSeconds, obs.DurationBuckets)
		ko.stageNs = make(map[obs.Stage]*obs.Counter)
		for _, s := range []obs.Stage{obs.StageGrid, obs.StageDegrid, obs.StageFFT,
			obs.StageAdd, obs.StageSplit, obs.StageShard, obs.StageWPlane, obs.StageCycle} {
			ko.stageNs[s] = r.Counter(obs.StageNsMetric(s))
		}
	}
	return ko
}

// enabled reports whether any observation happens; it is THE hot-path
// guard. Callers must not take timestamps or count flags unless it
// returns true.
func (ko *kernelObs) enabled() bool { return ko != nil }

// span records one completed span (no-op without a tracer).
func (ko *kernelObs) span(s obs.Span) {
	if ko == nil || ko.tracer == nil {
		return
	}
	ko.tracer.Record(s)
}

// now returns the current time only when observation is on, so the
// disabled path never calls time.Now.
func (ko *kernelObs) now() time.Time {
	if ko == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone records a completed pipeline-stage span (worker/item -1)
// plus the stage's cumulative wall-time counter. group is the
// work-group index of the pass (or the plane/cycle index for the outer
// stages); wplane is the W-layer all of the stage's data belongs to
// (-1 when unknown or mixed), so W-stacked passes attribute stage time
// to layers.
func (ko *kernelObs) stageDone(stage obs.Stage, group, wplane int, start time.Time, d time.Duration) {
	if ko == nil {
		return
	}
	ko.stageNs[stage].Add(d.Nanoseconds())
	ko.span(obs.Span{Stage: stage, Worker: -1, Group: group, Item: -1,
		Tile: -1, Baseline: -1, Shard: -1, WPlane: wplane,
		Start: ko.tracer.Offset(start), Dur: d.Nanoseconds()})
}

// itemDone accounts one successfully processed work item: the stage's
// visibility and subgrid counters, the per-item latency histogram, the
// retry counter, and a worker-attributed span.
func (ko *kernelObs) itemDone(stage obs.Stage, group, worker, i int, item plan.WorkItem, attempts int, start time.Time) {
	if ko == nil {
		return
	}
	d := time.Since(start)
	switch stage {
	case obs.StageGrid:
		ko.visGrid.Add(int64(item.NrVisibilities()))
		ko.sgGrid.Inc()
	case obs.StageDegrid:
		ko.visDegrid.Add(int64(item.NrVisibilities()))
		ko.sgDegrid.Inc()
	}
	ko.itemSeconds.Observe(d.Seconds())
	if attempts > 1 {
		ko.retries.Inc()
		ko.retryAttempts.Add(int64(attempts - 1))
		ko.retrySeconds.Observe(d.Seconds())
	}
	ko.span(obs.Span{Stage: stage, Worker: worker, Group: group, Item: i,
		Tile: -1, Baseline: item.Baseline, Shard: -1, WPlane: item.WPlane,
		Start: ko.tracer.Offset(start), Dur: d.Nanoseconds()})
}

// itemSkipped accounts a work item abandoned under SkipAndFlag and its
// dropped visibilities.
func (ko *kernelObs) itemSkipped(item plan.WorkItem) {
	if ko == nil {
		return
	}
	ko.skips.Inc()
	ko.dropped.Add(int64(item.NrVisibilities()))
}

// attemptFailed counts recovered kernel panics (every failed attempt,
// matching the faulttol taxonomy: bad input is not a panic).
func (ko *kernelObs) attemptFailed(err error) {
	if ko == nil {
		return
	}
	if errors.Is(err, faulttol.ErrKernelPanic) {
		ko.panics.Inc()
	}
}

// flaggedVis counts zero-weight samples entering the gridder.
func (ko *kernelObs) flaggedVis(n int64) {
	if ko == nil {
		return
	}
	ko.flagged.Add(n)
}

// subgrids bumps one of the batch-stage subgrid counters by the number
// of live (non-nil) subgrids in the batch.
func (ko *kernelObs) subgrids(c *obs.Counter, batch int) {
	if ko == nil {
		return
	}
	c.Add(int64(batch))
}

// kernelPath counts one kernel invocation on the given dispatch-path
// counter (callers guard with enabled()).
func (ko *kernelObs) kernelPath(c *obs.Counter) {
	if ko == nil {
		return
	}
	c.Inc()
}

// tileDone records one pixel-tile span of the intra-item fan-out.
// worker is the tile-worker index local to the fan-out (0 is the item
// owner).
func (ko *kernelObs) tileDone(worker, tile int, start time.Time) {
	if ko == nil || ko.tracer == nil {
		return
	}
	d := time.Since(start)
	ko.span(obs.Span{Stage: obs.StageTile, Worker: worker, Group: -1, Item: -1,
		Tile: tile, Baseline: -1, Shard: -1, WPlane: -1,
		Start: ko.tracer.Offset(start), Dur: d.Nanoseconds()})
}

// planeDone accounts one completed W-layer.
func (ko *kernelObs) planeDone(wplane int, start time.Time) {
	if ko == nil {
		return
	}
	d := time.Since(start)
	ko.wplanes.Inc()
	ko.stageNs[obs.StageWPlane].Add(d.Nanoseconds())
	ko.span(obs.Span{Stage: obs.StageWPlane, Worker: -1, Group: wplane, Item: -1,
		Tile: -1, Baseline: -1, Shard: -1, WPlane: wplane,
		Start: ko.tracer.Offset(start), Dur: d.Nanoseconds()})
}

// cycleImaged accounts the imaging phase (grid + invert + peak) of one
// major cycle and publishes the residual peak.
func (ko *kernelObs) cycleImaged(major int, peak float64, start time.Time) {
	if ko == nil {
		return
	}
	d := time.Since(start)
	ko.cycles.Inc()
	ko.residualPeak.Set(peak)
	ko.stageNs[obs.StageCycle].Add(d.Nanoseconds())
	ko.span(obs.Span{Stage: obs.StageCycle, Worker: -1, Group: major, Item: -1,
		Tile: -1, Baseline: -1, Shard: -1, WPlane: -1,
		Start: ko.tracer.Offset(start), Dur: d.Nanoseconds()})
}

// tracing reports whether per-shard spans should be recorded; they are
// too fine-grained to take timestamps for when only metrics are on.
func (ko *kernelObs) tracing() bool { return ko != nil && ko.tracer != nil }

// shardDone records one locked row-band update of the sharded adder or
// splitter: the overlap of subgrid (group, item) with grid shard si,
// attributed to the subgrid's W-layer. Only called when tracing() is
// true.
func (ko *kernelObs) shardDone(worker, shard, wplane int, start time.Time) {
	if ko == nil || ko.tracer == nil {
		return
	}
	d := time.Since(start)
	ko.span(obs.Span{Stage: obs.StageShard, Worker: worker, Group: -1, Item: -1,
		Tile: -1, Baseline: -1, Shard: shard, WPlane: wplane,
		Start: ko.tracer.Offset(start), Dur: d.Nanoseconds()})
}

// shardBatch accounts one sharded adder/splitter batch: the subgrid
// counter plus the lock/contention deltas the batch generated.
func (ko *kernelObs) shardBatch(c *obs.Counter, batch int, locks, contended int64) {
	if ko == nil {
		return
	}
	c.Add(int64(batch))
	ko.shardLocks.Add(locks)
	ko.shardContended.Add(contended)
}

// chunkDone accounts one completed streaming chunk and the current
// in-flight count after its release.
func (ko *kernelObs) chunkDone(inflight int64) {
	if ko == nil {
		return
	}
	ko.streamChunks.Inc()
	ko.streamInflight.Set(float64(inflight))
}

// streamPeak publishes the peak in-flight subgrid count of a streamed
// pass (set once, at the end, from the scheduler's atomic high-water
// mark).
func (ko *kernelObs) streamPeak(peak int64) {
	if ko == nil {
		return
	}
	ko.streamPeakSubgrids.Set(float64(peak))
	ko.streamInflight.Set(0)
}

// checkpointWritten accounts one published checkpoint: its size and
// the wall time of serialization + sync + rename.
func (ko *kernelObs) checkpointWritten(bytes int64, start time.Time) {
	if ko == nil {
		return
	}
	ko.ckptWrites.Inc()
	ko.ckptBytes.Add(bytes)
	ko.ckptSeconds.Observe(time.Since(start).Seconds())
}

// checkpointRestored counts one resumed pass that continued from a
// restored snapshot.
func (ko *kernelObs) checkpointRestored() {
	if ko == nil {
		return
	}
	ko.ckptRestores.Inc()
}

// countFlagged returns the number of flagged samples inside an item's
// visibility block (only called when observation is enabled).
func (vs *VisibilitySet) countFlagged(item plan.WorkItem) int64 {
	if vs.Flags == nil {
		return 0
	}
	flags := vs.Flags[item.Baseline]
	var n int64
	for t := 0; t < item.NrTimesteps; t++ {
		row := (item.TimeStart+t)*vs.NrChannels + item.Channel0
		for c := 0; c < item.NrChannels; c++ {
			if flags[row+c] {
				n++
			}
		}
	}
	return n
}
