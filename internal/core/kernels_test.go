package core

import (
	"math"
	"testing"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

func testKernels(t *testing.T, gridSize, sgSize int) *Kernels {
	t.Helper()
	k, err := NewKernels(Params{
		GridSize:    gridSize,
		SubgridSize: sgSize,
		ImageSize:   0.1,
		Frequencies: []float64{150e6, 151e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestParamsValidation(t *testing.T) {
	freqs := []float64{150e6}
	bad := []Params{
		{GridSize: 1, SubgridSize: 8, ImageSize: 0.1, Frequencies: freqs},
		{GridSize: 64, SubgridSize: 7, ImageSize: 0.1, Frequencies: freqs}, // odd
		{GridSize: 64, SubgridSize: 128, ImageSize: 0.1, Frequencies: freqs},
		{GridSize: 64, SubgridSize: 8, ImageSize: 0, Frequencies: freqs},
		{GridSize: 64, SubgridSize: 8, ImageSize: 0.1},
		{GridSize: 64, SubgridSize: 8, ImageSize: 0.1, Frequencies: []float64{0}},
	}
	for i, p := range bad {
		if _, err := NewKernels(p); err == nil {
			t.Fatalf("params %d should be rejected", i)
		}
	}
}

func TestUVOffsetCenterSubgrid(t *testing.T) {
	k := testKernels(t, 256, 32)
	// A subgrid centered on the grid has zero uv offset.
	u, v := k.uvOffset(256/2-16, 256/2-16)
	if u != 0 || v != 0 {
		t.Fatalf("centered subgrid offset (%g, %g), want (0, 0)", u, v)
	}
	// One pixel to the right shifts by one uv cell = 1/ImageSize.
	u, _ = k.uvOffset(256/2-16+1, 256/2-16)
	if math.Abs(u-1/0.1) > 1e-12 {
		t.Fatalf("one-pixel offset = %g, want %g", u, 10.0)
	}
}

func TestAdderSplitterRoundtrip(t *testing.T) {
	k := testKernels(t, 64, 16)
	g := grid.NewGrid(64)
	rnd := newTestRand(1)
	s := grid.NewSubgrid(16, 10, 20)
	for c := range s.Data {
		for i := range s.Data[c] {
			s.Data[c][i] = complex(rnd(), rnd())
		}
	}
	orig := s.Clone()
	k.Adder([]*grid.Subgrid{s}, g)
	out := grid.NewSubgrid(16, 10, 20)
	k.Splitter(g, []*grid.Subgrid{out})
	if d := out.MaxAbsDiff(orig); d != 0 {
		t.Fatalf("adder/splitter roundtrip differs by %g", d)
	}
}

func TestAdderAccumulatesOverlaps(t *testing.T) {
	k := testKernels(t, 64, 16)
	g := grid.NewGrid(64)
	a := grid.NewSubgrid(16, 8, 8)
	b := grid.NewSubgrid(16, 16, 8) // overlaps a by 8 columns
	for i := range a.Data[0] {
		a.Data[0][i] = 1
		b.Data[0][i] = 2
	}
	k.Adder([]*grid.Subgrid{a, b}, g)
	if g.At(0, 8, 10) != 1 { // only a
		t.Fatalf("a-only pixel = %v", g.At(0, 8, 10))
	}
	if g.At(0, 8, 20) != 3 { // overlap
		t.Fatalf("overlap pixel = %v", g.At(0, 8, 20))
	}
	if g.At(0, 8, 28) != 2 { // only b
		t.Fatalf("b-only pixel = %v", g.At(0, 8, 28))
	}
}

func TestAdderVariantsAgree(t *testing.T) {
	k := testKernels(t, 64, 16)
	rnd := newTestRand(2)
	var subgrids []*grid.Subgrid
	for i := 0; i < 20; i++ {
		s := grid.NewSubgrid(16, int(40*(rnd()+1)/2), int(40*(rnd()+1)/2))
		for c := range s.Data {
			for j := range s.Data[c] {
				s.Data[c][j] = complex(rnd(), rnd())
			}
		}
		subgrids = append(subgrids, s)
	}
	g1 := grid.NewGrid(64)
	k.Adder(subgrids, g1)
	g2 := grid.NewGrid(64)
	k.AdderSerialLocked(subgrids, g2)
	if d := g1.MaxAbsDiff(g2); d > 1e-12 {
		t.Fatalf("adder variants differ by %g", d)
	}
}

func TestAdderPanicsOnOutOfBounds(t *testing.T) {
	k := testKernels(t, 64, 16)
	g := grid.NewGrid(64)
	s := grid.NewSubgrid(16, 60, 0) // sticks out
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Adder([]*grid.Subgrid{s}, g)
}

func TestFFTSubgridsRoundtrip(t *testing.T) {
	k := testKernels(t, 64, 16)
	rnd := newTestRand(3)
	var batch []*grid.Subgrid
	var orig []*grid.Subgrid
	for i := 0; i < 9; i++ {
		s := grid.NewSubgrid(16, 0, 0)
		for c := range s.Data {
			for j := range s.Data[c] {
				s.Data[c][j] = complex(rnd(), rnd())
			}
		}
		batch = append(batch, s)
		orig = append(orig, s.Clone())
	}
	k.FFTSubgrids(batch)
	k.InverseFFTSubgrids(batch)
	// Forward is scaled by 1/N~^2 and inverse by 1/N~^2 again, so the
	// roundtrip returns the original divided by N~^2 * N~^2 / N~^2 ...
	// concretely: forward = F/N~^2, inverse = F^-1 (with 1/N~^2 inside
	// fft.Inverse), so roundtrip = identity / N~^2.
	scale := complex(1.0/(16*16), 0)
	for i := range batch {
		want := orig[i]
		for c := range want.Data {
			for j := range want.Data[c] {
				want.Data[c][j] *= scale
			}
		}
		if d := batch[i].MaxAbsDiff(want); d > 1e-12 {
			t.Fatalf("subgrid %d roundtrip differs by %g", i, d)
		}
	}
}

func TestGridSubgridImpulseLandsAtOffset(t *testing.T) {
	// A single visibility of value 1 with uvw exactly on the subgrid's
	// uv offset must produce, after the gridder, a constant-phase
	// (real) image-domain subgrid: all phases cancel.
	k := testKernels(t, 256, 32)
	item := plan.WorkItem{
		Baseline: 0, TimeStart: 0, NrTimesteps: 1,
		Channel0: 0, NrChannels: 1,
		X0: 140, Y0: 100,
	}
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	// uvw in meters such that u_lambda = uOff at channel 0.
	lambda := 299792458.0 / 150e6
	uvw := []uvwsim.UVW{{U: uOff * lambda, V: vOff * lambda, W: 0}}
	vis := []xmath.Matrix2{{1, 0, 0, 1}}
	out := grid.NewSubgrid(32, 0, 0)
	k.GridSubgrid(item, uvw, vis, nil, nil, out)
	// Every pixel must equal its taper value (real, positive inside).
	for i := range out.Data[0] {
		want := complex(k.taper[i], 0)
		if d := cAbs(out.Data[0][i] - want); d > 1e-9 {
			t.Fatalf("pixel %d = %v, want %v", i, out.Data[0][i], want)
		}
		if out.Data[1][i] != 0 || out.Data[2][i] != 0 {
			t.Fatal("cross terms must stay zero")
		}
	}
}

func TestGridDegridSingleItemRoundtrip(t *testing.T) {
	// Degridding the FFT of a gridded single visibility reproduces the
	// visibility up to the taper-squared weighting... instead test the
	// adjoint at subgrid level: <Grid(v), s> == <v, Degrid(s)> for one
	// work item without the FFT stage.
	k := testKernels(t, 256, 32)
	item := plan.WorkItem{
		Baseline: 0, TimeStart: 0, NrTimesteps: 3,
		Channel0: 0, NrChannels: 2,
		X0: 120, Y0: 130,
	}
	rnd := newTestRand(4)
	uvw := make([]uvwsim.UVW, 3)
	for t2 := range uvw {
		uvw[t2] = uvwsim.UVW{U: 20 * rnd(), V: 20 * rnd(), W: 2 * rnd()}
	}
	vis := make([]xmath.Matrix2, 6)
	for i := range vis {
		for p := 0; p < 4; p++ {
			vis[i][p] = complex(rnd(), rnd())
		}
	}
	s := grid.NewSubgrid(32, item.X0, item.Y0)
	for c := range s.Data {
		for i := range s.Data[c] {
			s.Data[c][i] = complex(rnd(), rnd())
		}
	}

	gv := grid.NewSubgrid(32, item.X0, item.Y0)
	k.GridSubgrid(item, uvw, vis, nil, nil, gv)
	var lhs complex128
	for c := range gv.Data {
		for i := range gv.Data[c] {
			lhs += gv.Data[c][i] * conj(s.Data[c][i])
		}
	}

	dv := make([]xmath.Matrix2, 6)
	k.DegridSubgrid(item, s, uvw, nil, nil, dv)
	var rhs complex128
	for i := range vis {
		for p := 0; p < 4; p++ {
			rhs += vis[i][p] * conj(dv[i][p])
		}
	}
	if d := cAbs(lhs-rhs) / cAbs(lhs); d > 1e-9 {
		t.Fatalf("kernel-level adjoint violated: %v vs %v", lhs, rhs)
	}
}

func TestTaperCorrectionBlanksEdges(t *testing.T) {
	k := testKernels(t, 64, 16)
	corr := k.TaperCorrection(64)
	center := corr[32*64+32]
	if center <= 0 {
		t.Fatal("center correction must be positive")
	}
	if corr[0] != 0 {
		t.Fatal("corner must be blanked")
	}
}

func TestApplyWScreenRoundtrip(t *testing.T) {
	img := grid.NewGrid(32)
	rnd := newTestRand(5)
	for c := range img.Data {
		for i := range img.Data[c] {
			img.Data[c][i] = complex(rnd(), rnd())
		}
	}
	orig := img.Clone()
	ApplyWScreen(img, 0.2, 123.0, +1)
	if img.MaxAbsDiff(orig) < 1e-9 {
		t.Fatal("w screen had no effect")
	}
	ApplyWScreen(img, 0.2, 123.0, -1)
	if d := img.MaxAbsDiff(orig); d > 1e-9 {
		t.Fatalf("w screen roundtrip differs by %g", d)
	}
}

func TestGridImageRoundtrip(t *testing.T) {
	img := grid.NewGrid(32)
	rnd := newTestRand(6)
	for c := range img.Data {
		for i := range img.Data[c] {
			img.Data[c][i] = complex(rnd(), rnd())
		}
	}
	orig := img.Clone()
	g := ImageToGrid(img, 2)
	back := GridToImage(g, 2)
	if d := back.MaxAbsDiff(orig); d > 1e-9 {
		t.Fatalf("image->grid->image roundtrip differs by %g", d)
	}
	// fft package consistency: ImageToGrid equals ForwardCentered.
	ref := orig.Clone()
	p := fft.NewPlan2D(32, 32)
	for c := range ref.Data {
		p.ForwardCentered(ref.Data[c])
	}
	if d := ref.MaxAbsDiff(g); d > 1e-9 {
		t.Fatalf("ImageToGrid mismatch %g", d)
	}
}
