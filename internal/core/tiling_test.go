package core

import (
	"math"
	"math/cmplx"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// tilingKernels builds kernels over a uniform channel comb with the
// given subgrid size; mod tweaks the tiling/precision knobs.
func tilingKernels(t *testing.T, sg, nc int, mod func(*Params)) *Kernels {
	t.Helper()
	freqs := make([]float64, nc)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*250e3
	}
	params := Params{
		GridSize: 256, SubgridSize: sg, ImageSize: 0.1, Frequencies: freqs,
		Sincos: xmath.SincosAccurate,
	}
	if mod != nil {
		mod(&params)
	}
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// tilingItem builds a random work item with its uvw track and
// visibilities, returning the largest visibility component magnitude.
func tilingItem(seed uint64, nt, nc int) (plan.WorkItem, []uvwsim.UVW, []xmath.Matrix2, float64) {
	item := plan.WorkItem{NrTimesteps: nt, NrChannels: nc, X0: 100, Y0: 90}
	rnd := newTestRand(seed)
	uvw := make([]uvwsim.UVW, nt)
	for i := range uvw {
		uvw[i] = uvwsim.UVW{U: 50 * rnd(), V: 50 * rnd(), W: 5 * rnd()}
	}
	vis := make([]xmath.Matrix2, nt*nc)
	maxAmp := 0.0
	for i := range vis {
		for p := 0; p < 4; p++ {
			vis[i][p] = complex(rnd(), rnd())
			if a := cmplx.Abs(vis[i][p]); a > maxAmp {
				maxAmp = a
			}
		}
	}
	return item, uvw, vis, maxAmp
}

// randomSubgrid fills a subgrid with random pixels for degridder tests.
func randomSubgrid(sg int, item plan.WorkItem, seed uint64) (*grid.Subgrid, float64) {
	in := grid.NewSubgrid(sg, item.X0, item.Y0)
	rnd := newTestRand(seed)
	maxAmp := 0.0
	for c := range in.Data {
		for i := range in.Data[c] {
			in.Data[c][i] = complex(rnd(), rnd())
			if a := cmplx.Abs(in.Data[c][i]); a > maxAmp {
				maxAmp = a
			}
		}
	}
	return in, maxAmp
}

// subgridsEqual reports whether two subgrids hold numerically
// identical pixels (the decomposition-invariance contract of the
// gridder: per-pixel accumulation order does not depend on the tile or
// block shape).
func subgridsEqual(a, b *grid.Subgrid) bool {
	for p := range a.Data {
		for i := range a.Data[p] {
			if a.Data[p][i] != b.Data[p][i] {
				return false
			}
		}
	}
	return true
}

func visEqual(a, b []xmath.Matrix2) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// float32GridBound is the documented float32 gridder error bound for
// one pixel: every one of the n phasor applications can be off by the
// float64 recurrence bound plus the float32 rotation drift, and the
// accumulation itself rounds in float32 (xmath.Float32AccumBound).
func float32GridBound(n int, maxAmp, phaseBound float64) float64 {
	drift := phaseBound + xmath.Float32PhasorDriftBound(xmath.DefaultPhasorResync)
	sumAbs := math.Sqrt2 * float64(n) * maxAmp
	return 2*math.Sqrt2*float64(n)*maxAmp*drift + 4*xmath.Float32AccumBound(n, sumAbs)
}

// TestGridderDecompositionInvariance: for a fixed precision and code
// path, the gridder result must be numerically identical for EVERY
// pixel-tile height and visibility-block size, including degenerate
// ones — the per-pixel accumulation order is decomposition-invariant
// by construction.
func TestGridderDecompositionInvariance(t *testing.T) {
	const sg, nt, nc = 8, 12, 16
	item, uvw, vis, _ := tilingItem(51, nt, nc)
	for _, tc := range []struct {
		name string
		mod  func(*Params)
	}{
		{"Float64", nil},
		{"Float64NoVec", func(p *Params) { p.DisableVectorKernels = true }},
		{"Float32", func(p *Params) { p.Precision = Float32 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := tilingKernels(t, sg, nc, tc.mod)
			want := grid.NewSubgrid(sg, item.X0, item.Y0)
			base.GridSubgrid(item, uvw, vis, nil, nil, want)
			variants := []func(*Params){}
			for tr := 1; tr <= sg+3; tr++ {
				tr := tr
				variants = append(variants, func(p *Params) { p.PixelTileRows = tr })
			}
			for _, bl := range []int{1, 3, 5, nt, nt + 7} {
				bl := bl
				variants = append(variants, func(p *Params) { p.VisBlockTimesteps = bl })
			}
			variants = append(variants,
				func(p *Params) { p.DisablePixelTiling = true },
				func(p *Params) { p.DisableVisBlocking = true },
				func(p *Params) { p.DisablePixelTiling = true; p.DisableVisBlocking = true },
				func(p *Params) { p.PixelTileRows = 1; p.VisBlockTimesteps = 1 },
			)
			for vi, v := range variants {
				k := tilingKernels(t, sg, nc, func(p *Params) {
					if tc.mod != nil {
						tc.mod(p)
					}
					v(p)
				})
				got := grid.NewSubgrid(sg, item.X0, item.Y0)
				k.GridSubgrid(item, uvw, vis, nil, nil, got)
				if !subgridsEqual(want, got) {
					t.Fatalf("variant %d: gridder result depends on the tile/block decomposition", vi)
				}
			}
		})
	}
}

// TestGridderTiledMatchesReference: every tile size in [1, subgrid]
// and both precisions against the float64 reference transcription,
// within the documented bounds.
func TestGridderTiledMatchesReference(t *testing.T) {
	const sg, nt, nc = 16, 12, 16
	item, uvw, vis, maxAmp := tilingItem(53, nt, nc)
	ref := tilingKernels(t, sg, nc, func(p *Params) { p.DisableBatching = true })
	want := grid.NewSubgrid(sg, item.X0, item.Y0)
	ref.GridSubgrid(item, uvw, vis, nil, nil, want)
	phaseBound := recurrencePhaseBound(ref, item, uvw)
	tol64 := 2 * math.Sqrt2 * float64(nt*nc) * maxAmp * phaseBound
	tol32 := float32GridBound(nt*nc, maxAmp, phaseBound)
	for _, prec := range []Precision{Float64, Float32} {
		tol := tol64
		if prec == Float32 {
			tol = tol32
		}
		for tr := 1; tr <= sg; tr++ {
			k := tilingKernels(t, sg, nc, func(p *Params) {
				p.Precision = prec
				p.PixelTileRows = tr
			})
			got := grid.NewSubgrid(sg, item.X0, item.Y0)
			k.GridSubgrid(item, uvw, vis, nil, nil, got)
			if d := got.MaxAbsDiff(want); d > tol {
				t.Fatalf("%v tile rows %d: differs from reference by %g (bound %g)", prec, tr, d, tol)
			}
		}
	}
}

// TestDegridderTiledMatchesReference is the degridder analogue; the
// per-visibility sum runs over the subgrid's pixels, so the bounds
// scale with the pixel count.
func TestDegridderTiledMatchesReference(t *testing.T) {
	const sg, nt, nc = 16, 10, 16
	item, uvw, _, _ := tilingItem(57, nt, nc)
	in, maxAmp := randomSubgrid(sg, item, 59)
	ref := tilingKernels(t, sg, nc, func(p *Params) { p.DisableBatching = true })
	want := make([]xmath.Matrix2, nt*nc)
	ref.DegridSubgrid(item, in, uvw, nil, nil, want)
	phaseBound := recurrencePhaseBound(ref, item, uvw)
	npix := sg * sg
	tol64 := 2 * math.Sqrt2 * float64(npix) * maxAmp * phaseBound
	tol32 := float32GridBound(npix, maxAmp, phaseBound)
	for _, prec := range []Precision{Float64, Float32} {
		tol := tol64
		if prec == Float32 {
			tol = tol32
		}
		for tr := 1; tr <= sg; tr++ {
			k := tilingKernels(t, sg, nc, func(p *Params) {
				p.Precision = prec
				p.PixelTileRows = tr
			})
			got := make([]xmath.Matrix2, nt*nc)
			k.DegridSubgrid(item, in, uvw, nil, nil, got)
			maxDiff := 0.0
			for i := range got {
				for p := 0; p < 4; p++ {
					if d := cmplx.Abs(got[i][p] - want[i][p]); d > maxDiff {
						maxDiff = d
					}
				}
			}
			if maxDiff > tol {
				t.Fatalf("%v tile rows %d: differs from reference by %g (bound %g)", prec, tr, maxDiff, tol)
			}
		}
	}
}

// TestDegridderSerialParallelBitwise: for a FIXED tile size, running
// the tiles on one worker or many must give numerically identical
// visibilities — the parallel path combines per-tile partials in tile
// order, replaying the serial addition sequence. Subgrid sizes 8 and
// 10 cover both the quad-aligned and the tail-carrying vector paths.
func TestDegridderSerialParallelBitwise(t *testing.T) {
	const nt, nc = 9, 8
	for _, sg := range []int{8, 10} {
		for _, prec := range []Precision{Float64, Float32} {
			item, uvw, _, _ := tilingItem(61, nt, nc)
			in, _ := randomSubgrid(sg, item, 63)
			mod := func(workers int) func(*Params) {
				return func(p *Params) {
					p.Precision = prec
					p.PixelTileRows = 1
					p.Workers = workers
				}
			}
			serial := tilingKernels(t, sg, nc, mod(1))
			parallel := tilingKernels(t, sg, nc, mod(8))
			want := make([]xmath.Matrix2, nt*nc)
			serial.DegridSubgrid(item, in, uvw, nil, nil, want)
			got := make([]xmath.Matrix2, nt*nc)
			parallel.DegridSubgrid(item, in, uvw, nil, nil, got)
			if !visEqual(want, got) {
				t.Fatalf("sg=%d %v: parallel degridder differs from serial", sg, prec)
			}
		}
	}
}

// TestKernelsConcurrentDeterminism: concurrent kernel invocations with
// intra-subgrid tile parallelism must all reproduce the single-worker
// result exactly. Run under -race in CI, this also proves the tile
// fan-out and scratch handoff are data-race free.
func TestKernelsConcurrentDeterminism(t *testing.T) {
	const sg, nt, nc = 10, 8, 8
	item, uvw, vis, _ := tilingItem(67, nt, nc)
	in, _ := randomSubgrid(sg, item, 69)
	mod := func(workers int) func(*Params) {
		return func(p *Params) {
			p.PixelTileRows = 2
			p.Workers = workers
		}
	}
	serial := tilingKernels(t, sg, nc, mod(1))
	parallel := tilingKernels(t, sg, nc, mod(8))
	wantGrid := grid.NewSubgrid(sg, item.X0, item.Y0)
	serial.GridSubgrid(item, uvw, vis, nil, nil, wantGrid)
	wantVis := make([]xmath.Matrix2, nt*nc)
	serial.DegridSubgrid(item, in, uvw, nil, nil, wantVis)

	const goroutines, rounds = 4, 3
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				out := grid.NewSubgrid(sg, item.X0, item.Y0)
				parallel.GridSubgrid(item, uvw, vis, nil, nil, out)
				if !subgridsEqual(wantGrid, out) {
					errs <- "concurrent gridder result differs"
					return
				}
				pv := make([]xmath.Matrix2, nt*nc)
				parallel.DegridSubgrid(item, in, uvw, nil, nil, pv)
				if !visEqual(wantVis, pv) {
					errs <- "concurrent degridder result differs"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestFlaggedVisibilitiesExactZero: fully flagged (zeroed) inputs must
// produce exact zeros on every code path — no drift, no denormal dust
// from the phasor arithmetic.
func TestFlaggedVisibilitiesExactZero(t *testing.T) {
	const sg, nt, nc = 8, 6, 8
	item, uvw, _, _ := tilingItem(71, nt, nc)
	vis := make([]xmath.Matrix2, nt*nc) // all zero
	zeroIn := grid.NewSubgrid(sg, item.X0, item.Y0)
	for _, tc := range []struct {
		name string
		mod  func(*Params)
	}{
		{"Float64", nil},
		{"Float64NoVec", func(p *Params) { p.DisableVectorKernels = true }},
		{"Float32", func(p *Params) { p.Precision = Float32 }},
		{"Reference", func(p *Params) { p.DisableBatching = true }},
	} {
		k := tilingKernels(t, sg, nc, tc.mod)
		out := grid.NewSubgrid(sg, item.X0, item.Y0)
		k.GridSubgrid(item, uvw, vis, nil, nil, out)
		for p := range out.Data {
			for i, v := range out.Data[p] {
				if v != 0 {
					t.Fatalf("%s: gridded zero visibilities produced pixel %d = %v", tc.name, i, v)
				}
			}
		}
		pv := make([]xmath.Matrix2, nt*nc)
		pv[0] = xmath.Matrix2{1, 1, 1, 1} // must be overwritten
		k.DegridSubgrid(item, zeroIn, uvw, nil, nil, pv)
		for i, v := range pv {
			if v != (xmath.Matrix2{}) {
				t.Fatalf("%s: degridded zero subgrid produced visibility %d = %v", tc.name, i, v)
			}
		}
	}
}

// TestVectorKernelsMatchScalar pins the hand-vectorized float64 path
// against the generic one: both apply the same resync cadence, so they
// agree to within twice the recurrence bound (each side's drift) on
// hardware where the vector kernels run at all.
func TestVectorKernelsMatchScalar(t *testing.T) {
	if dispatchFor(xmath.ActiveSIMD()).gridVec64 == nil {
		t.Skip("vector kernels unavailable on this CPU")
	}
	const sg, nt, nc = 16, 10, 21 // nc with a 1-channel tail
	item, uvw, vis, maxAmp := tilingItem(73, nt, nc)
	in, pixAmp := randomSubgrid(sg, item, 79)
	vecK := tilingKernels(t, sg, nc, nil)
	scalK := tilingKernels(t, sg, nc, func(p *Params) { p.DisableVectorKernels = true })
	phaseBound := recurrencePhaseBound(vecK, item, uvw)

	a := grid.NewSubgrid(sg, item.X0, item.Y0)
	b := grid.NewSubgrid(sg, item.X0, item.Y0)
	vecK.GridSubgrid(item, uvw, vis, nil, nil, a)
	scalK.GridSubgrid(item, uvw, vis, nil, nil, b)
	tol := 2 * 2 * math.Sqrt2 * float64(nt*nc) * maxAmp * phaseBound
	if d := a.MaxAbsDiff(b); d > tol {
		t.Fatalf("vector gridder differs from scalar by %g (bound %g)", d, tol)
	}

	va := make([]xmath.Matrix2, nt*nc)
	vb := make([]xmath.Matrix2, nt*nc)
	vecK.DegridSubgrid(item, in, uvw, nil, nil, va)
	scalK.DegridSubgrid(item, in, uvw, nil, nil, vb)
	npix := sg * sg
	tol = 2 * 2 * math.Sqrt2 * float64(npix) * pixAmp * phaseBound
	for i := range va {
		for p := 0; p < 4; p++ {
			if d := cmplx.Abs(va[i][p] - vb[i][p]); d > tol {
				t.Fatalf("vector degridder differs from scalar by %g at vis %d (bound %g)", d, i, tol)
			}
		}
	}
}

// TestTiledEdgeChannelCounts covers the channel-count edge cases: no
// recurrence (nc < 3), exactly one quad, quad+tail, and a single
// channel, for both precisions, against the reference transcription.
func TestTiledEdgeChannelCounts(t *testing.T) {
	const sg, nt = 10, 5
	for _, nc := range []int{1, 2, 3, 4, 5} {
		item, uvw, vis, maxAmp := tilingItem(83+uint64(nc), nt, nc)
		ref := tilingKernels(t, sg, nc, func(p *Params) { p.DisableBatching = true })
		want := grid.NewSubgrid(sg, item.X0, item.Y0)
		ref.GridSubgrid(item, uvw, vis, nil, nil, want)
		phaseBound := recurrencePhaseBound(ref, item, uvw)
		for _, prec := range []Precision{Float64, Float32} {
			k := tilingKernels(t, sg, nc, func(p *Params) {
				p.Precision = prec
				p.PixelTileRows = 3 // does not divide sg: exercises the short last tile
			})
			got := grid.NewSubgrid(sg, item.X0, item.Y0)
			k.GridSubgrid(item, uvw, vis, nil, nil, got)
			tol := 2*math.Sqrt2*float64(nt*nc)*maxAmp*phaseBound + 1e-9
			if prec == Float32 {
				tol = float32GridBound(nt*nc, maxAmp, phaseBound) + 1e-9
			}
			if d := got.MaxAbsDiff(want); d > tol {
				t.Fatalf("nc=%d %v: differs from reference by %g (bound %g)", nc, prec, d, tol)
			}
		}
	}
}

// TestFloat32PrecisionValidate pins the Params surface: the zero value
// defaults to Float64, unknown values are rejected, and the two
// precisions stringify for logs.
func TestFloat32PrecisionValidate(t *testing.T) {
	if Float64 != 0 {
		t.Fatal("Float64 must be the zero value of Precision")
	}
	p := Params{
		GridSize: 64, SubgridSize: 8, ImageSize: 0.1,
		Frequencies: []float64{150e6}, Precision: Precision(7),
	}
	if err := p.Validate(); err == nil {
		t.Fatal("unknown precision must fail validation")
	}
	if Float64.String() == Float32.String() {
		t.Fatal("precisions must stringify distinctly")
	}
}
