package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
)

// TestFastFFTMatchesAblation pins the rebuilt FFT engine against the
// seed per-plane shift/rotate path at the pipeline level: gridding and
// degridding with DisableFastFFT must agree with the default path to
// reordered-summation rounding (1e-12 relative), so the radix-4
// butterflies, the fused centering and the batched plane transform
// change only the order of the arithmetic, never the math.
func TestFastFFTMatchesAblation(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	s.fillFromModel(nil)

	params := s.kernels.Params()
	params.DisableFastFFT = true
	legacy, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}

	g1 := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g1); err != nil {
		t.Fatal(err)
	}
	g2 := grid.NewGrid(s.plan.GridSize)
	if _, err := legacy.GridVisibilities(context.Background(), s.plan, s.vs, nil, g2); err != nil {
		t.Fatal(err)
	}
	scale := math.Sqrt(g1.Norm2() / float64(g1.N*g1.N))
	if scale == 0 {
		t.Fatal("empty grid; scenario produced no data")
	}
	if d := g1.MaxAbsDiff(g2) / scale; d > 1e-12 {
		t.Fatalf("fast-FFT gridding differs from ablation by %g relative (want <= 1e-12)", d)
	}

	img := s.model.Rasterize(s.plan.GridSize, s.plan.ImageSize)
	g := ImageToGrid(img, 0)
	v1 := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	v2 := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, v1, nil, g); err != nil {
		t.Fatal(err)
	}
	if _, err := legacy.DegridVisibilities(context.Background(), s.plan, v2, nil, g); err != nil {
		t.Fatal(err)
	}
	var vScale, maxD float64
	for b := range v1.Data {
		for i := range v1.Data[b] {
			for p := 0; p < 4; p++ {
				if a := cAbs(v1.Data[b][i][p]); a > vScale {
					vScale = a
				}
			}
			if d := v1.Data[b][i].MaxAbsDiff(v2.Data[b][i]); d > maxD {
				maxD = d
			}
		}
	}
	if vScale == 0 {
		t.Fatal("degridding produced no visibilities")
	}
	if d := maxD / vScale; d > 1e-12 {
		t.Fatalf("fast-FFT degridding differs from ablation by %g relative (want <= 1e-12)", d)
	}
}
