//go:build !amd64

package xmath

// sincosVecTier off amd64: every tier is the portable loop (the tier
// argument is already clamped to SIMDScalar by detection).
func sincosVecTier(_ SIMDTier, sin, cos, x []float64) {
	sincosVecScalar(sin, cos, x)
}
