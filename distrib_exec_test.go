package repro

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
)

// True multi-process conformance: the coordinator execs copies of
// this test binary as worker processes (the TestMain re-exec idiom),
// so partition assignment, the reduction wire protocol, checkpoint
// resume and process death are exercised across real process
// boundaries under plain `go test` — no prebuilt cmd/ binaries
// needed. cmd/idgworker is the production twin of distribExecWorker.

const distribExecEnv = "REPRO_DISTRIB_EXEC_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(distribExecEnv) == "1" {
		distribExecWorker()
		return
	}
	os.Exit(m.Run())
}

// distribExecWorker is the worker-process entry point: the spec
// arrives in environment variables, the observation is rebuilt from
// the shared golden config, and the partial grid is delivered to the
// coordinator. A REPRO_DISTRIB_KILL attempt dies at the first
// checkpoint rename (unrecovered panic, non-zero exit) exactly like a
// crashed production worker.
func distribExecWorker() {
	geti := func(key string) int {
		n, err := strconv.Atoi(os.Getenv(key))
		if err != nil {
			fmt.Fprintf(os.Stderr, "exec worker: bad %s=%q: %v\n", key, os.Getenv(key), err)
			os.Exit(1)
		}
		return n
	}
	axis, err := ParseDistribAxis(os.Getenv("REPRO_DISTRIB_AXIS"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "exec worker:", err)
		os.Exit(1)
	}
	cfg := distribGoldenConfig()
	cfg.CheckpointEvery = 2
	probe := distribGoldenConfig()
	o, err := probe.BuildPlan()
	if err != nil {
		fmt.Fprintln(os.Stderr, "exec worker:", err)
		os.Exit(1)
	}
	opt := DistribWorkerOptions{
		Config:           cfg,
		Model:            distribGoldenModel(o),
		Workers:          geti("REPRO_DISTRIB_WORKERS"),
		Index:            geti("REPRO_DISTRIB_INDEX"),
		Axis:             axis,
		Resume:           os.Getenv("REPRO_DISTRIB_RESUME") == "1",
		CoordinatorAddr:  os.Getenv("REPRO_DISTRIB_COORD"),
		CheckpointDir:    os.Getenv("REPRO_DISTRIB_CKPT"),
		ChunkItems:       8,
		ReferenceKernels: true,
	}
	if os.Getenv("REPRO_DISTRIB_KILL") == "1" {
		opt.CrashHook = faultinject.CrashHook(CheckpointBeforeRename, -1)
	}
	if err := RunDistribWorker(context.Background(), opt); err != nil {
		fmt.Fprintln(os.Stderr, "exec worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestDistribMultiProcess runs a 4-worker distributed pass with
// exec'd worker processes, kills worker 2's first attempt mid-stream,
// and requires the final grid to hash bit-identically to the clean
// in-process run — the full cross-process determinism claim.
func TestDistribMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("execs worker processes in -short mode")
	}
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	want := distribCleanHash(t, 4, DistribRows)
	root := t.TempDir()
	var killed atomic.Bool
	launcher := DistribLauncherFunc(func(ctx context.Context, spec DistribWorkerSpec) error {
		cmd := exec.CommandContext(ctx, self)
		cmd.Env = append(os.Environ(),
			distribExecEnv+"=1",
			"REPRO_DISTRIB_COORD="+spec.CoordinatorAddr,
			"REPRO_DISTRIB_INDEX="+strconv.Itoa(spec.Index),
			"REPRO_DISTRIB_WORKERS="+strconv.Itoa(spec.Workers),
			"REPRO_DISTRIB_AXIS="+spec.Axis.String(),
			"REPRO_DISTRIB_CKPT="+filepath.Join(root, fmt.Sprintf("worker%02d", spec.Index)),
		)
		if spec.Resume {
			cmd.Env = append(cmd.Env, "REPRO_DISTRIB_RESUME=1")
		}
		// Worker 2 owns a busy mid-grid row band (see
		// TestDistribKillAndResumeChaos); kill its first attempt only.
		if spec.Index == 2 && !spec.Resume && killed.CompareAndSwap(false, true) {
			cmd.Env = append(cmd.Env, "REPRO_DISTRIB_KILL=1")
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			return fmt.Errorf("worker %d process: %w (output: %s)", spec.Index, err, firstLine(out))
		}
		return nil
	})
	opt := distribGoldenOptions(t, 4, DistribRows)
	opt.MaxRestarts = 2
	opt.Launcher = launcher
	g, sum, err := RunDistributed(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Error("the kill was never injected")
	}
	if sum.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (notes: %v)", sum.Restarts, sum.Notes)
	}
	if got := FingerprintGrid(g).SHA256; got != want {
		t.Errorf("multi-process hash %s, want in-process clean hash %s", got, want)
	}
}

func firstLine(b []byte) []byte {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i]
	}
	return b
}
