// AVX-512VL float32 tile kernel for the SIMDAVX512 dispatch tier.
//
// The loop body stays at YMM width (the AVX2 kernels' register-light
// 256-bit loops avoid the all-core downclock wider vectors can
// trigger), but EVEX encoding unlocks registers Y16-Y31, enough to
// keep TWO pixels' accumulator files and phasor lanes live at once.
// The two pixels share every visibility load — the visibility planes
// do not depend on the pixel — so the doubled FMA stream costs no
// extra memory traffic and fills both FMA ports where the
// single-pixel kernel is bound on the phasor-rotation latency chain.
// Each pixel's operation sequence is exactly that of rotAccOctsBlk,
// so results are bitwise identical to two single-pixel calls.
//
// Only the SIMDAVX512 dispatch tier reaches this code: the tier
// detection (internal/xmath) requires AVX-512 F+DQ+BW+VL and the
// OS-saved opmask/upper-ZMM/hi16-ZMM state EVEX register access
// needs.

#include "textflag.h"

// func rotAccOctsBlk2(acc0, acc1, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph0, ph1 *float32, nt, visAdj, phAdj int)
//
// Timestep-blocked rotate-and-accumulate for two pixels: pixel A uses
// the rotAccOctsBlk register file (phasors Y0-Y3, accumulators
// Y4-Y11), pixel B mirrors it in EVEX registers (phasors Y16-Y19,
// accumulators Y20-Y27). ph0/ph1 walk the two pixels' [18]float32
// phasor blocks, phAdj bytes per time step.
TEXT ·rotAccOctsBlk2(SB), NOSPLIT, $0-128
	MOVQ r0+16(FP), SI
	MOVQ i0+24(FP), DI
	MOVQ r1+32(FP), R8
	MOVQ i1+40(FP), R9
	MOVQ r2+48(FP), R10
	MOVQ i2+56(FP), R11
	MOVQ r3+64(FP), R12
	MOVQ i3+72(FP), R13
	MOVQ no+80(FP), R15
	MOVQ nt+104(FP), CX
	MOVQ visAdj+112(FP), R14

	MOVQ    acc0+0(FP), AX
	VMOVUPS (AX), Y4
	VMOVUPS 32(AX), Y5
	VMOVUPS 64(AX), Y6
	VMOVUPS 96(AX), Y7
	VMOVUPS 128(AX), Y8
	VMOVUPS 160(AX), Y9
	VMOVUPS 192(AX), Y10
	VMOVUPS 224(AX), Y11
	MOVQ    acc1+8(FP), AX
	VMOVUPS (AX), Y20
	VMOVUPS 32(AX), Y21
	VMOVUPS 64(AX), Y22
	VMOVUPS 96(AX), Y23
	VMOVUPS 128(AX), Y24
	VMOVUPS 160(AX), Y25
	VMOVUPS 192(AX), Y26
	VMOVUPS 224(AX), Y27

	MOVQ ph0+88(FP), BX
	MOVQ ph1+96(FP), AX

blk2tloop:
	// Phasor lanes and rotator of this time step, both pixels.
	VMOVUPS      (BX), Y0
	VMOVUPS      32(BX), Y1
	VBROADCASTSS 64(BX), Y2
	VBROADCASTSS 68(BX), Y3
	VMOVUPS      (AX), Y16
	VMOVUPS      32(AX), Y17
	VBROADCASTSS 64(AX), Y18
	VBROADCASTSS 68(AX), Y19
	MOVQ         R15, DX

blk2octloop:
	VMOVUPS      (SI), Y12      // vr, correlation 0 (shared by A and B)
	VMOVUPS      (DI), Y13      // vi
	VFMADD231PS  Y1, Y12, Y4    // A: a0 += vr*pc
	VFNMADD231PS Y0, Y13, Y4    // A: a0 -= vi*ps
	VFMADD231PS  Y0, Y12, Y5    // A: a1 += vr*ps
	VFMADD231PS  Y1, Y13, Y5    // A: a1 += vi*pc
	VFMADD231PS  Y17, Y12, Y20  // B: same, pixel B phasors
	VFNMADD231PS Y16, Y13, Y20
	VFMADD231PS  Y16, Y12, Y21
	VFMADD231PS  Y17, Y13, Y21
	VMOVUPS      (R8), Y12
	VMOVUPS      (R9), Y13
	VFMADD231PS  Y1, Y12, Y6
	VFNMADD231PS Y0, Y13, Y6
	VFMADD231PS  Y0, Y12, Y7
	VFMADD231PS  Y1, Y13, Y7
	VFMADD231PS  Y17, Y12, Y22
	VFNMADD231PS Y16, Y13, Y22
	VFMADD231PS  Y16, Y12, Y23
	VFMADD231PS  Y17, Y13, Y23
	VMOVUPS      (R10), Y12
	VMOVUPS      (R11), Y13
	VFMADD231PS  Y1, Y12, Y8
	VFNMADD231PS Y0, Y13, Y8
	VFMADD231PS  Y0, Y12, Y9
	VFMADD231PS  Y1, Y13, Y9
	VFMADD231PS  Y17, Y12, Y24
	VFNMADD231PS Y16, Y13, Y24
	VFMADD231PS  Y16, Y12, Y25
	VFMADD231PS  Y17, Y13, Y25
	VMOVUPS      (R12), Y12
	VMOVUPS      (R13), Y13
	VFMADD231PS  Y1, Y12, Y10
	VFNMADD231PS Y0, Y13, Y10
	VFMADD231PS  Y0, Y12, Y11
	VFMADD231PS  Y1, Y13, Y11
	VFMADD231PS  Y17, Y12, Y26
	VFNMADD231PS Y16, Y13, Y26
	VFMADD231PS  Y16, Y12, Y27
	VFMADD231PS  Y17, Y13, Y27

	// Advance both pixels' phasor lanes by eight channels.
	VMULPS       Y3, Y0, Y14
	VMULPS       Y3, Y1, Y15
	VFMADD231PS  Y2, Y1, Y14
	VFNMADD231PS Y2, Y0, Y15
	VMOVAPS      Y14, Y0
	VMOVAPS      Y15, Y1
	VMULPS       Y19, Y16, Y28
	VMULPS       Y19, Y17, Y29
	VFMADD231PS  Y18, Y17, Y28
	VFNMADD231PS Y18, Y16, Y29
	VMOVAPS      Y28, Y16
	VMOVAPS      Y29, Y17

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ DX
	JNZ  blk2octloop

	ADDQ R14, SI
	ADDQ R14, DI
	ADDQ R14, R8
	ADDQ R14, R9
	ADDQ R14, R10
	ADDQ R14, R11
	ADDQ R14, R12
	ADDQ R14, R13
	MOVQ phAdj+120(FP), DX
	ADDQ DX, BX
	ADDQ DX, AX
	DECQ CX
	JNZ  blk2tloop

	MOVQ    acc0+0(FP), AX
	VMOVUPS Y4, (AX)
	VMOVUPS Y5, 32(AX)
	VMOVUPS Y6, 64(AX)
	VMOVUPS Y7, 96(AX)
	VMOVUPS Y8, 128(AX)
	VMOVUPS Y9, 160(AX)
	VMOVUPS Y10, 192(AX)
	VMOVUPS Y11, 224(AX)
	MOVQ    acc1+8(FP), AX
	VMOVUPS Y20, (AX)
	VMOVUPS Y21, 32(AX)
	VMOVUPS Y22, 64(AX)
	VMOVUPS Y23, 96(AX)
	VMOVUPS Y24, 128(AX)
	VMOVUPS Y25, 160(AX)
	VMOVUPS Y26, 192(AX)
	VMOVUPS Y27, 224(AX)
	VZEROUPPER
	RET
