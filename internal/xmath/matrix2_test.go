package xmath

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randMatrix2(r *rand.Rand) Matrix2 {
	var m Matrix2
	for i := range m {
		m[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

// Generate implements quick.Generator so Matrix2 can be used directly
// in property-based tests.
func (Matrix2) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randMatrix2(r))
}

func TestIdentityIsMulNeutral(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	id := Identity2()
	for i := 0; i < 100; i++ {
		m := randMatrix2(r)
		if d := m.Mul(id).MaxAbsDiff(m); d > 1e-15 {
			t.Fatalf("m*I != m, diff %g", d)
		}
		if d := id.Mul(m).MaxAbsDiff(m); d > 1e-15 {
			t.Fatalf("I*m != m, diff %g", d)
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(a, b, c Matrix2) bool {
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		return l.MaxAbsDiff(r) < 1e-10*(1+l.FrobeniusNorm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubRoundtrip(t *testing.T) {
	f := func(a, b Matrix2) bool {
		return a.Add(b).Sub(b).MaxAbsDiff(a) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHermitianInvolution(t *testing.T) {
	f := func(a Matrix2) bool {
		return a.Hermitian().Hermitian().MaxAbsDiff(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHermitianReversesProducts(t *testing.T) {
	f := func(a, b Matrix2) bool {
		l := a.Mul(b).Hermitian()
		r := b.Hermitian().Mul(a.Hermitian())
		return l.MaxAbsDiff(r) < 1e-10*(1+l.FrobeniusNorm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		m := randMatrix2(r)
		inv, ok := m.Inv()
		if !ok {
			continue // singular sample, fine
		}
		if d := m.Mul(inv).MaxAbsDiff(Identity2()); d > 1e-9 {
			t.Fatalf("m*m^-1 != I, diff %g (m=%v)", d, m)
		}
	}
}

func TestSingularInverse(t *testing.T) {
	m := Matrix2{1, 2, 2, 4} // rank 1
	if _, ok := m.Inv(); ok {
		t.Fatal("expected singular matrix to report non-invertible")
	}
}

func TestDetOfProduct(t *testing.T) {
	f := func(a, b Matrix2) bool {
		d1 := a.Mul(b).Det()
		d2 := a.Det() * b.Det()
		return cabs(d1-d2) < 1e-9*(1+cabs(d1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSandwichHAgainstExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		p, b, q := randMatrix2(r), randMatrix2(r), randMatrix2(r)
		want := p.Mul(b).Mul(q.Hermitian())
		got := b.SandwichH(p, q)
		if d := got.MaxAbsDiff(want); d > 1e-12 {
			t.Fatalf("SandwichH mismatch %g", d)
		}
	}
}

func TestTraceAndTranspose(t *testing.T) {
	m := Matrix2{1 + 2i, 3, 4, 5 - 1i}
	if m.Trace() != 6+1i {
		t.Fatalf("trace = %v", m.Trace())
	}
	mt := m.Transpose()
	if mt[1] != 4 || mt[2] != 3 {
		t.Fatalf("transpose = %v", mt)
	}
}

func TestScaleDistributes(t *testing.T) {
	f := func(a, b Matrix2) bool {
		s := complex(1.5, -0.25)
		l := a.Add(b).Scale(s)
		r := a.Scale(s).Add(b.Scale(s))
		return l.MaxAbsDiff(r) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityInverseAndUnitDet(t *testing.T) {
	id := Identity2()
	if id.Det() != 1 {
		t.Fatalf("det(I) = %v", id.Det())
	}
	inv, ok := id.Inv()
	if !ok || inv.MaxAbsDiff(id) != 0 {
		t.Fatal("I^-1 != I")
	}
}

func TestFrobeniusNormZero(t *testing.T) {
	if Zero2().FrobeniusNorm() != 0 {
		t.Fatal("||0|| != 0")
	}
	if math.Abs(Identity2().FrobeniusNorm()-math.Sqrt2) > 1e-15 {
		t.Fatal("||I|| != sqrt(2)")
	}
}

func TestMulHMatchesMulHermitian(t *testing.T) {
	f := func(a, b Matrix2) bool {
		return a.MulH(b).MaxAbsDiff(a.Mul(b.Hermitian())) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
