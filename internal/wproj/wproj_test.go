package wproj

import (
	"math"
	"testing"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/sky"
	"repro/internal/taper"
	"repro/internal/xmath"
)

const (
	testGrid  = 256
	testImage = 0.25
)

func newTestGridder(t testing.TB, support int, wstep, maxW float64) *Gridder {
	t.Helper()
	g, err := NewGridder(Config{
		GridSize:     testGrid,
		ImageSize:    testImage,
		Support:      support,
		Oversampling: 8,
		WStepLambda:  wstep,
		MaxWLambda:   maxW,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func taperAt(l, m float64) float64 {
	half := testImage / 2
	return taper.Spheroidal(l/half) * taper.Spheroidal(m/half)
}

// modelGrid builds the uv grid of a rasterized model image.
func modelGrid(model sky.Model) *grid.Grid {
	img := model.Rasterize(testGrid, testImage)
	g := img.Clone()
	p := fft.NewPlan2D(testGrid, testGrid)
	for c := range g.Data {
		p.ForwardCentered(g.Data[c])
	}
	return g
}

func newRand(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<52) - 1
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{GridSize: 1, ImageSize: 0.1, Support: 8, Oversampling: 8},
		{GridSize: 64, ImageSize: 0, Support: 8, Oversampling: 8},
		{GridSize: 64, ImageSize: 0.1, Support: 7, Oversampling: 8},
		{GridSize: 64, ImageSize: 0.1, Support: 2, Oversampling: 8},
		{GridSize: 64, ImageSize: 0.1, Support: 8, Oversampling: 0},
		{GridSize: 64, ImageSize: 0.1, Support: 8, Oversampling: 8, WStepLambda: -1},
		{GridSize: 64, ImageSize: 0.1, Support: 8, Oversampling: 8, WStepLambda: 0.001, MaxWLambda: 1e6},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
}

func TestKernelBasicProperties(t *testing.T) {
	g := newTestGridder(t, 8, 50, 200)
	if g.NrWPlanes() != 6 { // planes 0..5 (maxW/step + 2)
		t.Fatalf("NrWPlanes = %d", g.NrWPlanes())
	}
	if g.KernelBytes() <= 0 {
		t.Fatal("KernelBytes must be positive")
	}
	if g.Support() != 8 {
		t.Fatal("Support mismatch")
	}
	// The w=0 kernel peak is at the center and (taper transform) is
	// concentrated: center tap dominates.
	k := g.kernels[0]
	center := k.data[k.center*k.fineN+k.center]
	if math.Abs(imag(center)) > 1e-6*math.Abs(real(center)) {
		t.Fatalf("w=0 kernel center not real: %v", center)
	}
	for dy := -2; dy <= 2; dy++ {
		for dx := -2; dx <= 2; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			v := k.tap(dx, dy, 0, 0, 8)
			if cAbs(v) > cAbs(center) {
				t.Fatalf("tap (%d,%d) exceeds center", dx, dy)
			}
		}
	}
}

func TestKernelSymmetry(t *testing.T) {
	g := newTestGridder(t, 8, 0, 0)
	k := g.kernels[0]
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			a := k.tap(dx, dy, 0, 0, 8)
			b := k.tap(-dx, -dy, 0, 0, 8)
			if cAbs(a-b) > 1e-9*cAbs(a) {
				t.Fatalf("kernel not symmetric at (%d,%d)", dx, dy)
			}
		}
	}
}

func TestDegridMatchesMeasurementEquation(t *testing.T) {
	g := newTestGridder(t, 12, 0, 0)
	pix := testImage / testGrid
	model := sky.Model{{L: 18 * pix, M: -10 * pix, I: 1.5}}
	mg := modelGrid(model)

	rnd := newRand(7)
	tf := taperAt(model[0].L, model[0].M)
	var maxErr float64
	for i := 0; i < 500; i++ {
		u := 100 * rnd()
		v := 100 * rnd()
		got, ok := g.Degrid(u, v, 0, mg)
		if !ok {
			t.Fatal("visibility unexpectedly off grid")
		}
		want := (sky.Model{{L: model[0].L, M: model[0].M, I: model[0].I * tf}}).Predict(u, v, 0)
		if d := got.MaxAbsDiff(want) / (model[0].I * tf); d > maxErr {
			maxErr = d
		}
	}
	// A few percent is the expected accuracy of convolutional
	// degridding with 8x oversampling (kernel position quantization);
	// compare IDG's ~1e-5 in the core package tests — the paper's
	// Section IV notes IDG "exceeds the accuracy of traditional
	// gridding", which this pair of tests demonstrates.
	t.Logf("wproj degrid max rel err: %.3e", maxErr)
	if maxErr > 6e-2 {
		t.Fatalf("degrid error %.3e too large", maxErr)
	}
}

// gridAndImage grids nvis visibilities of the model and returns the
// normalized, taper-corrected dirty image.
func gridAndImage(t *testing.T, g *Gridder, model sky.Model, wAmp float64, nvis int) *grid.Grid {
	t.Helper()
	dst := grid.NewGrid(testGrid)
	rnd := newRand(13)
	count := 0
	for i := 0; i < nvis; i++ {
		u := 90 * rnd()
		v := 90 * rnd()
		w := wAmp * (rnd() + 1) / 2
		vis := model.Predict(u, v, w)
		if g.Grid(u, v, w, vis, dst) {
			count++
		}
	}
	if count < nvis*9/10 {
		t.Fatalf("too many visibilities off grid: %d of %d", count, nvis)
	}
	img := dst.Clone()
	p := fft.NewPlan2D(testGrid, testGrid)
	for c := range img.Data {
		p.InverseCentered(img.Data[c])
	}
	// Normalize: N^2/nvis, then taper correction.
	s := complex(float64(testGrid*testGrid)/float64(count), 0)
	w2d := taper.Window2D(testGrid, taper.Spheroidal)
	corr := taper.CorrectionMap(w2d, 1e-4)
	for c := range img.Data {
		for i := range img.Data[c] {
			img.Data[c][i] *= s * complex(corr[i], 0)
		}
	}
	return img
}

func peakI(img *grid.Grid) (int, int, float64) {
	si := sky.StokesI(img)
	best, bx, by := math.Inf(-1), 0, 0
	for i, v := range si {
		if v > best {
			best, bx, by = v, i%img.N, i/img.N
		}
	}
	return bx, by, best
}

func TestGriddingRecoversSource(t *testing.T) {
	g := newTestGridder(t, 12, 0, 0)
	pix := testImage / testGrid
	model := sky.Model{{L: 18 * pix, M: -10 * pix, I: 1}}
	img := gridAndImage(t, g, model, 0, 2000)
	x, y, peak := peakI(img)
	wantX, wantY := sky.LMToPixel(model[0].L, model[0].M, testGrid, testImage)
	if x != wantX || y != wantY {
		t.Fatalf("peak at (%d,%d), want (%d,%d)", x, y, wantX, wantY)
	}
	if math.Abs(peak-1) > 0.05 {
		t.Fatalf("peak %.4f, want ~1", peak)
	}
}

func TestWKernelsCorrectWTerm(t *testing.T) {
	pix := testImage / testGrid
	// An off-center source with substantial w: without w-kernels the
	// source smears; with them it is recovered.
	model := sky.Model{{L: 40 * pix, M: 28 * pix, I: 1}}
	const wAmp = 200

	corrected := gridAndImage(t, newTestGridder(t, 16, 25, wAmp), model, wAmp, 2000)
	_, _, peakC := peakI(corrected)

	uncorrected := gridAndImage(t, newTestGridder(t, 16, 0, 0), model, wAmp, 2000)
	_, _, peakU := peakI(uncorrected)

	t.Logf("w-projection: corrected peak %.4f, uncorrected %.4f", peakC, peakU)
	if math.Abs(peakC-1) > 0.08 {
		t.Fatalf("corrected peak %.4f, want ~1", peakC)
	}
	if peakU > 0.95*peakC {
		t.Fatalf("w-term did not degrade the uncorrected image (%.4f vs %.4f); test setup too weak", peakU, peakC)
	}
}

func TestGridDegridAdjoint(t *testing.T) {
	g := newTestGridder(t, 8, 50, 150)
	rnd := newRand(21)
	// Random vis at random (u, v, w).
	type visRec struct {
		u, v, w float64
		val     xmath.Matrix2
	}
	var recs []visRec
	for i := 0; i < 50; i++ {
		var m xmath.Matrix2
		for p := range m {
			m[p] = complex(rnd(), rnd())
		}
		recs = append(recs, visRec{u: 80 * rnd(), v: 80 * rnd(), w: 100 * rnd(), val: m})
	}
	gv := grid.NewGrid(testGrid)
	for _, r := range recs {
		g.Grid(r.u, r.v, r.w, r.val, gv)
	}
	// Random grid.
	h := grid.NewGrid(testGrid)
	for c := range h.Data {
		for i := range h.Data[c] {
			h.Data[c][i] = complex(rnd(), rnd())
		}
	}
	var lhs complex128
	for c := range gv.Data {
		for i := range gv.Data[c] {
			lhs += gv.Data[c][i] * cConj(h.Data[c][i])
		}
	}
	var rhs complex128
	for _, r := range recs {
		d, _ := g.Degrid(r.u, r.v, r.w, h)
		for p := 0; p < 4; p++ {
			rhs += r.val[p] * cConj(d[p])
		}
	}
	if d := cAbs(lhs-rhs) / cAbs(lhs); d > 1e-9 {
		t.Fatalf("adjoint violated: %v vs %v (rel %g)", lhs, rhs, d)
	}
}

func TestOffGridVisibilitiesRejected(t *testing.T) {
	g := newTestGridder(t, 8, 0, 0)
	dst := grid.NewGrid(testGrid)
	// u far outside the field.
	if g.Grid(1e6, 0, 0, xmath.Identity2(), dst) {
		t.Fatal("expected off-grid rejection")
	}
	if _, ok := g.Degrid(1e6, 0, 0, dst); ok {
		t.Fatal("expected off-grid rejection")
	}
}

func cAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func cConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// TestConfigurableSincos: a caller-supplied evaluator must be the one
// the kernel tabulation calls (a counting wrapper around
// SincosAccurate must be bitwise equal to configuring SincosAccurate
// directly), and both the default lane-parallel evaluator and the fast
// scalar polynomial must reproduce the accurate kernels within their
// documented bounds.
func TestConfigurableSincos(t *testing.T) {
	calls := 0
	counting := func(x float64) (float64, float64) {
		calls++
		return xmath.SincosAccurate(x)
	}
	mk := func(fn xmath.SincosFunc) *Gridder {
		g, err := NewGridder(Config{
			GridSize: testGrid, ImageSize: testImage,
			Support: 8, Oversampling: 4,
			WStepLambda: 50, MaxWLambda: 150,
			Sincos: fn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	def := mk(nil)
	acc := mk(xmath.SincosAccurate)
	cnt := mk(counting)
	fast := mk(xmath.SincosFast)
	dst := grid.NewGrid(testGrid)
	vis := xmath.Identity2()
	if !cnt.Grid(40, -25, 120, vis, dst) {
		t.Fatal("gridding failed")
	}
	if calls == 0 {
		t.Fatal("custom sincos evaluator never called")
	}
	// Same visibility through the four gridders: counting == accurate
	// exactly; the vectorized default and the fast scalar polynomial
	// within a few float32 ulps per kernel tap.
	dDef, dAcc := grid.NewGrid(testGrid), grid.NewGrid(testGrid)
	dCnt, dFast := grid.NewGrid(testGrid), grid.NewGrid(testGrid)
	def.Grid(40, -25, 120, vis, dDef)
	acc.Grid(40, -25, 120, vis, dAcc)
	cnt.Grid(40, -25, 120, vis, dCnt)
	fast.Grid(40, -25, 120, vis, dFast)
	maxDef, maxFast := 0.0, 0.0
	for c := range dAcc.Data {
		for i := range dAcc.Data[c] {
			if dCnt.Data[c][i] != dAcc.Data[c][i] {
				t.Fatal("counting wrapper changed the result")
			}
			if d := cAbs(dDef.Data[c][i] - dAcc.Data[c][i]); d > maxDef {
				maxDef = d
			}
			if d := cAbs(dFast.Data[c][i] - dAcc.Data[c][i]); d > maxFast {
				maxFast = d
			}
		}
	}
	if maxDef > 1e-6 {
		t.Fatalf("default SincosVec kernels differ from accurate by %g", maxDef)
	}
	if maxFast > 1e-6 {
		t.Fatalf("SincosFast kernels differ from accurate by %g", maxFast)
	}
}
