// Quickstart: simulate a small observation, grid it with IDG, image
// it, and verify the source comes back — the minimal end-to-end use
// of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A laptop-scale synthetic observation: 12 SKA1-low-like stations,
	// 64 one-second time steps, 4 channels.
	cfg := repro.DefaultObservation()
	cfg.NrStations = 12
	cfg.NrTimesteps = 64
	cfg.NrChannels = 4
	cfg.GridSize = 512
	cfg.GridMargin = 32

	obs, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observation: %d baselines x %d steps x %d channels = %d visibilities\n",
		len(obs.Simulator.Baselines()), cfg.NrTimesteps, cfg.NrChannels,
		obs.Vis.NrVisibilities())
	fmt.Printf("execution plan: %d subgrids (avg %.1f timesteps each)\n",
		len(obs.Plan.Items), obs.Plan.Stats().AvgTimestepsPerSubgrid)

	// Put one 1.5 Jy source in the sky and simulate its visibilities
	// exactly (the direct measurement equation).
	pixel := obs.ImageSize / float64(cfg.GridSize)
	truth := repro.SkyModel{{L: 30 * pixel, M: -20 * pixel, I: 1.5}}
	if err := obs.FillFromModel(truth); err != nil {
		log.Fatal(err)
	}

	// Grid with IDG and convert to a sky image.
	img, err := obs.DirtyImage(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// The dirty image peaks at the source with its flux.
	si := repro.StokesI(img)
	best, bi := -1.0, 0
	for i, v := range si {
		if v > best {
			best, bi = v, i
		}
	}
	x, y := repro.LMToPixel(truth[0].L, truth[0].M, cfg.GridSize, obs.ImageSize)
	fmt.Printf("dirty image peak: %.3f Jy at pixel (%d, %d)\n", best, bi%cfg.GridSize, bi/cfg.GridSize)
	fmt.Printf("expected:         %.3f Jy at pixel (%d, %d)\n", truth[0].I, x, y)
	if bi != y*cfg.GridSize+x {
		log.Fatal("quickstart failed: peak at the wrong position")
	}
	fmt.Println("ok: IDG recovered the source")
}
