package powersensor

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/perfmodel"
)

func newSensor(t *testing.T) *Sensor {
	t.Helper()
	s, err := New(1e-3, 30)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Fatal("zero resolution accepted")
	}
	if _, err := New(1e-3, -1); err == nil {
		t.Fatal("negative idle power accepted")
	}
}

func TestRunIntegratesEnergy(t *testing.T) {
	s := newSensor(t)
	if err := s.Run(2.0, 100); err != nil {
		t.Fatal(err)
	}
	if e := s.TotalJoules(); math.Abs(e-200) > 0.2 {
		t.Fatalf("energy %.2f J, want 200", e)
	}
	if math.Abs(s.Now()-2.0) > 1e-9 {
		t.Fatalf("clock at %g, want 2.0", s.Now())
	}
	if w := s.MeanWatts(); math.Abs(w-100) > 1e-9 {
		t.Fatalf("mean power %.2f W", w)
	}
}

func TestIdleUsesIdlePower(t *testing.T) {
	s := newSensor(t)
	if err := s.Idle(1.0); err != nil {
		t.Fatal(err)
	}
	if e := s.TotalJoules(); math.Abs(e-30) > 0.1 {
		t.Fatalf("idle energy %.2f J, want 30", e)
	}
}

func TestMarkersAttributeEnergy(t *testing.T) {
	s := newSensor(t)
	must(t, s.Idle(0.5))
	must(t, s.Mark("gridder"))
	must(t, s.Run(1.0, 200))
	must(t, s.Unmark("gridder"))
	must(t, s.Idle(0.25))
	must(t, s.Mark("degridder"))
	must(t, s.Run(2.0, 150))
	must(t, s.Unmark("degridder"))

	g, err := s.MarkerJoules("gridder")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-200) > 0.5 {
		t.Fatalf("gridder energy %.1f J, want 200", g)
	}
	d, err := s.MarkerJoules("degridder")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-300) > 0.5 {
		t.Fatalf("degridder energy %.1f J, want 300", d)
	}
	// Markers ordered by start.
	ms := s.Markers()
	if len(ms) != 2 || ms[0].Label != "gridder" || ms[1].Label != "degridder" {
		t.Fatalf("markers %v", ms)
	}
}

func TestMarkerErrors(t *testing.T) {
	s := newSensor(t)
	if err := s.Unmark("nope"); err == nil {
		t.Fatal("unmark of unopened marker accepted")
	}
	must(t, s.Mark("a"))
	if err := s.Mark("a"); err == nil {
		t.Fatal("double mark accepted")
	}
	if _, err := s.MarkerJoules("a"); err == nil {
		t.Fatal("open marker should not integrate")
	}
}

func TestNegativeRunRejected(t *testing.T) {
	s := newSensor(t)
	if err := s.Run(-1, 10); err == nil {
		t.Fatal("negative duration accepted")
	}
	if err := s.Run(1, -10); err == nil {
		t.Fatal("negative power accepted")
	}
}

// TestCaptureOfModelledCycle replays the modelled PASCAL imaging
// cycle through the sensor and checks that per-kernel marker energy
// matches the energy model within sampling error.
func TestCaptureOfModelledCycle(t *testing.T) {
	p := arch.Pascal()
	d := perfmodel.PaperDataset()
	b := perfmodel.ImagingCycle(p, d)

	s, err := New(1e-3, 0.15*p.KernelPowerWatts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(label string, dur float64) {
		must(t, s.Mark(label))
		must(t, s.Run(dur, p.KernelPowerWatts))
		must(t, s.Unmark(label))
	}
	run("gridder", b.Gridder.Seconds)
	run("fft", b.SubgridFFT.Seconds)
	run("adder", b.Adder.Seconds)
	must(t, s.Idle(0.1))
	run("splitter", b.Splitter.Seconds)
	run("degridder", b.Degridder.Seconds)

	g, err := s.MarkerJoules("gridder")
	if err != nil {
		t.Fatal(err)
	}
	want := p.KernelPowerWatts * b.Gridder.Seconds
	if math.Abs(g-want) > 0.01*want {
		t.Fatalf("gridder marker %.1f J, model %.1f J", g, want)
	}
	// Per-kernel GFlops/W from the trace matches Fig. 15 (~32).
	gc := perfmodel.GridderCounts(d)
	gfw := gc.Flops / g / 1e9
	if math.Abs(gfw-32) > 3 {
		t.Fatalf("trace-derived efficiency %.1f GFlops/W, want ~32", gfw)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
