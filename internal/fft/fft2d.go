package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// Plan2D performs 2-D transforms on row-major data of size rows x cols.
// Like Plan, a Plan2D is safe for concurrent use.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan
	colPlan    *Plan
}

// NewPlan2D creates a 2-D plan. Square plans share nothing between the
// two dimensions beyond the underlying 1-D plans.
func NewPlan2D(rows, cols int) *Plan2D {
	p := &Plan2D{rows: rows, cols: cols}
	p.colPlan = NewPlan(cols) // transforms along a row (length = cols)
	if rows == cols {
		p.rowPlan = p.colPlan
	} else {
		p.rowPlan = NewPlan(rows)
	}
	return p
}

// Rows returns the number of rows of the plan.
func (p *Plan2D) Rows() int { return p.rows }

// Cols returns the number of columns of the plan.
func (p *Plan2D) Cols() int { return p.cols }

func (p *Plan2D) checkLen(x []complex128) {
	if len(x) != p.rows*p.cols {
		panic(fmt.Sprintf("fft: input length %d does not match %dx%d plan",
			len(x), p.rows, p.cols))
	}
}

// Forward transforms x (row-major, rows x cols) in place.
func (p *Plan2D) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse applies the inverse 2-D transform in place, scaling by
// 1/(rows*cols) overall.
func (p *Plan2D) Inverse(x []complex128) {
	p.transform(x, true)
}

func (p *Plan2D) transform(x []complex128, inverse bool) {
	p.checkLen(x)
	// Transform every row.
	for r := 0; r < p.rows; r++ {
		row := x[r*p.cols : (r+1)*p.cols]
		if inverse {
			p.colPlan.Inverse(row)
		} else {
			p.colPlan.Forward(row)
		}
	}
	// Transform every column via a scratch buffer.
	col := make([]complex128, p.rows)
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			col[r] = x[r*p.cols+c]
		}
		if inverse {
			p.rowPlan.Inverse(col)
		} else {
			p.rowPlan.Forward(col)
		}
		for r := 0; r < p.rows; r++ {
			x[r*p.cols+c] = col[r]
		}
	}
}

// ForwardParallel transforms x in place using up to workers goroutines
// (<=0 means GOMAXPROCS). Large grid transforms (2048 x 2048 in the
// paper's dataset) benefit from this; subgrid transforms are too small
// and are instead batched across subgrids, see TransformBatch.
func (p *Plan2D) ForwardParallel(x []complex128, workers int) {
	p.transformParallel(x, false, workers)
}

// InverseParallel is the parallel variant of Inverse.
func (p *Plan2D) InverseParallel(x []complex128, workers int) {
	p.transformParallel(x, true, workers)
}

func (p *Plan2D) transformParallel(x []complex128, inverse bool, workers int) {
	p.checkLen(x)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.rows {
		workers = p.rows
	}
	if workers <= 1 {
		p.transform(x, inverse)
		return
	}
	var wg sync.WaitGroup
	// Rows.
	chunk := (p.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p.rows {
			hi = p.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				row := x[r*p.cols : (r+1)*p.cols]
				if inverse {
					p.colPlan.Inverse(row)
				} else {
					p.colPlan.Forward(row)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	// Columns.
	chunk = (p.cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p.cols {
			hi = p.cols
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			col := make([]complex128, p.rows)
			for c := lo; c < hi; c++ {
				for r := 0; r < p.rows; r++ {
					col[r] = x[r*p.cols+c]
				}
				if inverse {
					p.rowPlan.Inverse(col)
				} else {
					p.rowPlan.Forward(col)
				}
				for r := 0; r < p.rows; r++ {
					x[r*p.cols+c] = col[r]
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// TransformBatch applies the plan to many independent row-major arrays
// in parallel (the "embarrassingly parallel" subgrid FFT step of the
// paper, Section V-B(c)). Each element of batch must have length
// rows*cols. inverse selects the transform direction.
func (p *Plan2D) TransformBatch(batch [][]complex128, inverse bool, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for _, x := range batch {
			p.transform(x, inverse)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan []complex128, len(batch))
	for _, x := range batch {
		next <- x
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for x := range next {
				p.transform(x, inverse)
			}
		}()
	}
	wg.Wait()
}
