package core

import (
	"context"
	"fmt"

	"repro/internal/aterm"
	"repro/internal/clean"
	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/sky"
)

// This file implements the full imaging cycle of Fig. 2: imaging
// (gridding + inverse FFT), source extraction (CLEAN), prediction
// (FFT + degridding) and subtraction, repeated until the sky model
// converges. The IDG routines are "drop-in replacements for the
// gridding and degridding step" (Fig. 4); this driver is the loop
// around them.

// CycleConfig configures an imaging-cycle run.
type CycleConfig struct {
	// MajorCycles bounds the number of image/clean/predict rounds.
	MajorCycles int
	// Clean configures the minor cycles. Clean.Threshold acts as the
	// final stopping point; per major cycle the effective threshold
	// is max(Threshold, CycleDepth * current peak).
	Clean clean.Params
	// CycleDepth is the fraction of the current residual peak down to
	// which each major cycle cleans (typically 0.2-0.4).
	CycleDepth float64
	// ATerms optionally provides the direction-dependent correction.
	ATerms aterm.Provider
	// FaultTolerance selects the per-item failure policy of the IDG
	// passes inside the cycle; the zero value fails fast.
	FaultTolerance faulttol.Config
}

// Validate checks the configuration.
func (c *CycleConfig) Validate() error {
	if c.MajorCycles < 1 {
		return fmt.Errorf("core: need at least one major cycle, got %d", c.MajorCycles)
	}
	if c.CycleDepth < 0 || c.CycleDepth >= 1 {
		return fmt.Errorf("core: cycle depth %g outside [0, 1)", c.CycleDepth)
	}
	return c.Clean.Validate()
}

// CycleResult reports one imaging-cycle run.
type CycleResult struct {
	// Model is the accumulated sky model.
	Model sky.Model
	// Residual is the final residual image (Stokes I).
	Residual []float64
	// PeakHistory records the residual image peak entering each major
	// cycle.
	PeakHistory []float64
	// MajorCycles is the number of rounds actually executed.
	MajorCycles int
	// Times accumulates the IDG stage times over all rounds.
	Times StageTimes
	// Faults accumulates the degradation reports of all IDG passes.
	Faults *faulttol.Report
}

// RunImagingCycle executes the Fig. 2 loop on the observation data in
// vs, which is consumed (it holds the final residual visibilities on
// return). The PSF must be the normalized Stokes I point spread
// function of the observation. The context cancels the loop between
// and inside IDG passes; cfg.FaultTolerance governs how item failures
// inside those passes are handled.
func (k *Kernels) RunImagingCycle(ctx context.Context, p *plan.Plan, vs *VisibilitySet, psf []float64, cfg CycleConfig) (*CycleResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := k.checkPlan(p, vs); err != nil {
		return nil, err
	}
	n := k.params.GridSize
	if len(psf) != n*n {
		return nil, fmt.Errorf("core: PSF size %d, want %d", len(psf), n*n)
	}
	st := p.Stats()
	if st.NrGriddedVisibilities == 0 {
		return nil, fmt.Errorf("core: plan covers no visibilities")
	}
	norm := float64(n*n) / float64(st.NrGriddedVisibilities)
	corr := k.TaperCorrection(n)

	res := &CycleResult{Faults: faulttol.NewReport(cfg.FaultTolerance)}
	for major := 0; major < cfg.MajorCycles; major++ {
		if err := ctx.Err(); err != nil {
			return nil, faulttol.Canceled(err)
		}
		// Image the residual visibilities.
		cstart := k.ob.now()
		g := grid.NewGrid(n)
		t, rep, err := k.GridVisibilitiesFT(ctx, p, vs, cfg.ATerms, g, cfg.FaultTolerance)
		res.Faults.Merge(rep)
		if err != nil {
			return nil, err
		}
		res.Times.Add(t)
		img := GridToImage(g, k.params.workers())
		ScaleImage(img, norm)
		ApplyTaperCorrection(img, corr)
		dirty := sky.StokesI(img)

		peak := absPeak(dirty)
		k.ob.cycleImaged(major, peak, cstart)
		res.PeakHistory = append(res.PeakHistory, peak)
		res.Residual = dirty
		res.MajorCycles = major + 1
		if peak <= cfg.Clean.Threshold {
			break
		}

		// Minor cycles down to the cycle depth.
		params := cfg.Clean
		if th := cfg.CycleDepth * peak; th > params.Threshold {
			params.Threshold = th
		}
		cl, err := clean.Hogbom(dirty, psf, n, params)
		if err != nil {
			return nil, err
		}
		if len(cl.Components) == 0 {
			break
		}
		// Predict the new components and subtract them from the data.
		newModel := make(sky.Model, 0, len(cl.MergedComponents()))
		for _, c := range cl.MergedComponents() {
			l, m := sky.PixelToLM(c.X, c.Y, n, k.params.ImageSize)
			newModel = append(newModel, sky.PointSource{L: l, M: m, I: c.Flux})
		}
		res.Model = append(res.Model, newModel...)
		modelImg := newModel.Rasterize(n, k.params.ImageSize)
		mg := ImageToGrid(modelImg, k.params.workers())
		predicted, err := NewVisibilitySet(vs.Baselines, vs.UVW, vs.NrChannels)
		if err != nil {
			return nil, err
		}
		t, rep, err = k.DegridVisibilitiesFT(ctx, p, predicted, cfg.ATerms, mg, cfg.FaultTolerance)
		res.Faults.Merge(rep)
		if err != nil {
			return nil, err
		}
		res.Times.Add(t)
		for b := range vs.Data {
			for i := range vs.Data[b] {
				vs.Data[b][i] = vs.Data[b][i].Sub(predicted.Data[b][i])
			}
		}
	}
	// Merge model components that landed on the same pixel across
	// major cycles.
	res.Model = mergeModel(res.Model, n, k.params.ImageSize)
	return res, nil
}

// mergeModel sums components at identical pixels.
func mergeModel(m sky.Model, n int, imageSize float64) sky.Model {
	sums := make(map[[2]int]sky.PointSource)
	for _, s := range m {
		x, y := sky.LMToPixel(s.L, s.M, n, imageSize)
		key := [2]int{x, y}
		acc := sums[key]
		acc.L, acc.M = s.L, s.M
		acc.I += s.I
		sums[key] = acc
	}
	out := make(sky.Model, 0, len(sums))
	for _, s := range sums {
		out = append(out, s)
	}
	return out
}

func absPeak(img []float64) float64 {
	m := 0.0
	for _, v := range img {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}
