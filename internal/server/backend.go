package server

import (
	"context"
	"fmt"
	"io"
)

// SessionConfig is the observation configuration a client opens a
// session with. It is the wire-facing subset of the facade's
// ObservationConfig: geometry and dimensions plus the streaming knobs;
// durable-state locations are assigned by the server, never by the
// client.
type SessionConfig struct {
	NrStations     int     `json:"nr_stations"`
	NrTimesteps    int     `json:"nr_timesteps"`
	NrChannels     int     `json:"nr_channels"`
	StartFrequency float64 `json:"start_frequency"`
	ChannelWidth   float64 `json:"channel_width"`
	GridSize       int     `json:"grid_size"`
	SubgridSize    int     `json:"subgrid_size"`
	KernelSupport  int     `json:"kernel_support"`
	GridMargin     int     `json:"grid_margin"`
	ATermInterval  int     `json:"aterm_interval"`
	// Workers bounds the session's gridding parallelism (0: host
	// default; 1 makes the pass bit-reproducible).
	Workers int `json:"workers,omitempty"`
	// GridShards and MaxInflightChunks are the PR 5 streaming knobs. A
	// zero MaxInflightChunks is resolved to the server's
	// SessionInflightDefault at admission, so every session holds a
	// finite share of its tenant's in-flight budget.
	GridShards        int `json:"grid_shards,omitempty"`
	MaxInflightChunks int `json:"max_inflight_chunks,omitempty"`
	// Checkpoint opts the session into durable gridding checkpoints
	// (requires the server's CheckpointRoot); CheckpointEvery is the
	// period in streamed chunks (0: the scheduler default).
	Checkpoint      bool `json:"checkpoint,omitempty"`
	CheckpointEvery int  `json:"checkpoint_every,omitempty"`

	// CheckpointDir is assigned by the server under its CheckpointRoot
	// when Checkpoint is set; it is never decoded from the wire.
	CheckpointDir string `json:"-"`
}

// validate rejects obviously malformed session configs before the
// backend pays for a plan build; the backend's own validation remains
// authoritative.
func (c *SessionConfig) validate() error {
	switch {
	case c.NrStations < 2:
		return fmt.Errorf("nr_stations %d < 2", c.NrStations)
	case c.NrTimesteps < 1 || c.NrChannels < 1:
		return fmt.Errorf("empty observation %dx%d", c.NrTimesteps, c.NrChannels)
	case c.GridSize < 2 || c.SubgridSize < 1 || c.SubgridSize > c.GridSize:
		return fmt.Errorf("bad grid geometry %d/%d", c.GridSize, c.SubgridSize)
	case c.Workers < 0:
		return fmt.Errorf("negative workers %d", c.Workers)
	case c.GridShards < 0:
		return fmt.Errorf("negative grid_shards %d", c.GridShards)
	case c.MaxInflightChunks < 0:
		return fmt.Errorf("negative max_inflight_chunks %d", c.MaxInflightChunks)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("negative checkpoint_every %d", c.CheckpointEvery)
	case c.CheckpointEvery > 0 && !c.Checkpoint:
		return fmt.Errorf("checkpoint_every set without checkpoint")
	}
	return nil
}

// Result is the outcome of a finalized session: the grid fingerprint
// (the same bytes-hash the conformance suite pins) plus degradation
// notes from the fault-tolerance report.
type Result struct {
	GridSize int      `json:"grid_size"`
	SHA256   string   `json:"sha256"`
	SumAbs   float64  `json:"sum_abs"`
	PeakAbs  float64  `json:"peak_abs"`
	Nonzero  int      `json:"nonzero"`
	Notes    []string `json:"notes,omitempty"`
}

// Backend turns session configs into gridding sessions. The root
// package implements it on the facade (repro.ServerBackend); tests
// substitute fakes.
type Backend interface {
	// Open builds the session state (plan, kernels, visibility
	// storage) for a validated config. Errors are reported to the
	// client as a config rejection.
	Open(cfg SessionConfig) (BackendSession, error)
}

// BackendSession is one observation being streamed and gridded.
// The server serializes SetVisibilities calls per session (one stream
// request at a time) and calls Run at most once.
type BackendSession interface {
	// Dims returns the observation dimensions the wire data must
	// match.
	Dims() (nrBaselines, nrTimesteps, nrChannels int)
	// SetVisibilities stores one run of wire samples (8 float32 per
	// visibility, dataio order) at the baseline's sample offset.
	SetVisibilities(baseline, sampleOffset int, samples []float32) error
	// Run executes the streamed gridding pass and fingerprints the
	// resulting grid. A canceled context aborts it with the library's
	// usual cancellation semantics (checkpointing sessions keep their
	// last durable snapshot).
	Run(ctx context.Context) (*Result, error)
	// WriteGrid streams the finished grid (little-endian complex128,
	// correlation-plane-major — the byte order the SHA-256 in Result
	// is computed over). It fails before a successful Run.
	WriteGrid(w io.Writer) error
}
