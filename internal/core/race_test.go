//go:build race

package core

// raceEnabled reports whether the race detector instruments this test
// binary. Allocation-count assertions are skipped under race:
// sync.Pool deliberately drops items at random when instrumented (to
// exercise the New path), so scratch reuse — the thing those
// assertions pin — is not guaranteed per call.
const raceEnabled = true
