//go:build amd64

package xmath

// sincosQuads evaluates nq groups of four lanes with AVX2+FMA; see
// sincos_vec_amd64.s. Buffers must hold 4*nq elements, nq >= 1.
//
//go:noescape
func sincosQuads(sin, cos, x *float64, nq int)

// sincosOcts evaluates no groups of eight lanes with AVX-512F; buffers
// must hold 8*no elements, no >= 1.
//
//go:noescape
func sincosOcts(sin, cos, x *float64, no int)

// sincosVecTier runs the widest kernel the tier allows and finishes
// the remainder with the bit-identical scalar sequence. Lane position
// never changes a result, so the split points are invisible.
func sincosVecTier(tier SIMDTier, sin, cos, x []float64) {
	n := len(x)
	i := 0
	if tier >= SIMDAVX512 {
		if no := n / 8; no > 0 {
			sincosOcts(&sin[0], &cos[0], &x[0], no)
			i = 8 * no
		}
	} else if tier >= SIMDAVX2 {
		if nq := n / 4; nq > 0 {
			sincosQuads(&sin[0], &cos[0], &x[0], nq)
			i = 4 * nq
		}
	}
	sincosVecScalar(sin[i:n], cos[i:n], x[i:n])
}
