package dataio

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// headerBytes builds the on-disk header prefix (magic, dimensions,
// frequencies) without going through Write, so seeds can encode
// deliberately implausible dimensions.
func headerBytes(nrBaselines, nrTimesteps, nrChannels int64, freqs []float64) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, []int64{nrBaselines, nrTimesteps, nrChannels})
	binary.Write(&buf, binary.LittleEndian, freqs)
	return buf.Bytes()
}

// FuzzReadHeader throws arbitrary bytes at the header decoder. The
// decoder's contract under fuzzing: never panic, never allocate
// beyond the bounded frequency slice (ReadHeader is the part of the
// format that must be safe on untrusted input — Read's body
// allocation is gated behind these same checks), and only accept
// headers whose fields satisfy the documented plausibility bounds.
func FuzzReadHeader(f *testing.F) {
	f.Add(headerBytes(3, 16, 2, []float64{150e6, 150.2e6}))            // valid
	f.Add(headerBytes(3, 16, 2, []float64{150e6}))                     // truncated frequencies
	f.Add(headerBytes(0, 16, 2, []float64{150e6, 150.2e6}))            // zero baselines
	f.Add(headerBytes(1<<40, 16, 2, []float64{150e6, 150.2e6}))        // implausible baselines
	f.Add(headerBytes(1<<20, 1<<20, 1<<10, []float64{150e6, 150.2e6})) // product overflows maxSamples
	f.Add(headerBytes(3, 16, 2, []float64{math.NaN(), 150.2e6}))       // NaN frequency
	f.Add(headerBytes(3, 16, 2, []float64{-1, 150.2e6}))               // negative frequency
	f.Add([]byte("IDGVIS1\n"))                                         // magic only
	f.Add([]byte("IDGVIS2\n\x00\x00\x00\x00\x00\x00\x00\x00"))         // wrong version
	f.Add([]byte{})                                                    // empty

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted headers must honor the plausibility bounds the
		// decoder promises to enforce.
		if h.NrBaselines < 1 || int64(h.NrBaselines) > maxBaselines {
			t.Fatalf("accepted baseline count %d outside [1, %d]", h.NrBaselines, int64(maxBaselines))
		}
		if h.NrTimesteps < 1 || int64(h.NrTimesteps) > maxTimesteps {
			t.Fatalf("accepted timestep count %d outside [1, %d]", h.NrTimesteps, int64(maxTimesteps))
		}
		if h.NrChannels < 1 || int64(h.NrChannels) > maxChannels {
			t.Fatalf("accepted channel count %d outside [1, %d]", h.NrChannels, int64(maxChannels))
		}
		if s := int64(h.NrBaselines) * int64(h.NrTimesteps) * int64(h.NrChannels); s > maxSamples {
			t.Fatalf("accepted %d samples > max %d", s, int64(maxSamples))
		}
		if len(h.Frequencies) != h.NrChannels {
			t.Fatalf("accepted %d frequencies for %d channels", len(h.Frequencies), h.NrChannels)
		}
		for i, fr := range h.Frequencies {
			if fr <= 0 || math.IsNaN(fr) || math.IsInf(fr, 0) {
				t.Fatalf("accepted bad frequency %d: %g", i, fr)
			}
		}
	})
}
