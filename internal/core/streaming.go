package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aterm"
	"repro/internal/checkpoint"
	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/plan"
)

// NewShardedGrid wraps g in a sharded accessor with the configured
// shard count (Params.GridShards, defaulting to one shard per worker).
func (k *Kernels) NewShardedGrid(g *grid.Grid) *grid.Sharded {
	return grid.NewSharded(g, k.params.gridShards())
}

// streamAccounting tracks the scheduler's in-flight state: how many
// chunks are currently between gridder and adder, and the high-water
// mark of simultaneously alive subgrids (the number the memory bound
// MaxInflightChunks x StreamChunkItems promises to cap).
type streamAccounting struct {
	inflight     atomic.Int64
	liveSubgrids atomic.Int64
	peakSubgrids atomic.Int64
}

func (a *streamAccounting) acquire(subgrids int) {
	a.inflight.Add(1)
	live := a.liveSubgrids.Add(int64(subgrids))
	for {
		peak := a.peakSubgrids.Load()
		if live <= peak || a.peakSubgrids.CompareAndSwap(peak, live) {
			return
		}
	}
}

func (a *streamAccounting) release(subgrids int) (inflight int64) {
	a.liveSubgrids.Add(int64(-subgrids))
	return a.inflight.Add(-1)
}

// GridVisibilitiesStreamed runs the gridding pass as a stream of
// chunks: the plan is cut into chunks of at most Params.StreamChunkItems
// work items (plan order preserved), and up to Params.MaxInflightChunks
// chunks are in flight at once, each flowing grid -> FFT -> add as a
// unit before its subgrids return to the pool. The chunk is the unit
// of parallelism — inside a chunk items run serially on the owning
// worker — so peak subgrid memory is bounded by
// min(workers, MaxInflightChunks) x StreamChunkItems subgrids
// regardless of observation length, which is what lets a streamed pass
// grid observations larger than memory.
//
// Accumulation goes through the sharded adder onto sh: overlapping
// chunks contend only on shared row bands. With Workers <= 1 or one
// shard the chunks (and their items) run in exact plan order and the
// result is bit-for-bit identical to the serial batch pipeline;
// otherwise it differs only by floating-point reassociation.
//
// With Params.CheckpointDir set the stream is processed in epochs of
// Params.CheckpointEvery chunks; at each epoch boundary the scheduler
// quiesces and writes a durable snapshot (grid, chunk cursor, fault
// counters — see internal/checkpoint), including a final one at the
// end of the plan. ResumeVisibilitiesStreamed continues from such a
// snapshot and its result is bit-identical to the uninterrupted run
// under the same ordering guarantees as above.
//
// On cancellation the error matches both faulttol.ErrCanceled and the
// context's cause, even when the cancellation surfaced inside a retry
// loop. The grid then holds exactly the chunks whose add stage
// completed before the cancellation — every value finite and correct,
// but only a prefix-plus-stragglers subset of the plan — so a partial
// grid is useful for checkpointing but not as an image.
//
// GridVisibilitiesFT routes here automatically when
// Params.GridShards, Params.MaxInflightChunks or Params.CheckpointDir
// opt in.
func (k *Kernels) GridVisibilitiesStreamed(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, sh *grid.Sharded, ft faulttol.Config) (StageTimes, *faulttol.Report, error) {
	rep := faulttol.NewReport(ft)
	times, err := k.gridStreamed(ctx, p, vs, prov, sh, ft, rep, 0)
	return times, rep, err
}

// ResumeVisibilitiesStreamed continues a streamed gridding pass whose
// chunks [0, startChunk) are already accumulated onto sh — restored
// from a checkpoint — processing only the remaining chunks. rep
// carries the restored fault counters forward (nil allocates a fresh
// report). The chunking must match the interrupted run
// (StreamChunkItemsResolved); with the bit-reproducible settings
// (Workers <= 1, one shard) the resumed grid is bit-identical to an
// uninterrupted pass.
func (k *Kernels) ResumeVisibilitiesStreamed(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, sh *grid.Sharded, ft faulttol.Config, rep *faulttol.Report, startChunk int) (StageTimes, error) {
	if rep == nil {
		rep = faulttol.NewReport(ft)
	}
	if startChunk > 0 {
		k.ob.checkpointRestored()
	}
	return k.gridStreamed(ctx, p, vs, prov, sh, ft, rep, startChunk)
}

// gridStreamed is the scheduler shared by fresh and resumed streamed
// passes: it processes chunks [startChunk, len) in checkpoint epochs.
func (k *Kernels) gridStreamed(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, sh *grid.Sharded, ft faulttol.Config, rep *faulttol.Report, startChunk int) (StageTimes, error) {
	var times StageTimes
	if err := k.checkPlan(p, vs); err != nil {
		return times, err
	}
	if sh.Master().N != k.params.GridSize {
		return times, fmt.Errorf("core: sharded grid size %d != kernel grid size %d",
			sh.Master().N, k.params.GridSize)
	}
	chunks := p.StreamChunks(k.params.chunkItems())
	if startChunk < 0 || startChunk > len(chunks) {
		return times, fmt.Errorf("core: resume cursor %d outside the plan's %d chunks", startChunk, len(chunks))
	}
	if startChunk == len(chunks) {
		// Nothing left to grid (also covers an empty plan).
		return times, ctxErr(ctx)
	}
	// The A-term cache is not write-safe concurrently: warm it for the
	// whole plan up front, so every worker Get is a read-only hit.
	cache := k.newATermCache(prov)
	k.prefillATerms(cache, p.Items, vs.Baselines)

	workers := k.params.workers()
	if m := k.params.maxInflight(); workers > m {
		workers = m
	}
	if workers > len(chunks)-startChunk {
		workers = len(chunks) - startChunk
	}
	if workers < 1 {
		workers = 1
	}

	attempts := ft.Attempts()
	budget := faulttol.NewBackoffBudget(ft)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var acct streamAccounting
	var gridNs, fftNs, addNs atomic.Int64

	// runChunk pumps one chunk through grid -> FFT -> add on the
	// calling worker. Items run serially (par 1): chunk-level
	// parallelism saturates the pool, so intra-item tile fan-out would
	// only add scheduling overhead.
	runChunk := func(worker int, c plan.Chunk, s *scratch, subgrids []*grid.Subgrid) {
		acct.acquire(len(c.Items))
		defer func() {
			k.releaseSubgrids(subgrids)
			k.ob.chunkDone(acct.release(len(c.Items)))
		}()
		wp := planeOf(c.Items)

		gt0 := k.ob.now()
		t0 := time.Now()
		for i := range c.Items {
			if runCtx.Err() != nil {
				return
			}
			item := c.Items[i]
			it0 := k.ob.now()
			var err error
			made := 0
			for a := 1; a <= attempts; a++ {
				made = a
				err = faulttol.Run(func() error {
					if ft.Hook != nil {
						ft.Hook(item, a)
					}
					sgr := subgrids[i]
					if sgr == nil {
						sgr = k.getSubgrid(item.X0, item.Y0)
						subgrids[i] = sgr
					}
					sgr.X0, sgr.Y0 = item.X0, item.Y0
					sgr.WOffset, sgr.WPlane = item.WOffset, item.WPlane
					vis := s.visBuf(item.NrVisibilities())
					vs.gather(item, vis)
					if k.ob.enabled() {
						k.ob.flaggedVis(vs.countFlagged(item))
					}
					ap, aq := k.lookupATerms(cache, vs.Baselines, item)
					k.gridSubgridScratch(item, vs.itemUVW(item), vis, ap, aq, sgr, s, 1)
					if !sgr.Finite() {
						return fmt.Errorf("%w: non-finite subgrid (corrupt unflagged visibilities)",
							faulttol.ErrBadInput)
					}
					return nil
				})
				if err == nil {
					rep.RecordSuccess(a > 1)
					k.ob.itemDone(obs.StageGrid, c.Index, worker, i, item, a, it0)
					break
				}
				k.ob.attemptFailed(err)
				if errors.Is(err, faulttol.ErrBadInput) || runCtx.Err() != nil {
					break
				}
				// Deterministic exponential backoff before the next
				// attempt, metered against the run's retry budget:
				// when the budget is spent (or the run is canceled)
				// the item takes its terminal path now.
				if a < attempts && !budget.Sleep(runCtx, ft.BackoffDelay(a+1)) {
					break
				}
			}
			if err != nil {
				// Failed items leave a poisoned subgrid behind; drop it
				// so the FFT/add stages pass over the slot.
				if subgrids[i] != nil {
					k.putSubgrid(subgrids[i])
					subgrids[i] = nil
				}
				ie := &faulttol.ItemError{
					Baseline:  item.Baseline,
					TimeStart: item.TimeStart,
					Channel0:  item.Channel0,
					Attempts:  made,
					Err:       err,
				}
				if ft.Policy == faulttol.SkipAndFlag {
					rep.RecordSkip(ie, int64(item.NrVisibilities()))
					k.ob.itemSkipped(item)
					continue
				}
				if ctx.Err() != nil {
					// The caller canceled the run; the item failure is
					// a casualty of the cancellation, not its cause —
					// report ErrCanceled, not the item error.
					return
				}
				fail(ie)
				return
			}
		}
		d := time.Since(t0)
		gridNs.Add(d.Nanoseconds())
		k.ob.stageDone(obs.StageGrid, c.Index, wp, gt0, d)

		if runCtx.Err() != nil {
			return
		}
		ft0 := k.ob.now()
		t0 = time.Now()
		for _, sgr := range subgrids {
			if sgr != nil {
				k.fftSubgridOne(sgr, false)
			}
		}
		d = time.Since(t0)
		fftNs.Add(d.Nanoseconds())
		k.ob.stageDone(obs.StageFFT, c.Index, wp, ft0, d)
		if k.ob.enabled() {
			k.ob.subgrids(k.ob.sgFFT, countLive(subgrids))
		}

		if runCtx.Err() != nil {
			return
		}
		at0 := k.ob.now()
		t0 = time.Now()
		k.AdderSharded(subgrids, sh)
		d = time.Since(t0)
		addNs.Add(d.Nanoseconds())
		k.ob.stageDone(obs.StageAdd, c.Index, wp, at0, d)
	}

	// Chunks are dispatched in checkpoint epochs: all chunks of
	// [lo, hi) complete (a quiescent barrier), then the snapshot
	// covering [0, hi) is written. Epoch boundaries are aligned to
	// multiples of the period from chunk 0, so a resumed run
	// checkpoints at the same cursors as an uninterrupted one. Without
	// checkpointing there is a single epoch and no barrier.
	ckptEvery := 0
	if k.params.checkpointEnabled() {
		ckptEvery = k.params.checkpointEvery()
	}
	epochEnd := func(lo int) int {
		if ckptEvery <= 0 {
			return len(chunks)
		}
		hi := (lo/ckptEvery + 1) * ckptEvery
		if hi > len(chunks) {
			hi = len(chunks)
		}
		return hi
	}

	var ckptErr error
	if workers == 1 {
		// Serial dispatch in chunk order: with one shard this is the
		// bit-for-bit reference ordering. Checkpoint events fire on
		// this goroutine, so an injected crash unwinds the whole pass.
		s := k.getScratch()
		subgrids := make([]*grid.Subgrid, k.params.chunkItems())
		for lo := startChunk; lo < len(chunks) && ckptErr == nil && runCtx.Err() == nil; {
			hi := epochEnd(lo)
			for ci := lo; ci < hi; ci++ {
				if runCtx.Err() != nil {
					break
				}
				c := chunks[ci]
				runChunk(0, c, s, subgrids[:len(c.Items)])
				if runCtx.Err() == nil {
					k.fireCheckpointHook(checkpoint.EventChunkCommitted, c.Index)
				}
			}
			if ckptEvery > 0 && runCtx.Err() == nil {
				ckptErr = k.writeStreamCheckpoint(p, sh, hi, rep)
			}
			lo = hi
		}
		k.putScratch(s)
	} else {
		for lo := startChunk; lo < len(chunks) && ckptErr == nil && runCtx.Err() == nil; {
			hi := epochEnd(lo)
			var wg sync.WaitGroup
			var next atomic.Int64
			next.Store(int64(lo))
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					s := k.getScratch()
					defer k.putScratch(s)
					subgrids := make([]*grid.Subgrid, k.params.chunkItems())
					for runCtx.Err() == nil {
						ci := int(next.Add(1)) - 1
						if ci >= hi {
							return
						}
						c := chunks[ci]
						runChunk(worker, c, s, subgrids[:len(c.Items)])
					}
				}(w)
			}
			wg.Wait()
			// Concurrent workers commit chunks out of order, so the
			// per-chunk EventChunkCommitted is not fired here; the
			// epoch barrier is the only consistent point.
			if ckptEvery > 0 && runCtx.Err() == nil {
				ckptErr = k.writeStreamCheckpoint(p, sh, hi, rep)
			}
			lo = hi
		}
	}

	k.ob.streamPeak(acct.peakSubgrids.Load())
	times.Gridder = time.Duration(gridNs.Load())
	times.SubgridFFT = time.Duration(fftNs.Load())
	times.Adder = time.Duration(addNs.Load())
	if budget.Exhausted() {
		rep.AddNote("faulttol: retry backoff budget exhausted; remaining failures were not retried")
	}
	if firstErr != nil {
		return times, firstErr
	}
	if ckptErr != nil {
		return times, ckptErr
	}
	return times, ctxErr(ctx)
}

// fireCheckpointHook invokes the crash-injection hook at a checkpoint
// protocol point; chunk is the last committed chunk index (-1 if
// none). The hook may panic by design — the simulated kill must
// unwind the pass, so nothing here recovers.
func (k *Kernels) fireCheckpointHook(ev checkpoint.Event, chunk int) {
	if h := k.params.CheckpointHook; h != nil {
		h(ev, chunk)
	}
}

// writeStreamCheckpoint durably snapshots the pass at a quiescent
// epoch barrier: chunks [0, cursor) are fully accumulated onto sh and
// no worker is in flight.
func (k *Kernels) writeStreamCheckpoint(p *plan.Plan, sh *grid.Sharded, cursor int, rep *faulttol.Report) error {
	k.fireCheckpointHook(checkpoint.EventBeforeWrite, cursor-1)
	t0 := time.Now()
	sn := &checkpoint.Snapshot{
		GridSize:   k.params.GridSize,
		Shards:     sh.NumShards(),
		NextChunk:  cursor,
		ChunkItems: k.params.chunkItems(),
		PlanSum:    checkpoint.PlanFingerprint(p),
		Report:     rep.State(),
		Grid:       sh.Master(),
	}
	_, bytes, err := checkpoint.Write(k.params.CheckpointDir, sn, k.params.CheckpointHook)
	if err != nil {
		return fmt.Errorf("core: checkpoint at chunk cursor %d: %w", cursor, err)
	}
	k.ob.checkpointWritten(bytes, t0)
	k.fireCheckpointHook(checkpoint.EventAfterWrite, cursor-1)
	return nil
}

// PeakInflightSubgrids returns the high-water mark the latest streamed
// pass published to the observer's GaugeStreamPeakSubgrids, or 0
// without an observer. Tests use it to check the streaming memory
// bound.
func PeakInflightSubgrids(o *obs.Observer) int64 {
	if o == nil || o.Metrics == nil {
		return 0
	}
	return int64(o.Metrics.Gauge(obs.GaugeStreamPeakSubgrids).Value())
}
