// Benchmarks that regenerate the paper's evaluation. Each table and
// figure of Section VI has a benchmark that prints/reports the same
// rows or series:
//
//	Table I  -> BenchmarkTable1Platforms
//	Fig. 7   -> BenchmarkFig7TripleBuffering
//	Fig. 8   -> BenchmarkFig8UVCoverage
//	Fig. 9   -> BenchmarkFig9RuntimeDistribution
//	Fig. 10  -> BenchmarkFig10Throughput
//	Fig. 11  -> BenchmarkFig11Roofline
//	Fig. 12  -> BenchmarkFig12SincosMix (model + measured on this host)
//	Fig. 13  -> BenchmarkFig13SharedRoofline
//	Fig. 14  -> BenchmarkFig14EnergyDistribution
//	Fig. 15  -> BenchmarkFig15EnergyEfficiency
//	Fig. 16  -> BenchmarkFig16WprojComparison (model + measured WPG/IDG)
//
// Modelled platform numbers are attached via b.ReportMetric; the
// *measured* benchmarks run the real Go kernels on this machine.
// Ablation benchmarks for the design choices called out in DESIGN.md
// are in ablation_bench_test.go.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/perfmodel"
	"repro/internal/plan"
	"repro/internal/report"
	"repro/internal/uvwsim"
	"repro/internal/wproj"
	"repro/internal/xmath"
)

// benchObs lazily builds the shared scaled-down benchmark observation.
var benchObs = sync.OnceValues(func() (*Observation, error) {
	cfg := DefaultObservation()
	cfg.NrStations = 16
	cfg.NrTimesteps = 128
	cfg.NrChannels = 8
	cfg.GridSize = 512
	cfg.GridMargin = 32
	obs, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	pix := obs.ImageSize / float64(cfg.GridSize)
	obs.FillFromModel(SkyModel{{L: 30 * pix, M: -20 * pix, I: 1}})
	return obs, nil
})

func mustBenchObs(b *testing.B) *Observation {
	b.Helper()
	obs, err := benchObs()
	if err != nil {
		b.Fatal(err)
	}
	return obs
}

func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range arch.Platforms() {
			if p.NrFPUs() == 0 {
				b.Fatal("bad platform")
			}
		}
	}
	for _, p := range arch.Platforms() {
		b.ReportMetric(p.PeakTFlops, p.Name+"-peak-TFlops")
	}
}

func BenchmarkFig7TripleBuffering(b *testing.B) {
	var res perfmodel.PipelineResult
	for i := 0; i < b.N; i++ {
		res = perfmodel.SimulateTripleBuffer(256, 3, 1, 4, 1)
	}
	serial := perfmodel.SerialTime(256, 1, 4, 1)
	b.ReportMetric(serial/res.Makespan, "overlap-speedup")
	b.ReportMetric(100*res.KernelBusy, "kernel-busy-%")
}

func BenchmarkFig8UVCoverage(b *testing.B) {
	obs := mustBenchObs(b)
	baselines := obs.Simulator.Baselines()
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var us, vs []float64
		for _, bl := range baselines {
			for t := 0; t < obs.Config.NrTimesteps; t += 8 {
				c := obs.Simulator.UVW(bl.P, bl.Q, t)
				us = append(us, c.U, -c.U)
				vs = append(vs, c.V, -c.V)
			}
		}
		out = report.Scatter(us, vs, 64, 32)
	}
	if len(out) == 0 {
		b.Fatal("empty plot")
	}
}

func BenchmarkFig9RuntimeDistribution(b *testing.B) {
	d := perfmodel.PaperDataset()
	var total float64
	for i := 0; i < b.N; i++ {
		for _, p := range arch.Platforms() {
			c := perfmodel.ImagingCycle(p, d)
			total = c.Total()
		}
	}
	for _, p := range arch.Platforms() {
		c := perfmodel.ImagingCycle(p, d)
		b.ReportMetric(c.Total(), p.Name+"-cycle-s")
	}
	_ = total
}

func BenchmarkFig10Throughput(b *testing.B) {
	d := perfmodel.PaperDataset()
	for i := 0; i < b.N; i++ {
		for _, p := range arch.Platforms() {
			perfmodel.ThroughputMVisPerSec(p, d)
		}
	}
	for _, p := range arch.Platforms() {
		g, dg := perfmodel.ThroughputMVisPerSec(p, d)
		b.ReportMetric(g, p.Name+"-grid-MVis/s")
		b.ReportMetric(dg, p.Name+"-degrid-MVis/s")
	}
}

func BenchmarkFig11Roofline(b *testing.B) {
	d := perfmodel.PaperDataset()
	var pts []perfmodel.RooflinePoint
	for i := 0; i < b.N; i++ {
		pts = perfmodel.DeviceRoofline(d)
	}
	for _, pt := range pts {
		b.ReportMetric(pt.TOpsPerSec, pt.Platform+"-"+pt.Kernel+"-TOps")
	}
}

// BenchmarkFig12SincosMix measures the actual FMA/sincos mix
// throughput of this machine (the Go analogue of Fig. 12) and reports
// the modelled platform points at rho = 17.
func BenchmarkFig12SincosMix(b *testing.B) {
	for _, rho := range []int{1, 4, 17, 64, 256} {
		b.Run(fmt.Sprintf("rho=%d", rho), func(b *testing.B) {
			x, s, c := 1.1, 0.0, 0.0
			acc := 0.0
			for i := 0; i < b.N; i++ {
				s, c = xmath.SincosFast(x)
				for j := 0; j < rho; j++ {
					acc = acc*s + c // one FMA
				}
				x += 1e-3
			}
			sinkBench = acc
			ops := float64(rho)*2 + 2
			b.ReportMetric(float64(b.N)*ops/b.Elapsed().Seconds()/1e9, "GOps/s")
		})
	}
	for _, p := range arch.Platforms() {
		b.ReportMetric(p.MixOpsPerSec(arch.KernelRho)/1e12, p.Name+"-rho17-TOps")
	}
}

var sinkBench float64

func BenchmarkFig13SharedRoofline(b *testing.B) {
	d := perfmodel.PaperDataset()
	var pts []perfmodel.RooflinePoint
	for i := 0; i < b.N; i++ {
		pts = perfmodel.SharedRoofline(d)
	}
	for _, pt := range pts {
		b.ReportMetric(100*pt.TOpsPerSec/pt.CeilingTOps, pt.Platform+"-"+pt.Kernel+"-%ceiling")
	}
}

func BenchmarkFig14EnergyDistribution(b *testing.B) {
	d := perfmodel.PaperDataset()
	for i := 0; i < b.N; i++ {
		for _, p := range arch.Platforms() {
			if _, err := energy.Cycle(p, d); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, p := range arch.Platforms() {
		c, _ := energy.Cycle(p, d)
		b.ReportMetric(c.Total()/1e3, p.Name+"-cycle-kJ")
	}
}

func BenchmarkFig15EnergyEfficiency(b *testing.B) {
	d := perfmodel.PaperDataset()
	for i := 0; i < b.N; i++ {
		for _, p := range arch.Platforms() {
			energy.Efficiency(p, perfmodel.GridderCounts(d))
		}
	}
	for _, p := range arch.Platforms() {
		g := energy.Efficiency(p, perfmodel.GridderCounts(d))
		dg := energy.Efficiency(p, perfmodel.DegridderCounts(d))
		b.ReportMetric(g.GFlopsPerWatt, p.Name+"-gridder-GF/W")
		b.ReportMetric(dg.GFlopsPerWatt, p.Name+"-degridder-GF/W")
	}
}

// BenchmarkFig16WprojComparison runs the *real* Go W-projection and
// IDG gridders over a range of kernel sizes and reports measured
// MVis/s, next to the modelled PASCAL numbers.
func BenchmarkFig16WprojComparison(b *testing.B) {
	const gridSize = 512
	const imageSize = 0.1
	rnd := newTestRand(3)
	for _, nw := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("WPG/NW=%d", nw), func(b *testing.B) {
			g, err := wproj.NewGridder(wproj.Config{
				GridSize: gridSize, ImageSize: imageSize,
				Support: nw, Oversampling: 8,
				// The comparison is about steady-state gridding throughput;
				// use the fast sincos for the one-off kernel tabulation so
				// small-NW runs aren't dominated by setup.
				Sincos: xmath.SincosFast,
			})
			if err != nil {
				b.Fatal(err)
			}
			dst := grid.NewGrid(gridSize)
			vis := xmath.Matrix2{1, 0, 0, 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Grid(800*rnd(), 800*rnd(), 0, vis, dst)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "MVis/s")
		})
	}
	for _, sg := range []int{16, 24, 32} {
		b.Run(fmt.Sprintf("IDG/subgrid=%d", sg), func(b *testing.B) {
			benchGridderKernel(b, sg, 64, 8)
		})
	}
	d := perfmodel.PaperDataset()
	for _, r := range perfmodel.Fig16(arch.Pascal(), d, []int{16}, []int{24}) {
		b.ReportMetric(r.WPG, "model-PASCAL-WPG16-MVis/s")
		b.ReportMetric(r.IDG[24], "model-PASCAL-IDG24-MVis/s")
	}
}

// benchGridderKernel measures the real gridder kernel in MVis/s for
// one work item of nt x nc visibilities on an n-pixel subgrid.
func benchGridderKernel(b *testing.B, n, nt, nc int) {
	b.Helper()
	benchGridderKernelPrec(b, n, nt, nc, Float64)
}

func benchGridderKernelPrec(b *testing.B, n, nt, nc int, prec Precision) {
	b.Helper()
	freqs := make([]float64, nc)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*200e3
	}
	k, err := NewKernels(Params{
		GridSize: 512, SubgridSize: n, ImageSize: 0.1, Frequencies: freqs,
		Precision: prec,
	})
	if err != nil {
		b.Fatal(err)
	}
	item := plan.WorkItem{NrTimesteps: nt, Channel0: 0, NrChannels: nc, X0: 200, Y0: 200}
	rnd := newTestRand(7)
	uvw := make([]uvwsim.UVW, nt)
	for t := range uvw {
		uvw[t] = uvwsim.UVW{U: 50 * rnd(), V: 50 * rnd(), W: 5 * rnd()}
	}
	vis := make([]xmath.Matrix2, nt*nc)
	for i := range vis {
		vis[i] = xmath.Matrix2{1, 0, 0, 1}
	}
	out := grid.NewSubgrid(n, item.X0, item.Y0)
	// Warm-up call: fills the scratch pool so the timed iterations
	// measure the steady state (and allocs/op stays at zero).
	k.GridSubgrid(item, uvw, vis, nil, nil, out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.GridSubgrid(item, uvw, vis, nil, nil, out)
	}
	visPerCall := float64(nt * nc)
	b.ReportMetric(float64(b.N)*visPerCall/b.Elapsed().Seconds()/1e6, "MVis/s")
}

func benchDegridderKernelPrec(b *testing.B, prec Precision) {
	b.Helper()
	const n, nt, nc = 24, 128, 16
	freqs := make([]float64, nc)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*200e3
	}
	k, err := NewKernels(Params{
		GridSize: 512, SubgridSize: n, ImageSize: 0.1, Frequencies: freqs,
		Precision: prec,
	})
	if err != nil {
		b.Fatal(err)
	}
	item := plan.WorkItem{NrTimesteps: nt, Channel0: 0, NrChannels: nc, X0: 200, Y0: 200}
	rnd := newTestRand(8)
	uvw := make([]uvwsim.UVW, nt)
	for t := range uvw {
		uvw[t] = uvwsim.UVW{U: 50 * rnd(), V: 50 * rnd(), W: 5 * rnd()}
	}
	in := grid.NewSubgrid(n, item.X0, item.Y0)
	for c := range in.Data {
		for i := range in.Data[c] {
			in.Data[c][i] = complex(rnd(), rnd())
		}
	}
	vis := make([]xmath.Matrix2, nt*nc)
	k.DegridSubgrid(item, in, uvw, nil, nil, vis) // warm up scratch pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.DegridSubgrid(item, in, uvw, nil, nil, vis)
	}
	b.ReportMetric(float64(b.N)*float64(nt*nc)/b.Elapsed().Seconds()/1e6, "MVis/s")
}

// Measured wall-clock kernel benchmarks (the Go "fourth platform").

func BenchmarkGridderKernel(b *testing.B) {
	benchGridderKernel(b, 24, 128, 16)
}

func BenchmarkGridderKernelFloat32(b *testing.B) {
	benchGridderKernelPrec(b, 24, 128, 16, Float32)
}

func BenchmarkDegridderKernel(b *testing.B) {
	benchDegridderKernelPrec(b, Float64)
}

func BenchmarkDegridderKernelFloat32(b *testing.B) {
	benchDegridderKernelPrec(b, Float32)
}

func BenchmarkFullGriddingPass(b *testing.B) {
	obs := mustBenchObs(b)
	// Steady-state measurement: the grid is allocated once and zeroed
	// per pass, and one warm-up pass fills the kernel scratch/subgrid
	// pools, so allocs/op reflects the warm pipeline hot path.
	g := NewGrid(obs.Config.GridSize)
	if _, err := obs.Kernels.GridVisibilities(context.Background(), obs.Plan, obs.Vis, nil, g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var times StageTimes
	for i := 0; i < b.N; i++ {
		g.Zero()
		t, err := obs.Kernels.GridVisibilities(context.Background(), obs.Plan, obs.Vis, nil, g)
		if err != nil {
			b.Fatal(err)
		}
		times = t
	}
	st := obs.Plan.Stats()
	b.ReportMetric(float64(st.NrGriddedVisibilities)/times.Total().Seconds()/1e6, "MVis/s")
	b.ReportMetric(100*times.Gridder.Seconds()/times.Total().Seconds(), "gridder-%")
}

func BenchmarkFullDegriddingPass(b *testing.B) {
	obs := mustBenchObs(b)
	g := NewGrid(obs.Config.GridSize)
	if _, err := obs.Kernels.GridVisibilities(context.Background(), obs.Plan, obs.Vis, nil, g); err != nil {
		b.Fatal(err)
	}
	out := MustNewVisibilitySet(obs.Vis.Baselines, obs.Vis.UVW, obs.Vis.NrChannels)
	// Warm-up pass: fills the kernel scratch/subgrid pools so the timed
	// iterations measure the steady state.
	if _, err := obs.Kernels.DegridVisibilities(context.Background(), obs.Plan, out, nil, g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var times StageTimes
	for i := 0; i < b.N; i++ {
		t, err := obs.Kernels.DegridVisibilities(context.Background(), obs.Plan, out, nil, g)
		if err != nil {
			b.Fatal(err)
		}
		times = t
	}
	st := obs.Plan.Stats()
	b.ReportMetric(float64(st.NrGriddedVisibilities)/times.Total().Seconds()/1e6, "MVis/s")
}

// BenchmarkGridFFT2048 measures the serial centered transform of one
// full-size (2048-pixel) grid plane, the final FFT of an imaging pass
// at the paper's grid size. Forward+inverse per op keeps the data
// bounded across iterations.
func BenchmarkGridFFT2048(b *testing.B) {
	const n = 2048
	p := fft.CachedPlan2D(n, n)
	rnd := newTestRand(18)
	x := make([]complex128, n*n)
	for i := range x {
		x[i] = complex(rnd(), rnd())
	}
	p.ForwardCentered(x) // warm the plan's pooled scratch
	p.InverseCentered(x)
	b.SetBytes(2 * n * n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForwardCentered(x)
		p.InverseCentered(x)
	}
}

// newTestRand returns a tiny deterministic uniform(-1,1) generator
// (mirrors the one in the core tests).
func newTestRand(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<52) - 1
	}
}
