//go:build !amd64

package xmath

// hasCvtASM is false off amd64: CvtF64F32 runs its scalar loop.
const hasCvtASM = false

func cvtQuadsPDPS(dst *float32, src *float64, nq int) {
	panic("xmath: cvtQuadsPDPS without AVX")
}
