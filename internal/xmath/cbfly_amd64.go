//go:build amd64

package xmath

// hasCBflyASM gates the assembled radix-4 butterfly loops; callers
// still clamp on the runtime SIMD tier (the loops are VEX-encoded).
const hasCBflyASM = true

// r4StageTwPairs runs a fused radix-4 stage over n contiguous
// complex128 elements, two butterflies per iteration; n must be a
// multiple of 4h and h even, h >= 2. cbfly_amd64.s.
//
//go:noescape
func r4StageTwPairs(x *complex128, n, h int, tw1, tw2 *complex128)

// r4StageTwPairsInv is the backward-direction stage (w3 = +i*w2).
//
//go:noescape
func r4StageTwPairsInv(x *complex128, n, h int, tw1, tw2 *complex128)

// r4ColsPairs applies np pairs of broadcast-twiddle butterflies across
// four lane arrays (2*np elements each). cbfly_amd64.s.
//
//go:noescape
func r4ColsPairs(a, b, c, d *complex128, np int, w1, w2 complex128)

// r4ColsPairsInv is the backward-direction broadcast butterfly.
//
//go:noescape
func r4ColsPairsInv(a, b, c, d *complex128, np int, w1, w2 complex128)
