// Package checkpoint implements durable snapshots of a streamed
// gridding pass: the partially accumulated uv-grid, the chunk cursor
// of the streaming scheduler, and the fault-tolerance counters, in a
// versioned binary format protected by a SHA-256 content digest and
// written with temp-file + atomic-rename durability. A run killed at
// hour N resumes from its last snapshot instead of regridding hours
// 1..N — the robustness layer the ROADMAP's multi-node and
// gridding-as-a-service items assume.
//
// # Format
//
// A snapshot file is, in order (all integers little-endian):
//
//	magic   "IDGCKPT\n" (8 bytes)
//	version uint32 (currently 1)
//	header  gridSize uint32, shards uint32, nextChunk uint64,
//	        chunkItems uint32
//	plan    SHA-256 of the canonical plan encoding (32 bytes)
//	report  itemsProcessed, itemsRetried, itemsSkipped,
//	        droppedVisibilities (4 x uint64)
//	bands   for each shard i: rowLo uint32, rowHi uint32, then the
//	        band's rows of all four correlation planes as float64
//	        (re, im) pairs (grid.Sharded.WriteBand)
//	digest  SHA-256 over every preceding byte (32 bytes)
//
// The file size is a closed form of (gridSize, shards), so a reader
// can reject a truncated or padded file before allocating the grid.
//
// # Atomicity
//
// Write streams into a temp file in the destination directory, syncs
// it, and renames it into place. On POSIX filesystems the rename is
// atomic: a reader (or a crash) either sees the complete previous
// checkpoint set or the complete new file, never a half-written one.
// A torn file can therefore only appear through external corruption —
// and the trailing digest catches exactly that, making LoadLatest's
// fall-back-to-previous scan safe.
package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
)

const (
	magic   = "IDGCKPT\n"
	version = 1

	// filePrefix/fileSuffix frame checkpoint file names; the chunk
	// cursor is zero-padded so lexical order equals numeric order.
	filePrefix = "checkpoint-"
	fileSuffix = ".idgckpt"

	// maxGridSize bounds the grid dimension a reader will accept; a
	// corrupt or hostile header cannot make Read allocate more than
	// 4 planes x (16K)^2 x 16 bytes.
	maxGridSize = 1 << 14
)

// Typed failures, matched with errors.Is through any wrapping.
var (
	// ErrCorrupt marks a snapshot file that fails structural or digest
	// validation (torn write, truncation, bit rot).
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
	// ErrVersion marks a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrMismatch marks a structurally valid snapshot that does not
	// belong to the observation trying to resume from it (different
	// plan, grid size, or chunking).
	ErrMismatch = errors.New("checkpoint: snapshot does not match the observation")
)

// Event identifies a durability-critical point in the streaming
// scheduler's checkpoint protocol. Hooks observe these points; the
// crash-injection harness panics at them to simulate kills.
type Event int

const (
	// EventChunkCommitted fires after a chunk's subgrids are added to
	// the grid but before any checkpoint covers it (serial scheduler
	// only; concurrent workers commit chunks out of order).
	EventChunkCommitted Event = iota + 1
	// EventBeforeWrite fires at a checkpoint barrier before the
	// snapshot file is opened.
	EventBeforeWrite
	// EventBeforeRename fires after the snapshot temp file is written
	// and synced, before the atomic rename publishes it.
	EventBeforeRename
	// EventAfterWrite fires after the snapshot is durably in place.
	EventAfterWrite
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EventChunkCommitted:
		return "chunk-committed"
	case EventBeforeWrite:
		return "before-write"
	case EventBeforeRename:
		return "before-rename"
	case EventAfterWrite:
		return "after-write"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Hook observes checkpoint events. chunk is the index of the last
// committed chunk at the event (-1 if none). A test hook may panic to
// simulate a crash at that exact point; production runs leave it nil.
type Hook func(ev Event, chunk int)

// Snapshot is one durable point of a streamed gridding pass:
// everything needed to continue from chunk NextChunk as if the run
// had never stopped.
type Snapshot struct {
	// GridSize is the master grid dimension in pixels.
	GridSize int
	// Shards is the row-band count the grid is serialized as (the
	// scheduler's shard count; any value works for restore since the
	// bands tile the grid).
	Shards int
	// NextChunk is the cursor: chunks [0, NextChunk) of the plan's
	// stream are fully accumulated in Grid.
	NextChunk int
	// ChunkItems is the streaming chunk size the cursor is relative
	// to; resuming with a different chunk size would misplace it.
	ChunkItems int
	// PlanSum is PlanFingerprint of the plan the pass is gridding.
	PlanSum [32]byte
	// Report carries the fault-tolerance counters accumulated so far.
	Report faulttol.ReportState
	// Grid is the partially accumulated uv-grid.
	Grid *grid.Grid
}

// fileSize returns the exact encoded size of a snapshot with the
// given dimensions.
func fileSize(gridSize, shards int) int64 {
	return int64(len(magic)) + 4 + // magic, version
		4 + 4 + 8 + 4 + // gridSize, shards, nextChunk, chunkItems
		32 + // plan fingerprint
		4*8 + // report counters
		int64(shards)*8 + // per-band row bounds
		4*int64(gridSize)*int64(gridSize)*16 + // grid payload
		32 // digest
}

// PlanFingerprint hashes the plan's canonical content — config,
// frequencies and every work item — so a snapshot can prove it
// belongs to the plan a resume is about to grid. Two plans fingerprint
// equal iff they describe the same work in the same order.
func PlanFingerprint(p *plan.Plan) [32]byte {
	h := sha256.New()
	var b [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }

	wi(p.GridSize)
	wi(p.SubgridSize)
	wf(p.ImageSize)
	wi(p.KernelSupport)
	wi(p.MaxTimestepsPerSubgrid)
	wi(p.ATermUpdateInterval)
	wf(p.WStepLambda)
	wi(p.ChannelBlockSize)
	wi(len(p.Frequencies))
	for _, f := range p.Frequencies {
		wf(f)
	}
	wi(len(p.Items))
	for i := range p.Items {
		it := &p.Items[i]
		wi(it.Baseline)
		wi(it.TimeStart)
		wi(it.NrTimesteps)
		wi(it.Channel0)
		wi(it.NrChannels)
		wi(it.ATermSlot)
		wi(it.X0)
		wi(it.Y0)
		wf(it.WOffset)
		wi(it.WPlane)
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

// FileName returns the snapshot file name for a chunk cursor. The
// cursor is zero-padded so lexically sorted directory listings are in
// cursor order.
func FileName(nextChunk int) string {
	return fmt.Sprintf("%s%012d%s", filePrefix, nextChunk, fileSuffix)
}

// hashWriter tees writes into a running SHA-256.
type hashWriter struct {
	w io.Writer
	h hash.Hash
}

func (hw *hashWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	return n, err
}

func (hw *hashWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := hw.Write(b[:])
	return err
}

func (hw *hashWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := hw.Write(b[:])
	return err
}

// Write durably stores sn into dir (created if missing) and returns
// the published file path and its size in bytes. The snapshot streams
// into a temp file which is synced and atomically renamed to
// FileName(sn.NextChunk); hook (may be nil) observes EventBeforeRename
// between the sync and the rename, the window where a kill leaves no
// new checkpoint but an ignorable temp file.
func Write(dir string, sn *Snapshot, hook Hook) (path string, bytes int64, err error) {
	if sn.Grid == nil || sn.Grid.N != sn.GridSize {
		return "", 0, fmt.Errorf("checkpoint: snapshot grid does not match GridSize %d", sn.GridSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("checkpoint: %w", err)
	}
	sh := grid.NewSharded(sn.Grid, sn.Shards)

	f, err := os.CreateTemp(dir, filePrefix+"*.tmp")
	if err != nil {
		return "", 0, fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<16)
	hw := &hashWriter{w: bw, h: sha256.New()}
	if _, err := hw.Write([]byte(magic)); err != nil {
		return "", 0, err
	}
	if err := hw.u32(version); err != nil {
		return "", 0, err
	}
	if err := errors.Join(
		hw.u32(uint32(sn.GridSize)),
		hw.u32(uint32(sh.NumShards())),
		hw.u64(uint64(sn.NextChunk)),
		hw.u32(uint32(sn.ChunkItems)),
	); err != nil {
		return "", 0, err
	}
	if _, err := hw.Write(sn.PlanSum[:]); err != nil {
		return "", 0, err
	}
	if err := errors.Join(
		hw.u64(uint64(sn.Report.ItemsProcessed)),
		hw.u64(uint64(sn.Report.ItemsRetried)),
		hw.u64(uint64(sn.Report.ItemsSkipped)),
		hw.u64(uint64(sn.Report.DroppedVisibilities)),
	); err != nil {
		return "", 0, err
	}
	for i := 0; i < sh.NumShards(); i++ {
		lo, hi := sh.Bounds(i)
		if err := errors.Join(hw.u32(uint32(lo)), hw.u32(uint32(hi))); err != nil {
			return "", 0, err
		}
		if err := sh.WriteBand(hw, i); err != nil {
			return "", 0, err
		}
	}
	var digest [32]byte
	hw.h.Sum(digest[:0])
	if _, err := bw.Write(digest[:]); err != nil {
		return "", 0, err
	}
	if err := bw.Flush(); err != nil {
		return "", 0, err
	}
	if err := f.Sync(); err != nil {
		return "", 0, fmt.Errorf("checkpoint: sync: %w", err)
	}

	if hook != nil {
		hook(EventBeforeRename, sn.NextChunk-1)
	}

	if err := f.Close(); err != nil {
		return "", 0, err
	}
	path = filepath.Join(dir, FileName(sn.NextChunk))
	if err := os.Rename(tmp, path); err != nil {
		return "", 0, fmt.Errorf("checkpoint: publish: %w", err)
	}
	renamed = true
	// Best effort: make the rename itself durable. Some filesystems
	// (and all test tmpfs setups) don't need it; none are hurt by it.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return path, fileSize(sn.GridSize, sh.NumShards()), nil
}

// hashReader tees reads into a running SHA-256.
type hashReader struct {
	r io.Reader
	h hash.Hash
}

func (hr *hashReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	hr.h.Write(p[:n])
	return n, err
}

func (hr *hashReader) full(p []byte) error {
	_, err := io.ReadFull(hr, p)
	return err
}

func (hr *hashReader) u32() (uint32, error) {
	var b [4]byte
	if err := hr.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (hr *hashReader) u64() (uint64, error) {
	var b [8]byte
	if err := hr.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Read loads and fully validates one snapshot file: magic, version,
// header sanity, exact file size, band structure and the trailing
// SHA-256 digest. Any structural problem returns an error matching
// ErrCorrupt (or ErrVersion for a well-formed file of another
// version); Read never panics and never returns a partially valid
// snapshot.
func Read(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}

	br := bufio.NewReaderSize(f, 1<<16)
	hr := &hashReader{r: br, h: sha256.New()}
	var mg [len(magic)]byte
	if err := hr.full(mg[:]); err != nil {
		return nil, fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	if string(mg[:]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, mg)
	}
	ver, err := hr.u32()
	if err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if ver != version {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrVersion, ver, version)
	}

	gridSize, err1 := hr.u32()
	shards, err2 := hr.u32()
	nextChunk, err3 := hr.u64()
	chunkItems, err4 := hr.u32()
	if err := errors.Join(err1, err2, err3, err4); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	switch {
	case gridSize < 2 || gridSize > maxGridSize:
		return nil, fmt.Errorf("%w: implausible grid size %d", ErrCorrupt, gridSize)
	case shards < 1 || shards > gridSize:
		return nil, fmt.Errorf("%w: implausible shard count %d for grid %d", ErrCorrupt, shards, gridSize)
	case nextChunk > 1<<40:
		return nil, fmt.Errorf("%w: implausible chunk cursor %d", ErrCorrupt, nextChunk)
	case chunkItems < 1 || chunkItems > 1<<24:
		return nil, fmt.Errorf("%w: implausible chunk size %d", ErrCorrupt, chunkItems)
	}
	// The whole layout is now determined; reject truncated or padded
	// files before allocating ~16 N^2 bytes of grid.
	if want := fileSize(int(gridSize), int(shards)); st.Size() != want {
		return nil, fmt.Errorf("%w: file is %d bytes, a %d-pixel %d-shard snapshot is %d",
			ErrCorrupt, st.Size(), gridSize, shards, want)
	}

	sn := &Snapshot{
		GridSize:   int(gridSize),
		Shards:     int(shards),
		NextChunk:  int(nextChunk),
		ChunkItems: int(chunkItems),
	}
	if err := hr.full(sn.PlanSum[:]); err != nil {
		return nil, fmt.Errorf("%w: short plan fingerprint: %v", ErrCorrupt, err)
	}
	proc, err1 := hr.u64()
	retr, err2 := hr.u64()
	skip, err3 := hr.u64()
	drop, err4 := hr.u64()
	if err := errors.Join(err1, err2, err3, err4); err != nil {
		return nil, fmt.Errorf("%w: short report: %v", ErrCorrupt, err)
	}
	sn.Report = faulttol.ReportState{
		ItemsProcessed:      int(proc),
		ItemsRetried:        int(retr),
		ItemsSkipped:        int(skip),
		DroppedVisibilities: int64(drop),
	}

	sn.Grid = grid.NewGrid(sn.GridSize)
	sh := grid.NewSharded(sn.Grid, sn.Shards)
	for i := 0; i < sh.NumShards(); i++ {
		lo, err1 := hr.u32()
		hi, err2 := hr.u32()
		if err := errors.Join(err1, err2); err != nil {
			return nil, fmt.Errorf("%w: short band header: %v", ErrCorrupt, err)
		}
		wlo, whi := sh.Bounds(i)
		if int(lo) != wlo || int(hi) != whi {
			return nil, fmt.Errorf("%w: band %d bounds [%d,%d), want [%d,%d)",
				ErrCorrupt, i, lo, hi, wlo, whi)
		}
		if err := sh.ReadBand(hr, i); err != nil {
			return nil, fmt.Errorf("%w: band %d: %v", ErrCorrupt, i, err)
		}
	}

	var want, got [32]byte
	hr.h.Sum(want[:0])
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("%w: short digest: %v", ErrCorrupt, err)
	}
	if want != got {
		return nil, fmt.Errorf("%w: content digest mismatch", ErrCorrupt)
	}
	return sn, nil
}

// List returns the snapshot file names in dir in ascending cursor
// order (temp files and foreign names excluded). A missing directory
// is an empty list, not an error.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(name, filePrefix) && strings.HasSuffix(name, fileSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadLatest returns the newest valid snapshot in dir, scanning
// backwards past invalid files: a torn, corrupt or version-mismatched
// newest checkpoint falls back to its predecessor. Each skipped file
// adds a note (for the run's FaultReport); a nil snapshot with a nil
// error means no valid checkpoint exists and the caller should start
// clean. Only I/O-level problems (unreadable directory) are errors.
func LoadLatest(dir string) (sn *Snapshot, path string, notes []string, err error) {
	names, err := List(dir)
	if err != nil {
		return nil, "", nil, fmt.Errorf("checkpoint: %w", err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		p := filepath.Join(dir, names[i])
		s, rerr := Read(p)
		if rerr == nil {
			return s, p, notes, nil
		}
		notes = append(notes, fmt.Sprintf("checkpoint %s unusable, falling back: %v", names[i], rerr))
	}
	return nil, "", notes, nil
}
