// Fused radix-4 complex butterflies, two complex128 lanes per YMM.
//
// Complex multiply uses two duplicated-element multiplies and
// VADDSUBPD (no FMA): for t = w*v,
//   p1 = [vr*wr, vr*wi]   (re-dup(v) * w)
//   p2 = [vi*wi, vi*wr]   (im-dup(v) * swap(w))
//   t  = addsub(p1, p2) = [vr*wr - vi*wi, vr*wi + vi*wr]
// These are exactly the products and sums of Go's complex128 multiply,
// so the vector loops are bitwise equal to the scalar fallback.
//
// The w3 = -i*w2 twiddle is built by swapping w2's halves and flipping
// the sign of the odd (imaginary) qword — both exact operations.

#include "textflag.h"

// Sign mask that negates the odd (imaginary) float64 of each lane.
DATA signOdd<>+0(SB)/8, $0x0000000000000000
DATA signOdd<>+8(SB)/8, $0x8000000000000000
DATA signOdd<>+16(SB)/8, $0x0000000000000000
DATA signOdd<>+24(SB)/8, $0x8000000000000000
GLOBL signOdd<>(SB), RODATA, $32

// Sign mask that negates the even (real) float64 of each lane, used to
// build the inverse-direction w3 = +i*w2 = [-w2i, w2r] from swap(w2).
DATA signEven<>+0(SB)/8, $0x8000000000000000
DATA signEven<>+8(SB)/8, $0x0000000000000000
DATA signEven<>+16(SB)/8, $0x8000000000000000
DATA signEven<>+24(SB)/8, $0x0000000000000000
GLOBL signEven<>(SB), RODATA, $32

// The butterfly body shared by both loops. In: data in Y0..Y3
// (a, b, c, d), twiddles in Y10/Y11 (w1, swap(w1)), Y12/Y13
// (w2, swap(w2)), Y14/Y15 (w3, swap(w3)). Out: a', b', c', d' in
// Y2, Y4, Y3, Y5.
#define R4BODY \
	VSHUFPD   $0x0, Y1, Y1, Y4  \ // re-dup(b)
	VSHUFPD   $0xf, Y1, Y1, Y5  \ // im-dup(b)
	VMULPD    Y10, Y4, Y4       \
	VMULPD    Y11, Y5, Y5       \
	VADDSUBPD Y5, Y4, Y4        \ // tb = w1*b
	VSHUFPD   $0x0, Y3, Y3, Y5  \
	VSHUFPD   $0xf, Y3, Y3, Y6  \
	VMULPD    Y10, Y5, Y5       \
	VMULPD    Y11, Y6, Y6       \
	VADDSUBPD Y6, Y5, Y5        \ // td = w1*d
	VADDPD    Y4, Y0, Y6        \ // a1 = a + tb
	VSUBPD    Y4, Y0, Y7        \ // b1 = a - tb
	VADDPD    Y5, Y2, Y8        \ // c1 = c + td
	VSUBPD    Y5, Y2, Y9        \ // d1 = c - td
	VSHUFPD   $0x0, Y8, Y8, Y0  \
	VSHUFPD   $0xf, Y8, Y8, Y1  \
	VMULPD    Y12, Y0, Y0       \
	VMULPD    Y13, Y1, Y1       \
	VADDSUBPD Y1, Y0, Y0        \ // tc = w2*c1
	VSHUFPD   $0x0, Y9, Y9, Y1  \
	VSHUFPD   $0xf, Y9, Y9, Y2  \
	VMULPD    Y14, Y1, Y1       \
	VMULPD    Y15, Y2, Y2       \
	VADDSUBPD Y2, Y1, Y1        \ // te = w3*d1
	VADDPD    Y0, Y6, Y2        \ // a' = a1 + tc
	VSUBPD    Y0, Y6, Y3        \ // c' = a1 - tc
	VADDPD    Y1, Y7, Y4        \ // b' = b1 + te
	VSUBPD    Y1, Y7, Y5          // d' = b1 - te

// func r4StageTwPairs(x *complex128, n, h int, tw1, tw2 *complex128)
TEXT ·r4StageTwPairs(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), R8
	MOVQ h+16(FP), R9
	MOVQ tw1+24(FP), R10
	MOVQ tw2+32(FP), R11

	MOVQ R9, R12
	SHLQ $4, R12              // R12 = h*16, leg stride in bytes
	SHLQ $4, R8
	LEAQ (DI)(R8*1), R8       // R8 = end pointer
	MOVQ DI, BX               // BX = current block base

baseloop:
	MOVQ BX, SI               // SI = &a[j]
	MOVQ R10, R13             // tw1 cursor
	MOVQ R11, R14             // tw2 cursor
	MOVQ R9, CX
	SHRQ $1, CX               // h/2 butterfly pairs

jloop:
	// Twiddle pair: w1, w2, derived swaps and w3 = -i*w2.
	VMOVUPD (R13), Y10
	VSHUFPD $0x5, Y10, Y10, Y11
	VMOVUPD (R14), Y12
	VSHUFPD $0x5, Y12, Y12, Y13
	VXORPD  signOdd<>(SB), Y13, Y14
	VSHUFPD $0x5, Y14, Y14, Y15

	// Leg pointers: a=SI, b=SI+h, c=SI+2h, d=SI+3h (bytes via R12).
	LEAQ (SI)(R12*1), DX
	LEAQ (SI)(R12*2), AX
	LEAQ (AX)(R12*1), R15

	VMOVUPD (SI), Y0
	VMOVUPD (DX), Y1
	VMOVUPD (AX), Y2
	VMOVUPD (R15), Y3

	R4BODY

	VMOVUPD Y2, (SI)
	VMOVUPD Y4, (DX)
	VMOVUPD Y3, (AX)
	VMOVUPD Y5, (R15)

	ADDQ $32, SI
	ADDQ $32, R13
	ADDQ $32, R14
	DECQ CX
	JNZ  jloop

	LEAQ (BX)(R12*4), BX      // next 4h block
	CMPQ BX, R8
	JB   baseloop

	VZEROUPPER
	RET

// func r4StageTwPairsInv(x *complex128, n, h int, tw1, tw2 *complex128)
// Identical to r4StageTwPairs except w3 = +i*w2 (signEven mask): the
// caller passes conjugated twiddle tables for the backward transform.
TEXT ·r4StageTwPairsInv(SB), NOSPLIT, $0-40
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), R8
	MOVQ h+16(FP), R9
	MOVQ tw1+24(FP), R10
	MOVQ tw2+32(FP), R11

	MOVQ R9, R12
	SHLQ $4, R12
	SHLQ $4, R8
	LEAQ (DI)(R8*1), R8
	MOVQ DI, BX

invbaseloop:
	MOVQ BX, SI
	MOVQ R10, R13
	MOVQ R11, R14
	MOVQ R9, CX
	SHRQ $1, CX

invjloop:
	VMOVUPD (R13), Y10
	VSHUFPD $0x5, Y10, Y10, Y11
	VMOVUPD (R14), Y12
	VSHUFPD $0x5, Y12, Y12, Y13
	VXORPD  signEven<>(SB), Y13, Y14
	VSHUFPD $0x5, Y14, Y14, Y15

	LEAQ (SI)(R12*1), DX
	LEAQ (SI)(R12*2), AX
	LEAQ (AX)(R12*1), R15

	VMOVUPD (SI), Y0
	VMOVUPD (DX), Y1
	VMOVUPD (AX), Y2
	VMOVUPD (R15), Y3

	R4BODY

	VMOVUPD Y2, (SI)
	VMOVUPD Y4, (DX)
	VMOVUPD Y3, (AX)
	VMOVUPD Y5, (R15)

	ADDQ $32, SI
	ADDQ $32, R13
	ADDQ $32, R14
	DECQ CX
	JNZ  invjloop

	LEAQ (BX)(R12*4), BX
	CMPQ BX, R8
	JB   invbaseloop

	VZEROUPPER
	RET

// func r4ColsPairs(a, b, c, d *complex128, np int, w1, w2 complex128)
TEXT ·r4ColsPairs(SB), NOSPLIT, $0-72
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ c+16(FP), DX
	MOVQ d+24(FP), AX
	MOVQ np+32(FP), CX

	VBROADCASTF128 w1+40(FP), Y10
	VSHUFPD        $0x5, Y10, Y10, Y11
	VBROADCASTF128 w2+56(FP), Y12
	VSHUFPD        $0x5, Y12, Y12, Y13
	VXORPD         signOdd<>(SB), Y13, Y14
	VSHUFPD        $0x5, Y14, Y14, Y15

pairloop:
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y2
	VMOVUPD (AX), Y3

	R4BODY

	VMOVUPD Y2, (DI)
	VMOVUPD Y4, (SI)
	VMOVUPD Y3, (DX)
	VMOVUPD Y5, (AX)

	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, AX
	DECQ CX
	JNZ  pairloop

	VZEROUPPER
	RET

// func r4ColsPairsInv(a, b, c, d *complex128, np int, w1, w2 complex128)
// Backward-direction broadcast butterfly: w3 = +i*w2 (signEven mask).
TEXT ·r4ColsPairsInv(SB), NOSPLIT, $0-72
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ c+16(FP), DX
	MOVQ d+24(FP), AX
	MOVQ np+32(FP), CX

	VBROADCASTF128 w1+40(FP), Y10
	VSHUFPD        $0x5, Y10, Y10, Y11
	VBROADCASTF128 w2+56(FP), Y12
	VSHUFPD        $0x5, Y12, Y12, Y13
	VXORPD         signEven<>(SB), Y13, Y14
	VSHUFPD        $0x5, Y14, Y14, Y15

invpairloop:
	VMOVUPD (DI), Y0
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y2
	VMOVUPD (AX), Y3

	R4BODY

	VMOVUPD Y2, (DI)
	VMOVUPD Y4, (SI)
	VMOVUPD Y3, (DX)
	VMOVUPD Y5, (AX)

	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, AX
	DECQ CX
	JNZ  invpairloop

	VZEROUPPER
	RET
