//go:build amd64

package xmath

// hasCvtASM gates the assembled VCVTPD2PS loop; it still requires the
// runtime hasAVX2FMA check (the instruction is VEX-encoded).
const hasCvtASM = true

// cvtQuadsPDPS narrows nq quads of float64 into float32, four
// elements per iteration; cvt_amd64.s.
//
//go:noescape
func cvtQuadsPDPS(dst *float32, src *float64, nq int)
