// Package energy models the power and energy measurements of
// Section VI-D: LIKWID-style package+DRAM readings for the CPU and
// PowerSensor-style full-device readings for the GPUs, integrated over
// the modelled kernel runtimes. It regenerates the energy distribution
// of one imaging cycle (Fig. 14) and the per-kernel energy efficiency
// (Fig. 15).
package energy

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/perfmodel"
)

// KernelEnergy is the modelled energy use of one kernel.
type KernelEnergy struct {
	Kernel   string
	Platform string
	Seconds  float64
	// DeviceJoules is the energy of the device itself (package+DRAM
	// for the CPU, the full PCI-E device for GPUs).
	DeviceJoules float64
	// GFlopsPerWatt is the efficiency in the units of Fig. 15
	// (FMA-flops only, excluding sincos, per device watt).
	GFlopsPerWatt float64
}

// Efficiency models one kernel's energy on a platform given its
// modelled runtime.
func Efficiency(p *arch.Platform, c perfmodel.KernelCounts) KernelEnergy {
	perf := perfmodel.Predict(p, c)
	e := KernelEnergy{
		Kernel:       c.Name,
		Platform:     p.Name,
		Seconds:      perf.Seconds,
		DeviceJoules: p.KernelPowerWatts * perf.Seconds,
	}
	if e.DeviceJoules > 0 {
		e.GFlopsPerWatt = c.Flops / e.DeviceJoules / 1e9
	}
	return e
}

// CycleEnergy is the modelled energy distribution of one imaging
// cycle (Fig. 14).
type CycleEnergy struct {
	Platform   string
	Gridder    KernelEnergy
	Degridder  KernelEnergy
	SubgridFFT KernelEnergy
	Adder      KernelEnergy
	Splitter   KernelEnergy
	// HostJoules is the host's consumption over the whole cycle
	// (zero for the CPU platform, where the host is the device).
	HostJoules float64
}

// DeviceTotal returns the device-side energy of the cycle.
func (c *CycleEnergy) DeviceTotal() float64 {
	return c.Gridder.DeviceJoules + c.Degridder.DeviceJoules +
		c.SubgridFFT.DeviceJoules + c.Adder.DeviceJoules + c.Splitter.DeviceJoules
}

// Total returns device plus host energy.
func (c *CycleEnergy) Total() float64 {
	return c.DeviceTotal() + c.HostJoules
}

// Cycle models the energy of one full imaging cycle on a platform.
func Cycle(p *arch.Platform, d perfmodel.Dataset) (CycleEnergy, error) {
	if err := d.Validate(); err != nil {
		return CycleEnergy{}, err
	}
	breakdown := perfmodel.ImagingCycle(p, d)
	gc := perfmodel.GridderCounts(d)
	dc := perfmodel.DegridderCounts(d)
	fc := perfmodel.SubgridFFTCounts(d)
	fc.Ops *= 2
	fc.Flops *= 2
	fc.DeviceBytes *= 2
	out := CycleEnergy{
		Platform:   p.Name,
		Gridder:    Efficiency(p, gc),
		Degridder:  Efficiency(p, dc),
		SubgridFFT: Efficiency(p, fc),
		Adder:      Efficiency(p, perfmodel.AdderCounts(d)),
		Splitter:   Efficiency(p, perfmodel.SplitterCounts(d)),
	}
	out.HostJoules = p.HostPowerWatts * breakdown.Total()
	return out, nil
}

// PowerSample is one reading of the simulated PowerSensor [31], which
// provides "power measurements at high time resolution" for
// per-kernel energy analysis.
type PowerSample struct {
	Seconds float64
	Watts   float64
}

// Trace simulates a PowerSensor capture of an imaging cycle: the
// device idles at 15% of its kernel power between kernels and draws
// KernelPowerWatts while one runs. dt is the sample spacing.
func Trace(p *arch.Platform, d perfmodel.Dataset, dt float64) ([]PowerSample, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("energy: non-positive sample spacing %g", dt)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	b := perfmodel.ImagingCycle(p, d)
	idle := 0.15 * p.KernelPowerWatts
	// Kernel schedule in execution order (gridding then degridding).
	type seg struct{ dur, watts float64 }
	segs := []seg{
		{b.Gridder.Seconds, p.KernelPowerWatts},
		{b.SubgridFFT.Seconds / 2, p.KernelPowerWatts},
		{b.Adder.Seconds, p.KernelPowerWatts},
		{0.02 * b.Total(), idle}, // inter-pass gap
		{b.Splitter.Seconds, p.KernelPowerWatts},
		{b.SubgridFFT.Seconds / 2, p.KernelPowerWatts},
		{b.Degridder.Seconds, p.KernelPowerWatts},
	}
	var out []PowerSample
	t := 0.0
	for _, s := range segs {
		end := t + s.dur
		for ; t < end; t += dt {
			out = append(out, PowerSample{Seconds: t, Watts: s.watts})
		}
	}
	return out, nil
}

// Integrate returns the energy of a power trace in joules
// (trapezoidal is unnecessary: samples are piecewise constant).
func Integrate(trace []PowerSample, dt float64) float64 {
	var e float64
	for _, s := range trace {
		e += s.Watts * dt
	}
	return e
}
