// Package core implements Image-Domain Gridding, the primary
// contribution of the paper: the gridder kernel (Algorithm 1), the
// degridder kernel (Algorithm 2), the subgrid FFTs, and the adder and
// splitter, together with the parallel pipelines that combine them
// into full gridding and degridding passes.
//
// # Phase conventions
//
// Visibilities follow the measurement equation (Eq. 1):
//
//	V(u,v,w) = sum_lm B(l,m) exp(-2*pi*i*(u*l + v*m + w*n)),
//
// with uvw in wavelengths and n = 1 - sqrt(1 - l^2 - m^2). A subgrid
// anchored at grid pixel (X0, Y0) covers uv offsets
// uOff = (X0 + N~/2 - N/2)/ImageSize (likewise vOff), and the gridder
// accumulates every pixel with the phasor
//
//	Phi = exp(+2*pi*i*((u-uOff)*l + (v-vOff)*m + (w-wOff)*n))
//
// so that after the A-term/taper correction and the centered forward
// FFT the subgrid tile drops into the grid at (X0, Y0) with no further
// phase fixups. The degridder uses the conjugate phasor.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sky"
	"repro/internal/taper"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// Precision selects the storage and arithmetic width of the kernel
// hot loops (the gathered visibility block, the phasor buffers and the
// accumulators). Phase arguments and sine/cosine seeds are always
// evaluated in float64; only the per-term storage and arithmetic
// narrow. See DESIGN.md ("Pixel tiling and precision") for the float32
// error bound and when not to use it.
type Precision int

const (
	// Float64 (the default) computes and accumulates in double
	// precision.
	Float64 Precision = iota
	// Float32 stores the planar visibility/pixel blocks, phasors and
	// accumulators as float32 — the paper's kernels are single
	// precision — halving hot-loop memory traffic at the cost of an
	// error that grows linearly with the work-item size
	// (xmath.Float32AccumBound plus the float32 rotation drift).
	Float32
)

func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// DefaultPixelTileRows is the default pixel-tile height in subgrid
// rows. Four rows of a 24-pixel subgrid give 96-pixel tiles: enough
// work to amortize the per-tile setup, small enough that even a
// two-subgrid pass fans out across a dozen cores.
const DefaultPixelTileRows = 4

// defaultVisBlockFloats bounds the planar visibility-block footprint
// the gridder streams per pixel: 2048 floats are 16 KB in float64
// (8 KB in float32), half a typical 32 KB L1 so the block stays
// resident across the whole pixel tile together with the accumulators
// and phasor state.
const defaultVisBlockFloats = 2048

// DefaultStreamChunkItems is the default number of work items per
// streaming chunk. At the paper's subgrid size (24 pixels, 4
// correlations) one chunk of 256 subgrids is ~9 MB of complex128
// pixels — large enough to amortize per-chunk scheduling, small enough
// that a handful of in-flight chunks stay far below grid memory.
const DefaultStreamChunkItems = 256

// DefaultCheckpointEvery is the default checkpoint period, in streamed
// chunks, when CheckpointDir is set without an explicit period. At the
// default chunk size that is ~4096 work items of progress per durable
// snapshot — frequent enough that a crash loses minutes, rare enough
// that grid serialization stays far below gridding time.
const DefaultCheckpointEvery = 16

// Params configures the IDG kernels.
type Params struct {
	// GridSize is the grid dimension in pixels.
	GridSize int
	// SubgridSize is the subgrid dimension N~ in pixels.
	SubgridSize int
	// ImageSize is the field-of-view extent in direction cosines.
	ImageSize float64
	// Frequencies are the channel center frequencies in Hz.
	Frequencies []float64
	// Sincos selects the sine/cosine evaluator; nil selects
	// xmath.SincosFast (the SVML-medium-accuracy equivalent).
	Sincos xmath.SincosFunc
	// Taper is the image-domain window applied to every subgrid; nil
	// selects the prolate spheroidal used by the paper.
	Taper func(nu float64) float64
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Observer receives pipeline metrics and stage/item/tile trace
	// spans (see internal/obs). nil disables observation entirely: the
	// hot path then pays one predictable branch per item and stage,
	// takes no timestamps and allocates nothing.
	Observer *obs.Observer
	// Precision selects float64 (default) or float32 kernel storage
	// and arithmetic.
	Precision Precision
	// PixelTileRows is the pixel-tile height in subgrid rows: each
	// subgrid's pixel loop is split into tiles of this many rows, which
	// become independently schedulable work units when a pipeline pass
	// has fewer work items than workers. <= 0 selects
	// DefaultPixelTileRows. Gridder results are identical for every
	// tile size; degridder results differ only by summation
	// association (within rounding).
	PixelTileRows int
	// VisBlockTimesteps bounds the time-step extent of the visibility
	// block the gridder streams per pixel, keeping the gathered planar
	// block cache-resident across a pixel tile. <= 0 selects an
	// L1-sized default (defaultVisBlockFloats). The block order never
	// changes per-pixel accumulation order, so results are identical
	// for every block size.
	VisBlockTimesteps int
	// GridShards splits the master uv-grid into this many independently
	// locked row bands for the sharded adder/splitter and enables the
	// streaming scheduler in the gridding pipelines. 0 (the default)
	// keeps the classic in-core batch pipeline; 1 is a single-shard
	// (one-lock) sharded path that accumulates in exact plan order and
	// reproduces the serial grid bit-for-bit; > 1 trades bitwise
	// reproducibility (reordering changes float association, ~1e-15
	// relative) for adder/splitter scaling. Values above the grid size
	// are clamped.
	GridShards int
	// MaxInflightChunks bounds how many streaming chunks may be between
	// gridder and adder at once, which bounds peak subgrid memory at
	// MaxInflightChunks x StreamChunkItems subgrids. <= 0 selects
	// 2 x workers when streaming is enabled.
	MaxInflightChunks int
	// StreamChunkItems is the number of work items per streaming chunk;
	// <= 0 selects DefaultStreamChunkItems.
	StreamChunkItems int
	// CheckpointDir, when non-empty, makes the streamed gridding pass
	// write a durable snapshot (grid + chunk cursor + fault report,
	// see internal/checkpoint) into this directory every
	// CheckpointEvery chunks and once more at the end. Setting it
	// enables the streaming scheduler like GridShards and
	// MaxInflightChunks do.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in streamed chunks;
	// <= 0 with a CheckpointDir selects DefaultCheckpointEvery.
	// Setting it without CheckpointDir is a validation error.
	CheckpointEvery int
	// CheckpointHook observes the scheduler's durability-critical
	// points (chunk commit, snapshot write, atomic rename). It is the
	// crash-injection seam of the kill-and-resume chaos tests — a hook
	// may panic to simulate a kill; nil in production.
	CheckpointHook checkpoint.Hook
	// DisablePixelTiling runs every subgrid as a single whole-subgrid
	// work unit (no intra-subgrid fan-out; used by the ablation
	// benchmarks).
	DisablePixelTiling bool
	// DisableVisBlocking streams each pixel's full time range in one
	// sweep instead of cache-sized blocks (used by the ablation
	// benchmarks; results are identical).
	DisableVisBlocking bool
	// DisableBatching selects the straightforward reference kernels
	// instead of the batch-blocked ones (used by the ablation
	// benchmarks; the results are identical to rounding).
	DisableBatching bool
	// DisablePhasorRecurrence forces one sine/cosine evaluation per
	// (pixel, time step, channel) even when the channel spacing is
	// uniform, instead of the phasor rotation recurrence (used by the
	// ablation benchmarks; the results are identical to within
	// xmath.PhasorErrorBound).
	DisablePhasorRecurrence bool
	// DisableVectorKernels forces the generic Go tile kernels even on
	// hardware where the hand-vectorized AVX2+FMA loops are available
	// (used by the ablation benchmarks and the property tests that
	// compare the two paths; results agree to within the same rounding
	// class as the scalar FMA split). Equivalent to running under
	// IDG_SIMD=scalar as far as tile selection goes, but scoped to one
	// Kernels value instead of the process.
	DisableVectorKernels bool
	// DisableFastFFT routes the subgrid FFT stage through the seed
	// implementation — rotate-based fftshift passes around a
	// per-column gather/scatter radix-2 transform — instead of the
	// fused-centering radix-4 engine with blocked column tiles (used
	// by the ablation benchmarks and the new-vs-old equivalence tests;
	// results agree to ~1e-15 relative, the reordered-summation
	// rounding class).
	DisableFastFFT bool

	// forceSIMD pins the dispatch tier of this Kernels value,
	// overriding xmath.ActiveSIMD (still clamped to the detected
	// hardware: forcing an unsupported tier would fault). It is the
	// in-process test seam behind the per-tier property tests — the
	// IDG_SIMD environment override resolves once per process, so
	// per-tier coverage inside one test binary needs a per-Kernels
	// knob. Unexported deliberately: production callers use IDG_SIMD.
	forceSIMD *xmath.SIMDTier
}

// Validate checks the parameters.
func (p *Params) Validate() error {
	switch {
	case p.GridSize < 2:
		return fmt.Errorf("core: grid size %d too small", p.GridSize)
	case p.SubgridSize < 2 || p.SubgridSize%2 != 0:
		return fmt.Errorf("core: subgrid size %d must be even and >= 2", p.SubgridSize)
	case p.SubgridSize > p.GridSize:
		return fmt.Errorf("core: subgrid %d exceeds grid %d", p.SubgridSize, p.GridSize)
	case p.ImageSize <= 0:
		return fmt.Errorf("core: image size %g must be positive", p.ImageSize)
	case len(p.Frequencies) == 0:
		return fmt.Errorf("core: no frequencies")
	case p.Precision != Float64 && p.Precision != Float32:
		return fmt.Errorf("core: unknown precision %d", int(p.Precision))
	case p.PixelTileRows < 0:
		return fmt.Errorf("core: negative pixel tile rows %d", p.PixelTileRows)
	case p.VisBlockTimesteps < 0:
		return fmt.Errorf("core: negative visibility block %d", p.VisBlockTimesteps)
	case p.GridShards < 0:
		return fmt.Errorf("core: negative grid shards %d", p.GridShards)
	case p.MaxInflightChunks < 0:
		return fmt.Errorf("core: negative max in-flight chunks %d", p.MaxInflightChunks)
	case p.StreamChunkItems < 0:
		return fmt.Errorf("core: negative stream chunk items %d", p.StreamChunkItems)
	case p.GridShards > p.GridSize:
		return fmt.Errorf("core: %d grid shards exceed the %d-row grid", p.GridShards, p.GridSize)
	case p.CheckpointEvery < 0:
		return fmt.Errorf("core: negative checkpoint period %d", p.CheckpointEvery)
	case p.CheckpointEvery > 0 && p.CheckpointDir == "":
		return fmt.Errorf("core: checkpoint period %d set without a checkpoint directory", p.CheckpointEvery)
	}
	for i, f := range p.Frequencies {
		if f <= 0 {
			return fmt.Errorf("core: frequency %d not positive: %g", i, f)
		}
	}
	return nil
}

func (p *Params) workers() int {
	if p.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Workers
}

// streamingEnabled reports whether the gridding pipelines should route
// through the sharded streaming scheduler. Any of the knobs opts in
// (checkpointing is only defined for streamed passes: the chunk cursor
// is its unit of progress); the others then take their defaults.
func (p *Params) streamingEnabled() bool {
	return p.GridShards > 0 || p.MaxInflightChunks > 0 || p.CheckpointDir != ""
}

// checkpointEnabled reports whether streamed passes write durable
// snapshots.
func (p *Params) checkpointEnabled() bool { return p.CheckpointDir != "" }

// checkpointEvery resolves the checkpoint period in chunks.
func (p *Params) checkpointEvery() int {
	if p.CheckpointEvery > 0 {
		return p.CheckpointEvery
	}
	return DefaultCheckpointEvery
}

// gridShards resolves the shard count: the configured value, or one
// shard per worker when only MaxInflightChunks opted into streaming.
func (p *Params) gridShards() int {
	if p.GridShards > 0 {
		return p.GridShards
	}
	return p.workers()
}

// maxInflight resolves the in-flight chunk bound; the default keeps
// every worker busy with one chunk while another is staged.
func (p *Params) maxInflight() int {
	if p.MaxInflightChunks > 0 {
		return p.MaxInflightChunks
	}
	return 2 * p.workers()
}

// chunkItems resolves the streaming chunk size in work items.
func (p *Params) chunkItems() int {
	if p.StreamChunkItems > 0 {
		return p.StreamChunkItems
	}
	return DefaultStreamChunkItems
}

// StreamChunkItemsResolved returns the effective streaming chunk size
// (the configured value or its default). Resume validation compares it
// against a checkpoint's recorded chunk size: the chunk cursor is only
// meaningful relative to the chunking it was counted in.
func (k *Kernels) StreamChunkItemsResolved() int { return k.params.chunkItems() }

// Kernels holds the precomputed state shared by all kernel
// invocations: per-pixel direction cosines, the taper map, wavenumber
// scales, and the subgrid FFT plan. Kernels is safe for concurrent
// use once built.
type Kernels struct {
	params Params

	// Per-pixel tables for the subgrid, indexed y*N~+x.
	l, m, n []float64
	taper   []float64

	// scale[c] = 2*pi * Frequencies[c] / c0 converts a phase index in
	// meters to radians for channel c.
	scale []float64

	// Phasor recurrence state: when the channel frequencies are
	// uniformly spaced (detected once here), the per-channel phase is
	// affine in the channel index and the batched kernels replace
	// per-channel sincos with rotations by dscale (radians per meter
	// per channel). Non-uniform plans fall back to the direct path.
	uniformScale bool
	dscale       float64
	rotator      xmath.PhasorRotator

	sincos xmath.SincosFunc
	sgFFT  *fft.Plan2D

	// fastFMA records whether math.FMA is a hardware instruction here;
	// the float64 hot loops then use the fused formulation (see
	// xmath.HasFastFMA).
	fastFMA bool

	// disp is the SIMD dispatch table resolved once at construction
	// (see dispatch.go): the active tier plus the vector tile kernels
	// it enables, already accounting for the IDG_SIMD override, the
	// DisableVectorKernels ablation and the forceSIMD test seam.
	disp simdDispatch

	// sincosVec evaluates a batch of phase arguments into parallel
	// sin/cos slices. With the default evaluator it is the lane-parallel
	// xmath.SincosVec (vecSincos true); with a configured Params.Sincos
	// it degrades to a loop over the scalar evaluator so results honor
	// the configuration.
	sincosVec func(sin, cos, x []float64)
	vecSincos bool

	// Per-worker buffer pools of the pipeline hot path (see
	// scratch.go). Both reach a steady state with zero allocations per
	// work item.
	scratchPool sync.Pool
	subgridPool sync.Pool

	// ob is the pre-resolved observability sink (nil when
	// Params.Observer is nil; see observe.go).
	ob *kernelObs
}

// NewKernels precomputes the kernel state for the given parameters.
func NewKernels(params Params) (*Kernels, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	k := &Kernels{params: params}
	sg := params.SubgridSize
	k.l = make([]float64, sg*sg)
	k.m = make([]float64, sg*sg)
	k.n = make([]float64, sg*sg)
	pixel := params.ImageSize / float64(sg)
	for y := 0; y < sg; y++ {
		mv := float64(y-sg/2) * pixel
		for x := 0; x < sg; x++ {
			lv := float64(x-sg/2) * pixel
			i := y*sg + x
			k.l[i] = lv
			k.m[i] = mv
			k.n[i] = sky.N(lv, mv)
		}
	}
	tf := params.Taper
	if tf == nil {
		tf = taper.Spheroidal
	}
	k.taper = taper.Window2D(sg, tf)
	k.scale = make([]float64, len(params.Frequencies))
	for c, f := range params.Frequencies {
		k.scale[c] = 2 * 3.141592653589793 * f / uvwsim.SpeedOfLight
	}
	k.sincos = params.Sincos
	if k.sincos == nil {
		k.sincos = xmath.SincosFast
	}
	// Detect uniform channel spacing once: the recurrence kernels only
	// engage when the per-channel phase step is constant. The relative
	// tolerance is tight (1e-12 of the band spread) so that treating a
	// nearly-uniform plan as uniform could never move a phase by more
	// than ~1e-10 rad over the kernels' argument range.
	if df, ok := xmath.UniformSpacing(params.Frequencies, 1e-12); ok && !params.DisablePhasorRecurrence {
		k.uniformScale = true
		k.dscale = 2 * math.Pi * df / uvwsim.SpeedOfLight
	}
	k.rotator = xmath.PhasorRotator{Sincos: k.sincos}
	k.fastFMA = xmath.HasFastFMA()
	tier := xmath.ActiveSIMD()
	if params.forceSIMD != nil {
		tier = *params.forceSIMD
		if tier > xmath.DetectedSIMD() {
			tier = xmath.DetectedSIMD()
		}
	}
	k.disp = dispatchFor(tier)
	if params.DisableVectorKernels {
		k.disp.gridVec64, k.disp.degridVec64 = nil, nil
		k.disp.gridVec32, k.disp.degridVec32 = nil, nil
	}
	if params.Sincos == nil {
		// Pin the batch evaluator to the resolved dispatch tier: bitwise
		// identical at every tier, but a forced/lowered tier then also
		// lowers the sincos lanes (so IDG_SIMD measurements mean what
		// they say) and the hot path skips the per-call tier lookup.
		sincosTier := k.disp.tier
		k.sincosVec = func(sin, cos, x []float64) {
			xmath.SincosVecAt(sincosTier, sin, cos, x)
		}
		k.vecSincos = true
	} else {
		sc := k.sincos
		k.sincosVec = func(sin, cos, x []float64) {
			for i, v := range x {
				sin[i], cos[i] = sc(v)
			}
		}
	}
	// Shared via the package cache: every Kernels value (and every
	// streamed chunk worker) reuses one immutable plan per size.
	k.sgFFT = fft.CachedPlan2D(sg, sg)
	k.scratchPool.New = func() any { return new(scratch) }
	k.subgridPool.New = func() any { return grid.NewSubgrid(sg, 0, 0) }
	k.ob = newKernelObs(params.Observer)
	return k, nil
}

// Params returns a copy of the kernel parameters.
func (k *Kernels) Params() Params { return k.params }

// tileRows resolves the configured pixel-tile height for a subgrid of
// the given row count.
func (k *Kernels) tileRows(rows int) int {
	if k.params.DisablePixelTiling {
		return rows
	}
	tr := k.params.PixelTileRows
	if tr <= 0 {
		tr = DefaultPixelTileRows
	}
	if tr > rows {
		tr = rows
	}
	return tr
}

// visBlockSteps resolves the time-step extent of one cache-blocked
// visibility batch for an item of nt time steps and nc channels.
func (k *Kernels) visBlockSteps(nt, nc int) int {
	if k.params.DisableVisBlocking {
		return nt
	}
	b := k.params.VisBlockTimesteps
	if b <= 0 {
		b = defaultVisBlockFloats / (8 * nc)
		if b < 4 {
			b = 4
		}
	}
	if b > nt {
		b = nt
	}
	return b
}

// uvOffset returns the uv offset of a subgrid anchored at (x0, y0), in
// wavelengths.
func (k *Kernels) uvOffset(x0, y0 int) (uOff, vOff float64) {
	n, sg := k.params.GridSize, k.params.SubgridSize
	uOff = float64(x0+sg/2-n/2) / k.params.ImageSize
	vOff = float64(y0+sg/2-n/2) / k.params.ImageSize
	return uOff, vOff
}
