// Command uvcoverage renders the uv-plane coverage of a synthetic
// observation (Fig. 8 of the paper) as an ASCII density plot and,
// optionally, a PGM image.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/layout"
	"repro/internal/report"
	"repro/internal/uvwsim"
)

func main() {
	var (
		stations = flag.Int("stations", 150, "number of stations")
		steps    = flag.Int("steps", 512, "time steps to sample")
		width    = flag.Int("width", 96, "ASCII raster width")
		pgm      = flag.String("pgm", "", "optional PGM output path")
		pgmSize  = flag.Int("pgm-size", 512, "PGM raster size")
	)
	flag.Parse()

	cfg := layout.SKA1LowConfig()
	cfg.NrStations = *stations
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	baselines := sim.Baselines()
	fmt.Printf("%d stations, %d baselines, %d time steps\n", *stations, len(baselines), *steps)

	var us, vs []float64
	for _, b := range baselines {
		for t := 0; t < *steps; t += 4 {
			c := sim.UVW(b.P, b.Q, t)
			us = append(us, c.U, -c.U)
			vs = append(vs, c.V, -c.V)
		}
	}
	fmt.Print(report.Scatter(us, vs, *width, *width/2))

	if *pgm != "" {
		n := *pgmSize
		img := make([]float64, n*n)
		max := 0.0
		for i := range us {
			if a := abs(us[i]); a > max {
				max = a
			}
			if a := abs(vs[i]); a > max {
				max = a
			}
		}
		for i := range us {
			x := int((us[i]/max + 1) / 2 * float64(n-1))
			y := int((vs[i]/max + 1) / 2 * float64(n-1))
			img[y*n+x]++
		}
		// Log compression for the dense core.
		for i, v := range img {
			if v > 0 {
				img[i] = 1 + math.Log(v)
			}
		}
		f, err := os.Create(*pgm)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := report.WritePGM(f, img, n, n); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *pgm)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "uvcoverage:", err)
	os.Exit(1)
}
