#!/bin/sh
# End-to-end smoke of the gridding service: boot idgserver on a
# kernel-assigned loopback port, run a short multi-tenant idgload pass
# with -verify (every session's grid SHA-256 must match the locally
# computed golden hash), then SIGTERM the server and require a clean
# graceful drain — idgserver exits non-zero if any session survives
# its drain, and this script propagates both exit codes.
set -eux

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -KILL "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/idgserver" ./cmd/idgserver
go build -o "$workdir/idgload" ./cmd/idgload

"$workdir/idgserver" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -drain-timeout 10s >"$workdir/server.log" 2>&1 &
server_pid=$!

# Wait for the server to publish its bound address.
i=0
while [ ! -s "$workdir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "idgserver never published its address" >&2
        cat "$workdir/server.log" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/server.log" >&2; exit 1; }
    sleep 0.1
done
addr="$(cat "$workdir/addr")"

# A small verified load: 2 tenants x 2 sessions of a tiny observation.
# -verify makes this a conformance check, not just a smoke test: the
# wire-streamed grids must hash identically to the local pass.
"$workdir/idgload" -addr "http://$addr" \
    -tenants 2 -sessions 2 -concurrency 2 \
    -stations 6 -steps 16 -channels 2 -grid 128 -subgrid 16 \
    -verify

# Graceful drain: SIGTERM, then the server must exit 0 (it exits 1 on
# a non-empty session registry after drain).
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
server_pid=""
cat "$workdir/server.log"
exit "$server_rc"
