package grid

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Sharded partitions a master uv-grid into contiguous row bands
// ("shards"), each guarded by its own mutex, so many workers can
// accumulate (or extract) overlapping subgrids concurrently without
// funnelling every update through one lock. Two subgrids contend only
// when they overlap the same band, so with S shards the adder scales
// toward min(workers, S) instead of serializing.
//
// Rows are the natural partition axis: subgrids are row-contiguous
// rectangles, so one subgrid touches at most
// ceil(SubgridSize/rowsPerShard)+1 shards, and each shard update is a
// run of full cache lines. The bands need not divide the grid evenly;
// NewSharded balances them to within one row.
//
// A Sharded also counts lock acquisitions and contended acquisitions
// per shard, the raw signal behind the obs contention metrics.
type Sharded struct {
	g      *Grid
	bounds []int // len(shards)+1; shard i owns rows [bounds[i], bounds[i+1])
	shards []shardState
}

// shardState is one row band's lock and counters, padded out to its
// own cache line so neighbouring shards' locks don't false-share.
type shardState struct {
	mu        sync.Mutex
	locks     atomic.Int64
	contended atomic.Int64
	_         [64 - 8 - 16]byte
}

// NewSharded wraps g in a sharded accessor with the given number of
// row bands. shards is clamped to [1, g.N]; values <= 0 select one
// shard (a single lock, the degenerate but still concurrency-safe
// layout).
func NewSharded(g *Grid, shards int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	if shards > g.N {
		shards = g.N
	}
	sh := &Sharded{g: g, shards: make([]shardState, shards)}
	sh.bounds = ShardBounds(g.N, shards)
	return sh
}

// ShardBounds returns the balanced row partition of n rows into the
// given number of bands: a slice of shards+1 boundaries where band i
// owns rows [bounds[i], bounds[i+1]). The first n%shards bands get one
// extra row, so the partition is exact for every (n, shards) pair.
func ShardBounds(n, shards int) []int {
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	bounds := make([]int, shards+1)
	base, rem := n/shards, n%shards
	row := 0
	for i := 0; i < shards; i++ {
		bounds[i] = row
		row += base
		if i < rem {
			row++
		}
	}
	bounds[shards] = n
	return bounds
}

// Master returns the underlying grid. Reading it is only safe once no
// concurrent AddSubgrid/CopySubgrid calls are in flight.
func (sh *Sharded) Master() *Grid { return sh.g }

// NumShards returns the number of row bands.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Bounds returns the row range [lo, hi) owned by shard i.
func (sh *Sharded) Bounds(i int) (lo, hi int) {
	return sh.bounds[i], sh.bounds[i+1]
}

// ShardOfRow returns the shard owning grid row y. The balanced
// partition makes this a closed form: the first rem shards have
// base+1 rows, the rest base.
func (sh *Sharded) ShardOfRow(y int) int {
	n, s := sh.g.N, len(sh.shards)
	base, rem := n/s, n%s
	split := rem * (base + 1)
	if y < split {
		return y / (base + 1)
	}
	return rem + (y-split)/base
}

// shardSpan returns the inclusive shard index range a subgrid's rows
// overlap.
func (sh *Sharded) shardSpan(s *Subgrid) (lo, hi int) {
	return sh.ShardOfRow(s.Y0), sh.ShardOfRow(s.Y0 + s.N - 1)
}

// lock acquires shard si's mutex, counting the acquisition and
// whether it was contended; it reports contention to the caller for
// per-batch metric deltas.
func (st *shardState) lock() (contended bool) {
	if st.mu.TryLock() {
		st.locks.Add(1)
		return false
	}
	st.mu.Lock()
	st.locks.Add(1)
	st.contended.Add(1)
	return true
}

// AddSubgridShard accumulates the rows of s that fall into shard si
// onto the master grid, holding only that shard's lock. It returns
// whether the lock acquisition was contended. Rows of s outside the
// shard are untouched; callers iterate the range given by
// ShardOfRow(s.Y0) .. ShardOfRow(s.Y0+s.N-1).
func (sh *Sharded) AddSubgridShard(s *Subgrid, si int) (contended bool) {
	if !s.InBounds(sh.g.N) {
		panic(fmt.Sprintf("grid: subgrid (%d,%d)+%d outside %d-pixel sharded grid", s.X0, s.Y0, s.N, sh.g.N))
	}
	lo, hi := sh.bounds[si], sh.bounds[si+1]
	if lo < s.Y0 {
		lo = s.Y0
	}
	if hi > s.Y0+s.N {
		hi = s.Y0 + s.N
	}
	if lo >= hi {
		return false
	}
	st := &sh.shards[si]
	contended = st.lock()
	g := sh.g
	for y := lo; y < hi; y++ {
		sy := y - s.Y0
		for c := 0; c < NrCorrelations; c++ {
			dst := g.Data[c][y*g.N+s.X0 : y*g.N+s.X0+s.N]
			src := s.Data[c][sy*s.N : (sy+1)*s.N]
			for x := range dst {
				dst[x] += src[x]
			}
		}
	}
	st.mu.Unlock()
	return contended
}

// AddSubgrid accumulates the whole subgrid onto the master grid,
// locking each overlapped shard in turn. It returns the number of
// shard locks taken and how many of them were contended.
func (sh *Sharded) AddSubgrid(s *Subgrid) (locks, contended int) {
	lo, hi := sh.shardSpan(s)
	for si := lo; si <= hi; si++ {
		locks++
		if sh.AddSubgridShard(s, si) {
			contended++
		}
	}
	return locks, contended
}

// CopySubgridShard extracts the rows of shard si covered by s from the
// master grid into s, holding that shard's lock so the copy is
// coherent with concurrent adders. It returns whether the lock was
// contended.
func (sh *Sharded) CopySubgridShard(s *Subgrid, si int) (contended bool) {
	if !s.InBounds(sh.g.N) {
		panic(fmt.Sprintf("grid: subgrid (%d,%d)+%d outside %d-pixel sharded grid", s.X0, s.Y0, s.N, sh.g.N))
	}
	lo, hi := sh.bounds[si], sh.bounds[si+1]
	if lo < s.Y0 {
		lo = s.Y0
	}
	if hi > s.Y0+s.N {
		hi = s.Y0 + s.N
	}
	if lo >= hi {
		return false
	}
	st := &sh.shards[si]
	contended = st.lock()
	g := sh.g
	for y := lo; y < hi; y++ {
		sy := y - s.Y0
		for c := 0; c < NrCorrelations; c++ {
			copy(s.Data[c][sy*s.N:(sy+1)*s.N], g.Data[c][y*g.N+s.X0:y*g.N+s.X0+s.N])
		}
	}
	st.mu.Unlock()
	return contended
}

// CopySubgrid extracts the whole subgrid from the master grid under
// per-shard locks (the locked splitter primitive). It returns the
// lock and contention counts like AddSubgrid.
func (sh *Sharded) CopySubgrid(s *Subgrid) (locks, contended int) {
	lo, hi := sh.shardSpan(s)
	for si := lo; si <= hi; si++ {
		locks++
		if sh.CopySubgridShard(s, si) {
			contended++
		}
	}
	return locks, contended
}

// LockStats returns per-shard cumulative lock acquisition and
// contention counts since construction.
func (sh *Sharded) LockStats() (locks, contended []int64) {
	locks = make([]int64, len(sh.shards))
	contended = make([]int64, len(sh.shards))
	for i := range sh.shards {
		locks[i] = sh.shards[i].locks.Load()
		contended[i] = sh.shards[i].contended.Load()
	}
	return locks, contended
}

// Zero clears the master grid under all shard locks (safe next to
// concurrent adders, though the result then depends on interleaving).
func (sh *Sharded) Zero() {
	for i := range sh.shards {
		sh.shards[i].mu.Lock()
	}
	sh.g.Zero()
	for i := range sh.shards {
		sh.shards[i].mu.Unlock()
	}
}
