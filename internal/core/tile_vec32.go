package core

// The hand-vectorized float32 tile kernels: eight-lane analogues of
// gridTileVec / degridTileVec driving the AVX2+FMA PS loops in
// kernels32_amd64.s. A YMM register holds eight float32 lanes, so one
// rotAccOcts iteration covers eight channels and one conjAccOcts /
// rotOcts iteration covers eight pixels — twice the elements per
// instruction of the float64 quad kernels at the same instruction
// count, which is the whole point of running the paper's
// single-precision kernels in float32.
//
// Phase arguments, sincos seeding and the lane-seeding rotations stay
// float64 (the same policy as the scalar float32 tiles: a float32
// phase would lose ~1e-3 rad at the kernels' argument magnitudes);
// only the stored lane phasors, the rotator and the accumulation
// narrow to float32. In-register lane rotation then drifts in float32,
// which is why the resync chunk stays at xmath.DefaultPhasorResync
// channels: the drift class is xmath.Float32PhasorDriftBound, the same
// as the scalar float32 recurrence.

import (
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// chunkOcts is the resync cadence of the float32 vector gridder in
// channel octs: after chunkOcts iterations of rotAccOcts (8 channels
// each) the phasor lanes are re-seeded from an exact float64
// evaluation, preserving the xmath.DefaultPhasorResync drift cadence.
const chunkOcts = xmath.DefaultPhasorResync / 8

// seedOctLanes fills one 18-wide phasor register block for the oct
// kernels from an exact chunk-base evaluation (s0, c0) and the
// per-channel delta phasor (ds, dc): lane k holds exp(i*(base +
// k*delta)) — lanes 1-3 by single-delta rotations, lanes 4-7 as lanes
// 0-3 rotated by exp(i*4*delta) — and slots 16/17 hold the
// eight-channel rotator exp(i*8*delta). Everything runs and is stored
// in float64; the caller narrows whole blocks at once with
// xmath.CvtF64F32 (bitwise equal to per-element conversion, an order
// of magnitude cheaper than the 18 scalar converts this function
// would otherwise pay per time step).
func seedOctLanes(ph *[18]float64, s0, c0, ds, dc float64) {
	ds2, dc2 := 2*ds*dc, dc*dc-ds*ds
	ds4, dc4 := 2*ds2*dc2, dc2*dc2-ds2*ds2
	s1, c1 := s0*dc+c0*ds, c0*dc-s0*ds
	s2, c2 := s1*dc+c1*ds, c1*dc-s1*ds
	s3, c3 := s2*dc+c2*ds, c2*dc-s2*ds
	ph[0], ph[8] = s0, c0
	ph[1], ph[9] = s1, c1
	ph[2], ph[10] = s2, c2
	ph[3], ph[11] = s3, c3
	ph[4], ph[12] = s0*dc4+c0*ds4, c0*dc4-s0*ds4
	ph[5], ph[13] = s1*dc4+c1*ds4, c1*dc4-s1*ds4
	ph[6], ph[14] = s2*dc4+c2*ds4, c2*dc4-s2*ds4
	ph[7], ph[15] = s3*dc4+c3*ds4, c3*dc4-s3*ds4
	ph[16], ph[17] = 2*ds4*dc4, dc4*dc4-ds4*ds4
}

// gridTileVec32 is gridTileVec at eight float32 lanes. The eight
// phasor lanes hold channels c..c+7 (seedOctLanes), and rotAccOcts
// advances all lanes by exp(i*8*delta) per iteration. Each pixel owns
// eight accumulators of eight lanes each (scratch b32.vacc), persisted
// across visibility blocks and folded
// ((l0+l4)+(l1+l5))+((l2+l6)+(l3+l7)) — the conjAccOcts reduce order —
// only when the tile finishes, so the per-pixel result is independent
// of the tile and block decomposition. Leftover channels (nc mod 8)
// accumulate scalar-style into lane 0 with a float32 rotation, the
// same error class as the lanes.
//
// When a single resync chunk covers every channel and there is no tail
// (nc a multiple of 8, at most xmath.DefaultPhasorResync — the paper's
// channel counts), the per-timestep phasor blocks of a whole
// visibility block are staged into scratch (b32.phv) and swept by one
// rotAccOctsBlk call per (pixel, block): at small nc the per-call
// accumulator load/store otherwise costs as much as the useful FMA
// work. The blocked kernel replays the identical per-(t, channel)
// operation sequence, so its results are bitwise equal to the per-t
// form and the decomposition-independence property is untouched. With
// several chunks or a tail the blocked sweep would reorder the
// accumulation (all t of chunk 0, then all t of chunk 1, ...), which
// WOULD break decomposition independence — those shapes keep the
// per-t calls.
func gridTileVec32(k *Kernels, item plan.WorkItem, uvw []uvwsim.UVW, sb *scratch, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, ts *scratch, row0, row1 int) {
	sg := k.params.SubgridSize
	nt, nc := item.NrTimesteps, item.NrChannels
	re, im := visPlanes[float32](sb, nt*nc)
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	pix0, pix1 := row0*sg, row1*sg
	vacc := grow(&ts.b32.vacc, 64*(pix1-pix0))
	for i := range vacc {
		vacc[i] = 0
	}
	no := nc / 8
	tail0 := 8 * no
	scale0 := k.scale[item.Channel0]
	block := k.visBlockSteps(nt, nc)
	// Batched-seeding layout, per time step of a block: one argument
	// slot per resync chunk (its base phase), one for the channel tail
	// when nc mod 8 != 0, and one for the per-channel delta.
	nchunks := (no + chunkOcts - 1) / chunkOcts
	seeds := nchunks
	if tail0 < nc {
		seeds++
	}
	stride := seeds + 1
	blocked := no > 0 && nchunks == 1 && tail0 == nc
	// On the AVX-512 tier the blocked kernel runs two pixels per call
	// (rotAccOctsBlk2, EVEX registers for the second pixel's state),
	// sharing the visibility loads. Per-pixel results are bitwise equal
	// to single-pixel calls, and SincosVec's batch independence keeps
	// the doubled seeding batch bitwise equal too, so pairing parity
	// cannot leak into the result.
	pairs := blocked && k.disp.tier >= xmath.SIMDAVX512
	np1 := 1
	if pairs {
		np1 = 2
	}
	// ph is the register file handed to rotAccOcts: per-lane phasor
	// sin [0:8] and cos [8:16], then the eight-channel rotator sin/cos.
	// phd18 is its float64 staging (see seedOctLanes).
	var ph [18]float32
	var phd18 [18]float64
	for t0 := 0; t0 < nt; t0 += block {
		t1 := t0 + block
		if t1 > nt {
			t1 = nt
		}
		bn := t1 - t0
		arg := growF(&ts.sArg, np1*stride*bn)
		asn := growF(&ts.sSin, np1*stride*bn)
		acs := growF(&ts.sCos, np1*stride*bn)
		var phv []float32
		var phd []float64
		if blocked {
			phv = grow(&ts.b32.phv, np1*18*bn)
			phd = growF(&ts.sPhd, np1*18*bn)
		}
		for i := pix0; i < pix1; i++ {
			np := 1
			if pairs && i+1 < pix1 {
				np = 2
			}
			for p := 0; p < np; p++ {
				l, m, n := k.l[i+p], k.m[i+p], k.n[i+p]
				phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
				po := p * stride * bn
				for t := t0; t < t1; t++ {
					c3 := uvw[t]
					phaseIndex := c3.U*l + c3.V*m + c3.W*n
					base := phaseIndex*scale0 - phaseOffset
					delta := phaseIndex * k.dscale
					if blocked {
						// Planar layout (bases, then deltas) so the
						// vectorized seeding loads contiguously.
						o := po + (t - t0)
						arg[o] = base
						arg[o+bn] = delta
						continue
					}
					o := po + stride*(t-t0)
					for ci := 0; ci < nchunks; ci++ {
						arg[o+ci] = base + float64(8*ci*chunkOcts)*delta
					}
					if tail0 < nc {
						arg[o+seeds-1] = base + float64(tail0)*delta
					}
					arg[o+seeds] = delta
				}
			}
			na := np * stride * bn
			k.sincosVec(asn[:na], acs[:na], arg[:na])
			a := vacc[64*(i-pix0) : 64*(i-pix0)+64]
			if blocked {
				for p := 0; p < np; p++ {
					po := p * stride * bn
					pb := phd[p*18*bn:]
					ng := bn / 4
					if ng > 0 {
						seedOctsBlk(&pb[0], &asn[po], &acs[po],
							&asn[po+bn], &acs[po+bn], ng)
					}
					for r := 4 * ng; r < bn; r++ {
						seedOctLanes((*[18]float64)(pb[18*r:]),
							asn[po+r], acs[po+r], asn[po+bn+r], acs[po+bn+r])
					}
				}
				xmath.CvtF64F32(phv[:np*18*bn], phd[:np*18*bn])
				jj := t0 * nc
				// visAdj is 0: with no tail, the channel loop already
				// leaves the visibility pointers at the next time step.
				if np == 2 {
					a2 := vacc[64*(i+1-pix0) : 64*(i+1-pix0)+64]
					rotAccOctsBlk2(&a[0], &a2[0],
						&re[0][jj], &im[0][jj], &re[1][jj], &im[1][jj],
						&re[2][jj], &im[2][jj], &re[3][jj], &im[3][jj],
						no, &phv[0], &phv[18*bn], bn, 0, 18*4)
					i++
				} else {
					rotAccOctsBlk(&a[0],
						&re[0][jj], &im[0][jj], &re[1][jj], &im[1][jj],
						&re[2][jj], &im[2][jj], &re[3][jj], &im[3][jj],
						no, &phv[0], bn, 0, 18*4)
				}
				continue
			}
			for t := t0; t < t1; t++ {
				o := stride * (t - t0)
				ds, dc := asn[o+seeds], acs[o+seeds]
				j := t * nc
				for ci, o0 := 0, 0; o0 < no; ci, o0 = ci+1, o0+chunkOcts {
					on := no - o0
					if on > chunkOcts {
						on = chunkOcts
					}
					seedOctLanes(&phd18, asn[o+ci], acs[o+ci], ds, dc)
					xmath.CvtF64F32(ph[:], phd18[:])
					jj := j + 8*o0
					rotAccOcts(&a[0],
						&re[0][jj], &im[0][jj], &re[1][jj], &im[1][jj],
						&re[2][jj], &im[2][jj], &re[3][jj], &im[3][jj],
						on, &ph[0])
				}
				if tail0 < nc {
					sv, cv := float32(asn[o+seeds-1]), float32(acs[o+seeds-1])
					dsf, dcf := float32(ds), float32(dc)
					for c := tail0; c < nc; c++ {
						jj := j + c
						vr, vi := re[0][jj], im[0][jj]
						a[0] += vr*cv - vi*sv
						a[8] += vr*sv + vi*cv
						vr, vi = re[1][jj], im[1][jj]
						a[16] += vr*cv - vi*sv
						a[24] += vr*sv + vi*cv
						vr, vi = re[2][jj], im[2][jj]
						a[32] += vr*cv - vi*sv
						a[40] += vr*sv + vi*cv
						vr, vi = re[3][jj], im[3][jj]
						a[48] += vr*cv - vi*sv
						a[56] += vr*sv + vi*cv
						sv, cv = sv*dcf+cv*dsf, cv*dcf-sv*dsf
					}
				}
			}
		}
	}
	for i := pix0; i < pix1; i++ {
		v := vacc[64*(i-pix0) : 64*(i-pix0)+64]
		// Lane fold ((l0+l4)+(l1+l5))+((l2+l6)+(l3+l7)), matching the
		// in-register reduce of conjAccOcts; any fixed order preserves
		// decomposition independence, since the lanes themselves are.
		var q [8]float32
		for p := 0; p < 8; p++ {
			v8 := v[8*p : 8*p+8]
			q[p] = ((v8[0] + v8[4]) + (v8[1] + v8[5])) + ((v8[2] + v8[6]) + (v8[3] + v8[7]))
		}
		sum := xmath.Matrix2{
			complex(float64(q[0]), float64(q[1])), complex(float64(q[2]), float64(q[3])),
			complex(float64(q[4]), float64(q[5])), complex(float64(q[6]), float64(q[7])),
		}
		k.storePixel(out, i, sum, atermP, atermQ)
	}
}

// degridTileVec32 is degridTileVec at eight float32 lanes: the
// per-pixel phasor rotation pass runs through rotOcts and the
// conjugate accumulation through conjAccOcts, eight pixels per
// instruction, with a scalar float32 loop covering the n mod 8 pixel
// tail. Seed and resync sweeps evaluate in batched float64
// (Kernels.sincosVec into the scratch sSin/sCos staging) and narrow
// once into the float32 phasor buffers. Tail pixels and the lane fold
// combine in a local accumulator before touching dst, preserving the
// one-addition-per-element property degridSubgridTiled's serial ≡
// parallel bitwise guarantee rests on.
func degridTileVec32(k *Kernels, item plan.WorkItem, sb *scratch, uvw []uvwsim.UVW, ts *scratch, row0, row1 int, dst []float32) {
	sg := k.params.SubgridSize
	nc := item.NrChannels
	i0, i1 := row0*sg, row1*sg
	n := i1 - i0
	no := n / 8
	tail0 := 8 * no
	tb := &ts.b32
	pIdx := growF(&ts.pIdx, n)
	phRe := grow(&tb.phRe, n)
	phIm := grow(&tb.phIm, n)
	useRec := k.useRecurrence(nc)
	var dRe, dIm []float32
	if useRec {
		dRe = grow(&tb.dRe, n)
		dIm = grow(&tb.dIm, n)
	}
	l, m, nn := k.l[i0:i1], k.m[i0:i1], k.n[i0:i1]
	pre, pim := visPlanes[float32](sb, sg*sg)
	off := sb.pOff[i0:i1]
	var tpre, tpim [4][]float32
	for p := 0; p < 4; p++ {
		tpre[p] = pre[p][i0:i1]
		tpim[p] = pim[p][i0:i1]
	}
	scale0 := k.scale[item.Channel0]
	arg := growF(&ts.sArg, 2*n)
	asn := growF(&ts.sSin, 2*n)
	acs := growF(&ts.sCos, 2*n)
	for t := 0; t < item.NrTimesteps; t++ {
		c3 := uvw[t]
		for i := 0; i < n; i++ {
			pIdx[i] = c3.U*l[i] + c3.V*m[i] + c3.W*nn[i]
		}
		if useRec {
			// Seed the per-pixel phasors at channel 0 and the delta
			// phasors exp(i*pIdx*dscale) in one batched evaluation, then
			// narrow into the float32 phasor state.
			for i := 0; i < n; i++ {
				arg[i] = pIdx[i]*scale0 - off[i]
				arg[n+i] = pIdx[i] * k.dscale
			}
			k.sincosVec(asn, acs, arg)
			xmath.CvtF64F32(phIm, asn[:n])
			xmath.CvtF64F32(phRe, acs[:n])
			xmath.CvtF64F32(dIm, asn[n:])
			xmath.CvtF64F32(dRe, acs[n:])
		}
		for c := 0; c < nc; c++ {
			scale := k.scale[item.Channel0+c]
			switch {
			case !useRec, c != 0 && c%xmath.DefaultPhasorResync == 0:
				for i := 0; i < n; i++ {
					arg[i] = pIdx[i]*scale - off[i]
				}
				k.sincosVec(asn, acs, arg[:n])
				xmath.CvtF64F32(phIm, asn[:n])
				xmath.CvtF64F32(phRe, acs[:n])
			case c == 0:
				// Seeded above.
			default:
				if no > 0 {
					rotOcts(&phRe[0], &phIm[0], &dRe[0], &dIm[0], no)
				}
				for i := tail0; i < n; i++ {
					s, co := phIm[i], phRe[i]
					phIm[i] = s*dRe[i] + co*dIm[i]
					phRe[i] = co*dRe[i] - s*dIm[i]
				}
			}
			// As in degridTileVec: dst sees exactly ONE addition per
			// element per (t, c).
			var t8 [8]float32
			for i := tail0; i < n; i++ {
				cr, ci := phRe[i], -phIm[i] // conjugate phasor
				vr, vi := tpre[0][i], tpim[0][i]
				t8[0] += vr*cr - vi*ci
				t8[1] += vr*ci + vi*cr
				vr, vi = tpre[1][i], tpim[1][i]
				t8[2] += vr*cr - vi*ci
				t8[3] += vr*ci + vi*cr
				vr, vi = tpre[2][i], tpim[2][i]
				t8[4] += vr*cr - vi*ci
				t8[5] += vr*ci + vi*cr
				vr, vi = tpre[3][i], tpim[3][i]
				t8[6] += vr*cr - vi*ci
				t8[7] += vr*ci + vi*cr
			}
			if no > 0 {
				conjAccOcts(&t8[0], &phRe[0], &phIm[0],
					&tpre[0][0], &tpim[0][0], &tpre[1][0], &tpim[1][0],
					&tpre[2][0], &tpim[2][0], &tpre[3][0], &tpim[3][0], no)
			}
			out := (*[8]float32)(dst[8*(t*nc+c):])
			for j := 0; j < 8; j++ {
				out[j] += t8[j]
			}
		}
	}
}
