package xmath

import "math"

// The gridder and degridder evaluate phasors exp(i*phase(c)) over the
// channels of a work item. Van der Tol et al. (A&A 2018, the IDG
// method paper) observe that the phase is an affine function of
// frequency: for equally spaced channels, phase(c) = base + c*delta
// with a delta that is constant for a given (pixel, time step). A full
// sine/cosine evaluation per channel can therefore be replaced by two
// evaluations (base and delta) plus one complex multiplication per
// remaining channel — the phasor rotation recurrence implemented here.
//
// # Error bound
//
// One recurrence step rotates a unit phasor by the delta phasor using
// four multiplications and two additions in float64. Rotation by a
// unit complex number is backward stable: each step adds the rounding
// of a 2-term dot product of values <= 1 (at most (2*sqrt(2)+1)*eps
// across both components) plus the once-rounded delta phasor acting as
// a constant angular error (at most sqrt(2)*eps per step), so after k
// steps the components deviate from the exactly evaluated sin/cos by
// less than the conservative envelope
//
//	k * 6 * eps  +  (error of the seed evaluations),
//
// with eps = 2^-52. With the default re-sync interval
// K = DefaultPhasorResync = 64 the drift term stays below
// 64 * 6 * 2.22e-16 ≈ 8.5e-14 (PhasorDriftBound returns it).
//
// Comparing against a *directly evaluated* reference adds one more
// term: the direct path rounds its argument base + k*delta once at the
// argument's own magnitude, so the two computations may disagree by up
// to |phase| * eps before any trigonometry happens. PhasorErrorBound
// combines both terms; for the kernels' |phase| <= 1e4 argument range
// (Section VI-C of the IPDPS paper) it evaluates to ≈ 2.3e-12, and the
// property tests assert it against SincosAccurate.
// Seeding with an approximate evaluator (SincosFast, SincosLUT) adds
// that evaluator's own error on top, exactly as in the direct path, so
// the recurrence never changes the accuracy class of a kernel.
type PhasorRotator struct {
	// Sincos seeds and re-syncs the recurrence; nil means
	// SincosAccurate.
	Sincos SincosFunc
	// Resync is the re-sync interval K: an exact evaluation replaces
	// the recurrence every K entries, bounding the drift. <= 0 means
	// DefaultPhasorResync.
	Resync int
}

// DefaultPhasorResync is the default re-sync interval K of the
// recurrence. 64 keeps the drift below ~8.5e-14 (see PhasorDriftBound)
// while amortizing the two seed evaluations over long channel runs.
const DefaultPhasorResync = 64

// PhasorDriftBound returns the worst-case absolute drift of sin/cos
// after k recurrence steps from an exact seed: k * 6 * eps.
func PhasorDriftBound(k int) float64 {
	const eps = 0x1p-52
	return float64(k) * 6 * eps
}

// PhasorErrorBound is the documented maximum absolute deviation of the
// recurrence from directly evaluating its seed evaluator at
// base + k*delta, for phases up to maxAbsPhase in magnitude and the
// given re-sync interval (<= 0 means DefaultPhasorResync): the
// rotation drift plus the differing argument rounding of the two
// computations. The property tests enforce it.
func PhasorErrorBound(resync int, maxAbsPhase float64) float64 {
	const eps = 0x1p-52
	if resync <= 0 {
		resync = DefaultPhasorResync
	}
	return PhasorDriftBound(resync) + maxAbsPhase*eps
}

func (r PhasorRotator) evaluator() SincosFunc {
	if r.Sincos == nil {
		return SincosAccurate
	}
	return r.Sincos
}

func (r PhasorRotator) resync() int {
	if r.Resync <= 0 {
		return DefaultPhasorResync
	}
	return r.Resync
}

// Fill stores sin(base + k*delta) and cos(base + k*delta) into sin[k]
// and cos[k] for k = 0..len(sin)-1 using the rotation recurrence,
// re-syncing with an exact evaluation every Resync entries. Both
// slices must have equal length.
func (r PhasorRotator) Fill(sin, cos []float64, base, delta float64) {
	if len(sin) != len(cos) {
		panic("xmath: phasor buffers must have equal length")
	}
	n := len(sin)
	if n == 0 {
		return
	}
	f := r.evaluator()
	resync := r.resync()
	ds, dc := f(delta)
	for start := 0; start < n; start += resync {
		s, c := f(base + float64(start)*delta)
		sin[start], cos[start] = s, c
		end := start + resync
		if end > n {
			end = n
		}
		for i := start + 1; i < end; i++ {
			s, c = s*dc+c*ds, c*dc-s*ds
			sin[i], cos[i] = s, c
		}
	}
}

// UniformSpacing reports whether xs is an (approximately) arithmetic
// progression, and returns its common difference. The tolerance is
// relative to the spread of xs: every gap must match the mean gap to
// within rtol*(max-min). Sequences of fewer than two elements and any
// two-element sequence are trivially uniform.
func UniformSpacing(xs []float64, rtol float64) (delta float64, ok bool) {
	if len(xs) < 2 {
		return 0, true
	}
	delta = (xs[len(xs)-1] - xs[0]) / float64(len(xs)-1)
	tol := rtol * math.Abs(xs[len(xs)-1]-xs[0])
	if tol == 0 {
		tol = rtol * math.Abs(xs[0])
	}
	for i := 1; i < len(xs); i++ {
		if math.Abs(xs[i]-xs[i-1]-delta) > tol {
			return 0, false
		}
	}
	return delta, true
}
