// Command imager runs the full imaging cycle of Fig. 2 on a synthetic
// observation: simulate visibilities for a hidden sky, grid them with
// IDG, inverse-FFT to a dirty image, extract sources with Högbom
// CLEAN, predict the model visibilities with IDG degridding, subtract,
// and image the residual. It writes dirty.pgm, restored.pgm and
// residual.pgm and prints the recovered source list.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/clean"
	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/report"
	"repro/internal/sky"
	"repro/internal/weight"
	"repro/internal/xmath"

	"repro"
)

func main() {
	var (
		stations = flag.Int("stations", 20, "number of stations")
		steps    = flag.Int("steps", 128, "time steps")
		channels = flag.Int("channels", 8, "channels")
		gridSize = flag.Int("grid", 512, "grid size in pixels")
		sources  = flag.Int("sources", 3, "number of synthetic sources")
		iters    = flag.Int("clean-iterations", 300, "CLEAN minor cycles")
		outDir   = flag.String("out", ".", "output directory for PGM images")
		scheme   = flag.String("weighting", "natural", "imaging weighting: natural, uniform or robust")
		robust   = flag.Float64("robust", 0.0, "Briggs robustness parameter (weighting=robust)")
		policy   = flag.String("fault-policy", "fail-fast", "work-item failure policy: fail-fast, retry or skip-and-flag")
		retries  = flag.Int("max-retries", 0, "retries per failed work item (retry/skip-and-flag policies)")
		flagClip = flag.Float64("flag-clip", 0, "flag visibilities with amplitude above this (0 disables)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 disables)")
		trace    = flag.String("trace", "", "write a chrome://tracing timeline of the pipeline stages to this file")
		metrics  = flag.Bool("metrics", false, "print the pipeline metrics registry at exit")
		shards   = flag.Int("grid-shards", 0, "shard the uv-grid into this many locked row bands and stream gridding (0: classic batch pipeline)")
		inflight = flag.Int("max-inflight", 0, "bound on in-flight streaming chunks; implies streaming when set (0: 2x workers)")
		ckptDir  = flag.String("checkpoint-dir", "", "write durable checkpoints of the imaging gridding pass into this directory (implies streamed gridding)")
		ckptEach = flag.Int("checkpoint-every", 0, "checkpoint period in streamed chunks (0 with -checkpoint-dir: a default period)")
		resume   = flag.Bool("resume", false, "resume the imaging gridding pass from the newest valid checkpoint in -checkpoint-dir")
	)
	flag.Parse()

	// Mirror the facade's config validation so bad knobs fail here with
	// a usage-shaped message instead of deep inside Build.
	switch {
	case *shards < 0:
		fail(fmt.Errorf("-grid-shards must be >= 0, got %d", *shards))
	case *shards > *gridSize:
		fail(fmt.Errorf("-grid-shards %d exceeds the %d-row grid", *shards, *gridSize))
	case *inflight < 0:
		fail(fmt.Errorf("-max-inflight must be >= 0, got %d", *inflight))
	case *ckptEach < 0:
		fail(fmt.Errorf("-checkpoint-every must be >= 0, got %d", *ckptEach))
	case *ckptEach > 0 && *ckptDir == "":
		fail(fmt.Errorf("-checkpoint-every needs -checkpoint-dir"))
	case *resume && *ckptDir == "":
		fail(fmt.Errorf("-resume needs -checkpoint-dir"))
	}

	// The run is cancellable: Ctrl-C (or the -timeout deadline) aborts
	// the pipelines promptly with ErrCanceled instead of hanging.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	pol, err := repro.ParseFaultPolicy(*policy)
	if err != nil {
		fail(err)
	}
	ft := repro.FaultConfig{Policy: pol, MaxRetries: *retries}

	cfg := repro.DefaultObservation()
	cfg.NrStations = *stations
	cfg.NrTimesteps = *steps
	cfg.NrChannels = *channels
	cfg.GridSize = *gridSize
	cfg.GridMargin = *gridSize / 16
	cfg.GridShards = *shards
	cfg.MaxInflightChunks = *inflight
	cfg.CheckpointDir = *ckptDir
	cfg.CheckpointEvery = *ckptEach

	// Observation is opt-in: every IDG pass below (imaging, PSF,
	// prediction, residual) reports into the same observer.
	var observer *repro.Observer
	if *trace != "" || *metrics {
		observer = repro.NewObserver(0)
		cfg.Observer = observer
	}

	obs, err := cfg.Build()
	if err != nil {
		fail(err)
	}
	// Log the resolved kernel dispatch once at startup when measuring:
	// metric numbers are only interpretable next to the SIMD tier and
	// sincos evaluator that produced them.
	if *metrics {
		fmt.Println(obs.Kernels.SIMDInfo())
		fmt.Println("fft: " + fft.EngineInfo())
	}
	n := cfg.GridSize
	pix := obs.ImageSize / float64(n)

	// Hidden sky: a few well-separated sources inside the clean beam
	// area.
	truth := make(repro.SkyModel, 0, *sources)
	offsets := [][3]float64{{40, -24, 1.0}, {-72, 52, 0.6}, {16, 88, 0.4}, {-30, -70, 0.3}, {95, 10, 0.25}}
	for i := 0; i < *sources && i < len(offsets); i++ {
		truth = append(truth, repro.PointSource{
			L: offsets[i][0] * pix, M: offsets[i][1] * pix, I: offsets[i][2],
		})
	}
	fmt.Printf("observing %d hidden sources with %d stations, %d steps, %d channels\n",
		len(truth), *stations, *steps, *channels)
	if err := obs.FillFromModel(truth); err != nil {
		fail(err)
	}

	// Flag corrupt samples (NaN/Inf always; amplitude clipping on
	// request) so they enter the gridder with zero weight.
	fstats, err := obs.FlagVisibilities(repro.FlaggingConfig{NonFinite: true, MaxAmplitude: *flagClip})
	if err != nil {
		fail(err)
	}
	if fstats.NewlyFlagged() > 0 {
		fmt.Println(fstats)
	}

	// Imaging weights (natural keeps unit weights).
	var schemeID weight.Scheme
	switch *scheme {
	case "natural":
		schemeID = weight.Natural
	case "uniform":
		schemeID = weight.Uniform
	case "robust":
		schemeID = weight.Robust
	default:
		fail(fmt.Errorf("unknown weighting %q", *scheme))
	}
	weights, err := weight.Compute(weight.Config{
		Scheme: schemeID, Robust: *robust,
		GridSize: *gridSize, ImageSize: obs.ImageSize,
	}, obs.Vis.UVW, cfg.Frequencies())
	if err != nil {
		fail(err)
	}
	totalWeight := weight.Apply(obs.Vis, weights, cfg.Frequencies())
	fmt.Printf("weighting: %s (total weight %.3g)\n", schemeID, totalWeight)

	// --- Imaging: gridding + inverse FFT (Fig. 2 left branch). With
	// -checkpoint-dir the pass writes durable snapshots as it streams;
	// -resume continues from the newest valid one instead of starting
	// over (a clean directory degrades to a full run with a note).
	var (
		g      *repro.Grid
		times  repro.StageTimes
		faults *repro.FaultReport
	)
	if *resume {
		g, times, faults, err = obs.ResumeStreamed(ctx, nil, ft)
	} else {
		g, times, faults, err = obs.GridAllFT(ctx, nil, ft)
	}
	if err != nil {
		fail(err)
	}
	for _, note := range faults.Notes {
		fmt.Println("note:", note)
	}
	if faults.Degraded() {
		fmt.Println(faults)
	}
	if *ckptDir != "" {
		// Only the imaging pass checkpoints: the PSF and residual
		// passes below grid different visibilities over the same plan,
		// so letting them write into the same directory would leave
		// snapshots a later -resume could not tell apart.
		p := obs.Kernels.Params()
		p.CheckpointDir, p.CheckpointEvery = "", 0
		k, err := core.NewKernels(p)
		if err != nil {
			fail(err)
		}
		obs.Kernels = k
	}
	st := obs.Plan.Stats()
	norm := float64(n*n) / totalWeight
	dirty := core.GridToImage(g, 0)
	core.ScaleImage(dirty, norm)
	corr := obs.Kernels.TaperCorrection(n)
	core.ApplyTaperCorrection(dirty, corr)
	dirtyI := sky.StokesI(dirty)
	writePGM(*outDir, "dirty.pgm", dirtyI, n)
	fmt.Printf("gridded %d visibilities (gridder %.2fs, fft %.2fs [%.1f%% of pass], adder %.2fs)\n",
		st.NrGriddedVisibilities, times.Gridder.Seconds(), times.SubgridFFT.Seconds(),
		100*times.SubgridFFT.Seconds()/times.Total().Seconds(), times.Adder.Seconds())

	// --- PSF: grid unit visibilities.
	psfVis := obs.Vis
	unit := repro.SkyModel{{L: 0, M: 0, I: 1}}
	backup := cloneVis(psfVis)
	if err := obs.FillFromModel(unit); err != nil {
		fail(err)
	}
	weight.Apply(obs.Vis, weights, cfg.Frequencies())
	pg, _, err := obs.GridAll(ctx, nil)
	if err != nil {
		fail(err)
	}
	psfImg := core.GridToImage(pg, 0)
	core.ScaleImage(psfImg, norm)
	core.ApplyTaperCorrection(psfImg, corr)
	psf := sky.StokesI(psfImg)
	restoreVis(psfVis, backup)

	// --- CLEAN (Fig. 2: "source extraction").
	res, err := clean.Hogbom(dirtyI, psf, n, clean.Params{
		Gain: 0.15, MaxIterations: *iters, Threshold: 0.02,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("CLEAN: %d iterations, residual peak %.4f\n", res.Iterations, res.FinalPeak)

	t := report.NewTable("x", "y", "flux(Jy)", "true flux")
	model := make(repro.SkyModel, 0, len(res.MergedComponents()))
	for _, c := range res.MergedComponents() {
		if c.Flux < 0.05 {
			continue
		}
		l, m := sky.PixelToLM(c.X, c.Y, n, obs.ImageSize)
		model = append(model, repro.PointSource{L: l, M: m, I: c.Flux})
		trueFlux := "-"
		for _, s := range truth {
			sx, sy := sky.LMToPixel(s.L, s.M, n, obs.ImageSize)
			if sx == c.X && sy == c.Y {
				trueFlux = fmt.Sprintf("%.3f", s.I)
			}
		}
		t.AddRow(c.X, c.Y, c.Flux, trueFlux)
	}
	t.Render(os.Stdout)

	// --- Predict (Fig. 2 right branch): FFT + degridding, subtract.
	modelImg := model.Rasterize(n, obs.ImageSize)
	mg := core.ImageToGrid(modelImg, 0)
	predicted, err := core.NewVisibilitySet(obs.Vis.Baselines, obs.Vis.UVW, obs.Vis.NrChannels)
	if err != nil {
		fail(err)
	}
	if _, err := obs.Kernels.DegridVisibilities(ctx, obs.Plan, predicted, nil, mg); err != nil {
		fail(err)
	}
	weight.Apply(predicted, weights, cfg.Frequencies())
	for b := range obs.Vis.Data {
		for i := range obs.Vis.Data[b] {
			obs.Vis.Data[b][i] = obs.Vis.Data[b][i].Sub(predicted.Data[b][i])
		}
	}
	rg, _, err := obs.GridAll(ctx, nil)
	if err != nil {
		fail(err)
	}
	resImg := core.GridToImage(rg, 0)
	core.ScaleImage(resImg, norm)
	core.ApplyTaperCorrection(resImg, corr)
	resI := sky.StokesI(resImg)
	writePGM(*outDir, "residual.pgm", resI, n)

	peak := 0.0
	for _, v := range resI {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("residual image peak after model subtraction: %.4f (dirty peak was %.4f)\n",
		peak, maxOf(dirtyI))

	restored := clean.Restore(res, n, 2.0)
	writePGM(*outDir, "restored.pgm", restored, n)
	fmt.Printf("wrote %s\n", filepath.Join(*outDir, "{dirty,residual,restored}.pgm"))

	if *metrics {
		fmt.Println("\npipeline metrics (all passes):")
		observer.Metrics.Snapshot().Table().Render(os.Stdout)
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		if err := observer.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d spans, %d dropped) - load it in chrome://tracing or ui.perfetto.dev\n",
			*trace, observer.Tracer.Len(), observer.Tracer.Dropped())
	}
}

func cloneVis(vs *repro.VisibilitySet) [][]xmath.Matrix2 {
	out := make([][]xmath.Matrix2, len(vs.Data))
	for b := range vs.Data {
		out[b] = append([]xmath.Matrix2(nil), vs.Data[b]...)
	}
	return out
}

func restoreVis(vs *repro.VisibilitySet, backup [][]xmath.Matrix2) {
	for b := range vs.Data {
		copy(vs.Data[b], backup[b])
	}
}

func maxOf(img []float64) float64 {
	m := 0.0
	for _, v := range img {
		if v > m {
			m = v
		}
	}
	return m
}

func writePGM(dir, name string, img []float64, n int) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := report.WritePGM(f, img, n, n); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "imager:", err)
	os.Exit(1)
}
