// Package obs is the pipeline observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms) and a
// stage tracer recording per-stage spans with worker and tile
// attribution. The core pipelines report into it through
// core.Params.Observer; the paper's evaluation method — measure every
// kernel, never guess (Fig. 9, the roofline of Fig. 11) — is only
// reproducible with this kind of instrumentation.
//
// Cost model: every instrument handle (Counter, Gauge, Histogram) is
// nil-safe, so producers hold pre-resolved (possibly nil) pointers and
// pay a single predictable branch when observation is disabled. With a
// nil Observer the hot paths do no time.Now calls, no map lookups and
// no allocations; see DESIGN.md ("Observability") for the measured
// budget.
package obs

// Stage identifies one pipeline stage in metrics names and trace
// spans.
type Stage string

// Pipeline stages traced by internal/core.
const (
	// StageGrid is the gridder kernel (Algorithm 1).
	StageGrid Stage = "grid"
	// StageFFT is the subgrid FFT batch (forward or inverse).
	StageFFT Stage = "fft"
	// StageAdd is the adder (subgrids onto the grid).
	StageAdd Stage = "add"
	// StageSplit is the splitter (subgrids out of the grid).
	StageSplit Stage = "split"
	// StageDegrid is the degridder kernel (Algorithm 2).
	StageDegrid Stage = "degrid"
	// StageTile is one pixel tile of a work item, recorded only when
	// tiles fan out across workers (runTiles with par > 1).
	StageTile Stage = "tile"
	// StageShard is one locked row-band update of the sharded adder or
	// splitter: the overlap of one subgrid with one grid shard. Shard
	// spans carry the shard index and the subgrid's W-layer.
	StageShard Stage = "shard"
	// StageWPlane is one W-layer of a W-stacked pass.
	StageWPlane Stage = "wplane"
	// StageCycle is the imaging phase (grid + invert + peak) of one
	// major cycle.
	StageCycle Stage = "cycle"
)

// Metric names registered by the core pipelines. Exported so tests and
// commands address the registry without stringly-typed drift.
const (
	// MetricGridVisibilities counts visibilities processed by the
	// gridder (flagged samples included: they enter with zero weight).
	MetricGridVisibilities = "grid_visibilities_total"
	// MetricDegridVisibilities counts visibilities predicted by the
	// degridder.
	MetricDegridVisibilities = "degrid_visibilities_total"
	// MetricGridSubgrids counts work items completed by the gridder.
	MetricGridSubgrids = "grid_subgrids_total"
	// MetricDegridSubgrids counts work items completed by the degridder.
	MetricDegridSubgrids = "degrid_subgrids_total"
	// MetricFFTSubgrids counts subgrids Fourier-transformed (both
	// directions).
	MetricFFTSubgrids = "fft_subgrids_total"
	// MetricAddedSubgrids counts subgrids accumulated onto the grid.
	MetricAddedSubgrids = "add_subgrids_total"
	// MetricSplitSubgrids counts subgrids extracted from the grid.
	MetricSplitSubgrids = "split_subgrids_total"
	// MetricFlaggedVisibilities counts flagged (zero-weight) samples
	// seen by the gridder.
	MetricFlaggedVisibilities = "grid_flagged_visibilities_total"
	// MetricItemRetries counts work items that needed more than one
	// attempt before succeeding (faulttol Retry policy).
	MetricItemRetries = "pipeline_item_retries_total"
	// MetricItemSkips counts work items abandoned under SkipAndFlag.
	MetricItemSkips = "pipeline_item_skips_total"
	// MetricKernelPanics counts kernel panics recovered by faulttol.Run
	// (every failed attempt, not just final outcomes).
	MetricKernelPanics = "pipeline_kernel_panics_total"
	// MetricDroppedVisibilities counts visibilities lost to skipped
	// items.
	MetricDroppedVisibilities = "pipeline_dropped_visibilities_total"
	// MetricWPlanes counts W-layers processed by the W-stacked passes.
	MetricWPlanes = "wstack_planes_total"
	// MetricMajorCycles counts imaging major cycles executed.
	MetricMajorCycles = "cycle_major_total"
	// MetricKernelPathReference counts kernel invocations dispatched
	// to the straightforward reference kernels (DisableBatching).
	MetricKernelPathReference = "kernel_path_reference_total"
	// MetricKernelPathTiled32 counts invocations of the generic tiled
	// float32 kernels.
	MetricKernelPathTiled32 = "kernel_path_tiled_float32_total"
	// MetricKernelPathTiled64 counts invocations of the generic tiled
	// float64 kernels.
	MetricKernelPathTiled64 = "kernel_path_tiled_float64_total"
	// MetricKernelPathVector counts invocations of the hand-vectorized
	// AVX2 float64 tile kernels (4 lanes).
	MetricKernelPathVector = "kernel_path_vector_total"
	// MetricKernelPathVector32 counts invocations of the hand-vectorized
	// AVX2 float32 tile kernels (8 lanes).
	MetricKernelPathVector32 = "kernel_path_vector_float32_total"
	// MetricShardLocks counts shard-lock acquisitions by the sharded
	// adder and splitter (one per subgrid x shard overlap).
	MetricShardLocks = "grid_shard_locks_total"
	// MetricShardContention counts shard-lock acquisitions that found
	// the lock held and had to wait. The ratio to MetricShardLocks is
	// the write-contention probability; raise Params.GridShards when it
	// climbs.
	MetricShardContention = "grid_shard_contention_total"
	// MetricStreamChunks counts work chunks completed by the streaming
	// scheduler.
	MetricStreamChunks = "stream_chunks_total"
	// GaugeStreamInflight holds the number of chunks currently in
	// flight in the streaming scheduler (grid -> FFT -> add).
	GaugeStreamInflight = "stream_inflight_chunks"
	// GaugeStreamPeakSubgrids holds the peak number of subgrids
	// simultaneously alive during the latest streamed pass; the memory
	// bound MaxInflightChunks x chunk size is checked against it.
	GaugeStreamPeakSubgrids = "stream_peak_inflight_subgrids"
	// GaugeResidualPeak holds the residual peak entering the latest
	// major cycle.
	GaugeResidualPeak = "cycle_residual_peak"
	// HistItemSeconds is the per-work-item wall time distribution.
	HistItemSeconds = "pipeline_item_seconds"
	// MetricRetryAttempts counts the extra (beyond-first) attempts
	// consumed by work items that eventually succeeded. Together with
	// MetricItemRetries (items that needed retries at all) it shows
	// how hard the retry policy is working: attempts/items is the mean
	// retry depth of a degraded run.
	MetricRetryAttempts = "pipeline_retry_attempts_total"
	// HistRetryItemSeconds is the wall-time distribution of work items
	// that needed more than one attempt — retry latency including the
	// failed attempts and any backoff sleeps.
	HistRetryItemSeconds = "pipeline_retry_item_seconds"
	// MetricCheckpointWrites counts durable streaming checkpoints
	// published (temp file synced and renamed into place).
	MetricCheckpointWrites = "checkpoint_writes_total"
	// MetricCheckpointBytes sums the sizes of published checkpoints.
	MetricCheckpointBytes = "checkpoint_bytes_total"
	// MetricCheckpointRestores counts resumed passes that continued
	// from a restored snapshot (clean restarts don't count).
	MetricCheckpointRestores = "checkpoint_restores_total"
	// HistCheckpointWriteSeconds is the distribution of checkpoint
	// write durations (serialization + fsync + rename).
	HistCheckpointWriteSeconds = "checkpoint_write_seconds"
)

// StageNsMetric returns the name of the cumulative wall-clock counter
// (nanoseconds) of a pipeline stage, e.g. "stage_grid_ns_total".
func StageNsMetric(s Stage) string { return "stage_" + string(s) + "_ns_total" }

// Observer bundles the two observation sinks the pipelines report
// into. Either field may be nil to observe only metrics or only
// spans; a nil *Observer disables observation entirely (the
// zero-overhead default).
type Observer struct {
	// Metrics receives counters, gauges and histograms.
	Metrics *Registry
	// Tracer receives stage/item/tile spans.
	Tracer *Tracer
}

// New returns an Observer with a fresh registry and a tracer bounded
// to maxSpans spans (<= 0 selects DefaultMaxSpans).
func New(maxSpans int) *Observer {
	return &Observer{Metrics: NewRegistry(), Tracer: NewTracer(maxSpans)}
}
