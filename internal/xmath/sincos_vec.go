package xmath

import "math"

// Lane-parallel sine/cosine. SincosVec (and the fixed-width
// SincosFast4 / SincosFast8 views of it) evaluates the same Cody-Waite
// reduction + fdlibm minimax polynomials as SincosFast, but across
// SIMD lanes: four float64 lanes per iteration on the AVX2 tier, eight
// on the AVX-512 tier. This is the paper's vectorized-trigonometry
// ingredient (its Haswell kernels lean on SVML's packed sine/cosine):
// the subgrid kernels need one sin/cos pair per (pixel, time step) and
// evaluate them in batches.
//
// Accuracy: the documented bound of SincosFast extends to the lane
// version — a maximum error of 4 float32 ulps (4 * 6e-8) against
// math.Sincos over the kernels' argument range |x| <= ~1e4 (property
// tested per tier). The lane arithmetic fuses the reduction and the
// polynomial steps, so individual results differ from scalar
// SincosFast in the last float64 bits while staying inside the same
// bound.
//
// Determinism: every tier computes the exact same IEEE-754 operation
// sequence per element (sincosFastFMA below is that sequence in
// portable Go, the asm lanes mirror it operation for operation), so
// results are bitwise identical across tiers, platforms, batch sizes
// and lane positions. Kernel outputs therefore do not depend on the
// IDG_SIMD override or on how a caller chops its batches.

// SincosVec evaluates sin[i], cos[i] = sin(x[i]), cos(x[i]) for every
// element of x, lane-parallel on the active SIMD tier. sin and cos
// must be at least len(x) long; sin, cos and x must not overlap.
func SincosVec(sin, cos, x []float64) {
	if len(sin) < len(x) || len(cos) < len(x) {
		panic("xmath: SincosVec output shorter than input")
	}
	sincosVecTier(ActiveSIMD(), sin, cos, x)
}

// SincosVecAt is SincosVec pinned to an explicit tier, clamped to the
// detected one (running a wider tier than the host supports would
// fault). Results are bitwise identical at every tier; the point is
// that callers which resolve a dispatch tier once per kernel set (see
// internal/core) skip the per-call active-tier lookup and honor a
// forced tier for performance measurements.
func SincosVecAt(tier SIMDTier, sin, cos, x []float64) {
	if len(sin) < len(x) || len(cos) < len(x) {
		panic("xmath: SincosVec output shorter than input")
	}
	if tier > detectedSIMD {
		tier = detectedSIMD
	}
	sincosVecTier(tier, sin, cos, x)
}

// SincosFast4 is the fixed-width four-lane form of SincosVec.
func SincosFast4(sin, cos, x *[4]float64) {
	sincosVecTier(ActiveSIMD(), sin[:], cos[:], x[:])
}

// SincosFast8 is the fixed-width eight-lane form of SincosVec.
func SincosFast8(sin, cos, x *[8]float64) {
	sincosVecTier(ActiveSIMD(), sin[:], cos[:], x[:])
}

// sincosFastFMA is the exact per-element operation sequence of the
// vector lanes, in portable Go: SincosFast's reduction and polynomials
// with every mul-add pair fused, round-to-even in the reduction (the
// SIMD rounding mode), and branch-free sign application. It is the
// scalar tail of the vector paths and the entire scalar tier, which is
// what makes SincosVec bitwise tier-independent. math.FMA and
// math.RoundToEven compile to single instructions on amd64/arm64.
func sincosFastFMA(x float64) (float64, float64) {
	const (
		s1 = -1.66666666666666324348e-01
		s2 = 8.33333333332248946124e-03
		s3 = -1.98412698298579493134e-04
		s4 = 2.75573137070700676789e-06
		s5 = -2.50507602534068634195e-08
		s6 = 1.58969099521155010221e-10
		c1 = 4.16666666666666019037e-02
		c2 = -1.38888888888741095749e-03
		c3 = 2.48015872894767294178e-05
		c4 = -2.75573143513906633035e-07
		c5 = 2.08757232129817482790e-09
		c6 = -1.13596475577881948265e-11
	)
	k := math.RoundToEven(x * invTwoPi)
	r := math.FMA(-k, twoPiA, x)
	r = math.FMA(-k, twoPiB, r)
	// Fold into [-pi/2, pi/2]; both conditions test the unfolded r and
	// are mutually exclusive, matching the blend order of the asm.
	folded := false
	if r > math.Pi/2 {
		r = math.Pi - r
		folded = true
	}
	if r < -math.Pi/2 {
		r = -math.Pi - r
		folded = true
	}
	z := r * r
	p := s6
	p = math.FMA(p, z, s5)
	p = math.FMA(p, z, s4)
	p = math.FMA(p, z, s3)
	p = math.FMA(p, z, s2)
	p = math.FMA(p, z, s1)
	sin := math.FMA(p, r*z, r)
	q := c6
	q = math.FMA(q, z, c5)
	q = math.FMA(q, z, c4)
	q = math.FMA(q, z, c3)
	q = math.FMA(q, z, c2)
	q = math.FMA(q, z, c1)
	cos := math.FMA(q, z*z, 1-0.5*z)
	if folded {
		cos = -cos
	}
	return sin, cos
}

// sincosVecScalar is the portable element loop shared by the scalar
// tier and the vector paths' tails.
func sincosVecScalar(sin, cos, x []float64) {
	for i, v := range x {
		sin[i], cos[i] = sincosFastFMA(v)
	}
}
