package faulttol

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDelay(t *testing.T) {
	c := Config{RetryBackoff: 10 * time.Millisecond}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 0}, // not an attempt number Run would produce
		{1, 0}, // first attempt never waits
		{2, 10 * time.Millisecond},
		{3, 20 * time.Millisecond},
		{4, 40 * time.Millisecond},
		{5, 80 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := c.BackoffDelay(tc.attempt); got != tc.want {
			t.Errorf("BackoffDelay(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	if got := (Config{}).BackoffDelay(3); got != 0 {
		t.Errorf("zero config BackoffDelay = %v, want 0", got)
	}
	// The shift is capped so huge attempt numbers cannot overflow into
	// a negative or absurd delay.
	huge := Config{RetryBackoff: time.Nanosecond}.BackoffDelay(1000)
	if huge <= 0 || huge > time.Nanosecond<<20 {
		t.Errorf("capped delay = %v", huge)
	}
}

func TestBackoffBudgetUnlimited(t *testing.T) {
	b := NewBackoffBudget(Config{RetryBackoff: time.Nanosecond})
	for i := 0; i < 100; i++ {
		if !b.Sleep(context.Background(), time.Nanosecond) {
			t.Fatal("unlimited budget refused a sleep")
		}
	}
	if b.Exhausted() {
		t.Fatal("unlimited budget reported exhausted")
	}
}

func TestBackoffBudgetExhaustion(t *testing.T) {
	c := Config{RetryBackoff: time.Millisecond, RetryBudget: 2 * time.Millisecond}
	b := NewBackoffBudget(c)
	ctx := context.Background()
	// 1ms + 1ms drain the budget exactly; the third sleep finds nothing
	// left and is refused.
	if !b.Sleep(ctx, time.Millisecond) || !b.Sleep(ctx, time.Millisecond) {
		t.Fatal("budget refused sleeps it could afford")
	}
	if b.Exhausted() {
		t.Fatal("exhausted too early")
	}
	if b.Sleep(ctx, time.Millisecond) {
		t.Fatal("budget allowed a sleep past exhaustion")
	}
	if !b.Exhausted() {
		t.Fatal("Exhausted() false after a refused sleep")
	}
	// Zero-length sleeps stay free even when the budget is gone.
	if !b.Sleep(ctx, 0) {
		t.Fatal("zero-length sleep charged against the budget")
	}
}

func TestBackoffBudgetCanceledContext(t *testing.T) {
	b := NewBackoffBudget(Config{RetryBackoff: time.Millisecond, RetryBudget: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if b.Sleep(ctx, time.Millisecond) {
		t.Fatal("sleep succeeded on a canceled context")
	}
	if b.Exhausted() {
		t.Fatal("cancellation must not mark the budget exhausted")
	}
}

func TestReportStateRoundTrip(t *testing.T) {
	rep := NewReport(Config{Policy: SkipAndFlag})
	rep.ItemsProcessed = 7
	rep.ItemsRetried = 2
	rep.ItemsSkipped = 1
	rep.DroppedVisibilities = 640

	st := rep.State()
	restored := NewReport(Config{Policy: SkipAndFlag})
	restored.RestoreState(st)
	if restored.ItemsProcessed != 7 || restored.ItemsRetried != 2 ||
		restored.ItemsSkipped != 1 || restored.DroppedVisibilities != 640 {
		t.Fatalf("restored report %+v", restored)
	}
}

func TestReportNotes(t *testing.T) {
	rep := NewReport(Config{})
	rep.AddNote("checkpoint: fell back one snapshot")
	if rep.Degraded() {
		t.Fatal("a note alone must not mark the run degraded")
	}
	other := NewReport(Config{})
	other.AddNote("faulttol: retry backoff budget exhausted; remaining failures were not retried")
	rep.Merge(other)
	if len(rep.Notes) != 2 {
		t.Fatalf("merged notes = %v", rep.Notes)
	}
}
