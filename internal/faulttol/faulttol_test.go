package faulttol

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
)

func TestPolicyStringRoundtrip(t *testing.T) {
	for _, p := range []Policy{FailFast, Retry, SkipAndFlag} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("explode"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if s := Policy(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown policy String() = %q", s)
	}
}

func TestConfigAttempts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Policy: FailFast}, 1},
		{Config{Policy: Retry}, 2},
		{Config{Policy: Retry, MaxRetries: 3}, 4},
		{Config{Policy: SkipAndFlag}, 1},
		{Config{Policy: SkipAndFlag, MaxRetries: 2}, 3},
	}
	for _, c := range cases {
		if got := c.cfg.Attempts(); got != c.want {
			t.Errorf("%+v: Attempts() = %d, want %d", c.cfg, got, c.want)
		}
	}
}

func TestRunPassesThroughResults(t *testing.T) {
	if err := Run(func() error { return nil }); err != nil {
		t.Fatalf("nil-returning fn: %v", err)
	}
	sentinel := errors.New("boom")
	if err := Run(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error-returning fn: %v", err)
	}
}

func TestRunConvertsPanicToKernelPanic(t *testing.T) {
	err := Run(func() error { panic("index out of range") })
	if !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("panic not classified as kernel panic: %v", err)
	}
	if errors.Is(err, ErrBadInput) {
		t.Fatalf("plain panic classified as bad input: %v", err)
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Fatalf("panic value lost: %v", err)
	}
}

func TestRunPreservesBadInputPanics(t *testing.T) {
	cause := fmt.Errorf("%w: mismatched buffers", ErrBadInput)
	err := Run(func() error { panic(cause) })
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad-input panic not typed: %v", err)
	}
	if errors.Is(err, ErrKernelPanic) {
		t.Fatalf("bad-input panic double-classified as kernel panic: %v", err)
	}
}

func TestCanceledWrapsBothSentinels(t *testing.T) {
	err := Canceled(context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("not ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context sentinel lost: %v", err)
	}
	if !errors.Is(Canceled(nil), ErrCanceled) {
		t.Fatal("Canceled(nil) not ErrCanceled")
	}
}

func TestItemErrorFormatsAndUnwraps(t *testing.T) {
	ie := &ItemError{Baseline: 7, TimeStart: 32, Channel0: 2, Attempts: 3,
		Err: fmt.Errorf("%w: oops", ErrKernelPanic)}
	if !errors.Is(ie, ErrKernelPanic) {
		t.Fatalf("ItemError does not unwrap to cause: %v", ie)
	}
	msg := ie.Error()
	for _, want := range []string{"baseline 7", "t0 32", "ch0 2", "3 attempt"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q missing %q", msg, want)
		}
	}
}

func TestReportAccounting(t *testing.T) {
	r := NewReport(Config{MaxErrors: 2})
	r.RecordSuccess(false)
	r.RecordSuccess(true)
	for i := 0; i < 4; i++ {
		r.RecordSkip(&ItemError{Baseline: i, Err: ErrKernelPanic}, 100)
	}
	if r.ItemsProcessed != 2 || r.ItemsRetried != 1 {
		t.Fatalf("success counts: %+v", r)
	}
	if r.ItemsSkipped != 4 || r.DroppedVisibilities != 400 {
		t.Fatalf("skip counts: %+v", r)
	}
	if len(r.ItemErrors) != 2 {
		t.Fatalf("error sample not bounded: %d", len(r.ItemErrors))
	}
	if !r.Degraded() {
		t.Fatal("report with skips not Degraded")
	}
	s := r.String()
	if !strings.Contains(s, "4 skipped") || !strings.Contains(s, "400 visibilities") {
		t.Fatalf("String() = %q", s)
	}
}

func TestReportMerge(t *testing.T) {
	a := NewReport(Config{})
	a.RecordSuccess(false)
	b := NewReport(Config{})
	b.RecordSuccess(true)
	b.RecordSkip(&ItemError{Err: ErrKernelPanic}, 64)
	a.Merge(b)
	a.Merge(nil)
	if a.ItemsProcessed != 2 || a.ItemsRetried != 1 || a.ItemsSkipped != 1 || a.DroppedVisibilities != 64 {
		t.Fatalf("merge result: %+v", a)
	}
	if len(a.ItemErrors) != 1 {
		t.Fatalf("merged error sample: %d", len(a.ItemErrors))
	}
}

// TestReportConcurrentUse exercises the report from many goroutines;
// meaningful under -race.
func TestReportConcurrentUse(t *testing.T) {
	r := NewReport(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.RecordSuccess(i%2 == 0)
				r.RecordSkip(&ItemError{Err: ErrKernelPanic}, 1)
			}
		}()
	}
	wg.Wait()
	if r.ItemsProcessed != 800 || r.ItemsSkipped != 800 || r.DroppedVisibilities != 800 {
		t.Fatalf("concurrent counts off: %+v", r)
	}
}

func TestHookReceivesItemAndAttempt(t *testing.T) {
	var got []int
	cfg := Config{Hook: func(item plan.WorkItem, attempt int) {
		got = append(got, item.Baseline, attempt)
	}}
	cfg.Hook(plan.WorkItem{Baseline: 5}, 1)
	if len(got) != 2 || got[0] != 5 || got[1] != 1 {
		t.Fatalf("hook args: %v", got)
	}
}
