package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aterm"
	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// VisibilitySet holds the measurement data of one observation: the
// uvw tracks and the 2x2 correlation visibilities of every baseline.
type VisibilitySet struct {
	// Baselines maps baseline indices to station pairs.
	Baselines []uvwsim.Baseline
	// UVW holds the uvw track of each baseline in meters: UVW[b][t].
	UVW [][]uvwsim.UVW
	// Data holds the visibilities: Data[b][t*NrChannels + c].
	Data [][]xmath.Matrix2
	// Flags marks bad samples, parallel to Data; nil means nothing is
	// flagged. Flagged samples are zero-weight: the gridder excludes
	// them and the degridder predicts zeros for them, so corrupt
	// samples degrade sensitivity instead of poisoning the grid.
	Flags [][]bool
	// NrTimesteps and NrChannels give the time/channel dimensions.
	NrTimesteps, NrChannels int
}

// NewVisibilitySet allocates a zeroed visibility set for the given
// baselines and dimensions. The uvw tracks must be filled by the
// caller (typically from uvwsim). Dimension mismatches return an
// error wrapping faulttol.ErrBadInput.
func NewVisibilitySet(baselines []uvwsim.Baseline, uvw [][]uvwsim.UVW, nrChannels int) (*VisibilitySet, error) {
	if len(baselines) != len(uvw) {
		return nil, fmt.Errorf("%w: %d baselines but %d uvw tracks",
			faulttol.ErrBadInput, len(baselines), len(uvw))
	}
	if len(uvw) == 0 || len(uvw[0]) == 0 {
		return nil, fmt.Errorf("%w: empty visibility set", faulttol.ErrBadInput)
	}
	if nrChannels < 1 {
		return nil, fmt.Errorf("%w: %d channels", faulttol.ErrBadInput, nrChannels)
	}
	nt := len(uvw[0])
	vs := &VisibilitySet{
		Baselines:   baselines,
		UVW:         uvw,
		Data:        make([][]xmath.Matrix2, len(baselines)),
		NrTimesteps: nt,
		NrChannels:  nrChannels,
	}
	for b := range vs.Data {
		if len(uvw[b]) != nt {
			return nil, fmt.Errorf("%w: ragged uvw tracks (baseline %d has %d steps, want %d)",
				faulttol.ErrBadInput, b, len(uvw[b]), nt)
		}
		vs.Data[b] = make([]xmath.Matrix2, nt*nrChannels)
	}
	return vs, nil
}

// MustNewVisibilitySet is NewVisibilitySet for callers whose inputs
// are correct by construction; it panics on error.
func MustNewVisibilitySet(baselines []uvwsim.Baseline, uvw [][]uvwsim.UVW, nrChannels int) *VisibilitySet {
	vs, err := NewVisibilitySet(baselines, uvw, nrChannels)
	if err != nil {
		panic(err)
	}
	return vs
}

// NrVisibilities returns the total number of visibilities.
func (vs *VisibilitySet) NrVisibilities() int64 {
	return int64(len(vs.Baselines)) * int64(vs.NrTimesteps) * int64(vs.NrChannels)
}

// EnsureFlags allocates the flag mask if it is still nil.
func (vs *VisibilitySet) EnsureFlags() {
	if vs.Flags != nil {
		return
	}
	vs.Flags = make([][]bool, len(vs.Data))
	for b := range vs.Flags {
		vs.Flags[b] = make([]bool, len(vs.Data[b]))
	}
}

// FlagSample flags the sample of baseline b at time step t, channel c.
func (vs *VisibilitySet) FlagSample(b, t, c int) {
	vs.EnsureFlags()
	vs.Flags[b][t*vs.NrChannels+c] = true
}

// Flagged reports whether the sample at (b, t, c) is flagged.
func (vs *VisibilitySet) Flagged(b, t, c int) bool {
	return vs.Flags != nil && vs.Flags[b][t*vs.NrChannels+c]
}

// NrFlagged counts the flagged samples.
func (vs *VisibilitySet) NrFlagged() int64 {
	var n int64
	for b := range vs.Flags {
		for _, f := range vs.Flags[b] {
			if f {
				n++
			}
		}
	}
	return n
}

// ClearFlags drops the flag mask.
func (vs *VisibilitySet) ClearFlags() { vs.Flags = nil }

// gather copies the visibilities covered by a work item into dst
// (layout [t*item.NrChannels + c]), zeroing flagged samples so they
// enter the gridder with zero weight. Flagged samples are zeroed
// directly while copying — no second pass over the row.
func (vs *VisibilitySet) gather(item plan.WorkItem, dst []xmath.Matrix2) {
	src := vs.Data[item.Baseline]
	if vs.Flags == nil {
		for t := 0; t < item.NrTimesteps; t++ {
			row := (item.TimeStart+t)*vs.NrChannels + item.Channel0
			copy(dst[t*item.NrChannels:(t+1)*item.NrChannels],
				src[row:row+item.NrChannels])
		}
		return
	}
	flags := vs.Flags[item.Baseline]
	for t := 0; t < item.NrTimesteps; t++ {
		row := (item.TimeStart+t)*vs.NrChannels + item.Channel0
		out := dst[t*item.NrChannels : (t+1)*item.NrChannels]
		for c := range out {
			if flags[row+c] {
				out[c] = xmath.Matrix2{}
			} else {
				out[c] = src[row+c]
			}
		}
	}
}

// scatter writes predicted visibilities of a work item back, storing
// zeros for flagged samples (zero-weight on the degridding side) in
// the same pass as the copy.
func (vs *VisibilitySet) scatter(item plan.WorkItem, src []xmath.Matrix2) {
	dst := vs.Data[item.Baseline]
	if vs.Flags == nil {
		for t := 0; t < item.NrTimesteps; t++ {
			row := (item.TimeStart+t)*vs.NrChannels + item.Channel0
			copy(dst[row:row+item.NrChannels],
				src[t*item.NrChannels:(t+1)*item.NrChannels])
		}
		return
	}
	flags := vs.Flags[item.Baseline]
	for t := 0; t < item.NrTimesteps; t++ {
		row := (item.TimeStart+t)*vs.NrChannels + item.Channel0
		in := src[t*item.NrChannels : (t+1)*item.NrChannels]
		for c := range in {
			if flags[row+c] {
				dst[row+c] = xmath.Matrix2{}
			} else {
				dst[row+c] = in[c]
			}
		}
	}
}

// itemUVW returns the uvw slice covered by a work item.
func (vs *VisibilitySet) itemUVW(item plan.WorkItem) []uvwsim.UVW {
	return vs.UVW[item.Baseline][item.TimeStart : item.TimeStart+item.NrTimesteps]
}

// StageTimes records the wall-clock time spent per pipeline stage,
// the Go-measured analogue of the paper's Fig. 9 runtime distribution.
type StageTimes struct {
	Gridder    time.Duration
	Degridder  time.Duration
	SubgridFFT time.Duration
	Adder      time.Duration
	Splitter   time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration {
	return s.Gridder + s.Degridder + s.SubgridFFT + s.Adder + s.Splitter
}

// Add accumulates other into s.
func (s *StageTimes) Add(other StageTimes) {
	s.Gridder += other.Gridder
	s.Degridder += other.Degridder
	s.SubgridFFT += other.SubgridFFT
	s.Adder += other.Adder
	s.Splitter += other.Splitter
}

// DefaultWorkGroupSize is the number of work items processed per
// pipeline round; it bounds the subgrid buffer memory the same way
// the paper's work groups bound the GPU device buffers.
const DefaultWorkGroupSize = 1024

// newATermCache builds the run-level A-term cache; it lives for a
// whole gridding or degridding pass so maps computed for one work
// group are reused by every later group that shares the (station,
// slot). A nil provider yields a nil cache (identity fast path).
func (k *Kernels) newATermCache(prov aterm.Provider) *aterm.Cache {
	if prov == nil {
		return nil
	}
	return aterm.NewCache(prov, k.params.SubgridSize, k.params.ImageSize)
}

// planeOf returns the W-layer shared by every item of a group, or -1
// when the group is empty or mixes layers (only W-stacked passes plan
// per-layer, so a mixed group has no single layer to attribute to).
func planeOf(items []plan.WorkItem) int {
	if len(items) == 0 {
		return -1
	}
	w := items[0].WPlane
	for _, it := range items[1:] {
		if it.WPlane != w {
			return -1
		}
	}
	return w
}

// prefillATerms serially warms the cache with every (station, slot)
// pair a group of work items needs. aterm.Cache is not safe for
// concurrent writes, but after this prefill every worker Get is a
// read-only hit, so the fan-out needs no locking.
func (k *Kernels) prefillATerms(cache *aterm.Cache, items []plan.WorkItem, baselines []uvwsim.Baseline) {
	if cache == nil {
		return
	}
	for i := range items {
		b := baselines[items[i].Baseline]
		cache.Get(b.P, items[i].ATermSlot)
		cache.Get(b.Q, items[i].ATermSlot)
	}
}

// GridVisibilities runs the full gridding pass of Fig. 4: gridder
// kernel, subgrid FFTs, adder; group by group over the plan's work.
// The grid is accumulated into (callers zero it first for a fresh
// pass). It returns per-stage timings. The context cancels or
// deadline-bounds the run (the error then wraps faulttol.ErrCanceled);
// item failures abort the run (fail-fast) — use GridVisibilitiesFT for
// other policies.
func (k *Kernels) GridVisibilities(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, g *grid.Grid) (StageTimes, error) {
	times, _, err := k.GridVisibilitiesFT(ctx, p, vs, prov, g, faulttol.Config{})
	return times, err
}

// GridVisibilitiesFT is GridVisibilities under an explicit
// fault-tolerance policy. A panicking kernel or a non-finite subgrid
// becomes a typed per-item error instead of a crash; depending on
// ft.Policy the item is retried, skipped (graceful degradation,
// accounted in the returned report) or aborts the run. The report is
// non-nil whenever the pipeline ran.
func (k *Kernels) GridVisibilitiesFT(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, g *grid.Grid, ft faulttol.Config) (StageTimes, *faulttol.Report, error) {
	var times StageTimes
	rep := faulttol.NewReport(ft)
	if err := k.checkPlan(p, vs); err != nil {
		return times, rep, err
	}
	// Streaming opt-in reroutes the whole pass through the sharded
	// chunk scheduler (see streaming.go); the classic batch path below
	// stays the default.
	if k.params.streamingEnabled() {
		sh := grid.NewSharded(g, k.params.gridShards())
		return k.GridVisibilitiesStreamed(ctx, p, vs, prov, sh, ft)
	}
	cache := k.newATermCache(prov)
	// One subgrid-pointer table for the whole pass: work groups are at
	// most DefaultWorkGroupSize items, so the table is sliced (and its
	// slots cleared) per group instead of reallocated.
	subgridBuf := make([]*grid.Subgrid, DefaultWorkGroupSize)
	for gi, group := range p.WorkGroups(DefaultWorkGroupSize) {
		if err := ctx.Err(); err != nil {
			return times, rep, faulttol.Canceled(err)
		}
		k.prefillATerms(cache, group, vs.Baselines)
		wp := planeOf(group)
		subgrids := subgridBuf[:len(group)]
		for i := range subgrids {
			subgrids[i] = nil
		}

		start := time.Now()
		err := k.runItems(ctx, obs.StageGrid, gi, group, ft, rep, func(i int, s *scratch, par int) error {
			item := group[i]
			sgr := k.getSubgrid(item.X0, item.Y0)
			sgr.WOffset, sgr.WPlane = item.WOffset, item.WPlane
			vis := s.visBuf(item.NrVisibilities())
			vs.gather(item, vis)
			if k.ob.enabled() {
				k.ob.flaggedVis(vs.countFlagged(item))
			}
			ap, aq := k.lookupATerms(cache, vs.Baselines, item)
			k.gridSubgridScratch(item, vs.itemUVW(item), vis, ap, aq, sgr, s, par)
			if !sgr.Finite() {
				k.putSubgrid(sgr)
				return fmt.Errorf("%w: non-finite subgrid (corrupt unflagged visibilities)",
					faulttol.ErrBadInput)
			}
			subgrids[i] = sgr
			return nil
		})
		d := time.Since(start)
		times.Gridder += d
		k.ob.stageDone(obs.StageGrid, gi, wp, start, d)
		if err != nil {
			k.releaseSubgrids(subgrids)
			return times, rep, err
		}
		// Under skip-and-flag, failed items leave nil subgrids that
		// the FFT and adder stages pass over.
		start = time.Now()
		k.FFTSubgrids(subgrids)
		d = time.Since(start)
		times.SubgridFFT += d
		k.ob.stageDone(obs.StageFFT, gi, wp, start, d)

		start = time.Now()
		k.Adder(subgrids, g)
		d = time.Since(start)
		times.Adder += d
		k.ob.stageDone(obs.StageAdd, gi, wp, start, d)

		k.releaseSubgrids(subgrids)
	}
	return times, rep, nil
}

// releaseSubgrids returns every non-nil subgrid of a work group to the
// pool and clears the slots.
func (k *Kernels) releaseSubgrids(subgrids []*grid.Subgrid) {
	for i, s := range subgrids {
		if s != nil {
			k.putSubgrid(s)
			subgrids[i] = nil
		}
	}
}

// DegridVisibilities runs the full degridding pass of Fig. 4 in
// reverse order: splitter, inverse subgrid FFTs, degridder kernel.
// Predicted visibilities overwrite vs.Data. The context cancels the
// run; item failures abort it (fail-fast) — use DegridVisibilitiesFT
// for other policies.
func (k *Kernels) DegridVisibilities(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, g *grid.Grid) (StageTimes, error) {
	times, _, err := k.DegridVisibilitiesFT(ctx, p, vs, prov, g, faulttol.Config{})
	return times, err
}

// DegridVisibilitiesFT is DegridVisibilities under an explicit
// fault-tolerance policy; skipped items leave their visibility block
// unwritten and are accounted in the returned report.
func (k *Kernels) DegridVisibilitiesFT(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, g *grid.Grid, ft faulttol.Config) (StageTimes, *faulttol.Report, error) {
	var times StageTimes
	rep := faulttol.NewReport(ft)
	if err := k.checkPlan(p, vs); err != nil {
		return times, rep, err
	}
	cache := k.newATermCache(prov)
	subgridBuf := make([]*grid.Subgrid, DefaultWorkGroupSize)
	for gi, group := range p.WorkGroups(DefaultWorkGroupSize) {
		if err := ctx.Err(); err != nil {
			return times, rep, faulttol.Canceled(err)
		}
		k.prefillATerms(cache, group, vs.Baselines)
		wp := planeOf(group)
		subgrids := subgridBuf[:len(group)]
		for i, item := range group {
			// Pooled subgrids arrive with stale pixels; the splitter
			// overwrites every pixel of every plane.
			sgr := k.getSubgrid(item.X0, item.Y0)
			sgr.WOffset, sgr.WPlane = item.WOffset, item.WPlane
			subgrids[i] = sgr
		}

		start := time.Now()
		k.Splitter(g, subgrids)
		d := time.Since(start)
		times.Splitter += d
		k.ob.stageDone(obs.StageSplit, gi, wp, start, d)

		start = time.Now()
		k.InverseFFTSubgrids(subgrids)
		d = time.Since(start)
		times.SubgridFFT += d
		k.ob.stageDone(obs.StageFFT, gi, wp, start, d)

		start = time.Now()
		err := k.runItems(ctx, obs.StageDegrid, gi, group, ft, rep, func(i int, s *scratch, par int) error {
			item := group[i]
			vis := s.visBuf(item.NrVisibilities())
			ap, aq := k.lookupATerms(cache, vs.Baselines, item)
			k.degridSubgridScratch(item, subgrids[i], vs.itemUVW(item), ap, aq, vis, s, par)
			vs.scatter(item, vis)
			return nil
		})
		d = time.Since(start)
		times.Degridder += d
		k.ob.stageDone(obs.StageDegrid, gi, wp, start, d)
		k.releaseSubgrids(subgrids)
		if err != nil {
			return times, rep, err
		}
	}
	return times, rep, nil
}

// lookupATerms resolves a work item's two station maps from the warm
// run-level cache (every Get here is a hit; see prefillATerms).
func (k *Kernels) lookupATerms(cache *aterm.Cache, baselines []uvwsim.Baseline, item plan.WorkItem) (ap, aq []xmath.Matrix2) {
	if cache == nil {
		return nil, nil
	}
	b := baselines[item.Baseline]
	return cache.Get(b.P, item.ATermSlot), cache.Get(b.Q, item.ATermSlot)
}

func (k *Kernels) checkPlan(p *plan.Plan, vs *VisibilitySet) error {
	switch {
	case p.GridSize != k.params.GridSize:
		return fmt.Errorf("core: plan grid size %d != kernel grid size %d", p.GridSize, k.params.GridSize)
	case p.SubgridSize != k.params.SubgridSize:
		return fmt.Errorf("core: plan subgrid size %d != kernel subgrid size %d", p.SubgridSize, k.params.SubgridSize)
	case p.ImageSize != k.params.ImageSize:
		return fmt.Errorf("core: plan image size %g != kernel image size %g", p.ImageSize, k.params.ImageSize)
	case len(p.Frequencies) != len(k.params.Frequencies):
		return fmt.Errorf("core: plan has %d channels, kernels have %d", len(p.Frequencies), len(k.params.Frequencies))
	case vs.NrChannels != len(k.params.Frequencies):
		return fmt.Errorf("core: visibility set has %d channels, kernels have %d", vs.NrChannels, len(k.params.Frequencies))
	}
	return nil
}

// runItems executes fn(i, s, par) for every work item on the worker
// pool with panic isolation, the configured failure policy, and
// cooperative cancellation. Each worker checks one scratch arena out of
// the kernel pool for its whole run and hands it to every fn call, so
// the steady state of the hot path allocates nothing. A panic inside fn
// (or the injection hook) becomes an ErrKernelPanic-wrapped ItemError;
// errors.Is(err, ErrBadInput) failures are never retried. The returned
// error is nil, the first fatal *faulttol.ItemError, or an ErrCanceled
// wrapper.
//
// stage and group attribute the observer's per-item spans and counters
// (see observe.go); with observation disabled they are unused and the
// per-item cost is one nil check.
//
// par is the intra-item pixel-tile parallelism hint handed to fn: 1
// while there are at least as many items as workers (item parallelism
// alone saturates the pool), and ceil(workers/n) when a group is
// smaller than the pool, so the spare workers pick up pixel tiles of
// the in-flight items (runTiles) instead of idling.
func (k *Kernels) runItems(ctx context.Context, stage obs.Stage, group int, items []plan.WorkItem, ft faulttol.Config, rep *faulttol.Report, fn func(i int, s *scratch, par int) error) error {
	n := len(items)
	if n == 0 {
		return ctxErr(ctx)
	}
	par := 1
	if w := k.params.workers(); w > n && !k.params.DisablePixelTiling {
		par = (w + n - 1) / n
	}
	attempts := ft.Attempts()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	runOne := func(i, worker int, s *scratch) {
		item := items[i]
		t0 := k.ob.now()
		var err error
		made := 0
		for a := 1; a <= attempts; a++ {
			if runCtx.Err() != nil {
				return
			}
			made = a
			err = faulttol.Run(func() error {
				if ft.Hook != nil {
					ft.Hook(item, a)
				}
				return fn(i, s, par)
			})
			if err == nil {
				rep.RecordSuccess(a > 1)
				k.ob.itemDone(stage, group, worker, i, item, a, t0)
				return
			}
			k.ob.attemptFailed(err)
			if errors.Is(err, faulttol.ErrBadInput) {
				break
			}
		}
		ie := &faulttol.ItemError{
			Baseline:  item.Baseline,
			TimeStart: item.TimeStart,
			Channel0:  item.Channel0,
			Attempts:  made,
			Err:       err,
		}
		if ft.Policy == faulttol.SkipAndFlag {
			rep.RecordSkip(ie, int64(item.NrVisibilities()))
			k.ob.itemSkipped(item)
			return
		}
		fail(ie)
	}

	workers := k.params.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := k.getScratch()
		defer k.putScratch(s)
		for i := 0; i < n; i++ {
			if runCtx.Err() != nil {
				break
			}
			runOne(i, 0, s)
		}
	} else {
		var wg sync.WaitGroup
		var next int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				s := k.getScratch()
				defer k.putScratch(s)
				for runCtx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					runOne(i, worker, s)
				}
			}(w)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	return ctxErr(ctx)
}

// ctxErr converts a context error into the faulttol taxonomy.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return faulttol.Canceled(err)
	}
	return nil
}
