package core

import (
	"fmt"

	"repro/internal/xmath"
)

// simdDispatch is the resolved kernel dispatch of one Kernels value:
// the SIMD tier in effect plus the tile-kernel entry points it enables.
// A nil entry means "use the generic Go tile". Resolution happens once
// in NewKernels — from xmath.ActiveSIMD() (hardware detection clamped
// by the IDG_SIMD environment override), the DisableVectorKernels
// ablation, and the forceSIMD test seam — so the hot paths select a
// kernel with one pointer test instead of re-consulting feature flags.
type simdDispatch struct {
	tier xmath.SIMDTier

	gridVec64   gridTileFn[float64]
	degridVec64 degridTileFn[float64]
	gridVec32   gridTileFn[float32]
	degridVec32 degridTileFn[float32]
}

// dispatchFor builds the dispatch table for a SIMD tier. The vector
// tile bodies keep 256-bit lanes at both vector tiers — four float64
// or eight float32 lanes per YMM register; 512-bit lanes would
// downclock older server parts. The AVX-512 tier still differs in two
// ways: the batched sine/cosine seeding inside xmath.SincosVec widens
// to eight-lane ZMM arithmetic, and the blocked float32 gridder runs
// two pixels per call (rotAccOctsBlk2), using the EVEX-only registers
// Y16-Y31 for the second pixel's accumulator and phasor state. The
// tier test for the pairing lives in gridTileVec32, keyed on the same
// simdDispatch tier resolved here.
func dispatchFor(tier xmath.SIMDTier) simdDispatch {
	d := simdDispatch{tier: tier}
	if haveVectorASM && tier >= xmath.SIMDAVX2 {
		d.gridVec64 = gridTileVec
		d.degridVec64 = degridTileVec
		d.gridVec32 = gridTileVec32
		d.degridVec32 = degridTileVec32
	}
	return d
}

// SIMDInfo describes the kernel dispatch actually in effect for one
// Kernels value, for startup logs and benchmark reports: measured
// numbers are only interpretable next to the code path that produced
// them.
type SIMDInfo struct {
	// Detected is the widest SIMD tier the host CPU supports.
	Detected string
	// Active is the tier in effect after the IDG_SIMD environment
	// override (which can only lower the tier) and any ablation.
	Active string
	// Tiles64 and Tiles32 name the tile-kernel implementations the
	// gridder/degridder dispatch to per precision.
	Tiles64, Tiles32 string
	// Sincos names the phase evaluator of the batched kernels.
	Sincos string
}

// String renders the dispatch summary as one log line.
func (si SIMDInfo) String() string {
	return fmt.Sprintf("simd: detected=%s active=%s tiles64=%s tiles32=%s sincos=%s",
		si.Detected, si.Active, si.Tiles64, si.Tiles32, si.Sincos)
}

// SIMDInfo reports the SIMD dispatch this Kernels value resolved to.
func (k *Kernels) SIMDInfo() SIMDInfo {
	si := SIMDInfo{
		Detected: xmath.DetectedSIMD().String(),
		Active:   k.disp.tier.String(),
		Tiles64:  "generic",
		Tiles32:  "generic",
		Sincos:   "scalar (configured)",
	}
	if k.disp.gridVec64 != nil {
		si.Tiles64 = "avx2+fma 4-lane"
	}
	if k.disp.gridVec32 != nil {
		si.Tiles32 = "avx2+fma 8-lane"
		if k.disp.tier >= xmath.SIMDAVX512 {
			// The blocked float32 gridder pairs pixels through the
			// EVEX-encoded dual-pixel kernel at this tier.
			si.Tiles32 = "avx2+fma 8-lane, evex 2-pixel blocks"
		}
	}
	if k.vecSincos {
		si.Sincos = "sincosvec/" + k.disp.tier.String()
	}
	return si
}
