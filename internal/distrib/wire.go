package distrib

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/grid"
	"repro/internal/server"
)

// Reduction stream: after a worker finishes gridding its partition it
// dials the coordinator and sends
//
//	FrameHello | FrameBand* | FrameResult
//
// over the server package's length-prefixed CRC-64 frame format. The
// bands carry only the rows the partial grid actually touched (sparse
// partitions ship a fraction of the grid), chunked so each frame stays
// under the payload cap; the closing result frame carries the sender's
// fingerprint of the whole partial grid, which the coordinator
// recomputes over the assembled bytes before accepting the partial —
// a truncated or reordered stream is discarded, not merged.
const (
	// FrameHello opens a worker's reduction stream: payload = worker
	// uint32 | workers uint32 | axis uint8 | plan fingerprint 32 bytes
	// (the checkpoint.PlanFingerprint of the worker's sub-plan, so the
	// coordinator can reject a worker gridding the wrong partition).
	FrameHello byte = 16
	// FrameBand carries rows [lo, hi) of every correlation plane of the
	// partial grid: payload = gridSize uint32 | lo uint32 | hi uint32 |
	// (hi-lo) rows per correlation plane of gridSize complex128 cells,
	// each cell little-endian float64 (re, im) — the exact byte order of
	// grid.(*Sharded).WriteBand and of the grid fingerprint.
	FrameBand byte = 17
	// FrameResult closes the stream: payload = worker uint32 | gridSize
	// uint32 | nonzero uint64 | sumAbs float64 | peakAbs float64 |
	// SHA-256 32 bytes, the sender's fingerprint of its partial grid.
	FrameResult byte = 18
)

const (
	helloPayloadBytes = 4 + 4 + 1 + 32
	// bandPayloadHeader is the fixed prefix of a FrameBand payload.
	bandPayloadHeader = 12
	// cellBytes is the wire size of one grid cell (float64 re + im).
	cellBytes          = 16
	resultPayloadBytes = 4 + 4 + 8 + 8 + 8 + 32
)

// reduceRules is the frame-type table of the reduction stream; each
// rule length-checks its type before the reader allocates the payload.
var reduceRules = map[byte]server.FrameRule{
	FrameHello: func(n int64) error {
		if n != helloPayloadBytes {
			return fmt.Errorf("distrib: FrameHello payload of %d bytes, want %d", n, helloPayloadBytes)
		}
		return nil
	},
	FrameBand: func(n int64) error {
		if n < bandPayloadHeader || (n-bandPayloadHeader)%cellBytes != 0 {
			return fmt.Errorf("distrib: FrameBand payload of %d bytes is not %d + k*%d", n, bandPayloadHeader, cellBytes)
		}
		return nil
	},
	FrameResult: func(n int64) error {
		if n != resultPayloadBytes {
			return fmt.Errorf("distrib: FrameResult payload of %d bytes, want %d", n, resultPayloadBytes)
		}
		return nil
	},
}

// ReadReduceFrame decodes one reduction-stream frame, sharing the
// server package's header/CRC machinery and its
// validate-length-before-allocation contract. maxPayload <= 0 selects
// server.DefaultMaxFramePayload.
func ReadReduceFrame(r io.Reader, maxPayload int) (server.Frame, error) {
	return server.ReadFrameRules(r, maxPayload, reduceRules)
}

// Hello announces one worker's reduction stream.
type Hello struct {
	Worker  int
	Workers int
	Axis    Axis
	// PlanSum fingerprints the sub-plan the worker gridded.
	PlanSum [32]byte
}

// EncodeHello builds the opening frame of a reduction stream.
func EncodeHello(h Hello) server.Frame {
	p := make([]byte, helloPayloadBytes)
	binary.LittleEndian.PutUint32(p[0:], uint32(h.Worker))
	binary.LittleEndian.PutUint32(p[4:], uint32(h.Workers))
	p[8] = byte(h.Axis)
	copy(p[9:], h.PlanSum[:])
	return server.Frame{Type: FrameHello, Payload: p}
}

// DecodeHello decodes a FrameHello payload.
func DecodeHello(f server.Frame) (Hello, error) {
	if f.Type != FrameHello || len(f.Payload) != helloPayloadBytes {
		return Hello{}, fmt.Errorf("distrib: decoding frame type %d (%d bytes) as FrameHello", f.Type, len(f.Payload))
	}
	h := Hello{
		Worker:  int(binary.LittleEndian.Uint32(f.Payload[0:])),
		Workers: int(binary.LittleEndian.Uint32(f.Payload[4:])),
		Axis:    Axis(f.Payload[8]),
	}
	copy(h.PlanSum[:], f.Payload[9:])
	if h.Axis != AxisRows && h.Axis != AxisWPlanes {
		return Hello{}, fmt.Errorf("distrib: FrameHello with unknown axis %d", f.Payload[8])
	}
	return h, nil
}

// BandRowsPerFrame returns how many grid rows (all four correlation
// planes) fit in one FrameBand under the payload cap, at least 1 so
// even a cap below one row's bytes still makes progress (the frame
// then exceeds the cap and the read side rejects it — a configuration
// error surfaced loudly rather than an infinite loop).
func BandRowsPerFrame(gridSize, maxPayload int) int {
	if maxPayload <= 0 {
		maxPayload = server.DefaultMaxFramePayload
	}
	rows := (maxPayload - bandPayloadHeader) / (grid.NrCorrelations * cellBytes * gridSize)
	if rows < 1 {
		rows = 1
	}
	return rows
}

// EncodeBand builds a FrameBand for rows [lo, hi) of g.
func EncodeBand(g *grid.Grid, lo, hi int) (server.Frame, error) {
	if lo < 0 || hi > g.N || lo >= hi {
		return server.Frame{}, fmt.Errorf("distrib: band rows [%d, %d) outside %d-row grid", lo, hi, g.N)
	}
	p := make([]byte, bandPayloadHeader+grid.NrCorrelations*(hi-lo)*g.N*cellBytes)
	binary.LittleEndian.PutUint32(p[0:], uint32(g.N))
	binary.LittleEndian.PutUint32(p[4:], uint32(lo))
	binary.LittleEndian.PutUint32(p[8:], uint32(hi))
	off := bandPayloadHeader
	for c := 0; c < grid.NrCorrelations; c++ {
		for _, v := range g.Data[c][lo*g.N : hi*g.N] {
			binary.LittleEndian.PutUint64(p[off:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(p[off+8:], math.Float64bits(imag(v)))
			off += cellBytes
		}
	}
	return server.Frame{Type: FrameBand, Payload: p}, nil
}

// DecodeBandInto restores a FrameBand's rows into dst (overwriting,
// not accumulating: bands of one stream are disjoint) and returns the
// row range it covered. The embedded grid size and row range are
// cross-checked against dst and the payload length before any write.
func DecodeBandInto(dst *grid.Grid, f server.Frame) (lo, hi int, err error) {
	if f.Type != FrameBand || len(f.Payload) < bandPayloadHeader {
		return 0, 0, fmt.Errorf("distrib: decoding frame type %d (%d bytes) as FrameBand", f.Type, len(f.Payload))
	}
	n := int(binary.LittleEndian.Uint32(f.Payload[0:]))
	lo = int(binary.LittleEndian.Uint32(f.Payload[4:]))
	hi = int(binary.LittleEndian.Uint32(f.Payload[8:]))
	if n != dst.N {
		return 0, 0, fmt.Errorf("distrib: band for a %d-pixel grid arriving at a %d-pixel grid", n, dst.N)
	}
	if lo < 0 || hi > n || lo >= hi {
		return 0, 0, fmt.Errorf("distrib: band rows [%d, %d) outside %d-row grid", lo, hi, n)
	}
	want := bandPayloadHeader + grid.NrCorrelations*(hi-lo)*n*cellBytes
	if len(f.Payload) != want {
		return 0, 0, fmt.Errorf("distrib: band [%d, %d) carries %d payload bytes, want %d", lo, hi, len(f.Payload), want)
	}
	off := bandPayloadHeader
	for c := 0; c < grid.NrCorrelations; c++ {
		row := dst.Data[c][lo*n : hi*n]
		for i := range row {
			re := math.Float64frombits(binary.LittleEndian.Uint64(f.Payload[off:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(f.Payload[off+8:]))
			row[i] = complex(re, im)
			off += cellBytes
		}
	}
	return lo, hi, nil
}

// Fingerprint pins the exact bits of a (partial or final) grid — the
// internal twin of the facade's GridFingerprint, with the SHA-256 as
// raw bytes. Two fingerprints of bit-identical grids compare equal
// with ==.
type Fingerprint struct {
	GridSize int
	Nonzero  int64
	SumAbs   float64
	PeakAbs  float64
	SHA256   [32]byte
}

// FingerprintOf hashes and summarizes g in the repository's canonical
// grid byte order: correlation-plane-major, each cell little-endian
// float64 (re, im) — the same bytes FrameBand carries, so a grid
// assembled from a full-cover band stream fingerprints identically to
// the sender's.
func FingerprintOf(g *grid.Grid) Fingerprint {
	h := sha256.New()
	var buf [cellBytes]byte
	fp := Fingerprint{GridSize: g.N}
	for c := 0; c < grid.NrCorrelations; c++ {
		for _, v := range g.Data[c] {
			binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(v)))
			h.Write(buf[:])
			a := math.Hypot(real(v), imag(v))
			fp.SumAbs += a
			if a > fp.PeakAbs {
				fp.PeakAbs = a
			}
			if v != 0 {
				fp.Nonzero++
			}
		}
	}
	h.Sum(fp.SHA256[:0])
	return fp
}

// Result closes a worker's reduction stream with its partial-grid
// fingerprint.
type Result struct {
	Worker      int
	Fingerprint Fingerprint
}

// EncodeResult builds the closing frame of a reduction stream.
func EncodeResult(r Result) server.Frame {
	p := make([]byte, resultPayloadBytes)
	binary.LittleEndian.PutUint32(p[0:], uint32(r.Worker))
	binary.LittleEndian.PutUint32(p[4:], uint32(r.Fingerprint.GridSize))
	binary.LittleEndian.PutUint64(p[8:], uint64(r.Fingerprint.Nonzero))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(r.Fingerprint.SumAbs))
	binary.LittleEndian.PutUint64(p[24:], math.Float64bits(r.Fingerprint.PeakAbs))
	copy(p[32:], r.Fingerprint.SHA256[:])
	return server.Frame{Type: FrameResult, Payload: p}
}

// DecodeResult decodes a FrameResult payload.
func DecodeResult(f server.Frame) (Result, error) {
	if f.Type != FrameResult || len(f.Payload) != resultPayloadBytes {
		return Result{}, fmt.Errorf("distrib: decoding frame type %d (%d bytes) as FrameResult", f.Type, len(f.Payload))
	}
	r := Result{
		Worker: int(binary.LittleEndian.Uint32(f.Payload[0:])),
		Fingerprint: Fingerprint{
			GridSize: int(binary.LittleEndian.Uint32(f.Payload[4:])),
			Nonzero:  int64(binary.LittleEndian.Uint64(f.Payload[8:])),
			SumAbs:   math.Float64frombits(binary.LittleEndian.Uint64(f.Payload[16:])),
			PeakAbs:  math.Float64frombits(binary.LittleEndian.Uint64(f.Payload[24:])),
		},
	}
	copy(r.Fingerprint.SHA256[:], f.Payload[32:])
	return r, nil
}
