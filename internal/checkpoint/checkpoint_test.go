package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
)

// testSnapshot builds a deterministic snapshot whose grid has a
// distinct value at every (correlation, pixel).
func testSnapshot(gridSize, shards, cursor int) *Snapshot {
	g := grid.NewGrid(gridSize)
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(float64(c*100000+i)*0.5, -float64(i)-float64(c))
		}
	}
	var sum [32]byte
	for i := range sum {
		sum[i] = byte(i * 7)
	}
	return &Snapshot{
		GridSize:   gridSize,
		Shards:     shards,
		NextChunk:  cursor,
		ChunkItems: 4,
		PlanSum:    sum,
		Report: faulttol.ReportState{
			ItemsProcessed:      25,
			ItemsRetried:        3,
			ItemsSkipped:        2,
			DroppedVisibilities: 37,
		},
		Grid: g,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		dir := t.TempDir()
		want := testSnapshot(16, shards, 7)
		path, n, err := Write(dir, want, nil)
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(path) != FileName(7) {
			t.Fatalf("published as %s, want %s", filepath.Base(path), FileName(7))
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != n {
			t.Fatalf("Write reported %d bytes, file is %d", n, st.Size())
		}

		got, err := Read(path)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.GridSize != want.GridSize || got.Shards != shards ||
			got.NextChunk != want.NextChunk || got.ChunkItems != want.ChunkItems {
			t.Fatalf("header mismatch: %+v", got)
		}
		if got.PlanSum != want.PlanSum {
			t.Fatal("plan fingerprint mismatch")
		}
		if got.Report != want.Report {
			t.Fatalf("report state %+v, want %+v", got.Report, want.Report)
		}
		for c := range want.Grid.Data {
			for i := range want.Grid.Data[c] {
				if got.Grid.Data[c][i] != want.Grid.Data[c][i] {
					t.Fatalf("grid value [%d][%d] not bit-identical", c, i)
				}
			}
		}
		// No temp residue next to the published snapshot.
		entries, _ := os.ReadDir(dir)
		if len(entries) != 1 {
			t.Fatalf("directory holds %d entries, want the snapshot alone", len(entries))
		}
	}
}

// writeTestFile publishes a snapshot and returns the raw bytes and
// path for corruption tests.
func writeTestFile(t *testing.T, dir string, cursor int) (string, []byte) {
	t.Helper()
	path, _, err := Write(dir, testSnapshot(16, 3, cursor), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestCheckpointTruncated(t *testing.T) {
	dir := t.TempDir()
	path, raw := writeTestFile(t, dir, 1)
	for _, keep := range []int{0, 5, len(magic) + 2, 60, len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrCorrupt", keep, err)
		}
	}
}

func TestCheckpointFlippedByte(t *testing.T) {
	dir := t.TempDir()
	path, raw := writeTestFile(t, dir, 1)
	// Flip one bit deep in the grid payload (digest catches it) and one
	// in the trailing digest itself.
	for _, off := range []int{len(raw) / 2, len(raw) - 4} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x10
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipped byte at %d: got %v, want ErrCorrupt", off, err)
		}
	}
}

func TestCheckpointWrongVersion(t *testing.T) {
	dir := t.TempDir()
	path, raw := writeTestFile(t, dir, 1)
	bad := append([]byte(nil), raw...)
	bad[len(magic)] = 99 // version field follows the magic
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 99: got %v, want ErrVersion", err)
	}
}

func TestCheckpointImplausibleHeader(t *testing.T) {
	dir := t.TempDir()
	path, raw := writeTestFile(t, dir, 1)
	// A hostile grid size must be rejected before any allocation is
	// attempted; the file is far too small for the claimed layout.
	bad := append([]byte(nil), raw...)
	bad[len(magic)+4] = 0xff
	bad[len(magic)+5] = 0xff
	bad[len(magic)+6] = 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge grid size: got %v, want ErrCorrupt", err)
	}
}

func TestLoadLatestFallsBackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Write(dir, testSnapshot(16, 3, 2), nil); err != nil {
		t.Fatal(err)
	}
	newest, raw := writeTestFile(t, dir, 4)
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	sn, path, notes, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sn == nil || sn.NextChunk != 2 {
		t.Fatalf("fell back to %+v, want the cursor-2 snapshot", sn)
	}
	if filepath.Base(path) != FileName(2) {
		t.Fatalf("loaded %s", path)
	}
	if len(notes) != 1 {
		t.Fatalf("notes = %v, want one fallback note", notes)
	}
}

func TestLoadLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	for _, cursor := range []int{2, 4} {
		path, raw := writeTestFile(t, dir, cursor)
		if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sn, _, notes, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sn != nil {
		t.Fatalf("got snapshot %+v from an all-corrupt directory", sn)
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want two fallback notes", notes)
	}
}

func TestLoadLatestEmptyAndMissingDir(t *testing.T) {
	sn, _, notes, err := LoadLatest(t.TempDir())
	if err != nil || sn != nil || len(notes) != 0 {
		t.Fatalf("empty dir: %v %v %v", sn, notes, err)
	}
	sn, _, notes, err = LoadLatest(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || sn != nil || len(notes) != 0 {
		t.Fatalf("missing dir: %v %v %v", sn, notes, err)
	}
}

func TestLoadLatestPrefersNewestCursor(t *testing.T) {
	dir := t.TempDir()
	// Cursor 10 sorts after cursor 2 only with zero padding.
	for _, cursor := range []int{2, 10} {
		if _, _, err := Write(dir, testSnapshot(16, 3, cursor), nil); err != nil {
			t.Fatal(err)
		}
	}
	sn, _, _, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sn.NextChunk != 10 {
		t.Fatalf("loaded cursor %d, want 10", sn.NextChunk)
	}
}

// TestWriteCrashBeforeRenameLeavesNoSnapshot: a kill between sync and
// rename must not publish a snapshot (the previous checkpoint set
// stays authoritative) and must not leave junk a reader would pick up.
func TestWriteCrashBeforeRenameLeavesNoSnapshot(t *testing.T) {
	dir := t.TempDir()
	var sawEvent Event
	var sawChunk int
	hook := func(ev Event, chunk int) {
		sawEvent, sawChunk = ev, chunk
		panic("simulated kill")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hook panic did not propagate")
			}
		}()
		Write(dir, testSnapshot(16, 3, 5), hook)
	}()
	if sawEvent != EventBeforeRename || sawChunk != 4 {
		t.Fatalf("hook saw (%v, %d), want (before-rename, 4)", sawEvent, sawChunk)
	}
	names, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("crash published %v", names)
	}
	// LoadLatest over the aftermath is a clean restart, not an error.
	sn, _, _, err := LoadLatest(dir)
	if err != nil || sn != nil {
		t.Fatalf("post-crash LoadLatest: %v %v", sn, err)
	}
}

func testPlan() *plan.Plan {
	return &plan.Plan{
		Config: plan.Config{
			GridSize:    64,
			SubgridSize: 8,
			ImageSize:   0.1,
			Frequencies: []float64{1e8, 1.1e8},
		},
		Items: []plan.WorkItem{
			{Baseline: 0, TimeStart: 0, NrTimesteps: 4, Channel0: 0, NrChannels: 2, X0: 3, Y0: 5},
			{Baseline: 1, TimeStart: 4, NrTimesteps: 4, Channel0: 0, NrChannels: 2, X0: 9, Y0: 1, WPlane: 1, WOffset: 2.5},
		},
	}
}

func TestPlanFingerprint(t *testing.T) {
	p := testPlan()
	a := PlanFingerprint(p)
	if a != PlanFingerprint(testPlan()) {
		t.Fatal("fingerprint not deterministic")
	}
	q := testPlan()
	q.Items[1].X0++
	if a == PlanFingerprint(q) {
		t.Fatal("moved work item not reflected in fingerprint")
	}
	r := testPlan()
	r.Frequencies = []float64{1e8, 1.2e8}
	if a == PlanFingerprint(r) {
		t.Fatal("changed subband not reflected in fingerprint")
	}
	s := testPlan()
	s.Items = s.Items[:1]
	if a == PlanFingerprint(s) {
		t.Fatal("dropped work item not reflected in fingerprint")
	}
}
