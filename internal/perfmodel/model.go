package perfmodel

import (
	"math"

	"repro/internal/arch"
)

// Bound names the resource that limits a kernel on a platform.
type Bound string

const (
	BoundCompute      Bound = "compute"
	BoundSharedMemory Bound = "shared-memory"
	BoundDeviceMemory Bound = "device-memory"
)

// KernelPerf is the model's prediction for one kernel on one platform.
type KernelPerf struct {
	Kernel   string
	Platform string
	Seconds  float64
	// OpsPerSec is the achieved throughput in the paper's ops.
	OpsPerSec float64
	// FractionOfPeak relates OpsPerSec to the platform peak (Fig. 11).
	FractionOfPeak float64
	// Bound names the limiting resource.
	Bound Bound
	// Intensity and SharedIntensity are the roofline x coordinates.
	Intensity, SharedIntensity float64
}

// fftEfficiency is the fraction of FMA peak a batched small 2-D FFT
// attains (vendor FFT libraries reach 20-30% for these sizes).
const fftEfficiency = 0.25

// Predict models one kernel on one platform: the attainable compute
// rate follows the instruction-mix model (and, on GPUs, the
// shared-memory roofline); the kernel then takes the larger of its
// compute time and its device-memory time.
func Predict(p *arch.Platform, c KernelCounts) KernelPerf {
	out := KernelPerf{
		Kernel:          c.Name,
		Platform:        p.Name,
		Intensity:       c.OperationalIntensity(),
		SharedIntensity: c.SharedIntensity(),
		Bound:           BoundCompute,
	}
	if c.Ops == 0 {
		// Pure copy (splitter): bandwidth only.
		out.Seconds = c.DeviceBytes / (p.MemBandwidthGBs * 1e9)
		out.Bound = BoundDeviceMemory
		return out
	}
	// Attainable compute rate for this instruction mix.
	var rate float64
	if math.IsInf(c.Rho, 1) {
		rate = p.PeakOpsPerSec()
		if c.Name == "subgrid-fft" {
			rate *= fftEfficiency
		}
	} else {
		rate = p.MixOpsPerSec(c.Rho)
	}
	// Shared-memory roofline (GPU kernels staging via the
	// software-managed cache).
	if c.SharedBytes > 0 && p.SharedBandwidthGBs > 0 {
		sharedRate := p.SharedBandwidthGBs * 1e9 * c.SharedIntensity()
		if sharedRate < rate {
			rate = sharedRate
			out.Bound = BoundSharedMemory
		}
	}
	tCompute := c.Ops / rate
	tDevice := c.DeviceBytes / (p.MemBandwidthGBs * 1e9)
	out.Seconds = tCompute
	if tDevice > tCompute {
		out.Seconds = tDevice
		out.Bound = BoundDeviceMemory
	}
	out.OpsPerSec = c.Ops / out.Seconds
	out.FractionOfPeak = out.OpsPerSec / p.PeakOpsPerSec()
	return out
}

// CycleBreakdown is the modelled runtime distribution of one full
// imaging cycle (Fig. 9): gridding (gridder + subgrid FFT + adder)
// plus degridding (splitter + subgrid FFT + degridder).
type CycleBreakdown struct {
	Platform   string
	Gridder    KernelPerf
	Degridder  KernelPerf
	SubgridFFT KernelPerf // both FFT passes combined
	Adder      KernelPerf
	Splitter   KernelPerf
	// PCIeSeconds is the total transfer time; with triple buffering
	// it is overlapped with the kernels and only exposed if larger.
	PCIeSeconds float64
}

// Total returns the modelled wall-clock of one imaging cycle. On GPU
// platforms the PCIe transfers overlap with kernel execution
// (Section V-C-a), so only the excess over the compute time counts.
func (c *CycleBreakdown) Total() float64 {
	kernels := c.Gridder.Seconds + c.Degridder.Seconds + c.SubgridFFT.Seconds +
		c.Adder.Seconds + c.Splitter.Seconds
	if c.PCIeSeconds > kernels {
		return c.PCIeSeconds
	}
	return kernels
}

// GriddingSeconds returns the gridding-direction time (for Fig. 10).
func (c *CycleBreakdown) GriddingSeconds() float64 {
	return c.Gridder.Seconds + c.SubgridFFT.Seconds/2 + c.Adder.Seconds
}

// DegriddingSeconds returns the degridding-direction time.
func (c *CycleBreakdown) DegriddingSeconds() float64 {
	return c.Degridder.Seconds + c.SubgridFFT.Seconds/2 + c.Splitter.Seconds
}

// FractionInGridderDegridder returns the share of the cycle spent in
// the two direct kernels; the paper reports more than 93% on all
// platforms (Section VI-B).
func (c *CycleBreakdown) FractionInGridderDegridder() float64 {
	return (c.Gridder.Seconds + c.Degridder.Seconds) / c.Total()
}

// ImagingCycle models one full imaging cycle of the dataset on a
// platform.
func ImagingCycle(p *arch.Platform, d Dataset) CycleBreakdown {
	gc := GridderCounts(d)
	dc := DegridderCounts(d)
	fc := SubgridFFTCounts(d)
	// Both directions transform every subgrid once.
	fc.Ops *= 2
	fc.Flops *= 2
	fc.DeviceBytes *= 2

	out := CycleBreakdown{
		Platform:   p.Name,
		Gridder:    Predict(p, gc),
		Degridder:  Predict(p, dc),
		SubgridFFT: Predict(p, fc),
		Adder:      Predict(p, AdderCounts(d)),
		Splitter:   Predict(p, SplitterCounts(d)),
	}
	if p.PCIeGBs > 0 {
		out.PCIeSeconds = (gc.HtoDBytes + gc.DtoHBytes + dc.HtoDBytes + dc.DtoHBytes) /
			(p.PCIeGBs * 1e9)
	}
	return out
}

// ThroughputMVisPerSec returns the gridding and degridding throughput
// in MVisibilities/s (Fig. 10).
func ThroughputMVisPerSec(p *arch.Platform, d Dataset) (gridding, degridding float64) {
	c := ImagingCycle(p, d)
	gridding = d.NrVisibilities / c.GriddingSeconds() / 1e6
	degridding = d.NrVisibilities / c.DegriddingSeconds() / 1e6
	return gridding, degridding
}

// RooflinePoint is one marker of Fig. 11 / Fig. 13.
type RooflinePoint struct {
	Platform, Kernel string
	// Intensity is ops per byte (device or shared memory).
	Intensity float64
	// TOpsPerSec is the achieved throughput.
	TOpsPerSec float64
	// CeilingTOps is the mix-adjusted compute ceiling (the dashed
	// line of Fig. 11).
	CeilingTOps float64
	// PeakTOps is the hardware peak.
	PeakTOps float64
}

// DeviceRoofline returns the Fig. 11 points for the dataset: gridder
// and degridder on every platform, with operational intensity w.r.t.
// device memory.
func DeviceRoofline(d Dataset) []RooflinePoint {
	var out []RooflinePoint
	for _, p := range arch.Platforms() {
		for _, c := range []KernelCounts{GridderCounts(d), DegridderCounts(d)} {
			perf := Predict(p, c)
			out = append(out, RooflinePoint{
				Platform:    p.Name,
				Kernel:      c.Name,
				Intensity:   c.OperationalIntensity(),
				TOpsPerSec:  perf.OpsPerSec / 1e12,
				CeilingTOps: p.MixOpsPerSec(c.Rho) / 1e12,
				PeakTOps:    p.PeakTFlops,
			})
		}
	}
	return out
}

// SharedRoofline returns the Fig. 13 points (GPU platforms only),
// with intensity w.r.t. shared memory.
func SharedRoofline(d Dataset) []RooflinePoint {
	var out []RooflinePoint
	for _, p := range arch.Platforms() {
		if p.SharedBandwidthGBs == 0 {
			continue
		}
		for _, c := range []KernelCounts{GridderCounts(d), DegridderCounts(d)} {
			perf := Predict(p, c)
			out = append(out, RooflinePoint{
				Platform:    p.Name,
				Kernel:      c.Name,
				Intensity:   c.SharedIntensity(),
				TOpsPerSec:  perf.OpsPerSec / 1e12,
				CeilingTOps: p.SharedBandwidthGBs * 1e9 * c.SharedIntensity() / 1e12,
				PeakTOps:    p.PeakTFlops,
			})
		}
	}
	return out
}
