package repro

import (
	"io"

	"repro/internal/dataio"
	"repro/internal/noise"
	"repro/internal/weight"
)

// Imaging weighting (internal/weight).

// WeightScheme selects the imaging density weighting.
type WeightScheme = weight.Scheme

// Weighting scheme constants.
const (
	NaturalWeighting = weight.Natural
	UniformWeighting = weight.Uniform
	RobustWeighting  = weight.Robust
)

// ImagingWeights is a computed weighting function.
type ImagingWeights = weight.Weights

// ComputeWeights builds the weighting function for this observation.
func (o *Observation) ComputeWeights(scheme WeightScheme, robust float64) (*ImagingWeights, error) {
	if err := o.AllocateVisibilities(); err != nil {
		return nil, err
	}
	return weight.Compute(weight.Config{
		Scheme: scheme, Robust: robust,
		GridSize: o.Config.GridSize, ImageSize: o.ImageSize,
	}, o.Vis.UVW, o.Config.Frequencies())
}

// ApplyWeights multiplies the observation's visibilities in place and
// returns the total applied weight (the normalization a weighted
// dirty image must divide by).
func (o *Observation) ApplyWeights(w *ImagingWeights) float64 {
	return weight.Apply(o.Vis, w, o.Config.Frequencies())
}

// Noise injection (internal/noise).

// AddNoise adds zero-mean complex Gaussian noise with the given
// per-component standard deviation to all visibilities.
func (o *Observation) AddNoise(sigma float64, seed int64) error {
	if err := o.AllocateVisibilities(); err != nil {
		return err
	}
	return noise.AddGaussian(o.Vis, sigma, seed)
}

// ImageRMS estimates the noise rms of a Stokes I image, excluding a
// box of half-width exclude around pixel (cx, cy).
func ImageRMS(img []float64, n, cx, cy, exclude int) float64 {
	return noise.ImageRMS(img, n, cx, cy, exclude)
}

// Observation serialization (internal/dataio).

// WriteVisibilities stores the observation's visibilities in the
// repository's checksummed binary format.
func (o *Observation) WriteVisibilities(w io.Writer) error {
	if err := o.AllocateVisibilities(); err != nil {
		return err
	}
	return dataio.Write(w, o.Vis, o.Config.Frequencies())
}

// ReadVisibilities loads a stored observation (visibility set and
// channel frequencies).
func ReadVisibilities(r io.Reader) (*VisibilitySet, []float64, error) {
	return dataio.Read(r)
}
