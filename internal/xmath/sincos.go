package xmath

import "math"

// The gridder and degridder kernels evaluate one sine/cosine pair per
// visibility-pixel combination; the paper treats the speed of this
// evaluation as the property that separates the three platforms
// (software SVML/VML on Haswell, native ALU functions on Fiji, hardware
// special function units on Pascal). This file provides the software
// equivalents used by the Go kernels:
//
//   - SincosAccurate: math.Sincos, the libm-quality reference.
//   - SincosFast: a minimax polynomial after Cody-Waite style range
//     reduction; comparable to "medium accuracy" vendor libraries
//     (a few ulps of error in float32 terms).
//   - SincosLUT: a table lookup with linear interpolation, the cheapest
//     scheme; comparable to a hardware special-function unit with a
//     bounded absolute error.
//
// All evaluators share the signature func(x float64) (sin, cos float64)
// and are valid over the argument range used by the kernels
// (|x| <= ~1e4, see Section VI-C of the paper).

// SincosFunc evaluates sin(x) and cos(x) simultaneously, which the
// kernels exploit because both are always needed for the same phase.
type SincosFunc func(x float64) (sin, cos float64)

// SincosAccurate is the libm-quality reference evaluator.
func SincosAccurate(x float64) (float64, float64) {
	return math.Sincos(x)
}

const (
	twoPi    = 2 * math.Pi
	invTwoPi = 1 / twoPi
	// Cody-Waite split of 2*pi for accurate range reduction of
	// moderate arguments (|x| <= ~1e6) without extended precision.
	twoPiA = 6.28318530717958623200e+00 // high part of 2*pi
	twoPiB = 2.44929359829470635446e-16 // low part of 2*pi
)

// reduceTwoPi reduces x into [-pi, pi) using a Cody-Waite split.
func reduceTwoPi(x float64) float64 {
	k := math.Round(x * invTwoPi)
	r := x - k*twoPiA
	r -= k * twoPiB
	return r
}

// sinPoly evaluates sin(r) for r in [-pi/2, pi/2] with a degree-13
// odd minimax polynomial (coefficients from the standard fdlibm kernel).
func sinPoly(r float64) float64 {
	const (
		s1 = -1.66666666666666324348e-01
		s2 = 8.33333333332248946124e-03
		s3 = -1.98412698298579493134e-04
		s4 = 2.75573137070700676789e-06
		s5 = -2.50507602534068634195e-08
		s6 = 1.58969099521155010221e-10
	)
	z := r * r
	return r + r*z*(s1+z*(s2+z*(s3+z*(s4+z*(s5+z*s6)))))
}

// cosPoly evaluates cos(r) for r in [-pi/2, pi/2] with a degree-14
// even minimax polynomial (coefficients from the standard fdlibm kernel).
func cosPoly(r float64) float64 {
	const (
		c1 = 4.16666666666666019037e-02
		c2 = -1.38888888888741095749e-03
		c3 = 2.48015872894767294178e-05
		c4 = -2.75573143513906633035e-07
		c5 = 2.08757232129817482790e-09
		c6 = -1.13596475577881948265e-11
	)
	z := r * r
	return 1 - 0.5*z + z*z*(c1+z*(c2+z*(c3+z*(c4+z*(c5+z*c6)))))
}

// SincosFast evaluates sin(x), cos(x) with polynomial kernels after
// range reduction. Its accuracy is well below one float32 ulp, matching
// the "medium accuracy" (4 ulps in float32) SVML mode the paper selects.
func SincosFast(x float64) (float64, float64) {
	r := reduceTwoPi(x) // r in [-pi, pi)
	// Fold into [-pi/2, pi/2] tracking quadrant sign flips.
	sign := 1.0
	switch {
	case r > math.Pi/2:
		r = math.Pi - r
		sign = -1.0
	case r < -math.Pi/2:
		r = -math.Pi - r
		sign = -1.0
	}
	return sinPoly(r), sign * cosPoly(r)
}

// lutBits is the log2 of the sincos lookup-table size. 4096 entries over
// one period yields ~4e-7 maximum absolute error with linear
// interpolation, comparable to the 2-ulp float32 bound of the GPU
// special function units cited by the paper.
const lutBits = 12

const lutSize = 1 << lutBits

var sinTable [lutSize + 1]float64

func init() {
	for i := 0; i <= lutSize; i++ {
		sinTable[i] = math.Sin(twoPi * float64(i) / lutSize)
	}
}

// SincosLUT evaluates sin(x), cos(x) via a linearly interpolated table
// of one period. It is the fastest evaluator and models the hardware
// special-function-unit path of the Pascal GPU.
func SincosLUT(x float64) (float64, float64) {
	t := x * invTwoPi
	t -= math.Floor(t) // t in [0, 1)
	f := t * lutSize
	i := int(f)
	frac := f - float64(i)
	s := sinTable[i] + frac*(sinTable[i+1]-sinTable[i])
	// cos(x) = sin(x + pi/2): offset by a quarter table.
	j := i + lutSize/4
	if j >= lutSize {
		j -= lutSize
	}
	c := sinTable[j] + frac*(sinTable[j+1]-sinTable[j])
	return s, c
}

// Phasor returns exp(i*phase) = cos(phase) + i*sin(phase) using the
// supplied evaluator.
func Phasor(phase float64, sincos SincosFunc) complex128 {
	s, c := sincos(phase)
	return complex(c, s)
}

// MaxSincosError samples sin/cos over [-limit, limit] at n points and
// returns the maximum absolute deviation of f from the libm reference.
// The kernels' phase arguments stay within about [-1e4, 1e4]
// (Section VI-C), which is the range the accuracy claims refer to.
func MaxSincosError(f SincosFunc, limit float64, n int) float64 {
	maxErr := 0.0
	for i := 0; i < n; i++ {
		x := -limit + 2*limit*float64(i)/float64(n-1)
		s, c := f(x)
		sr, cr := math.Sincos(x)
		if d := math.Abs(s - sr); d > maxErr {
			maxErr = d
		}
		if d := math.Abs(c - cr); d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}

// Float32ULP returns the size of one unit-in-the-last-place of the
// float32 closest to x, which is the unit the accuracy bounds of the
// vendor libraries are quoted in.
func Float32ULP(x float64) float64 {
	f := float32(x)
	if f == 0 {
		return float64(math.SmallestNonzeroFloat32)
	}
	bits := math.Float32bits(f)
	next := math.Float32frombits(bits + 1)
	return math.Abs(float64(next) - float64(f))
}
