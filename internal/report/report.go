// Package report renders the benchmark results: fixed-width tables
// (the rows the paper's tables and figure captions report), ASCII
// scatter plots (the uv coverage of Fig. 8), CSV series for external
// plotting, and PGM images for the example imager.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.header, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Scatter renders points into a w x h character raster; density maps
// to the ramp " .:+*#@". Coordinates are scaled to the data's
// bounding square around the origin (symmetric), which is the right
// frame for a uv-coverage plot.
func Scatter(us, vs []float64, w, h int) string {
	if len(us) != len(vs) {
		panic("report: scatter length mismatch")
	}
	if w < 2 || h < 2 {
		panic("report: scatter raster too small")
	}
	max := 0.0
	for i := range us {
		max = math.Max(max, math.Max(math.Abs(us[i]), math.Abs(vs[i])))
	}
	if max == 0 {
		max = 1
	}
	counts := make([]int, w*h)
	peak := 0
	for i := range us {
		x := int((us[i]/max + 1) / 2 * float64(w-1))
		y := int((vs[i]/max + 1) / 2 * float64(h-1))
		counts[y*w+x]++
		if counts[y*w+x] > peak {
			peak = counts[y*w+x]
		}
	}
	ramp := []byte(" .:+*#@")
	var b strings.Builder
	for y := h - 1; y >= 0; y-- { // v axis up
		for x := 0; x < w; x++ {
			c := counts[y*w+x]
			idx := 0
			if c > 0 {
				// Log scale: uv coverage is very dense in the core.
				idx = 1 + int(float64(len(ramp)-2)*math.Log1p(float64(c))/math.Log1p(float64(peak)))
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePGM writes a grayscale image (row-major floats) as a binary
// PGM, normalizing to the data range. Negative values clip to black.
func WritePGM(w io.Writer, img []float64, width, height int) error {
	if len(img) != width*height {
		return fmt.Errorf("report: image size mismatch: %d != %d*%d", len(img), width, height)
	}
	maxV := 0.0
	for _, v := range img {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	buf := make([]byte, len(img))
	for i, v := range img {
		if v < 0 {
			v = 0
		}
		buf[i] = byte(255 * v / maxV)
	}
	_, err := w.Write(buf)
	return err
}

// Bar renders a one-line proportional bar of width chars for a value
// within [0, total].
func Bar(value, total float64, width int) string {
	if total <= 0 || width < 1 {
		return ""
	}
	n := int(value / total * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
