package fft

import (
	"math"
	"sync"
)

// The paper's subgrids are 24 pixels (2^3 * 3); vendor FFT libraries
// handle such sizes with mixed-radix decompositions rather than the
// generic Bluestein fallback. This file implements a recursive
// mixed-radix Cooley-Tukey transform for lengths whose prime factors
// are 2, 3 and 5. Radix-2 and radix-3 butterflies are specialized,
// and work buffers are pooled so concurrent transforms do not
// allocate.

// smoothFactors factors n into primes from {2, 3, 5}; ok is false if
// other factors remain. Larger factors first keeps the leaf
// transforms short.
func smoothFactors(n int) (factors []int, ok bool) {
	for _, p := range []int{5, 3, 2} {
		for n%p == 0 {
			factors = append(factors, p)
			n /= p
		}
	}
	return factors, n == 1
}

// mixedPlan holds the precomputed state for a mixed-radix transform.
type mixedPlan struct {
	n       int
	factors []int
	// roots[j] = exp(-2*pi*i*j/n); all twiddles are powers of these.
	roots []complex128
	pool  sync.Pool // *[]complex128 of length 2n
}

func newMixedPlan(n int, factors []int) *mixedPlan {
	p := &mixedPlan{n: n, factors: factors}
	p.roots = make([]complex128, n)
	for j := 0; j < n; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		p.roots[j] = complex(math.Cos(ang), math.Sin(ang))
	}
	p.pool.New = func() interface{} {
		buf := make([]complex128, 2*n)
		return &buf
	}
	return p
}

// forward computes the DFT of x in place.
func (p *mixedPlan) forward(x []complex128) {
	bufp := p.pool.Get().(*[]complex128)
	buf := *bufp
	out, scratch := buf[:p.n], buf[p.n:]
	p.rec(x, out, scratch, p.n, 1, 0)
	copy(x, out)
	p.pool.Put(bufp)
}

// rec computes the n-point DFT of src[0], src[stride], ... into
// dst[0..n); level indexes into the factor list. scratch has room for
// n elements and is free once the recursive sub-calls returned.
func (p *mixedPlan) rec(src, dst, scratch []complex128, n, stride, level int) {
	switch n {
	case 1:
		dst[0] = src[0]
		return
	case 2:
		a, b := src[0], src[stride]
		dst[0], dst[1] = a+b, a-b
		return
	case 3:
		p.dft3(src, dst, stride)
		return
	case 5:
		p.dftSmall(src, dst, 5, stride)
		return
	}
	r := p.factors[level]
	m := n / r
	// Decimation in time: r interleaved sub-transforms of length m.
	for j := 0; j < r; j++ {
		p.rec(src[j*stride:], dst[j*m:], scratch, m, stride*r, level+1)
	}
	// Combine: output index k + q*m gets
	// sum_j dst[j*m + k] * W^(j*(k + q*m)) with twiddle stride p.n/n
	// in the global root table.
	rootStride := p.n / n
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * p.roots[k*rootStride]
			scratch[k], scratch[m+k] = a+b, a-b
		}
	case 3:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * p.roots[k*rootStride]
			c := dst[2*m+k] * p.roots[2*k*rootStride%p.n]
			// Radix-3 butterfly with w = exp(-2*pi*i/3).
			t1 := b + c
			t2 := a - t1/2
			t3 := mulByI(b-c) * complex(-0.8660254037844386, 0) // sin(2*pi/3)
			scratch[k] = a + t1
			scratch[m+k] = t2 + t3
			scratch[2*m+k] = t2 - t3
		}
	default:
		for k := 0; k < m; k++ {
			for q := 0; q < r; q++ {
				idx := k + q*m
				var sum complex128
				for j := 0; j < r; j++ {
					w := p.roots[(j*idx*rootStride)%p.n]
					sum += dst[j*m+k] * w
				}
				scratch[idx] = sum
			}
		}
	}
	copy(dst[:n], scratch[:n])
}

// dft3 computes a 3-point DFT directly.
func (p *mixedPlan) dft3(src, dst []complex128, stride int) {
	a, b, c := src[0], src[stride], src[2*stride]
	t1 := b + c
	t2 := a - t1/2
	t3 := mulByI(b-c) * complex(-0.8660254037844386, 0)
	dst[0] = a + t1
	dst[1] = t2 + t3
	dst[2] = t2 - t3
}

// dftSmall computes an n-point DFT by direct summation using the
// plan's root table (used only for tiny leaf sizes).
func (p *mixedPlan) dftSmall(src, dst []complex128, n, stride int) {
	rootStride := p.n / n
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += src[j*stride] * p.roots[(j*k*rootStride)%p.n]
		}
		dst[k] = sum
	}
}

// mulByI returns i*z.
func mulByI(z complex128) complex128 {
	return complex(-imag(z), real(z))
}
