// Command idgbench regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment prints the same rows or
// series the paper reports: modelled platform numbers are derived
// from exact operation counts plus the calibrated platform models
// (see EXPERIMENTS.md), and the "plan" experiment builds the paper's
// full-size execution plan to verify the closed-form counts.
//
// Usage:
//
//	idgbench -experiment all
//	idgbench -experiment table1,fig9,fig10
//	idgbench -experiment fig8 -scale 0.2
//	idgbench -experiment measured -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
)

var experiments = []struct {
	name string
	desc string
	run  func(scale float64)
}{
	{"table1", "Table I: the three architectures", runTable1},
	{"fig8", "Fig. 8: uv coverage of the test data set", runFig8},
	{"fig9", "Fig. 9: runtime distribution of one imaging cycle", runFig9},
	{"fig10", "Fig. 10: gridding/degridding throughput", runFig10},
	{"fig11", "Fig. 11: device-memory roofline", runFig11},
	{"fig12", "Fig. 12: ops throughput vs FMA/sincos mix", runFig12},
	{"fig13", "Fig. 13: shared-memory roofline", runFig13},
	{"fig14", "Fig. 14: energy distribution of one imaging cycle", runFig14},
	{"fig15", "Fig. 15: energy efficiency of the kernels", runFig15},
	{"fig16", "Fig. 16: IDG vs W-projection throughput", runFig16},
	{"fig7", "Fig. 7: triple-buffering pipeline timeline", runFig7},
	{"plan", "full-size execution plan statistics (Section VI-A)", runPlanStats},
	{"measured", "wall-clock Go kernel measurements (scaled dataset)", runMeasured},
}

func main() {
	os.Exit(run())
}

// run carries the real main body so the profiling defers fire before
// the process exits.
func run() int {
	list := flag.String("experiment", "all",
		"comma-separated experiment list (all, table1, fig7-fig16, plan, measured)")
	scale := flag.Float64("scale", 1.0,
		"dataset scale factor for experiments that run real code")
	cpuprofile := flag.String("cpuprofile", "",
		"write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "",
		"write a heap profile taken after the selected experiments to this file")
	flag.StringVar(&traceFile, "trace", "",
		"write a chrome://tracing timeline of the measured experiment to this file")
	flag.BoolVar(&showMetrics, "metrics", false,
		"print the pipeline metrics registry after the measured experiment")
	flag.IntVar(&gridShards, "grid-shards", 0,
		"shard the uv-grid into this many locked row bands and stream the measured gridding pass (0: classic batch pipeline)")
	flag.IntVar(&maxInflight, "max-inflight", 0,
		"bound on in-flight streaming chunks of the measured experiment; implies streaming when set (0: 2x workers)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "idgbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "idgbench: start cpu profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "idgbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "idgbench: write heap profile: %v\n", err)
			}
		}()
	}

	selected := map[string]bool{}
	for _, s := range strings.Split(*list, ",") {
		selected[strings.TrimSpace(s)] = true
	}
	ran := 0
	for _, e := range experiments {
		if !selected["all"] && !selected[e.name] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.name, e.desc)
		e.run(*scale)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known:\n", *list)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
		}
		return 2
	}
	return 0
}
