//go:build amd64

package core

// haveVectorASM gates the hand-vectorized (AVX2+FMA) tile kernel
// bodies in kernels_amd64.s and kernels32_amd64.s. Whether they
// actually run is decided per Kernels value by the runtime dispatch
// table (dispatch.go): the assembled code exists on amd64, but only
// engages when the active xmath.SIMDTier is at least SIMDAVX2.
const haveVectorASM = true

// rotAccQuads is the gridder's fused rotate-and-accumulate channel
// loop, four float64 channels per iteration; see kernels_amd64.s and
// gridTileVec for the layout contract.
//
//go:noescape
func rotAccQuads(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float64, nq int, ph *float64)

// conjAccQuads is the degridder's conjugate accumulation pixel loop,
// four float64 pixels per iteration.
//
//go:noescape
func conjAccQuads(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float64, nq int)

// rotQuads advances four per-pixel phasors per iteration by their
// per-pixel delta phasors (the degridder's rotation pass).
//
//go:noescape
func rotQuads(phRe, phIm, dRe, dIm *float64, nq int)

// rotAccOcts is the float32 analogue of rotAccQuads, eight channels
// per iteration; see kernels32_amd64.s and gridTileVec32 for the
// layout contract.
//
//go:noescape
func rotAccOcts(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph *float32)

// rotAccOctsBlk is rotAccOcts blocked over nt time steps of one
// pixel: the accumulators stay in registers across the block, the
// phasor lanes reload from a fresh [18]float32 block per step (ph
// advancing phAdj bytes), and the visibility pointers advance visAdj
// bytes between steps. Bitwise equal to nt separate rotAccOcts calls.
//
//go:noescape
func rotAccOctsBlk(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph *float32, nt, visAdj, phAdj int)

// rotAccOctsBlk2 is rotAccOctsBlk for two pixels at once (EVEX
// registers Y16-Y31 hold the second pixel's state, the visibility
// loads are shared); kernels32_avx512_amd64.s. Only callable when the
// active dispatch tier is SIMDAVX512 — the encoding needs AVX-512VL.
// Bitwise equal to two single-pixel rotAccOctsBlk calls.
//
//go:noescape
func rotAccOctsBlk2(acc0, acc1, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph0, ph1 *float32, nt, visAdj, phAdj int)

// seedOctsBlk is seedOctLanes vectorized over time steps: it seeds
// ng*4 consecutive [18]float64 phasor blocks at ph from the planar
// base/delta sincos arrays (s0/c0/ds/dc each hold one value per time
// step). Bitwise equal to 4*ng seedOctLanes calls; the caller covers
// the nt mod 4 leftover steps with seedOctLanes.
//
//go:noescape
func seedOctsBlk(ph, s0, c0, ds, dc *float64, ng int)

// conjAccOcts is the float32 analogue of conjAccQuads, eight pixels
// per iteration.
//
//go:noescape
func conjAccOcts(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float32, no int)

// rotOcts is the float32 analogue of rotQuads, eight pixels per
// iteration.
//
//go:noescape
func rotOcts(phRe, phIm, dRe, dIm *float32, no int)
