//go:build !amd64

package xmath

// HasAVX2FMA reports whether this CPU supports the AVX2 and FMA
// instruction sets the hand-vectorized kernel loops in internal/core
// require. Always false off amd64.
func HasAVX2FMA() bool { return false }

// hasAVX2FMA mirrors the amd64 detection variable so shared code
// (CvtF64F32) compiles portably; constant false lets the compiler drop
// the vector branch entirely.
const hasAVX2FMA = false

// detectedSIMD: only the portable kernels exist off amd64.
const detectedSIMD = SIMDScalar
