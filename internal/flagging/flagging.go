// Package flagging detects corrupted visibility samples and records
// them in the per-sample flag mask of a VisibilitySet. Flagged samples
// are treated as zero-weight by the gridder and degridder (van der Tol
// et al., arXiv:1909.07226, handle flagged data the same way), so
// RFI-corrupted or non-finite inputs degrade sensitivity instead of
// poisoning the whole grid with NaNs.
package flagging

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xmath"
)

// Config selects the detectors Apply runs.
type Config struct {
	// NonFinite flags samples with a NaN or Inf component.
	NonFinite bool
	// MaxAmplitude flags samples whose largest correlation amplitude
	// exceeds it (amplitude clipping, the standard first-pass RFI
	// cut); <= 0 disables the detector.
	MaxAmplitude float64
}

// DefaultConfig enables the non-finite detector only.
func DefaultConfig() Config { return Config{NonFinite: true} }

// Stats reports one flagging pass.
type Stats struct {
	// NonFinite and Clipped count newly flagged samples per detector
	// (a sample failing both detectors counts once, as NonFinite).
	NonFinite int64
	Clipped   int64
	// Flagged is the total number of flagged samples after the pass,
	// including previously set flags.
	Flagged int64
	// Total is the number of samples inspected.
	Total int64
}

// NewlyFlagged is the number of samples this pass flagged.
func (s Stats) NewlyFlagged() int64 { return s.NonFinite + s.Clipped }

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("flagging: %d/%d samples flagged (%d non-finite, %d clipped)",
		s.Flagged, s.Total, s.NonFinite, s.Clipped)
}

// SampleFinite reports whether all components of a sample are finite.
func SampleFinite(m xmath.Matrix2) bool {
	for p := 0; p < 4; p++ {
		re, im := real(m[p]), imag(m[p])
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return false
		}
	}
	return true
}

// maxAmplitude returns the largest correlation magnitude of a sample.
func maxAmplitude(m xmath.Matrix2) float64 {
	a := 0.0
	for p := 0; p < 4; p++ {
		if v := math.Hypot(real(m[p]), imag(m[p])); v > a {
			a = v
		}
	}
	return a
}

// Apply runs the configured detectors over every sample of vs, sets
// the flag mask, and returns the pass statistics. Already-flagged
// samples are left flagged and not re-counted.
func Apply(vs *core.VisibilitySet, cfg Config) Stats {
	var st Stats
	st.Total = vs.NrVisibilities()
	if !cfg.NonFinite && cfg.MaxAmplitude <= 0 {
		st.Flagged = vs.NrFlagged()
		return st
	}
	vs.EnsureFlags()
	for b := range vs.Data {
		flags := vs.Flags[b]
		for i, m := range vs.Data[b] {
			if flags[i] {
				continue
			}
			switch {
			case cfg.NonFinite && !SampleFinite(m):
				flags[i] = true
				st.NonFinite++
			case cfg.MaxAmplitude > 0 && maxAmplitude(m) > cfg.MaxAmplitude:
				flags[i] = true
				st.Clipped++
			}
		}
	}
	st.Flagged = vs.NrFlagged()
	return st
}

// FlagNonFinite flags every NaN/Inf sample and returns the number of
// samples newly flagged.
func FlagNonFinite(vs *core.VisibilitySet) int64 {
	return Apply(vs, Config{NonFinite: true}).NonFinite
}

// FlagAmplitude flags every sample whose amplitude exceeds max and
// returns the number of samples newly flagged.
func FlagAmplitude(vs *core.VisibilitySet, max float64) int64 {
	return Apply(vs, Config{MaxAmplitude: max}).Clipped
}
