package repro

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkDistribScale measures one full distributed imaging pass —
// plan build, plan-scoped visibility fill, partition gridding,
// reduction-protocol delivery and tree reduction — at 1, 2, 4 and 8
// in-process workers, reporting end-to-end MVis/s. On a multi-core
// host the curve shows scale-out; on a serial host it pins the
// per-worker harness overhead (plan build, fingerprint, wire round
// trip, reduction) instead. Either way the committed
// BENCH_distrib.json numbers are what ci.sh's benchjson -compare
// gates: a fill that reverts to the full visibility set per worker,
// or a wire path that ships full zero grids, shows up as super-linear
// cost growth at workers=8 long before the threshold.
func BenchmarkDistribScale(b *testing.B) {
	cfg := distribGoldenConfig()
	o, err := cfg.BuildPlan()
	if err != nil {
		b.Fatal(err)
	}
	vis := 0
	for i := range o.Plan.Items {
		vis += o.Plan.Items[i].NrVisibilities()
	}
	model := distribGoldenModel(o)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := DistribOptions{
				Config:  cfg,
				Model:   model,
				Workers: workers,
				Axis:    DistribRows,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := RunDistributed(context.Background(), opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(vis)/b.Elapsed().Seconds()/1e6, "MVis/s")
		})
	}
}
