package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/grid"
)

// FFTSubgrids Fourier-transforms a batch of subgrids in place, image
// domain -> uv domain (the "subgrid FFTs" step of Fig. 4). Each
// correlation plane is transformed independently with the centered
// convention; the work is embarrassingly parallel over subgrids, as
// noted in Section V-B-c.
func (k *Kernels) FFTSubgrids(subgrids []*grid.Subgrid) {
	k.transformSubgrids(subgrids, false)
}

// InverseFFTSubgrids transforms subgrids uv domain -> image domain,
// used between the splitter and the degridder.
func (k *Kernels) InverseFFTSubgrids(subgrids []*grid.Subgrid) {
	k.transformSubgrids(subgrids, true)
}

func (k *Kernels) transformSubgrids(subgrids []*grid.Subgrid, inverse bool) {
	if k.ob.enabled() {
		k.ob.subgrids(k.ob.sgFFT, countLive(subgrids))
	}
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	if workers <= 1 {
		for _, s := range subgrids {
			if s != nil {
				k.fftSubgridOne(s, inverse)
			}
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		// Skipped (nil) subgrids of a degraded run carry no data.
		if s != nil {
			ch <- s
		}
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				k.fftSubgridOne(s, inverse)
			}
		}()
	}
	wg.Wait()
}

// fftSubgridOne transforms a single subgrid in place. The forward
// transform is scaled by 1/N~^2 so that (a) gridding a visibility
// deposits unit total weight onto the grid and (b) the degridding
// pipeline is the exact adjoint of the gridding pipeline (the inverse
// transform already carries the 1/N~^2 of fft.InverseCentered). The
// streaming scheduler calls this directly so each chunk worker
// transforms its own subgrids without a nested fan-out.
func (k *Kernels) fftSubgridOne(s *grid.Subgrid, inverse bool) {
	norm := complex(1/float64(k.params.SubgridSize*k.params.SubgridSize), 0)
	if k.params.DisableFastFFT {
		for c := 0; c < grid.NrCorrelations; c++ {
			if inverse {
				k.sgFFT.InverseCenteredLegacy(s.Data[c])
			} else {
				k.sgFFT.ForwardCenteredLegacy(s.Data[c])
				for i := range s.Data[c] {
					s.Data[c][i] *= norm
				}
			}
		}
		return
	}
	// All four correlation planes through the fused-centering batched
	// path; both directions carry the same 1/N~^2, so the scale folds
	// into the transform's output pass.
	k.sgFFT.TransformPlanes(s.Data[:], inverse, norm)
}

// Adder accumulates uv-domain subgrids onto the grid. Subgrids may
// overlap, so parallelizing over subgrids would need per-pixel
// synchronization; following Section V-B-d the adder parallelizes
// over grid rows instead: each worker owns a contiguous band of rows
// and adds the intersecting slice of every subgrid, so no two workers
// ever touch the same pixel.
func (k *Kernels) Adder(subgrids []*grid.Subgrid, g *grid.Grid) {
	if g.N != k.params.GridSize {
		panic("core: grid size does not match kernel parameters")
	}
	if k.ob.enabled() {
		k.ob.subgrids(k.ob.sgAdd, countLive(subgrids))
	}
	workers := k.params.workers()
	if workers > g.N {
		workers = g.N
	}
	addBand := func(rowLo, rowHi int) {
		for _, s := range subgrids {
			if s == nil {
				continue
			}
			if !s.InBounds(g.N) {
				panic("core: subgrid outside grid")
			}
			lo, hi := s.Y0, s.Y0+s.N
			if lo < rowLo {
				lo = rowLo
			}
			if hi > rowHi {
				hi = rowHi
			}
			for y := lo; y < hi; y++ {
				sy := y - s.Y0
				for c := 0; c < grid.NrCorrelations; c++ {
					dst := g.Data[c][y*g.N+s.X0 : y*g.N+s.X0+s.N]
					src := s.Data[c][sy*s.N : (sy+1)*s.N]
					for x := range dst {
						dst[x] += src[x]
					}
				}
			}
		}
	}
	if workers <= 1 || len(subgrids) == 0 {
		addBand(0, g.N)
		return
	}
	var wg sync.WaitGroup
	band := (g.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*band, (w+1)*band
		if hi > g.N {
			hi = g.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			addBand(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Splitter extracts uv-domain subgrids from the grid (the reverse of
// the adder). The grid is read-only here, so the splitter parallelizes
// over subgrids (Section V-B-d). Each destination subgrid must already
// carry its anchor (X0, Y0).
func (k *Kernels) Splitter(g *grid.Grid, subgrids []*grid.Subgrid) {
	if g.N != k.params.GridSize {
		panic("core: grid size does not match kernel parameters")
	}
	if k.ob.enabled() {
		k.ob.subgrids(k.ob.sgSplit, countLive(subgrids))
	}
	split := func(s *grid.Subgrid) {
		if s == nil {
			return
		}
		if !s.InBounds(g.N) {
			panic("core: subgrid outside grid")
		}
		for c := 0; c < grid.NrCorrelations; c++ {
			for y := 0; y < s.N; y++ {
				gy := s.Y0 + y
				copy(s.Data[c][y*s.N:(y+1)*s.N], g.Data[c][gy*g.N+s.X0:gy*g.N+s.X0+s.N])
			}
		}
	}
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	if workers <= 1 {
		for _, s := range subgrids {
			split(s)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		ch <- s
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				split(s)
			}
		}()
	}
	wg.Wait()
}

// AdderSharded accumulates uv-domain subgrids onto a sharded grid.
// Unlike Adder (whose workers each scan every subgrid for their row
// band), the sharded adder parallelizes over subgrids and lets the
// shard locks arbitrate overlapping writes, so its work scales with
// the subgrid count and its contention falls with the shard count.
//
// Determinism: with one shard or one worker the subgrids are added
// serially in batch order, which reproduces the serial Adder
// bit-for-bit. With multiple shards and workers the per-pixel
// accumulation order depends on scheduling; the result differs from
// the serial grid only by floating-point reassociation (~1e-15
// relative, far inside the equivalence suite's 1e-12 bound).
func (k *Kernels) AdderSharded(subgrids []*grid.Subgrid, sh *grid.Sharded) {
	if sh.Master().N != k.params.GridSize {
		panic("core: grid size does not match kernel parameters")
	}
	var locks, contended int64
	if k.shardSerial(len(subgrids), sh) && !k.ob.tracing() {
		// Direct serial loop: no function values, so the nil-observer
		// hot path stays allocation-free.
		for _, s := range subgrids {
			if s != nil {
				l, c := sh.AddSubgrid(s)
				locks += int64(l)
				contended += int64(c)
			}
		}
	} else {
		locks, contended = k.eachSubgridSharded(subgrids, sh, sh.AddSubgrid, sh.AddSubgridShard)
	}
	if k.ob.enabled() {
		k.ob.shardBatch(k.ob.sgAdd, countLive(subgrids), locks, contended)
	}
}

// SplitterSharded extracts uv-domain subgrids from a sharded grid
// under the shard locks, so extraction is coherent even while another
// goroutine is accumulating into the same sharded grid (the classic
// Splitter requires a quiescent grid). Each destination subgrid must
// already carry its anchor (X0, Y0).
func (k *Kernels) SplitterSharded(sh *grid.Sharded, subgrids []*grid.Subgrid) {
	if sh.Master().N != k.params.GridSize {
		panic("core: grid size does not match kernel parameters")
	}
	var locks, contended int64
	if k.shardSerial(len(subgrids), sh) && !k.ob.tracing() {
		for _, s := range subgrids {
			if s != nil {
				l, c := sh.CopySubgrid(s)
				locks += int64(l)
				contended += int64(c)
			}
		}
	} else {
		locks, contended = k.eachSubgridSharded(subgrids, sh, sh.CopySubgrid, sh.CopySubgridShard)
	}
	if k.ob.enabled() {
		k.ob.shardBatch(k.ob.sgSplit, countLive(subgrids), locks, contended)
	}
}

// shardSerial reports whether a sharded batch of n subgrids runs on
// the serial in-order path (one effective worker or one shard).
func (k *Kernels) shardSerial(n int, sh *grid.Sharded) bool {
	workers := k.params.workers()
	if workers > n {
		workers = n
	}
	return workers <= 1 || sh.NumShards() == 1
}

// eachSubgridSharded runs the shared adder/splitter scaffolding: the
// serial in-order path (one worker or one shard, bitwise-deterministic
// for the adder), the fan-out over subgrids otherwise, and the
// lock/contention accounting. whole processes a full subgrid under its
// shard locks; perShard processes a single (subgrid, shard) overlap
// and is used instead when the tracer wants per-shard spans.
func (k *Kernels) eachSubgridSharded(subgrids []*grid.Subgrid, sh *grid.Sharded,
	whole func(*grid.Subgrid) (int, int), perShard func(*grid.Subgrid, int) bool) (locks, contended int64) {
	one := func(worker int, s *grid.Subgrid) (l, c int64) {
		if s == nil {
			return 0, 0
		}
		if !k.ob.tracing() {
			ll, cc := whole(s)
			return int64(ll), int64(cc)
		}
		lo, hi := sh.ShardOfRow(s.Y0), sh.ShardOfRow(s.Y0+s.N-1)
		for si := lo; si <= hi; si++ {
			t0 := time.Now()
			if perShard(s, si) {
				c++
			}
			l++
			k.ob.shardDone(worker, si, s.WPlane, t0)
		}
		return l, c
	}
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	if workers <= 1 || sh.NumShards() == 1 {
		for _, s := range subgrids {
			l, c := one(0, s)
			locks += l
			contended += c
		}
		return locks, contended
	}
	var wg sync.WaitGroup
	var lockT, contT atomic.Int64
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		if s != nil {
			ch <- s
		}
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for s := range ch {
				l, c := one(worker, s)
				lockT.Add(l)
				contT.Add(c)
			}
		}(w)
	}
	wg.Wait()
	return lockT.Load(), contT.Load()
}

// countLive counts the non-nil subgrids of a batch (skipped items of a
// degraded run leave nil slots).
func countLive(subgrids []*grid.Subgrid) int {
	n := 0
	for _, s := range subgrids {
		if s != nil {
			n++
		}
	}
	return n
}

// AdderSerialLocked is the ablation alternative to Adder: it
// parallelizes over subgrids and serializes every grid update behind a
// single mutex, modelling the "prohibitive synchronization costs" the
// paper avoids. Only benchmarks use it.
func (k *Kernels) AdderSerialLocked(subgrids []*grid.Subgrid, g *grid.Grid) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := k.params.workers()
	if workers > len(subgrids) {
		workers = len(subgrids)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan *grid.Subgrid, len(subgrids))
	for _, s := range subgrids {
		ch <- s
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				mu.Lock()
				for c := 0; c < grid.NrCorrelations; c++ {
					for y := 0; y < s.N; y++ {
						gy := s.Y0 + y
						dst := g.Data[c][gy*g.N+s.X0 : gy*g.N+s.X0+s.N]
						src := s.Data[c][y*s.N : (y+1)*s.N]
						for x := range dst {
							dst[x] += src[x]
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
