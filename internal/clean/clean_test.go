package clean

import (
	"math"
	"testing"
)

// gaussianPSF builds a normalized synthetic PSF with Gaussian main
// lobe and low sinc-like sidelobes.
func gaussianPSF(n int, sigma float64) []float64 {
	psf := make([]float64, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dx, dy := float64(x-n/2), float64(y-n/2)
			r2 := dx*dx + dy*dy
			v := math.Exp(-r2 / (2 * sigma * sigma))
			// Small oscillatory sidelobes.
			r := math.Sqrt(r2)
			if r > 3*sigma {
				v += 0.02 * math.Sin(r) / (1 + 0.2*r)
			}
			psf[y*n+x] = v
		}
	}
	return psf
}

// dirtyFrom builds dirty = sum of flux * PSF shifted to the source
// positions.
func dirtyFrom(psf []float64, n int, comps []Component) []float64 {
	img := make([]float64, n*n)
	for _, c := range comps {
		subtractShiftedPSF(img, psf, n, c.X, c.Y, -c.Flux)
	}
	return img
}

func TestHogbomSingleSource(t *testing.T) {
	n := 64
	psf := gaussianPSF(n, 1.5)
	truth := []Component{{X: 40, Y: 25, Flux: 2.0}}
	dirty := dirtyFrom(psf, n, truth)

	res, err := Hogbom(dirty, psf, n, Params{Gain: 0.2, MaxIterations: 500, Threshold: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// The model must concentrate the flux at the source pixel.
	got := res.Model[25*n+40]
	if math.Abs(got-2.0) > 0.05 {
		t.Fatalf("model flux at source = %.4f, want 2.0", got)
	}
	if res.FinalPeak > 1e-2 {
		t.Fatalf("residual peak %.4g too high", res.FinalPeak)
	}
}

func TestHogbomTwoSources(t *testing.T) {
	n := 64
	psf := gaussianPSF(n, 1.2)
	truth := []Component{{X: 20, Y: 20, Flux: 1.0}, {X: 45, Y: 38, Flux: 0.5}}
	dirty := dirtyFrom(psf, n, truth)
	res, err := Hogbom(dirty, psf, n, Params{Gain: 0.1, MaxIterations: 2000, Threshold: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range truth {
		got := res.Model[c.Y*n+c.X]
		if math.Abs(got-c.Flux) > 0.1*c.Flux {
			t.Fatalf("flux at (%d,%d) = %.4f, want %.4f", c.X, c.Y, got, c.Flux)
		}
	}
}

func TestThresholdStopsEarly(t *testing.T) {
	n := 32
	psf := gaussianPSF(n, 1.0)
	dirty := dirtyFrom(psf, n, []Component{{X: 16, Y: 16, Flux: 1}})
	res, err := Hogbom(dirty, psf, n, Params{Gain: 0.1, MaxIterations: 10000, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPeak > 0.5 {
		t.Fatalf("stopped above threshold: %g", res.FinalPeak)
	}
	if res.Iterations > 20 {
		t.Fatalf("too many iterations for a 0.5 threshold: %d", res.Iterations)
	}
}

func TestResidualPlusModelConservesFluxForDeltaPSF(t *testing.T) {
	// With a delta PSF, CLEAN is exact: model + residual == dirty and
	// the residual goes to ~0.
	n := 16
	psf := make([]float64, n*n)
	psf[(n/2)*n+n/2] = 1
	dirty := make([]float64, n*n)
	dirty[5*n+7] = 1.5
	dirty[9*n+3] = -0.7
	res, err := Hogbom(dirty, psf, n, Params{Gain: 0.5, MaxIterations: 1000, Threshold: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dirty {
		if d := math.Abs(res.Model[i] + res.Residual[i] - dirty[i]); d > 1e-9 {
			t.Fatalf("model+residual != dirty at %d (%g)", i, d)
		}
	}
	if res.FinalPeak > 1e-8 {
		t.Fatalf("delta-PSF CLEAN did not converge: %g", res.FinalPeak)
	}
}

func TestIterationsReduceResidualMonotonically(t *testing.T) {
	n := 32
	psf := gaussianPSF(n, 1.0)
	dirty := dirtyFrom(psf, n, []Component{{X: 10, Y: 12, Flux: 1}})
	prev := math.Inf(1)
	for _, iters := range []int{1, 5, 25, 125} {
		res, err := Hogbom(dirty, psf, n, Params{Gain: 0.1, MaxIterations: iters, Threshold: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalPeak > prev+1e-12 {
			t.Fatalf("residual grew at %d iterations: %g > %g", iters, res.FinalPeak, prev)
		}
		prev = res.FinalPeak
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Gain: 0, MaxIterations: 10},
		{Gain: 1.5, MaxIterations: 10},
		{Gain: 0.1, MaxIterations: 0},
		{Gain: 0.1, MaxIterations: 10, Threshold: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %d should fail", i)
		}
	}
}

func TestHogbomInputValidation(t *testing.T) {
	p := Params{Gain: 0.1, MaxIterations: 10}
	if _, err := Hogbom(make([]float64, 10), make([]float64, 16), 4, p); err == nil {
		t.Fatal("expected size mismatch error")
	}
	// Unnormalized PSF.
	psf := make([]float64, 16)
	psf[2*4+2] = 5
	if _, err := Hogbom(make([]float64, 16), psf, 4, p); err == nil {
		t.Fatal("expected PSF normalization error")
	}
}

func TestRestoreAddsBeam(t *testing.T) {
	n := 32
	res := &Result{
		Components: []Component{{X: 16, Y: 16, Flux: 1}},
		Residual:   make([]float64, n*n),
	}
	out := Restore(res, n, 2.0)
	if math.Abs(out[16*n+16]-1) > 1e-12 {
		t.Fatalf("restored peak %.4f, want 1", out[16*n+16])
	}
	// Beam falls off.
	if out[16*n+18] >= out[16*n+16] || out[16*n+18] <= 0 {
		t.Fatal("beam profile wrong")
	}
}

func TestRestorePanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Restore(&Result{Residual: make([]float64, 4)}, 2, 0)
}

func TestMergedComponents(t *testing.T) {
	r := &Result{Components: []Component{
		{X: 1, Y: 2, Flux: 0.5}, {X: 1, Y: 2, Flux: 0.25}, {X: 3, Y: 4, Flux: 1},
	}}
	merged := r.MergedComponents()
	if len(merged) != 2 {
		t.Fatalf("got %d merged components, want 2", len(merged))
	}
	for _, c := range merged {
		if c.X == 1 && c.Y == 2 && math.Abs(c.Flux-0.75) > 1e-12 {
			t.Fatalf("merged flux %.4f, want 0.75", c.Flux)
		}
	}
}
