package grid

import (
	"math/rand"
	"sync"
	"testing"
)

func TestShardBoundsPartition(t *testing.T) {
	// The balanced partition must be exact (cover [0, n) with no gap or
	// overlap) and balanced to within one row for every geometry,
	// including shard counts that do not divide n.
	for _, tc := range []struct{ n, shards int }{
		{16, 1}, {16, 2}, {16, 3}, {16, 5}, {16, 16}, {16, 40},
		{256, 7}, {255, 8}, {1, 1}, {2, 3}, {1024, 13},
	} {
		b := ShardBounds(tc.n, tc.shards)
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("ShardBounds(%d,%d) = %v: does not span [0,%d)", tc.n, tc.shards, b, tc.n)
		}
		minW, maxW := tc.n, 0
		for i := 0; i+1 < len(b); i++ {
			w := b[i+1] - b[i]
			if w < 1 {
				t.Fatalf("ShardBounds(%d,%d) = %v: empty shard %d", tc.n, tc.shards, b, i)
			}
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
		}
		if maxW-minW > 1 {
			t.Fatalf("ShardBounds(%d,%d) = %v: unbalanced (widths %d..%d)", tc.n, tc.shards, b, minW, maxW)
		}
	}
}

func TestShardOfRowMatchesBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rnd.Intn(300)
		shards := 1 + rnd.Intn(n+4) // deliberately allows shards > n (clamped)
		sh := NewSharded(NewGrid(n), shards)
		for y := 0; y < n; y++ {
			si := sh.ShardOfRow(y)
			lo, hi := sh.Bounds(si)
			if y < lo || y >= hi {
				t.Fatalf("n=%d shards=%d: ShardOfRow(%d)=%d but Bounds(%d)=[%d,%d)",
					n, shards, y, si, si, lo, hi)
			}
		}
	}
}

// TestShardDecompositionCoversEachPixelOnce is the quickcheck-style
// coverage property: for randomized grid/shard/subgrid geometries, a
// subgrid added shard-by-shard over its ShardOfRow span touches every
// one of its master-grid pixels exactly once — the invariant behind
// the sharded adder's correctness.
func TestShardDecompositionCoversEachPixelOnce(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 8 + rnd.Intn(120)
		sgN := 1 + rnd.Intn(n)
		shards := 1 + rnd.Intn(n+2)
		sh := NewSharded(NewGrid(n), shards)
		s := NewSubgrid(sgN, rnd.Intn(n-sgN+1), rnd.Intn(n-sgN+1))
		for c := range s.Data {
			for i := range s.Data[c] {
				s.Data[c][i] = 1
			}
		}
		lo, hi := sh.ShardOfRow(s.Y0), sh.ShardOfRow(s.Y0+s.N-1)
		for si := lo; si <= hi; si++ {
			sh.AddSubgridShard(s, si)
		}
		g := sh.Master()
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := complex(0, 0)
				if x >= s.X0 && x < s.X0+s.N && y >= s.Y0 && y < s.Y0+s.N {
					want = 1
				}
				for c := 0; c < NrCorrelations; c++ {
					if got := g.At(c, y, x); got != want {
						t.Fatalf("n=%d sg=%d@(%d,%d) shards=%d: pixel (%d,%d,c%d) = %v, want %v",
							n, sgN, s.X0, s.Y0, sh.NumShards(), x, y, c, got, want)
					}
				}
			}
		}
	}
}

func TestShardedAddMatchesDirectAccumulation(t *testing.T) {
	rnd := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		n := 16 + rnd.Intn(100)
		sgN := 2 + rnd.Intn(n-2)
		s := NewSubgrid(sgN, rnd.Intn(n-sgN+1), rnd.Intn(n-sgN+1))
		for c := range s.Data {
			for i := range s.Data[c] {
				s.Data[c][i] = complex(rnd.Float64()-0.5, rnd.Float64()-0.5)
			}
		}
		ref := NewGrid(n)
		for c := 0; c < NrCorrelations; c++ {
			for y := 0; y < s.N; y++ {
				for x := 0; x < s.N; x++ {
					ref.Add(c, s.Y0+y, s.X0+x, s.At(c, y, x))
				}
			}
		}
		sh := NewSharded(NewGrid(n), 1+rnd.Intn(n))
		locks, contended := sh.AddSubgrid(s)
		if locks < 1 || contended != 0 {
			t.Fatalf("uncontended AddSubgrid reported locks=%d contended=%d", locks, contended)
		}
		if d := ref.MaxAbsDiff(sh.Master()); d != 0 {
			t.Fatalf("sharded add differs from Grid.AddSubgrid by %g", d)
		}
	}
}

func TestShardedCopyRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	n := 64
	g := NewGrid(n)
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(rnd.Float64(), rnd.Float64())
		}
	}
	sh := NewSharded(g, 7)
	s := NewSubgrid(20, 13, 29)
	sh.CopySubgrid(s)
	for c := 0; c < NrCorrelations; c++ {
		for y := 0; y < s.N; y++ {
			for x := 0; x < s.N; x++ {
				if s.At(c, y, x) != g.At(c, s.Y0+y, s.X0+x) {
					t.Fatalf("copied pixel (%d,%d,c%d) differs from grid", x, y, c)
				}
			}
		}
	}
}

func TestShardedOutOfBoundsPanics(t *testing.T) {
	sh := NewSharded(NewGrid(32), 4)
	s := NewSubgrid(16, 20, 20) // spills past the 32-pixel edge
	for name, fn := range map[string]func(){
		"add":  func() { sh.AddSubgrid(s) },
		"copy": func() { sh.CopySubgrid(s) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of out-of-bounds subgrid did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestShardedConcurrentAddsSumExactly drives many goroutines adding
// the same subgrid value concurrently: the shard locks must make every
// addition land (integer-valued pixels, so float reassociation cannot
// mask a lost update), and the lock counters must account every
// acquisition.
func TestShardedConcurrentAddsSumExactly(t *testing.T) {
	const n, sgN, adders, rounds = 96, 32, 8, 25
	sh := NewSharded(NewGrid(n), 5)
	var wg sync.WaitGroup
	for w := 0; w < adders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := NewSubgrid(sgN, (w*7)%(n-sgN), (w*13)%(n-sgN))
			for c := range s.Data {
				for i := range s.Data[c] {
					s.Data[c][i] = 1
				}
			}
			for r := 0; r < rounds; r++ {
				sh.AddSubgrid(s)
			}
		}(w)
	}
	wg.Wait()
	var total complex128
	for c := 0; c < NrCorrelations; c++ {
		for _, v := range sh.Master().Data[c] {
			total += v
		}
	}
	want := complex(float64(NrCorrelations*adders*rounds*sgN*sgN), 0)
	if total != want {
		t.Fatalf("concurrent adds summed to %v, want %v (lost updates)", total, want)
	}
	locks, contended := sh.LockStats()
	var locksTotal int64
	for i := range locks {
		locksTotal += locks[i]
		if contended[i] > locks[i] {
			t.Fatalf("shard %d: contended %d > locks %d", i, contended[i], locks[i])
		}
	}
	if locksTotal == 0 {
		t.Fatal("no lock acquisitions recorded")
	}
}
