package noise

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/sky"
	"repro/internal/uvwsim"
)

// imageNoiseRMS grids pure-noise visibilities for nt time steps and
// returns the rms of the inner quarter of the dirty image.
func imageNoiseRMS(t *testing.T, nt int, seed int64) float64 {
	t.Helper()
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 12
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	tracks := sim.AllTracks(nt)
	freqs := []float64{150e6, 150.5e6}
	maxUV := sim.MaxUV(nt) * freqs[1] / uvwsim.SpeedOfLight
	gridSize := 256
	imageSize := float64(gridSize/2-16) / maxUV

	p, err := plan.New(plan.Config{
		GridSize: gridSize, SubgridSize: 24, ImageSize: imageSize,
		Frequencies: freqs, KernelSupport: 6,
	}, tracks)
	if err != nil {
		t.Fatal(err)
	}
	k, err := core.NewKernels(core.Params{
		GridSize: gridSize, SubgridSize: 24, ImageSize: imageSize, Frequencies: freqs,
	})
	if err != nil {
		t.Fatal(err)
	}
	vs := core.MustNewVisibilitySet(sim.Baselines(), tracks, len(freqs))
	if err := AddGaussian(vs, 1.0, seed); err != nil {
		t.Fatal(err)
	}
	g := grid.NewGrid(gridSize)
	if _, err := k.GridVisibilities(context.Background(), p, vs, nil, g); err != nil {
		t.Fatal(err)
	}
	img := core.GridToImage(g, 0)
	st := p.Stats()
	core.ScaleImage(img, float64(gridSize*gridSize)/float64(st.NrGriddedVisibilities))
	si := sky.StokesI(img)
	var s float64
	var n int
	for y := gridSize / 4; y < 3*gridSize/4; y++ {
		for x := gridSize / 4; x < 3*gridSize/4; x++ {
			v := si[y*gridSize+x]
			s += v * v
			n++
		}
	}
	return math.Sqrt(s / float64(n))
}

// TestImageNoiseAveragesDown: a 9x larger visibility count must
// reduce the image noise by ~sqrt(9) = 3 (the radiometer equation).
// A single realization's rms fluctuates strongly (the dense core
// cells dominate the noise power), so both points average 4 seeds.
func TestImageNoiseAveragesDown(t *testing.T) {
	avg := func(nt int) float64 {
		var s float64
		for seed := int64(1); seed <= 4; seed++ {
			r := imageNoiseRMS(t, nt, seed)
			s += r * r
		}
		return math.Sqrt(s / 4)
	}
	rSmall := avg(64)
	rLarge := avg(576)
	ratio := rSmall / rLarge
	t.Logf("image noise: nt=64 rms %.4g, nt=576 rms %.4g, ratio %.2f (expect ~3)", rSmall, rLarge, ratio)
	if ratio < 2.1 || ratio > 4.3 {
		t.Fatalf("noise should average down by ~sqrt(9)=3, got %.2f", ratio)
	}
}
