package core

import (
	"repro/internal/grid"
	"repro/internal/xmath"
)

// scratch holds the per-worker reusable buffers of the kernel hot
// path: the visibility gather buffer, the planar real/imaginary
// backing of the batched kernels, and the phasor buffers of the
// recurrence. A scratch is owned by exactly one worker at a time
// (handed out by Kernels.getScratch / returned by putScratch), so its
// buffers need no synchronization. Buffers grow monotonically to the
// largest work item seen and are reused as-is afterwards — every
// kernel fully overwrites the prefix it slices off, so no zeroing
// happens between items.
type scratch struct {
	vis []xmath.Matrix2 // gather/scatter buffer, one entry per visibility

	planar []float64 // 8-plane re/im backing (gridder: vis, degridder: pixels)

	// Phasor buffers. The gridder uses phRe/phIm per channel; the
	// degridder uses all four per pixel (current and delta phasors)
	// plus the hoisted phase-index/offset tables.
	phRe, phIm []float64
	dRe, dIm   []float64
	pIdx, pOff []float64

	// acc is the gridder's per-pixel accumulator. It lives here because
	// its address is passed to the indirect channel-reduction call, so a
	// stack-local would escape (one heap allocation per pixel).
	acc [8]float64
}

// growF returns (*buf)[:n], reallocating when the capacity is too
// small. The returned prefix contains stale data by design.
func growF(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// visBuf returns the gather buffer resized to n visibilities.
func (s *scratch) visBuf(n int) []xmath.Matrix2 {
	if cap(s.vis) < n {
		s.vis = make([]xmath.Matrix2, n)
	}
	return s.vis[:n]
}

// getScratch hands out a per-worker scratch from the kernel pool.
func (k *Kernels) getScratch() *scratch {
	return k.scratchPool.Get().(*scratch)
}

// putScratch returns a scratch to the pool for the next worker.
func (k *Kernels) putScratch(s *scratch) {
	k.scratchPool.Put(s)
}

// getSubgrid hands out a pooled subgrid re-anchored at (x0, y0). The
// pixel data is stale: every consumer (the gridder kernel and the
// splitter) overwrites all N~^2 pixels of all four correlation planes,
// so pooled subgrids are never zeroed.
func (k *Kernels) getSubgrid(x0, y0 int) *grid.Subgrid {
	s := k.subgridPool.Get().(*grid.Subgrid)
	s.X0, s.Y0, s.WOffset = x0, y0, 0
	return s
}

// putSubgrid returns a subgrid to the pool once the adder (or the
// degridder) is done with it.
func (k *Kernels) putSubgrid(s *grid.Subgrid) {
	k.subgridPool.Put(s)
}
