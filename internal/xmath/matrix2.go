// Package xmath provides small numeric building blocks shared by the IDG
// pipeline: 2x2 complex matrix algebra for Jones matrices and brightness
// (coherency) matrices, and fast sine/cosine evaluation schemes that play
// the role the vendor math libraries (Intel SVML/VML, CUDA fast math,
// AMD native functions) play in the paper.
package xmath

import "math"

// Matrix2 is a dense 2x2 complex matrix stored row-major:
//
//	| m[0] m[1] |
//	| m[2] m[3] |
//
// It represents Jones matrices (direction-dependent station responses,
// the "A-terms" of the paper) and 2x2 visibility/brightness matrices.
type Matrix2 [4]complex128

// Identity2 returns the 2x2 identity matrix.
func Identity2() Matrix2 {
	return Matrix2{1, 0, 0, 1}
}

// Zero2 returns the 2x2 zero matrix.
func Zero2() Matrix2 {
	return Matrix2{}
}

// Add returns a + b.
func (a Matrix2) Add(b Matrix2) Matrix2 {
	return Matrix2{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// Sub returns a - b.
func (a Matrix2) Sub(b Matrix2) Matrix2 {
	return Matrix2{a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]}
}

// Mul returns the matrix product a * b.
func (a Matrix2) Mul(b Matrix2) Matrix2 {
	return Matrix2{
		a[0]*b[0] + a[1]*b[2],
		a[0]*b[1] + a[1]*b[3],
		a[2]*b[0] + a[3]*b[2],
		a[2]*b[1] + a[3]*b[3],
	}
}

// MulH returns a * bᴴ (b conjugate-transposed). This is the operation
// applied on the right-hand side of the measurement equation,
// Aₚ B A_qᴴ.
func (a Matrix2) MulH(b Matrix2) Matrix2 {
	bh := b.Hermitian()
	return a.Mul(bh)
}

// Scale returns s * a for a complex scalar s.
func (a Matrix2) Scale(s complex128) Matrix2 {
	return Matrix2{s * a[0], s * a[1], s * a[2], s * a[3]}
}

// Conj returns the element-wise complex conjugate of a.
func (a Matrix2) Conj() Matrix2 {
	return Matrix2{cconj(a[0]), cconj(a[1]), cconj(a[2]), cconj(a[3])}
}

// Transpose returns aᵀ.
func (a Matrix2) Transpose() Matrix2 {
	return Matrix2{a[0], a[2], a[1], a[3]}
}

// Hermitian returns aᴴ, the conjugate transpose.
func (a Matrix2) Hermitian() Matrix2 {
	return Matrix2{cconj(a[0]), cconj(a[2]), cconj(a[1]), cconj(a[3])}
}

// Det returns the determinant of a.
func (a Matrix2) Det() complex128 {
	return a[0]*a[3] - a[1]*a[2]
}

// Inv returns the inverse of a and reports whether a is invertible.
// A matrix is treated as singular when |det| is below 1e-30.
func (a Matrix2) Inv() (Matrix2, bool) {
	d := a.Det()
	if cabs2(d) < 1e-60 {
		return Matrix2{}, false
	}
	inv := 1 / d
	return Matrix2{inv * a[3], -inv * a[1], -inv * a[2], inv * a[0]}, true
}

// Trace returns the trace of a.
func (a Matrix2) Trace() complex128 {
	return a[0] + a[3]
}

// FrobeniusNorm returns the Frobenius norm of a.
func (a Matrix2) FrobeniusNorm() float64 {
	return math.Sqrt(cabs2(a[0]) + cabs2(a[1]) + cabs2(a[2]) + cabs2(a[3]))
}

// MaxAbsDiff returns the largest element-wise absolute difference
// between a and b; it is the metric used throughout the test suite.
func (a Matrix2) MaxAbsDiff(b Matrix2) float64 {
	m := 0.0
	for i := range a {
		if d := cabs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// SandwichH returns p * a * qᴴ, the full direction-dependent correction
// Aₚ B A_qᴴ from the measurement equation (Eq. 1 of the paper).
func (a Matrix2) SandwichH(p, q Matrix2) Matrix2 {
	return p.Mul(a).Mul(q.Hermitian())
}

func cconj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func cabs2(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

func cabs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }
