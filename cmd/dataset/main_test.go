package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDataset compiles the dataset binary into a temp dir once per
// test process. Exec-level tests pin the CLI contract scripts rely
// on: -verify must exit non-zero on a corrupt file, not print OK.
func buildDataset(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dataset")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestVerifyExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the dataset binary in -short mode")
	}
	bin := buildDataset(t)
	path := filepath.Join(t.TempDir(), "obs.idg")

	out, err := exec.Command(bin, "-generate", path, "-stations", "6", "-steps", "8", "-channels", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}

	// A pristine file verifies with exit code 0 and an OK line.
	out, err = exec.Command(bin, "-verify", path).CombinedOutput()
	if err != nil {
		t.Fatalf("verify of pristine file failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "OK") {
		t.Fatalf("verify output lacks OK: %s", out)
	}

	// Flip one payload byte mid-file: -verify must exit non-zero (the
	// checksum catches it) and must not claim OK.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-verify", path).CombinedOutput()
	if err == nil {
		t.Fatalf("verify of corrupt file exited 0:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("verify did not run to a non-zero exit: %v", err)
	}
	if strings.Contains(string(out), "OK") {
		t.Fatalf("verify printed OK for a corrupt file:\n%s", out)
	}

	// A truncated file must also fail.
	if err := os.WriteFile(path, raw[:len(raw)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-verify", path).CombinedOutput(); err == nil {
		t.Fatalf("verify of truncated file exited 0:\n%s", out)
	}

	// No mode flag at all is a usage error (exit 2), not a crash.
	if _, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Fatal("bare invocation exited 0, want usage error")
	}
}
