// Ablation benchmarks for the design choices DESIGN.md calls out:
// the sincos evaluator (the paper's SVML / fast-math / SFU axis), the
// batch-blocked kernels vs the naive Algorithm 1/2 loops, the
// row-parallel adder vs a lock-serialized one, the subgrid size, and
// the channel count (the SIMD reduction width of Listing 1).
package repro

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// ablationKernels builds kernels with the given options for a single
// work item microbench.
func ablationKernels(b *testing.B, params Params) (*Kernels, plan.WorkItem, []uvwsim.UVW, []xmath.Matrix2) {
	b.Helper()
	if params.GridSize == 0 {
		params.GridSize = 512
	}
	if params.ImageSize == 0 {
		params.ImageSize = 0.1
	}
	if params.Frequencies == nil {
		freqs := make([]float64, 8)
		for i := range freqs {
			freqs[i] = 150e6 + float64(i)*200e3
		}
		params.Frequencies = freqs
	}
	if params.SubgridSize == 0 {
		params.SubgridSize = 24
	}
	k, err := NewKernels(params)
	if err != nil {
		b.Fatal(err)
	}
	const nt = 64
	nc := len(params.Frequencies)
	item := plan.WorkItem{NrTimesteps: nt, NrChannels: nc, X0: 200, Y0: 200}
	rnd := newTestRand(11)
	uvw := make([]uvwsim.UVW, nt)
	for t := range uvw {
		uvw[t] = uvwsim.UVW{U: 50 * rnd(), V: 50 * rnd(), W: 5 * rnd()}
	}
	vis := make([]xmath.Matrix2, nt*nc)
	for i := range vis {
		vis[i] = xmath.Matrix2{1, 0, 0, 1}
	}
	return k, item, uvw, vis
}

func runGridderAblation(b *testing.B, params Params) {
	k, item, uvw, vis := ablationKernels(b, params)
	out := grid.NewSubgrid(k.Params().SubgridSize, item.X0, item.Y0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.GridSubgrid(item, uvw, vis, nil, nil, out)
	}
	b.ReportMetric(float64(b.N)*float64(item.NrVisibilities())/b.Elapsed().Seconds()/1e6, "MVis/s")
}

// BenchmarkAblationSincos compares the three sine/cosine evaluation
// strategies inside the real gridder kernel. The ordering mirrors the
// paper's platform axis: table lookup (SFU-like) > polynomial
// (SVML-like) > libm.
func BenchmarkAblationSincos(b *testing.B) {
	for _, tc := range []struct {
		name string
		fn   xmath.SincosFunc
	}{
		{"libm", xmath.SincosAccurate},
		{"polynomial", xmath.SincosFast},
		{"lut", xmath.SincosLUT},
	} {
		b.Run(tc.name, func(b *testing.B) {
			runGridderAblation(b, Params{Sincos: tc.fn})
		})
	}
}

// BenchmarkAblationBatching compares the batch-blocked kernels
// (Section V-B optimizations: transposition, planar re/im, batched
// sincos) against the naive Algorithm 1 transcription.
func BenchmarkAblationBatching(b *testing.B) {
	b.Run("batched", func(b *testing.B) {
		runGridderAblation(b, Params{})
	})
	b.Run("reference", func(b *testing.B) {
		runGridderAblation(b, Params{DisableBatching: true})
	})
}

// BenchmarkAblationPrecision compares the float64 and float32 compute
// paths of the batch-blocked gridder (same uvw/vis workload).
func BenchmarkAblationPrecision(b *testing.B) {
	b.Run("float64", func(b *testing.B) {
		runGridderAblation(b, Params{})
	})
	b.Run("float32", func(b *testing.B) {
		runGridderAblation(b, Params{Precision: Float32})
	})
}

// BenchmarkAblationVectorKernels compares the hand-vectorized AVX2+FMA
// float64 tile kernels against the generic Go tiles. On hardware
// without AVX2+FMA both sub-benchmarks run the generic path.
func BenchmarkAblationVectorKernels(b *testing.B) {
	b.Run("vector", func(b *testing.B) {
		runGridderAblation(b, Params{})
	})
	b.Run("scalar", func(b *testing.B) {
		runGridderAblation(b, Params{DisableVectorKernels: true})
	})
}

// BenchmarkAblationPixelTileRows sweeps the pixel-tile height: tiles
// size the phasor working set; very short tiles re-walk the
// visibility block more often, very tall tiles spill the planar
// visibility slabs out of L1.
func BenchmarkAblationPixelTileRows(b *testing.B) {
	for _, tr := range []int{1, 2, 4, 8, 24} {
		b.Run(fmt.Sprintf("rows=%d", tr), func(b *testing.B) {
			runGridderAblation(b, Params{PixelTileRows: tr})
		})
	}
	b.Run("disabled", func(b *testing.B) {
		runGridderAblation(b, Params{DisablePixelTiling: true})
	})
}

// BenchmarkAblationVisBlocking sweeps the visibility-block depth
// (timesteps per cache block) including the unblocked path.
func BenchmarkAblationVisBlocking(b *testing.B) {
	for _, bl := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("steps=%d", bl), func(b *testing.B) {
			runGridderAblation(b, Params{VisBlockTimesteps: bl})
		})
	}
	b.Run("disabled", func(b *testing.B) {
		runGridderAblation(b, Params{DisableVisBlocking: true})
	})
}

// BenchmarkAblationSubgridSize sweeps N~; per-visibility cost scales
// with N~^2 (the trade-off of Fig. 16: larger subgrids buy W-coverage
// at quadratic cost).
func BenchmarkAblationSubgridSize(b *testing.B) {
	for _, n := range []int{16, 24, 32, 48} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runGridderAblation(b, Params{SubgridSize: n})
		})
	}
}

// BenchmarkAblationChannelCount sweeps the channel block width of the
// inner reduction (Listing 1: vectorization works best when the
// channel count matches the SIMD width).
func BenchmarkAblationChannelCount(b *testing.B) {
	for _, nc := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("c=%d", nc), func(b *testing.B) {
			freqs := make([]float64, nc)
			for i := range freqs {
				freqs[i] = 150e6 + float64(i)*200e3
			}
			runGridderAblation(b, Params{Frequencies: freqs})
		})
	}
}

// BenchmarkAblationAdder compares the paper's row-parallel adder
// against the mutex-serialized subgrid-parallel alternative it
// rejects for its "prohibitive synchronization costs".
func BenchmarkAblationAdder(b *testing.B) {
	k, err := NewKernels(Params{
		GridSize: 1024, SubgridSize: 24, ImageSize: 0.1,
		Frequencies: []float64{150e6},
	})
	if err != nil {
		b.Fatal(err)
	}
	rnd := newTestRand(12)
	subgrids := make([]*grid.Subgrid, 512)
	for i := range subgrids {
		x0 := int(480 * (rnd() + 1) / 2)
		y0 := int(480 * (rnd() + 1) / 2)
		s := grid.NewSubgrid(24, x0, y0)
		for c := range s.Data {
			for j := range s.Data[c] {
				s.Data[c][j] = complex(rnd(), rnd())
			}
		}
		subgrids[i] = s
	}
	g := NewGrid(1024)
	b.Run("row-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.Adder(subgrids, g)
		}
		b.ReportMetric(float64(b.N)*float64(len(subgrids))/b.Elapsed().Seconds(), "subgrids/s")
	})
	b.Run("mutex-serialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.AdderSerialLocked(subgrids, g)
		}
		b.ReportMetric(float64(b.N)*float64(len(subgrids))/b.Elapsed().Seconds(), "subgrids/s")
	})
}

// BenchmarkAblationTmax sweeps the work-item time bound: small T~max
// creates more subgrids (more FFT/adder work per visibility), large
// T~max risks load imbalance; the plan statistics quantify the trade.
func BenchmarkAblationTmax(b *testing.B) {
	for _, tmax := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("tmax=%d", tmax), func(b *testing.B) {
			cfg := DefaultObservation()
			cfg.NrStations = 12
			cfg.NrTimesteps = 128
			cfg.NrChannels = 4
			cfg.GridSize = 512
			cfg.GridMargin = 32
			cfg.MaxTimestepsPerSubgrid = tmax
			obs, err := cfg.Build()
			if err != nil {
				b.Fatal(err)
			}
			pix := obs.ImageSize / float64(cfg.GridSize)
			obs.FillFromModel(SkyModel{{L: 20 * pix, M: 10 * pix, I: 1}})
			st := obs.Plan.Stats()
			b.ResetTimer()
			var times StageTimes
			for i := 0; i < b.N; i++ {
				g := NewGrid(cfg.GridSize)
				t, err := obs.Kernels.GridVisibilities(context.Background(), obs.Plan, obs.Vis, nil, g)
				if err != nil {
					b.Fatal(err)
				}
				times = t
			}
			b.ReportMetric(float64(st.NrSubgrids), "subgrids")
			b.ReportMetric(float64(st.NrGriddedVisibilities)/times.Total().Seconds()/1e6, "MVis/s")
		})
	}
}

// BenchmarkSubgridFFTStage measures the batched subgrid FFT stage:
// one batch of paper-sized (24-pixel, 4-correlation) subgrids through
// the centered forward and inverse transforms — the unit of work every
// chunk performs between gridder and adder (and splitter and
// degridder). Workers is 1 so the number is the per-core stage cost
// with no scheduling noise, and allocs/op is the steady state of the
// pooled transform scratch.
func BenchmarkSubgridFFTStage(b *testing.B) {
	k, err := NewKernels(Params{
		GridSize: 512, SubgridSize: 24, ImageSize: 0.1,
		Frequencies: []float64{150e6}, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rnd := newTestRand(13)
	batch := make([]*grid.Subgrid, 256)
	for i := range batch {
		s := grid.NewSubgrid(24, 0, 0)
		for c := range s.Data {
			for j := range s.Data[c] {
				s.Data[c][j] = complex(rnd(), rnd())
			}
		}
		batch[i] = s
	}
	k.FFTSubgrids(batch) // warm the transform scratch pools
	k.InverseFFTSubgrids(batch)
	// Both stage directions normalize by 1/n², so one round trip scales
	// the data by exactly 1/n² (the unnormalized pair contributes n²).
	// Left alone, long -benchtime runs decay the pixels into the
	// denormal range, where the FPU is several times slower, and the
	// measurement starts depending on b.N. Periodically undo the decay
	// outside the timer, well before the values leave the normal range.
	regain := math.Pow(float64(24*24), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.FFTSubgrids(batch)
		k.InverseFFTSubgrids(batch)
		if i%64 == 63 {
			b.StopTimer()
			for _, s := range batch {
				for c := range s.Data {
					for j := range s.Data[c] {
						s.Data[c][j] *= complex(regain, 0)
					}
				}
			}
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(b.N)*2*float64(len(batch))/b.Elapsed().Seconds(), "subgrids/s")
}

// BenchmarkSplitterStage measures the splitter.
func BenchmarkSplitterStage(b *testing.B) {
	k, err := NewKernels(Params{
		GridSize: 1024, SubgridSize: 24, ImageSize: 0.1,
		Frequencies: []float64{150e6},
	})
	if err != nil {
		b.Fatal(err)
	}
	g := NewGrid(1024)
	rnd := newTestRand(14)
	subgrids := make([]*grid.Subgrid, 512)
	for i := range subgrids {
		subgrids[i] = grid.NewSubgrid(24, int(480*(rnd()+1)/2), int(480*(rnd()+1)/2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Splitter(g, subgrids)
	}
	b.ReportMetric(float64(b.N)*float64(len(subgrids))/b.Elapsed().Seconds(), "subgrids/s")
}

// BenchmarkPlanConstruction measures the greedy execution planner.
func BenchmarkPlanConstruction(b *testing.B) {
	obs := mustBenchObs(b)
	cfg := obs.Plan.Config
	tracks := obs.Vis.UVW
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlan(cfg, tracks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tracks))*float64(obs.Config.NrTimesteps)*float64(b.N)/
		b.Elapsed().Seconds()/1e6, "Msamples/s")
}
