package repro

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/uvwsim"
)

// Gridding-as-a-service: the facade side of internal/server. The
// server package owns sessions, quotas and the wire protocol but never
// imports the facade; ServerBackend is the adapter that turns its
// session configs into Observations and its streamed bytes into
// gridding passes.

// Server re-exports, so operators embedding the service configure it
// without importing internal packages.
type (
	// GridServer is the multi-tenant streaming gridding server.
	GridServer = server.Server
	// GridServerConfig configures it (quotas, timeouts, wire caps).
	GridServerConfig = server.Config
	// GridSessionConfig is the wire-facing observation config clients
	// open sessions with.
	GridSessionConfig = server.SessionConfig
	// GridServerClient drives the server's HTTP API.
	GridServerClient = server.Client
	// GridSessionResult is a finalized session's grid fingerprint.
	GridSessionResult = server.Result
)

// ErrInvalidServerConfig marks server configuration rejections
// (the server-side analogue of ErrInvalidConfig).
var ErrInvalidServerConfig = server.ErrInvalidConfig

// NewGridServer validates cfg and builds a server gridding through
// the facade backend.
func NewGridServer(cfg GridServerConfig, backend *ServerBackend) (*GridServer, error) {
	if backend == nil {
		backend = &ServerBackend{}
	}
	return server.New(cfg, backend)
}

// GridFingerprint pins the exact bits of a grid: the SHA-256 of its
// little-endian complex128 bytes (correlation-plane-major, real then
// imaginary per cell) plus human-readable diagnostics for diagnosing a
// mismatch. It is the conformance currency of the repository: the
// golden tests, the server's session results and WriteGridBinary all
// speak this byte order.
type GridFingerprint struct {
	SHA256   string  `json:"sha256"`
	GridSize int     `json:"grid_size"`
	SumAbs   float64 `json:"sum_abs"`
	PeakAbs  float64 `json:"peak_abs"`
	Nonzero  int     `json:"nonzero"`
}

// FingerprintGrid hashes and summarizes a grid.
func FingerprintGrid(g *Grid) GridFingerprint {
	h := sha256.New()
	var buf [16]byte
	sum, peak := 0.0, 0.0
	nonzero := 0
	for c := 0; c < grid.NrCorrelations; c++ {
		for _, v := range g.Data[c] {
			binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(real(v)))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(v)))
			h.Write(buf[:])
			a := math.Hypot(real(v), imag(v))
			sum += a
			if a > peak {
				peak = a
			}
			if v != 0 {
				nonzero++
			}
		}
	}
	return GridFingerprint{
		SHA256:   hex.EncodeToString(h.Sum(nil)),
		GridSize: g.N,
		SumAbs:   sum,
		PeakAbs:  peak,
		Nonzero:  nonzero,
	}
}

// WriteGridBinary streams a grid in the fingerprint byte order, so
// hashing the written bytes reproduces FingerprintGrid(g).SHA256.
func WriteGridBinary(w io.Writer, g *Grid) error {
	for c := 0; c < grid.NrCorrelations; c++ {
		if err := binary.Write(w, binary.LittleEndian, g.Data[c]); err != nil {
			return err
		}
	}
	return nil
}

// planCacheEntry holds the expensive, immutable-after-build parts of
// an observation: station layout, uvw simulator, execution plan and
// the derived image size. Kernels and visibility storage are per
// session (kernels carry per-run knobs like shards and observers;
// visibilities are the session's mutable data).
type planCacheEntry struct {
	stations  []Station
	sim       *uvwsim.Simulator
	plan      *Plan
	imageSize float64
}

// The plan cache follows the FFT plan cache pattern: read-mostly
// lookups under an RWMutex, plans built outside any lock, first
// stored entry wins so concurrent sessions of the same configuration
// share one plan.
var (
	planCacheMu sync.RWMutex
	planCache   = make(map[string]*planCacheEntry)

	planCacheHits, planCacheMisses atomic.Int64
)

// ServerPlanCacheStats reports cumulative plan-cache hits and misses
// (tests pin that repeated configurations stop paying for plan
// builds).
func ServerPlanCacheStats() (hits, misses int64) {
	return planCacheHits.Load(), planCacheMisses.Load()
}

// resetServerPlanCache clears the cache and its counters (test seam).
func resetServerPlanCache() {
	planCacheMu.Lock()
	planCache = make(map[string]*planCacheEntry)
	planCacheMu.Unlock()
	planCacheHits.Store(0)
	planCacheMisses.Store(0)
}

// planKey fingerprints every field that shapes the plan. Workers is
// included defensively: the parallel plan builder is deterministic,
// but sharing across worker counts buys little and costs an invariant.
func planKey(c ObservationConfig) string {
	return fmt.Sprintf("s%d.t%d.c%d.f%g.w%g.g%d.sg%d.k%d.m%d.a%d.mts%d.ws%g.core%t.ha%g.wk%d",
		c.NrStations, c.NrTimesteps, c.NrChannels, c.StartFrequency, c.ChannelWidth,
		c.GridSize, c.SubgridSize, c.KernelSupport, c.GridMargin, c.ATermInterval,
		c.MaxTimestepsPerSubgrid, c.WStepLambda, c.CoreOnly, c.HourAngleStartDeg, c.Workers)
}

// ServerBackend implements the server's gridding backend on the
// facade: session configs become Observations (through the read-mostly
// plan cache), streamed wire samples fill their visibilities, and
// finalize runs the PR 5 streamed scheduler — checkpointing via PR 6
// when the session opted in.
type ServerBackend struct {
	// Fault is the per-item failure policy of session gridding passes
	// (zero value: fail fast). The soak suite injects chaos hooks here.
	Fault FaultConfig
	// Observer, when set, receives every session's pipeline metrics
	// and spans in addition to the server's own session metrics.
	Observer *Observer
	// DisablePlanCache builds every session from scratch (ablation and
	// equivalence-test seam).
	DisablePlanCache bool
}

// observationConfig maps a wire session config onto the facade config.
func (b *ServerBackend) observationConfig(cfg server.SessionConfig) ObservationConfig {
	return ObservationConfig{
		NrStations:        cfg.NrStations,
		NrTimesteps:       cfg.NrTimesteps,
		NrChannels:        cfg.NrChannels,
		StartFrequency:    cfg.StartFrequency,
		ChannelWidth:      cfg.ChannelWidth,
		GridSize:          cfg.GridSize,
		SubgridSize:       cfg.SubgridSize,
		KernelSupport:     cfg.KernelSupport,
		GridMargin:        cfg.GridMargin,
		ATermInterval:     cfg.ATermInterval,
		Workers:           cfg.Workers,
		GridShards:        cfg.GridShards,
		MaxInflightChunks: cfg.MaxInflightChunks,
		CheckpointDir:     cfg.CheckpointDir,
		CheckpointEvery:   cfg.CheckpointEvery,
		Observer:          b.Observer,
	}
}

// Open builds a session: plan and simulator from the cache (or a
// fresh build that populates it), fresh kernels carrying the session's
// streaming and checkpoint knobs, and zeroed visibility storage.
func (b *ServerBackend) Open(cfg server.SessionConfig) (server.BackendSession, error) {
	oc := b.observationConfig(cfg)
	o, err := b.buildObservation(oc)
	if err != nil {
		return nil, err
	}
	if err := o.AllocateVisibilities(); err != nil {
		return nil, err
	}
	return &backendSession{o: o, ft: b.Fault}, nil
}

func (b *ServerBackend) buildObservation(oc ObservationConfig) (*Observation, error) {
	if b.DisablePlanCache {
		return oc.BuildPlan()
	}
	key := planKey(oc)
	planCacheMu.RLock()
	e := planCache[key]
	planCacheMu.RUnlock()
	if e == nil {
		planCacheMisses.Add(1)
		full, err := oc.BuildPlan()
		if err != nil {
			return nil, err
		}
		fresh := &planCacheEntry{
			stations: full.Stations, sim: full.Simulator,
			plan: full.Plan, imageSize: full.ImageSize,
		}
		planCacheMu.Lock()
		if won, ok := planCache[key]; ok {
			e = won
		} else {
			planCache[key] = fresh
			e = fresh
		}
		planCacheMu.Unlock()
	} else {
		planCacheHits.Add(1)
	}
	// Per-session kernels: they carry the session's shards, in-flight
	// bound, checkpoint directory and observer, and their scratch
	// pools must not be shared across concurrently gridding sessions
	// of different knob sets.
	k, err := NewKernels(Params{
		GridSize:          oc.GridSize,
		SubgridSize:       oc.SubgridSize,
		ImageSize:         e.imageSize,
		Frequencies:       oc.Frequencies(),
		Workers:           oc.Workers,
		Precision:         oc.Precision,
		GridShards:        oc.GridShards,
		MaxInflightChunks: oc.MaxInflightChunks,
		CheckpointDir:     oc.CheckpointDir,
		CheckpointEvery:   oc.CheckpointEvery,
		Observer:          oc.Observer,
	})
	if err != nil {
		return nil, err
	}
	return &Observation{
		Config:    oc,
		Stations:  e.stations,
		Simulator: e.sim,
		Plan:      e.plan,
		Kernels:   k,
		ImageSize: e.imageSize,
	}, nil
}

// backendSession adapts one Observation to the server's session
// interface.
type backendSession struct {
	o  *Observation
	ft FaultConfig

	mu   sync.Mutex
	grid *Grid
}

// Dims returns the observation dimensions.
func (s *backendSession) Dims() (nrBaselines, nrTimesteps, nrChannels int) {
	return len(s.o.Vis.Data), s.o.Vis.NrTimesteps, s.o.Vis.NrChannels
}

// SetVisibilities stores wire samples (8 float32 per visibility,
// dataio correlation order) into the observation.
func (s *backendSession) SetVisibilities(baseline, sampleOffset int, samples []float32) error {
	if len(samples)%8 != 0 {
		return fmt.Errorf("repro: %d floats is not a whole number of visibilities", len(samples))
	}
	vs := s.o.Vis
	if baseline < 0 || baseline >= len(vs.Data) {
		return fmt.Errorf("repro: baseline %d outside [0, %d)", baseline, len(vs.Data))
	}
	n := len(samples) / 8
	data := vs.Data[baseline]
	if sampleOffset < 0 || sampleOffset+n > len(data) {
		return fmt.Errorf("repro: samples [%d, %d) outside the baseline's %d samples",
			sampleOffset, sampleOffset+n, len(data))
	}
	for i := 0; i < n; i++ {
		var m Matrix2
		for p := 0; p < 4; p++ {
			m[p] = complex(float64(samples[8*i+2*p]), float64(samples[8*i+2*p+1]))
		}
		data[sampleOffset+i] = m
	}
	return nil
}

// Run executes the streamed gridding pass and fingerprints the grid.
func (s *backendSession) Run(ctx context.Context) (*server.Result, error) {
	g, _, rep, err := s.o.GridAllStreamed(ctx, nil, s.ft)
	if err != nil {
		return nil, err
	}
	fp := FingerprintGrid(g)
	s.mu.Lock()
	s.grid = g
	s.mu.Unlock()
	res := &server.Result{
		GridSize: fp.GridSize,
		SHA256:   fp.SHA256,
		SumAbs:   fp.SumAbs,
		PeakAbs:  fp.PeakAbs,
		Nonzero:  fp.Nonzero,
	}
	if rep != nil {
		res.Notes = append(res.Notes, rep.Notes...)
		if rep.Degraded() {
			res.Notes = append(res.Notes, rep.String())
		}
	}
	return res, nil
}

// WriteGrid streams the finished grid in fingerprint byte order.
func (s *backendSession) WriteGrid(w io.Writer) error {
	s.mu.Lock()
	g := s.grid
	s.mu.Unlock()
	if g == nil {
		return fmt.Errorf("repro: session has no finished grid")
	}
	return WriteGridBinary(w, g)
}
