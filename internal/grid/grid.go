// Package grid provides the uv-grid and subgrid containers used by the
// IDG pipeline. A grid stores the Fourier transform of the sky image
// ("the grid" of the paper); subgrids are the small N~ x N~ tiles that
// the gridder kernel fills in the image domain and the adder places
// onto the grid after their FFT.
//
// All pixel data is stored as four correlation planes (XX, XY, YX, YY),
// each a row-major []complex128 indexed by y*N+x. The x axis maps to u,
// the y axis to v, with the zero frequency in the center pixel
// (N/2, N/2) — the "centered" layout produced by fft.ForwardCentered.
package grid

import (
	"fmt"
	"math"
)

// NrCorrelations is the number of polarization correlations stored per
// pixel (XX, XY, YX, YY), the "four combinations of p and q" of the
// paper.
const NrCorrelations = 4

// Grid is the full uv-grid of one imaging pass (and of one W-layer when
// W-stacking is used).
type Grid struct {
	// N is the grid size in pixels along one side.
	N int
	// Data holds one row-major N*N plane per correlation.
	Data [NrCorrelations][]complex128
}

// NewGrid allocates a zeroed grid of size n x n pixels.
func NewGrid(n int) *Grid {
	if n < 1 {
		panic(fmt.Sprintf("grid: invalid grid size %d", n))
	}
	g := &Grid{N: n}
	backing := make([]complex128, NrCorrelations*n*n)
	for c := 0; c < NrCorrelations; c++ {
		g.Data[c] = backing[c*n*n : (c+1)*n*n]
	}
	return g
}

// At returns the value of correlation c at pixel (x, y).
func (g *Grid) At(c, y, x int) complex128 {
	return g.Data[c][y*g.N+x]
}

// Set stores v into correlation c at pixel (x, y).
func (g *Grid) Set(c, y, x int, v complex128) {
	g.Data[c][y*g.N+x] = v
}

// Add accumulates v into correlation c at pixel (x, y).
func (g *Grid) Add(c, y, x int, v complex128) {
	g.Data[c][y*g.N+x] += v
}

// Zero clears all pixels.
func (g *Grid) Zero() {
	for c := range g.Data {
		clear(g.Data[c])
	}
}

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	out := NewGrid(g.N)
	for c := range g.Data {
		copy(out.Data[c], g.Data[c])
	}
	return out
}

// AddGrid accumulates other into g. The sizes must match.
func (g *Grid) AddGrid(other *Grid) {
	if other.N != g.N {
		panic(fmt.Sprintf("grid: size mismatch %d vs %d", g.N, other.N))
	}
	for c := range g.Data {
		dst, src := g.Data[c], other.Data[c]
		for i := range dst {
			dst[i] += src[i]
		}
	}
}

// MaxAbsDiff returns the largest per-pixel complex magnitude difference
// between g and other; used by the test suite.
func (g *Grid) MaxAbsDiff(other *Grid) float64 {
	if other.N != g.N {
		panic("grid: size mismatch")
	}
	m := 0.0
	for c := range g.Data {
		for i := range g.Data[c] {
			d := g.Data[c][i] - other.Data[c][i]
			if a := abs(d); a > m {
				m = a
			}
		}
	}
	return m
}

// Norm2 returns the sum of squared magnitudes over all pixels and
// correlations.
func (g *Grid) Norm2() float64 {
	var s float64
	for c := range g.Data {
		for _, v := range g.Data[c] {
			s += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return s
}

func abs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
