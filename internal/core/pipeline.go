package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aterm"
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// VisibilitySet holds the measurement data of one observation: the
// uvw tracks and the 2x2 correlation visibilities of every baseline.
type VisibilitySet struct {
	// Baselines maps baseline indices to station pairs.
	Baselines []uvwsim.Baseline
	// UVW holds the uvw track of each baseline in meters: UVW[b][t].
	UVW [][]uvwsim.UVW
	// Data holds the visibilities: Data[b][t*NrChannels + c].
	Data [][]xmath.Matrix2
	// NrTimesteps and NrChannels give the time/channel dimensions.
	NrTimesteps, NrChannels int
}

// NewVisibilitySet allocates a zeroed visibility set for the given
// baselines and dimensions. The uvw tracks must be filled by the
// caller (typically from uvwsim).
func NewVisibilitySet(baselines []uvwsim.Baseline, uvw [][]uvwsim.UVW, nrChannels int) *VisibilitySet {
	if len(baselines) != len(uvw) {
		panic("core: baseline/uvw length mismatch")
	}
	if len(uvw) == 0 || len(uvw[0]) == 0 {
		panic("core: empty visibility set")
	}
	nt := len(uvw[0])
	vs := &VisibilitySet{
		Baselines:   baselines,
		UVW:         uvw,
		Data:        make([][]xmath.Matrix2, len(baselines)),
		NrTimesteps: nt,
		NrChannels:  nrChannels,
	}
	for b := range vs.Data {
		if len(uvw[b]) != nt {
			panic("core: ragged uvw tracks")
		}
		vs.Data[b] = make([]xmath.Matrix2, nt*nrChannels)
	}
	return vs
}

// NrVisibilities returns the total number of visibilities.
func (vs *VisibilitySet) NrVisibilities() int64 {
	return int64(len(vs.Baselines)) * int64(vs.NrTimesteps) * int64(vs.NrChannels)
}

// gather copies the visibilities covered by a work item into dst
// (layout [t*item.NrChannels + c]).
func (vs *VisibilitySet) gather(item plan.WorkItem, dst []xmath.Matrix2) {
	src := vs.Data[item.Baseline]
	for t := 0; t < item.NrTimesteps; t++ {
		row := (item.TimeStart + t) * vs.NrChannels
		copy(dst[t*item.NrChannels:(t+1)*item.NrChannels],
			src[row+item.Channel0:row+item.Channel0+item.NrChannels])
	}
}

// scatter writes predicted visibilities of a work item back.
func (vs *VisibilitySet) scatter(item plan.WorkItem, src []xmath.Matrix2) {
	dst := vs.Data[item.Baseline]
	for t := 0; t < item.NrTimesteps; t++ {
		row := (item.TimeStart + t) * vs.NrChannels
		copy(dst[row+item.Channel0:row+item.Channel0+item.NrChannels],
			src[t*item.NrChannels:(t+1)*item.NrChannels])
	}
}

// itemUVW returns the uvw slice covered by a work item.
func (vs *VisibilitySet) itemUVW(item plan.WorkItem) []uvwsim.UVW {
	return vs.UVW[item.Baseline][item.TimeStart : item.TimeStart+item.NrTimesteps]
}

// StageTimes records the wall-clock time spent per pipeline stage,
// the Go-measured analogue of the paper's Fig. 9 runtime distribution.
type StageTimes struct {
	Gridder    time.Duration
	Degridder  time.Duration
	SubgridFFT time.Duration
	Adder      time.Duration
	Splitter   time.Duration
}

// Total returns the summed stage time.
func (s StageTimes) Total() time.Duration {
	return s.Gridder + s.Degridder + s.SubgridFFT + s.Adder + s.Splitter
}

// Add accumulates other into s.
func (s *StageTimes) Add(other StageTimes) {
	s.Gridder += other.Gridder
	s.Degridder += other.Degridder
	s.SubgridFFT += other.SubgridFFT
	s.Adder += other.Adder
	s.Splitter += other.Splitter
}

// DefaultWorkGroupSize is the number of work items processed per
// pipeline round; it bounds the subgrid buffer memory the same way
// the paper's work groups bound the GPU device buffers.
const DefaultWorkGroupSize = 1024

// atermMaps precomputes the per-pixel A-term maps needed by a group of
// work items, returning a lookup by (station, slot). A nil provider
// yields a nil map (identity fast path).
func (k *Kernels) atermMaps(items []plan.WorkItem, baselines []uvwsim.Baseline, prov aterm.Provider) map[[2]int][]xmath.Matrix2 {
	if prov == nil {
		return nil
	}
	cache := aterm.NewCache(prov, k.params.SubgridSize, k.params.ImageSize)
	maps := make(map[[2]int][]xmath.Matrix2)
	for i := range items {
		b := baselines[items[i].Baseline]
		slot := items[i].ATermSlot
		for _, st := range [2]int{b.P, b.Q} {
			key := [2]int{st, slot}
			if _, ok := maps[key]; !ok {
				maps[key] = cache.Get(st, slot)
			}
		}
	}
	return maps
}

// GridVisibilities runs the full gridding pass of Fig. 4: gridder
// kernel, subgrid FFTs, adder; group by group over the plan's work.
// The grid is accumulated into (callers zero it first for a fresh
// pass). It returns per-stage timings.
func (k *Kernels) GridVisibilities(p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, g *grid.Grid) (StageTimes, error) {
	var times StageTimes
	if err := k.checkPlan(p, vs); err != nil {
		return times, err
	}
	for _, group := range p.WorkGroups(DefaultWorkGroupSize) {
		maps := k.atermMaps(group, vs.Baselines, prov)
		subgrids := make([]*grid.Subgrid, len(group))

		start := time.Now()
		k.forEachItem(len(group), func(i int) {
			item := group[i]
			sgr := grid.NewSubgrid(k.params.SubgridSize, item.X0, item.Y0)
			vis := make([]xmath.Matrix2, item.NrVisibilities())
			vs.gather(item, vis)
			ap, aq := k.lookupATerms(maps, vs.Baselines, item)
			k.GridSubgrid(item, vs.itemUVW(item), vis, ap, aq, sgr)
			subgrids[i] = sgr
		})
		times.Gridder += time.Since(start)

		start = time.Now()
		k.FFTSubgrids(subgrids)
		times.SubgridFFT += time.Since(start)

		start = time.Now()
		k.Adder(subgrids, g)
		times.Adder += time.Since(start)
	}
	return times, nil
}

// DegridVisibilities runs the full degridding pass of Fig. 4 in
// reverse order: splitter, inverse subgrid FFTs, degridder kernel.
// Predicted visibilities overwrite vs.Data.
func (k *Kernels) DegridVisibilities(p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, g *grid.Grid) (StageTimes, error) {
	var times StageTimes
	if err := k.checkPlan(p, vs); err != nil {
		return times, err
	}
	for _, group := range p.WorkGroups(DefaultWorkGroupSize) {
		maps := k.atermMaps(group, vs.Baselines, prov)
		subgrids := make([]*grid.Subgrid, len(group))
		for i, item := range group {
			sgr := grid.NewSubgrid(k.params.SubgridSize, item.X0, item.Y0)
			sgr.WOffset = item.WOffset
			subgrids[i] = sgr
		}

		start := time.Now()
		k.Splitter(g, subgrids)
		times.Splitter += time.Since(start)

		start = time.Now()
		k.InverseFFTSubgrids(subgrids)
		times.SubgridFFT += time.Since(start)

		start = time.Now()
		k.forEachItem(len(group), func(i int) {
			item := group[i]
			vis := make([]xmath.Matrix2, item.NrVisibilities())
			ap, aq := k.lookupATerms(maps, vs.Baselines, item)
			k.DegridSubgrid(item, subgrids[i], vs.itemUVW(item), ap, aq, vis)
			vs.scatter(item, vis)
		})
		times.Degridder += time.Since(start)
	}
	return times, nil
}

func (k *Kernels) lookupATerms(maps map[[2]int][]xmath.Matrix2, baselines []uvwsim.Baseline, item plan.WorkItem) (ap, aq []xmath.Matrix2) {
	if maps == nil {
		return nil, nil
	}
	b := baselines[item.Baseline]
	return maps[[2]int{b.P, item.ATermSlot}], maps[[2]int{b.Q, item.ATermSlot}]
}

func (k *Kernels) checkPlan(p *plan.Plan, vs *VisibilitySet) error {
	switch {
	case p.GridSize != k.params.GridSize:
		return fmt.Errorf("core: plan grid size %d != kernel grid size %d", p.GridSize, k.params.GridSize)
	case p.SubgridSize != k.params.SubgridSize:
		return fmt.Errorf("core: plan subgrid size %d != kernel subgrid size %d", p.SubgridSize, k.params.SubgridSize)
	case p.ImageSize != k.params.ImageSize:
		return fmt.Errorf("core: plan image size %g != kernel image size %g", p.ImageSize, k.params.ImageSize)
	case len(p.Frequencies) != len(k.params.Frequencies):
		return fmt.Errorf("core: plan has %d channels, kernels have %d", len(p.Frequencies), len(k.params.Frequencies))
	case vs.NrChannels != len(k.params.Frequencies):
		return fmt.Errorf("core: visibility set has %d channels, kernels have %d", vs.NrChannels, len(k.params.Frequencies))
	}
	return nil
}

// forEachItem runs fn(i) for i in [0, n) on the worker pool.
func (k *Kernels) forEachItem(n int, fn func(i int)) {
	workers := k.params.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
