package fft

// The IDG subgrids are images whose center pixel (N/2, N/2) is the
// phase center, while the DFT convention puts the zero frequency at
// index 0. The centered transforms below absorb the required
// fftshift/ifftshift pairs so that both the image-domain and the
// uv-domain arrays keep "DC in the middle", which is the layout the
// gridder, adder and splitter use.

// Shift performs an fftshift of x in place: it rotates the data right
// by floor(n/2) (equivalently left by ceil(n/2)), moving the
// zero-frequency element to index n/2.
func Shift(x []complex128) {
	rotate(x, (len(x)+1)/2)
}

// InverseShift performs an ifftshift in place: it rotates the data left
// by floor(n/2), undoing Shift for any length.
func InverseShift(x []complex128) {
	rotate(x, len(x)/2)
}

// rotate rotates x left by k positions using the three-reversal trick.
func rotate(x []complex128, k int) {
	n := len(x)
	if n == 0 {
		return
	}
	k %= n
	if k == 0 {
		return
	}
	reverse(x[:k])
	reverse(x[k:])
	reverse(x)
}

func reverse(x []complex128) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// Shift2D applies fftshift along both axes of a rows x cols row-major
// array.
func Shift2D(x []complex128, rows, cols int) {
	shift2D(x, rows, cols, false)
}

// InverseShift2D applies ifftshift along both axes.
func InverseShift2D(x []complex128, rows, cols int) {
	shift2D(x, rows, cols, true)
}

func shift2D(x []complex128, rows, cols int, inverse bool) {
	if len(x) != rows*cols {
		panic("fft: shift2D size mismatch")
	}
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		if inverse {
			InverseShift(row)
		} else {
			Shift(row)
		}
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if inverse {
			InverseShift(col)
		} else {
			Shift(col)
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
}

// ForwardCentered computes the centered forward 2-D transform:
// fftshift(FFT(ifftshift(x))). Both input and output have DC at
// (rows/2, cols/2). This is the image-domain -> uv-domain direction
// used after the gridder kernel.
func (p *Plan2D) ForwardCentered(x []complex128) {
	InverseShift2D(x, p.rows, p.cols)
	p.Forward(x)
	Shift2D(x, p.rows, p.cols)
}

// InverseCentered computes fftshift(IFFT(ifftshift(x))), the
// uv-domain -> image-domain direction used before the degridder kernel
// and for turning the final grid into a sky image.
func (p *Plan2D) InverseCentered(x []complex128) {
	InverseShift2D(x, p.rows, p.cols)
	p.Inverse(x)
	Shift2D(x, p.rows, p.cols)
}

// ForwardCenteredParallel is ForwardCentered with a parallel core
// transform; the shifts remain serial (they are bandwidth trivial
// compared to the transform for the sizes used here).
func (p *Plan2D) ForwardCenteredParallel(x []complex128, workers int) {
	InverseShift2D(x, p.rows, p.cols)
	p.ForwardParallel(x, workers)
	Shift2D(x, p.rows, p.cols)
}

// InverseCenteredParallel is the parallel variant of InverseCentered.
func (p *Plan2D) InverseCenteredParallel(x []complex128, workers int) {
	InverseShift2D(x, p.rows, p.cols)
	p.InverseParallel(x, workers)
	Shift2D(x, p.rows, p.cols)
}
