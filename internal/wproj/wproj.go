// Package wproj implements W-projection gridding (Cornwell et al.),
// the traditional algorithm IDG is compared against in Section VI-E of
// the paper (there called WPG, after Romein's GPU implementation). A
// visibility is convolved onto the grid with an oversampled W-kernel:
// the Fourier transform of the taper times the w phase screen
// exp(-2*pi*i*w*n(l,m)). Kernels are precomputed per W-plane; their
// size N_W x N_W and the oversampling factor (8 in the paper) make the
// kernel set the large multi-dimensional data structure whose cost IDG
// avoids.
package wproj

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/sky"
	"repro/internal/taper"
	"repro/internal/xmath"
)

// Config describes a W-projection gridder.
type Config struct {
	// GridSize is the grid dimension in pixels.
	GridSize int
	// ImageSize is the field of view in direction cosines.
	ImageSize float64
	// Support is the kernel size N_W in uv cells (an even number).
	Support int
	// Oversampling is the number of kernel samples per uv cell
	// (8 in the paper's WPG configuration).
	Oversampling int
	// WStepLambda is the W-plane spacing in wavelengths; kernels are
	// computed per plane. 0 means a single w=0 kernel (pure
	// convolutional gridding, no w correction).
	WStepLambda float64
	// MaxWLambda bounds |w|; determines how many kernels are built.
	MaxWLambda float64
	// Taper is the image-domain anti-aliasing window; nil selects the
	// prolate spheroidal.
	Taper func(nu float64) float64
	// Sincos evaluates the w-screen phases during kernel precomputation;
	// nil selects the lane-parallel xmath.SincosVec, which evaluates
	// whole screen rows per call on the active SIMD tier within the
	// documented 4-float32-ulp bound (screen phases |2*pi*w*n| stay far
	// inside its reduced range). Unlike the IDG kernels, no
	// phasor-rotation recurrence can replace the evaluation here: the
	// screen phase -2*pi*w*n(l,m) is not affine in the pixel index (n is
	// a square root of l and m), so each pixel needs a genuine
	// evaluation. A non-nil evaluator runs scalar, one call per pixel —
	// the same batch-wraps-scalar rule as the IDG kernels — so callers
	// can still pin xmath.SincosAccurate (bit-stable reference kernels)
	// or instrument the evaluation.
	Sincos xmath.SincosFunc
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.GridSize < 2:
		return fmt.Errorf("wproj: grid size %d too small", c.GridSize)
	case c.ImageSize <= 0:
		return fmt.Errorf("wproj: image size must be positive")
	case c.Support < 4 || c.Support%2 != 0:
		return fmt.Errorf("wproj: support %d must be even and >= 4", c.Support)
	case c.Oversampling < 1:
		return fmt.Errorf("wproj: oversampling %d must be >= 1", c.Oversampling)
	case c.WStepLambda < 0 || c.MaxWLambda < 0:
		return fmt.Errorf("wproj: negative w parameters")
	}
	if c.WStepLambda > 0 {
		if planes := int(c.MaxWLambda/c.WStepLambda) + 1; planes > 1024 {
			return fmt.Errorf("wproj: %d W-planes exceed the 1024 limit (this memory blow-up is what IDG avoids)", planes)
		}
	}
	return nil
}

// kernel holds one W-plane's oversampled convolution function as a
// fine uv-sampled array; tap values for a fractional offset are read
// with stride Oversampling.
type kernel struct {
	fineN  int
	center int
	data   []complex128
}

// Gridder grids and degrids visibilities with W-projection.
type Gridder struct {
	cfg       Config
	sincosVec func(sin, cos, x []float64) // batched w-screen phase evaluator
	kernels   map[int]*kernel             // by W-plane index (w >= 0; negative w uses conjugate symmetry)
	norm      float64                     // global kernel normalization
}

// NewGridder precomputes the kernels for all W-planes.
func NewGridder(cfg Config) (*Gridder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Taper == nil {
		cfg.Taper = taper.Spheroidal
	}
	g := &Gridder{cfg: cfg, kernels: make(map[int]*kernel)}
	if cfg.Sincos != nil {
		fn := cfg.Sincos
		g.sincosVec = func(sin, cos, x []float64) {
			for i, v := range x {
				sin[i], cos[i] = fn(v)
			}
		}
	} else {
		g.sincosVec = xmath.SincosVec
	}
	nPlanes := 1
	if cfg.WStepLambda > 0 {
		nPlanes = int(cfg.MaxWLambda/cfg.WStepLambda) + 2
	}
	for p := 0; p < nPlanes; p++ {
		w := float64(p) * cfg.WStepLambda
		g.kernels[p] = g.computeKernel(w)
	}
	// Normalize all kernels by the zero-offset tap sum of the w=0
	// kernel, scaled so the effective image-domain weighting equals
	// the taper itself (as in the IDG pipeline): then the standard
	// taper correction applies unchanged to W-projection images.
	g.norm = 1
	sum := g.tapSum(g.kernels[0], 0, 0)
	if sum == 0 {
		return nil, fmt.Errorf("wproj: degenerate kernel")
	}
	g.norm = cfg.Taper(0) * cfg.Taper(0) / sum
	return g, nil
}

// Support returns the kernel support N_W.
func (g *Gridder) Support() int { return g.cfg.Support }

// NrWPlanes returns the number of precomputed kernels.
func (g *Gridder) NrWPlanes() int { return len(g.kernels) }

// KernelBytes returns the total kernel storage in bytes — the memory
// cost Section VI-E highlights.
func (g *Gridder) KernelBytes() int64 {
	var total int64
	for _, k := range g.kernels {
		total += int64(len(k.data)) * 16
	}
	return total
}

// computeKernel builds the oversampled kernel for w (wavelengths): the
// centered FFT of taper(l,m) * exp(-2*pi*i*w*n(l,m)) sampled over the
// field of view, zero-padded by the oversampling factor.
func (g *Gridder) computeKernel(w float64) *kernel {
	nw, ov := g.cfg.Support, g.cfg.Oversampling
	m := 2 * nw // image-domain resolution: twice the kernel support
	s := m * ov // padded FFT size
	screen := make([]complex128, s*s)
	// One batched sincos evaluation per screen row: stage the row's
	// phases (zero for pixels outside the unit sphere, skipped on the
	// consume pass), evaluate lane-parallel, then apply the taper.
	args := make([]float64, m)
	sins := make([]float64, m)
	coss := make([]float64, m)
	for y := 0; y < m; y++ {
		nuY := float64(y-m/2) / float64(m/2)
		mm := nuY * g.cfg.ImageSize / 2
		for x := 0; x < m; x++ {
			nuX := float64(x-m/2) / float64(m/2)
			ll := nuX * g.cfg.ImageSize / 2
			args[x] = 0
			if ll*ll+mm*mm < 1 {
				args[x] = -2 * math.Pi * w * sky.N(ll, mm)
			}
		}
		g.sincosVec(sins, coss, args)
		for x := 0; x < m; x++ {
			nuX := float64(x-m/2) / float64(m/2)
			ll := nuX * g.cfg.ImageSize / 2
			if ll*ll+mm*mm >= 1 {
				continue
			}
			tap := g.cfg.Taper(nuX) * g.cfg.Taper(nuY)
			// Embed centered in the padded array.
			sy := y - m/2 + s/2
			sx := x - m/2 + s/2
			screen[sy*s+sx] = complex(tap*coss[x], tap*sins[x])
		}
	}
	// Every W-plane shares the same screen size; the cached plan keeps
	// one twiddle/scratch set across all planes and evaluators.
	plan := fft.CachedPlan2D(s, s)
	plan.ForwardCentered(screen)
	// Keep the central fine region needed at grid time:
	// |dx*ov - ox| <= nw/2*ov + ov.
	half := nw/2*ov + ov
	fineN := 2*half + 1
	k := &kernel{fineN: fineN, center: half}
	k.data = make([]complex128, fineN*fineN)
	for y := 0; y < fineN; y++ {
		for x := 0; x < fineN; x++ {
			k.data[y*fineN+x] = screen[(y-half+s/2)*s+(x-half+s/2)]
		}
	}
	return k
}

// tap returns the kernel value for integer tap (dx, dy) at fine
// offsets (ox, oy) in [-ov/2, ov/2].
func (k *kernel) tap(dx, dy, ox, oy, ov int) complex128 {
	ix := k.center + dx*ov - ox
	iy := k.center + dy*ov - oy
	return k.data[iy*k.fineN+ix]
}

// tapSum sums the integer taps of a kernel at a fine offset.
func (g *Gridder) tapSum(k *kernel, ox, oy int) float64 {
	nw, ov := g.cfg.Support, g.cfg.Oversampling
	var sum complex128
	for dy := -nw / 2; dy < nw/2; dy++ {
		for dx := -nw / 2; dx < nw/2; dx++ {
			sum += k.tap(dx, dy, ox, oy, ov)
		}
	}
	return math.Hypot(real(sum), imag(sum)) * g.norm
}

// selectKernel picks the W-plane kernel for w and reports whether the
// conjugate must be used (negative w exploits K_{-w} = conj(K_w)).
func (g *Gridder) selectKernel(w float64) (*kernel, bool) {
	conjugate := w < 0
	if w < 0 {
		w = -w
	}
	p := 0
	if g.cfg.WStepLambda > 0 {
		p = int(math.Round(w / g.cfg.WStepLambda))
	}
	k, ok := g.kernels[p]
	if !ok {
		// Clamp to the outermost plane.
		k = g.kernels[len(g.kernels)-1]
	}
	return k, conjugate
}

// uvToPixel converts u (wavelengths) to fractional grid pixels.
func (g *Gridder) uvToPixel(u float64) (i0, off int, ok bool) {
	ov := g.cfg.Oversampling
	up := u*g.cfg.ImageSize + float64(g.cfg.GridSize)/2
	i0 = int(math.Round(up))
	off = int(math.Round((up - float64(i0)) * float64(ov)))
	half := g.cfg.Support / 2
	if i0-half < 0 || i0+half > g.cfg.GridSize {
		return 0, 0, false
	}
	return i0, off, true
}

// Grid convolves one visibility onto the grid; it reports whether the
// visibility fell inside the grid. u, v, w are in wavelengths.
// Gridding uses the conjugate kernel (the adjoint of degridding), so
// that imaging removes the w phase instead of doubling it.
func (g *Gridder) Grid(u, v, w float64, vis xmath.Matrix2, dst *grid.Grid) bool {
	if dst.N != g.cfg.GridSize {
		panic("wproj: grid size mismatch")
	}
	iu, ox, ok := g.uvToPixel(u)
	if !ok {
		return false
	}
	iv, oy, ok := g.uvToPixel(v)
	if !ok {
		return false
	}
	k, conjugate := g.selectKernel(w)
	nw, ov := g.cfg.Support, g.cfg.Oversampling
	n := dst.N
	norm := complex(g.norm, 0)
	for dy := -nw / 2; dy < nw/2; dy++ {
		gy := iv + dy
		for dx := -nw / 2; dx < nw/2; dx++ {
			gx := iu + dx
			t := k.tap(dx, dy, ox, oy, ov)
			// Gridding kernel: conj(K_w); for negative w the kernel is
			// conj(K_{|w|}), so the two conjugations cancel.
			if !conjugate {
				t = complex(real(t), -imag(t))
			}
			t *= norm
			i := gy*n + gx
			dst.Data[0][i] += t * vis[0]
			dst.Data[1][i] += t * vis[1]
			dst.Data[2][i] += t * vis[2]
			dst.Data[3][i] += t * vis[3]
		}
	}
	return true
}

// Degrid predicts one visibility from the grid by convolution with the
// W-kernel. It returns the zero matrix for points off the grid.
func (g *Gridder) Degrid(u, v, w float64, src *grid.Grid) (xmath.Matrix2, bool) {
	if src.N != g.cfg.GridSize {
		panic("wproj: grid size mismatch")
	}
	iu, ox, ok := g.uvToPixel(u)
	if !ok {
		return xmath.Matrix2{}, false
	}
	iv, oy, ok := g.uvToPixel(v)
	if !ok {
		return xmath.Matrix2{}, false
	}
	k, conjugate := g.selectKernel(w)
	nw, ov := g.cfg.Support, g.cfg.Oversampling
	n := src.N
	var out xmath.Matrix2
	for dy := -nw / 2; dy < nw/2; dy++ {
		gy := iv + dy
		for dx := -nw / 2; dx < nw/2; dx++ {
			gx := iu + dx
			t := k.tap(dx, dy, ox, oy, ov)
			if conjugate {
				t = complex(real(t), -imag(t))
			}
			i := gy*n + gx
			out[0] += t * src.Data[0][i]
			out[1] += t * src.Data[1][i]
			out[2] += t * src.Data[2][i]
			out[3] += t * src.Data[3][i]
		}
	}
	norm := complex(g.norm, 0)
	return xmath.Matrix2{out[0] * norm, out[1] * norm, out[2] * norm, out[3] * norm}, true
}
