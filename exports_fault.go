package repro

import (
	"repro/internal/faultinject"
	"repro/internal/faulttol"
	"repro/internal/flagging"
)

// Fault tolerance (internal/faulttol): every pipeline entry point
// accepts a context for cancellation, and the FT variants take a
// FaultConfig selecting what happens when a work item fails.

type (
	// FaultConfig selects the per-work-item failure policy of a
	// pipeline run (fail fast, retry, skip-and-flag).
	FaultConfig = faulttol.Config
	// FaultPolicy enumerates the failure dispositions.
	FaultPolicy = faulttol.Policy
	// FaultReport is the degradation report of a fault-tolerant run:
	// items processed/retried/skipped and visibilities dropped.
	FaultReport = faulttol.Report
	// WorkItemError is the typed per-work-item failure.
	WorkItemError = faulttol.ItemError
)

// Failure policies.
const (
	// FailFast aborts the run on the first item failure.
	FailFast = faulttol.FailFast
	// RetryItems re-runs failed items before giving up.
	RetryItems = faulttol.Retry
	// SkipAndFlag drops failing items and completes the run,
	// accounting every dropped visibility in the FaultReport.
	SkipAndFlag = faulttol.SkipAndFlag
)

// Sentinel errors; match with errors.Is.
var (
	// ErrBadInput marks deterministic input problems.
	ErrBadInput = faulttol.ErrBadInput
	// ErrKernelPanic marks a recovered kernel crash.
	ErrKernelPanic = faulttol.ErrKernelPanic
	// ErrCanceled marks a run aborted by its context.
	ErrCanceled = faulttol.ErrCanceled
)

// ParseFaultPolicy converts "fail-fast", "retry" or "skip-and-flag".
func ParseFaultPolicy(s string) (FaultPolicy, error) { return faulttol.ParsePolicy(s) }

// Visibility flagging (internal/flagging): flagged samples are
// zero-weight in both gridding and degridding.

type (
	// FlaggingConfig selects the corrupt-sample detectors.
	FlaggingConfig = flagging.Config
	// FlaggingStats reports one flagging pass.
	FlaggingStats = flagging.Stats
)

// FlagVisibilities runs the configured detectors (NaN/Inf, amplitude
// clipping) over the observation's visibilities, marking bad samples
// in the per-sample flag mask.
func (o *Observation) FlagVisibilities(cfg FlaggingConfig) (FlaggingStats, error) {
	if err := o.AllocateVisibilities(); err != nil {
		return FlaggingStats{}, err
	}
	return flagging.Apply(o.Vis, cfg), nil
}

// Fault injection (internal/faultinject): deterministic chaos harness
// for robustness testing.

type (
	// FaultSelector deterministically picks a fraction of work items.
	FaultSelector = faultinject.Selector
	// VisCorruption locates one corrupted visibility sample.
	VisCorruption = faultinject.Corruption
)

// CorruptVisibilities overwrites a deterministic fraction of the
// observation's samples with NaNs and returns their coordinates
// (chaos-testing aid).
func (o *Observation) CorruptVisibilities(fraction float64, seed uint64) ([]VisCorruption, error) {
	if err := o.AllocateVisibilities(); err != nil {
		return nil, err
	}
	return faultinject.CorruptVisibilities(o.Vis, fraction, seed), nil
}
