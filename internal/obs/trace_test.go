package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func span(stage Stage, worker, item int, start, dur int64) Span {
	return Span{Stage: stage, Worker: worker, Group: 0, Item: item,
		Tile: -1, Baseline: -1, Start: start, Dur: dur}
}

func TestTracerRecordAndBound(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(span(StageGrid, 0, i, int64(i)*100, 50))
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("len = %d, want 3 (bounded)", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	spans := tr.Spans()
	if spans[0].Item != 0 || spans[2].Item != 2 {
		t.Fatalf("unexpected span order: %+v", spans)
	}
	// The returned slice is a copy.
	spans[0].Item = 99
	if tr.Spans()[0].Item == 99 {
		t.Fatal("Spans must return a copy")
	}

	var nilT *Tracer
	nilT.Record(span(StageGrid, 0, 0, 0, 0))
	if nilT.Len() != 0 || nilT.Dropped() != 0 || nilT.Spans() != nil {
		t.Fatal("nil tracer should be inert")
	}
	if nilT.Offset(time.Now()) != 0 {
		t.Fatal("nil tracer offset should be 0")
	}
}

func TestTracerOffset(t *testing.T) {
	tr := NewTracer(0)
	now := time.Now()
	off := tr.Offset(now)
	if off < 0 || off > time.Minute.Nanoseconds() {
		t.Fatalf("offset %d ns implausible for a fresh tracer", off)
	}
	if d := tr.Offset(now.Add(time.Second)) - off; d != time.Second.Nanoseconds() {
		t.Fatalf("offset delta = %d, want 1s", d)
	}
}

// TestTraceJSONRoundTrip is the acceptance-criteria decoder check: a
// recorded trace written with WriteJSON must decode back identically
// through ReadJSON.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(span(StageGrid, -1, -1, 0, 1000))
	tr.Record(span(StageFFT, 2, 7, 1000, 500))
	tr.Record(Span{Stage: StageTile, Worker: 1, Group: 3, Item: -1,
		Tile: 4, Baseline: -1, Start: 1500, Dur: 10})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Trace()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}

	if _, err := ReadJSON(strings.NewReader("[1,2")); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, err := ReadJSON(strings.NewReader(
		`{"epoch_unix_ns":0,"spans":[{"stage":"grid","dur_ns":-5}]}`)); err == nil {
		t.Fatal("negative duration should error")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(span(StageGrid, -1, -1, 0, 2000))  // pipeline lane
	tr.Record(span(StageGrid, 0, 3, 100, 500))   // worker 0
	tr.Record(span(StageDegrid, 1, 4, 600, 500)) // worker 1
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	lanes := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			lanes[ev.Tid] = true
			if ev.Dur <= 0 {
				t.Fatalf("complete event without duration: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	// One thread_name metadata event per lane (pipeline, worker 0, worker 1).
	if meta != 3 {
		t.Fatalf("metadata events = %d, want 3", meta)
	}
	for _, tid := range []int{0, 1, 2} {
		if !lanes[tid] {
			t.Fatalf("missing lane %d in %v", tid, lanes)
		}
	}
	// Timestamps must be microseconds: the 100ns start becomes 0.1.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Ts == 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a 0.1us timestamp (ns->us conversion): %s", buf.String())
	}
}

// TestTracerConcurrency lets the race detector vet concurrent Record
// against snapshot reads.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(10_000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(span(StageGrid, w, i, int64(i), 1))
				if i%100 == 0 {
					_ = tr.Len()
					_ = tr.Spans()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != 4000 {
		t.Fatalf("len = %d, want 4000", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}
