package distrib

import (
	"reflect"
	"testing"

	"repro/internal/plan"
)

// TestRowBoundsGolden pins the balanced row partition on hand-checked
// cases, including non-divisible sizes (the first rem bands get the
// extra rows) and more workers than rows.
func TestRowBoundsGolden(t *testing.T) {
	cases := []struct {
		gridSize, workers int
		want              []int
	}{
		{8, 1, []int{0, 8}},
		{8, 2, []int{0, 4, 8}},
		{8, 3, []int{0, 3, 6, 8}},
		{7, 4, []int{0, 2, 4, 6, 7}},
		{256, 8, []int{0, 32, 64, 96, 128, 160, 192, 224, 256}},
		{10, 10, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{3, 5, []int{0, 1, 2, 3}}, // clamped to one row per band
	}
	for _, c := range cases {
		if got := RowBounds(c.gridSize, c.workers); !reflect.DeepEqual(got, c.want) {
			t.Errorf("RowBounds(%d, %d) = %v, want %v", c.gridSize, c.workers, got, c.want)
		}
	}
}

// TestRowOwnerMatchesBounds is the property test of the closed-form
// owner: for every (gridSize, workers) pair in a table of divisible
// and non-divisible sizes, every row has exactly one owner and the
// owner is the band RowBounds assigns it to — so partition (owners)
// and coverage (bounds) can never drift apart.
func TestRowOwnerMatchesBounds(t *testing.T) {
	for _, gridSize := range []int{1, 2, 3, 7, 8, 16, 100, 256, 257} {
		for _, workers := range []int{1, 2, 3, 4, 5, 8, 16, 300} {
			bounds := RowBounds(gridSize, workers)
			covered := 0
			for band := 0; band+1 < len(bounds); band++ {
				for row := bounds[band]; row < bounds[band+1]; row++ {
					covered++
					if got := RowOwner(gridSize, workers, row); got != band {
						t.Fatalf("RowOwner(%d, %d, %d) = %d, want band %d", gridSize, workers, row, got, band)
					}
				}
			}
			if covered != gridSize {
				t.Fatalf("RowBounds(%d, %d) covers %d rows", gridSize, workers, covered)
			}
		}
	}
}

// TestWPlaneOwnerTotal checks the W-axis partition is total over
// signed plane indices: exactly one owner in [0, workers) for every
// plane, and planes congruent mod workers share an owner.
func TestWPlaneOwnerTotal(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for plane := -25; plane <= 25; plane++ {
			got := WPlaneOwner(workers, plane)
			if got < 0 || got >= workers {
				t.Fatalf("WPlaneOwner(%d, %d) = %d outside [0, %d)", workers, plane, got, workers)
			}
			if want := WPlaneOwner(workers, plane+workers); got != want {
				t.Fatalf("WPlaneOwner(%d, %d) = %d but plane+workers owns %d", workers, plane, got, want)
			}
		}
	}
	if got := WPlaneOwner(4, -1); got != 3 {
		t.Fatalf("WPlaneOwner(4, -1) = %d, want 3 (non-negative residue)", got)
	}
}

// syntheticPlan builds a plan whose items sweep subgrid anchors across
// the grid and W-layers across a signed range, so both partition axes
// see non-trivial, non-divisible distributions.
func syntheticPlan(gridSize, subgridSize, items int) *plan.Plan {
	p := &plan.Plan{Config: plan.Config{GridSize: gridSize, SubgridSize: subgridSize}}
	for i := 0; i < items; i++ {
		p.Items = append(p.Items, plan.WorkItem{
			Baseline: i,
			X0:       (i * 7) % (gridSize - subgridSize + 1),
			Y0:       (i * 13) % (gridSize - subgridSize + 1),
			WPlane:   (i % 11) - 5, // signed planes, like plan's rounding produces
		})
	}
	return p
}

// TestFilterPlanPartitions is the partition property test on plans:
// for both axes and worker counts including non-divisible ones, the
// sub-plans are disjoint, their union is exactly the parent plan, and
// each preserves the parent's item order.
func TestFilterPlanPartitions(t *testing.T) {
	parent := syntheticPlan(100, 12, 240)
	for _, axis := range []Axis{AxisRows, AxisWPlanes} {
		for _, workers := range []int{1, 2, 3, 4, 7, 8} {
			var union []plan.WorkItem
			seen := make(map[int]int) // baseline (unique per item) -> owner
			for w := 0; w < workers; w++ {
				sub, err := FilterPlan(parent, axis, workers, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sub.Config, parent.Config) {
					t.Fatalf("axis %v: sub-plan config differs from parent", axis)
				}
				last := -1
				for _, it := range sub.Items {
					if prev, dup := seen[it.Baseline]; dup {
						t.Fatalf("axis %v workers %d: item %d owned by both %d and %d", axis, workers, it.Baseline, prev, w)
					}
					seen[it.Baseline] = w
					if it.Baseline <= last {
						t.Fatalf("axis %v workers %d: worker %d sub-plan out of parent order", axis, workers, w)
					}
					last = it.Baseline
				}
				union = append(union, sub.Items...)
			}
			if len(union) != len(parent.Items) {
				t.Fatalf("axis %v workers %d: union has %d items, parent %d", axis, workers, len(union), len(parent.Items))
			}
		}
	}
}

// TestFilterPlanSingleWorkerIdentity pins the bit-identity premise of
// the one-worker distributed run: the whole parent plan, in order.
func TestFilterPlanSingleWorkerIdentity(t *testing.T) {
	parent := syntheticPlan(64, 8, 50)
	for _, axis := range []Axis{AxisRows, AxisWPlanes} {
		sub, err := FilterPlan(parent, axis, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sub.Items, parent.Items) {
			t.Fatalf("axis %v: 1-worker sub-plan is not the parent plan", axis)
		}
	}
}

// TestFilterPlanRejects covers the argument validation.
func TestFilterPlanRejects(t *testing.T) {
	parent := syntheticPlan(32, 8, 4)
	if _, err := FilterPlan(parent, AxisRows, 0, 0); err == nil {
		t.Error("FilterPlan accepted zero workers")
	}
	if _, err := FilterPlan(parent, AxisRows, 4, 4); err == nil {
		t.Error("FilterPlan accepted index == workers")
	}
	if _, err := FilterPlan(parent, AxisRows, 4, -1); err == nil {
		t.Error("FilterPlan accepted a negative index")
	}
}

// TestParseAxis round-trips the axis names the CLI flags use.
func TestParseAxis(t *testing.T) {
	for _, a := range []Axis{AxisRows, AxisWPlanes} {
		got, err := ParseAxis(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAxis(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAxis("diagonal"); err == nil {
		t.Error("ParseAxis accepted an unknown axis")
	}
}
