// Command idgserver runs the gridding-as-a-service server: a
// long-running multi-tenant HTTP endpoint where clients open
// observation sessions (POST a plan config), stream visibility chunks
// over the length-prefixed binary wire format, and fetch the finished
// grid. SIGTERM/SIGINT triggers a graceful drain: admissions stop,
// active sessions get -drain-timeout to finish (checkpointing
// sessions keep their last durable snapshot), stragglers are
// canceled, and the process exits with an empty session registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idgserver:", err)
	os.Exit(1)
}

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8321", "listen address (host:port; port 0 asks the kernel)")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
		maxSessions   = flag.Int("max-sessions", 0, "global concurrent session cap (0: 64)")
		tenantSess    = flag.Int("tenant-sessions", 0, "per-tenant concurrent session quota (0: 4)")
		tenantChunks  = flag.Int("tenant-inflight", 0, "per-tenant in-flight streaming chunk budget (0: 64)")
		sessionChunks = flag.Int("session-inflight", 0, "MaxInflightChunks assigned to sessions that request none (0: 4)")
		idleTimeout   = flag.Duration("idle-timeout", 0, "expire sessions untouched this long (0: 2m)")
		drainTimeout  = flag.Duration("drain-timeout", 0, "graceful drain bound on shutdown (0: 30s)")
		maxFrame      = flag.Int("max-frame-bytes", 0, "wire frame payload cap in bytes (0: 4 MiB)")
		ckptRoot      = flag.String("checkpoint-root", "", "allow sessions to checkpoint, each under its own directory here (empty: reject checkpoint requests)")
		metrics       = flag.Bool("metrics", false, "print the session metrics registry at exit")
	)
	flag.Parse()

	// Mirror the server's typed config validation so bad knobs fail
	// here with a usage-shaped message instead of deep inside New.
	switch {
	case *maxSessions < 0:
		fail(fmt.Errorf("-max-sessions must be >= 0, got %d", *maxSessions))
	case *tenantSess < 0:
		fail(fmt.Errorf("-tenant-sessions must be >= 0, got %d", *tenantSess))
	case *tenantChunks < 0:
		fail(fmt.Errorf("-tenant-inflight must be >= 0, got %d", *tenantChunks))
	case *sessionChunks < 0:
		fail(fmt.Errorf("-session-inflight must be >= 0, got %d", *sessionChunks))
	case *idleTimeout < 0:
		fail(fmt.Errorf("-idle-timeout must be >= 0, got %v", *idleTimeout))
	case *drainTimeout < 0:
		fail(fmt.Errorf("-drain-timeout must be >= 0, got %v", *drainTimeout))
	case *maxFrame < 0:
		fail(fmt.Errorf("-max-frame-bytes must be >= 0, got %d", *maxFrame))
	}
	if _, port, err := net.SplitHostPort(*addr); err != nil {
		fail(fmt.Errorf("-addr %q is not host:port: %v", *addr, err))
	} else if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		fail(fmt.Errorf("-addr port %q outside [0, 65535]", port))
	}

	observer := repro.NewObserver(0)
	cfg := repro.GridServerConfig{
		Addr:                   *addr,
		MaxSessions:            *maxSessions,
		MaxSessionsPerTenant:   *tenantSess,
		MaxInflightPerTenant:   *tenantChunks,
		SessionInflightDefault: *sessionChunks,
		IdleTimeout:            *idleTimeout,
		DrainTimeout:           *drainTimeout,
		MaxFrameBytes:          *maxFrame,
		CheckpointRoot:         *ckptRoot,
		Observer:               observer,
	}
	srv, err := repro.NewGridServer(cfg, &repro.ServerBackend{})
	if err != nil {
		fail(err)
	}
	if err := srv.Start(); err != nil {
		fail(err)
	}
	fmt.Printf("idgserver: listening on %s\n", srv.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			fail(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("idgserver: draining...")
	t0 := time.Now()
	if err := srv.Drain(context.Background()); err != nil {
		fail(err)
	}
	fmt.Printf("idgserver: drained in %v, %d sessions left\n",
		time.Since(t0).Round(time.Millisecond), srv.ActiveSessions())
	if *metrics {
		observer.Metrics.Snapshot().Table().Render(os.Stdout)
	}
	if srv.ActiveSessions() != 0 {
		os.Exit(1)
	}
}
