package plan

import (
	"math/rand"
	"testing"
)

// chunkTestPlan fabricates a plan with n synthetic items; chunking
// only reads Items, so the geometry fields can stay zero.
func chunkTestPlan(n int) *Plan {
	p := &Plan{}
	for i := 0; i < n; i++ {
		p.Items = append(p.Items, WorkItem{
			Baseline:  i % 7,
			TimeStart: (i * 3) % 50, NrTimesteps: 1 + i%5,
			NrChannels: 4,
			X0:         i % 100, Y0: (i * 11) % 100,
		})
	}
	return p
}

func TestStreamChunksPreservePlanOrder(t *testing.T) {
	for _, n := range []int{0, 1, 5, 256, 257, 1000} {
		for _, maxItems := range []int{0, 1, 3, 256, 5000} {
			p := chunkTestPlan(n)
			chunks := p.StreamChunks(maxItems)
			if n == 0 {
				if chunks != nil {
					t.Fatalf("n=0: got %d chunks, want none", len(chunks))
				}
				continue
			}
			var flat []WorkItem
			for i, c := range chunks {
				if c.Index != i {
					t.Fatalf("chunk %d has Index %d", i, c.Index)
				}
				if len(c.Items) == 0 {
					t.Fatalf("chunk %d is empty", i)
				}
				if maxItems > 0 && len(c.Items) > maxItems {
					t.Fatalf("chunk %d has %d items, max %d", i, len(c.Items), maxItems)
				}
				flat = append(flat, c.Items...)
			}
			if len(flat) != n {
				t.Fatalf("n=%d max=%d: chunks cover %d items", n, maxItems, len(flat))
			}
			for i := range flat {
				if flat[i] != p.Items[i] {
					t.Fatalf("n=%d max=%d: item %d reordered", n, maxItems, i)
				}
			}
		}
	}
}

func TestStreamChunksTimeWindow(t *testing.T) {
	p := chunkTestPlan(40)
	for _, c := range p.StreamChunks(7) {
		lo, hi := c.Items[0].TimeStart, c.Items[0].TimeStart+c.Items[0].NrTimesteps
		for _, it := range c.Items {
			if it.TimeStart < lo {
				lo = it.TimeStart
			}
			if e := it.TimeStart + it.NrTimesteps; e > hi {
				hi = e
			}
		}
		if c.TimeStart != lo || c.TimeEnd != hi {
			t.Fatalf("chunk %d window [%d,%d), want [%d,%d)", c.Index, c.TimeStart, c.TimeEnd, lo, hi)
		}
	}
}

func TestShardOrderIsPermutation(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := rnd.Intn(200)
		shards := 1 + rnd.Intn(16)
		shardOf := func(i int) int { return (i * 31) % shards }
		order := ShardOrder(n, shards, shardOf)
		if len(order) != n {
			t.Fatalf("n=%d: order has %d entries", n, len(order))
		}
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("n=%d shards=%d: bad or duplicate index %d", n, shards, i)
			}
			seen[i] = true
		}
		// Items of one shard must keep their relative order.
		last := make(map[int]int)
		for _, i := range order {
			s := shardOf(i)
			if prev, ok := last[s]; ok && i < prev {
				t.Fatalf("shard %d items reordered: %d after %d", s, i, prev)
			}
			last[s] = i
		}
	}
}

func TestShardOrderInterleavesShards(t *testing.T) {
	// 12 items, 3 shards assigned blockwise: round-robin interleave
	// must cycle 0,4,8,1,5,9,...
	order := ShardOrder(12, 3, func(i int) int { return i / 4 })
	want := []int{0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestShardOrderClampsShardIndex(t *testing.T) {
	// Out-of-range shardOf values must clamp, not panic or drop items.
	order := ShardOrder(10, 4, func(i int) int { return i - 5 })
	if len(order) != 10 {
		t.Fatalf("clamped order has %d entries", len(order))
	}
}
