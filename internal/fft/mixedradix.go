package fft

import (
	"math"
	"sync"
)

// The paper's subgrids are 24 pixels (2^3 * 3); vendor FFT libraries
// handle such sizes with mixed-radix decompositions rather than the
// generic Bluestein fallback. This file implements a recursive
// mixed-radix Cooley-Tukey transform for lengths whose prime factors
// are 2, 3 and 5. Radix-2 and radix-3 butterflies are specialized,
// and work buffers are pooled so concurrent transforms do not
// allocate.

// smoothFactors factors n into primes from {2, 3, 5}; ok is false if
// other factors remain. Larger factors first keeps the leaf
// transforms short.
func smoothFactors(n int) (factors []int, ok bool) {
	for _, p := range []int{5, 3, 2} {
		for n%p == 0 {
			factors = append(factors, p)
			n /= p
		}
	}
	return factors, n == 1
}

// mixedPlan holds the precomputed state for a mixed-radix transform.
type mixedPlan struct {
	n       int
	factors []int
	// roots[j] = exp(-2*pi*i*j/n); all twiddles are powers of these.
	roots []complex128
	pool  sync.Pool // *[]complex128 of length 2n
}

func newMixedPlan(n int, factors []int) *mixedPlan {
	p := &mixedPlan{n: n, factors: factors}
	p.roots = make([]complex128, n)
	for j := 0; j < n; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		p.roots[j] = complex(math.Cos(ang), math.Sin(ang))
	}
	p.pool.New = func() interface{} {
		buf := make([]complex128, 2*n)
		return &buf
	}
	return p
}

// forward computes the DFT of x in place.
func (p *mixedPlan) forward(x []complex128) {
	bufp := p.pool.Get().(*[]complex128)
	p.forwardWith(x, *bufp)
	p.pool.Put(bufp)
}

// forwardWith is forward with caller-supplied scratch of length >= 2n,
// so the 2-D driver's pooled buffer serves a whole plane of row and
// column transforms without touching the pool per call.
func (p *mixedPlan) forwardWith(x, buf []complex128) {
	out, scratch := buf[:p.n], buf[p.n:2*p.n]
	p.rec(x, out, scratch, p.n, 1, 0)
	copy(x, out)
}

// rec computes the n-point DFT of src[0], src[stride], ... into
// dst[0..n); level indexes into the factor list. scratch has room for
// n elements and is free once the recursive sub-calls returned.
func (p *mixedPlan) rec(src, dst, scratch []complex128, n, stride, level int) {
	switch n {
	case 1:
		dst[0] = src[0]
		return
	case 2:
		a, b := src[0], src[stride]
		dst[0], dst[1] = a+b, a-b
		return
	case 3:
		p.dft3(src, dst, stride)
		return
	case 5:
		p.dftSmall(src, dst, 5, stride)
		return
	case 8:
		dft8(src, dst, stride)
		return
	}
	r := p.factors[level]
	m := n / r
	// Decimation in time: r interleaved sub-transforms of length m.
	for j := 0; j < r; j++ {
		p.rec(src[j*stride:], dst[j*m:], scratch, m, stride*r, level+1)
	}
	// Combine: output index k + q*m gets
	// sum_j dst[j*m + k] * W^(j*(k + q*m)) with twiddle stride p.n/n
	// in the global root table.
	rootStride := p.n / n
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * p.roots[k*rootStride]
			scratch[k], scratch[m+k] = a+b, a-b
		}
	case 3:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * p.roots[k*rootStride]
			c := dst[2*m+k] * p.roots[2*k*rootStride%p.n]
			// Radix-3 butterfly with w = exp(-2*pi*i/3).
			t1 := b + c
			t2 := a - t1/2
			t3 := mulByI(b-c) * complex(-0.8660254037844386, 0) // sin(2*pi/3)
			scratch[k] = a + t1
			scratch[m+k] = t2 + t3
			scratch[2*m+k] = t2 - t3
		}
	default:
		for k := 0; k < m; k++ {
			for q := 0; q < r; q++ {
				idx := k + q*m
				var sum complex128
				for j := 0; j < r; j++ {
					w := p.roots[(j*idx*rootStride)%p.n]
					sum += dst[j*m+k] * w
				}
				scratch[idx] = sum
			}
		}
	}
	copy(dst[:n], scratch[:n])
}

// dft3 computes a 3-point DFT directly.
func (p *mixedPlan) dft3(src, dst []complex128, stride int) {
	a, b, c := src[0], src[stride], src[2*stride]
	t1 := b + c
	t2 := a - t1/2
	t3 := mulByI(b-c) * complex(-0.8660254037844386, 0)
	dst[0] = a + t1
	dst[1] = t2 + t3
	dst[2] = t2 - t3
}

// dftSmall computes an n-point DFT by direct summation using the
// plan's root table (used only for tiny leaf sizes).
func (p *mixedPlan) dftSmall(src, dst []complex128, n, stride int) {
	rootStride := p.n / n
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += src[j*stride] * p.roots[(j*k*rootStride)%p.n]
		}
		dst[k] = sum
	}
}

// mulByI returns i*z.
func mulByI(z complex128) complex128 {
	return complex(-imag(z), real(z))
}

// invSqrt2 = sqrt(2)/2, the magnitude of the odd eighth roots.
const invSqrt2 = 0.7071067811865476

// dft8 is a hardcoded 8-point DIT codelet (two 4-point DFTs plus a
// radix-2 combine whose only non-trivial twiddles are W8^1 and W8^3,
// applied as shuffle/scale). The paper's 24-pixel subgrids factor as
// 3 x 8, so this leaf carries most of the mixed-radix work.
func dft8(src, dst []complex128, stride int) {
	x0, x1 := src[0], src[stride]
	x2, x3 := src[2*stride], src[3*stride]
	x4, x5 := src[4*stride], src[5*stride]
	x6, x7 := src[6*stride], src[7*stride]

	// Even 4-point DFT: x0, x2, x4, x6.
	t0, t1 := x0+x4, x0-x4
	t2, t3 := x2+x6, complex(imag(x2-x6), -real(x2-x6)) // -i*(x2-x6)
	e0, e1, e2, e3 := t0+t2, t1+t3, t0-t2, t1-t3

	// Odd 4-point DFT: x1, x3, x5, x7.
	u0, u1 := x1+x5, x1-x5
	u2, u3 := x3+x7, complex(imag(x3-x7), -real(x3-x7))
	o0, o1, o2, o3 := u0+u2, u1+u3, u0-u2, u1-u3

	// Twiddled odds: W8^0=1, W8^1=s*(1-i), W8^2=-i, W8^3=-s*(1+i).
	o1 = complex(invSqrt2*(real(o1)+imag(o1)), invSqrt2*(imag(o1)-real(o1)))
	o2 = complex(imag(o2), -real(o2))
	o3 = complex(invSqrt2*(imag(o3)-real(o3)), -invSqrt2*(real(o3)+imag(o3)))

	dst[0], dst[4] = e0+o0, e0-o0
	dst[1], dst[5] = e1+o1, e1-o1
	dst[2], dst[6] = e2+o2, e2-o2
	dst[3], dst[7] = e3+o3, e3-o3
}
