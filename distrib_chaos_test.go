package repro

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// Distributed chaos: workers killed mid-stream by crash hooks at
// checkpoint events, relaunched by the coordinator with Resume set,
// resuming from their private checkpoint directories. Workers grid
// serially and the reduction tree is index-fixed, so every
// killed-and-resumed run must hash identically to a clean run of the
// same configuration — the distributed extension of
// TestKillAndResumeChaos.

// distribChaosOptions is the deterministic distributed setup with
// checkpointing: small chunks so kills and checkpoints land
// mid-partition, a per-worker checkpoint root, and a restart budget.
func distribChaosOptions(t *testing.T, workers int, axis DistribAxis) DistribOptions {
	t.Helper()
	opt := distribGoldenOptions(t, workers, axis)
	opt.CheckpointRoot = t.TempDir()
	opt.Config.CheckpointEvery = 2
	opt.ChunkItems = 8
	opt.MaxRestarts = 2
	return opt
}

// distribCleanHash runs the distributed pass without chaos and
// returns its grid hash (same worker count and axis, no checkpoint
// dir needed: the clean run never restarts).
func distribCleanHash(t *testing.T, workers int, axis DistribAxis) string {
	t.Helper()
	g, sum, err := RunDistributed(context.Background(), distribGoldenOptions(t, workers, axis))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Restarts != 0 {
		t.Fatalf("clean run restarted %d times", sum.Restarts)
	}
	return FingerprintGrid(g).SHA256
}

// TestDistribKillAndResumeChaos kills one worker of four at every
// checkpoint crash event in turn; each run must recover through the
// coordinator's relaunch-with-resume and hash identically to the
// clean 4-worker run.
func TestDistribKillAndResumeChaos(t *testing.T) {
	want := distribCleanHash(t, 4, DistribRows)
	kills := []struct {
		name string
		ev   CheckpointEvent
		at   int
	}{
		{"chunk-committed", CheckpointChunkCommitted, 2},
		{"before-write", CheckpointBeforeWrite, -1},
		{"before-rename", CheckpointBeforeRename, -1},
		{"after-write", CheckpointAfterWrite, -1},
	}
	for _, kc := range kills {
		t.Run(kc.name, func(t *testing.T) {
			opt := distribChaosOptions(t, 4, DistribRows)
			opt.WorkerHook = func(w *DistribWorkerOptions, spec DistribWorkerSpec) {
				if spec.Index == 2 && !spec.Resume {
					w.CrashHook = faultinject.CrashHook(kc.ev, kc.at)
				}
			}
			g, sum, err := RunDistributed(context.Background(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Restarts != 1 {
				t.Errorf("restarts = %d, want exactly 1 (notes: %v)", sum.Restarts, sum.Notes)
			}
			if got := FingerprintGrid(g).SHA256; got != want {
				t.Errorf("killed-and-resumed run hash %s, want clean-run %s (notes: %v)", got, want, sum.Notes)
			}
		})
	}
}

// distribBusiestWorkers returns the two partition indices owning the
// most plan items under the axis (the workers whose kills actually
// land mid-stream — edge partitions can be empty).
func distribBusiestWorkers(t *testing.T, cfg ObservationConfig, axis DistribAxis, workers int) (int, int) {
	t.Helper()
	o, err := cfg.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	first, second := 0, 1
	count := func(w int) int {
		sub, err := o.PartitionPlan(axis, workers, w)
		if err != nil {
			t.Fatal(err)
		}
		return len(sub.Items)
	}
	for w := 0; w < workers; w++ {
		switch n := count(w); {
		case n > count(first):
			first, second = w, first
		case w != first && n > count(second):
			second = w
		}
	}
	if count(second) == 0 {
		t.Skipf("axis %s leaves fewer than two busy partitions at %d workers", axis, workers)
	}
	return first, second
}

// TestDistribChaosSoak is the race-mode soak: several iterations, on
// both axes (with W-stacking on, so both axes spread real work), with
// the two busiest of four workers killed at different checkpoint
// events so relaunched reduction streams interleave with
// first-attempt streams mid-reduction. Every iteration must converge
// to the clean run's hash.
func TestDistribChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-iteration chaos soak in -short mode")
	}
	for _, axis := range []DistribAxis{DistribRows, DistribWPlanes} {
		t.Run(axis.String(), func(t *testing.T) {
			clean := distribGoldenOptions(t, 4, axis)
			clean.Config.WStepLambda = 40
			v1, v2 := distribBusiestWorkers(t, clean.Config, axis, 4)
			g, sum, err := RunDistributed(context.Background(), clean)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Restarts != 0 {
				t.Fatalf("clean run restarted %d times", sum.Restarts)
			}
			want := FingerprintGrid(g).SHA256
			for iter := 0; iter < 2; iter++ {
				opt := distribChaosOptions(t, 4, axis)
				opt.Config.WStepLambda = 40
				var mu sync.Mutex
				killed := map[int]bool{}
				opt.WorkerHook = func(w *DistribWorkerOptions, spec DistribWorkerSpec) {
					mu.Lock()
					defer mu.Unlock()
					if spec.Resume || killed[spec.Index] {
						return
					}
					switch spec.Index {
					case v1:
						w.CrashHook = faultinject.CrashHook(CheckpointBeforeRename, -1)
						killed[v1] = true
					case v2:
						w.CrashHook = faultinject.CrashHook(CheckpointChunkCommitted, -1)
						killed[v2] = true
					}
				}
				g, sum, err := RunDistributed(context.Background(), opt)
				if err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
				if sum.Restarts != 2 {
					t.Errorf("iter %d: restarts = %d, want 2 (victims %d,%d; notes: %v)", iter, sum.Restarts, v1, v2, sum.Notes)
				}
				if got := FingerprintGrid(g).SHA256; got != want {
					t.Errorf("iter %d: chaos run hash %s, want %s", iter, got, want)
				}
			}
		})
	}
}

// TestDistribRestartBudgetExhausted checks the failure path: a worker
// that dies on every attempt (fresh and resumed) fails the run with
// an error naming it, instead of hanging or silently dropping its
// partition.
func TestDistribRestartBudgetExhausted(t *testing.T) {
	opt := distribChaosOptions(t, 2, DistribRows)
	opt.MaxRestarts = 1
	opt.WorkerHook = func(w *DistribWorkerOptions, spec DistribWorkerSpec) {
		if spec.Index == 1 {
			// EventChunkCommitted fires on every attempt's first chunks,
			// resumed or not, so the worker can never finish.
			w.CrashHook = faultinject.CrashHook(CheckpointChunkCommitted, -1)
		}
	}
	_, _, err := RunDistributed(context.Background(), opt)
	if err == nil || !strings.Contains(err.Error(), "worker 1") {
		t.Fatalf("got %v, want worker 1 failing the run", err)
	}
	if !strings.Contains(err.Error(), "2 attempt(s)") {
		t.Fatalf("got %v, want the restart budget (2 attempts) in the error", err)
	}
}

// TestDistribWorkerOptionValidation covers RunDistribWorker's
// assignment validation.
func TestDistribWorkerOptionValidation(t *testing.T) {
	bad := []DistribWorkerOptions{
		{Workers: 0},
		{Workers: 4, Index: 4},
		{Workers: 4, Index: -1},
	}
	for i, opt := range bad {
		if err := RunDistribWorker(context.Background(), opt); err == nil {
			t.Errorf("options %d accepted: %+v", i, opt)
		}
	}
	if _, _, err := RunDistributed(context.Background(), DistribOptions{Workers: 0}); err == nil {
		t.Error("RunDistributed accepted zero workers")
	}
}
