//go:build !amd64

package core

// vectorKernels is false off amd64: the generic Go kernels are the
// only implementation, and the stubs below are never reached (every
// call site is gated on vectorKernels, so the linker drops them).
const vectorKernels = false

func rotAccQuads(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float64, nq int, ph *float64) {
	panic("core: rotAccQuads without vector kernels")
}

func conjAccQuads(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float64, nq int) {
	panic("core: conjAccQuads without vector kernels")
}

func rotQuads(phRe, phIm, dRe, dIm *float64, nq int) {
	panic("core: rotQuads without vector kernels")
}
