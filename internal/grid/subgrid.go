package grid

import (
	"fmt"

	"repro/internal/xmath"
)

// Subgrid is one N~ x N~ tile. In the image domain it is a
// low-resolution image of the full field of view; after its FFT it is a
// patch of the uv-grid anchored at pixel (X0, Y0).
type Subgrid struct {
	// N is the subgrid size in pixels along one side (N~ of the paper).
	N int
	// X0, Y0 anchor the subgrid in the grid: grid pixel (X0+x, Y0+y)
	// corresponds to subgrid pixel (x, y).
	X0, Y0 int
	// WOffset is the w coordinate (in wavelengths) this subgrid is
	// centered on; non-zero when W-stacking assigns it to a W-layer.
	WOffset float64
	// WPlane is the W-layer index this subgrid belongs to, carried so
	// downstream stages (the sharded adder's spans in particular) can
	// attribute work to layers; -1 when the pass is not W-stacked.
	WPlane int
	// Data holds one row-major N*N plane per correlation.
	Data [NrCorrelations][]complex128
}

// NewSubgrid allocates a zeroed subgrid of size n x n at anchor (x0, y0).
func NewSubgrid(n, x0, y0 int) *Subgrid {
	if n < 1 {
		panic(fmt.Sprintf("grid: invalid subgrid size %d", n))
	}
	s := &Subgrid{N: n, X0: x0, Y0: y0, WPlane: -1}
	backing := make([]complex128, NrCorrelations*n*n)
	for c := 0; c < NrCorrelations; c++ {
		s.Data[c] = backing[c*n*n : (c+1)*n*n]
	}
	return s
}

// At returns the value of correlation c at pixel (x, y).
func (s *Subgrid) At(c, y, x int) complex128 {
	return s.Data[c][y*s.N+x]
}

// Set stores v into correlation c at pixel (x, y).
func (s *Subgrid) Set(c, y, x int, v complex128) {
	s.Data[c][y*s.N+x] = v
}

// Pixel returns the 2x2 correlation matrix at pixel (x, y).
func (s *Subgrid) Pixel(y, x int) xmath.Matrix2 {
	i := y*s.N + x
	return xmath.Matrix2{s.Data[0][i], s.Data[1][i], s.Data[2][i], s.Data[3][i]}
}

// SetPixel stores the 2x2 correlation matrix m at pixel (x, y).
func (s *Subgrid) SetPixel(y, x int, m xmath.Matrix2) {
	i := y*s.N + x
	s.Data[0][i], s.Data[1][i], s.Data[2][i], s.Data[3][i] = m[0], m[1], m[2], m[3]
}

// Zero clears all pixels.
func (s *Subgrid) Zero() {
	for c := range s.Data {
		clear(s.Data[c])
	}
}

// Clone returns a deep copy of s.
func (s *Subgrid) Clone() *Subgrid {
	out := NewSubgrid(s.N, s.X0, s.Y0)
	out.WOffset = s.WOffset
	out.WPlane = s.WPlane
	for c := range s.Data {
		copy(out.Data[c], s.Data[c])
	}
	return out
}

// Finite reports whether every pixel of every correlation plane is
// finite (no NaN or Inf component). The pipelines use it to detect
// work items poisoned by corrupt, unflagged visibilities before the
// subgrid reaches the shared grid.
func (s *Subgrid) Finite() bool {
	for c := range s.Data {
		for _, v := range s.Data[c] {
			re, im := real(v), imag(v)
			// NaN fails every comparison; the subtraction turns
			// +/-Inf into NaN as well.
			if re-re != 0 || im-im != 0 {
				return false
			}
		}
	}
	return true
}

// InBounds reports whether the subgrid lies entirely inside a grid of
// size n x n.
func (s *Subgrid) InBounds(n int) bool {
	return s.X0 >= 0 && s.Y0 >= 0 && s.X0+s.N <= n && s.Y0+s.N <= n
}

// MaxAbsDiff returns the largest per-pixel complex magnitude difference
// between s and other.
func (s *Subgrid) MaxAbsDiff(other *Subgrid) float64 {
	if other.N != s.N {
		panic("grid: subgrid size mismatch")
	}
	m := 0.0
	for c := range s.Data {
		for i := range s.Data[c] {
			if d := abs(s.Data[c][i] - other.Data[c][i]); d > m {
				m = d
			}
		}
	}
	return m
}
