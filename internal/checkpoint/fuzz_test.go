package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadCheckpoint throws arbitrary bytes at the snapshot reader.
// Read must never panic or allocate based on unvalidated header
// fields; anything that is not a byte-exact valid snapshot must fail
// with an error, and anything it accepts must carry sane fields.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a genuine snapshot plus systematic mutations of it, so
	// the fuzzer starts from deep coverage of the happy path.
	dir := f.TempDir()
	path, _, err := Write(dir, testSnapshot(4, 2, 3), nil)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(magic)+4])
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.idgckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sn, err := Read(p)
		if err != nil {
			if sn != nil {
				t.Fatal("Read returned both a snapshot and an error")
			}
			return
		}
		if sn == nil || sn.Grid == nil {
			t.Fatal("Read succeeded without a grid")
		}
		if sn.GridSize < 2 || sn.GridSize > maxGridSize || sn.Grid.N != sn.GridSize {
			t.Fatalf("accepted implausible grid size %d", sn.GridSize)
		}
		if sn.Shards < 1 || sn.Shards > sn.GridSize {
			t.Fatalf("accepted implausible shard count %d", sn.Shards)
		}
		if sn.NextChunk < 0 || sn.ChunkItems < 1 {
			t.Fatalf("accepted implausible cursor %d / chunk size %d", sn.NextChunk, sn.ChunkItems)
		}
	})
}
