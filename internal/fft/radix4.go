package fft

import (
	"math"
	"math/bits"

	"repro/internal/xmath"
)

// The power-of-two engine: an iterative DIT transform whose butterfly
// fuses two consecutive radix-2 stages into one radix-4 pass. Fusing
// keeps the plain bit-reversal input permutation (the fused pass is
// algebraically the two radix-2 stages executed back to back) while
// cutting complex multiplies from 4 to 3 per 4 outputs and halving the
// number of passes over the data. For odd log2(n) a single twiddle-free
// radix-2 stage runs first, so every length is covered.
//
// Per-stage twiddle tables are stored as two flat slices (tw1[t] =
// W_2h^t, tw2[t] = W_4h^t for t < h) so the stage kernels read them
// sequentially; the third leg's factor w3 = -i*w2 (forward) / +i*w2
// (backward) is derived in-register, which is exact. The backward
// tables are the conjugates, stored separately to keep both directions
// sequential reads.

// r4Stage is one fused radix-4 pass: butterflies span 4h elements.
type r4Stage struct {
	h        int
	tw1, tw2 []complex128
}

// r4Plan holds the fused-stage schedule for one power-of-two length.
type r4Plan struct {
	leadR2 bool      // run one twiddle-free radix-2 stage first
	fwd    []r4Stage // forward tables, in execution order
	inv    []r4Stage // conjugated tables for the backward transform
}

func newR4Plan(n int) *r4Plan {
	p := &r4Plan{}
	if n < 4 {
		p.leadR2 = n == 2
		return p
	}
	logN := bits.TrailingZeros(uint(n))
	h := 1
	if logN%2 == 1 {
		p.leadR2 = true
		h = 2
	}
	for ; 4*h <= n; h *= 4 {
		fw := r4Stage{h: h, tw1: make([]complex128, h), tw2: make([]complex128, h)}
		iv := r4Stage{h: h, tw1: make([]complex128, h), tw2: make([]complex128, h)}
		for t := 0; t < h; t++ {
			w1 := unitRoot(t, 2*h)
			w2 := unitRoot(t, 4*h)
			fw.tw1[t], fw.tw2[t] = w1, w2
			iv.tw1[t] = complex(real(w1), -imag(w1))
			iv.tw2[t] = complex(real(w2), -imag(w2))
		}
		p.fwd = append(p.fwd, fw)
		p.inv = append(p.inv, iv)
	}
	return p
}

// unitRoot returns exp(-2*pi*i*t/m).
func unitRoot(t, m int) complex128 {
	ang := -2 * math.Pi * float64(t) / float64(m)
	return complex(math.Cos(ang), math.Sin(ang))
}

// forwardPow2 transforms x in place with the new engine; inverse runs
// the unnormalized backward (positive-exponent) transform.
func (p *Plan) forwardPow2(x []complex128, inverse bool) {
	n := p.n
	if n == 1 {
		return
	}
	for i, pi := range p.perm {
		if int32(i) < pi {
			x[i], x[pi] = x[pi], x[i]
		}
	}
	r := p.r4
	if r.leadR2 {
		for i := 0; i < n; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
	}
	stages := r.fwd
	if inverse {
		stages = r.inv
	}
	for _, st := range stages {
		if st.h == 1 {
			dft4Blocks(x, inverse)
			continue
		}
		xmath.R4StageTwAt(p.tier, x, st.h, st.tw1, st.tw2, inverse)
	}
}

// dft4Blocks runs the twiddle-free h=1 stage: a plain 4-point DFT on
// every aligned quad (only the first stage of even-log2 lengths).
func dft4Blocks(x []complex128, inverse bool) {
	for i := 0; i < len(x); i += 4 {
		a, b, c, d := x[i], x[i+1], x[i+2], x[i+3]
		a1, b1 := a+b, a-b
		c1, d1 := c+d, c-d
		var e complex128
		if inverse {
			e = complex(-imag(d1), real(d1)) // +i*d1
		} else {
			e = complex(imag(d1), -real(d1)) // -i*d1
		}
		x[i], x[i+1], x[i+2], x[i+3] = a1+c1, b1+e, a1-c1, b1-e
	}
}

// Column-pass variants: the same schedule applied to a tile of cw
// adjacent columns gathered into a row-major (rows x cw) scratch, so
// each butterfly is a cw-wide vector op on contiguous memory and the
// twiddles broadcast. This is the cache-blocked column pass: the tile
// walks the source row-major (sequential reads), and the butterfly
// legs stride cw*16 bytes instead of cols*16, which for power-of-two
// grids avoids the pathological set-aliasing of a strided in-place
// pass.

// colPow2 transforms the cw-wide columns of tile (rows x cw,
// row-major) in place using plan p (p.n == rows).
func (p *Plan) colPow2(tile []complex128, cw int, inverse bool) {
	if p.n == 1 {
		return
	}
	var tmp [colBlock]complex128
	for i, pi := range p.perm {
		if int32(i) < pi {
			a := tile[i*cw : i*cw+cw]
			b := tile[int(pi)*cw : int(pi)*cw+cw]
			copy(tmp[:cw], a)
			copy(a, b)
			copy(b, tmp[:cw])
		}
	}
	r := p.r4
	if r.leadR2 {
		for i := 0; i < p.n; i += 2 {
			xmath.AddSubLanes(tile[i*cw:i*cw+cw], tile[(i+1)*cw:(i+1)*cw+cw])
		}
	}
	stages := r.fwd
	if inverse {
		stages = r.inv
	}
	one := complex(1, 0)
	for _, st := range stages {
		h := st.h
		for base := 0; base < p.n; base += 4 * h {
			for t := 0; t < h; t++ {
				j := (base + t) * cw
				w1, w2 := one, one
				if h > 1 {
					w1, w2 = st.tw1[t], st.tw2[t]
				}
				xmath.R4ColsAt(p.tier,
					tile[j:j+cw],
					tile[j+h*cw:j+h*cw+cw],
					tile[j+2*h*cw:j+2*h*cw+cw],
					tile[j+3*h*cw:j+3*h*cw+cw],
					w1, w2, inverse)
			}
		}
	}
}
