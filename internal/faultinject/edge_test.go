package faultinject_test

import (
	"context"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/faulttol"
	"repro/internal/grid"
)

// pickSelector returns a selector that hits at least one but not all
// of the pipeline's work items.
func pickSelector(t *testing.T, p *pipeline) faultinject.Selector {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		sel := faultinject.Selector{Fraction: 0.2, Seed: seed}
		if n := sel.Count(p.plan.Items); n > 0 && n < len(p.plan.Items) {
			return sel
		}
	}
	t.Fatal("no seed selects a proper subset of work items")
	return faultinject.Selector{}
}

// TestFlakyHookSucceedsOnFinalRetry pins the boundary between a
// transient and a permanent fault: an injector that panics on every
// attempt but the last one must be fully absorbed by the retry
// policy — the run succeeds, reports exactly the selected items as
// retried, and drops nothing.
func TestFlakyHookSucceedsOnFinalRetry(t *testing.T) {
	p := buildPipeline(t)
	sel := pickSelector(t, p)
	cfg := faulttol.Config{
		Policy:     faulttol.Retry,
		MaxRetries: 2,
		// Fail attempts 1..Attempts()-1; the final retry succeeds.
		Hook: faultinject.FlakyHook(sel, cfg3Attempts(t)-1),
	}
	g := grid.NewGrid(p.plan.GridSize)
	_, rep, err := p.kernels.GridVisibilitiesFT(context.Background(), p.plan, p.vs, nil, g, cfg)
	if err != nil {
		t.Fatalf("fault on the final retry must still succeed: %v", err)
	}
	if want := sel.Count(p.plan.Items); rep.ItemsRetried != want {
		t.Errorf("ItemsRetried = %d, want %d", rep.ItemsRetried, want)
	}
	if rep.ItemsSkipped != 0 || rep.DroppedVisibilities != 0 {
		t.Errorf("final-retry success must drop nothing: %+v", rep)
	}
	if rep.ItemsProcessed != len(p.plan.Items) {
		t.Errorf("ItemsProcessed = %d, want %d", rep.ItemsProcessed, len(p.plan.Items))
	}
}

// cfg3Attempts returns the attempt budget of the config used above
// (MaxRetries 2 => 3 attempts), asserting the faulttol arithmetic the
// test depends on.
func cfg3Attempts(t *testing.T) int {
	t.Helper()
	n := faulttol.Config{Policy: faulttol.Retry, MaxRetries: 2}.Attempts()
	if n != 3 {
		t.Fatalf("Attempts() = %d, want 3", n)
	}
	return n
}

// TestFlakyHookOneAttemptTooMany is the same injector turned permanent
// by one extra failing attempt: under Retry the run fails, under
// SkipAndFlag exactly the selected items are dropped.
func TestFlakyHookOneAttemptTooMany(t *testing.T) {
	p := buildPipeline(t)
	sel := pickSelector(t, p)
	attempts := cfg3Attempts(t)

	retry := faulttol.Config{
		Policy:     faulttol.Retry,
		MaxRetries: 2,
		Hook:       faultinject.FlakyHook(sel, attempts),
	}
	g := grid.NewGrid(p.plan.GridSize)
	if _, _, err := p.kernels.GridVisibilitiesFT(context.Background(), p.plan, p.vs, nil, g, retry); err == nil {
		t.Fatal("exhausted retry budget must fail the run")
	}

	skip := retry
	skip.Policy = faulttol.SkipAndFlag
	g = grid.NewGrid(p.plan.GridSize)
	_, rep, err := p.kernels.GridVisibilitiesFT(context.Background(), p.plan, p.vs, nil, g, skip)
	if err != nil {
		t.Fatal(err)
	}
	if want := sel.Count(p.plan.Items); rep.ItemsSkipped != want {
		t.Errorf("ItemsSkipped = %d, want %d", rep.ItemsSkipped, want)
	}
	if want := sel.SelectedVisibilities(p.plan.Items); rep.DroppedVisibilities != want {
		t.Errorf("DroppedVisibilities = %d, want %d", rep.DroppedVisibilities, want)
	}
}
