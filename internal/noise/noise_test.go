package noise

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/uvwsim"
)

func emptySet(nb, nt, nc int) *core.VisibilitySet {
	baselines := make([]uvwsim.Baseline, nb)
	uvw := make([][]uvwsim.UVW, nb)
	for b := range baselines {
		baselines[b] = uvwsim.Baseline{P: 0, Q: b + 1}
		uvw[b] = make([]uvwsim.UVW, nt)
	}
	return core.MustNewVisibilitySet(baselines, uvw, nc)
}

func TestGaussianStatistics(t *testing.T) {
	vs := emptySet(50, 100, 4)
	const sigma = 0.25
	if err := AddGaussian(vs, sigma, 42); err != nil {
		t.Fatal(err)
	}
	st := Measure(vs)
	if st.N != 50*100*4 {
		t.Fatalf("N = %d", st.N)
	}
	// Mean ~ 0 within 5 standard errors.
	se := sigma / math.Sqrt(float64(st.N))
	if math.Abs(real(st.Mean)) > 5*se || math.Abs(imag(st.Mean)) > 5*se {
		t.Fatalf("mean %v too far from zero (se %g)", st.Mean, se)
	}
	// Std within 2%.
	if math.Abs(st.StdDev-sigma) > 0.02*sigma {
		t.Fatalf("std %g, want %g", st.StdDev, sigma)
	}
}

func TestDeterministicSeed(t *testing.T) {
	a := emptySet(3, 10, 2)
	b := emptySet(3, 10, 2)
	if err := AddGaussian(a, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := AddGaussian(b, 1, 7); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		for j := range a.Data[i] {
			if a.Data[i][j] != b.Data[i][j] {
				t.Fatal("same seed produced different noise")
			}
		}
	}
	c := emptySet(3, 10, 2)
	if err := AddGaussian(c, 1, 8); err != nil {
		t.Fatal(err)
	}
	if a.Data[0][0] == c.Data[0][0] {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestZeroSigmaNoop(t *testing.T) {
	vs := emptySet(2, 4, 1)
	vs.Data[0][0][0] = 3
	if err := AddGaussian(vs, 0, 1); err != nil {
		t.Fatal(err)
	}
	if vs.Data[0][0][0] != 3 || vs.Data[1][2][1] != 0 {
		t.Fatal("zero sigma changed data")
	}
}

func TestNegativeSigmaRejected(t *testing.T) {
	if err := AddGaussian(emptySet(1, 1, 1), -1, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestNoiseAddsToSignal(t *testing.T) {
	vs := emptySet(10, 10, 1)
	for b := range vs.Data {
		for i := range vs.Data[b] {
			vs.Data[b][i][0] = 2
		}
	}
	if err := AddGaussian(vs, 0.1, 3); err != nil {
		t.Fatal(err)
	}
	st := Measure(vs)
	if math.Abs(real(st.Mean)-2) > 0.05 {
		t.Fatalf("signal mean lost: %v", st.Mean)
	}
	if st.StdDev < 0.05 || st.StdDev > 0.2 {
		t.Fatalf("noise std %g implausible", st.StdDev)
	}
}

func TestImageRMSExcludesSource(t *testing.T) {
	n := 32
	img := make([]float64, n*n)
	for i := range img {
		img[i] = 0.01
	}
	img[16*n+16] = 100 // bright source
	withExclusion := ImageRMS(img, n, 16, 16, 2)
	if math.Abs(withExclusion-0.01) > 1e-9 {
		t.Fatalf("rms with exclusion = %g, want 0.01", withExclusion)
	}
	withoutExclusion := ImageRMS(img, n, -100, -100, 0)
	if withoutExclusion < 1 {
		t.Fatalf("rms without exclusion = %g, should be dominated by the source", withoutExclusion)
	}
}

func TestMeasureEmpty(t *testing.T) {
	st := Measure(&core.VisibilitySet{})
	if st.N != 0 || st.StdDev != 0 {
		t.Fatal("empty set should measure zero")
	}
}
