#!/bin/sh
# CI gate: vet, build, full test suite with the race detector, the
# chaos tests raced a second time with fresh counts, a one-shot smoke
# run of the kernel benchmarks (validates the bench -> JSON tooling
# without burning benchmark time), and a kernel performance regression
# gate against the committed baseline. Mirrors `make ci` for
# environments without make.
set -eux

go vet ./...
go build ./...
# Fast-fail race pass over the concurrency-heavy packages (pipelines,
# fault tolerance, the lock-free metrics/tracer) in short mode before
# paying for the full raced suite below.
go test -race -short ./internal/core/... ./internal/faulttol/... ./internal/obs/... ./internal/checkpoint/...
go test -race ./...
go test -race -count=2 ./internal/faultinject/ ./internal/faulttol/
# Kill-and-resume chaos harness and the checkpoint round-trip golden
# test run raced here: the crash hooks panic on the scheduler's
# coordinating goroutine and the resumed grid must still hash to the
# committed golden fingerprint.
go test -race -run 'Facade|Chaos|Cancel|Shard|Soak|Streamed|Checkpoint|Resume|Kill' . ./internal/core/ ./internal/checkpoint/
scripts/bench.sh -short

# Performance regression gate: briefly re-measure the two kernel
# benchmarks and compare their MVis/s against BENCH_kernels.json;
# a slowdown beyond BENCH_THRESHOLD percent (default 10) fails CI.
# -allow-missing because this is a deliberate subset run: the baseline
# holds all six kernel benchmarks, CI re-measures only these two.
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
go test -run '^$' -bench 'BenchmarkGridderKernel$|BenchmarkDegridderKernel$' -benchtime 1s . |
    go run ./cmd/benchjson > "$out"
go run ./cmd/benchjson -compare -allow-missing -threshold "${BENCH_THRESHOLD:-10}" BENCH_kernels.json "$out"
