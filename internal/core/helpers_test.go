package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/sky"
	"repro/internal/taper"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// scenario bundles everything an end-to-end test needs.
type scenario struct {
	plan    *plan.Plan
	kernels *Kernels
	vs      *VisibilitySet
	sim     *uvwsim.Simulator
	model   sky.Model
}

type scenarioConfig struct {
	nrStations, nt, nc    int
	gridSize, subgridSize int
	support               int
	tmax                  int
	atermInterval         int
	sources               int
	wstep                 float64
}

func defaultScenarioConfig() scenarioConfig {
	return scenarioConfig{
		nrStations: 8, nt: 64, nc: 4,
		gridSize: 256, subgridSize: 32, support: 8,
		tmax: 32, atermInterval: 32, sources: 1,
	}
}

// buildScenario constructs a small observation whose uv tracks fit the
// grid, with the model visibilities computed by the exact direct
// predictor.
func buildScenario(tb testing.TB, sc scenarioConfig) *scenario {
	tb.Helper()
	lcfg := layout.SKA1LowConfig()
	lcfg.NrStations = sc.nrStations
	stations := layout.Generate(lcfg)
	sim := uvwsim.New(stations, uvwsim.DefaultOptions())

	freqs := make([]float64, sc.nc)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*1e6
	}
	maxFreq := freqs[len(freqs)-1]
	maxUV := sim.MaxUV(sc.nt) * maxFreq / uvwsim.SpeedOfLight
	imageSize := float64(sc.gridSize/2-sc.subgridSize) / maxUV

	pcfg := plan.Config{
		GridSize:               sc.gridSize,
		SubgridSize:            sc.subgridSize,
		ImageSize:              imageSize,
		Frequencies:            freqs,
		KernelSupport:          sc.support,
		MaxTimestepsPerSubgrid: sc.tmax,
		ATermUpdateInterval:    sc.atermInterval,
		WStepLambda:            sc.wstep,
	}
	tracks := sim.AllTracks(sc.nt)
	p, err := plan.New(pcfg, tracks)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := p.ValidateCoverage(tracks); err != nil {
		tb.Fatal(err)
	}

	k, err := NewKernels(Params{
		GridSize:    sc.gridSize,
		SubgridSize: sc.subgridSize,
		ImageSize:   imageSize,
		Frequencies: freqs,
	})
	if err != nil {
		tb.Fatal(err)
	}

	vs := MustNewVisibilitySet(sim.Baselines(), tracks, sc.nc)

	// Pixel-aligned sources well inside the field of view.
	model := make(sky.Model, 0, sc.sources)
	pix := imageSize / float64(sc.gridSize)
	offsets := [][2]int{{12, -8}, {-20, 16}, {5, 25}, {-15, -18}, {30, 2}}
	for i := 0; i < sc.sources; i++ {
		o := offsets[i%len(offsets)]
		model = append(model, sky.PointSource{
			L: float64(o[0]) * pix,
			M: float64(o[1]) * pix,
			I: 1 + 0.5*float64(i),
		})
	}

	return &scenario{plan: p, kernels: k, vs: vs, sim: sim, model: model}
}

// fillFromModel fills the visibility set with the exact predictions of
// the scenario's sky model (optionally corrupted by per-station
// A-terms via corrupt).
func (s *scenario) fillFromModel(corrupt func(staP, staQ, slot int, l, m float64) (xmath.Matrix2, xmath.Matrix2)) {
	freqs := s.plan.Frequencies
	interval := s.plan.ATermUpdateInterval
	for b, bl := range s.vs.Baselines {
		for t := 0; t < s.vs.NrTimesteps; t++ {
			coord := s.vs.UVW[b][t]
			slot := 0
			if interval > 0 {
				slot = t / interval
			}
			for c := 0; c < s.vs.NrChannels; c++ {
				sc := coord.Scale(freqs[c])
				var v xmath.Matrix2
				if corrupt == nil {
					v = s.model.Predict(sc.U, sc.V, sc.W)
				} else {
					v = s.model.PredictWithATerms(sc.U, sc.V, sc.W,
						func(l, m float64) (xmath.Matrix2, xmath.Matrix2) {
							return corrupt(bl.P, bl.Q, slot, l, m)
						})
				}
				s.vs.Data[b][t*s.vs.NrChannels+c] = v
			}
		}
	}
}

// taperAt evaluates the kernels' taper at full-image direction
// cosines.
func (s *scenario) taperAt(l, m float64) float64 {
	half := s.plan.ImageSize / 2
	return taper.Spheroidal(l/half) * taper.Spheroidal(m/half)
}

// dirtyImage grids the visibility set and converts to a normalized,
// taper-corrected image.
func (s *scenario) dirtyImage(tb testing.TB, prov interface {
	Evaluate(station, slot int, l, m float64) xmath.Matrix2
}) *grid.Grid {
	tb.Helper()
	g := grid.NewGrid(s.plan.GridSize)
	var err error
	if prov == nil {
		_, err = s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g)
	} else {
		_, err = s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, prov, g)
	}
	if err != nil {
		tb.Fatal(err)
	}
	img := GridToImage(g, 0)
	st := s.plan.Stats()
	ScaleImage(img, float64(s.plan.GridSize*s.plan.GridSize)/float64(st.NrGriddedVisibilities))
	ApplyTaperCorrection(img, s.kernels.TaperCorrection(s.plan.GridSize))
	return img
}

// peakStokesI finds the maximum Stokes I pixel.
func peakStokesI(img *grid.Grid) (x, y int, val float64) {
	si := sky.StokesI(img)
	best := math.Inf(-1)
	for i, v := range si {
		if v > best {
			best = v
			x, y = i%img.N, i/img.N
		}
	}
	return x, y, best
}
