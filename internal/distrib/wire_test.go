package distrib

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/server"
)

// frameBytes encodes one frame to raw wire bytes.
func frameBytes(t testing.TB, f server.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := server.WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testGrid fills a small grid with a deterministic non-trivial
// pattern (every plane different, some zero rows top and bottom).
func testGrid(n int) *grid.Grid {
	g := grid.NewGrid(n)
	for c := 0; c < grid.NrCorrelations; c++ {
		for y := 2; y < n-1; y++ {
			for x := 0; x < n; x++ {
				g.Set(c, y, x, complex(float64(c*n*n+y*n+x), -float64(x+1)))
			}
		}
	}
	return g
}

// TestHelloRoundTrip round-trips the stream-opening frame.
func TestHelloRoundTrip(t *testing.T) {
	h := Hello{Worker: 3, Workers: 8, Axis: AxisWPlanes}
	for i := range h.PlanSum {
		h.PlanSum[i] = byte(i * 7)
	}
	f, err := ReadReduceFrame(bytes.NewReader(frameBytes(t, EncodeHello(h))), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("hello round-trip: got %+v, want %+v", got, h)
	}
}

// TestResultRoundTrip round-trips the closing fingerprint frame.
func TestResultRoundTrip(t *testing.T) {
	r := Result{Worker: 5, Fingerprint: FingerprintOf(testGrid(16))}
	f, err := ReadReduceFrame(bytes.NewReader(frameBytes(t, EncodeResult(r))), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("result round-trip: got %+v, want %+v", got, r)
	}
}

// TestBandRoundTrip streams a grid band by band into a fresh grid and
// requires bit-identity — the fingerprint must survive the wire.
func TestBandRoundTrip(t *testing.T) {
	src := testGrid(24)
	dst := grid.NewGrid(24)
	lo, hi := NonzeroRowSpan(src)
	if lo != 2 || hi != 23 {
		t.Fatalf("NonzeroRowSpan = [%d, %d), want [2, 23)", lo, hi)
	}
	for y := lo; y < hi; y += 5 {
		end := min(y+5, hi)
		ef, err := EncodeBand(src, y, end)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ReadReduceFrame(bytes.NewReader(frameBytes(t, ef)), 0)
		if err != nil {
			t.Fatal(err)
		}
		glo, ghi, err := DecodeBandInto(dst, f)
		if err != nil {
			t.Fatal(err)
		}
		if glo != y || ghi != end {
			t.Fatalf("band decoded as [%d, %d), want [%d, %d)", glo, ghi, y, end)
		}
	}
	if FingerprintOf(dst) != FingerprintOf(src) {
		t.Fatal("grid changed across the band stream")
	}
}

// TestBandRejects covers the header cross-checks that run before any
// cell is written.
func TestBandRejects(t *testing.T) {
	src := testGrid(8)
	f, err := EncodeBand(src, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeBandInto(grid.NewGrid(16), f); err == nil || !strings.Contains(err.Error(), "16-pixel") {
		t.Errorf("band for the wrong grid size accepted: %v", err)
	}
	if _, err := EncodeBand(src, 4, 4); err == nil {
		t.Error("EncodeBand accepted an empty row range")
	}
	if _, err := EncodeBand(src, -1, 4); err == nil {
		t.Error("EncodeBand accepted a negative lo")
	}
	// A band whose payload length disagrees with its row range must be
	// rejected by the decoder even though the frame layer accepted it
	// (the length is a valid k*cellBytes, just not this range's k).
	bad := server.Frame{Type: FrameBand, Payload: f.Payload[:len(f.Payload)-16]}
	if _, _, err := DecodeBandInto(grid.NewGrid(8), bad); err == nil {
		t.Error("DecodeBandInto accepted a short payload")
	}
}

// TestReduceFrameSizeChecks pins the validate-before-allocate
// contract: declared lengths that no reduction frame can have are
// rejected from the 10-byte header alone, before any payload is read
// or allocated — including a FrameBand length field claiming ~4 GiB.
func TestReduceFrameSizeChecks(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b []byte)
		errPart string
	}{
		{"hello wrong length", func(b []byte) { b[6] = 12 }, "FrameHello payload"},
		{"band not whole cells", func(b []byte) { b[5] = FrameBand; b[6] = 13 }, "FrameBand payload"},
		{"result wrong length", func(b []byte) { b[5] = FrameResult; b[6] = 1 }, "FrameResult payload"},
		{"unknown type", func(b []byte) { b[5] = 99 }, "unknown frame type"},
		{"session type on reduce stream", func(b []byte) { b[5] = server.FrameVis; b[6] = 44 }, "unknown frame type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := frameBytes(t, EncodeHello(Hello{Workers: 1}))
			c.mutate(b)
			_, err := ReadReduceFrame(bytes.NewReader(b[:10]), 0)
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("got %v, want error containing %q (from the header alone)", err, c.errPart)
			}
		})
	}
	// Huge declared band length: valid shape (header + k cells) but
	// over the cap; only the 10 header bytes exist, so an attempted
	// allocation of the declared 4 GiB would OOM or ReadFull would
	// error differently — the cap check must fire first.
	b := frameBytes(t, EncodeHello(Hello{Workers: 1}))[:10]
	b[5] = FrameBand
	b[6], b[7], b[8], b[9] = 0x0c, 0x00, 0x00, 0xff // 0xff00000c = header + k*16
	if _, err := ReadReduceFrame(bytes.NewReader(b), 1<<20); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("4 GiB declared band length not stopped by the cap: %v", err)
	}
}

// TestFingerprintDistinguishes sanity-checks the internal fingerprint:
// equal grids compare equal, a one-ulp change does not.
func TestFingerprintDistinguishes(t *testing.T) {
	a, b := testGrid(12), testGrid(12)
	if FingerprintOf(a) != FingerprintOf(b) {
		t.Fatal("identical grids fingerprint differently")
	}
	b.Add(2, 5, 5, complex(0, 1e-9)) // above the cell's ulp, invisible to a tolerance check
	if FingerprintOf(a) == FingerprintOf(b) {
		t.Fatal("perturbed grid fingerprints identically")
	}
}

// FuzzReadReduceFrame fuzzes the reduction-stream reader with a small
// payload cap: it must never panic, never allocate more than the cap
// (the band rule and cap check run on the declared length before the
// payload allocation), and any accepted frame must decode or be
// rejected cleanly by its typed decoder.
func FuzzReadReduceFrame(f *testing.F) {
	g := testGrid(8)
	band, _ := EncodeBand(g, 2, 6)
	seeds := [][]byte{
		frameBytes(f, EncodeHello(Hello{Worker: 1, Workers: 4, Axis: AxisRows})),
		frameBytes(f, band),
		frameBytes(f, EncodeResult(Result{Worker: 2, Fingerprint: FingerprintOf(g)})),
	}
	// A two-frame stream, a truncated band and a corrupt-length band
	// round out the committed corpus shapes.
	seeds = append(seeds, append(append([]byte{}, seeds[0]...), seeds[2]...))
	seeds = append(seeds, seeds[1][:20])
	hugeband := append([]byte{}, seeds[1]...)
	hugeband[6], hugeband[7], hugeband[8], hugeband[9] = 0x0c, 0x00, 0x00, 0xff
	seeds = append(seeds, hugeband)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		dst := grid.NewGrid(8)
		for {
			fr, err := ReadReduceFrame(r, 1<<16)
			if err != nil {
				if err == io.EOF && r.Len() != 0 {
					t.Fatal("clean EOF with bytes left on the stream")
				}
				return
			}
			switch fr.Type {
			case FrameHello:
				if _, err := DecodeHello(fr); err != nil {
					return
				}
			case FrameBand:
				if _, _, err := DecodeBandInto(dst, fr); err != nil {
					return
				}
			case FrameResult:
				if _, err := DecodeResult(fr); err != nil {
					return
				}
			default:
				t.Fatalf("reader accepted unknown frame type %d", fr.Type)
			}
		}
	})
}
