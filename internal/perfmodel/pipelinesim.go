package perfmodel

import "fmt"

// This file models the asynchronous I/O scheme of Section V-C-a /
// Fig. 7: three host threads issue (HtoD copy, kernel, DtoH copy)
// triples onto three CUDA streams, with events enforcing that a
// buffer is only overwritten once its kernel consumed it
// (triple buffering). The discrete-event simulation below reproduces
// the timeline of Fig. 7 for arbitrary stage durations.

// StreamEvent is one operation in the simulated timeline.
type StreamEvent struct {
	Group      int     // work group index
	Stage      string  // "HtoD", "kernel", "DtoH"
	Start, End float64 // seconds
}

// PipelineResult is the outcome of a pipeline simulation.
type PipelineResult struct {
	Events   []StreamEvent
	Makespan float64
	// KernelBusy is the fraction of the makespan during which the
	// kernel stream is busy — triple buffering aims to keep this
	// near 1 ("prevent the GPU from being idle during data
	// transfers").
	KernelBusy float64
}

// SimulateTripleBuffer simulates nGroups work groups with the given
// per-group stage durations through three streams (one per stage
// kind) and nBuffers device buffer sets. nBuffers = 3 is the paper's
// configuration; nBuffers = 1 degenerates to fully serial execution.
func SimulateTripleBuffer(nGroups, nBuffers int, htod, kernel, dtoh float64) PipelineResult {
	if nGroups < 1 || nBuffers < 1 {
		panic(fmt.Sprintf("perfmodel: invalid pipeline shape %d groups, %d buffers", nGroups, nBuffers))
	}
	if htod < 0 || kernel < 0 || dtoh < 0 {
		panic("perfmodel: negative stage duration")
	}
	var res PipelineResult
	// Per-stream availability times.
	var tHtoD, tKernel, tDtoH float64
	// bufferFree[i] is when buffer set i%nBuffers can be reused
	// (its previous DtoH finished).
	bufferFree := make([]float64, nBuffers)
	var kernelBusy float64
	for g := 0; g < nGroups; g++ {
		buf := g % nBuffers
		// HtoD may start when the copy stream is free and the buffer
		// has been drained.
		s := maxf(tHtoD, bufferFree[buf])
		e := s + htod
		tHtoD = e
		res.Events = append(res.Events, StreamEvent{g, "HtoD", s, e})
		// Kernel starts when its stream is free and input is present.
		s = maxf(tKernel, e)
		e = s + kernel
		tKernel = e
		kernelBusy += kernel
		res.Events = append(res.Events, StreamEvent{g, "kernel", s, e})
		// DtoH starts when the output stream is free and the kernel
		// finished.
		s = maxf(tDtoH, e)
		e = s + dtoh
		tDtoH = e
		bufferFree[buf] = e
		res.Events = append(res.Events, StreamEvent{g, "DtoH", s, e})
	}
	res.Makespan = maxf(tHtoD, maxf(tKernel, tDtoH))
	if res.Makespan > 0 {
		res.KernelBusy = kernelBusy / res.Makespan
	}
	return res
}

// SerialTime returns the non-overlapped execution time of the same
// workload (the baseline triple buffering is compared against).
func SerialTime(nGroups int, htod, kernel, dtoh float64) float64 {
	return float64(nGroups) * (htod + kernel + dtoh)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
