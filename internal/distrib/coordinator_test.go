package distrib

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/server"
)

// workerGrid is the deterministic partial grid of one worker in these
// tests: disjoint row bands for a rows-axis run.
func workerGrid(spec WorkerSpec, size int) *grid.Grid {
	g := grid.NewGrid(size)
	bounds := RowBounds(size, spec.Workers)
	for c := 0; c < grid.NrCorrelations; c++ {
		for y := bounds[spec.Index]; y < bounds[spec.Index+1]; y++ {
			for x := 0; x < size; x++ {
				g.Set(c, y, x, complex(float64(spec.Index+1), float64(c*x)))
			}
		}
	}
	return g
}

// honestLauncher grids and delivers the worker's partition.
func honestLauncher(size int) Launcher {
	return LauncherFunc(func(ctx context.Context, spec WorkerSpec) error {
		return Deliver(ctx, spec, [32]byte{}, workerGrid(spec, size), 0)
	})
}

func runCoordinator(t *testing.T, cfg Config, l Launcher) (*grid.Grid, *Summary, error) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return c.Run(ctx, l)
}

// TestCoordinatorHappyPath runs a full coordinator pass with in-test
// workers and checks the final grid is the tree reduction of the
// partials, with every fingerprint accounted for in the summary.
func TestCoordinatorHappyPath(t *testing.T) {
	const size, workers = 32, 4
	g, sum, err := runCoordinator(t, Config{Workers: workers, Axis: AxisRows, GridSize: size}, honestLauncher(size))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*grid.Grid, workers)
	for i := range want {
		want[i] = workerGrid(WorkerSpec{Index: i, Workers: workers}, size)
	}
	if wantG := TreeReduce(want); g.MaxAbsDiff(wantG) != 0 {
		t.Fatal("final grid is not the reduction of the partials")
	}
	if sum.Restarts != 0 || sum.Discarded != 0 {
		t.Fatalf("clean run reported restarts=%d discarded=%d", sum.Restarts, sum.Discarded)
	}
	for i, fp := range sum.WorkerFingerprints {
		if fp.Nonzero == 0 {
			t.Fatalf("worker %d fingerprint missing from summary", i)
		}
	}
	if sum.Final != FingerprintOf(g) {
		t.Fatal("summary final fingerprint does not match the returned grid")
	}
}

// TestCoordinatorRestartsKilledWorker kills one worker's first attempt
// after partial progress; the relaunch must carry Resume and the final
// grid must be bit-identical to a clean run's.
func TestCoordinatorRestartsKilledWorker(t *testing.T) {
	const size, workers = 32, 4
	var sawResume atomic.Bool
	flaky := LauncherFunc(func(ctx context.Context, spec WorkerSpec) error {
		if spec.Index == 2 && !spec.Resume {
			return errors.New("injected kill before delivery")
		}
		if spec.Index == 2 && spec.Resume {
			sawResume.Store(true)
		}
		return Deliver(ctx, spec, [32]byte{}, workerGrid(spec, size), 0)
	})
	cfg := Config{Workers: workers, Axis: AxisRows, GridSize: size, MaxRestarts: 2}
	g, sum, err := runCoordinator(t, cfg, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if !sawResume.Load() {
		t.Fatal("relaunch did not set Resume")
	}
	if sum.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", sum.Restarts)
	}
	clean, _, err := runCoordinator(t, cfg, honestLauncher(size))
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintOf(g) != FingerprintOf(clean) {
		t.Fatal("killed-and-relaunched run hashed differently from the clean run")
	}
}

// TestCoordinatorRestartBudget checks a worker that keeps dying fails
// the run once its restart budget is spent.
func TestCoordinatorRestartBudget(t *testing.T) {
	dying := LauncherFunc(func(ctx context.Context, spec WorkerSpec) error {
		if spec.Index == 1 {
			return errors.New("injected kill")
		}
		return Deliver(ctx, spec, [32]byte{}, workerGrid(spec, 16), 0)
	})
	_, _, err := runCoordinator(t, Config{Workers: 2, Axis: AxisRows, GridSize: 16, MaxRestarts: 2}, dying)
	if err == nil || !strings.Contains(err.Error(), "worker 1") || !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Fatalf("got %v, want worker 1 failing after 3 attempts", err)
	}
}

// lyingDeliver streams a valid-looking reduction whose declared
// fingerprint does not match the bytes sent.
func lyingDeliver(ctx context.Context, spec WorkerSpec, g *grid.Grid) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", spec.CoordinatorAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := server.WriteFrame(bw, EncodeHello(Hello{Worker: spec.Index, Workers: spec.Workers, Axis: spec.Axis})); err != nil {
		return err
	}
	f, err := EncodeBand(g, 0, g.N)
	if err != nil {
		return err
	}
	if err := server.WriteFrame(bw, f); err != nil {
		return err
	}
	fp := FingerprintOf(g)
	fp.SHA256[0] ^= 0xff // corrupt the declared hash
	if err := server.WriteFrame(bw, EncodeResult(Result{Worker: spec.Index, Fingerprint: fp})); err != nil {
		return err
	}
	return bw.Flush()
}

// TestCoordinatorRejectsCorruptStream checks a stream whose declared
// fingerprint does not match the assembled bytes is discarded, the
// worker is relaunched, and an honest retry still completes the run.
func TestCoordinatorRejectsCorruptStream(t *testing.T) {
	const size = 16
	liar := LauncherFunc(func(ctx context.Context, spec WorkerSpec) error {
		if spec.Index == 0 && !spec.Resume {
			return lyingDeliver(ctx, spec, workerGrid(spec, size))
		}
		return Deliver(ctx, spec, [32]byte{}, workerGrid(spec, size), 0)
	})
	cfg := Config{
		Workers: 2, Axis: AxisRows, GridSize: size,
		MaxRestarts: 1, ResultWait: 200 * time.Millisecond,
	}
	g, sum, err := runCoordinator(t, cfg, liar)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Discarded != 1 || sum.Restarts != 1 {
		t.Fatalf("discarded=%d restarts=%d, want 1 and 1", sum.Discarded, sum.Restarts)
	}
	clean, _, err := runCoordinator(t, Config{Workers: 2, Axis: AxisRows, GridSize: size}, honestLauncher(size))
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintOf(g) != FingerprintOf(clean) {
		t.Fatal("run with a discarded stream hashed differently from the clean run")
	}
}

// TestCoordinatorRejectsWrongPartition checks the plan-fingerprint
// pinning: a worker announcing a sub-plan other than its assignment is
// rejected at hello.
func TestCoordinatorRejectsWrongPartition(t *testing.T) {
	sums := make([][32]byte, 2)
	sums[0][0], sums[1][0] = 1, 2
	wrong := LauncherFunc(func(ctx context.Context, spec WorkerSpec) error {
		sum := sums[spec.Index]
		if spec.Index == 1 {
			sum = sums[0] // gridding the wrong partition
		}
		return Deliver(ctx, spec, sum, workerGrid(spec, 16), 0)
	})
	cfg := Config{
		Workers: 2, Axis: AxisRows, GridSize: 16, ExpectPlanSums: sums,
		ResultWait: 100 * time.Millisecond,
	}
	_, _, err := runCoordinator(t, cfg, wrong)
	if err == nil || !strings.Contains(err.Error(), "worker 1") {
		t.Fatalf("got %v, want worker 1 rejected", err)
	}
}

// TestCoordinatorConfigValidation covers New's rejections.
func TestCoordinatorConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0, GridSize: 8, Axis: AxisRows},
		{Workers: 2, GridSize: 0, Axis: AxisRows},
		{Workers: 2, GridSize: 8, Axis: Axis(9)},
		{Workers: 2, GridSize: 8, Axis: AxisRows, ExpectPlanSums: make([][32]byte, 3)},
	}
	for i, cfg := range bad {
		if c, err := New(cfg); err == nil {
			c.Close()
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestCoordinatorContextCancel checks cancellation unwinds the run.
func TestCoordinatorContextCancel(t *testing.T) {
	c, err := New(Config{Workers: 1, Axis: AxisRows, GridSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	stuck := LauncherFunc(func(ctx context.Context, spec WorkerSpec) error {
		cancel()
		<-ctx.Done()
		return ctx.Err()
	})
	if _, _, err := c.Run(ctx, stuck); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
