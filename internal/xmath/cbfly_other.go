//go:build !amd64

package xmath

// hasCBflyASM is false off amd64: the butterfly helpers run their
// scalar loops.
const hasCBflyASM = false

func r4StageTwPairs(x *complex128, n, h int, tw1, tw2 *complex128) {
	panic("xmath: r4StageTwPairs without AVX")
}

func r4StageTwPairsInv(x *complex128, n, h int, tw1, tw2 *complex128) {
	panic("xmath: r4StageTwPairsInv without AVX")
}

func r4ColsPairs(a, b, c, d *complex128, np int, w1, w2 complex128) {
	panic("xmath: r4ColsPairs without AVX")
}

func r4ColsPairsInv(a, b, c, d *complex128, np int, w1, w2 complex128) {
	panic("xmath: r4ColsPairsInv without AVX")
}
