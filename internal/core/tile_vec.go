package core

// The hand-vectorized float64 tile kernels. They drive the AVX2+FMA
// loops in kernels_amd64.s and are selected (gridSubgridScratch /
// degridSubgridScratch) only when the dispatch table installed them
// (dispatch.go: amd64 with an active tier of at least SIMDAVX2); the
// !amd64 stubs in simd_other.go are therefore unreachable. Compared to
// the generic tiles the arithmetic runs four channels (gridder) or
// four pixels (degridder) per instruction, with unconditionally fused
// multiply-adds — the scalar math.FMA path compiles to a runtime
// fallback branch per call site under the default GOAMD64 level, which
// is what these kernels exist to avoid.

import (
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// chunkQuads is the resync cadence of the vector gridder in channel
// quads: after chunkQuads iterations of rotAccQuads (4 channels each)
// the phasor lanes are re-seeded from an exact evaluation, preserving
// the xmath.DefaultPhasorResync drift cadence of the scalar path.
const chunkQuads = xmath.DefaultPhasorResync / 4

// gridTileVec is gridTile on the vector kernels. The channel loop runs
// four-wide: the four phasor lanes hold channels c..c+3, seeded from
// sincos evaluations (chunk bases and delta) by three complex
// rotations, and advanced four channels at a time by the rotator
// exp(i*4*delta) (double-angle applied twice). Each pixel owns eight
// accumulators of four lanes each (scratch vacc); lanes persist across
// visibility blocks and fold only when the tile finishes, so — exactly
// like the scalar tile — the per-pixel result is independent of the
// tile and block decomposition. Leftover channels (nc mod 4)
// accumulate scalar-style into lane 0.
//
// The seeding sincos calls are batched: per (pixel, time-step block)
// every chunk base, the channel-tail base and the delta argument are
// staged into one argument array and evaluated by a single
// Kernels.sincosVec call (lane-parallel xmath.SincosVec under the
// default evaluator). SincosVec is bitwise independent of batch
// decomposition and SIMD tier, so this keeps the per-pixel result
// independent of the block size.
//
// Error class: the lane seeding applies at most three rotations to an
// exact sincos pair and every lane is re-seeded each chunk, so the
// per-channel phasor drift stays within the same
// xmath.PhasorDriftBound class as the scalar recurrence; the fused
// accumulation matches the scalar FMA split to reassociation.
func gridTileVec(k *Kernels, item plan.WorkItem, uvw []uvwsim.UVW, sb *scratch, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, ts *scratch, row0, row1 int) {
	sg := k.params.SubgridSize
	nt, nc := item.NrTimesteps, item.NrChannels
	re, im := visPlanes[float64](sb, nt*nc)
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	pix0, pix1 := row0*sg, row1*sg
	vacc := growF(&ts.b64.vacc, 32*(pix1-pix0))
	for i := range vacc {
		vacc[i] = 0
	}
	nq := nc / 4
	tail0 := 4 * nq
	scale0 := k.scale[item.Channel0]
	block := k.visBlockSteps(nt, nc)
	// Batched-seeding layout, per time step of a block: one argument
	// slot per resync chunk (its base phase), one for the channel tail
	// when nc mod 4 != 0, and one for the per-channel delta.
	nchunks := (nq + chunkQuads - 1) / chunkQuads
	seeds := nchunks
	if tail0 < nc {
		seeds++
	}
	stride := seeds + 1
	// ph is the register file handed to rotAccQuads: per-lane phasor
	// sin [0:4] and cos [4:8], then the four-channel rotator sin/cos.
	var ph [10]float64
	for t0 := 0; t0 < nt; t0 += block {
		t1 := t0 + block
		if t1 > nt {
			t1 = nt
		}
		arg := growF(&ts.sArg, stride*(t1-t0))
		asn := growF(&ts.sSin, stride*(t1-t0))
		acs := growF(&ts.sCos, stride*(t1-t0))
		for i := pix0; i < pix1; i++ {
			l, m, n := k.l[i], k.m[i], k.n[i]
			phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
			a := vacc[32*(i-pix0) : 32*(i-pix0)+32]
			for t := t0; t < t1; t++ {
				c3 := uvw[t]
				phaseIndex := c3.U*l + c3.V*m + c3.W*n
				base := phaseIndex*scale0 - phaseOffset
				delta := phaseIndex * k.dscale
				o := stride * (t - t0)
				for ci := 0; ci < nchunks; ci++ {
					arg[o+ci] = base + float64(4*ci*chunkQuads)*delta
				}
				if tail0 < nc {
					arg[o+seeds-1] = base + float64(tail0)*delta
				}
				arg[o+seeds] = delta
			}
			k.sincosVec(asn, acs, arg)
			for t := t0; t < t1; t++ {
				o := stride * (t - t0)
				ds, dc := asn[o+seeds], acs[o+seeds]
				ds2, dc2 := 2*ds*dc, dc*dc-ds*ds
				ph[8], ph[9] = 2*ds2*dc2, dc2*dc2-ds2*ds2
				j := t * nc
				for ci, q0 := 0, 0; q0 < nq; ci, q0 = ci+1, q0+chunkQuads {
					qn := nq - q0
					if qn > chunkQuads {
						qn = chunkQuads
					}
					sv, cv := asn[o+ci], acs[o+ci]
					ph[0], ph[4] = sv, cv
					s1, c1 := sv*dc+cv*ds, cv*dc-sv*ds
					ph[1], ph[5] = s1, c1
					s2, c2 := s1*dc+c1*ds, c1*dc-s1*ds
					ph[2], ph[6] = s2, c2
					ph[3], ph[7] = s2*dc+c2*ds, c2*dc-s2*ds
					jj := j + 4*q0
					rotAccQuads(&a[0],
						&re[0][jj], &im[0][jj], &re[1][jj], &im[1][jj],
						&re[2][jj], &im[2][jj], &re[3][jj], &im[3][jj],
						qn, &ph[0])
				}
				if tail0 < nc {
					sv, cv := asn[o+seeds-1], acs[o+seeds-1]
					for c := tail0; c < nc; c++ {
						jj := j + c
						vr, vi := re[0][jj], im[0][jj]
						a[0] += vr*cv - vi*sv
						a[4] += vr*sv + vi*cv
						vr, vi = re[1][jj], im[1][jj]
						a[8] += vr*cv - vi*sv
						a[12] += vr*sv + vi*cv
						vr, vi = re[2][jj], im[2][jj]
						a[16] += vr*cv - vi*sv
						a[20] += vr*sv + vi*cv
						vr, vi = re[3][jj], im[3][jj]
						a[24] += vr*cv - vi*sv
						a[28] += vr*sv + vi*cv
						sv, cv = sv*dc+cv*ds, cv*dc-sv*ds
					}
				}
			}
		}
	}
	for i := pix0; i < pix1; i++ {
		v := vacc[32*(i-pix0) : 32*(i-pix0)+32]
		// Lane fold (l0+l2)+(l1+l3), matching the in-register reduce of
		// conjAccQuads; any fixed order preserves decomposition
		// independence, since the lanes themselves are.
		var q [8]float64
		for p := 0; p < 8; p++ {
			q[p] = (v[4*p] + v[4*p+2]) + (v[4*p+1] + v[4*p+3])
		}
		sum := xmath.Matrix2{
			complex(q[0], q[1]), complex(q[2], q[3]),
			complex(q[4], q[5]), complex(q[6], q[7]),
		}
		k.storePixel(out, i, sum, atermP, atermQ)
	}
}

// degridTileVec is degridTile on the vector kernels: the per-pixel
// phasor rotation pass runs through rotQuads and the conjugate
// accumulation through conjAccQuads, four pixels per instruction, with
// a scalar loop covering the n mod 4 pixel tail. The per-pixel seed
// and resync sincos sweeps are batched: arguments are staged into the
// scratch sArg buffer and evaluated by one Kernels.sincosVec call
// writing straight into the phasor buffers. Tail pixels and the vector
// lane fold combine in a local accumulator before touching dst,
// keeping the one-addition-per-element property the serial ≡ parallel
// bitwise guarantee of degridSubgridTiled rests on.
func degridTileVec(k *Kernels, item plan.WorkItem, sb *scratch, uvw []uvwsim.UVW, ts *scratch, row0, row1 int, dst []float64) {
	sg := k.params.SubgridSize
	nc := item.NrChannels
	i0, i1 := row0*sg, row1*sg
	n := i1 - i0
	nq := n / 4
	tail0 := 4 * nq
	tb := &ts.b64
	pIdx := growF(&ts.pIdx, n)
	phRe := grow(&tb.phRe, n)
	phIm := grow(&tb.phIm, n)
	useRec := k.useRecurrence(nc)
	var dRe, dIm []float64
	if useRec {
		dRe = grow(&tb.dRe, n)
		dIm = grow(&tb.dIm, n)
	}
	l, m, nn := k.l[i0:i1], k.m[i0:i1], k.n[i0:i1]
	pre, pim := visPlanes[float64](sb, sg*sg)
	off := sb.pOff[i0:i1]
	var tpre, tpim [4][]float64
	for p := 0; p < 4; p++ {
		tpre[p] = pre[p][i0:i1]
		tpim[p] = pim[p][i0:i1]
	}
	scale0 := k.scale[item.Channel0]
	arg := growF(&ts.sArg, 2*n)
	for t := 0; t < item.NrTimesteps; t++ {
		c3 := uvw[t]
		for i := 0; i < n; i++ {
			pIdx[i] = c3.U*l[i] + c3.V*m[i] + c3.W*nn[i]
		}
		if useRec {
			// Seed the per-pixel phasors at channel 0 and the delta
			// phasors exp(i*pIdx*dscale) that advance them per channel,
			// one batched evaluation each.
			for i := 0; i < n; i++ {
				arg[i] = pIdx[i]*scale0 - off[i]
				arg[n+i] = pIdx[i] * k.dscale
			}
			k.sincosVec(phIm, phRe, arg[:n])
			k.sincosVec(dIm, dRe, arg[n:])
		}
		for c := 0; c < nc; c++ {
			scale := k.scale[item.Channel0+c]
			switch {
			case !useRec, c != 0 && c%xmath.DefaultPhasorResync == 0:
				for i := 0; i < n; i++ {
					arg[i] = pIdx[i]*scale - off[i]
				}
				k.sincosVec(phIm, phRe, arg[:n])
			case c == 0:
				// Seeded above.
			default:
				if nq > 0 {
					rotQuads(&phRe[0], &phIm[0], &dRe[0], &dIm[0], nq)
				}
				for i := tail0; i < n; i++ {
					s, co := phIm[i], phRe[i]
					phIm[i] = s*dRe[i] + co*dIm[i]
					phRe[i] = co*dRe[i] - s*dIm[i]
				}
			}
			// Sum the tile's contribution into a local accumulator first
			// (tail pixels, then the lane fold conjAccQuads adds on top),
			// so dst sees exactly ONE addition per element per (t, c) —
			// the property the serial ≡ parallel bitwise guarantee of
			// degridSubgridTiled rests on.
			var t8 [8]float64
			for i := tail0; i < n; i++ {
				cr, ci := phRe[i], -phIm[i] // conjugate phasor
				vr, vi := tpre[0][i], tpim[0][i]
				t8[0] += vr*cr - vi*ci
				t8[1] += vr*ci + vi*cr
				vr, vi = tpre[1][i], tpim[1][i]
				t8[2] += vr*cr - vi*ci
				t8[3] += vr*ci + vi*cr
				vr, vi = tpre[2][i], tpim[2][i]
				t8[4] += vr*cr - vi*ci
				t8[5] += vr*ci + vi*cr
				vr, vi = tpre[3][i], tpim[3][i]
				t8[6] += vr*cr - vi*ci
				t8[7] += vr*ci + vi*cr
			}
			if nq > 0 {
				conjAccQuads(&t8[0], &phRe[0], &phIm[0],
					&tpre[0][0], &tpim[0][0], &tpre[1][0], &tpim[1][0],
					&tpre[2][0], &tpim[2][0], &tpre[3][0], &tpim[3][0], nq)
			}
			out := (*[8]float64)(dst[8*(t*nc+c):])
			for j := 0; j < 8; j++ {
				out[j] += t8[j]
			}
		}
	}
}
