package fft

import "sync"

// Plans are immutable after construction and relatively expensive to
// build (twiddle tables, bit-reversal permutations, Bluestein chirp
// transforms), while the pipelines create transforms of the same few
// sizes over and over (every GridToImage call, every W-layer). The
// package-level cache below memoizes them; Plan and Plan2D are safe
// for concurrent use, so sharing is free.

var (
	cacheMu sync.Mutex
	cache1D = make(map[int]*Plan)
	cache2D = make(map[[2]int]*Plan2D)
)

// CachedPlan returns a shared plan for length n.
func CachedPlan(n int) *Plan {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := cache1D[n]; ok {
		return p
	}
	p := NewPlan(n)
	cache1D[n] = p
	return p
}

// CachedPlan2D returns a shared 2-D plan for rows x cols.
func CachedPlan2D(rows, cols int) *Plan2D {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := [2]int{rows, cols}
	if p, ok := cache2D[key]; ok {
		return p
	}
	p := NewPlan2D(rows, cols)
	cache2D[key] = p
	return p
}
