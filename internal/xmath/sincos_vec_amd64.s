//go:build amd64

#include "textflag.h"

// Lane-parallel SincosFast. Both routines compute, per lane, the exact
// operation sequence of sincosFastFMA (sincos_vec.go):
//
//	k  = roundeven(x * invTwoPi)
//	r  = fma(-k, twoPiA, x); r = fma(-k, twoPiB, r)   Cody-Waite
//	fold r into [-pi/2, pi/2], remembering a cos sign flip
//	sin = fma(sinpoly(z), r*z, r)           z = r*r
//	cos = +-fma(cospoly(z), z*z, 1 - 0.5*z)
//
// so vector and scalar results are bitwise identical. Leaf functions:
// NOSPLIT, no calls, VZEROUPPER before returning to Go code.

// Scalar constants (8 bytes each): broadcast sources for both widths.
DATA sincosKS<>+0x00(SB)/8, $0x3fc45f306dc9c883 // invTwoPi
DATA sincosKS<>+0x08(SB)/8, $0x401921fb54442d18 // twoPiA
DATA sincosKS<>+0x10(SB)/8, $0x3cb1a62633145c07 // twoPiB
DATA sincosKS<>+0x18(SB)/8, $0x3ff921fb54442d18 // pi/2
DATA sincosKS<>+0x20(SB)/8, $0x400921fb54442d18 // pi
DATA sincosKS<>+0x28(SB)/8, $0x8000000000000000 // sign bit
DATA sincosKS<>+0x30(SB)/8, $0x3de5d93a5acfd57c // s6
DATA sincosKS<>+0x38(SB)/8, $0xbda8fae9be8838d4 // c6
DATA sincosKS<>+0x40(SB)/8, $0xbe5ae5e68a2b9ceb // s5
DATA sincosKS<>+0x48(SB)/8, $0x3ec71de357b1fe7d // s4
DATA sincosKS<>+0x50(SB)/8, $0xbf2a01a019c161d5 // s3
DATA sincosKS<>+0x58(SB)/8, $0x3f8111111110f8a6 // s2
DATA sincosKS<>+0x60(SB)/8, $0xbfc5555555555549 // s1
DATA sincosKS<>+0x68(SB)/8, $0x3e21ee9ebdb4b1c4 // c5
DATA sincosKS<>+0x70(SB)/8, $0xbe927e4f809c52ad // c4
DATA sincosKS<>+0x78(SB)/8, $0x3efa01a019cb1590 // c3
DATA sincosKS<>+0x80(SB)/8, $0xbf56c16c16c15177 // c2
DATA sincosKS<>+0x88(SB)/8, $0x3fa555555555554c // c1
DATA sincosKS<>+0x90(SB)/8, $0x3fe0000000000000 // 0.5
DATA sincosKS<>+0x98(SB)/8, $0x3ff0000000000000 // 1.0
GLOBL sincosKS<>(SB), RODATA|NOPTR, $160

// 4-lane replicas for AVX2 full-width memory operands (VEX encoding
// has no embedded broadcast).
DATA sincosK4<>+0x000(SB)/8, $0xbe5ae5e68a2b9ceb // s5 x4
DATA sincosK4<>+0x008(SB)/8, $0xbe5ae5e68a2b9ceb
DATA sincosK4<>+0x010(SB)/8, $0xbe5ae5e68a2b9ceb
DATA sincosK4<>+0x018(SB)/8, $0xbe5ae5e68a2b9ceb
DATA sincosK4<>+0x020(SB)/8, $0x3ec71de357b1fe7d // s4 x4
DATA sincosK4<>+0x028(SB)/8, $0x3ec71de357b1fe7d
DATA sincosK4<>+0x030(SB)/8, $0x3ec71de357b1fe7d
DATA sincosK4<>+0x038(SB)/8, $0x3ec71de357b1fe7d
DATA sincosK4<>+0x040(SB)/8, $0xbf2a01a019c161d5 // s3 x4
DATA sincosK4<>+0x048(SB)/8, $0xbf2a01a019c161d5
DATA sincosK4<>+0x050(SB)/8, $0xbf2a01a019c161d5
DATA sincosK4<>+0x058(SB)/8, $0xbf2a01a019c161d5
DATA sincosK4<>+0x060(SB)/8, $0x3f8111111110f8a6 // s2 x4
DATA sincosK4<>+0x068(SB)/8, $0x3f8111111110f8a6
DATA sincosK4<>+0x070(SB)/8, $0x3f8111111110f8a6
DATA sincosK4<>+0x078(SB)/8, $0x3f8111111110f8a6
DATA sincosK4<>+0x080(SB)/8, $0xbfc5555555555549 // s1 x4
DATA sincosK4<>+0x088(SB)/8, $0xbfc5555555555549
DATA sincosK4<>+0x090(SB)/8, $0xbfc5555555555549
DATA sincosK4<>+0x098(SB)/8, $0xbfc5555555555549
DATA sincosK4<>+0x0a0(SB)/8, $0x3e21ee9ebdb4b1c4 // c5 x4
DATA sincosK4<>+0x0a8(SB)/8, $0x3e21ee9ebdb4b1c4
DATA sincosK4<>+0x0b0(SB)/8, $0x3e21ee9ebdb4b1c4
DATA sincosK4<>+0x0b8(SB)/8, $0x3e21ee9ebdb4b1c4
DATA sincosK4<>+0x0c0(SB)/8, $0xbe927e4f809c52ad // c4 x4
DATA sincosK4<>+0x0c8(SB)/8, $0xbe927e4f809c52ad
DATA sincosK4<>+0x0d0(SB)/8, $0xbe927e4f809c52ad
DATA sincosK4<>+0x0d8(SB)/8, $0xbe927e4f809c52ad
DATA sincosK4<>+0x0e0(SB)/8, $0x3efa01a019cb1590 // c3 x4
DATA sincosK4<>+0x0e8(SB)/8, $0x3efa01a019cb1590
DATA sincosK4<>+0x0f0(SB)/8, $0x3efa01a019cb1590
DATA sincosK4<>+0x0f8(SB)/8, $0x3efa01a019cb1590
DATA sincosK4<>+0x100(SB)/8, $0xbf56c16c16c15177 // c2 x4
DATA sincosK4<>+0x108(SB)/8, $0xbf56c16c16c15177
DATA sincosK4<>+0x110(SB)/8, $0xbf56c16c16c15177
DATA sincosK4<>+0x118(SB)/8, $0xbf56c16c16c15177
DATA sincosK4<>+0x120(SB)/8, $0x3fa555555555554c // c1 x4
DATA sincosK4<>+0x128(SB)/8, $0x3fa555555555554c
DATA sincosK4<>+0x130(SB)/8, $0x3fa555555555554c
DATA sincosK4<>+0x138(SB)/8, $0x3fa555555555554c
DATA sincosK4<>+0x140(SB)/8, $0x3fe0000000000000 // 0.5 x4
DATA sincosK4<>+0x148(SB)/8, $0x3fe0000000000000
DATA sincosK4<>+0x150(SB)/8, $0x3fe0000000000000
DATA sincosK4<>+0x158(SB)/8, $0x3fe0000000000000
DATA sincosK4<>+0x160(SB)/8, $0x3ff0000000000000 // 1.0 x4
DATA sincosK4<>+0x168(SB)/8, $0x3ff0000000000000
DATA sincosK4<>+0x170(SB)/8, $0x3ff0000000000000
DATA sincosK4<>+0x178(SB)/8, $0x3ff0000000000000
GLOBL sincosK4<>(SB), RODATA|NOPTR, $384

// func sincosQuads(sin, cos, x *float64, nq int)
//
// Four lanes per iteration, AVX2+FMA.
TEXT ·sincosQuads(SB), NOSPLIT, $0-32
	MOVQ sin+0(FP), DI
	MOVQ cos+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ nq+24(FP), CX

	VBROADCASTSD sincosKS<>+0x00(SB), Y10 // invTwoPi
	VBROADCASTSD sincosKS<>+0x08(SB), Y11 // twoPiA
	VBROADCASTSD sincosKS<>+0x10(SB), Y12 // twoPiB
	VBROADCASTSD sincosKS<>+0x18(SB), Y13 // pi/2
	VBROADCASTSD sincosKS<>+0x20(SB), Y14 // pi
	VBROADCASTSD sincosKS<>+0x28(SB), Y15 // sign bit

quadloop:
	VMOVUPD      (DX), Y0       // x
	VMULPD       Y10, Y0, Y1
	VROUNDPD     $0, Y1, Y1     // k = roundeven(x*invTwoPi)
	VMOVAPD      Y0, Y2
	VFNMADD231PD Y11, Y1, Y2    // r = x - k*twoPiA
	VFNMADD231PD Y12, Y1, Y2    // r -= k*twoPiB

	// Quadrant fold: both masks test the unfolded r (the conditions
	// are mutually exclusive), then blend in pi-r / -pi-r.
	VCMPPD    $0x1e, Y13, Y2, Y3 // m1 = r > pi/2 (GT_OQ)
	VXORPD    Y15, Y13, Y5       // -pi/2
	VCMPPD    $0x11, Y5, Y2, Y5  // m2 = r < -pi/2 (LT_OQ)
	VSUBPD    Y2, Y14, Y4        // pi - r
	VBLENDVPD Y3, Y4, Y2, Y9
	VXORPD    Y15, Y14, Y4       // -pi
	VSUBPD    Y2, Y4, Y4         // -pi - r
	VBLENDVPD Y5, Y4, Y9, Y2     // r folded
	VORPD     Y5, Y3, Y3
	VANDPD    Y15, Y3, Y3        // cos sign-flip mask

	VMULPD Y2, Y2, Y6           // z = r*r

	// sin = fma(((((s6*z+s5)*z+s4)*z+s3)*z+s2)*z+s1, r*z, r)
	VBROADCASTSD sincosKS<>+0x30(SB), Y7
	VFMADD213PD  sincosK4<>+0x000(SB), Y6, Y7
	VFMADD213PD  sincosK4<>+0x020(SB), Y6, Y7
	VFMADD213PD  sincosK4<>+0x040(SB), Y6, Y7
	VFMADD213PD  sincosK4<>+0x060(SB), Y6, Y7
	VFMADD213PD  sincosK4<>+0x080(SB), Y6, Y7
	VMULPD       Y6, Y2, Y4     // r*z
	VFMADD213PD  Y2, Y4, Y7     // sin

	// cos = +-fma(((((c6*z+c5)*z+c4)*z+c3)*z+c2)*z+c1, z*z, 1-0.5z)
	VBROADCASTSD sincosKS<>+0x38(SB), Y8
	VFMADD213PD  sincosK4<>+0x0a0(SB), Y6, Y8
	VFMADD213PD  sincosK4<>+0x0c0(SB), Y6, Y8
	VFMADD213PD  sincosK4<>+0x0e0(SB), Y6, Y8
	VFMADD213PD  sincosK4<>+0x100(SB), Y6, Y8
	VFMADD213PD  sincosK4<>+0x120(SB), Y6, Y8
	VMULPD       sincosK4<>+0x140(SB), Y6, Y4 // 0.5*z
	VMOVUPD      sincosK4<>+0x160(SB), Y9
	VSUBPD       Y4, Y9, Y4     // 1 - 0.5*z
	VMULPD       Y6, Y6, Y6     // z*z
	VFMADD213PD  Y4, Y6, Y8     // cos (unsigned)
	VXORPD       Y3, Y8, Y8     // apply quadrant sign

	VMOVUPD Y7, (DI)
	VMOVUPD Y8, (SI)
	ADDQ    $32, DX
	ADDQ    $32, DI
	ADDQ    $32, SI
	DECQ    CX
	JNZ     quadloop
	VZEROUPPER
	RET

// func sincosOcts(sin, cos, x *float64, no int)
//
// Eight lanes per iteration, AVX-512F (compares into opmasks, folds
// via merge-masked moves, coefficients as embedded broadcasts).
TEXT ·sincosOcts(SB), NOSPLIT, $0-32
	MOVQ sin+0(FP), DI
	MOVQ cos+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ no+24(FP), CX

	VBROADCASTSD sincosKS<>+0x00(SB), Z10 // invTwoPi
	VBROADCASTSD sincosKS<>+0x08(SB), Z11 // twoPiA
	VBROADCASTSD sincosKS<>+0x10(SB), Z12 // twoPiB
	VBROADCASTSD sincosKS<>+0x18(SB), Z13 // pi/2
	VBROADCASTSD sincosKS<>+0x20(SB), Z14 // pi
	VBROADCASTSD sincosKS<>+0x28(SB), Z15 // sign bit
	VXORPD       Z15, Z13, Z16            // -pi/2
	VXORPD       Z15, Z14, Z17            // -pi
	VBROADCASTSD sincosKS<>+0x98(SB), Z18 // 1.0
	VBROADCASTSD sincosKS<>+0x90(SB), Z19 // 0.5

octloop:
	VMOVUPD      (DX), Z0
	VMULPD       Z10, Z0, Z1
	VRNDSCALEPD  $0, Z1, Z1     // k = roundeven(x*invTwoPi)
	VMOVAPD      Z0, Z2
	VFNMADD231PD Z11, Z1, Z2    // r = x - k*twoPiA
	VFNMADD231PD Z12, Z1, Z2    // r -= k*twoPiB

	VCMPPD  $0x1e, Z13, Z2, K1  // m1 = r > pi/2
	VCMPPD  $0x11, Z16, Z2, K2  // m2 = r < -pi/2
	VSUBPD  Z2, Z14, Z4         // pi - r
	VSUBPD  Z2, Z17, Z5         // -pi - r
	VMOVAPD Z4, K1, Z2
	VMOVAPD Z5, K2, Z2          // r folded
	KORW    K1, K2, K1          // cos sign-flip lanes

	VMULPD Z2, Z2, Z6           // z = r*r

	VBROADCASTSD     sincosKS<>+0x30(SB), Z7 // s6
	VFMADD213PD.BCST sincosKS<>+0x40(SB), Z6, Z7
	VFMADD213PD.BCST sincosKS<>+0x48(SB), Z6, Z7
	VFMADD213PD.BCST sincosKS<>+0x50(SB), Z6, Z7
	VFMADD213PD.BCST sincosKS<>+0x58(SB), Z6, Z7
	VFMADD213PD.BCST sincosKS<>+0x60(SB), Z6, Z7
	VMULPD           Z6, Z2, Z4 // r*z
	VFMADD213PD      Z2, Z4, Z7 // sin

	VBROADCASTSD     sincosKS<>+0x38(SB), Z8 // c6
	VFMADD213PD.BCST sincosKS<>+0x68(SB), Z6, Z8
	VFMADD213PD.BCST sincosKS<>+0x70(SB), Z6, Z8
	VFMADD213PD.BCST sincosKS<>+0x78(SB), Z6, Z8
	VFMADD213PD.BCST sincosKS<>+0x80(SB), Z6, Z8
	VFMADD213PD.BCST sincosKS<>+0x88(SB), Z6, Z8
	VMULPD           Z19, Z6, Z4 // 0.5*z
	VSUBPD           Z4, Z18, Z4 // 1 - 0.5*z
	VMULPD           Z6, Z6, Z6  // z*z
	VFMADD213PD      Z4, Z6, Z8  // cos (unsigned)
	VXORPD           Z15, Z8, K1, Z8 // negate folded lanes

	VMOVUPD Z7, (DI)
	VMOVUPD Z8, (SI)
	ADDQ    $64, DX
	ADDQ    $64, DI
	ADDQ    $64, SI
	DECQ    CX
	JNZ     octloop
	VZEROUPPER
	RET
