package plan

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/uvwsim"
)

func TestStreamingMatchesBatch(t *testing.T) {
	tracks, sim := testTracks(t, 12, 256)
	cfg := testConfig(imageSizeFor(sim, 256, 512, 151.4e6))

	batch, err := New(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := NewStreaming(cfg, len(tracks), 256, func(b int, buf []uvwsim.UVW) []uvwsim.UVW {
		copy(buf, tracks[b])
		return buf[:len(tracks[b])]
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed.Items) != len(batch.Items) {
		t.Fatalf("streamed %d items, batch %d", len(streamed.Items), len(batch.Items))
	}
	for i := range batch.Items {
		if batch.Items[i] != streamed.Items[i] {
			t.Fatalf("item %d differs: %+v vs %+v", i, batch.Items[i], streamed.Items[i])
		}
	}
	if streamed.DroppedVisibilities != batch.DroppedVisibilities {
		t.Fatal("dropped counts differ")
	}
}

func TestStreamingFromSimulatorDirectly(t *testing.T) {
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 16
	sim := uvwsim.New(layout.Generate(cfg), uvwsim.DefaultOptions())
	nt := 512
	maxUV := sim.MaxUV(nt) * 151.4e6 / uvwsim.SpeedOfLight
	pcfg := testConfig(float64(512/2-40) / maxUV)
	baselines := sim.Baselines()
	p, err := NewStreaming(pcfg, len(baselines), nt, func(b int, buf []uvwsim.UVW) []uvwsim.UVW {
		return sim.BaselineTrack(baselines[b], 0, nt, buf)
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-validate coverage against freshly generated tracks.
	tracks := sim.AllTracks(nt)
	if _, err := p.ValidateCoverage(tracks); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingValidation(t *testing.T) {
	cfg := testConfig(0.05)
	gen := func(b int, buf []uvwsim.UVW) []uvwsim.UVW { return buf[:0] }
	if _, err := NewStreaming(cfg, 0, 10, gen, 1); err == nil {
		t.Fatal("expected error for zero baselines")
	}
	if _, err := NewStreaming(cfg, 10, 0, gen, 1); err == nil {
		t.Fatal("expected error for zero timesteps")
	}
	bad := cfg
	bad.GridSize = 0
	if _, err := NewStreaming(bad, 10, 10, gen, 1); err == nil {
		t.Fatal("expected config error")
	}
}
