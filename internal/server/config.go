package server

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Config configures the gridding server. The zero value listens on a
// kernel-assigned loopback port with conservative defaults; every
// resolved default is documented on its field.
type Config struct {
	// Addr is the listen address ("host:port"; an empty or "0" port
	// asks the kernel for one). Empty selects "127.0.0.1:0".
	Addr string
	// MaxSessions caps concurrently registered sessions across all
	// tenants (<= 0: 64).
	MaxSessions int
	// MaxSessionsPerTenant caps one tenant's concurrently registered
	// sessions (<= 0: 4).
	MaxSessionsPerTenant int
	// MaxInflightPerTenant caps the sum of resolved MaxInflightChunks
	// bounds across one tenant's registered sessions — the admission
	// side of the PR 5 streaming memory bound (<= 0: 64).
	MaxInflightPerTenant int
	// SessionInflightDefault is the MaxInflightChunks bound assigned to
	// sessions that do not request one (<= 0: 4). It is what ties every
	// admitted session to a finite share of the tenant budget.
	SessionInflightDefault int
	// IdleTimeout expires sessions (any state but finalizing) that go
	// untouched this long (<= 0: 2 minutes).
	IdleTimeout time.Duration
	// DrainTimeout bounds the graceful drain: after admissions stop,
	// active sessions get this long to finish before their contexts are
	// canceled (checkpointed sessions keep their last snapshot)
	// (<= 0: 30 seconds).
	DrainTimeout time.Duration
	// MaxFrameBytes caps one wire frame's payload
	// (<= 0: DefaultMaxFramePayload).
	MaxFrameBytes int
	// CheckpointRoot, when non-empty, lets sessions opt into durable
	// checkpoints: each checkpointing session gets its own directory
	// under this root. Empty rejects checkpoint requests.
	CheckpointRoot string
	// Observer receives the server's session metrics; nil disables
	// them at the usual zero cost.
	Observer *obs.Observer
}

// ErrInvalidConfig marks every server configuration rejection; match
// it with errors.Is. The concrete error is a *ConfigError naming the
// offending field (the same typed-validation pattern as the facade's
// ObservationConfig).
var ErrInvalidConfig = errors.New("server: invalid config")

// ConfigError is a typed configuration rejection: which Config field
// is wrong and why. It unwraps to ErrInvalidConfig.
type ConfigError struct {
	Field  string
	Reason string
}

// Error formats the rejection.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("server: invalid %s: %s", e.Field, e.Reason)
}

// Unwrap makes every ConfigError match ErrInvalidConfig.
func (e *ConfigError) Unwrap() error { return ErrInvalidConfig }

// Validate checks the configuration without resolving defaults.
func (c *Config) Validate() error {
	if c.Addr != "" {
		host, port, err := net.SplitHostPort(c.Addr)
		if err != nil {
			return &ConfigError{Field: "Addr", Reason: fmt.Sprintf("%q is not host:port (%v)", c.Addr, err)}
		}
		if host == "" {
			return &ConfigError{Field: "Addr", Reason: fmt.Sprintf("%q has no host", c.Addr)}
		}
		if port != "" {
			p, err := strconv.Atoi(port)
			if err != nil || p < 0 || p > 65535 {
				return &ConfigError{Field: "Addr", Reason: fmt.Sprintf("port %q outside [0, 65535]", port)}
			}
		}
	}
	switch {
	case c.MaxSessions < 0:
		return &ConfigError{Field: "MaxSessions", Reason: fmt.Sprintf("negative session cap %d", c.MaxSessions)}
	case c.MaxSessionsPerTenant < 0:
		return &ConfigError{Field: "MaxSessionsPerTenant", Reason: fmt.Sprintf("negative tenant session cap %d", c.MaxSessionsPerTenant)}
	case c.MaxInflightPerTenant < 0:
		return &ConfigError{Field: "MaxInflightPerTenant", Reason: fmt.Sprintf("negative tenant in-flight budget %d", c.MaxInflightPerTenant)}
	case c.SessionInflightDefault < 0:
		return &ConfigError{Field: "SessionInflightDefault", Reason: fmt.Sprintf("negative per-session in-flight default %d", c.SessionInflightDefault)}
	case c.sessionInflightDefault() > c.maxInflightPerTenant():
		return &ConfigError{Field: "SessionInflightDefault", Reason: fmt.Sprintf(
			"per-session default %d exceeds the tenant budget %d: no default session could ever be admitted",
			c.sessionInflightDefault(), c.maxInflightPerTenant())}
	case c.IdleTimeout < 0:
		return &ConfigError{Field: "IdleTimeout", Reason: fmt.Sprintf("negative idle timeout %v", c.IdleTimeout)}
	case c.DrainTimeout < 0:
		return &ConfigError{Field: "DrainTimeout", Reason: fmt.Sprintf("negative drain timeout %v", c.DrainTimeout)}
	case c.MaxFrameBytes < 0:
		return &ConfigError{Field: "MaxFrameBytes", Reason: fmt.Sprintf("negative frame cap %d", c.MaxFrameBytes)}
	case c.MaxFrameBytes > 0 && c.MaxFrameBytes < MinFramePayloadCap:
		return &ConfigError{Field: "MaxFrameBytes", Reason: fmt.Sprintf(
			"frame cap %d below the %d-byte minimum (one visibility sample)", c.MaxFrameBytes, MinFramePayloadCap)}
	}
	return nil
}

// Resolved defaults.

func (c *Config) addr() string {
	if c.Addr == "" {
		return "127.0.0.1:0"
	}
	return c.Addr
}

func (c *Config) maxSessions() int {
	if c.MaxSessions <= 0 {
		return 64
	}
	return c.MaxSessions
}

func (c *Config) maxSessionsPerTenant() int {
	if c.MaxSessionsPerTenant <= 0 {
		return 4
	}
	return c.MaxSessionsPerTenant
}

func (c *Config) maxInflightPerTenant() int {
	if c.MaxInflightPerTenant <= 0 {
		return 64
	}
	return c.MaxInflightPerTenant
}

func (c *Config) sessionInflightDefault() int {
	if c.SessionInflightDefault <= 0 {
		return 4
	}
	return c.SessionInflightDefault
}

func (c *Config) idleTimeout() time.Duration {
	if c.IdleTimeout <= 0 {
		return 2 * time.Minute
	}
	return c.IdleTimeout
}

func (c *Config) drainTimeout() time.Duration {
	if c.DrainTimeout <= 0 {
		return 30 * time.Second
	}
	return c.DrainTimeout
}

func (c *Config) maxFrameBytes() int {
	if c.MaxFrameBytes <= 0 {
		return DefaultMaxFramePayload
	}
	return c.MaxFrameBytes
}
