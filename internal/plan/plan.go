// Package plan implements the execution plan of the paper
// (Section V-A): before gridding, the visibilities of every baseline
// are partitioned into work items, each consisting of a subgrid
// position on the grid plus the contiguous block of time steps (and a
// channel block) whose visibilities — including the support of their
// AW convolution kernels — fit inside that subgrid. A greedy sweep
// over time implements the partitioning; Tmax bounds the work per
// item, and A-term slot boundaries and W-layers force splits.
package plan

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/uvwsim"
)

// Config describes the imaging setup the plan is built for.
type Config struct {
	// GridSize is the grid dimension in pixels (2048 in the paper's
	// dataset).
	GridSize int
	// SubgridSize is the subgrid dimension N~ in pixels (24).
	SubgridSize int
	// ImageSize is the field-of-view extent in direction cosines; one
	// uv cell is 1/ImageSize wavelengths.
	ImageSize float64
	// Frequencies lists the channel center frequencies in Hz.
	Frequencies []float64
	// KernelSupport is the half-width, in uv cells, reserved around
	// each visibility for the taper/W-term/A-term support (Fig. 5).
	KernelSupport int
	// MaxTimestepsPerSubgrid is T~max; 0 means unlimited.
	MaxTimestepsPerSubgrid int
	// ATermUpdateInterval is the number of time steps per A-term slot
	// (256 in the paper); 0 means a single slot.
	ATermUpdateInterval int
	// WStepLambda is the W-layer thickness in wavelengths for
	// W-stacking; 0 disables W-stacking (all subgrids at w=0).
	WStepLambda float64
	// ChannelBlockSize is C~, the number of channels per work item;
	// 0 means all channels in one block.
	ChannelBlockSize int
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	switch {
	case c.GridSize < 2:
		return fmt.Errorf("plan: grid size %d too small", c.GridSize)
	case c.SubgridSize < 2:
		return fmt.Errorf("plan: subgrid size %d too small", c.SubgridSize)
	case c.SubgridSize > c.GridSize:
		return fmt.Errorf("plan: subgrid size %d exceeds grid size %d", c.SubgridSize, c.GridSize)
	case c.ImageSize <= 0:
		return fmt.Errorf("plan: image size must be positive, got %g", c.ImageSize)
	case len(c.Frequencies) == 0:
		return errors.New("plan: no frequencies")
	case c.KernelSupport < 0:
		return fmt.Errorf("plan: negative kernel support %d", c.KernelSupport)
	case 2*c.KernelSupport >= c.SubgridSize:
		return fmt.Errorf("plan: kernel support %d leaves no room in a %d-pixel subgrid",
			c.KernelSupport, c.SubgridSize)
	case c.WStepLambda < 0:
		return fmt.Errorf("plan: negative w step %g", c.WStepLambda)
	}
	for i, f := range c.Frequencies {
		if f <= 0 {
			return fmt.Errorf("plan: frequency %d not positive: %g", i, f)
		}
	}
	return nil
}

// channelBlock returns the effective channel block size.
func (c *Config) channelBlock() int {
	if c.ChannelBlockSize <= 0 || c.ChannelBlockSize > len(c.Frequencies) {
		return len(c.Frequencies)
	}
	return c.ChannelBlockSize
}

// WorkItem is one subgrid together with the visibility block it covers
// (the paper's "work item": subgrid metadata plus associated
// visibilities).
type WorkItem struct {
	// Baseline indexes into the baseline list the plan was built from.
	Baseline int
	// TimeStart and NrTimesteps delimit the time block.
	TimeStart, NrTimesteps int
	// Channel0 and NrChannels delimit the channel block.
	Channel0, NrChannels int
	// ATermSlot is the A-term slot shared by all covered time steps.
	ATermSlot int
	// X0, Y0 anchor the subgrid in the grid (top-left pixel).
	X0, Y0 int
	// WOffset is the w coordinate of the subgrid's W-layer in
	// wavelengths (0 without W-stacking).
	WOffset float64
	// WPlane is the W-layer index (0 without W-stacking).
	WPlane int
}

// NrVisibilities returns the number of visibilities covered by the
// item.
func (w *WorkItem) NrVisibilities() int {
	return w.NrTimesteps * w.NrChannels
}

// Plan is the result of partitioning an observation.
type Plan struct {
	Config
	// Items lists all work items ("the work").
	Items []WorkItem
	// DroppedVisibilities counts visibilities that could not be
	// placed (their uv point, with support, falls off the grid).
	DroppedVisibilities int
}

// uvPixel converts a uvw coordinate in meters to grid pixel units
// relative to the grid center for frequency f.
func (c *Config) uvPixel(coord uvwsim.UVW, f float64) (float64, float64) {
	s := f / uvwsim.SpeedOfLight * c.ImageSize
	return coord.U * s, coord.V * s
}

// bbox tracks a bounding box in pixel units.
type bbox struct {
	umin, umax, vmin, vmax float64
	wmin, wmax             float64 // wavelengths
	valid                  bool
}

func (b *bbox) add(u, v, w float64) {
	if !b.valid {
		*b = bbox{umin: u, umax: u, vmin: v, vmax: v, wmin: w, wmax: w, valid: true}
		return
	}
	b.umin = math.Min(b.umin, u)
	b.umax = math.Max(b.umax, u)
	b.vmin = math.Min(b.vmin, v)
	b.vmax = math.Max(b.vmax, v)
	b.wmin = math.Min(b.wmin, w)
	b.wmax = math.Max(b.wmax, w)
}

func (b *bbox) union(o bbox) bbox {
	if !b.valid {
		return o
	}
	if !o.valid {
		return *b
	}
	return bbox{
		umin: math.Min(b.umin, o.umin), umax: math.Max(b.umax, o.umax),
		vmin: math.Min(b.vmin, o.vmin), vmax: math.Max(b.vmax, o.vmax),
		wmin: math.Min(b.wmin, o.wmin), wmax: math.Max(b.wmax, o.wmax),
		valid: true,
	}
}

// New builds the execution plan for the given per-baseline uvw tracks
// (tracks[b][t], in meters). All baselines must have equal track
// lengths.
func New(cfg Config, tracks [][]uvwsim.UVW) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tracks) == 0 {
		return nil, errors.New("plan: no baselines")
	}
	nt := len(tracks[0])
	for b, tr := range tracks {
		if len(tr) != nt {
			return nil, fmt.Errorf("plan: baseline %d has %d samples, want %d", b, len(tr), nt)
		}
	}
	p := &Plan{Config: cfg}
	cb := cfg.channelBlock()
	for c0 := 0; c0 < len(cfg.Frequencies); c0 += cb {
		nc := cb
		if c0+nc > len(cfg.Frequencies) {
			nc = len(cfg.Frequencies) - c0
		}
		for b := range tracks {
			p.planBaselineAdaptive(b, tracks[b], c0, nc)
		}
	}
	return p, nil
}

// timestepBox returns the pixel bounding box of one time step's
// channels for channel block [c0, c0+nc).
func (p *Plan) timestepBox(coord uvwsim.UVW, c0, nc int) bbox {
	var b bbox
	for c := c0; c < c0+nc; c++ {
		f := p.Frequencies[c]
		u, v := p.uvPixel(coord, f)
		w := coord.W * f / uvwsim.SpeedOfLight
		b.add(u, v, w)
	}
	return b
}

// fits reports whether a bounding box fits into a subgrid, leaving
// KernelSupport pixels of margin on every side.
func (p *Plan) fits(b bbox) bool {
	// A box of width W plus 2*support pixels of margin must fit into
	// SubgridSize-1 usable pixel distances; one extra pixel is
	// reserved for the integer rounding of the subgrid anchor.
	if !p.uvFits(b) {
		return false
	}
	if p.WStepLambda > 0 && b.wmax-b.wmin > p.WStepLambda {
		return false
	}
	return true
}

// uvFits checks only the uv extent of the box against the subgrid.
func (p *Plan) uvFits(b bbox) bool {
	free := float64(p.SubgridSize - 2*p.KernelSupport - 2)
	return b.umax-b.umin <= free && b.vmax-b.vmin <= free
}

// wPlane assigns a w coordinate (wavelengths) to a W-layer.
func (p *Plan) wPlane(w float64) int {
	if p.WStepLambda <= 0 {
		return 0
	}
	return int(math.Round(w / p.WStepLambda))
}

func (p *Plan) aTermSlot(t int) int {
	if p.ATermUpdateInterval <= 0 {
		return 0
	}
	return t / p.ATermUpdateInterval
}

// planBaselineAdaptive plans one baseline's channel block, first
// splitting the block into sub-ranges narrow enough that a single time
// step's frequency smear fits into the subgrid. This implements the
// paper's "having C~ channels that can be covered by an N~ x N~
// subgrid ... we create a new subgrid to cover the remaining
// channels": long baselines smear across many uv cells over a wide
// band, and are gridded in several channel groups.
func (p *Plan) planBaselineAdaptive(b int, track []uvwsim.UVW, c0, nc int) {
	free := float64(p.SubgridSize - 2*p.KernelSupport - 2)
	// Worst-case single-timestep uv span of the full block.
	span := 0.0
	for t := range track {
		box := p.timestepBox(track[t], c0, nc)
		span = math.Max(span, math.Max(box.umax-box.umin, box.vmax-box.vmin))
	}
	nSplit := 1
	if span > free {
		// The span scales ~linearly with the channel count; leave 20%
		// headroom for the nonlinearity across the band.
		nSplit = int(math.Ceil(span / free * 1.2))
		if nSplit > nc {
			nSplit = nc
		}
	}
	base, rem := nc/nSplit, nc%nSplit
	start := c0
	for i := 0; i < nSplit; i++ {
		n := base
		if i < rem {
			n++
		}
		if n == 0 {
			continue
		}
		p.planBaseline(b, track, start, n)
		start += n
	}
}

func (p *Plan) planBaseline(b int, track []uvwsim.UVW, c0, nc int) {
	var (
		cur      bbox
		start    = -1
		curSlot  = -1
		curPlane = 0
	)
	flush := func(end int) {
		if start < 0 {
			return
		}
		p.emit(b, start, end-start, c0, nc, curSlot, curPlane, cur)
		start = -1
		cur = bbox{}
	}
	for t := 0; t < len(track); t++ {
		box := p.timestepBox(track[t], c0, nc)
		slot := p.aTermSlot(t)
		plane := p.wPlane((box.wmin + box.wmax) / 2)
		if start >= 0 {
			merged := cur.union(box)
			splitByTmax := p.MaxTimestepsPerSubgrid > 0 && t-start >= p.MaxTimestepsPerSubgrid
			if slot != curSlot || plane != curPlane || splitByTmax || !p.fits(merged) {
				flush(t)
			} else {
				cur = merged
				continue
			}
		}
		// Start a new item at t.
		if !p.fits(box) {
			// A single time step that does not fit is either too wide
			// in uv (the channel block smears across more pixels than
			// the subgrid has; drop it) or violates the w constraint
			// of a tiny WStep (emit it alone below).
			if !p.uvFits(box) {
				p.DroppedVisibilities += nc
				continue
			}
		}
		start, cur, curSlot, curPlane = t, box, slot, plane
	}
	flush(len(track))
}

// emit finalizes one work item, positioning the subgrid so the
// bounding box is centered, and clamping to the grid. Items whose
// visibilities cannot be kept inside the grid are dropped.
func (p *Plan) emit(b, t0, nt, c0, nc, slot, plane int, box bbox) {
	n, sg := p.GridSize, p.SubgridSize
	// Optimal anchor: center of the feasible anchor interval
	// [umax+s-sg+1, umin-s] (relative to the grid center), which keeps
	// the box plus support inside the subgrid whenever fits() held.
	x0 := int(math.Round((box.umin+box.umax-float64(sg)+1)/2)) + n/2
	y0 := int(math.Round((box.vmin+box.vmax-float64(sg)+1)/2)) + n/2
	// Clamp into the grid.
	x0 = clamp(x0, 0, n-sg)
	y0 = clamp(y0, 0, n-sg)
	// Verify the visibilities still fall inside the clamped subgrid
	// with the support margin; otherwise they are off the grid.
	s := float64(p.KernelSupport)
	if box.umin+float64(n/2) < float64(x0)+s || box.umax+float64(n/2) > float64(x0+sg-1)-s ||
		box.vmin+float64(n/2) < float64(y0)+s || box.vmax+float64(n/2) > float64(y0+sg-1)-s {
		p.DroppedVisibilities += nt * nc
		return
	}
	item := WorkItem{
		Baseline:  b,
		TimeStart: t0, NrTimesteps: nt,
		Channel0: c0, NrChannels: nc,
		ATermSlot: slot,
		X0:        x0, Y0: y0,
		WPlane: plane,
	}
	if p.WStepLambda > 0 {
		item.WOffset = float64(plane) * p.WStepLambda
	}
	p.Items = append(p.Items, item)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WorkGroups splits the work into groups of at most m items each
// (Fig. 6: the work is split into work groups that kernels process in
// one launch).
func (p *Plan) WorkGroups(m int) [][]WorkItem {
	if m <= 0 {
		m = len(p.Items)
	}
	if m == 0 {
		return nil
	}
	var groups [][]WorkItem
	for i := 0; i < len(p.Items); i += m {
		j := i + m
		if j > len(p.Items) {
			j = len(p.Items)
		}
		groups = append(groups, p.Items[i:j])
	}
	return groups
}
