package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/aterm"
	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
)

// W-stacking (Section III and VI-E): visibilities are partitioned into
// W-layers; each layer is gridded onto its own grid with the layer's w
// offset removed inside the gridder kernel, and the layer images are
// combined after multiplying by the w screen exp(+2*pi*i*wOff*n(l,m)).
// Larger subgrids allow thicker layers ("dramatically limit the number
// of required W-planes", Section IV).

// planForPlane returns a shallow plan containing only the items of one
// W-layer.
func planForPlane(p *plan.Plan, wplane int) *plan.Plan {
	sub := &plan.Plan{Config: p.Config}
	for i := range p.Items {
		if p.Items[i].WPlane == wplane {
			sub.Items = append(sub.Items, p.Items[i])
		}
	}
	return sub
}

// WPlanes returns the sorted list of W-layer indices used by the plan.
func WPlanes(p *plan.Plan) []int {
	seen := make(map[int]bool)
	for i := range p.Items {
		seen[p.Items[i].WPlane] = true
	}
	planes := make([]int, 0, len(seen))
	for w := range seen {
		planes = append(planes, w)
	}
	sort.Ints(planes)
	return planes
}

// GridVisibilitiesWStacked grids each W-layer onto its own grid and
// returns the per-plane grids keyed by plane index, along with the
// accumulated stage times.
func (k *Kernels) GridVisibilitiesWStacked(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider) (map[int]*grid.Grid, StageTimes, error) {
	var times StageTimes
	if p.WStepLambda <= 0 {
		return nil, times, fmt.Errorf("core: plan has no W-layers (WStepLambda=%g)", p.WStepLambda)
	}
	grids := make(map[int]*grid.Grid)
	for _, w := range WPlanes(p) {
		if err := ctx.Err(); err != nil {
			return nil, times, faulttol.Canceled(err)
		}
		start := k.ob.now()
		g := grid.NewGrid(k.params.GridSize)
		t, err := k.GridVisibilities(ctx, planForPlane(p, w), vs, prov, g)
		if err != nil {
			return nil, times, err
		}
		times.Add(t)
		grids[w] = g
		k.ob.planeDone(w, start)
	}
	return grids, times, nil
}

// CombineWStackedImage converts per-plane grids to images, applies
// each layer's w screen and sums into a single image.
func (k *Kernels) CombineWStackedImage(grids map[int]*grid.Grid, wstep float64) *grid.Grid {
	out := grid.NewGrid(k.params.GridSize)
	for w, g := range grids {
		img := GridToImage(g, k.params.workers())
		ApplyWScreen(img, k.params.ImageSize, float64(w)*wstep, +1)
		out.AddGrid(img)
	}
	return out
}

// DegridVisibilitiesWStacked predicts visibilities from a sky image
// using W-stacking: for every W-layer the image is multiplied by the
// conjugate w screen, transformed to a grid, and the layer's work
// items are degridded from it.
func (k *Kernels) DegridVisibilitiesWStacked(ctx context.Context, p *plan.Plan, vs *VisibilitySet, prov aterm.Provider, img *grid.Grid) (StageTimes, error) {
	var times StageTimes
	if p.WStepLambda <= 0 {
		return times, fmt.Errorf("core: plan has no W-layers (WStepLambda=%g)", p.WStepLambda)
	}
	for _, w := range WPlanes(p) {
		if err := ctx.Err(); err != nil {
			return times, faulttol.Canceled(err)
		}
		start := k.ob.now()
		layer := img.Clone()
		ApplyWScreen(layer, k.params.ImageSize, float64(w)*p.WStepLambda, -1)
		g := ImageToGrid(layer, k.params.workers())
		t, err := k.DegridVisibilities(ctx, planForPlane(p, w), vs, prov, g)
		if err != nil {
			return times, err
		}
		times.Add(t)
		k.ob.planeDone(w, start)
	}
	return times, nil
}
