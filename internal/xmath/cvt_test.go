package xmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestCvtF64F32MatchesGo: the vectorized narrowing must be bitwise
// identical to the Go conversion for ordinary values, specials and
// values that narrow to subnormals or infinities, at every length
// around the four-element vector width.
func TestCvtF64F32MatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, // overflow to +-Inf
		math.MaxFloat32 * (1 + 1e-8),      // rounds to +Inf boundary case
		1e-40, -1e-40,                     // float32 subnormals
		5e-324, math.MaxFloat32, -math.MaxFloat32,
		1 + 0x1p-24, 1 + 0x1.8p-24, // round-to-even ties
	}
	for n := 0; n <= 37; n++ {
		src := make([]float64, n)
		for i := range src {
			if i < len(specials) {
				src[i] = specials[i]
			} else {
				src[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(80)-40))
			}
		}
		dst := make([]float32, n)
		CvtF64F32(dst, src)
		for i, v := range src {
			want := float32(v)
			got := dst[i]
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("n=%d: CvtF64F32(%g)[%d] = %b, want %b", n, v, i,
					math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

// TestCvtF64F32LengthMismatch pins the contract violation panic.
func TestCvtF64F32LengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	CvtF64F32(make([]float32, 3), make([]float64, 4))
}
