package repro

import (
	"context"
	"math"
	"testing"

	"repro/internal/aterm"
	"repro/internal/sky"
)

// smallObservation returns a fast configuration for the facade tests.
func smallObservation() ObservationConfig {
	c := DefaultObservation()
	c.NrStations = 8
	c.NrTimesteps = 64
	c.NrChannels = 4
	c.GridSize = 256
	c.SubgridSize = 24
	c.KernelSupport = 6
	c.GridMargin = 32
	c.ATermInterval = 32
	return c
}

func TestObservationConfigValidation(t *testing.T) {
	bad := []ObservationConfig{
		{},
		{NrStations: 1, NrTimesteps: 10, NrChannels: 1, StartFrequency: 1, GridSize: 64},
		{NrStations: 4, NrTimesteps: 0, NrChannels: 1, StartFrequency: 1, GridSize: 64},
		{NrStations: 4, NrTimesteps: 4, NrChannels: 1, StartFrequency: 0, GridSize: 64},
		{NrStations: 4, NrTimesteps: 4, NrChannels: 1, StartFrequency: 1, GridSize: 64, GridMargin: 40},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
	good := DefaultObservation()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPlanProducesConsistentObservation(t *testing.T) {
	obs, err := smallObservation().BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Vis != nil {
		t.Fatal("BuildPlan should not allocate visibilities")
	}
	if len(obs.Stations) != 8 {
		t.Fatalf("stations = %d", len(obs.Stations))
	}
	if len(obs.Plan.Items) == 0 {
		t.Fatal("empty plan")
	}
	if obs.ImageSize <= 0 {
		t.Fatal("image size not derived")
	}
	st := obs.Plan.Stats()
	total := int64(len(obs.Simulator.Baselines())) * 64 * 4
	if st.NrGriddedVisibilities+st.NrDroppedVisibilities != total {
		t.Fatalf("plan covers %d+%d of %d visibilities",
			st.NrGriddedVisibilities, st.NrDroppedVisibilities, total)
	}
}

func TestEndToEndDirtyImageThroughFacade(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	pix := obs.ImageSize / float64(obs.Config.GridSize)
	model := SkyModel{{L: 20 * pix, M: -12 * pix, I: 2}}
	obs.FillFromModel(model)
	img, err := obs.DirtyImage(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	si := StokesI(img)
	// Peak at the source position with the source flux.
	x, y := sky.LMToPixel(model[0].L, model[0].M, obs.Config.GridSize, obs.ImageSize)
	best, bi := math.Inf(-1), 0
	for i, v := range si {
		if v > best {
			best, bi = v, i
		}
	}
	if bi != y*obs.Config.GridSize+x {
		t.Fatalf("peak at index %d, want (%d,%d)", bi, x, y)
	}
	if math.Abs(best-2) > 0.1 {
		t.Fatalf("peak %.3f, want ~2", best)
	}
}

func TestGridDegridRoundtripThroughFacade(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	pix := obs.ImageSize / float64(obs.Config.GridSize)
	model := SkyModel{{L: 10 * pix, M: 5 * pix, I: 1}}
	img := model.Rasterize(obs.Config.GridSize, obs.ImageSize)
	g := ImageToGrid(img, 0)
	if _, err := obs.DegridAll(context.Background(), nil, g); err != nil {
		t.Fatal(err)
	}
	// Degridded visibilities carry the source's flux scale.
	v := obs.Vis.Data[0][0]
	if math.Abs(real(v[0])) < 0.01 {
		t.Fatalf("degridded visibility suspiciously small: %v", v[0])
	}
}

func TestGridAllRequiresVisibilities(t *testing.T) {
	obs, err := smallObservation().BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obs.GridAll(context.Background(), nil); err == nil {
		t.Fatal("expected error without visibilities")
	}
	if _, err := obs.DegridAll(context.Background(), nil, NewGrid(obs.Config.GridSize)); err == nil {
		t.Fatal("expected error without visibilities")
	}
}

func TestATermProviderThroughFacade(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	pix := obs.ImageSize / float64(obs.Config.GridSize)
	obs.FillFromModel(SkyModel{{L: 8 * pix, M: 8 * pix, I: 1}})
	img, err := obs.DirtyImage(context.Background(), aterm.Identity{})
	if err != nil {
		t.Fatal(err)
	}
	img2, err := obs.DirtyImage(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := img.MaxAbsDiff(img2); d > 1e-9 {
		t.Fatalf("identity provider changed the image by %g", d)
	}
}

func TestFrequencies(t *testing.T) {
	c := DefaultObservation()
	f := c.Frequencies()
	if len(f) != c.NrChannels || f[0] != c.StartFrequency {
		t.Fatal("frequency table wrong")
	}
	if f[1]-f[0] != c.ChannelWidth {
		t.Fatal("channel width wrong")
	}
}

func TestPaperObservationPlanOnlySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size plan construction")
	}
	// Scale down time steps to keep the test fast while exercising
	// the full 150-station layout.
	c := PaperObservation()
	c.NrTimesteps = 128
	c.ATermInterval = 64
	obs, err := c.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.Simulator.Baselines()) != 11175 {
		t.Fatalf("baselines = %d, want 11175", len(obs.Simulator.Baselines()))
	}
	st := obs.Plan.Stats()
	if st.NrDroppedVisibilities > st.NrGriddedVisibilities/100 {
		t.Fatalf("dropped %d of %d visibilities", st.NrDroppedVisibilities, st.NrGriddedVisibilities)
	}
}
