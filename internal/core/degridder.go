package core

import (
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// DegridSubgrid executes Algorithm 2 of the paper for one work item:
// given the image-domain subgrid (as produced by the splitter plus the
// inverse subgrid FFT), it applies the taper and the A-terms and then
// predicts the item's visibilities with the conjugate phasor of the
// gridder. Results are stored into vis[t*item.NrChannels + c].
//
// The input subgrid is not modified.
func (k *Kernels) DegridSubgrid(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2) {
	s := k.getScratch()
	k.degridSubgridScratch(item, in, uvw, atermP, atermQ, vis, s)
	k.putScratch(s)
}

// degridSubgridScratch is DegridSubgrid with caller-owned scratch
// buffers (see gridSubgridScratch).
func (k *Kernels) degridSubgridScratch(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2, s *scratch) {
	k.checkItem(item, uvw, vis)
	if k.params.DisableBatching {
		k.degridSubgridReference(item, in, uvw, atermP, atermQ, vis)
		return
	}
	k.degridSubgridBatched(item, in, uvw, atermP, atermQ, vis, s)
}

// correctedPixel applies the forward A-terms (Ap * S * Aq^H) and the
// taper to pixel i of the input subgrid.
func (k *Kernels) correctedPixel(in *grid.Subgrid, i int, atermP, atermQ []xmath.Matrix2) xmath.Matrix2 {
	s := xmath.Matrix2{in.Data[0][i], in.Data[1][i], in.Data[2][i], in.Data[3][i]}
	if atermP != nil {
		s = atermP[i].Mul(s).Mul(atermQ[i].Hermitian())
	}
	tp := complex(k.taper[i], 0)
	return xmath.Matrix2{s[0] * tp, s[1] * tp, s[2] * tp, s[3] * tp}
}

// degridSubgridReference is the direct transcription of Algorithm 2.
func (k *Kernels) degridSubgridReference(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2) {
	sg := k.params.SubgridSize
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	for j := range vis {
		vis[j] = xmath.Matrix2{}
	}
	for t := 0; t < item.NrTimesteps; t++ {
		c3 := uvw[t]
		for c := 0; c < item.NrChannels; c++ {
			scale := k.scale[item.Channel0+c]
			var sum xmath.Matrix2
			for i := 0; i < sg*sg; i++ {
				l, m, n := k.l[i], k.m[i], k.n[i]
				phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
				phaseIndex := c3.U*l + c3.V*m + c3.W*n
				// alpha = -(phase used by the gridder): conjugate.
				sin, cos := k.sincos(phaseIndex*scale - phaseOffset)
				phi := complex(cos, -sin)
				s := k.correctedPixel(in, i, atermP, atermQ)
				sum[0] += phi * s[0]
				sum[1] += phi * s[1]
				sum[2] += phi * s[2]
				sum[3] += phi * s[3]
			}
			vis[t*item.NrChannels+c] = sum
		}
	}
}

// degridSubgridBatched implements the optimized strategy of
// Section V-B-b: the corrected pixels are precomputed once into planar
// real/imaginary arrays ("vectorization over pixels"), the per-pixel
// phase offsets are hoisted, and the sine/cosine evaluations are
// batched per pixel row. On uniformly spaced channels each pixel's
// phasor advances from channel to channel by a fixed per-pixel delta
// phasor (the phase is affine in the channel index), so the per-
// channel sincos sweep over the pixels collapses to two evaluations
// per (pixel, time step) plus one complex rotation per (pixel,
// channel), re-synchronized exactly every xmath.DefaultPhasorResync
// channels.
func (k *Kernels) degridSubgridBatched(item plan.WorkItem, in *grid.Subgrid, uvw []uvwsim.UVW, atermP, atermQ []xmath.Matrix2, vis []xmath.Matrix2, sc *scratch) {
	sg := k.params.SubgridSize
	npix := sg * sg
	nc := item.NrChannels
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset

	// Apply taper and A-terms once; split planes (the degridder's
	// analogue of the gridder's transposition step).
	backing := growF(&sc.planar, 8*npix)
	var pre, pim [4][]float64
	for p := 0; p < 4; p++ {
		pre[p] = backing[(2*p)*npix : (2*p+1)*npix]
		pim[p] = backing[(2*p+1)*npix : (2*p+2)*npix]
	}
	pOff := growF(&sc.pOff, npix)
	for i := 0; i < npix; i++ {
		s := k.correctedPixel(in, i, atermP, atermQ)
		pre[0][i], pim[0][i] = real(s[0]), imag(s[0])
		pre[1][i], pim[1][i] = real(s[1]), imag(s[1])
		pre[2][i], pim[2][i] = real(s[2]), imag(s[2])
		pre[3][i], pim[3][i] = real(s[3]), imag(s[3])
		pOff[i] = twoPi * (uOff*k.l[i] + vOff*k.m[i] + wOff*k.n[i])
	}

	phRe := growF(&sc.phRe, npix)
	phIm := growF(&sc.phIm, npix)
	pIdx := growF(&sc.pIdx, npix)
	useRec := k.useRecurrence(nc)
	var dRe, dIm []float64
	if useRec {
		dRe = growF(&sc.dRe, npix)
		dIm = growF(&sc.dIm, npix)
	}
	scale0 := k.scale[item.Channel0]
	for t := 0; t < item.NrTimesteps; t++ {
		c3 := uvw[t]
		for i := 0; i < npix; i++ {
			pIdx[i] = c3.U*k.l[i] + c3.V*k.m[i] + c3.W*k.n[i]
		}
		if useRec {
			// Seed the per-pixel phasors at channel 0 and the delta
			// phasors exp(i*pIdx*dscale) that advance them per channel.
			for i := 0; i < npix; i++ {
				phIm[i], phRe[i] = k.sincos(pIdx[i]*scale0 - pOff[i])
				dIm[i], dRe[i] = k.sincos(pIdx[i] * k.dscale)
			}
		}
		for c := 0; c < nc; c++ {
			scale := k.scale[item.Channel0+c]
			switch {
			case !useRec:
				for i := 0; i < npix; i++ {
					phIm[i], phRe[i] = k.sincos(pIdx[i]*scale - pOff[i])
				}
			case c == 0:
				// Seeded above.
			case c%xmath.DefaultPhasorResync == 0:
				// Exact re-sync bounds the rotation drift.
				for i := 0; i < npix; i++ {
					phIm[i], phRe[i] = k.sincos(pIdx[i]*scale - pOff[i])
				}
			default:
				for i := 0; i < npix; i++ {
					s, co := phIm[i], phRe[i]
					phIm[i] = s*dRe[i] + co*dIm[i]
					phRe[i] = co*dRe[i] - s*dIm[i]
				}
			}
			var s0r, s0i, s1r, s1i, s2r, s2i, s3r, s3i float64
			for i := 0; i < npix; i++ {
				cr, ci := phRe[i], -phIm[i] // conjugate phasor
				vr, vi := pre[0][i], pim[0][i]
				s0r += vr*cr - vi*ci
				s0i += vr*ci + vi*cr
				vr, vi = pre[1][i], pim[1][i]
				s1r += vr*cr - vi*ci
				s1i += vr*ci + vi*cr
				vr, vi = pre[2][i], pim[2][i]
				s2r += vr*cr - vi*ci
				s2i += vr*ci + vi*cr
				vr, vi = pre[3][i], pim[3][i]
				s3r += vr*cr - vi*ci
				s3i += vr*ci + vi*cr
			}
			vis[t*nc+c] = xmath.Matrix2{
				complex(s0r, s0i), complex(s1r, s1i),
				complex(s2r, s2i), complex(s3r, s3i),
			}
		}
	}
}
