package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/xmath"
)

func TestNewGridZeroed(t *testing.T) {
	g := NewGrid(16)
	if g.Norm2() != 0 {
		t.Fatal("new grid not zeroed")
	}
	for c := 0; c < NrCorrelations; c++ {
		if len(g.Data[c]) != 256 {
			t.Fatalf("plane %d has %d pixels", c, len(g.Data[c]))
		}
	}
}

func TestGridAccessors(t *testing.T) {
	g := NewGrid(8)
	g.Set(2, 3, 4, 1+2i)
	if g.At(2, 3, 4) != 1+2i {
		t.Fatal("Set/At mismatch")
	}
	g.Add(2, 3, 4, 1i)
	if g.At(2, 3, 4) != 1+3i {
		t.Fatal("Add mismatch")
	}
	// Neighbouring pixels must be untouched.
	if g.At(2, 3, 5) != 0 || g.At(2, 4, 4) != 0 || g.At(1, 3, 4) != 0 {
		t.Fatal("Set leaked into neighbours")
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g := NewGrid(4)
	g.Set(0, 1, 1, 5)
	c := g.Clone()
	c.Set(0, 1, 1, 7)
	if g.At(0, 1, 1) != 5 {
		t.Fatal("clone aliases original")
	}
	if c.At(0, 1, 1) != 7 {
		t.Fatal("clone lost write")
	}
}

func TestAddGrid(t *testing.T) {
	a, b := NewGrid(4), NewGrid(4)
	a.Set(1, 0, 0, 2)
	b.Set(1, 0, 0, 3+1i)
	b.Set(3, 3, 3, 1)
	a.AddGrid(b)
	if a.At(1, 0, 0) != 5+1i || a.At(3, 3, 3) != 1 {
		t.Fatal("AddGrid wrong")
	}
}

func TestGridZero(t *testing.T) {
	g := NewGrid(4)
	g.Set(0, 0, 0, 1)
	g.Zero()
	if g.Norm2() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestMaxAbsDiffAndNorm(t *testing.T) {
	a, b := NewGrid(4), NewGrid(4)
	a.Set(0, 1, 2, 3+4i)
	if math.Abs(a.Norm2()-25) > 1e-12 {
		t.Fatalf("Norm2 = %g", a.Norm2())
	}
	if math.Abs(a.MaxAbsDiff(b)-5) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %g", a.MaxAbsDiff(b))
	}
}

func TestSubgridPixelMatrixRoundtrip(t *testing.T) {
	s := NewSubgrid(8, 0, 0)
	r := rand.New(rand.NewSource(2))
	var m xmath.Matrix2
	for i := range m {
		m[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	s.SetPixel(3, 5, m)
	if got := s.Pixel(3, 5); got != m {
		t.Fatalf("pixel roundtrip: got %v want %v", got, m)
	}
	// Correlation planes see the right elements.
	if s.At(0, 3, 5) != m[0] || s.At(3, 3, 5) != m[3] {
		t.Fatal("plane layout mismatch")
	}
}

func TestSubgridInBounds(t *testing.T) {
	cases := []struct {
		x0, y0 int
		want   bool
	}{
		{0, 0, true}, {8, 8, true}, {9, 0, false}, {0, -1, false}, {8, 9, false},
	}
	for _, c := range cases {
		s := NewSubgrid(24, c.x0, c.y0)
		if got := s.InBounds(32); got != c.want {
			t.Fatalf("InBounds(%d,%d) = %v, want %v", c.x0, c.y0, got, c.want)
		}
	}
}

func TestSubgridClone(t *testing.T) {
	s := NewSubgrid(4, 1, 2)
	s.WOffset = 42
	s.Set(2, 1, 1, 9)
	c := s.Clone()
	if c.X0 != 1 || c.Y0 != 2 || c.WOffset != 42 || c.At(2, 1, 1) != 9 {
		t.Fatal("clone metadata/data mismatch")
	}
	c.Set(2, 1, 1, 0)
	if s.At(2, 1, 1) != 9 {
		t.Fatal("clone aliases original")
	}
}

func TestInvalidSizesPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(0) },
		func() { NewSubgrid(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAddGridSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(4).AddGrid(NewGrid(8))
}
