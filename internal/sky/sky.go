// Package sky provides synthetic sky models and the direct (slow)
// evaluation of the measurement equation. The direct predictor is the
// ground truth the IDG pipeline is validated against: it evaluates
// Eq. (1) of the paper exactly for point-source skies,
//
//	V_pq = sum_s A_p B_s A_q^H exp(-2*pi*i*(u*l_s + v*m_s + w*n_s)),
//
// with n = 1 - sqrt(1 - l^2 - m^2) and uvw in wavelengths.
package sky

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/xmath"
)

// PointSource is a point source at direction cosines (L, M) relative
// to the phase center, with a Stokes flux description.
type PointSource struct {
	L, M float64 // direction cosines
	I    float64 // total intensity, Jy
	Q    float64 // linear polarization
	U    float64
	V    float64 // circular polarization
}

// Brightness returns the 2x2 coherency (brightness) matrix of the
// source for linear feeds:
//
//	| I+Q   U+iV |
//	| U-iV  I-Q  |
func (s PointSource) Brightness() xmath.Matrix2 {
	return xmath.Matrix2{
		complex(s.I+s.Q, 0), complex(s.U, s.V),
		complex(s.U, -s.V), complex(s.I-s.Q, 0),
	}
}

// N returns the paper's n coordinate, 1 - sqrt(1 - l^2 - m^2). It
// panics if (l, m) lies outside the unit circle (not a physical
// direction).
func N(l, m float64) float64 {
	r2 := l*l + m*m
	if r2 > 1 {
		panic(fmt.Sprintf("sky: direction (%g, %g) outside the unit sphere", l, m))
	}
	// Written as r2/(1+sqrt(1-r2)) for accuracy at small offsets.
	return r2 / (1 + math.Sqrt(1-r2))
}

// Model is a collection of point sources.
type Model []PointSource

// TotalFlux returns the summed Stokes I flux.
func (m Model) TotalFlux() float64 {
	var f float64
	for _, s := range m {
		f += s.I
	}
	return f
}

// Predict evaluates the measurement equation without direction
// dependent effects for a single uvw coordinate in wavelengths.
func (m Model) Predict(u, v, w float64) xmath.Matrix2 {
	var out xmath.Matrix2
	for _, s := range m {
		phase := -2 * math.Pi * (u*s.L + v*s.M + w*N(s.L, s.M))
		sin, cos := math.Sincos(phase)
		out = out.Add(s.Brightness().Scale(complex(cos, sin)))
	}
	return out
}

// PredictWithATerms evaluates the measurement equation including the
// direction-dependent station responses ap and aq, which are sampled
// at each source direction via the provided lookup.
func (m Model) PredictWithATerms(u, v, w float64, aterm func(l, mm float64) (ap, aq xmath.Matrix2)) xmath.Matrix2 {
	var out xmath.Matrix2
	for _, s := range m {
		ap, aq := aterm(s.L, s.M)
		phase := -2 * math.Pi * (u*s.L + v*s.M + w*N(s.L, s.M))
		sin, cos := math.Sincos(phase)
		corrected := s.Brightness().SandwichH(ap, aq)
		out = out.Add(corrected.Scale(complex(cos, sin)))
	}
	return out
}

// RandomField places n unpolarized sources of unit-order flux inside
// a disc of radius maxRadius (direction cosines), deterministically
// from the seed. It is used by the benchmark workload generators.
func RandomField(n int, maxRadius float64, seed int64) Model {
	// Small linear congruential generator keeps the package free of
	// math/rand state while staying deterministic.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	m := make(Model, n)
	for i := range m {
		r := maxRadius * math.Sqrt(next())
		phi := 2 * math.Pi * next()
		m[i] = PointSource{
			L: r * math.Cos(phi),
			M: r * math.Sin(phi),
			I: 0.1 + next(),
		}
	}
	return m
}

// Rasterize paints the model onto an n x n image covering imageSize
// direction cosines, nearest-pixel, returning the four correlation
// planes as a grid.Grid in image space. Pixel (x, y) corresponds to
//
//	l = (x - n/2) * imageSize / n,  m = (y - n/2) * imageSize / n.
func (m Model) Rasterize(n int, imageSize float64) *grid.Grid {
	img := grid.NewGrid(n)
	for _, s := range m {
		x := int(math.Round(s.L*float64(n)/imageSize)) + n/2
		y := int(math.Round(s.M*float64(n)/imageSize)) + n/2
		if x < 0 || x >= n || y < 0 || y >= n {
			continue
		}
		b := s.Brightness()
		img.Add(0, y, x, b[0])
		img.Add(1, y, x, b[1])
		img.Add(2, y, x, b[2])
		img.Add(3, y, x, b[3])
	}
	return img
}

// PixelToLM converts image pixel indices to direction cosines for an
// n-pixel image covering imageSize.
func PixelToLM(x, y, n int, imageSize float64) (l, m float64) {
	scale := imageSize / float64(n)
	return float64(x-n/2) * scale, float64(y-n/2) * scale
}

// LMToPixel is the inverse of PixelToLM, rounding to the nearest pixel.
func LMToPixel(l, m float64, n int, imageSize float64) (x, y int) {
	scale := float64(n) / imageSize
	return int(math.Round(l*scale)) + n/2, int(math.Round(m*scale)) + n/2
}

// StokesI extracts the Stokes I image, (XX + YY)/2, from a correlation
// grid in image space.
func StokesI(img *grid.Grid) []float64 {
	out := make([]float64, img.N*img.N)
	for i := range out {
		out[i] = 0.5 * (real(img.Data[0][i]) + real(img.Data[3][i]))
	}
	return out
}
