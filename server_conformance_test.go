package repro

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// Server <-> library conformance (ISSUE 9 satellite 1), extending the
// golden-grid pattern across the network boundary: an observation
// streamed over the wire protocol into a live server must produce the
// exact same grid SHA-256 as GridVisibilitiesStreamed run locally on
// the same data. The wire carries float32, so the local reference
// grids the float32-quantized values — the identical bytes the server
// decodes — making the comparison bit-for-bit, not approximate.

// conformanceConfig is small enough to grid twice in a test but big
// enough to cover many subgrids per baseline.
func conformanceConfig() ObservationConfig {
	return ObservationConfig{
		NrStations:     6,
		NrTimesteps:    16,
		NrChannels:     2,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       128,
		SubgridSize:    16,
		KernelSupport:  4,
		GridMargin:     8,
		ATermInterval:  8,
		// Workers 1 and a single shard pin the accumulation order, so
		// the local and remote passes are bit-identical by construction.
		Workers:           1,
		GridShards:        1,
		MaxInflightChunks: 2,
	}
}

// conformanceWire builds the observation, fills it from a fixed sky
// model, and returns both the float32 wire samples and the
// observation with its visibilities quantized through those exact
// float32 values.
func conformanceWire(t *testing.T) (*Observation, [][]float32) {
	t.Helper()
	cfg := conformanceConfig()
	o, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	pix := o.ImageSize / float64(cfg.GridSize)
	model := SkyModel{
		{L: 14 * pix, M: -9 * pix, I: 1},
		{L: -22 * pix, M: 17 * pix, I: 0.5},
	}
	if err := o.FillFromModel(model); err != nil {
		t.Fatal(err)
	}
	wire := make([][]float32, len(o.Vis.Data))
	for b, data := range o.Vis.Data {
		buf := make([]float32, len(data)*8)
		for i, m := range data {
			for p := 0; p < 4; p++ {
				buf[8*i+2*p] = float32(real(m[p]))
				buf[8*i+2*p+1] = float32(imag(m[p]))
			}
			// Quantize the local copy through the wire's float32, so
			// the reference pass grids the bytes the server will see.
			var q Matrix2
			for p := 0; p < 4; p++ {
				q[p] = complex(float64(buf[8*i+2*p]), float64(buf[8*i+2*p+1]))
			}
			data[i] = q
		}
		wire[b] = buf
	}
	return o, wire
}

// sessionConfigFor mirrors the observation config onto the wire form.
func sessionConfigFor(cfg ObservationConfig) GridSessionConfig {
	return GridSessionConfig{
		NrStations:        cfg.NrStations,
		NrTimesteps:       cfg.NrTimesteps,
		NrChannels:        cfg.NrChannels,
		StartFrequency:    cfg.StartFrequency,
		ChannelWidth:      cfg.ChannelWidth,
		GridSize:          cfg.GridSize,
		SubgridSize:       cfg.SubgridSize,
		KernelSupport:     cfg.KernelSupport,
		GridMargin:        cfg.GridMargin,
		ATermInterval:     cfg.ATermInterval,
		Workers:           cfg.Workers,
		GridShards:        cfg.GridShards,
		MaxInflightChunks: cfg.MaxInflightChunks,
	}
}

// streamWire replays the wire samples into one server session and
// returns its finalize result.
func streamWire(t *testing.T, c *GridServerClient, scfg GridSessionConfig, wire [][]float32) GridSessionResult {
	t.Helper()
	info, err := c.CreateSession(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if info.NrBaselines != len(wire) {
		t.Fatalf("server expects %d baselines, the observation has %d", info.NrBaselines, len(wire))
	}
	// Stream in smallish frames so the session crosses many frame
	// boundaries, including a partial final frame per baseline.
	const frameVis = 7
	err = c.StreamVis(info.SessionID, func(w *server.FrameWriter) error {
		for b, buf := range wire {
			n := len(buf) / 8
			for off := 0; off < n; off += frameVis {
				end := off + frameVis
				if end > n {
					end = n
				}
				if err := w.WriteVis(b, off, buf[off*8:end*8]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Finalize(info.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer equality: hashing the fetched grid bytes reproduces the
	// result hash, so a client can verify its copy end to end.
	sha, n, err := c.FetchGridSHA256(info.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if sha != res.SHA256 {
		t.Fatalf("grid transfer hash %s != result hash %s (%d bytes)", sha, res.SHA256, n)
	}
	wantBytes := int64(res.GridSize) * int64(res.GridSize) * 4 * 16
	if n != wantBytes {
		t.Fatalf("grid transfer carried %d bytes, want %d", n, wantBytes)
	}
	if err := c.Delete(info.SessionID); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServerConformance is the tentpole acceptance check: the
// wire-streamed session grid is bit-identical (same SHA-256) to the
// local streamed gridding pass on the same float32-quantized data —
// and a second session of the same config reproduces it through the
// plan cache.
func TestServerConformance(t *testing.T) {
	o, wire := conformanceWire(t)
	g, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := FingerprintGrid(g)
	if want.Nonzero == 0 {
		t.Fatal("local reference gridded an all-zero grid")
	}

	resetServerPlanCache()
	srv, err := NewGridServer(GridServerConfig{}, &ServerBackend{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := &GridServerClient{Base: hs.URL, Tenant: "conformance", HTTP: hs.Client()}
	scfg := sessionConfigFor(conformanceConfig())

	res := streamWire(t, c, scfg, wire)
	if res.SHA256 != want.SHA256 {
		t.Fatalf("wire-streamed session grid %s != local streamed grid %s\nserver: %+v\nlocal:  %+v",
			res.SHA256, want.SHA256, res, want)
	}
	if res.GridSize != want.GridSize || res.Nonzero != want.Nonzero ||
		res.SumAbs != want.SumAbs || res.PeakAbs != want.PeakAbs {
		t.Fatalf("fingerprint diagnostics diverge: server %+v, local %+v", res, want)
	}

	// A second session of the same configuration rides the plan cache
	// and must land on the identical hash.
	res2 := streamWire(t, c, scfg, wire)
	if res2.SHA256 != want.SHA256 {
		t.Fatalf("plan-cached session grid %s != local grid %s", res2.SHA256, want.SHA256)
	}
	hits, misses := ServerPlanCacheStats()
	if misses != 1 || hits < 1 {
		t.Fatalf("plan cache saw %d hits / %d misses across two same-config sessions, want >=1 / 1", hits, misses)
	}
}

// TestServerConformanceCacheEquivalence: the plan cache must be
// invisible to the numbers — a session built through the cache and
// one built from scratch (DisablePlanCache) hash identically.
func TestServerConformanceCacheEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("second server pass in -short mode")
	}
	_, wire := conformanceWire(t)
	scfg := sessionConfigFor(conformanceConfig())

	hash := func(back *ServerBackend) string {
		srv, err := NewGridServer(GridServerConfig{}, back)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		c := &GridServerClient{Base: hs.URL, HTTP: hs.Client()}
		return streamWire(t, c, scfg, wire).SHA256
	}
	resetServerPlanCache()
	cached := hash(&ServerBackend{})
	scratch := hash(&ServerBackend{DisablePlanCache: true})
	if cached != scratch {
		t.Fatalf("cached plan grid %s != scratch plan grid %s", cached, scratch)
	}
}

// TestServerConfigErrors extends the facade's typed-config pattern to
// the server knobs (ISSUE 9 satellite 4): every rejection is an
// ErrInvalidServerConfig naming the offending field.
func TestServerConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  GridServerConfig
	}{
		{"bad addr", GridServerConfig{Addr: "no-port"}},
		{"negative sessions", GridServerConfig{MaxSessions: -1}},
		{"negative tenant quota", GridServerConfig{MaxSessionsPerTenant: -1}},
		{"negative tenant budget", GridServerConfig{MaxInflightPerTenant: -1}},
		{"default over budget", GridServerConfig{SessionInflightDefault: 9, MaxInflightPerTenant: 3}},
		{"negative idle timeout", GridServerConfig{IdleTimeout: -1}},
		{"negative drain timeout", GridServerConfig{DrainTimeout: -1}},
		{"tiny frame cap", GridServerConfig{MaxFrameBytes: 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewGridServer(tc.cfg, nil)
			if err == nil {
				t.Fatal("bad server config accepted")
			}
			if !errors.Is(err, ErrInvalidServerConfig) {
				t.Errorf("error %v does not match ErrInvalidServerConfig", err)
			}
			var ce *server.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not a *ConfigError", err)
			}
			if ce.Field == "" {
				t.Error("rejection names no field")
			}
		})
	}
}
