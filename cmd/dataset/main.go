// Command dataset generates, inspects and verifies observation files
// in the repository's binary format (internal/dataio) — the stand-in
// for the benchmark input data the paper intends to publish.
//
//	dataset -generate obs.idg -stations 20 -steps 128 -channels 8
//	dataset -info obs.idg
//	dataset -verify obs.idg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataio"
	"repro/internal/noise"

	"repro"
)

func main() {
	var (
		generate = flag.String("generate", "", "write a synthetic observation to this path")
		info     = flag.String("info", "", "print the header of this file")
		verify   = flag.String("verify", "", "fully read this file, checking the checksum")

		stations = flag.Int("stations", 20, "stations (generate)")
		steps    = flag.Int("steps", 128, "time steps (generate)")
		channels = flag.Int("channels", 8, "channels (generate)")
		sources  = flag.Int("sources", 2, "sky sources (generate)")
		sigma    = flag.Float64("noise", 0.0, "visibility noise sigma (generate)")
		seed     = flag.Int64("seed", 1, "noise seed (generate)")
	)
	flag.Parse()

	switch {
	case *generate != "":
		runGenerate(*generate, *stations, *steps, *channels, *sources, *sigma, *seed)
	case *info != "":
		runInfo(*info)
	case *verify != "":
		runVerify(*verify)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runGenerate(path string, stations, steps, channels, sources int, sigma float64, seed int64) {
	cfg := repro.DefaultObservation()
	cfg.NrStations = stations
	cfg.NrTimesteps = steps
	cfg.NrChannels = channels
	obs, err := cfg.Build()
	if err != nil {
		fail(err)
	}
	model := repro.StandardSkyModel(obs, sources)
	if err := obs.FillFromModel(model); err != nil {
		fail(err)
	}
	if sigma > 0 {
		if err := noise.AddGaussian(obs.Vis, sigma, seed); err != nil {
			fail(err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := dataio.Write(f, obs.Vis, cfg.Frequencies()); err != nil {
		fail(err)
	}
	st, err := f.Stat()
	if err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %d baselines x %d steps x %d channels, %d sources, noise sigma %g (%.1f MB)\n",
		path, len(obs.Vis.Baselines), steps, channels, len(model), sigma,
		float64(st.Size())/1e6)
}

func runInfo(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	h, err := dataio.ReadHeader(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s:\n  baselines:  %d\n  time steps: %d\n  channels:   %d\n  band:       %.3f - %.3f MHz\n  visibilities: %d\n",
		path, h.NrBaselines, h.NrTimesteps, h.NrChannels,
		h.Frequencies[0]/1e6, h.Frequencies[len(h.Frequencies)-1]/1e6,
		int64(h.NrBaselines)*int64(h.NrTimesteps)*int64(h.NrChannels))
}

func runVerify(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	vs, freqs, err := dataio.Read(f)
	if err != nil {
		fail(err)
	}
	st := noise.Measure(vs)
	fmt.Printf("%s: OK (%d visibilities, %d channels, XX mean %.3g, std %.3g)\n",
		path, vs.NrVisibilities(), len(freqs), st.Mean, st.StdDev)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dataset:", err)
	os.Exit(1)
}
