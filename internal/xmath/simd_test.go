package xmath

import "testing"

func TestParseSIMDTier(t *testing.T) {
	cases := []struct {
		in   string
		want SIMDTier
		ok   bool
	}{
		{"scalar", SIMDScalar, true},
		{"off", SIMDScalar, true},
		{"none", SIMDScalar, true},
		{"avx2", SIMDAVX2, true},
		{"AVX2", SIMDAVX2, true},
		{" avx512 ", SIMDAVX512, true},
		{"", SIMDScalar, false},
		{"sse9", SIMDScalar, false},
	}
	for _, c := range cases {
		got, err := ParseSIMDTier(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseSIMDTier(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestSIMDTierFromEnv(t *testing.T) {
	cases := []struct {
		detected SIMDTier
		env      string
		want     SIMDTier
	}{
		{SIMDAVX512, "", SIMDAVX512},           // no override
		{SIMDAVX512, "avx2", SIMDAVX2},         // lower
		{SIMDAVX512, "scalar", SIMDScalar},     // lower to portable
		{SIMDAVX2, "avx512", SIMDAVX2},         // cannot raise above detection
		{SIMDScalar, "avx2", SIMDScalar},       // likewise
		{SIMDAVX512, "not-a-tier", SIMDAVX512}, // unparseable ignored
		{SIMDAVX2, "off", SIMDScalar},          // alias
	}
	for _, c := range cases {
		if got := simdTierFromEnv(c.detected, c.env); got != c.want {
			t.Errorf("simdTierFromEnv(%v, %q) = %v, want %v", c.detected, c.env, got, c.want)
		}
	}
}

func TestSIMDTierOrderingAndStrings(t *testing.T) {
	if !(SIMDScalar < SIMDAVX2 && SIMDAVX2 < SIMDAVX512) {
		t.Fatal("tier ordering broken")
	}
	for tier, want := range map[SIMDTier]string{
		SIMDScalar: "scalar", SIMDAVX2: "avx2", SIMDAVX512: "avx512",
	} {
		if tier.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(tier), tier.String(), want)
		}
		rt, err := ParseSIMDTier(tier.String())
		if err != nil || rt != tier {
			t.Errorf("ParseSIMDTier(%v.String()) = %v, %v", tier, rt, err)
		}
	}
}

func TestActiveSIMDWithinDetected(t *testing.T) {
	if a, d := ActiveSIMD(), DetectedSIMD(); a > d {
		t.Fatalf("active tier %v exceeds detected %v", a, d)
	}
	if DetectedSIMD() >= SIMDAVX2 && !HasAVX2FMA() {
		t.Fatal("detected AVX2 tier without HasAVX2FMA")
	}
}
