#!/bin/sh
# Kernel/pipeline benchmark runner: measures the gridder and degridder
# kernels and the full warm pipeline passes with allocation tracking,
# and writes the machine-readable BENCH_kernels.json (ns/op, allocs/op,
# visibilities/sec; see cmd/benchjson) for diffing against
# BENCH_kernels_seed.json.
#
# Usage:
#   scripts/bench.sh          # full run, rewrites BENCH_kernels.json
#   scripts/bench.sh -short   # 1-iteration smoke run (CI); result is
#                             # parsed and validated but not committed
set -eu
cd "$(dirname "$0")/.."

bench='BenchmarkGridderKernel$|BenchmarkDegridderKernel$|BenchmarkFullGriddingPass$|BenchmarkFullDegriddingPass$'
out=BENCH_kernels.json
benchtime=''
if [ "${1:-}" = "-short" ]; then
    benchtime='-benchtime=1x'
    out="$(mktemp)"
    trap 'rm -f "$out"' EXIT
fi

raw="$(go test -run '^$' -bench "$bench" -benchmem $benchtime .)"
printf '%s\n' "$raw"
printf '%s\n' "$raw" | go run ./cmd/benchjson > "$out"
echo "bench.sh: wrote $out" >&2
