package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestTripleBufferSteadyState(t *testing.T) {
	// With many groups, the makespan approaches
	// startup + n * max(stage): the classic pipeline law Fig. 7
	// illustrates.
	const n = 100
	res := SimulateTripleBuffer(n, 3, 1, 5, 2)
	want := 1 + 2 + float64(n)*5 // htod fill + dtoh drain + n kernels
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %.2f, want %.2f", res.Makespan, want)
	}
	if res.KernelBusy < 0.98 {
		t.Fatalf("kernel busy %.3f, triple buffering should keep the GPU busy", res.KernelBusy)
	}
}

func TestTripleBufferBeatsSerial(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(uint64(r)>>11) / float64(1<<53) * 4
		}
		htod, kernel, dtoh := next(), next(), next()
		n := 1 + int(next()*10)
		over := SimulateTripleBuffer(n, 3, htod, kernel, dtoh)
		serial := SerialTime(n, htod, kernel, dtoh)
		// Overlapped execution never slower than serial, and never
		// faster than the busiest single resource.
		lower := float64(n) * math.Max(htod, math.Max(kernel, dtoh))
		return over.Makespan <= serial+1e-9 && over.Makespan >= lower-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBufferIsSerial(t *testing.T) {
	// With one buffer set, nothing overlaps across groups except the
	// natural stage chaining; for equal stages this means the full
	// serial time.
	res := SimulateTripleBuffer(10, 1, 2, 2, 2)
	if math.Abs(res.Makespan-SerialTime(10, 2, 2, 2)) > 1e-9 {
		t.Fatalf("single-buffer makespan %.2f, want serial %.2f", res.Makespan, SerialTime(10, 2, 2, 2))
	}
}

func TestDoubleVsTripleBuffering(t *testing.T) {
	// Triple buffering is at least as good as double buffering; with
	// transfer-heavy stages it is strictly better.
	htod, kernel, dtoh := 3.0, 4.0, 3.0
	double := SimulateTripleBuffer(50, 2, htod, kernel, dtoh)
	triple := SimulateTripleBuffer(50, 3, htod, kernel, dtoh)
	if triple.Makespan > double.Makespan+1e-9 {
		t.Fatal("triple buffering slower than double")
	}
	if triple.Makespan >= double.Makespan {
		t.Fatalf("expected strict improvement: triple %.1f vs double %.1f", triple.Makespan, double.Makespan)
	}
}

func TestEventOrderingInvariants(t *testing.T) {
	res := SimulateTripleBuffer(20, 3, 1, 2, 1.5)
	// Per group: HtoD before kernel before DtoH.
	starts := map[int]map[string]float64{}
	ends := map[int]map[string]float64{}
	for _, e := range res.Events {
		if starts[e.Group] == nil {
			starts[e.Group] = map[string]float64{}
			ends[e.Group] = map[string]float64{}
		}
		starts[e.Group][e.Stage] = e.Start
		ends[e.Group][e.Stage] = e.End
		if e.End < e.Start {
			t.Fatal("event ends before it starts")
		}
	}
	for g, s := range starts {
		if s["kernel"] < ends[g]["HtoD"]-1e-12 {
			t.Fatalf("group %d kernel starts before its input arrived", g)
		}
		if s["DtoH"] < ends[g]["kernel"]-1e-12 {
			t.Fatalf("group %d DtoH starts before its kernel finished", g)
		}
	}
}

func TestPipelinePanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { SimulateTripleBuffer(0, 3, 1, 1, 1) },
		func() { SimulateTripleBuffer(1, 0, 1, 1, 1) },
		func() { SimulateTripleBuffer(1, 3, -1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestFig16Shape reproduces the qualitative claims of Section VI-E:
// IDG with 24-pixel subgrids outperforms WPG significantly for small
// W-kernels, while large W-kernels are comparable to IDG at a
// matching subgrid size.
func TestFig16Shape(t *testing.T) {
	d := PaperDataset()
	p := pascal(t)
	rows := Fig16(p, d, []int{8, 16, 24, 32, 48, 64}, []int{24, 32, 48})
	byNW := map[int]Fig16Row{}
	for _, r := range rows {
		byNW[r.NW] = r
	}
	// WPG throughput decreases with kernel size.
	prev := math.Inf(1)
	for _, nw := range []int{8, 16, 24, 32, 48, 64} {
		if w := byNW[nw].WPG; w >= prev {
			t.Fatalf("WPG throughput not decreasing at NW=%d", nw)
		} else {
			prev = w
		}
	}
	// "In practice, N_W <= 24 is more common": there IDG(24) wins
	// clearly (>= 2x).
	for _, nw := range []int{8, 16, 24} {
		r := byNW[nw]
		if r.IDG[24] < 2*r.WPG {
			t.Fatalf("IDG(24)=%.0f should be >=2x WPG(NW=%d)=%.0f", r.IDG[24], nw, r.WPG)
		}
	}
	// Large kernels: WPG(64) and IDG at a covering subgrid (48-64)
	// are comparable (within ~4x either way).
	r := byNW[64]
	ratio := r.IDG[48] / r.WPG
	if ratio < 0.25 || ratio > 5 {
		t.Fatalf("large-kernel comparison not comparable: IDG(48)=%.0f vs WPG(64)=%.0f", r.IDG[48], r.WPG)
	}
	// The improved WPG [21] narrows but does not erase the gap at
	// small kernels.
	r8 := byNW[8]
	if r8.WPGImproved <= r8.WPG {
		t.Fatal("improved WPG should be faster than baseline WPG")
	}
	if r8.IDG[24] < r8.WPGImproved {
		t.Fatal("IDG(24) should still beat improved WPG at NW=8")
	}
}

func TestWPGModelValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NW=0")
		}
	}()
	PaperWPG().ThroughputMVisPerSec(pascal(t), 0)
}

func pascal(t *testing.T) *arch.Platform {
	t.Helper()
	return arch.Pascal()
}
