// Bulk float64 -> float32 narrowing (CvtF64F32). VCVTPD2PS rounds to
// nearest even, exactly like the Go scalar conversion, so the
// vectorized loop is bitwise equal to the fallback.

#include "textflag.h"

// func cvtQuadsPDPS(dst *float32, src *float64, nq int)
TEXT ·cvtQuadsPDPS(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ nq+16(FP), CX

quadloop:
	VMOVUPD    (SI), Y0
	VCVTPD2PSY Y0, X0
	VMOVUPS    X0, (DI)
	ADDQ       $32, SI
	ADDQ       $16, DI
	DECQ       CX
	JNZ        quadloop

	VZEROUPPER
	RET
