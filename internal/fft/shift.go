package fft

// The IDG subgrids are images whose center pixel (N/2, N/2) is the
// phase center, while the DFT convention puts the zero frequency at
// index 0. The centered transforms below absorb the required
// fftshift/ifftshift pairs so that both the image-domain and the
// uv-domain arrays keep "DC in the middle", which is the layout the
// gridder, adder and splitter use.

// Shift performs an fftshift of x in place: it rotates the data right
// by floor(n/2) (equivalently left by ceil(n/2)), moving the
// zero-frequency element to index n/2.
func Shift(x []complex128) {
	rotate(x, (len(x)+1)/2)
}

// InverseShift performs an ifftshift in place: it rotates the data left
// by floor(n/2), undoing Shift for any length.
func InverseShift(x []complex128) {
	rotate(x, len(x)/2)
}

// rotate rotates x left by k positions using the three-reversal trick.
func rotate(x []complex128, k int) {
	n := len(x)
	if n == 0 {
		return
	}
	k %= n
	if k == 0 {
		return
	}
	reverse(x[:k])
	reverse(x[k:])
	reverse(x)
}

func reverse(x []complex128) {
	for i, j := 0, len(x)-1; i < j; i, j = i+1, j-1 {
		x[i], x[j] = x[j], x[i]
	}
}

// Shift2D applies fftshift along both axes of a rows x cols row-major
// array.
func Shift2D(x []complex128, rows, cols int) {
	shift2D(x, rows, cols, false)
}

// InverseShift2D applies ifftshift along both axes.
func InverseShift2D(x []complex128, rows, cols int) {
	shift2D(x, rows, cols, true)
}

func shift2D(x []complex128, rows, cols int, inverse bool) {
	if len(x) != rows*cols {
		panic("fft: shift2D size mismatch")
	}
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		if inverse {
			InverseShift(row)
		} else {
			Shift(row)
		}
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = x[r*cols+c]
		}
		if inverse {
			InverseShift(col)
		} else {
			Shift(col)
		}
		for r := 0; r < rows; r++ {
			x[r*cols+c] = col[r]
		}
	}
}

// ForwardCentered computes the centered forward 2-D transform:
// fftshift(FFT(ifftshift(x))). Both input and output have DC at
// (rows/2, cols/2). This is the image-domain -> uv-domain direction
// used after the gridder kernel.
//
// For even sizes the shifts are fused into the transform: for even n,
// fftshift∘F∘ifftshift = sigma·D·F·D with D = diag((-1)^j) and
// sigma = (-1)^(n/2), so in 2-D the whole centering collapses to a
// (-1)^(r+c) input checkerboard (folded into the row pass and the
// column gather), a (-1)^(k+l)·sigma output checkerboard (folded into
// the column scatter), and no rotate passes at all. Odd sizes keep the
// explicit three-reversal rotates.
func (p *Plan2D) ForwardCentered(x []complex128) {
	p.checkLen(x)
	if p.fusedOK {
		p.runSerial(x, false, true, p.sigma)
		return
	}
	InverseShift2D(x, p.rows, p.cols)
	p.runSerial(x, false, false, 1)
	Shift2D(x, p.rows, p.cols)
}

// InverseCentered computes fftshift(IFFT(ifftshift(x))), the
// uv-domain -> image-domain direction used before the degridder kernel
// and for turning the final grid into a sky image.
func (p *Plan2D) InverseCentered(x []complex128) {
	p.checkLen(x)
	scale := complex(1/float64(p.rows*p.cols), 0)
	if p.fusedOK {
		p.runSerial(x, true, true, p.sigma*scale)
		return
	}
	InverseShift2D(x, p.rows, p.cols)
	p.runSerial(x, true, false, scale)
	Shift2D(x, p.rows, p.cols)
}

// ForwardCenteredParallel is ForwardCentered with a parallel core
// transform.
func (p *Plan2D) ForwardCenteredParallel(x []complex128, workers int) {
	p.checkLen(x)
	if p.fusedOK {
		p.runParallel(x, false, true, p.sigma, workers)
		return
	}
	InverseShift2D(x, p.rows, p.cols)
	p.runParallel(x, false, false, 1, workers)
	Shift2D(x, p.rows, p.cols)
}

// InverseCenteredParallel is the parallel variant of InverseCentered.
func (p *Plan2D) InverseCenteredParallel(x []complex128, workers int) {
	p.checkLen(x)
	scale := complex(1/float64(p.rows*p.cols), 0)
	if p.fusedOK {
		p.runParallel(x, true, true, p.sigma*scale, workers)
		return
	}
	InverseShift2D(x, p.rows, p.cols)
	p.runParallel(x, true, false, scale, workers)
	Shift2D(x, p.rows, p.cols)
}

// The Legacy variants below reproduce the seed implementation — rotate
// shifts around a per-column gather/scatter radix-2 transform — and
// back the DisableFastFFT ablation knob plus the new-vs-old test
// comparisons.

// transformLegacy is the seed 2-D transform: per-row transforms in
// place, per-column transforms through a freshly allocated scratch,
// legacy radix-2 for power-of-two lengths.
func (p *Plan2D) transformLegacy(x []complex128, inverse bool) {
	p.checkLen(x)
	for r := 0; r < p.rows; r++ {
		row := x[r*p.cols : (r+1)*p.cols]
		if inverse {
			p.colPlan.inverseLegacy(row)
		} else {
			p.colPlan.forwardLegacy(row)
		}
	}
	col := make([]complex128, p.rows)
	for c := 0; c < p.cols; c++ {
		for r := 0; r < p.rows; r++ {
			col[r] = x[r*p.cols+c]
		}
		if inverse {
			p.rowPlan.inverseLegacy(col)
		} else {
			p.rowPlan.forwardLegacy(col)
		}
		for r := 0; r < p.rows; r++ {
			x[r*p.cols+c] = col[r]
		}
	}
}

// ForwardCenteredLegacy is the seed centered forward transform.
func (p *Plan2D) ForwardCenteredLegacy(x []complex128) {
	InverseShift2D(x, p.rows, p.cols)
	p.transformLegacy(x, false)
	Shift2D(x, p.rows, p.cols)
}

// InverseCenteredLegacy is the seed centered inverse transform.
func (p *Plan2D) InverseCenteredLegacy(x []complex128) {
	InverseShift2D(x, p.rows, p.cols)
	p.transformLegacy(x, true)
	Shift2D(x, p.rows, p.cols)
}
