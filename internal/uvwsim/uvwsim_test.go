package uvwsim

import (
	"math"
	"testing"

	"repro/internal/layout"
)

func smallSim() *Simulator {
	cfg := layout.SKA1LowConfig()
	cfg.NrStations = 20
	return New(layout.Generate(cfg), DefaultOptions())
}

func TestBaselineCount(t *testing.T) {
	s := smallSim()
	if got, want := len(s.Baselines()), layout.NrBaselines(20); got != want {
		t.Fatalf("baselines = %d, want %d", got, want)
	}
	// Every pair appears exactly once with P < Q.
	seen := make(map[Baseline]bool)
	for _, b := range s.Baselines() {
		if b.P >= b.Q {
			t.Fatalf("baseline not ordered: %v", b)
		}
		if seen[b] {
			t.Fatalf("duplicate baseline %v", b)
		}
		seen[b] = true
	}
}

func TestBaselineLengthInvariantUnderRotation(t *testing.T) {
	// Earth rotation rotates the baseline vector; |(u,v,w)| must stay
	// equal to the physical baseline length at all times.
	s := smallSim()
	for _, b := range s.Baselines()[:30] {
		l0 := length(s.UVW(b.P, b.Q, 0))
		for _, tt := range []int{1, 100, 5000} {
			l := length(s.UVW(b.P, b.Q, tt))
			if math.Abs(l-l0) > 1e-6*l0 {
				t.Fatalf("baseline %v length changed: %.6f -> %.6f", b, l0, l)
			}
		}
	}
}

func TestConjugateBaseline(t *testing.T) {
	// Swapping the stations negates the uvw coordinate.
	s := smallSim()
	b := s.Baselines()[7]
	fwd := s.UVW(b.P, b.Q, 13)
	rev := s.UVW(b.Q, b.P, 13)
	if math.Abs(fwd.U+rev.U) > 1e-9 || math.Abs(fwd.V+rev.V) > 1e-9 || math.Abs(fwd.W+rev.W) > 1e-9 {
		t.Fatalf("uvw(p,q) != -uvw(q,p): %v vs %v", fwd, rev)
	}
}

func TestUVWTrackIsSmooth(t *testing.T) {
	// With 1 s integrations the uv step per sample is tiny compared to
	// the baseline length (earth rotates ~4e-5 deg/sample).
	s := smallSim()
	b := s.Baselines()[len(s.Baselines())-1]
	prev := s.UVW(b.P, b.Q, 0)
	l := length(prev)
	for tt := 1; tt < 100; tt++ {
		cur := s.UVW(b.P, b.Q, tt)
		step := math.Hypot(cur.U-prev.U, cur.V-prev.V)
		if step > 1e-3*l {
			t.Fatalf("uv step %.3g too large for baseline length %.3g", step, l)
		}
		prev = cur
	}
}

func TestScaleToWavelengths(t *testing.T) {
	c := UVW{U: 299792458.0, V: -2 * 299792458.0, W: 0.5 * 299792458.0}
	s := c.Scale(150e6) // 150 MHz -> lambda ~ 2 m
	if math.Abs(s.U-150e6) > 1e-3 || math.Abs(s.V+300e6) > 1e-3 || math.Abs(s.W-75e6) > 1e-3 {
		t.Fatalf("scaled uvw wrong: %+v", s)
	}
}

func TestBaselineTrackMatchesPointwise(t *testing.T) {
	s := smallSim()
	b := s.Baselines()[3]
	track := s.BaselineTrack(b, 5, 50, nil)
	for i, c := range track {
		want := s.UVW(b.P, b.Q, 5+i)
		if c != want {
			t.Fatalf("track[%d] = %v, want %v", i, c, want)
		}
	}
}

func TestBaselineTrackReusesBuffer(t *testing.T) {
	s := smallSim()
	b := s.Baselines()[0]
	buf := make([]UVW, 100)
	track := s.BaselineTrack(b, 0, 50, buf)
	if &track[0] != &buf[0] {
		t.Fatal("expected the provided buffer to be reused")
	}
}

func TestAllTracksShape(t *testing.T) {
	s := smallSim()
	tracks := s.AllTracks(16)
	if len(tracks) != len(s.Baselines()) {
		t.Fatalf("tracks for %d baselines, want %d", len(tracks), len(s.Baselines()))
	}
	for _, tr := range tracks {
		if len(tr) != 16 {
			t.Fatalf("track length %d, want 16", len(tr))
		}
	}
}

func TestMaxUVBoundsTracks(t *testing.T) {
	s := smallSim()
	m := s.MaxUV(64)
	if m <= 0 {
		t.Fatal("MaxUV must be positive")
	}
	// No sampled coordinate may exceed it (same sampling).
	tracks := s.AllTracks(64)
	for _, tr := range tracks {
		for tt := 0; tt < 64; tt += 4 {
			if math.Abs(tr[tt].U) > 1.01*m*1.0001+1 && math.Abs(tr[tt].V) > m {
				t.Fatalf("coordinate exceeds MaxUV: %v > %v", tr[tt], m)
			}
		}
	}
}

func TestWSignDependsOnGeometry(t *testing.T) {
	// At transit of a source at the array latitude, w of an east-west
	// baseline is ~0: build a two-station east-west pair and check.
	st := []layout.Station{{E: 0, N: 0}, {E: 1000, N: 0}}
	opts := DefaultOptions()
	opts.DeclinationDeg = opts.LatitudeDeg // source through zenith
	opts.HourAngleStartDeg = 0             // transit
	s := New(st, opts)
	c := s.UVW(0, 1, 0)
	if math.Abs(c.W) > 1e-6*1000 {
		t.Fatalf("w = %g at transit for EW baseline, want ~0", c.W)
	}
	if math.Abs(c.U-1000) > 1e-6*1000 {
		t.Fatalf("u = %g, want 1000 (pure east-west)", c.U)
	}
}

func TestValidation(t *testing.T) {
	st := layout.Generate(layout.LOFARLikeConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for single station")
			}
		}()
		New(st[:1], DefaultOptions())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for non-positive integration time")
			}
		}()
		opts := DefaultOptions()
		opts.IntegrationTime = 0
		New(st, opts)
	}()
}

func length(c UVW) float64 {
	return math.Sqrt(c.U*c.U + c.V*c.V + c.W*c.W)
}
