package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/clean"
	"repro/internal/sky"
)

// cyclePSF grids unit visibilities of the scenario to produce the
// normalized point spread function.
func cyclePSF(t *testing.T, s *scenario) []float64 {
	t.Helper()
	backup := make([][4]complex128, 0)
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			backup = append(backup, s.vs.Data[b][i])
		}
	}
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			s.vs.Data[b][i] = [4]complex128{1, 0, 0, 1}
		}
	}
	img := s.dirtyImage(t, nil)
	psf := sky.StokesI(img)
	j := 0
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			s.vs.Data[b][i] = backup[j]
			j++
		}
	}
	return psf
}

func TestImagingCycleConverges(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 10
	sc.nt = 96
	sc.sources = 2
	s := buildScenario(t, sc)
	s.fillFromModel(nil)
	psf := cyclePSF(t, s)

	res, err := s.kernels.RunImagingCycle(context.Background(), s.plan, s.vs, psf, CycleConfig{
		MajorCycles: 3,
		Clean:       clean.Params{Gain: 0.2, MaxIterations: 200, Threshold: 0.02},
		CycleDepth:  0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MajorCycles < 2 {
		t.Fatalf("expected multiple major cycles, got %d", res.MajorCycles)
	}
	// The residual peak decreases monotonically across major cycles.
	for i := 1; i < len(res.PeakHistory); i++ {
		if res.PeakHistory[i] >= res.PeakHistory[i-1] {
			t.Fatalf("residual peak did not decrease: %v", res.PeakHistory)
		}
	}
	// Total recovered flux is near the truth.
	truth := s.model.TotalFlux()
	got := res.Model.TotalFlux()
	if math.Abs(got-truth) > 0.3*truth {
		t.Fatalf("recovered %.3f Jy, truth %.3f Jy", got, truth)
	}
	// Every true source has a nearby model component with reasonable
	// flux.
	n := s.plan.GridSize
	for _, src := range s.model {
		x, y := sky.LMToPixel(src.L, src.M, n, s.plan.ImageSize)
		var near float64
		for _, c := range res.Model {
			cx, cy := sky.LMToPixel(c.L, c.M, n, s.plan.ImageSize)
			if absInt(cx-x) <= 1 && absInt(cy-y) <= 1 {
				near += c.I
			}
		}
		if near < 0.5*src.I {
			t.Fatalf("source at (%d,%d) with %.2f Jy only recovered %.2f Jy", x, y, src.I, near)
		}
	}
	if res.Times.Gridder <= 0 || res.Times.Degridder <= 0 {
		t.Fatal("stage times not accumulated")
	}
}

func TestImagingCycleStopsAtThreshold(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 6
	sc.nt = 32
	s := buildScenario(t, sc)
	s.fillFromModel(nil)
	psf := cyclePSF(t, s)

	// Absurdly high threshold: one cycle, no cleaning needed.
	res, err := s.kernels.RunImagingCycle(context.Background(), s.plan, s.vs, psf, CycleConfig{
		MajorCycles: 5,
		Clean:       clean.Params{Gain: 0.2, MaxIterations: 10, Threshold: 100},
		CycleDepth:  0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MajorCycles != 1 || len(res.Model) != 0 {
		t.Fatalf("expected immediate stop, got %d cycles, %d components",
			res.MajorCycles, len(res.Model))
	}
}

func TestImagingCycleValidation(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 4
	sc.nt = 8
	s := buildScenario(t, sc)
	good := CycleConfig{
		MajorCycles: 1,
		Clean:       clean.Params{Gain: 0.1, MaxIterations: 1},
	}
	bad := []CycleConfig{
		{MajorCycles: 0, Clean: good.Clean},
		{MajorCycles: 1, Clean: clean.Params{Gain: 0, MaxIterations: 1}},
		{MajorCycles: 1, Clean: good.Clean, CycleDepth: 1.5},
	}
	psf := make([]float64, s.plan.GridSize*s.plan.GridSize)
	psf[(s.plan.GridSize/2)*s.plan.GridSize+s.plan.GridSize/2] = 1
	for i, cfg := range bad {
		if _, err := s.kernels.RunImagingCycle(context.Background(), s.plan, s.vs, psf, cfg); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
	// Wrong PSF size.
	if _, err := s.kernels.RunImagingCycle(context.Background(), s.plan, s.vs, psf[:10], good); err == nil {
		t.Fatal("short PSF should fail")
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
