package repro

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestFacadeSkipAndFlagSurvivesCorruption: through the public API,
// corrupt an observation, flag the corruption, grid under
// skip-and-flag, and verify the image stays finite with a clean
// report.
func TestFacadeSkipAndFlagSurvivesCorruption(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	pix := obs.ImageSize / float64(obs.Config.GridSize)
	if err := obs.FillFromModel(SkyModel{{L: 20 * pix, M: -12 * pix, I: 2}}); err != nil {
		t.Fatal(err)
	}
	corrupted, err := obs.CorruptVisibilities(0.01, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupted) == 0 {
		t.Fatal("nothing corrupted")
	}
	stats, err := obs.FlagVisibilities(FlaggingConfig{NonFinite: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NonFinite != int64(len(corrupted)) {
		t.Fatalf("flagged %d non-finite samples, corrupted %d", stats.NonFinite, len(corrupted))
	}

	g, _, rep, err := obs.GridAllFT(context.Background(), nil, FaultConfig{Policy: SkipAndFlag})
	if err != nil {
		t.Fatal(err)
	}
	// Flagged samples are zero-weight, not dropped: nothing degrades.
	if rep.Degraded() {
		t.Fatalf("flagged run degraded: %v", rep)
	}
	for c := range g.Data {
		for _, v := range g.Data[c] {
			re, im := real(v), imag(v)
			if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
				t.Fatal("grid not finite")
			}
		}
	}
}

// Unflagged corruption under fail-fast is rejected as bad input, and
// under skip-and-flag it is dropped with exact accounting.
func TestFacadeUnflaggedCorruptionPolicies(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.CorruptVisibilities(0.01, 3); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := obs.GridAllFT(context.Background(), nil, FaultConfig{Policy: FailFast}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("fail-fast over NaN data: got %v, want ErrBadInput", err)
	}
	var ie *WorkItemError
	if _, _, _, err := obs.GridAllFT(context.Background(), nil, FaultConfig{Policy: FailFast}); !errors.As(err, &ie) {
		t.Fatalf("failure not a WorkItemError: %v", err)
	}

	g, _, rep, err := obs.GridAllFT(context.Background(), nil, FaultConfig{Policy: SkipAndFlag})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() || rep.DroppedVisibilities == 0 {
		t.Fatalf("degradation not reported: %v", rep)
	}
	for c := range g.Data {
		for _, v := range g.Data[c] {
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) {
				t.Fatal("NaN leaked into the grid")
			}
		}
	}
}

// TestFacadeCancellation: every context-accepting facade entry point
// returns ErrCanceled on an already-canceled context.
func TestFacadeCancellation(t *testing.T) {
	obs, err := smallObservation().Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := obs.GridAll(ctx, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("GridAll: %v", err)
	}
	if _, err := obs.DegridAll(ctx, nil, NewGrid(obs.Config.GridSize)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("DegridAll: %v", err)
	}
	if _, err := obs.DirtyImage(ctx, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("DirtyImage: %v", err)
	}
	if _, err := obs.PSF(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("PSF: %v", err)
	}
	// The canceled error also matches the context sentinel.
	_, _, err = obs.GridAll(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context sentinel lost: %v", err)
	}
}

func TestParseFaultPolicyFacade(t *testing.T) {
	for name, want := range map[string]FaultPolicy{
		"fail-fast":     FailFast,
		"retry":         RetryItems,
		"skip-and-flag": SkipAndFlag,
	} {
		got, err := ParseFaultPolicy(name)
		if err != nil || got != want {
			t.Fatalf("ParseFaultPolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseFaultPolicy("nonsense"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// NewVisibilitySet through the facade returns typed errors instead of
// panicking on bad dimensions.
func TestFacadeVisibilitySetErrors(t *testing.T) {
	if _, err := NewVisibilitySet(nil, nil, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty set: %v", err)
	}
	if _, err := NewVisibilitySet([]Baseline{{P: 0, Q: 1}}, [][]UVW{{{U: 1}}}, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero channels: %v", err)
	}
}
