package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

var testSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 16, 17, 24, 30, 31, 32, 45, 48, 60, 64, 100, 128, 243, 256, 360, 1000, 1024}

func TestForwardMatchesDirectDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range testSizes {
		p := NewPlan(n)
		x := randVec(r, n)
		want := DFTDirect(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		tol := 1e-9 * float64(n)
		if d := maxDiff(got, want); d > tol {
			t.Fatalf("n=%d: FFT differs from direct DFT by %g", n, d)
		}
	}
}

func TestForwardInverseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range testSizes {
		p := NewPlan(n)
		x := randVec(r, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > 1e-10*float64(n) {
			t.Fatalf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestParseval(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range testSizes {
		p := NewPlan(n)
		x := randVec(r, n)
		var eIn float64
		for _, v := range x {
			eIn += real(v)*real(v) + imag(v)*imag(v)
		}
		p.Forward(x)
		var eOut float64
		for _, v := range x {
			eOut += real(v)*real(v) + imag(v)*imag(v)
		}
		eOut /= float64(n)
		if math.Abs(eIn-eOut) > 1e-9*(1+eIn) {
			t.Fatalf("n=%d: Parseval violated: %g vs %g", n, eIn, eOut)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	p := NewPlan(64)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randVec(r, 64), randVec(r, 64)
		a := complex(r.NormFloat64(), r.NormFloat64())
		// FFT(a*x + y)
		mix := make([]complex128, 64)
		for i := range mix {
			mix[i] = a*x[i] + y[i]
		}
		p.Forward(mix)
		// a*FFT(x) + FFT(y)
		p.Forward(x)
		p.Forward(y)
		for i := range x {
			x[i] = a*x[i] + y[i]
		}
		return maxDiff(mix, x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	for _, n := range []int{8, 24, 31} {
		p := NewPlan(n)
		x := make([]complex128, n)
		x[0] = 1
		p.Forward(x)
		for k, v := range x {
			if cmplx.Abs(v-1) > 1e-10 {
				t.Fatalf("n=%d: impulse spectrum not flat at k=%d: %v", n, k, v)
			}
		}
	}
}

func TestDCGivesImpulse(t *testing.T) {
	n := 24
	p := NewPlan(n)
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	p.Forward(x)
	if cmplx.Abs(x[0]-complex(float64(n), 0)) > 1e-10 {
		t.Fatalf("DC bin = %v, want %d", x[0], n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(x[k]) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", k, x[k])
		}
	}
}

func TestSingleToneLandsInRightBin(t *testing.T) {
	n := 64
	p := NewPlan(n)
	for _, bin := range []int{1, 5, 31, 63} {
		x := make([]complex128, n)
		for j := range x {
			ang := 2 * math.Pi * float64(bin) * float64(j) / float64(n)
			x[j] = complex(math.Cos(ang), math.Sin(ang))
		}
		p.Forward(x)
		for k := range x {
			want := complex128(0)
			if k == bin {
				want = complex(float64(n), 0)
			}
			if cmplx.Abs(x[k]-want) > 1e-9*float64(n) {
				t.Fatalf("tone %d: bin %d = %v, want %v", bin, k, x[k], want)
			}
		}
	}
}

func TestShiftInverseShiftRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 24, 25} {
		x := randVec(r, n)
		y := append([]complex128(nil), x...)
		Shift(y)
		InverseShift(y)
		if maxDiff(x, y) != 0 {
			t.Fatalf("n=%d: shift roundtrip not exact", n)
		}
	}
}

func TestShiftMovesDC(t *testing.T) {
	for _, n := range []int{4, 5, 8, 24, 31} {
		x := make([]complex128, n)
		x[0] = 1
		Shift(x)
		if x[n/2] != 1 {
			t.Fatalf("n=%d: DC not moved to center; %v", n, x)
		}
	}
}

func TestPlanLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewPlan(8).Forward(make([]complex128, 7))
}

func TestNewPlanInvalidLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewPlan(0)
}

func TestConjugateSymmetryOfRealInput(t *testing.T) {
	n := 32
	p := NewPlan(n)
	r := rand.New(rand.NewSource(5))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
	}
	p.Forward(x)
	for k := 1; k < n; k++ {
		if d := cmplx.Abs(x[k] - cmplx.Conj(x[n-k])); d > 1e-10 {
			t.Fatalf("hermitian symmetry violated at k=%d: %g", k, d)
		}
	}
}

func TestTimeShiftTheorem(t *testing.T) {
	// A circular shift in time multiplies the spectrum by a phase ramp.
	n := 48
	p := NewPlan(n)
	r := rand.New(rand.NewSource(6))
	x := randVec(r, n)
	shift := 7
	shifted := make([]complex128, n)
	for i := range x {
		shifted[(i+shift)%n] = x[i]
	}
	p.Forward(x)
	p.Forward(shifted)
	for k := 0; k < n; k++ {
		ang := -2 * math.Pi * float64(k) * float64(shift) / float64(n)
		want := x[k] * complex(math.Cos(ang), math.Sin(ang))
		if d := cmplx.Abs(shifted[k] - want); d > 1e-9 {
			t.Fatalf("shift theorem violated at k=%d: %g", k, d)
		}
	}
}
