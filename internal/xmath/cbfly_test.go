package xmath

import (
	"math"
	"math/rand"
	"testing"
)

// refBfly applies the fused radix-4 butterfly with plain Go complex
// arithmetic, the ground truth both tiers must match bitwise.
func refBfly(a, b, c, d, w1, w2 complex128, inverse bool) (complex128, complex128, complex128, complex128) {
	tb := w1 * b
	td := w1 * d
	a1, b1 := a+tb, a-tb
	c1, d1 := c+td, c-td
	tc := w2 * c1
	w3 := complex(imag(w2), -real(w2))
	if inverse {
		w3 = complex(-imag(w2), real(w2))
	}
	te := w3 * d1
	return a1 + tc, b1 + te, a1 - tc, b1 - te
}

func randComplexes(rnd *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	return x
}

func unit(ang float64) complex128 {
	return complex(math.Cos(ang), math.Sin(ang))
}

func TestR4StageTwTiersBitwise(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for _, h := range []int{1, 2, 4, 8, 16, 32} {
		for _, blocks := range []int{1, 2, 3} {
			n := 4 * h * blocks
			tw1 := make([]complex128, h)
			tw2 := make([]complex128, h)
			for j := 0; j < h; j++ {
				tw1[j] = unit(-math.Pi * float64(j) / float64(h))
				tw2[j] = unit(-math.Pi * float64(j) / float64(2*h))
			}
			x := randComplexes(rnd, n)

			for _, inverse := range []bool{false, true} {
				want := append([]complex128(nil), x...)
				for base := 0; base < n; base += 4 * h {
					for j := 0; j < h; j++ {
						q := want[base : base+4*h]
						q[j], q[j+h], q[j+2*h], q[j+3*h] =
							refBfly(q[j], q[j+h], q[j+2*h], q[j+3*h], tw1[j], tw2[j], inverse)
					}
				}

				for _, tier := range []SIMDTier{SIMDScalar, DetectedSIMD()} {
					got := append([]complex128(nil), x...)
					R4StageTwAt(tier, got, h, tw1, tw2, inverse)
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("tier=%v h=%d n=%d inv=%v: elem %d = %v, want %v",
								tier, h, n, inverse, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestR4ColsTiersBitwise(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	w1 := unit(-0.3)
	w2 := unit(-0.15)
	// Odd lane counts exercise the scalar tail after the vector pairs.
	for _, lanes := range []int{1, 2, 3, 7, 8, 9, 16} {
		for _, inverse := range []bool{false, true} {
			a := randComplexes(rnd, lanes)
			b := randComplexes(rnd, lanes)
			c := randComplexes(rnd, lanes)
			d := randComplexes(rnd, lanes)

			wa := append([]complex128(nil), a...)
			wb := append([]complex128(nil), b...)
			wc := append([]complex128(nil), c...)
			wd := append([]complex128(nil), d...)
			for i := 0; i < lanes; i++ {
				wa[i], wb[i], wc[i], wd[i] = refBfly(a[i], b[i], c[i], d[i], w1, w2, inverse)
			}

			for _, tier := range []SIMDTier{SIMDScalar, DetectedSIMD()} {
				ga := append([]complex128(nil), a...)
				gb := append([]complex128(nil), b...)
				gc := append([]complex128(nil), c...)
				gd := append([]complex128(nil), d...)
				R4ColsAt(tier, ga, gb, gc, gd, w1, w2, inverse)
				for i := 0; i < lanes; i++ {
					if ga[i] != wa[i] || gb[i] != wb[i] || gc[i] != wc[i] || gd[i] != wd[i] {
						t.Fatalf("tier=%v lanes=%d inv=%v: lane %d mismatch", tier, lanes, inverse, i)
					}
				}
			}
		}
	}
}

func TestAddSubLanes(t *testing.T) {
	a := []complex128{1 + 2i, 3i}
	b := []complex128{5, 1 - 1i}
	AddSubLanes(a, b)
	if a[0] != 6+2i || b[0] != -4+2i || a[1] != 1+2i || b[1] != -1+4i {
		t.Fatalf("AddSubLanes wrong: %v %v", a, b)
	}
}
