package aterm

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/xmath"
)

func TestSchedulerSlots(t *testing.T) {
	s := Scheduler{UpdateInterval: 256}
	if s.Slot(0) != 0 || s.Slot(255) != 0 || s.Slot(256) != 1 || s.Slot(8191) != 31 {
		t.Fatal("slot mapping wrong")
	}
	if s.NrSlots(8192) != 32 {
		t.Fatalf("NrSlots(8192) = %d, want 32 (paper dataset)", s.NrSlots(8192))
	}
	if s.NrSlots(8193) != 33 {
		t.Fatalf("NrSlots(8193) = %d", s.NrSlots(8193))
	}
	// Degenerate interval: everything is one slot.
	z := Scheduler{}
	if z.Slot(100) != 0 || z.NrSlots(100) != 1 {
		t.Fatal("zero interval should collapse to one slot")
	}
}

func TestIdentityProvider(t *testing.T) {
	var p Identity
	m := p.Evaluate(3, 7, 0.01, -0.02)
	if m.MaxAbsDiff(xmath.Identity2()) != 0 {
		t.Fatal("identity provider not identity")
	}
}

func TestGaussianBeamPeakAndFalloff(t *testing.T) {
	p := GaussianBeam{Sigma: 0.05}
	center := p.Evaluate(0, 0, 0, 0)
	if d := center.MaxAbsDiff(xmath.Identity2()); d > 1e-12 {
		t.Fatalf("beam center gain = %v", center)
	}
	edge := p.Evaluate(0, 0, 0.05, 0)
	want := math.Exp(-0.5)
	if d := math.Abs(real(edge[0]) - want); d > 1e-12 {
		t.Fatalf("beam at sigma = %g, want %g", real(edge[0]), want)
	}
	// Off-diagonal terms are zero, diag equal (scalar beam).
	if edge[1] != 0 || edge[2] != 0 || edge[0] != edge[3] {
		t.Fatal("beam must be scalar")
	}
}

func TestGaussianBeamWobbleDeterministic(t *testing.T) {
	p := GaussianBeam{Sigma: 0.05, Wobble: 0.01}
	a := p.Evaluate(5, 3, 0.01, 0.01)
	b := p.Evaluate(5, 3, 0.01, 0.01)
	if a != b {
		t.Fatal("wobble not deterministic")
	}
	c := p.Evaluate(5, 4, 0.01, 0.01)
	if a == c {
		t.Fatal("expected different slots to wobble differently")
	}
}

func TestGaussianBeamInvalidSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GaussianBeam{}.Evaluate(0, 0, 0, 0)
}

func TestPhaseScreenUnitary(t *testing.T) {
	p := PhaseScreen{Strength: 100}
	for st := 0; st < 5; st++ {
		m := p.Evaluate(st, 2, 0.03, -0.01)
		// Scalar unimodular phase.
		if d := math.Abs(cmplx.Abs(m[0]) - 1); d > 1e-12 {
			t.Fatalf("|phase| = %g", cmplx.Abs(m[0]))
		}
		if m[1] != 0 || m[2] != 0 || m[0] != m[3] {
			t.Fatal("phase screen must be scalar")
		}
	}
}

func TestPhaseScreenZeroAtCenter(t *testing.T) {
	p := PhaseScreen{Strength: 50}
	m := p.Evaluate(9, 9, 0, 0)
	if d := m.MaxAbsDiff(xmath.Identity2()); d > 1e-12 {
		t.Fatal("phase at field center must be zero")
	}
}

func TestMapLayoutMatchesEvaluate(t *testing.T) {
	p := GaussianBeam{Sigma: 0.04}
	n := 8
	imageSize := 0.1
	m := Map(p, 1, 2, n, imageSize)
	if len(m) != n*n {
		t.Fatalf("map length %d", len(m))
	}
	scale := imageSize / float64(n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			want := p.Evaluate(1, 2, float64(x-n/2)*scale, float64(y-n/2)*scale)
			if m[y*n+x] != want {
				t.Fatalf("map(%d,%d) mismatch", x, y)
			}
		}
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache(PhaseScreen{Strength: 10}, 16, 0.1)
	a := c.Get(2, 3)
	b := c.Get(2, 3)
	if &a[0] != &b[0] {
		t.Fatal("cache did not memoize")
	}
	d := c.Get(2, 4)
	if &a[0] == &d[0] {
		t.Fatal("different slots must not share a map")
	}
}

func TestHash2Range(t *testing.T) {
	for st := 0; st < 200; st++ {
		for slot := 0; slot < 8; slot++ {
			a, b := hash2(st, slot)
			if a < -1 || a > 1 || b < -1 || b > 1 {
				t.Fatalf("hash2(%d,%d) out of range: %g, %g", st, slot, a, b)
			}
		}
	}
}
