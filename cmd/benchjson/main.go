// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout. It understands the standard
// benchmark line format including -benchmem columns and custom
// b.ReportMetric units, so CI jobs and scripts/bench.sh can diff
// kernel performance without scraping free-form text:
//
//	go test -bench Kernel -benchmem . | benchjson > BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// VisPerSec is derived from the kernels' MVis/s custom metric.
	VisPerSec *float64 `json:"vis_per_sec,omitempty"`
	// Metrics holds every other custom b.ReportMetric column.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := Parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// Parse consumes `go test -bench` output line by line.
func Parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line: a name, an iteration count, then
// repeated "<value> <unit>" pairs.
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %v", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		case "MVis/s":
			v := val * 1e6
			b.VisPerSec = &v
			addMetric(&b, unit, val)
		default:
			addMetric(&b, unit, val)
		}
	}
	return b, nil
}

func addMetric(b *Benchmark, unit string, val float64) {
	if b.Metrics == nil {
		b.Metrics = make(map[string]float64)
	}
	b.Metrics[unit] = val
}
