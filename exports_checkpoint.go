package repro

import (
	"context"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/faulttol"
	"repro/internal/grid"
)

// Checkpoint/restart re-exports: durable snapshots of streamed
// gridding passes. Most callers only set
// ObservationConfig.CheckpointDir / CheckpointEvery and call
// ResumeStreamed after a crash; the types are exported for tests and
// for operators inspecting a checkpoint directory.

type (
	// CheckpointSnapshot is one durable point of a streamed gridding
	// pass: the partially accumulated grid, the chunk cursor, and the
	// fault-tolerance counters (see internal/checkpoint.Snapshot).
	CheckpointSnapshot = checkpoint.Snapshot
	// CheckpointEvent identifies a durability-critical point in the
	// scheduler's checkpoint protocol.
	CheckpointEvent = checkpoint.Event
	// CheckpointHook observes checkpoint events; the crash-injection
	// harness panics inside one to simulate kills (see
	// faultinject.CrashHook).
	CheckpointHook = checkpoint.Hook
)

// Checkpoint protocol events (crash points for the chaos harness).
const (
	// CheckpointChunkCommitted fires after a chunk is added to the
	// grid (serial scheduler only).
	CheckpointChunkCommitted = checkpoint.EventChunkCommitted
	// CheckpointBeforeWrite fires at a checkpoint barrier before the
	// snapshot file is opened.
	CheckpointBeforeWrite = checkpoint.EventBeforeWrite
	// CheckpointBeforeRename fires after the snapshot temp file is
	// synced, before the atomic rename publishes it.
	CheckpointBeforeRename = checkpoint.EventBeforeRename
	// CheckpointAfterWrite fires once the snapshot is durably in
	// place.
	CheckpointAfterWrite = checkpoint.EventAfterWrite
)

// Typed checkpoint failures, matched with errors.Is.
var (
	// ErrCheckpointCorrupt marks a snapshot file failing structural or
	// digest validation (torn write, truncation, bit rot).
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointVersion marks a snapshot of an incompatible format
	// version.
	ErrCheckpointVersion = checkpoint.ErrVersion
	// ErrCheckpointMismatch marks a valid snapshot that belongs to a
	// different observation (plan, grid size or chunking differ).
	ErrCheckpointMismatch = checkpoint.ErrMismatch
)

// LatestCheckpoint loads the newest valid snapshot in dir, scanning
// backwards past torn or corrupt files. It returns the snapshot, its
// path, and one note per skipped file; a nil snapshot with a nil
// error means the directory holds no usable checkpoint.
func LatestCheckpoint(dir string) (*CheckpointSnapshot, string, []string, error) {
	return checkpoint.LoadLatest(dir)
}

// checkSnapshot verifies that a snapshot belongs to this observation:
// same grid size, same plan content, same streaming chunk size (the
// cursor is meaningless under different chunking). Visibilities are
// not fingerprinted — the caller must refill the same data, which the
// deterministic simulator and sky model guarantee here and an
// ingest-once visibility store guarantees in production.
func (o *Observation) checkSnapshot(sn *CheckpointSnapshot) error {
	switch {
	case sn.GridSize != o.Config.GridSize:
		return fmt.Errorf("%w: snapshot grid is %d pixels, this observation grids %d",
			ErrCheckpointMismatch, sn.GridSize, o.Config.GridSize)
	case sn.ChunkItems != o.Kernels.StreamChunkItemsResolved():
		return fmt.Errorf("%w: snapshot cursor counts %d-item chunks, this run streams %d-item chunks",
			ErrCheckpointMismatch, sn.ChunkItems, o.Kernels.StreamChunkItemsResolved())
	case sn.PlanSum != checkpoint.PlanFingerprint(o.Plan):
		return fmt.Errorf("%w: snapshot plan fingerprint differs (different observation, layout or plan config)",
			ErrCheckpointMismatch)
	}
	return nil
}

// ResumeStreamed continues an interrupted streamed gridding pass from
// the newest valid checkpoint in ObservationConfig.CheckpointDir: the
// snapshot's grid and fault counters are restored and only the chunks
// past its cursor are gridded (writing further checkpoints at the
// same cursors the uninterrupted run would have used). Unusable
// newest checkpoints fall back to their predecessors; a directory
// with no usable checkpoint degrades to a clean full run. Either way
// the fallback is recorded as a note in the returned report, and with
// the bit-reproducible settings (Workers <= 1, GridShards <= 1) the
// resumed grid is bit-identical to an uninterrupted pass.
//
// The observation must be built with the same configuration and data
// as the interrupted run: a snapshot from a different plan, grid size
// or chunk size fails with ErrCheckpointMismatch. Cancellation
// behaves as in GridAllStreamed.
func (o *Observation) ResumeStreamed(ctx context.Context, prov ATermProvider, ft FaultConfig) (*Grid, StageTimes, *FaultReport, error) {
	if o.Config.CheckpointDir == "" {
		return nil, StageTimes{}, nil, &ConfigError{Field: "CheckpointDir", Reason: "ResumeStreamed needs a checkpoint directory"}
	}
	if o.Vis == nil {
		return nil, StageTimes{}, nil, fmt.Errorf("repro: visibilities not allocated")
	}
	rep := faulttol.NewReport(ft)
	sn, path, notes, err := checkpoint.LoadLatest(o.Config.CheckpointDir)
	if err != nil {
		return nil, StageTimes{}, rep, err
	}
	for _, n := range notes {
		rep.AddNote(n)
	}

	g := grid.NewGrid(o.Config.GridSize)
	start := 0
	if sn != nil {
		if err := o.checkSnapshot(sn); err != nil {
			return nil, StageTimes{}, rep, fmt.Errorf("%s: %w", path, err)
		}
		g = sn.Grid
		rep.RestoreState(sn.Report)
		start = sn.NextChunk
	} else {
		rep.AddNote("checkpoint: no usable snapshot found; clean restart from chunk 0")
	}

	sh := o.Kernels.NewShardedGrid(g)
	times, err := o.Kernels.ResumeVisibilitiesStreamed(ctx, o.Plan, o.Vis, prov, sh, ft, rep, start)
	return g, times, rep, err
}
