package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/aterm"
	"repro/internal/grid"
	"repro/internal/sky"
	"repro/internal/xmath"
)

// TestDegriddingMatchesMeasurementEquation is the central correctness
// test: degridding a point-source model image through the full IDG
// pipeline (splitter -> inverse subgrid FFT -> degridder) must
// reproduce the measurement equation up to the taper weighting.
func TestDegriddingMatchesMeasurementEquation(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.sources = 2
	s := buildScenario(t, sc)

	// Model image: exact rasterization (sources are pixel-aligned).
	img := s.model.Rasterize(s.plan.GridSize, s.plan.ImageSize)
	g := ImageToGrid(img, 0)

	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, s.vs, nil, g); err != nil {
		t.Fatal(err)
	}

	// Expected: direct predictions with taper-weighted fluxes.
	tapered := make(sky.Model, len(s.model))
	for i, src := range s.model {
		src.I *= s.taperAt(src.L, src.M)
		tapered[i] = src
	}
	var maxErr, sumErr float64
	var count int
	var scale float64
	for _, src := range tapered {
		scale += src.I
	}
	for b := range s.vs.Data {
		for t2 := 0; t2 < s.vs.NrTimesteps; t2++ {
			coord := s.vs.UVW[b][t2]
			for c := 0; c < s.vs.NrChannels; c++ {
				sl := coord.Scale(s.plan.Frequencies[c])
				want := tapered.Predict(sl.U, sl.V, sl.W)
				got := s.vs.Data[b][t2*s.vs.NrChannels+c]
				// The tapered model is unpolarized: compare XX.
				err := got.MaxAbsDiff(want) / scale
				if err > maxErr {
					maxErr = err
				}
				sumErr += err
				count++
			}
		}
	}
	t.Logf("degridding: max rel err %.2e, mean rel err %.2e over %d visibilities",
		maxErr, sumErr/float64(count), count)
	if maxErr > 5e-3 {
		t.Fatalf("max relative degridding error %.2e too large", maxErr)
	}
	if mean := sumErr / float64(count); mean > 1e-3 {
		t.Fatalf("mean relative degridding error %.2e too large", mean)
	}
}

// TestGriddingRecoversPointSource grids exact model visibilities and
// checks that the dirty image peaks at the source position with the
// source flux.
func TestGriddingRecoversPointSource(t *testing.T) {
	s := buildScenario(t, defaultScenarioConfig())
	s.fillFromModel(nil)
	img := s.dirtyImage(t, nil)

	x, y, peak := peakStokesI(img)
	wantX, wantY := sky.LMToPixel(s.model[0].L, s.model[0].M, s.plan.GridSize, s.plan.ImageSize)
	if x != wantX || y != wantY {
		t.Fatalf("peak at (%d,%d), want (%d,%d)", x, y, wantX, wantY)
	}
	if math.Abs(peak-s.model[0].I) > 0.05*s.model[0].I {
		t.Fatalf("peak flux %.4f, want %.4f within 5%%", peak, s.model[0].I)
	}
	t.Logf("gridding: peak %.4f at (%d,%d), true flux %.4f", peak, x, y, s.model[0].I)
}

// TestGridderDegridderAdjoint checks <G(v), g> == <v, D(g)>: the
// degridding pipeline is the exact adjoint of the gridding pipeline,
// a property any gridder/degridder pair used inside CLEAN major
// cycles must satisfy.
func TestGridderDegridderAdjoint(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)

	// Random visibilities v.
	rnd := newTestRand(42)
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			for p := 0; p < 4; p++ {
				s.vs.Data[b][i][p] = complex(rnd(), rnd())
			}
		}
	}
	// Random grid g.
	g := grid.NewGrid(s.plan.GridSize)
	for c := range g.Data {
		for i := range g.Data[c] {
			g.Data[c][i] = complex(rnd(), rnd())
		}
	}

	// <G(v), g>
	gv := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, gv); err != nil {
		t.Fatal(err)
	}
	var lhs complex128
	for c := range gv.Data {
		for i := range gv.Data[c] {
			lhs += gv.Data[c][i] * conj(g.Data[c][i])
		}
	}

	// <v, D(g)>
	vsOut := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, vsOut, nil, g); err != nil {
		t.Fatal(err)
	}
	var rhs complex128
	for b := range s.vs.Data {
		for i := range s.vs.Data[b] {
			for p := 0; p < 4; p++ {
				rhs += s.vs.Data[b][i][p] * conj(vsOut.Data[b][i][p])
			}
		}
	}
	if d := cAbs(lhs-rhs) / cAbs(lhs); d > 1e-6 {
		t.Fatalf("adjoint violated: <G(v),g>=%v, <v,D(g)>=%v (rel %g)", lhs, rhs, d)
	}
}

// TestIdentityATermsMatchNilFastPath: gridding with explicit identity
// A-terms must equal gridding with the nil fast path exactly.
func TestIdentityATermsMatchNilFastPath(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	s.fillFromModel(nil)

	g1 := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g1); err != nil {
		t.Fatal(err)
	}
	g2 := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, aterm.Identity{}, g2); err != nil {
		t.Fatal(err)
	}
	if d := g1.MaxAbsDiff(g2); d > 1e-9 {
		t.Fatalf("identity A-terms changed the grid by %g", d)
	}
}

// TestATermCorrectionRecoversCorruptedData corrupts the model
// visibilities with per-station unitary phase screens and checks that
// gridding *with the matching A-term provider* recovers the source,
// while gridding without correction smears it. This is the paper's
// core functional claim: IDG applies DDE corrections exactly, at
// negligible cost.
func TestATermCorrectionRecoversCorruptedData(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nt = 64
	s := buildScenario(t, sc)
	prov := aterm.PhaseScreen{Strength: 40 / s.plan.ImageSize}

	s.fillFromModel(func(p, q, slot int, l, m float64) (xmath.Matrix2, xmath.Matrix2) {
		return prov.Evaluate(p, slot, l, m), prov.Evaluate(q, slot, l, m)
	})

	corrected := s.dirtyImage(t, prov)
	x, y, peak := peakStokesI(corrected)
	wantX, wantY := sky.LMToPixel(s.model[0].L, s.model[0].M, s.plan.GridSize, s.plan.ImageSize)
	if x != wantX || y != wantY {
		t.Fatalf("corrected peak at (%d,%d), want (%d,%d)", x, y, wantX, wantY)
	}
	if math.Abs(peak-s.model[0].I) > 0.05*s.model[0].I {
		t.Fatalf("corrected peak %.4f, want %.4f", peak, s.model[0].I)
	}

	uncorrected := s.dirtyImage(t, nil)
	_, _, rawPeak := peakStokesI(uncorrected)
	if rawPeak > 0.9*peak {
		t.Fatalf("uncorrected image peak %.4f not degraded vs corrected %.4f; screen too weak to test correction", rawPeak, peak)
	}
	t.Logf("A-term test: corrected peak %.4f, uncorrected peak %.4f", peak, rawPeak)
}

// TestBatchedKernelsMatchReference: the optimized (batched) kernels
// must agree with the direct Algorithm 1/2 transcriptions.
func TestBatchedKernelsMatchReference(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 32
	s := buildScenario(t, sc)
	s.fillFromModel(nil)

	params := s.kernels.Params()
	params.DisableBatching = true
	ref, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}

	g1 := grid.NewGrid(s.plan.GridSize)
	if _, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g1); err != nil {
		t.Fatal(err)
	}
	g2 := grid.NewGrid(s.plan.GridSize)
	if _, err := ref.GridVisibilities(context.Background(), s.plan, s.vs, nil, g2); err != nil {
		t.Fatal(err)
	}
	scale := math.Sqrt(g1.Norm2() / float64(g1.N*g1.N))
	if d := g1.MaxAbsDiff(g2); d > 1e-9*(1+scale)*float64(s.vs.NrVisibilities()) {
		t.Fatalf("batched gridder differs from reference by %g", d)
	}

	// Degridding comparison.
	img := s.model.Rasterize(s.plan.GridSize, s.plan.ImageSize)
	g := ImageToGrid(img, 0)
	v1 := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	v2 := MustNewVisibilitySet(s.vs.Baselines, s.vs.UVW, s.vs.NrChannels)
	if _, err := s.kernels.DegridVisibilities(context.Background(), s.plan, v1, nil, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.DegridVisibilities(context.Background(), s.plan, v2, nil, g); err != nil {
		t.Fatal(err)
	}
	var maxD float64
	for b := range v1.Data {
		for i := range v1.Data[b] {
			if d := v1.Data[b][i].MaxAbsDiff(v2.Data[b][i]); d > maxD {
				maxD = d
			}
		}
	}
	if maxD > 1e-8 {
		t.Fatalf("batched degridder differs from reference by %g", maxD)
	}
}

// TestStageTimesAccounted: the pipelines must report non-zero stage
// times that sum to Total().
func TestStageTimesAccounted(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 5
	sc.nt = 16
	s := buildScenario(t, sc)
	s.fillFromModel(nil)
	g := grid.NewGrid(s.plan.GridSize)
	times, err := s.kernels.GridVisibilities(context.Background(), s.plan, s.vs, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if times.Gridder <= 0 || times.SubgridFFT <= 0 || times.Adder <= 0 {
		t.Fatalf("missing stage times: %+v", times)
	}
	if times.Total() != times.Gridder+times.Degridder+times.SubgridFFT+times.Adder+times.Splitter {
		t.Fatal("Total() inconsistent")
	}
	var sum StageTimes
	sum.Add(times)
	sum.Add(times)
	if sum.Gridder != 2*times.Gridder {
		t.Fatal("Add() inconsistent")
	}
}

// TestPipelineParameterMismatch: plans built for different geometry
// must be rejected.
func TestPipelineParameterMismatch(t *testing.T) {
	sc := defaultScenarioConfig()
	sc.nrStations = 4
	sc.nt = 8
	s := buildScenario(t, sc)
	other, err := NewKernels(Params{
		GridSize:    s.plan.GridSize * 2,
		SubgridSize: s.plan.SubgridSize,
		ImageSize:   s.plan.ImageSize,
		Frequencies: s.plan.Frequencies,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := grid.NewGrid(s.plan.GridSize * 2)
	if _, err := other.GridVisibilities(context.Background(), s.plan, s.vs, nil, g); err == nil {
		t.Fatal("expected grid-size mismatch error")
	}
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func cAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// newTestRand returns a tiny deterministic uniform(-1,1) generator.
func newTestRand(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<52) - 1
	}
}
