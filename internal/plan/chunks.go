package plan

// Chunk is one unit of streamed execution: a contiguous run of work
// items (in plan order) that flows through grid -> FFT -> add as a
// whole before its subgrids are released. Bounding the number of
// chunks in flight bounds the pipeline's peak subgrid memory at
// MaxInflightChunks x chunk size.
type Chunk struct {
	// Index is the chunk's position in plan order.
	Index int
	// Items are the chunk's work items, a subslice of Plan.Items.
	Items []WorkItem
	// TimeStart and TimeEnd bound the time steps covered by the
	// chunk's items ([TimeStart, TimeEnd), over all baselines); they
	// describe the observation window a streaming reader must have
	// resident while the chunk is in flight.
	TimeStart, TimeEnd int
}

// StreamChunks splits the plan into chunks of at most maxItems work
// items each (<= 0 selects one chunk). Plan order is preserved —
// chunking never reorders items — so a streamed pass with one chunk in
// flight accumulates in exactly the serial pipeline's order and stays
// bit-for-bit reproducible.
func (p *Plan) StreamChunks(maxItems int) []Chunk {
	if maxItems <= 0 {
		maxItems = len(p.Items)
	}
	if len(p.Items) == 0 {
		return nil
	}
	chunks := make([]Chunk, 0, (len(p.Items)+maxItems-1)/maxItems)
	for i := 0; i < len(p.Items); i += maxItems {
		j := i + maxItems
		if j > len(p.Items) {
			j = len(p.Items)
		}
		c := Chunk{Index: len(chunks), Items: p.Items[i:j]}
		c.TimeStart, c.TimeEnd = timeWindow(c.Items)
		chunks = append(chunks, c)
	}
	return chunks
}

// timeWindow returns the half-open time-step range covered by items.
func timeWindow(items []WorkItem) (start, end int) {
	start, end = items[0].TimeStart, items[0].TimeStart+items[0].NrTimesteps
	for _, it := range items[1:] {
		if it.TimeStart < start {
			start = it.TimeStart
		}
		if e := it.TimeStart + it.NrTimesteps; e > end {
			end = e
		}
	}
	return start, end
}

// ShardOrder returns the item indices [0, n) reordered so that items
// mapping to different shards interleave round-robin: position k of
// the result cycles through the shard buckets. Feeding a sharded adder
// in this order spreads consecutive updates across row bands, which
// minimizes the chance that neighbouring workers contend on the same
// shard lock. shardOf maps an item index to its (primary) shard in
// [0, shards); items keep their relative order within a bucket, so the
// permutation is deterministic.
func ShardOrder(n int, shards int, shardOf func(i int) int) []int {
	if shards < 1 {
		shards = 1
	}
	buckets := make([][]int, shards)
	for i := 0; i < n; i++ {
		s := shardOf(i)
		if s < 0 {
			s = 0
		}
		if s >= shards {
			s = shards - 1
		}
		buckets[s] = append(buckets[s], i)
	}
	order := make([]int, 0, n)
	for len(order) < n {
		for s := range buckets {
			if len(buckets[s]) > 0 {
				order = append(order, buckets[s][0])
				buckets[s] = buckets[s][1:]
			}
		}
	}
	return order
}
