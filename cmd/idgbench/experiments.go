package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/perfmodel"
	"repro/internal/report"

	"repro"
)

// runTable1 prints Table I from the arch package.
func runTable1(float64) {
	t := report.NewTable("model", "type", "architecture", "clock(GHz)",
		"core config = #FPUs", "peak(TFlops)", "mem(GB)", "mem bw(GB/s)", "TDP(W)")
	for _, p := range arch.Platforms() {
		cfg := fmt.Sprintf("%dx%dx%dx%d = %d",
			p.NrICs, p.NrComputeUnits, p.FPUInstrPerCyc, p.VectorSize, p.NrFPUs())
		t.AddRow(p.Model, p.Type, p.Architecture, p.ClockGHz, cfg,
			p.PeakTFlops, p.MemGB, p.MemBandwidthGBs, p.TDPWatts)
	}
	t.Render(os.Stdout)
}

// paperModelDataset returns the dataset all modelled figures use.
func paperModelDataset() perfmodel.Dataset {
	return perfmodel.PaperDataset()
}

// runFig8 renders the uv coverage of the SKA1-low test data set as an
// ASCII density plot. scale < 1 reduces the time sampling.
func runFig8(scale float64) {
	cfg := repro.PaperObservation()
	cfg.NrTimesteps = int(float64(cfg.NrTimesteps) * scale)
	if cfg.NrTimesteps < 16 {
		cfg.NrTimesteps = 16
	}
	obs, err := cfg.BuildPlan()
	if err != nil {
		fatal(err)
	}
	// Sample the tracks (both signs: each visibility has a conjugate
	// mirror point, which is what makes Fig. 8 symmetric).
	var us, vs []float64
	baselines := obs.Simulator.Baselines()
	tStep := cfg.NrTimesteps / 64
	if tStep == 0 {
		tStep = 1
	}
	for i := 0; i < len(baselines); i += 7 {
		for t := 0; t < cfg.NrTimesteps; t += tStep {
			c := obs.Simulator.UVW(baselines[i].P, baselines[i].Q, t)
			us = append(us, c.U, -c.U)
			vs = append(vs, c.V, -c.V)
		}
	}
	fmt.Printf("%d sampled uv points (of %d baselines x %d steps):\n",
		len(us), len(baselines), cfg.NrTimesteps)
	fmt.Print(report.Scatter(us, vs, 72, 36))
}

// runFig9 prints the modelled runtime distribution of one imaging
// cycle per platform.
func runFig9(float64) {
	d := paperModelDataset()
	t := report.NewTable("platform", "gridder(s)", "degridder(s)", "subgrid-fft(s)",
		"adder(s)", "splitter(s)", "total(s)", "gridder+degridder")
	for _, p := range arch.Platforms() {
		c := perfmodel.ImagingCycle(p, d)
		t.AddRow(p.Name, c.Gridder.Seconds, c.Degridder.Seconds, c.SubgridFFT.Seconds,
			c.Adder.Seconds, c.Splitter.Seconds, c.Total(),
			fmt.Sprintf("%.1f%%", 100*c.FractionInGridderDegridder()))
	}
	t.Render(os.Stdout)
	fmt.Println("\nruntime shares (one bar per platform, # = gridder+degridder):")
	for _, p := range arch.Platforms() {
		c := perfmodel.ImagingCycle(p, d)
		fmt.Printf("  %-8s |%s| %.1fs\n", p.Name,
			report.Bar(c.Gridder.Seconds+c.Degridder.Seconds, c.Total(), 40), c.Total())
	}
}

// runFig10 prints gridding/degridding throughput in MVis/s.
func runFig10(float64) {
	d := paperModelDataset()
	t := report.NewTable("platform", "gridding(MVis/s)", "degridding(MVis/s)")
	for _, p := range arch.Platforms() {
		g, dg := perfmodel.ThroughputMVisPerSec(p, d)
		t.AddRow(p.Name, g, dg)
	}
	t.Render(os.Stdout)
}

// runFig11 prints the device-memory roofline points and ceilings.
func runFig11(float64) {
	d := paperModelDataset()
	t := report.NewTable("platform", "kernel", "OI(ops/byte)", "achieved(TOps/s)",
		"mix ceiling(TOps/s)", "peak(TOps/s)", "fraction of peak", "bound")
	for _, pt := range perfmodel.DeviceRoofline(d) {
		p, _ := arch.ByName(pt.Platform)
		var c perfmodel.KernelCounts
		if pt.Kernel == "gridder" {
			c = perfmodel.GridderCounts(d)
		} else {
			c = perfmodel.DegridderCounts(d)
		}
		perf := perfmodel.Predict(p, c)
		t.AddRow(pt.Platform, pt.Kernel, pt.Intensity, pt.TOpsPerSec,
			pt.CeilingTOps, pt.PeakTOps,
			fmt.Sprintf("%.0f%%", 100*perf.FractionOfPeak), string(perf.Bound))
	}
	t.Render(os.Stdout)
}

// runFig12 prints the ops throughput for FMA/sincos mixes.
func runFig12(float64) {
	t := report.NewTable("rho", "HASWELL(TOps/s)", "FIJI(TOps/s)", "PASCAL(TOps/s)")
	for rho := 0.25; rho <= 4096; rho *= 2 {
		row := []interface{}{rho}
		for _, p := range arch.Platforms() {
			row = append(row, p.MixOpsPerSec(rho)/1e12)
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
	fmt.Printf("\nkernel operating point rho = %d:\n", arch.KernelRho)
	for _, p := range arch.Platforms() {
		fmt.Printf("  %-8s %.2f TOps/s (%.0f%% of peak)\n", p.Name,
			p.MixOpsPerSec(arch.KernelRho)/1e12, 100*p.MixFraction(arch.KernelRho))
	}
}

// runFig13 prints the shared-memory roofline points.
func runFig13(float64) {
	d := paperModelDataset()
	t := report.NewTable("platform", "kernel", "shared OI(ops/byte)",
		"achieved(TOps/s)", "shared ceiling(TOps/s)", "of ceiling")
	for _, pt := range perfmodel.SharedRoofline(d) {
		t.AddRow(pt.Platform, pt.Kernel, pt.Intensity, pt.TOpsPerSec, pt.CeilingTOps,
			fmt.Sprintf("%.0f%%", 100*pt.TOpsPerSec/pt.CeilingTOps))
	}
	t.Render(os.Stdout)
}

// runFig14 prints the energy distribution of one imaging cycle.
func runFig14(float64) {
	d := paperModelDataset()
	t := report.NewTable("platform", "gridder(kJ)", "degridder(kJ)", "fft(kJ)",
		"adder+splitter(kJ)", "host(kJ)", "total(kJ)")
	for _, p := range arch.Platforms() {
		c, err := energy.Cycle(p, d)
		if err != nil {
			fatal(err)
		}
		t.AddRow(p.Name, c.Gridder.DeviceJoules/1e3, c.Degridder.DeviceJoules/1e3,
			c.SubgridFFT.DeviceJoules/1e3,
			(c.Adder.DeviceJoules+c.Splitter.DeviceJoules)/1e3,
			c.HostJoules/1e3, c.Total()/1e3)
	}
	t.Render(os.Stdout)
}

// runFig15 prints the per-kernel energy efficiency.
func runFig15(float64) {
	d := paperModelDataset()
	t := report.NewTable("platform", "gridder(GFlops/W)", "degridder(GFlops/W)")
	for _, p := range arch.Platforms() {
		g := energy.Efficiency(p, perfmodel.GridderCounts(d))
		dg := energy.Efficiency(p, perfmodel.DegridderCounts(d))
		t.AddRow(p.Name, g.GFlopsPerWatt, dg.GFlopsPerWatt)
	}
	t.Render(os.Stdout)
}

// runFig16 prints the IDG vs WPG comparison on PASCAL.
func runFig16(float64) {
	d := paperModelDataset()
	p := arch.Pascal()
	rows := perfmodel.Fig16(p, d, []int{4, 8, 12, 16, 24, 32, 48, 64}, []int{24, 32, 48})
	t := report.NewTable("N_W", "WPG(MVis/s)", "WPG improved [21]",
		"IDG N~=24", "IDG N~=32", "IDG N~=48")
	for _, r := range rows {
		t.AddRow(r.NW, r.WPG, r.WPGImproved, r.IDG[24], r.IDG[32], r.IDG[48])
	}
	t.Render(os.Stdout)
	fmt.Println("\n(IDG columns are flat: its cost depends on the subgrid size, not N_W;")
	fmt.Println(" in practice N_W <= 24, where IDG N~=24 wins by 2-4x — Section VI-E.)")
}

// runFig7 simulates the triple-buffering timeline.
func runFig7(float64) {
	d := paperModelDataset()
	p := arch.Pascal()
	// Per-work-group durations for 1024-item groups of the paper
	// dataset.
	groups := d.NrSubgrids / 1024
	c := perfmodel.ImagingCycle(p, d)
	kernel := c.Gridder.Seconds / groups
	htod := perfmodel.GridderCounts(d).HtoDBytes / (p.PCIeGBs * 1e9) / groups
	res3 := perfmodel.SimulateTripleBuffer(64, 3, htod, kernel, htod/4)
	res1 := perfmodel.SimulateTripleBuffer(64, 1, htod, kernel, htod/4)
	t := report.NewTable("configuration", "makespan(ms)", "kernel busy")
	t.AddRow("serial (1 buffer)", res1.Makespan*1e3, fmt.Sprintf("%.0f%%", 100*res1.KernelBusy))
	t.AddRow("triple buffering", res3.Makespan*1e3, fmt.Sprintf("%.0f%%", 100*res3.KernelBusy))
	t.Render(os.Stdout)
	fmt.Printf("speedup from overlapping I/O with kernels: %.2fx\n", res1.Makespan/res3.Makespan)
}

// runPlanStats builds the full-size paper plan with the streaming
// planner and compares against the closed-form dataset.
func runPlanStats(scale float64) {
	cfg := repro.PaperObservation()
	cfg.NrTimesteps = int(float64(cfg.NrTimesteps) * scale)
	if cfg.NrTimesteps < 256 {
		cfg.NrTimesteps = 256
	}
	fmt.Printf("building execution plan: %d stations, %d steps, %d channels...\n",
		cfg.NrStations, cfg.NrTimesteps, cfg.NrChannels)
	obs, err := cfg.BuildPlan()
	if err != nil {
		fatal(err)
	}
	st := obs.Plan.Stats()
	total := int64(len(obs.Simulator.Baselines())) * int64(cfg.NrTimesteps) * int64(cfg.NrChannels)
	t := report.NewTable("quantity", "value")
	t.AddRow("baselines", len(obs.Simulator.Baselines()))
	t.AddRow("visibilities", total)
	t.AddRow("gridded", st.NrGriddedVisibilities)
	t.AddRow("dropped (off-grid)", st.NrDroppedVisibilities)
	t.AddRow("subgrids", st.NrSubgrids)
	t.AddRow("avg timesteps/subgrid", st.AvgTimestepsPerSubgrid)
	t.AddRow("max timesteps/subgrid", st.MaxTimestepsPerItem)
	t.AddRow("image size (dir. cos.)", obs.ImageSize)
	t.Render(os.Stdout)

	d := perfmodel.FromPlan("paper (exact)", obs.Plan, len(obs.Simulator.Baselines()), cfg.NrTimesteps)
	cf := perfmodel.PaperDataset()
	ratio := d.NrSubgrids / (cf.NrSubgrids * float64(cfg.NrTimesteps) / float64(cf.NrTimesteps))
	fmt.Printf("\nclosed-form subgrid count vs exact plan: off by %.1f%%\n", 100*math.Abs(ratio-1))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idgbench:", err)
	os.Exit(1)
}
