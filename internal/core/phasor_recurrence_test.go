package core

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

// recurrenceTestSetup builds a pair of kernels over the same uniform
// channel comb: one using the phasor rotation recurrence, one forced
// onto the direct per-channel sincos path. Both use SincosAccurate so
// the difference between them is exactly the recurrence error.
func recurrenceTestSetup(t *testing.T, nc int) (rec, direct *Kernels) {
	t.Helper()
	freqs := make([]float64, nc)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*250e3
	}
	params := Params{
		GridSize: 256, SubgridSize: 16, ImageSize: 0.1, Frequencies: freqs,
		Sincos: xmath.SincosAccurate,
	}
	rec, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.uniformScale {
		t.Fatal("uniform channel comb not detected")
	}
	params.DisablePhasorRecurrence = true
	direct, err = NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	if direct.uniformScale {
		t.Fatal("DisablePhasorRecurrence must force the direct path")
	}
	return rec, direct
}

// recurrencePhaseBound returns the worst-case per-phasor angle error
// of the recurrence path against the direct path for a work item: the
// documented rotation bound at the configured re-sync interval, plus
// one more maxPhase*eps for reconstructing the phase affinely
// (base + c*delta) instead of as phaseIndex*scale[c] - phaseOffset.
func recurrencePhaseBound(k *Kernels, item plan.WorkItem, uvw []uvwsim.UVW) float64 {
	const eps = 0x1p-52
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	maxPhase := 0.0
	for i := range k.l {
		l, m, n := k.l[i], k.m[i], k.n[i]
		phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
		for _, c3 := range uvw {
			phaseIndex := c3.U*l + c3.V*m + c3.W*n
			for c := 0; c < item.NrChannels; c++ {
				p := math.Abs(phaseIndex*k.scale[item.Channel0+c] - phaseOffset)
				if p > maxPhase {
					maxPhase = p
				}
			}
		}
	}
	return xmath.PhasorErrorBound(xmath.DefaultPhasorResync, maxPhase) + maxPhase*eps
}

// TestGridderRecurrenceWithinBound is the kernel-level property test
// of the tentpole: over random work items the recurrence gridder
// matches the direct gridder to within the documented phasor bound
// accumulated over the item's visibilities.
func TestGridderRecurrenceWithinBound(t *testing.T) {
	const nc, nt = 16, 20
	rec, direct := recurrenceTestSetup(t, nc)
	rnd := newTestRand(41)
	for trial := 0; trial < 10; trial++ {
		item := plan.WorkItem{NrTimesteps: nt, NrChannels: nc, X0: 100, Y0: 90}
		uvw := make([]uvwsim.UVW, nt)
		for i := range uvw {
			uvw[i] = uvwsim.UVW{U: 50 * rnd(), V: 50 * rnd(), W: 5 * rnd()}
		}
		vis := make([]xmath.Matrix2, nt*nc)
		maxAmp := 0.0
		for i := range vis {
			for p := 0; p < 4; p++ {
				vis[i][p] = complex(rnd(), rnd())
				if a := cmplx.Abs(vis[i][p]); a > maxAmp {
					maxAmp = a
				}
			}
		}
		a := grid.NewSubgrid(16, item.X0, item.Y0)
		b := grid.NewSubgrid(16, item.X0, item.Y0)
		rec.GridSubgrid(item, uvw, vis, nil, nil, a)
		direct.GridSubgrid(item, uvw, vis, nil, nil, b)
		// Each of the nt*nc phasors is off by at most the phase bound,
		// rotating its visibility by at most sqrt(2)*bound in each
		// component; 2x slack for the summation rounding.
		tol := 2 * math.Sqrt2 * float64(nt*nc) * maxAmp * recurrencePhaseBound(rec, item, uvw)
		if d := a.MaxAbsDiff(b); d > tol {
			t.Fatalf("trial %d: recurrence gridder differs from direct by %g (bound %g)", trial, d, tol)
		}
	}
}

// TestDegridderRecurrenceWithinBound is the degridder analogue: each
// predicted visibility sums one phasor per pixel, so the error bound
// scales with the pixel count.
func TestDegridderRecurrenceWithinBound(t *testing.T) {
	const nc, nt = 16, 20
	rec, direct := recurrenceTestSetup(t, nc)
	rnd := newTestRand(43)
	for trial := 0; trial < 10; trial++ {
		item := plan.WorkItem{NrTimesteps: nt, NrChannels: nc, X0: 80, Y0: 120}
		uvw := make([]uvwsim.UVW, nt)
		for i := range uvw {
			uvw[i] = uvwsim.UVW{U: 50 * rnd(), V: 50 * rnd(), W: 5 * rnd()}
		}
		in := grid.NewSubgrid(16, item.X0, item.Y0)
		maxAmp := 0.0
		for c := range in.Data {
			for i := range in.Data[c] {
				in.Data[c][i] = complex(rnd(), rnd())
				if a := cmplx.Abs(in.Data[c][i]); a > maxAmp {
					maxAmp = a
				}
			}
		}
		visA := make([]xmath.Matrix2, nt*nc)
		visB := make([]xmath.Matrix2, nt*nc)
		rec.DegridSubgrid(item, in, uvw, nil, nil, visA)
		direct.DegridSubgrid(item, in, uvw, nil, nil, visB)
		npix := 16 * 16
		tol := 2 * math.Sqrt2 * float64(npix) * maxAmp * recurrencePhaseBound(rec, item, uvw)
		maxDiff := 0.0
		for i := range visA {
			for p := 0; p < 4; p++ {
				if d := cmplx.Abs(visA[i][p] - visB[i][p]); d > maxDiff {
					maxDiff = d
				}
			}
		}
		if maxDiff > tol {
			t.Fatalf("trial %d: recurrence degridder differs from direct by %g (bound %g)", trial, maxDiff, tol)
		}
	}
}

// TestRecurrenceFallbackNonUniform: a non-uniform channel comb must
// disable the recurrence at kernel construction, and the kernels must
// still agree with the reference transcription.
func TestRecurrenceFallbackNonUniform(t *testing.T) {
	freqs := []float64{150e6, 150.3e6, 150.9e6, 151.0e6, 152.2e6}
	params := Params{
		GridSize: 256, SubgridSize: 16, ImageSize: 0.1, Frequencies: freqs,
	}
	k, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}
	if k.uniformScale {
		t.Fatal("non-uniform channel comb must disable the recurrence")
	}
	if k.useRecurrence(len(freqs)) {
		t.Fatal("useRecurrence must report false for non-uniform channels")
	}
	params.DisableBatching = true
	ref, err := NewKernels(params)
	if err != nil {
		t.Fatal(err)
	}

	const nt = 7
	nc := len(freqs)
	item := plan.WorkItem{NrTimesteps: nt, NrChannels: nc, X0: 60, Y0: 140}
	rnd := newTestRand(47)
	uvw := make([]uvwsim.UVW, nt)
	for i := range uvw {
		uvw[i] = uvwsim.UVW{U: 30 * rnd(), V: 30 * rnd(), W: 3 * rnd()}
	}
	vis := make([]xmath.Matrix2, nt*nc)
	for i := range vis {
		for p := 0; p < 4; p++ {
			vis[i][p] = complex(rnd(), rnd())
		}
	}
	a := grid.NewSubgrid(16, item.X0, item.Y0)
	b := grid.NewSubgrid(16, item.X0, item.Y0)
	k.GridSubgrid(item, uvw, vis, nil, nil, a)
	ref.GridSubgrid(item, uvw, vis, nil, nil, b)
	if d := a.MaxAbsDiff(b); d > 1e-12 {
		t.Fatalf("non-uniform fallback differs from reference by %g", d)
	}
}
