//go:build !amd64

package core

// haveVectorASM is false off amd64: the generic Go kernels are the
// only implementation, the dispatch table (dispatch.go) never installs
// the vector tiles, and the stubs below are unreachable (their only
// callers sit behind haveVectorASM-gated dispatch entries, so the
// linker drops them).
const haveVectorASM = false

func rotAccQuads(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float64, nq int, ph *float64) {
	panic("core: rotAccQuads without vector kernels")
}

func conjAccQuads(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float64, nq int) {
	panic("core: conjAccQuads without vector kernels")
}

func rotQuads(phRe, phIm, dRe, dIm *float64, nq int) {
	panic("core: rotQuads without vector kernels")
}

func rotAccOcts(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph *float32) {
	panic("core: rotAccOcts without vector kernels")
}

func rotAccOctsBlk(acc, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph *float32, nt, visAdj, phAdj int) {
	panic("core: rotAccOctsBlk without vector kernels")
}

func rotAccOctsBlk2(acc0, acc1, r0, i0, r1, i1, r2, i2, r3, i3 *float32, no int, ph0, ph1 *float32, nt, visAdj, phAdj int) {
	panic("core: rotAccOctsBlk2 without vector kernels")
}

func seedOctsBlk(ph, s0, c0, ds, dc *float64, ng int) {
	panic("core: seedOctsBlk without vector kernels")
}

func conjAccOcts(out, phRe, phIm, p0r, p0i, p1r, p1i, p2r, p2i, p3r, p3i *float32, no int) {
	panic("core: conjAccOcts without vector kernels")
}

func rotOcts(phRe, phIm, dRe, dIm *float32, no int) {
	panic("core: rotOcts without vector kernels")
}
