//go:build amd64

package xmath

// cpuid executes the CPUID instruction with the given leaf/subleaf.
// Implemented in cpufeat_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the XCR0 feature mask).
// Only valid when CPUID reports OSXSAVE. Implemented in
// cpufeat_amd64.s.
func xgetbv() (eax, edx uint32)

var hasAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// The OS must have enabled XMM+YMM state saving (XCR0 bits 1 and 2)
	// or executing VEX-256 instructions faults.
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// HasAVX2FMA reports whether this CPU (and OS) supports the AVX2 and
// FMA instruction sets the hand-vectorized kernel loops in
// internal/core require. Always false off amd64.
func HasAVX2FMA() bool { return hasAVX2FMA }

// detectedSIMD is the widest tier the host supports (see SIMDTier).
var detectedSIMD = detectSIMD()

func detectSIMD() SIMDTier {
	if !hasAVX2FMA {
		return SIMDScalar
	}
	// AVX-512 tier: the foundation plus the DQ/BW/VL extensions every
	// mainstream AVX-512 part ships (leaf 7 EBX), and the OS must save
	// opmask + upper-ZMM + hi16-ZMM state (XCR0 bits 5..7) or EVEX
	// instructions fault.
	_, ebx7, _, _ := cpuid(7, 0)
	const (
		avx512fBit  = 1 << 16
		avx512dqBit = 1 << 17
		avx512bwBit = 1 << 30
		avx512vlBit = 1 << 31
		need        = avx512fBit | avx512dqBit | avx512bwBit | avx512vlBit
	)
	if ebx7&need != need {
		return SIMDAVX2
	}
	if eax, _ := xgetbv(); eax&0xe6 != 0xe6 {
		return SIMDAVX2
	}
	return SIMDAVX512
}
