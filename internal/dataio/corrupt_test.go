package dataio

import (
	"bytes"
	"fmt"
	"testing"
)

// readNoPanic runs Read, converting a panic into an error so the
// corpus sweeps below can report the offending mutation.
func readNoPanic(data []byte) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	_, _, err = Read(bytes.NewReader(data))
	return err
}

// TestTruncationAtEveryOffset: a file cut at any byte boundary must be
// rejected with an error — never a panic, never a silent success.
func TestTruncationAtEveryOffset(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		err := readNoPanic(full[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes read successfully", n, len(full))
		}
		if len(err.Error()) > 6 && err.Error()[:6] == "panic:" {
			t.Fatalf("truncation to %d bytes panicked: %v", n, err)
		}
	}
	if err := readNoPanic(full); err != nil {
		t.Fatalf("untouched file rejected: %v", err)
	}
}

// TestByteFlipAtEveryOffset: flipping any single byte must be caught,
// by a parse check for the header fields or by the checksum for the
// payload (the trailing checksum bytes are themselves covered by the
// mismatch check).
func TestByteFlipAtEveryOffset(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	mutated := make([]byte, len(full))
	for i := 0; i < len(full); i++ {
		copy(mutated, full)
		mutated[i] ^= 0xff
		err := readNoPanic(mutated)
		if err == nil {
			t.Fatalf("flip at offset %d read successfully", i)
		}
		if len(err.Error()) > 6 && err.Error()[:6] == "panic:" {
			t.Fatalf("flip at offset %d panicked: %v", i, err)
		}
	}
}

// TestGarbageInputs: adversarial byte strings (prefix-preserving
// garbage, repeated magic, zero floods) must error without panicking
// or large allocations.
func TestGarbageInputs(t *testing.T) {
	vs, freqs := sampleSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, vs, freqs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := [][]byte{
		nil,
		[]byte(magic),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte{0xff}, 4096),
		append([]byte(magic), bytes.Repeat([]byte{0xff}, 64)...),
		append([]byte(magic), bytes.Repeat([]byte{0x01}, 64)...),
		append(append([]byte{}, full[:20]...), bytes.Repeat([]byte{0x7f}, 100)...),
		bytes.Repeat(full, 2)[:len(full)+9], // valid file + trailing garbage prefix of itself
	}
	for i, c := range cases {
		err := readNoPanic(c)
		if i == len(cases)-1 {
			// Trailing garbage after a valid stream is not detectable
			// by a stream reader; only require no panic.
			if err != nil && len(err.Error()) > 6 && err.Error()[:6] == "panic:" {
				t.Fatalf("case %d panicked: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("garbage case %d read successfully", i)
		}
		if len(err.Error()) > 6 && err.Error()[:6] == "panic:" {
			t.Fatalf("garbage case %d panicked: %v", i, err)
		}
	}
}
