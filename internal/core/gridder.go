package core

import (
	"fmt"
	"math"

	"repro/internal/faulttol"
	"repro/internal/grid"
	"repro/internal/plan"
	"repro/internal/uvwsim"
	"repro/internal/xmath"
)

const twoPi = 2 * math.Pi

// GridSubgrid executes Algorithm 1 of the paper for one work item: it
// accumulates the item's visibilities onto the image-domain subgrid,
// then applies the A-term adjoint and the taper.
//
// uvw holds one coordinate per covered time step (meters); vis holds
// the covered visibilities indexed [t*item.NrChannels + c]. atermP and
// atermQ are the per-pixel station responses (nil for identity). The
// subgrid out is overwritten, including its anchor metadata.
func (k *Kernels) GridSubgrid(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid) {
	s := k.getScratch()
	k.gridSubgridScratch(item, uvw, vis, atermP, atermQ, out, s)
	k.putScratch(s)
}

// gridSubgridScratch is GridSubgrid with caller-owned scratch buffers;
// the pipeline threads one scratch per worker through it so the steady
// state allocates nothing.
func (k *Kernels) gridSubgridScratch(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, s *scratch) {
	k.checkItem(item, uvw, vis)
	out.X0, out.Y0, out.WOffset = item.X0, item.Y0, item.WOffset
	if k.params.DisableBatching {
		k.gridSubgridReference(item, uvw, vis, atermP, atermQ, out)
		return
	}
	k.gridSubgridBatched(item, uvw, vis, atermP, atermQ, out, s)
}

// phasorMinChannels is the smallest channel count for which the
// recurrence wins: it replaces nc sincos evaluations per (pixel, time
// step) with two plus nc-1 complex rotations.
const phasorMinChannels = 3

// useRecurrence reports whether the phasor rotation recurrence applies
// to a work item of nc channels.
func (k *Kernels) useRecurrence(nc int) bool {
	return k.uniformScale && nc >= phasorMinChannels
}

// checkItem validates a work item against its buffers. It panics with
// errors wrapping faulttol.ErrBadInput so that the fault-tolerant
// pipeline runner classifies the failure as deterministic bad input
// (not retried) while direct kernel callers still crash loudly.
func (k *Kernels) checkItem(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2) {
	if len(uvw) != item.NrTimesteps {
		panic(fmt.Errorf("%w: uvw length %d does not match work item (%d timesteps)",
			faulttol.ErrBadInput, len(uvw), item.NrTimesteps))
	}
	if len(vis) != item.NrVisibilities() {
		panic(fmt.Errorf("%w: visibility count %d does not match work item (%d)",
			faulttol.ErrBadInput, len(vis), item.NrVisibilities()))
	}
	if item.Channel0 < 0 || item.Channel0+item.NrChannels > len(k.scale) {
		panic(fmt.Errorf("%w: work item channels [%d, %d) out of bounds (%d kernel channels)",
			faulttol.ErrBadInput, item.Channel0, item.Channel0+item.NrChannels, len(k.scale)))
	}
}

// gridSubgridReference is the direct transcription of Algorithm 1,
// kept as the correctness reference and the "no batching" ablation.
func (k *Kernels) gridSubgridReference(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid) {
	sg := k.params.SubgridSize
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset
	for i := 0; i < sg*sg; i++ {
		l, m, n := k.l[i], k.m[i], k.n[i]
		phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
		var sum xmath.Matrix2
		for t := 0; t < item.NrTimesteps; t++ {
			c3 := uvw[t]
			phaseIndex := c3.U*l + c3.V*m + c3.W*n
			for c := 0; c < item.NrChannels; c++ {
				phase := phaseIndex*k.scale[item.Channel0+c] - phaseOffset
				sin, cos := k.sincos(phase)
				phi := complex(cos, sin)
				v := vis[t*item.NrChannels+c]
				sum[0] += phi * v[0]
				sum[1] += phi * v[1]
				sum[2] += phi * v[2]
				sum[3] += phi * v[3]
			}
		}
		k.storePixel(out, i, sum, atermP, atermQ)
	}
}

// storePixel applies the A-term adjoint (Ap^H * S * Aq) and the taper,
// then writes the pixel.
func (k *Kernels) storePixel(out *grid.Subgrid, i int, sum xmath.Matrix2, atermP, atermQ []xmath.Matrix2) {
	if atermP != nil {
		sum = atermP[i].Hermitian().Mul(sum).Mul(atermQ[i])
	}
	tp := complex(k.taper[i], 0)
	out.Data[0][i] = sum[0] * tp
	out.Data[1][i] = sum[1] * tp
	out.Data[2][i] = sum[2] * tp
	out.Data[3][i] = sum[3] * tp
}

// gridSubgridBatched implements the optimized CPU strategy of
// Section V-B: the visibilities are transposed once into planar
// real/imaginary arrays, the sine/cosine evaluations are batched per
// channel block (Listing 1's SIMD reduction becomes a tight scalar
// FMA loop over channels), and each pixel accumulates in registers.
// On uniformly spaced channels the per-channel sincos batch collapses
// to two evaluations plus the phasor rotation recurrence (the phase is
// affine in the channel index; see xmath.PhasorRotator).
func (k *Kernels) gridSubgridBatched(item plan.WorkItem, uvw []uvwsim.UVW, vis []xmath.Matrix2, atermP, atermQ []xmath.Matrix2, out *grid.Subgrid, s *scratch) {
	sg := k.params.SubgridSize
	nt, nc := item.NrTimesteps, item.NrChannels
	uOff, vOff := k.uvOffset(item.X0, item.Y0)
	wOff := item.WOffset

	// Transpose and split the visibilities (optimization (1) of
	// Section V-B-a).
	var re, im [4][]float64
	backing := growF(&s.planar, 8*nt*nc)
	for p := 0; p < 4; p++ {
		re[p] = backing[(2*p)*nt*nc : (2*p+1)*nt*nc]
		im[p] = backing[(2*p+1)*nt*nc : (2*p+2)*nt*nc]
	}
	for j, v := range vis {
		re[0][j], im[0][j] = real(v[0]), imag(v[0])
		re[1][j], im[1][j] = real(v[1]), imag(v[1])
		re[2][j], im[2][j] = real(v[2]), imag(v[2])
		re[3][j], im[3][j] = real(v[3]), imag(v[3])
	}
	scale := k.scale[item.Channel0 : item.Channel0+nc]

	phRe := growF(&s.phRe, nc)
	phIm := growF(&s.phIm, nc)
	useRec := k.useRecurrence(nc)
	// "Runtime compilation" analogue: pick the channel-reduction
	// routine specialized for this item's channel count.
	reduce := reducerFor(nc)
	acc := &s.acc
	for i := 0; i < sg*sg; i++ {
		l, m, n := k.l[i], k.m[i], k.n[i]
		phaseOffset := twoPi * (uOff*l + vOff*m + wOff*n)
		*acc = [8]float64{}
		for t := 0; t < nt; t++ {
			c3 := uvw[t]
			phaseIndex := c3.U*l + c3.V*m + c3.W*n
			// Batched sine/cosine evaluation over the channels
			// (optimization (2)).
			if useRec {
				// The channel phase step phaseIndex*dscale is constant
				// for this (pixel, time step): rotate instead of
				// re-evaluating.
				k.rotator.Fill(phIm, phRe,
					phaseIndex*scale[0]-phaseOffset, phaseIndex*k.dscale)
			} else {
				for c := 0; c < nc; c++ {
					phIm[c], phRe[c] = k.sincos(phaseIndex*scale[c] - phaseOffset)
				}
			}
			// Channel reduction (Listing 1).
			reduce(acc, phRe, phIm, &re, &im, t*nc, nc)
		}
		sum := xmath.Matrix2{
			complex(acc[0], acc[1]), complex(acc[2], acc[3]),
			complex(acc[4], acc[5]), complex(acc[6], acc[7]),
		}
		k.storePixel(out, i, sum, atermP, atermQ)
	}
}
