package repro

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/distrib"
)

// Distributed multi-process imaging: the facade side of
// internal/distrib. The distrib package owns partition math, the
// reduction wire protocol and the coordinator, but never imports the
// facade; RunDistribWorker and RunDistributed are the adapters that
// turn its WorkerSpecs into observation builds and streamed gridding
// passes — in-process goroutine workers by default, exec'd
// cmd/idgworker processes under cmd/idgdistrib.

// Distrib re-exports, so callers configure distributed runs without
// importing internal packages.
type (
	// DistribAxis selects the partition axis (rows or W-planes).
	DistribAxis = distrib.Axis
	// DistribWorkerSpec identifies one worker attempt (index, axis,
	// resume flag, coordinator address).
	DistribWorkerSpec = distrib.WorkerSpec
	// DistribLauncher starts worker attempts for the coordinator.
	DistribLauncher = distrib.Launcher
	// DistribLauncherFunc adapts a function to DistribLauncher.
	DistribLauncherFunc = distrib.LauncherFunc
	// DistribSummary reports restarts, discarded streams and all
	// partial fingerprints of a distributed run.
	DistribSummary = distrib.Summary
	// DistribFingerprint is the internal grid fingerprint partials
	// are verified with.
	DistribFingerprint = distrib.Fingerprint
)

// Partition axes.
const (
	// DistribRows partitions by uv row band (subgrid center row).
	DistribRows = distrib.AxisRows
	// DistribWPlanes partitions by W-layer index modulo workers.
	DistribWPlanes = distrib.AxisWPlanes
)

// ParseDistribAxis converts the CLI spellings "rows" / "wplanes".
func ParseDistribAxis(s string) (DistribAxis, error) { return distrib.ParseAxis(s) }

// PartitionPlan returns the sub-plan worker index owns under the
// axis (order-preserving; see distrib.FilterPlan).
func (o *Observation) PartitionPlan(axis DistribAxis, workers, index int) (*Plan, error) {
	return distrib.FilterPlan(o.Plan, axis, workers, index)
}

// StandardSkyModel is the deterministic point-source model the
// repository's data generators share: up to four sources at fixed
// pixel offsets, scaled to o's field of view. Every process that
// builds the same ObservationConfig and source count predicts the
// same visibility bits — which is what lets distributed workers fill
// their data independently yet grid a partition of one observation.
func StandardSkyModel(o *Observation, sources int) SkyModel {
	pix := o.ImageSize / float64(o.Config.GridSize)
	offsets := [][3]float64{{40, -24, 1.0}, {-72, 52, 0.6}, {16, 88, 0.4}, {-30, -70, 0.3}}
	model := make(SkyModel, 0, len(offsets))
	for i := 0; i < sources && i < len(offsets); i++ {
		model = append(model, PointSource{
			L: offsets[i][0] * pix, M: offsets[i][1] * pix, I: offsets[i][2],
		})
	}
	return model
}

// DistribWorkerOptions configures one worker process (or in-process
// worker goroutine) of a distributed run.
type DistribWorkerOptions struct {
	// Config is the full observation every worker must agree on.
	// Its CheckpointDir/CheckpointEvery are overridden per worker:
	// CheckpointDir is replaced by this worker's private directory
	// (checkpoints of different partitions must never mix).
	Config ObservationConfig
	// Model fills the worker's visibilities (every worker predicts
	// the full visibility set; gridding touches only its partition).
	Model SkyModel
	// Workers/Index/Axis assign the partition.
	Workers int
	Index   int
	Axis    DistribAxis
	// Resume continues from CheckpointDir instead of starting fresh.
	Resume bool
	// CoordinatorAddr is where the partial grid is delivered.
	CoordinatorAddr string
	// CheckpointDir is this worker's private checkpoint directory;
	// empty disables checkpointing (and Resume degrades to a fresh
	// run).
	CheckpointDir string
	// Fault is the per-item failure policy of the gridding pass.
	Fault FaultConfig
	// CrashHook, when set, is installed as the checkpoint hook — the
	// crash-injection seam (see faultinject.CrashHook).
	CrashHook CheckpointHook
	// ChunkItems overrides the streamed scheduler's work items per
	// chunk (<= 0: the scheduler default). Small partitions need small
	// chunks for checkpoints — and kills — to land mid-stream.
	ChunkItems int
	// ReferenceKernels runs the reference (unbatched) kernel path, so
	// the partial's bits do not depend on host FMA/AVX2 dispatch — the
	// setting under which a 1-worker distributed run reproduces the
	// committed golden grid hash exactly.
	ReferenceKernels bool
	// MaxFramePayload caps reduction frames (<= 0: server default).
	MaxFramePayload int
}

// RunDistribWorker executes one worker attempt end to end: build the
// observation, filter the plan to this worker's partition, fill the
// visibilities from the model, grid the partition through the
// streamed scheduler (resuming from the worker's checkpoint when
// asked), and deliver the partial grid to the coordinator.
//
// Bit-reproducibility of a killed-and-resumed worker follows the
// single-process rule: with Config.Workers <= 1 and GridShards <= 1
// the resumed partial is bit-identical to an uninterrupted one, so
// the whole distributed run (fixed reduction tree) hashes identically
// with and without kills.
func RunDistribWorker(ctx context.Context, opt DistribWorkerOptions) error {
	if opt.Workers < 1 || opt.Index < 0 || opt.Index >= opt.Workers {
		return fmt.Errorf("repro: worker %d of %d is not a valid assignment", opt.Index, opt.Workers)
	}
	cfg := opt.Config
	cfg.CheckpointDir = opt.CheckpointDir
	if cfg.CheckpointDir == "" {
		cfg.CheckpointEvery = 0
	}
	o, err := cfg.BuildPlan()
	if err != nil {
		return err
	}
	sub, err := distrib.FilterPlan(o.Plan, opt.Axis, opt.Workers, opt.Index)
	if err != nil {
		return err
	}
	o.Plan = sub
	if opt.CrashHook != nil || opt.ChunkItems > 0 || opt.ReferenceKernels {
		p := o.Kernels.Params()
		if opt.CrashHook != nil {
			p.CheckpointHook = opt.CrashHook
		}
		if opt.ChunkItems > 0 {
			p.StreamChunkItems = opt.ChunkItems
		}
		if opt.ReferenceKernels {
			p.DisableBatching = true
		}
		k, err := NewKernels(p)
		if err != nil {
			return err
		}
		o.Kernels = k
	}
	// Plan-scoped fill: the worker predicts only its partition's
	// samples (bit-identical to a full fill for everything the
	// partition grids), so fill cost scales down with the partition.
	if err := o.FillFromModelPlan(opt.Model); err != nil {
		return err
	}

	var g *Grid
	if opt.Resume && opt.CheckpointDir != "" {
		g, _, _, err = o.ResumeStreamed(ctx, nil, opt.Fault)
	} else {
		g, _, _, err = o.GridAllStreamed(ctx, nil, opt.Fault)
	}
	if err != nil {
		return err
	}
	spec := DistribWorkerSpec{
		Index: opt.Index, Workers: opt.Workers, Axis: opt.Axis,
		Resume: opt.Resume, CoordinatorAddr: opt.CoordinatorAddr,
	}
	return distrib.Deliver(ctx, spec, checkpoint.PlanFingerprint(o.Plan), g, opt.MaxFramePayload)
}

// DistribOptions configures a whole distributed run.
type DistribOptions struct {
	// Config is the observation; see DistribWorkerOptions.Config.
	Config ObservationConfig
	// Model fills every worker's visibilities.
	Model SkyModel
	// Workers is the partition count; Axis the partition axis.
	Workers int
	Axis    DistribAxis
	// CheckpointRoot, when set, gives worker i the private checkpoint
	// directory CheckpointRoot/workerNN; empty disables checkpointing
	// (and with it meaningful restarts).
	CheckpointRoot string
	// MaxRestarts bounds per-worker relaunches after failures.
	MaxRestarts int
	// ChunkItems overrides each worker's streamed chunk size
	// (<= 0: the scheduler default).
	ChunkItems int
	// ReferenceKernels runs every worker on the reference (unbatched)
	// kernel path; see DistribWorkerOptions.ReferenceKernels.
	ReferenceKernels bool
	// MaxFramePayload caps reduction frames (<= 0: server default).
	MaxFramePayload int
	// Fault is the per-item failure policy inside each worker.
	Fault FaultConfig
	// Launcher overrides how worker attempts run. Nil runs each
	// attempt as an in-process goroutine via RunDistribWorker —
	// the single-binary harness the conformance tests use.
	// cmd/idgdistrib supplies an exec launcher instead.
	Launcher DistribLauncher
	// WorkerHook, when set (and Launcher is nil), edits each
	// in-process attempt's options before it starts — the seam the
	// chaos suite uses to install crash hooks on chosen attempts.
	WorkerHook func(*DistribWorkerOptions, DistribWorkerSpec)
	// Logf receives coordinator progress notes.
	Logf func(format string, args ...any)
}

// RunDistributed runs one full distributed imaging pass: it builds
// the plan once to pin every worker's expected sub-plan fingerprint,
// starts the coordinator, launches the workers, restarts failures
// with Resume set, and returns the tree-reduced grid and the run
// summary.
func RunDistributed(ctx context.Context, opt DistribOptions) (*Grid, *DistribSummary, error) {
	if opt.Workers < 1 {
		return nil, nil, fmt.Errorf("repro: need at least one distrib worker, got %d", opt.Workers)
	}
	planner := opt.Config
	planner.CheckpointDir, planner.CheckpointEvery = "", 0
	o, err := planner.BuildPlan()
	if err != nil {
		return nil, nil, err
	}
	sums := make([][32]byte, opt.Workers)
	for i := range sums {
		sub, err := distrib.FilterPlan(o.Plan, opt.Axis, opt.Workers, i)
		if err != nil {
			return nil, nil, err
		}
		sums[i] = checkpoint.PlanFingerprint(sub)
	}
	co, err := distrib.New(distrib.Config{
		Workers:        opt.Workers,
		Axis:           opt.Axis,
		GridSize:       opt.Config.GridSize,
		ExpectPlanSums: sums,
		MaxPayload:     opt.MaxFramePayload,
		MaxRestarts:    opt.MaxRestarts,
		Logf:           opt.Logf,
	})
	if err != nil {
		return nil, nil, err
	}
	launcher := opt.Launcher
	if launcher == nil {
		launcher = DistribLauncherFunc(func(ctx context.Context, spec DistribWorkerSpec) (err error) {
			// A crash hook kills in-process workers by panicking; the
			// goroutine harness turns that into the launcher error an
			// exec'd worker's non-zero exit would be.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("worker %d killed: %v", spec.Index, r)
				}
			}()
			w := DistribWorkerOptions{
				Config:           opt.Config,
				Model:            opt.Model,
				Workers:          spec.Workers,
				Index:            spec.Index,
				Axis:             spec.Axis,
				Resume:           spec.Resume,
				CoordinatorAddr:  spec.CoordinatorAddr,
				Fault:            opt.Fault,
				ChunkItems:       opt.ChunkItems,
				ReferenceKernels: opt.ReferenceKernels,
				MaxFramePayload:  opt.MaxFramePayload,
			}
			if opt.CheckpointRoot != "" {
				w.CheckpointDir = filepath.Join(opt.CheckpointRoot, fmt.Sprintf("worker%02d", spec.Index))
			}
			if opt.WorkerHook != nil {
				opt.WorkerHook(&w, spec)
			}
			return RunDistribWorker(ctx, w)
		})
	}
	g, sum, err := co.Run(ctx, launcher)
	if err != nil {
		return nil, nil, err
	}
	return g, sum, nil
}

// DistribFingerprintOf exposes the internal fingerprint for
// conformance tests comparing partials against facade hashes.
func DistribFingerprintOf(g *Grid) DistribFingerprint { return distrib.FingerprintOf(g) }
