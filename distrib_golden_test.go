package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/distrib"
)

// Distributed <-> serial golden equivalence: the conformance core of
// the distributed imaging layer. A 1-worker distributed run must be
// bit-identical to the single-process golden grid (the sub-plan is
// the whole plan in order, the worker grids serially, and the
// reduction of one partial is that partial); multi-worker runs
// reassociate the floating-point accumulation across partials, so
// they must agree to ~1 ulp per cell (<= 1e-12 of the peak).

// distribGoldenModel is goldenObservation's sky model, derived from
// the config alone so every in-process worker predicts it
// identically.
func distribGoldenModel(o *Observation) SkyModel {
	pix := o.ImageSize / float64(o.Config.GridSize)
	return SkyModel{
		{L: 20 * pix, M: -12 * pix, I: 1},
		{L: -36 * pix, M: 26 * pix, I: 0.5},
		{L: 8 * pix, M: 44 * pix, I: 0.25},
	}
}

// distribGoldenConfig is goldenObservation's configuration (see
// golden_test.go); the distributed options run the reference kernel
// path so worker bits match the committed golden file's.
func distribGoldenConfig() ObservationConfig {
	return ObservationConfig{
		NrStations:     10,
		NrTimesteps:    48,
		NrChannels:     4,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       256,
		SubgridSize:    16,
		KernelSupport:  4,
		GridMargin:     16,
		ATermInterval:  16,
		Workers:        1,
	}
}

// distribGoldenOptions bundles the deterministic distributed setup.
func distribGoldenOptions(t *testing.T, workers int, axis DistribAxis) DistribOptions {
	t.Helper()
	cfg := distribGoldenConfig()
	o, err := cfg.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	return DistribOptions{
		Config:           cfg,
		Model:            distribGoldenModel(o),
		Workers:          workers,
		Axis:             axis,
		ReferenceKernels: true,
	}
}

// distribSerialReference grids the same observation single-process
// through the streamed scheduler (the goldenObservation path).
func distribSerialReference(t *testing.T) *Grid {
	t.Helper()
	o := goldenObservation(t)
	g, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDistribSingleWorkerGolden pins the strongest claim: one
// distributed worker, on either partition axis, produces the
// committed golden grid hash bit-for-bit — the whole
// partition/wire/reduction stack adds and removes nothing.
func TestDistribSingleWorkerGolden(t *testing.T) {
	want := goldenSHA(t)
	for _, axis := range []DistribAxis{DistribRows, DistribWPlanes} {
		t.Run(axis.String(), func(t *testing.T) {
			g, sum, err := RunDistributed(context.Background(), distribGoldenOptions(t, 1, axis))
			if err != nil {
				t.Fatal(err)
			}
			if got := FingerprintGrid(g).SHA256; got != want {
				t.Errorf("1-worker distributed hash %s, want committed golden %s", got, want)
			}
			if sum.Restarts != 0 || sum.Discarded != 0 {
				t.Errorf("clean run reported restarts=%d discarded=%d", sum.Restarts, sum.Discarded)
			}
		})
	}
}

// TestDistribEquivalenceMatrix is the acceptance matrix of the issue:
// 2, 4 and 8 workers, both partition axes, each against the serial
// single-process grid to <= 1e-12 of the peak magnitude.
func TestDistribEquivalenceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("six full distributed passes in -short mode")
	}
	ref := distribSerialReference(t)
	peak := FingerprintGrid(ref).PeakAbs
	refNonzero := FingerprintGrid(ref).Nonzero
	for _, axis := range []DistribAxis{DistribRows, DistribWPlanes} {
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", axis, workers), func(t *testing.T) {
				g, sum, err := RunDistributed(context.Background(), distribGoldenOptions(t, workers, axis))
				if err != nil {
					t.Fatal(err)
				}
				if d := g.MaxAbsDiff(ref); d > 1e-12*peak {
					t.Errorf("distributed grid differs from serial by %g (tolerance %g)", d, 1e-12*peak)
				}
				if got := FingerprintGrid(g).Nonzero; got != refNonzero {
					t.Errorf("distributed grid has %d nonzero cells, serial %d", got, refNonzero)
				}
				if len(sum.WorkerFingerprints) != workers {
					t.Errorf("summary holds %d fingerprints for %d workers", len(sum.WorkerFingerprints), workers)
				}
			})
		}
	}
}

// TestDistribWPlanesPartitionNontrivial guards the W-axis tests
// against vacuity: with W-stacking enabled, the plan must actually
// spread items over several W-layers, and the partitioned run must
// still match the serial one.
func TestDistribWPlanesPartitionNontrivial(t *testing.T) {
	cfg := distribGoldenConfig()
	cfg.WStepLambda = 40
	o, err := cfg.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	planes := map[int]bool{}
	for i := range o.Plan.Items {
		planes[o.Plan.Items[i].WPlane] = true
	}
	if len(planes) < 2 {
		t.Skipf("w-step 40 yields %d plane(s) on this layout; cannot exercise the W axis", len(planes))
	}
	model := distribGoldenModel(o)
	if err := o.FillFromModel(model); err != nil {
		t.Fatal(err)
	}
	ref, _, _, err := o.GridAllStreamed(context.Background(), nil, FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := RunDistributed(context.Background(), DistribOptions{
		Config: cfg, Model: model, Workers: 3, Axis: DistribWPlanes,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak := FingerprintGrid(ref).PeakAbs
	if d := g.MaxAbsDiff(ref); d > 1e-12*peak {
		t.Errorf("W-partitioned grid differs from serial by %g (peak %g, %d planes)", d, peak, len(planes))
	}
}

// TestDistribPartitionPlanFacade covers the facade partition entry
// point against the internal one.
func TestDistribPartitionPlanFacade(t *testing.T) {
	cfg := distribGoldenConfig()
	o, err := cfg.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < 3; w++ {
		sub, err := o.PartitionPlan(DistribRows, 3, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sub.Items {
			if got := distrib.ItemOwner(&sub.Items[i], distrib.AxisRows, cfg.GridSize, cfg.SubgridSize, 3); got != w {
				t.Fatalf("item in worker %d's sub-plan owned by %d", w, got)
			}
		}
		total += len(sub.Items)
	}
	if total != len(o.Plan.Items) {
		t.Fatalf("partitions cover %d of %d items", total, len(o.Plan.Items))
	}
}
