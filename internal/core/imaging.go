package core

import (
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/sky"
	"repro/internal/taper"
)

// GridToImage converts a uv grid to a sky image (per correlation) with
// the centered inverse FFT — the "inverse FFT" box of Fig. 2. The
// grid is left untouched; the returned image is in the same 4-plane
// layout. Workers <= 0 uses GOMAXPROCS.
func GridToImage(g *grid.Grid, workers int) *grid.Grid {
	img := g.Clone()
	p := fft.CachedPlan2D(g.N, g.N)
	for c := 0; c < grid.NrCorrelations; c++ {
		p.InverseCenteredParallel(img.Data[c], workers)
	}
	return img
}

// ImageToGrid converts a sky image to a uv grid with the centered
// forward FFT — the "FFT" box on the predict side of Fig. 2.
func ImageToGrid(img *grid.Grid, workers int) *grid.Grid {
	g := img.Clone()
	p := fft.CachedPlan2D(img.N, img.N)
	for c := 0; c < grid.NrCorrelations; c++ {
		p.ForwardCenteredParallel(g.Data[c], workers)
	}
	return g
}

// TaperCorrection returns the image-domain correction map for the
// kernels' taper, evaluated at full image resolution: dividing the
// dirty image by the taper undoes the subgrid windowing (the "simple
// correction" in the paper's gridding definition). Pixels where the
// taper falls below 1e-4 of its peak are blanked.
func (k *Kernels) TaperCorrection(n int) []float64 {
	tf := k.params.Taper
	if tf == nil {
		tf = taper.Spheroidal
	}
	w := taper.Window2D(n, tf)
	peak := w[(n/2)*n+n/2]
	return taper.CorrectionMap(w, 1e-4*peak)
}

// ApplyTaperCorrection multiplies every correlation plane of the image
// by the correction map in place.
func ApplyTaperCorrection(img *grid.Grid, corr []float64) {
	if len(corr) != img.N*img.N {
		panic("core: correction map size mismatch")
	}
	for c := 0; c < grid.NrCorrelations; c++ {
		for i, v := range img.Data[c] {
			img.Data[c][i] = v * complex(corr[i], 0)
		}
	}
}

// ScaleImage multiplies all planes by s, e.g. 1/totalWeight to
// normalize a dirty image by the number of gridded visibilities.
func ScaleImage(img *grid.Grid, s float64) {
	c := complex(s, 0)
	for p := 0; p < grid.NrCorrelations; p++ {
		for i := range img.Data[p] {
			img.Data[p][i] *= c
		}
	}
}

// ApplyWScreen multiplies the image by exp(+sign * 2*pi*i * w * n(l,m))
// for the given w offset in wavelengths; this is the per-layer
// correction used by W-stacking. imageSize is the field of view of the
// image.
func ApplyWScreen(img *grid.Grid, imageSize, w float64, sign float64) {
	n := img.N
	pixel := imageSize / float64(n)
	for y := 0; y < n; y++ {
		mv := float64(y-n/2) * pixel
		for x := 0; x < n; x++ {
			lv := float64(x-n/2) * pixel
			phase := sign * twoPi * w * sky.N(lv, mv)
			sin, cos := math.Sincos(phase)
			ph := complex(cos, sin)
			i := y*n + x
			for c := 0; c < grid.NrCorrelations; c++ {
				img.Data[c][i] *= ph
			}
		}
	}
}
