package repro

import (
	"context"
	"fmt"

	"repro/internal/grid"
)

// Sharded-grid re-exports: the row-band-partitioned uv-grid accessor
// behind the streaming gridding pipeline. Most callers only set
// ObservationConfig.GridShards / MaxInflightChunks and never touch
// these types; they are exported for tests and for callers that drive
// the sharded adder/splitter directly.

// ShardedGrid partitions a uv-grid into independently locked row
// bands so concurrent adders and splitters contend only on shared
// bands; see internal/grid.Sharded.
type ShardedGrid = grid.Sharded

// NewShardedGrid wraps g in a sharded accessor with the given number
// of row bands (clamped to [1, GridSize]).
func NewShardedGrid(g *Grid, shards int) *ShardedGrid { return grid.NewSharded(g, shards) }

// GridAllStreamed grids every visibility through the sharded
// streaming scheduler onto a fresh grid, regardless of the
// configuration's GridShards/MaxInflightChunks opt-in, and returns the
// grid with the stage times and the fault report. The sharded grid's
// shard count follows ObservationConfig.GridShards (default: one
// shard per worker). With ObservationConfig.CheckpointDir set the
// pass writes durable snapshots as it goes; see
// Observation.ResumeStreamed for continuing an interrupted pass.
//
// Cancellation: when ctx is canceled mid-pass the returned error
// matches errors.Is(err, ErrCanceled) (and the context's own
// sentinel) even when the cancellation surfaced inside a retry layer.
// The returned grid is still the partially filled grid: it holds
// exactly the chunks whose add stage completed — every value finite
// and correctly accumulated, but covering only part of the plan — so
// it is suitable for inspection or checkpointing, not for imaging.
func (o *Observation) GridAllStreamed(ctx context.Context, prov ATermProvider, ft FaultConfig) (*Grid, StageTimes, *FaultReport, error) {
	if o.Vis == nil {
		return nil, StageTimes{}, nil, fmt.Errorf("repro: visibilities not allocated")
	}
	g := grid.NewGrid(o.Config.GridSize)
	sh := o.Kernels.NewShardedGrid(g)
	times, rep, err := o.Kernels.GridVisibilitiesStreamed(ctx, o.Plan, o.Vis, prov, sh, ft)
	return g, times, rep, err
}
