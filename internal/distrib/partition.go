// Package distrib distributes one imaging pass across N worker
// processes: the execution plan is partitioned along one of two axes
// (uv row bands or W-layers), every worker runs the streamed chunk
// scheduler over its own partition — with its own checkpoint
// directory, so a killed worker resumes bit-identically — and the
// partial grids are merged by a binary tree reduction, transported
// over the length-prefixed CRC-64 frame format of internal/server.
//
// The package owns the partition math, the reduction wire frames, the
// tree reduction and the coordinator; the gridding itself is injected
// through the Launcher interface, which the facade implements on
// Observation (in-process goroutine workers) and cmd/idgdistrib
// implements by exec'ing cmd/idgworker.
package distrib

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/plan"
)

// Axis selects the partition axis of a distributed run.
type Axis int

const (
	// AxisRows partitions work items by the uv row band holding their
	// subgrid's center row — the same balanced row split the sharded
	// adder uses, extended across process boundaries. Subgrids overlap
	// band edges, so partial grids overlap by at most a subgrid height
	// and the reduction adds the overlap.
	AxisRows Axis = iota
	// AxisWPlanes partitions work items by W-layer index modulo the
	// worker count — the natural axis when W-stacking is on, since a
	// layer's subgrids share their W-screen work.
	AxisWPlanes
)

// String names the axis the way the CLI flags spell it.
func (a Axis) String() string {
	switch a {
	case AxisRows:
		return "rows"
	case AxisWPlanes:
		return "wplanes"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// ParseAxis converts "rows" or "wplanes".
func ParseAxis(s string) (Axis, error) {
	switch s {
	case "rows":
		return AxisRows, nil
	case "wplanes":
		return AxisWPlanes, nil
	default:
		return 0, fmt.Errorf("distrib: unknown partition axis %q (want rows or wplanes)", s)
	}
}

// RowBounds returns the balanced partition of gridSize rows across
// workers: workers+1 boundaries where worker i owns rows
// [bounds[i], bounds[i+1]). It is grid.ShardBounds — the distributed
// row partition is the sharded adder's band split, one process per
// band instead of one lock. Workers beyond gridSize own empty bands.
func RowBounds(gridSize, workers int) []int {
	return grid.ShardBounds(gridSize, workers)
}

// RowOwner returns the worker owning grid row in a RowBounds
// partition, computed in closed form: the first gridSize%workers
// bands carry one extra row. Every row of [0, gridSize) has exactly
// one owner and the owners cover [0, min(workers, gridSize)).
func RowOwner(gridSize, workers, row int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > gridSize {
		workers = gridSize
	}
	base, rem := gridSize/workers, gridSize%workers
	wide := rem * (base + 1) // rows held by the widened bands
	if row < wide {
		return row / (base + 1)
	}
	return rem + (row-wide)/base
}

// WPlaneOwner returns the worker owning a W-layer. Plane indices are
// signed (plan.Plan rounds w/WStepLambda to the nearest integer), so
// the mapping is the non-negative residue of plane mod workers.
func WPlaneOwner(workers, plane int) int {
	if workers < 1 {
		workers = 1
	}
	m := plane % workers
	if m < 0 {
		m += workers
	}
	return m
}

// ItemOwner returns the worker owning one work item under the given
// axis. For AxisRows the item belongs to the band holding its
// subgrid's center row; for AxisWPlanes to its W-layer's owner.
func ItemOwner(it *plan.WorkItem, axis Axis, gridSize, subgridSize, workers int) int {
	switch axis {
	case AxisWPlanes:
		return WPlaneOwner(workers, it.WPlane)
	default:
		return RowOwner(gridSize, workers, it.Y0+subgridSize/2)
	}
}

// FilterPlan returns the sub-plan of the items worker index owns
// under the axis, preserving plan order — so a single worker's
// streamed pass accumulates its partition in exactly the order the
// serial pipeline would have, and the one-worker distributed run is
// bit-identical to the serial run. The sub-plan shares the parent's
// Config (and carries the full observation's DroppedVisibilities
// count, which is partition-independent).
func FilterPlan(p *plan.Plan, axis Axis, workers, index int) (*plan.Plan, error) {
	if workers < 1 {
		return nil, fmt.Errorf("distrib: need at least one worker, got %d", workers)
	}
	if index < 0 || index >= workers {
		return nil, fmt.Errorf("distrib: worker index %d outside [0, %d)", index, workers)
	}
	sub := &plan.Plan{Config: p.Config, DroppedVisibilities: p.DroppedVisibilities}
	for i := range p.Items {
		if ItemOwner(&p.Items[i], axis, p.GridSize, p.SubgridSize, workers) == index {
			sub.Items = append(sub.Items, p.Items[i])
		}
	}
	return sub, nil
}
