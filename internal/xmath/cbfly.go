package xmath

// Complex radix-4 butterfly helpers for the internal/fft engine. The
// fused butterfly merges two consecutive radix-2 Cooley-Tukey stages
// (half sizes h and 2h over a 4h block): with w1 = W_2h^t, w2 = W_4h^t
// and w3 = -i*w2 (exact: negate + swap, no rounding),
//
//	tb = w1*b         td = w1*d
//	a1 = a + tb       b1 = a - tb
//	c1 = c + td       d1 = c - td
//	tc = w2*c1        te = w3*d1
//	a' = a1 + tc      b' = b1 + te
//	c' = a1 - tc      d' = b1 - te
//
// which costs 3 complex multiplies per 4 outputs instead of radix-2's
// 4, and reads each element once per fused stage instead of twice.
//
// The AVX2 paths multiply complexes with two duplicated-element
// multiplies and VADDSUBPD — no FMA — so every product and sum is the
// same IEEE operation the Go scalar code performs and the vector
// results are bitwise identical to the fallback (the same convention
// as cvt_amd64.s / the sincos kernels).

// r4BflyScalar applies the fused butterfly to one element quad.
func r4BflyScalar(a, b, c, d, w1, w2 complex128) (oa, ob, oc, od complex128) {
	tb := w1 * b
	td := w1 * d
	a1, b1 := a+tb, a-tb
	c1, d1 := c+td, c-td
	tc := w2 * c1
	w3 := complex(imag(w2), -real(w2)) // -i*w2, exact
	te := w3 * d1
	return a1 + tc, b1 + te, a1 - tc, b1 - te
}

// r4BflyInvScalar is the backward-direction butterfly: the caller
// passes conjugated w1/w2 tables and the fused quarter-turn factor
// conjugates too, w3 = +i*w2 (exact: negate + swap).
func r4BflyInvScalar(a, b, c, d, w1, w2 complex128) (oa, ob, oc, od complex128) {
	tb := w1 * b
	td := w1 * d
	a1, b1 := a+tb, a-tb
	c1, d1 := c+td, c-td
	tc := w2 * c1
	w3 := complex(-imag(w2), real(w2)) // +i*w2, exact
	te := w3 * d1
	return a1 + tc, b1 + te, a1 - tc, b1 - te
}

// r4StageTwScalar runs a whole fused stage over contiguous data:
// len(x) must be a multiple of 4h and len(tw1) == len(tw2) == h.
func r4StageTwScalar(x []complex128, h int, tw1, tw2 []complex128) {
	n := len(x)
	for base := 0; base < n; base += 4 * h {
		q := x[base : base+4*h]
		for j := 0; j < h; j++ {
			q[j], q[j+h], q[j+2*h], q[j+3*h] =
				r4BflyScalar(q[j], q[j+h], q[j+2*h], q[j+3*h], tw1[j], tw2[j])
		}
	}
}

func r4StageTwInvScalar(x []complex128, h int, tw1, tw2 []complex128) {
	n := len(x)
	for base := 0; base < n; base += 4 * h {
		q := x[base : base+4*h]
		for j := 0; j < h; j++ {
			q[j], q[j+h], q[j+2*h], q[j+3*h] =
				r4BflyInvScalar(q[j], q[j+h], q[j+2*h], q[j+3*h], tw1[j], tw2[j])
		}
	}
}

// r4ColsScalar applies one broadcast-twiddle butterfly across B
// parallel lanes (B = len(a); the 2-D column pass runs B adjacent
// columns per inner loop on an interleaved tile).
func r4ColsScalar(a, b, c, d []complex128, w1, w2 complex128) {
	for i := range a {
		a[i], b[i], c[i], d[i] = r4BflyScalar(a[i], b[i], c[i], d[i], w1, w2)
	}
}

// R4StageTwAt runs a fused radix-4 stage with per-butterfly twiddle
// tables over contiguous row-major data, dispatching on tier. len(x)
// must be a positive multiple of 4h; tw1/tw2 hold h twiddles each.
// inverse selects the backward butterfly (conjugated tables, +i fused
// factor).
func R4StageTwAt(tier SIMDTier, x []complex128, h int, tw1, tw2 []complex128, inverse bool) {
	if hasCBflyASM && tier >= SIMDAVX2 && h >= 2 && h%2 == 0 {
		if inverse {
			r4StageTwPairsInv(&x[0], len(x), h, &tw1[0], &tw2[0])
		} else {
			r4StageTwPairs(&x[0], len(x), h, &tw1[0], &tw2[0])
		}
		return
	}
	if inverse {
		r4StageTwInvScalar(x, h, tw1, tw2)
	} else {
		r4StageTwScalar(x, h, tw1, tw2)
	}
}

// R4ColsAt runs one broadcast-twiddle butterfly across the lanes of
// four equal-length slices, dispatching on tier. Lanes beyond the
// widest vector multiple finish on the bit-identical scalar loop.
func R4ColsAt(tier SIMDTier, a, b, c, d []complex128, w1, w2 complex128, inverse bool) {
	i := 0
	if hasCBflyASM && tier >= SIMDAVX2 {
		if np := len(a) / 2; np > 0 {
			if inverse {
				r4ColsPairsInv(&a[0], &b[0], &c[0], &d[0], np, w1, w2)
			} else {
				r4ColsPairs(&a[0], &b[0], &c[0], &d[0], np, w1, w2)
			}
			i = 2 * np
		}
	}
	if inverse {
		for ; i < len(a); i++ {
			a[i], b[i], c[i], d[i] = r4BflyInvScalar(a[i], b[i], c[i], d[i], w1, w2)
		}
	} else {
		r4ColsScalar(a[i:], b[i:], c[i:], d[i:], w1, w2)
	}
}

// AddSubLanes applies the twiddle-free radix-2 butterfly lane-wise:
// a[i], b[i] = a[i]+b[i], a[i]-b[i]. It is the leading stage of
// odd-log2 transforms; adds are order-independent so no vector form is
// needed for bitwise parity — the compiler's scalar loop is fine.
func AddSubLanes(a, b []complex128) {
	for i := range a {
		ai, bi := a[i], b[i]
		a[i], b[i] = ai+bi, ai-bi
	}
}
