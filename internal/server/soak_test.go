// Soak and chaos tests for the serving layer, run with the real
// facade backend (repro.ServerBackend) rather than the fake: N
// tenants x M sessions with mid-stream cancellations and injected
// kernel panics, under -race in CI. The external test package breaks
// the import cycle: internal/server never imports the facade, but its
// test binary may.
package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
)

// soakSessionConfig is a deliberately small observation (6 baselines,
// 8x2 samples, 64-pixel grid) so a soak of dozens of sessions stays
// test-suite fast; the plan cache makes the repeats nearly free.
func soakSessionConfig() server.SessionConfig {
	return server.SessionConfig{
		NrStations: 4, NrTimesteps: 8, NrChannels: 2,
		StartFrequency: 150e6, ChannelWidth: 200e3,
		GridSize: 64, SubgridSize: 16, KernelSupport: 4,
		GridMargin: 4, ATermInterval: 8,
		Workers: 1, GridShards: 1, MaxInflightChunks: 2,
	}
}

// fillWire builds one session's worth of deterministic wire samples.
func fillWire(nb, nt, nc int, seed int) [][]float32 {
	wire := make([][]float32, nb)
	for b := range wire {
		buf := make([]float32, nt*nc*8)
		for i := range buf {
			buf[i] = float32((seed+13*b+i)%31) * 0.125
		}
		wire[b] = buf
	}
	return wire
}

// TestSoakMultiTenant is the race-mode soak of ISSUE 9: several
// tenants run sessions concurrently against one server with injected
// kernel panics (SkipAndFlag, so sessions survive degraded) and
// mid-stream cancellations; after the drain the registry must be
// empty and no in-flight gauge may ever have exceeded its budget.
func TestSoakMultiTenant(t *testing.T) {
	const (
		tenants           = 3
		sessionsPerTenant = 4
		workersPerTenant  = 2
		inflightBudget    = 6
	)
	observer := obs.New(0)
	back := &repro.ServerBackend{
		// A 15% injected panic rate under SkipAndFlag: some sessions
		// complete degraded (notes in their result), none crash the
		// server. Selection is deterministic in the work item and seed,
		// so the degraded count is stable run to run.
		Fault: repro.FaultConfig{
			Policy: repro.SkipAndFlag,
			Hook:   faultinject.PanicHook(repro.FaultSelector{Fraction: 0.15, Seed: 7}),
		},
	}
	cfg := server.Config{
		MaxSessions:          tenants * workersPerTenant * 2,
		MaxSessionsPerTenant: workersPerTenant + 1,
		MaxInflightPerTenant: inflightBudget,
		Observer:             observer,
	}
	s, err := server.New(cfg, back)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	scfg := soakSessionConfig()
	hitsBefore, _ := repro.ServerPlanCacheStats()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		finished int
		canceled int
		degraded int
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for tn := 0; tn < tenants; tn++ {
		for wk := 0; wk < workersPerTenant; wk++ {
			wg.Add(1)
			go func(tn, wk int) {
				defer wg.Done()
				c := &server.Client{Base: hs.URL, Tenant: fmt.Sprintf("tenant-%d", tn), HTTP: hs.Client()}
				for sn := wk; sn < sessionsPerTenant; sn += workersPerTenant {
					info, err := c.CreateSession(scfg)
					if err != nil {
						fail("tenant %d session %d: create: %v", tn, sn, err)
						return
					}
					wire := fillWire(info.NrBaselines, info.NrTimesteps, info.NrChannels, tn*100+sn)
					// Every third session is canceled mid-stream: the
					// writer aborts halfway and the session is deleted
					// without ever finalizing.
					abort := sn%3 == 2
					err = c.StreamVis(info.SessionID, func(w *server.FrameWriter) error {
						for b, buf := range wire {
							if abort && b >= len(wire)/2 {
								return errors.New("soak: client walked away mid-stream")
							}
							if err := w.WriteVis(b, 0, buf); err != nil {
								return err
							}
						}
						return nil
					})
					if abort {
						if err == nil {
							fail("tenant %d session %d: aborted stream reported success", tn, sn)
						}
						if err := c.Delete(info.SessionID); err != nil {
							fail("tenant %d session %d: delete after abort: %v", tn, sn, err)
						}
						mu.Lock()
						canceled++
						mu.Unlock()
						continue
					}
					if err != nil {
						fail("tenant %d session %d: stream: %v", tn, sn, err)
						return
					}
					res, err := c.Finalize(info.SessionID)
					if err != nil {
						fail("tenant %d session %d: finalize: %v", tn, sn, err)
						return
					}
					if res.SHA256 == "" {
						fail("tenant %d session %d: no grid hash", tn, sn)
					}
					mu.Lock()
					finished++
					if len(res.Notes) > 0 {
						degraded++
					}
					mu.Unlock()
					if err := c.Delete(info.SessionID); err != nil {
						fail("tenant %d session %d: delete: %v", tn, sn, err)
					}
				}
			}(tn, wk)
		}
	}
	wg.Wait()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Leak check: the drain leaves nothing registered, and every
	// reservation was returned.
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions leaked past the drain", got)
	}
	snap := observer.Metrics.Snapshot()
	if got := snap.Gauges[server.GaugeInflightChunks]; got != 0 {
		t.Errorf("inflight gauge %v after drain, want 0", got)
	}
	// Quota check: no high-watermark ever exceeded its budget.
	if peak := snap.Gauges[server.GaugeInflightChunksPeak]; peak > tenants*inflightBudget {
		t.Errorf("global inflight peak %v exceeded the %d budget", peak, tenants*inflightBudget)
	}
	for tn := 0; tn < tenants; tn++ {
		name := server.TenantInflightPeakGauge(fmt.Sprintf("tenant-%d", tn))
		if peak := snap.Gauges[name]; peak > inflightBudget {
			t.Errorf("%s = %v exceeded the %d budget", name, peak, inflightBudget)
		}
	}

	expectFinished := tenants * sessionsPerTenant
	mu.Lock()
	defer mu.Unlock()
	if finished+canceled != expectFinished {
		t.Errorf("%d finished + %d canceled != %d sessions", finished, canceled, expectFinished)
	}
	if canceled == 0 {
		t.Error("soak ran without exercising a mid-stream cancellation")
	}
	if degraded == 0 {
		t.Error("soak ran without exercising an injected-panic degradation")
	}
	t.Logf("soak: %d finished (%d degraded by injected panics), %d canceled mid-stream", finished, degraded, canceled)

	// The plan cache carried the repeats: every session shares one
	// configuration, so all but the first build must have hit.
	hits, _ := repro.ServerPlanCacheStats()
	if hits == hitsBefore {
		t.Error("plan cache saw no hits across a single-config soak")
	}
}

// TestSoakFailFastPanic injects a certain kernel panic under the
// fail-fast policy: the session must fail gracefully — a typed 500,
// state failed, server still serving — and the drain must still leave
// an empty registry.
func TestSoakFailFastPanic(t *testing.T) {
	back := &repro.ServerBackend{
		Fault: repro.FaultConfig{
			Policy: repro.FailFast,
			Hook:   faultinject.PanicHook(repro.FaultSelector{Fraction: 1}),
		},
	}
	s, err := server.New(server.Config{}, back)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := &server.Client{Base: hs.URL, Tenant: "chaos", HTTP: hs.Client()}

	info, err := c.CreateSession(soakSessionConfig())
	if err != nil {
		t.Fatal(err)
	}
	wire := fillWire(info.NrBaselines, info.NrTimesteps, info.NrChannels, 1)
	err = c.StreamVis(info.SessionID, func(w *server.FrameWriter) error {
		for b, buf := range wire {
			if err := w.WriteVis(b, 0, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Finalize(info.SessionID)
	if err == nil {
		t.Fatal("finalize succeeded despite a certain injected panic")
	}
	if !strings.Contains(err.Error(), "HTTP 500") || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panic session error %v, want a typed 500", err)
	}
	// The server survived; the failed session is still registered
	// until deleted or drained.
	if got := s.ActiveSessions(); got != 1 {
		t.Fatalf("%d sessions after the failed finalize, want 1", got)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions leaked past the drain", got)
	}
}
