package main

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary `go test -bench` style text to the
// parser. The parser may reject input with an error but must never
// panic, and every benchmark it accepts must carry a plausible name
// and iteration count.
func FuzzParse(f *testing.F) {
	f.Add("BenchmarkGridderKernel-8   \t     193\t   5922618 ns/op\t         0.3458 MVis/s\t       0 B/op\t       0 allocs/op")
	f.Add("BenchmarkPlain \t 100 \t 1000 ns/op")
	f.Add("goos: linux\ngoarch: amd64\npkg: repro\ncpu: generic\nBenchmarkX-2 1 2 ns/op\nPASS")
	f.Add("BenchmarkNoIters")
	f.Add("Benchmark bad-count ns/op")
	f.Add("BenchmarkHuge 9223372036854775808 1 ns/op") // iteration count overflows int64
	f.Add("BenchmarkNaN 1 NaN ns/op")
	f.Add("BenchmarkTrailing 1 42")     // value with no unit
	f.Add("BenchmarkCustom 5 1.5 GB/s") // custom metric unit
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		rep, err := Parse(bufio.NewScanner(strings.NewReader(input)))
		if err != nil {
			return
		}
		for _, b := range rep.Benchmarks {
			if !strings.HasPrefix(b.Name, "Benchmark") {
				t.Fatalf("accepted benchmark with name %q", b.Name)
			}
			if b.Iterations < 0 {
				t.Fatalf("accepted negative iteration count %d", b.Iterations)
			}
		}
	})
}
