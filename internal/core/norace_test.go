//go:build !race

package core

// raceEnabled is false without the race detector; see race_test.go.
const raceEnabled = false
