// Command idgworker runs one worker of a distributed imaging pass: it
// builds the shared observation, filters the plan to its assigned
// partition (-index of -workers along -axis), fills the visibilities
// from the standard sky model, grids the partition through the
// streamed scheduler — checkpointing into -checkpoint-dir, resuming
// from it under -resume — and delivers the partial grid to the
// coordinator over the reduction wire protocol.
//
// It is normally exec'd by cmd/idgdistrib, which passes every flag
// below; running it by hand against a live coordinator is how one
// worker is debugged in isolation. -inject-crash kills the process at
// a checkpoint event (the chaos harness of scripts/distrib_smoke.sh).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"

	"repro"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator host:port to deliver the partial grid to (required)")
		index       = flag.Int("index", 0, "this worker's partition index")
		workers     = flag.Int("workers", 1, "total number of workers")
		axisName    = flag.String("axis", "rows", "partition axis: rows or wplanes")
		resume      = flag.Bool("resume", false, "resume from the newest checkpoint in -checkpoint-dir")
		ckptDir     = flag.String("checkpoint-dir", "", "this worker's private checkpoint directory")
		ckptEach    = flag.Int("checkpoint-every", 2, "checkpoint period in streamed chunks")
		chunkItems  = flag.Int("chunk-items", 0, "work items per streamed chunk (0: scheduler default)")
		injectCrash = flag.String("inject-crash", "", "kill the process at a checkpoint event: chunk-committed|before-write|before-rename|after-write[@chunk]")

		stations   = flag.Int("stations", 10, "number of stations")
		steps      = flag.Int("steps", 48, "time steps")
		channels   = flag.Int("channels", 4, "channels")
		gridSize   = flag.Int("grid", 256, "grid size in pixels")
		subgrid    = flag.Int("subgrid", 16, "subgrid size in pixels")
		support    = flag.Int("support", 4, "kernel support in uv cells")
		margin     = flag.Int("margin", 16, "grid margin in pixels")
		aterm      = flag.Int("aterm-interval", 16, "time steps per A-term slot")
		wstep      = flag.Float64("wstep", 0, "W-layer thickness in wavelengths (0: no W-stacking)")
		sources    = flag.Int("sources", 3, "standard sky model sources")
		innerWorke = flag.Int("inner-workers", 1, "worker goroutines inside this process (1 keeps the partial bit-deterministic across resume)")
	)
	flag.Parse()

	if *coordinator == "" {
		fail(fmt.Errorf("-coordinator is required"))
	}
	axis, err := repro.ParseDistribAxis(*axisName)
	if err != nil {
		fail(err)
	}

	cfg := repro.ObservationConfig{
		NrStations:     *stations,
		NrTimesteps:    *steps,
		NrChannels:     *channels,
		StartFrequency: 150e6,
		ChannelWidth:   200e3,
		GridSize:       *gridSize,
		SubgridSize:    *subgrid,
		KernelSupport:  *support,
		GridMargin:     *margin,
		ATermInterval:  *aterm,
		WStepLambda:    *wstep,
		Workers:        *innerWorke,
		GridShards:     1,
		CheckpointEvery: func() int {
			if *ckptDir == "" {
				return 0
			}
			return *ckptEach
		}(),
	}
	if *innerWorke > 1 {
		// Multiple shards only make sense with parallel inner workers;
		// the default serial mode keeps one shard for bit-determinism.
		cfg.GridShards = 0
	}

	// The model must be derived from the config alone so every worker
	// process predicts identical visibility bits.
	probe := cfg
	probe.CheckpointDir, probe.CheckpointEvery = "", 0
	po, err := probe.BuildPlan()
	if err != nil {
		fail(err)
	}
	model := repro.StandardSkyModel(po, *sources)

	opt := repro.DistribWorkerOptions{
		Config:          cfg,
		Model:           model,
		Workers:         *workers,
		Index:           *index,
		Axis:            axis,
		Resume:          *resume,
		CoordinatorAddr: *coordinator,
		CheckpointDir:   *ckptDir,
		ChunkItems:      *chunkItems,
	}
	if *injectCrash != "" {
		hook, err := parseCrash(*injectCrash)
		if err != nil {
			fail(err)
		}
		opt.CrashHook = hook
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := repro.RunDistribWorker(ctx, opt); err != nil {
		fail(err)
	}
	fmt.Printf("worker %d/%d axis %s delivered\n", *index, *workers, axis)
}

// parseCrash turns "event[@chunk]" into a crash hook that panics the
// process at that checkpoint event (once), simulating a kill.
func parseCrash(s string) (repro.CheckpointHook, error) {
	name, at := s, -1
	if i := strings.IndexByte(s, '@'); i >= 0 {
		name = s[:i]
		n, err := strconv.Atoi(s[i+1:])
		if err != nil {
			return nil, fmt.Errorf("bad -inject-crash chunk in %q: %w", s, err)
		}
		at = n
	}
	events := map[string]checkpoint.Event{
		"chunk-committed": checkpoint.EventChunkCommitted,
		"before-write":    checkpoint.EventBeforeWrite,
		"before-rename":   checkpoint.EventBeforeRename,
		"after-write":     checkpoint.EventAfterWrite,
	}
	ev, ok := events[name]
	if !ok {
		return nil, fmt.Errorf("unknown -inject-crash event %q", name)
	}
	return faultinject.CrashHook(ev, at), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "idgworker:", err)
	os.Exit(1)
}
