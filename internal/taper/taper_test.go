package taper

import (
	"math"
	"testing"
)

func TestSpheroidalBasicShape(t *testing.T) {
	// Positive at center, decreasing towards the edge, zero outside.
	if Spheroidal(0) <= 0 {
		t.Fatal("spheroidal(0) must be positive")
	}
	prev := Spheroidal(0)
	for nu := 0.05; nu <= 1.0; nu += 0.05 {
		v := Spheroidal(nu)
		if v < 0 {
			t.Fatalf("spheroidal(%g) = %g < 0", nu, v)
		}
		if v > prev+1e-12 {
			t.Fatalf("spheroidal not monotone at nu=%g: %g > %g", nu, v, prev)
		}
		prev = v
	}
	if Spheroidal(1) > 1e-12 {
		t.Fatalf("spheroidal(1) = %g, want ~0", Spheroidal(1))
	}
	if Spheroidal(1.2) != 0 {
		t.Fatal("spheroidal outside support must be 0")
	}
}

func TestSpheroidalEven(t *testing.T) {
	for _, nu := range []float64{0.1, 0.3, 0.75, 0.9} {
		if Spheroidal(nu) != Spheroidal(-nu) {
			t.Fatalf("spheroidal not even at %g", nu)
		}
	}
}

func TestSpheroidalContinuousAtRegionBoundary(t *testing.T) {
	// The Schwab approximation switches regions at nu = 0.75; the two
	// branches must agree there to ~1e-6 (single-precision fit).
	lo := Spheroidal(0.75 - 1e-9)
	hi := Spheroidal(0.75 + 1e-9)
	if math.Abs(lo-hi) > 1e-5 {
		t.Fatalf("discontinuity at 0.75: %g vs %g", lo, hi)
	}
}

func TestSpheroidalKnownValues(t *testing.T) {
	// Reference values from the casacore/AIPS implementation of the
	// same rational approximation.
	if v := Spheroidal(0); math.Abs(v-1.0/(1.0/0.0820334300)*0.0820334300*1.0/1.0-0.0820334300/1.0) > 1 {
		_ = v // shape checked below; the closed form at 0 is p0(del)/q0(del)*(1-0)
	}
	// At nu=0: del = -0.5625. Evaluate the polynomial explicitly.
	del := -0.5625
	p := 8.203343e-2 + del*(-3.644705e-1+del*(6.278660e-1+del*(-5.335581e-1+del*2.312756e-1)))
	q := 1.0 + del*(8.212018e-1+del*2.078043e-1)
	want := p / q
	if got := Spheroidal(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("spheroidal(0) = %g, want %g", got, want)
	}
}

func TestKaiserBesselShape(t *testing.T) {
	if math.Abs(KaiserBessel(0, 8)-1) > 1e-12 {
		t.Fatalf("KB(0) = %g, want 1", KaiserBessel(0, 8))
	}
	prev := 1.0
	for nu := 0.1; nu <= 1.0; nu += 0.1 {
		v := KaiserBessel(nu, 8)
		if v < 0 || v > prev+1e-12 {
			t.Fatalf("KB not monotone decreasing at %g", nu)
		}
		prev = v
	}
	if KaiserBessel(1.5, 8) != 0 {
		t.Fatal("KB outside support must be 0")
	}
}

func TestBesselI0(t *testing.T) {
	// Reference values (Abramowitz & Stegun tables).
	cases := []struct{ x, want float64 }{
		{0, 1},
		{1, 1.2660658777520084},
		{2, 2.2795853023360673},
		{5, 27.239871823604442},
	}
	for _, c := range cases {
		if got := besselI0(c.x); math.Abs(got-c.want) > 1e-6*c.want {
			t.Fatalf("I0(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestWindow2DSeparableAndSymmetric(t *testing.T) {
	n := 24
	w := SpheroidalSubgrid(n)
	if len(w) != n*n {
		t.Fatalf("window length %d", len(w))
	}
	// Center is the maximum.
	center := w[(n/2)*n+n/2]
	for _, v := range w {
		if v > center+1e-12 {
			t.Fatalf("value %g exceeds center %g", v, center)
		}
	}
	// Mirror symmetry about the center (even sizes have one fewer
	// mirrored sample; compare x with n-x).
	for y := 1; y < n; y++ {
		for x := 1; x < n; x++ {
			if d := math.Abs(w[y*n+x] - w[(n-y)*n+(n-x)]); d > 1e-12 {
				t.Fatalf("asymmetry at (%d,%d): %g", x, y, d)
			}
		}
	}
	// Separability: w[y][x] * w[c][c] == w[y][c] * w[c][x] with c = n/2.
	c := n / 2
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			lhs := w[y*n+x] * w[c*n+c]
			rhs := w[y*n+c] * w[c*n+x]
			if math.Abs(lhs-rhs) > 1e-12 {
				t.Fatalf("not separable at (%d,%d)", x, y)
			}
		}
	}
}

func TestCorrectionMapInvertsInterior(t *testing.T) {
	n := 16
	w := SpheroidalSubgrid(n)
	corr := CorrectionMap(w, 1e-6)
	for i := range w {
		if w[i] > 1e-6 {
			if d := math.Abs(w[i]*corr[i] - 1); d > 1e-12 {
				t.Fatalf("correction not inverse at %d: %g", i, d)
			}
		} else if corr[i] != 0 {
			t.Fatalf("correction not blanked below floor at %d", i)
		}
	}
}

func TestWindow2DPanicsOnTinySize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Window2D(1, Spheroidal)
}
