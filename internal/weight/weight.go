// Package weight implements imaging density weighting: natural,
// uniform, and Briggs robust weighting. The imaging step of Fig. 2
// grids *weighted* visibilities; the weighting scheme trades
// sensitivity (natural) against PSF sidelobe level and resolution
// (uniform), with robust weighting interpolating between them.
package weight

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/uvwsim"
)

// Scheme selects the weighting.
type Scheme int

const (
	// Natural weights every visibility equally (best sensitivity).
	Natural Scheme = iota
	// Uniform divides by the local uv sample density (best PSF).
	Uniform
	// Robust is Briggs weighting, steered by the Robust parameter.
	Robust
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Natural:
		return "natural"
	case Uniform:
		return "uniform"
	case Robust:
		return "robust"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Weights holds the computed per-cell weighting function.
type Weights struct {
	scheme    Scheme
	gridSize  int
	imageSize float64
	density   []float64
	// f2 is the Briggs robustness scale (Robust scheme only).
	f2 float64
}

// Config configures weight computation.
type Config struct {
	Scheme Scheme
	// Robust is the Briggs robustness parameter R in [-2, 2]; only
	// used by the Robust scheme (R=+2 approaches natural, R=-2
	// approaches uniform).
	Robust float64
	// GridSize and ImageSize define the density-counting grid (use
	// the imaging grid's values).
	GridSize  int
	ImageSize float64
}

// Compute builds the weighting function by counting uv samples per
// grid cell over all baselines, times and channels.
func Compute(cfg Config, tracks [][]uvwsim.UVW, freqs []float64) (*Weights, error) {
	if cfg.GridSize < 2 || cfg.ImageSize <= 0 {
		return nil, fmt.Errorf("weight: bad grid geometry %d/%g", cfg.GridSize, cfg.ImageSize)
	}
	if len(tracks) == 0 || len(freqs) == 0 {
		return nil, fmt.Errorf("weight: empty observation")
	}
	if cfg.Scheme == Robust && (cfg.Robust < -2 || cfg.Robust > 2) {
		return nil, fmt.Errorf("weight: robust parameter %g outside [-2, 2]", cfg.Robust)
	}
	w := &Weights{
		scheme:    cfg.Scheme,
		gridSize:  cfg.GridSize,
		imageSize: cfg.ImageSize,
		density:   make([]float64, cfg.GridSize*cfg.GridSize),
	}
	for _, track := range tracks {
		for _, c := range track {
			for _, f := range freqs {
				if i, ok := w.cell(c, f); ok {
					w.density[i]++
				}
			}
		}
	}
	if cfg.Scheme == Robust {
		// Briggs: f^2 = (5 * 10^-R)^2 / (sum rho^2 / sum rho).
		var sum, sum2 float64
		for _, d := range w.density {
			sum += d
			sum2 += d * d
		}
		if sum == 0 {
			return nil, fmt.Errorf("weight: no visibilities on the grid")
		}
		s := 5 * math.Pow(10, -cfg.Robust)
		w.f2 = s * s / (sum2 / sum)
	}
	return w, nil
}

// cell maps a uvw coordinate (meters) to a density-grid index.
func (w *Weights) cell(c uvwsim.UVW, freq float64) (int, bool) {
	s := freq / uvwsim.SpeedOfLight * w.imageSize
	x := int(math.Round(c.U*s)) + w.gridSize/2
	y := int(math.Round(c.V*s)) + w.gridSize/2
	if x < 0 || x >= w.gridSize || y < 0 || y >= w.gridSize {
		return 0, false
	}
	return y*w.gridSize + x, true
}

// For returns the weight of one visibility.
func (w *Weights) For(c uvwsim.UVW, freq float64) float64 {
	i, ok := w.cell(c, freq)
	if !ok {
		return 0
	}
	rho := w.density[i]
	switch w.scheme {
	case Natural:
		return 1
	case Uniform:
		if rho == 0 {
			return 0
		}
		return 1 / rho
	case Robust:
		return 1 / (1 + rho*w.f2)
	default:
		return 1
	}
}

// Apply multiplies the visibilities in place and returns the summed
// weight (the normalization the dirty image must divide by instead of
// the raw visibility count).
func Apply(vs *core.VisibilitySet, w *Weights, freqs []float64) float64 {
	var total float64
	for b := range vs.Data {
		for t := 0; t < vs.NrTimesteps; t++ {
			coord := vs.UVW[b][t]
			for c := 0; c < vs.NrChannels; c++ {
				wt := w.For(coord, freqs[c])
				total += wt
				f := complex(wt, 0)
				i := t*vs.NrChannels + c
				m := vs.Data[b][i]
				vs.Data[b][i] = m.Scale(f)
			}
		}
	}
	return total
}

// MeanWeight returns the average weight over the observation, used by
// tests and diagnostics.
func MeanWeight(vs *core.VisibilitySet, w *Weights, freqs []float64) float64 {
	var total float64
	var n int64
	for b := range vs.UVW {
		for t := 0; t < vs.NrTimesteps; t++ {
			for c := 0; c < vs.NrChannels; c++ {
				total += w.For(vs.UVW[b][t], freqs[c])
				n++
			}
		}
	}
	return total / float64(n)
}
