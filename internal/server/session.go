package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/faulttol"
)

// State is a session lifecycle state. The machine is
//
//	streaming --finalize--> finalizing --ok--> done
//	    |                        |--err/cancel--> failed
//	    |
//	    +-- idle timeout / DELETE / drain --> removed from the registry
//
// done and failed are terminal but stay registered (holding their
// tenant reservation — the grid is still resident) until the client
// deletes the session, the idle timeout sweeps it, or a drain removes
// it.
type State string

// Session states.
const (
	StateStreaming  State = "streaming"
	StateFinalizing State = "finalizing"
	StateDone       State = "done"
	StateFailed     State = "failed"
)

// Removal reasons, for the terminal counters.
type removeReason int

const (
	removeDeleted removeReason = iota
	removeExpired
	removeDrained
)

// session is one registered observation session.
type session struct {
	id     string
	tenant string
	cfg    SessionConfig
	// inflight is the resolved MaxInflightChunks bound reserved
	// against the tenant budget at admission.
	inflight int
	back     BackendSession
	created  time.Time

	mu         sync.Mutex
	state      State
	lastTouch  time.Time
	streamBusy bool
	res        *Result
	runErr     error
	cancelRun  context.CancelFunc
}

func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastTouch = now
	s.mu.Unlock()
}

// idleSince reports whether the session has been untouched since the
// deadline and is expirable (a running finalize is never expired — it
// touches the session when it completes).
func (s *session) idleSince(deadline time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state != StateFinalizing && s.lastTouch.Before(deadline)
}

func (s *session) currentState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// beginStream claims the session's single streaming slot.
func (s *session) beginStream() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateStreaming {
		return fmt.Errorf("session is %s, not accepting visibility frames", s.state)
	}
	if s.streamBusy {
		return fmt.Errorf("another stream request is in flight")
	}
	s.streamBusy = true
	return nil
}

func (s *session) endStream() {
	s.mu.Lock()
	s.streamBusy = false
	s.mu.Unlock()
}

// beginFinalize moves streaming -> finalizing and installs the cancel
// handle the drain path uses.
func (s *session) beginFinalize(cancel context.CancelFunc) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateStreaming {
		return fmt.Errorf("session is %s, not finalizable", s.state)
	}
	if s.streamBusy {
		return fmt.Errorf("a stream request is still in flight")
	}
	s.state = StateFinalizing
	s.cancelRun = cancel
	return nil
}

// endFinalize records the run outcome.
func (s *session) endFinalize(res *Result, err error, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cancelRun = nil
	s.lastTouch = now
	if err != nil {
		s.state = StateFailed
		s.runErr = err
		return
	}
	s.state = StateDone
	s.res = res
}

// abort cancels a running finalize, if any.
func (s *session) abort() {
	s.mu.Lock()
	cancel := s.cancelRun
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// runBackend executes the backend pass with panic isolation: a
// backend bug takes down its session (as ErrKernelPanic), never the
// server.
func runBackend(ctx context.Context, back BackendSession) (res *Result, err error) {
	panicked := true
	defer func() {
		if panicked {
			err = fmt.Errorf("%w: %v", faulttol.ErrKernelPanic, recover())
			res = nil
		}
	}()
	res, err = back.Run(ctx)
	panicked = false
	return res, err
}

// applyVis stores one decoded chunk with the same panic isolation.
func applyVis(back BackendSession, c VisChunk) (err error) {
	panicked := true
	defer func() {
		if panicked {
			err = fmt.Errorf("%w: %v", faulttol.ErrKernelPanic, recover())
		}
	}()
	err = back.SetVisibilities(c.Baseline, c.SampleOffset, c.Samples)
	panicked = false
	return err
}
