package aterm

import "testing"

// Table-driven edge cases for the slot scheduler: degenerate
// intervals, negative time steps (Go integer division truncates
// toward zero, so small negative t still lands in slot 0), and
// NrSlots rounding at and around exact interval multiples.

func TestSchedulerSlotEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		interval int
		t        int
		want     int
	}{
		{"zero interval collapses", 0, 1000, 0},
		{"negative interval collapses", -7, 1000, 0},
		{"negative t truncates to slot 0", 256, -1, 0},
		{"negative t full interval", 256, -256, -1},
		{"interval 1 is the identity", 1, 42, 42},
		{"last step of slot 0", 16, 15, 0},
		{"first step of slot 1", 16, 16, 1},
		{"exact multiple boundary", 16, 48, 3},
		{"one before a multiple", 16, 47, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Scheduler{UpdateInterval: tc.interval}
			if got := s.Slot(tc.t); got != tc.want {
				t.Errorf("Scheduler{%d}.Slot(%d) = %d, want %d", tc.interval, tc.t, got, tc.want)
			}
		})
	}
}

func TestSchedulerNrSlotsEdgeCases(t *testing.T) {
	cases := []struct {
		name        string
		interval    int
		nrTimesteps int
		want        int
	}{
		{"zero interval is one slot", 0, 8192, 1},
		{"negative interval is one slot", -3, 8192, 1},
		{"zero timesteps", 16, 0, 0},
		{"exact multiple needs no extra slot", 16, 48, 3},
		{"one past a multiple rounds up", 16, 49, 4},
		{"one short of a multiple rounds up", 16, 47, 3},
		{"single timestep", 16, 1, 1},
		{"interval 1 counts every step", 1, 37, 37},
		{"interval larger than run", 256, 100, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Scheduler{UpdateInterval: tc.interval}
			if got := s.NrSlots(tc.nrTimesteps); got != tc.want {
				t.Errorf("Scheduler{%d}.NrSlots(%d) = %d, want %d", tc.interval, tc.nrTimesteps, got, tc.want)
			}
		})
	}
}

// TestSchedulerSlotNrSlotsConsistent pins the invariant the planner
// relies on: every in-range time step maps to a slot below
// NrSlots(nrTimesteps).
func TestSchedulerSlotNrSlotsConsistent(t *testing.T) {
	for _, interval := range []int{0, 1, 3, 16, 256} {
		s := Scheduler{UpdateInterval: interval}
		for _, n := range []int{1, 15, 16, 17, 48, 255, 256, 257} {
			slots := s.NrSlots(n)
			for step := 0; step < n; step++ {
				if got := s.Slot(step); got < 0 || got >= slots {
					t.Fatalf("interval %d: Slot(%d) = %d outside [0, NrSlots(%d)=%d)", interval, step, got, n, slots)
				}
			}
		}
	}
}
