package faultinject_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/faulttol"
	"repro/internal/flagging"
	"repro/internal/grid"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/uvwsim"
)

// pipeline bundles a small but realistic observation for chaos runs.
type pipeline struct {
	plan    *plan.Plan
	kernels *core.Kernels
	vs      *core.VisibilitySet
}

func buildPipeline(tb testing.TB) *pipeline {
	tb.Helper()
	const (
		nrStations  = 8
		nt          = 64
		nc          = 4
		gridSize    = 256
		subgridSize = 32
	)
	lcfg := layout.SKA1LowConfig()
	lcfg.NrStations = nrStations
	sim := uvwsim.New(layout.Generate(lcfg), uvwsim.DefaultOptions())

	freqs := make([]float64, nc)
	for i := range freqs {
		freqs[i] = 150e6 + float64(i)*1e6
	}
	maxUV := sim.MaxUV(nt) * freqs[nc-1] / uvwsim.SpeedOfLight
	imageSize := float64(gridSize/2-subgridSize) / maxUV

	tracks := sim.AllTracks(nt)
	p, err := plan.New(plan.Config{
		GridSize:               gridSize,
		SubgridSize:            subgridSize,
		ImageSize:              imageSize,
		Frequencies:            freqs,
		KernelSupport:          8,
		MaxTimestepsPerSubgrid: 16,
		ATermUpdateInterval:    32,
	}, tracks)
	if err != nil {
		tb.Fatal(err)
	}
	k, err := core.NewKernels(core.Params{
		GridSize:    gridSize,
		SubgridSize: subgridSize,
		ImageSize:   imageSize,
		Frequencies: freqs,
	})
	if err != nil {
		tb.Fatal(err)
	}
	vs := core.MustNewVisibilitySet(sim.Baselines(), tracks, nc)
	for b := range vs.Data {
		for i := range vs.Data[b] {
			for p := 0; p < 4; p++ {
				vs.Data[b][i][p] = complex(1, 0.5)
			}
		}
	}
	return &pipeline{plan: p, kernels: k, vs: vs}
}

// covers reports whether a work item covers the corrupted sample.
func covers(it plan.WorkItem, c faultinject.Corruption) bool {
	return it.Baseline == c.Baseline &&
		c.Timestep >= it.TimeStart && c.Timestep < it.TimeStart+it.NrTimesteps &&
		c.Channel >= it.Channel0 && c.Channel < it.Channel0+it.NrChannels
}

func gridFinite(g *grid.Grid) bool {
	for c := range g.Data {
		for _, v := range g.Data[c] {
			re, im := real(v), imag(v)
			if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
				return false
			}
		}
	}
	return true
}

func TestSelectorIsDeterministic(t *testing.T) {
	pl := buildPipeline(t)
	sel := faultinject.Selector{Fraction: 0.05, Seed: 7}
	n := sel.Count(pl.plan.Items)
	if n == 0 || n == len(pl.plan.Items) {
		t.Fatalf("selector hit %d of %d items; want a nontrivial subset", n, len(pl.plan.Items))
	}
	if again := sel.Count(pl.plan.Items); again != n {
		t.Fatalf("selection not deterministic: %d then %d", n, again)
	}
	other := faultinject.Selector{Fraction: 0.05, Seed: 8}
	if other.Count(pl.plan.Items) == n && other.SelectedVisibilities(pl.plan.Items) == sel.SelectedVisibilities(pl.plan.Items) {
		// Identical hit sets across seeds would make the harness useless.
		same := true
		for i := range pl.plan.Items {
			if sel.Selected(pl.plan.Items[i]) != other.Selected(pl.plan.Items[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds select identical victims")
		}
	}
}

func TestCorruptVisibilitiesIsDeterministic(t *testing.T) {
	a := buildPipeline(t)
	b := buildPipeline(t)
	ca := faultinject.CorruptVisibilities(a.vs, 0.02, 3)
	cb := faultinject.CorruptVisibilities(b.vs, 0.02, 3)
	if len(ca) == 0 {
		t.Fatal("no samples corrupted")
	}
	if len(ca) != len(cb) {
		t.Fatalf("corruption not deterministic: %d vs %d samples", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("corruption %d differs: %+v vs %+v", i, ca[i], cb[i])
		}
	}
	c0 := ca[0]
	v := a.vs.Data[c0.Baseline][c0.Timestep*a.vs.NrChannels+c0.Channel]
	if !math.IsNaN(real(v[0])) {
		t.Fatalf("corrupted sample %+v still finite: %v", c0, v)
	}
}

// TestChaosSkipAndFlag is the acceptance chaos test: with NaNs
// injected into the visibilities and a kernel that panics on ~5% of
// the work items, a skip-and-flag gridding run must complete without
// crashing, report the EXACT number of dropped visibilities, and leave
// the grid finite everywhere.
func TestChaosSkipAndFlag(t *testing.T) {
	pl := buildPipeline(t)
	corrupted := faultinject.CorruptVisibilities(pl.vs, 0.01, 11)
	if len(corrupted) == 0 {
		t.Fatal("corruption selected nothing; lower the seed")
	}
	sel := faultinject.Selector{Fraction: 0.05, Seed: 42}
	if sel.Count(pl.plan.Items) == 0 {
		t.Fatal("panic selector selected nothing")
	}

	// Predict the exact degradation: an item is dropped iff the hook
	// panics in it (permanently) or it covers an unflagged NaN sample
	// (bad input, never retried).
	var wantSkipped int
	var wantDropped int64
	for _, it := range pl.plan.Items {
		doomed := sel.Selected(it)
		if !doomed {
			for _, c := range corrupted {
				if covers(it, c) {
					doomed = true
					break
				}
			}
		}
		if doomed {
			wantSkipped++
			wantDropped += int64(it.NrVisibilities())
		}
	}

	g := grid.NewGrid(pl.plan.GridSize)
	_, rep, err := pl.kernels.GridVisibilitiesFT(context.Background(), pl.plan, pl.vs, nil, g,
		faulttol.Config{Policy: faulttol.SkipAndFlag, Hook: faultinject.PanicHook(sel)})
	if err != nil {
		t.Fatalf("skip-and-flag run failed: %v", err)
	}
	if !rep.Degraded() {
		t.Fatal("degraded run not reported as degraded")
	}
	if rep.ItemsSkipped != wantSkipped {
		t.Fatalf("skipped %d items, predicted %d", rep.ItemsSkipped, wantSkipped)
	}
	if rep.DroppedVisibilities != wantDropped {
		t.Fatalf("dropped %d visibilities, predicted %d", rep.DroppedVisibilities, wantDropped)
	}
	if rep.ItemsProcessed != len(pl.plan.Items)-wantSkipped {
		t.Fatalf("processed %d items, want %d", rep.ItemsProcessed, len(pl.plan.Items)-wantSkipped)
	}
	if len(rep.ItemErrors) == 0 {
		t.Fatal("no item errors sampled")
	}
	if !gridFinite(g) {
		t.Fatal("grid not finite after degraded run")
	}
}

// Flagged NaN samples enter the gridder with zero weight: nothing is
// dropped and even fail-fast succeeds.
func TestFlaggedCorruptionNeedsNoDegradation(t *testing.T) {
	pl := buildPipeline(t)
	if len(faultinject.CorruptVisibilities(pl.vs, 0.02, 5)) == 0 {
		t.Fatal("corruption selected nothing")
	}
	if flagging.FlagNonFinite(pl.vs) == 0 {
		t.Fatal("flagging found nothing")
	}
	g := grid.NewGrid(pl.plan.GridSize)
	_, rep, err := pl.kernels.GridVisibilitiesFT(context.Background(), pl.plan, pl.vs, nil, g,
		faulttol.Config{Policy: faulttol.FailFast})
	if err != nil {
		t.Fatalf("fail-fast run over flagged data failed: %v", err)
	}
	if rep.Degraded() {
		t.Fatalf("flagged data degraded the run: %v", rep)
	}
	if !gridFinite(g) {
		t.Fatal("grid not finite")
	}
}

// A transient fault (panics on the first attempt, then succeeds) is
// ridden out by the retry policy with no data loss.
func TestRetryRidesOutTransientFaults(t *testing.T) {
	pl := buildPipeline(t)
	sel := faultinject.Selector{Fraction: 0.1, Seed: 9}
	n := sel.Count(pl.plan.Items)
	if n == 0 {
		t.Fatal("selector selected nothing")
	}
	g := grid.NewGrid(pl.plan.GridSize)
	_, rep, err := pl.kernels.GridVisibilitiesFT(context.Background(), pl.plan, pl.vs, nil, g,
		faulttol.Config{Policy: faulttol.Retry, Hook: faultinject.FlakyHook(sel, 1)})
	if err != nil {
		t.Fatalf("retry run failed: %v", err)
	}
	if rep.ItemsRetried != n {
		t.Fatalf("retried %d items, want %d", rep.ItemsRetried, n)
	}
	if rep.ItemsSkipped != 0 || rep.DroppedVisibilities != 0 {
		t.Fatalf("retry run dropped data: %v", rep)
	}
	if rep.ItemsProcessed != len(pl.plan.Items) {
		t.Fatalf("processed %d of %d items", rep.ItemsProcessed, len(pl.plan.Items))
	}
}

// Under fail-fast an injected panic aborts the run with a typed
// per-item error.
func TestFailFastAbortsOnInjectedPanic(t *testing.T) {
	pl := buildPipeline(t)
	sel := faultinject.Selector{Fraction: 0.05, Seed: 42}
	g := grid.NewGrid(pl.plan.GridSize)
	_, _, err := pl.kernels.GridVisibilitiesFT(context.Background(), pl.plan, pl.vs, nil, g,
		faulttol.Config{Policy: faulttol.FailFast, Hook: faultinject.PanicHook(sel)})
	if err == nil {
		t.Fatal("fail-fast run succeeded despite injected panics")
	}
	if !errors.Is(err, faulttol.ErrKernelPanic) {
		t.Fatalf("error not typed as kernel panic: %v", err)
	}
	var ie *faulttol.ItemError
	if !errors.As(err, &ie) {
		t.Fatalf("error not an ItemError: %v", err)
	}
	if !sel.Selected(plan.WorkItem{Baseline: ie.Baseline, TimeStart: ie.TimeStart, Channel0: ie.Channel0}) {
		t.Fatalf("reported item %+v was not a victim", ie)
	}
}

// A canceled context aborts a long (straggler-delayed) gridding run
// promptly with ErrCanceled.
func TestCancellationAbortsPromptly(t *testing.T) {
	pl := buildPipeline(t)
	// Every item sleeps 2ms: the full run would take far longer than
	// the 15ms deadline.
	hook := faultinject.DelayHook(faultinject.Selector{Fraction: 1}, 2*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	g := grid.NewGrid(pl.plan.GridSize)
	start := time.Now()
	_, _, err := pl.kernels.GridVisibilitiesFT(ctx, pl.plan, pl.vs, nil, g,
		faulttol.Config{Policy: faulttol.SkipAndFlag, Hook: hook})
	elapsed := time.Since(start)
	if !errors.Is(err, faulttol.ErrCanceled) {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("context cause lost: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
}

// An already-canceled context aborts before any work happens.
func TestPreCanceledContext(t *testing.T) {
	pl := buildPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := grid.NewGrid(pl.plan.GridSize)
	if _, err := pl.kernels.GridVisibilities(ctx, pl.plan, pl.vs, nil, g); !errors.Is(err, faulttol.ErrCanceled) {
		t.Fatalf("gridding: expected ErrCanceled, got %v", err)
	}
	if _, err := pl.kernels.DegridVisibilities(ctx, pl.plan, pl.vs, nil, g); !errors.Is(err, faulttol.ErrCanceled) {
		t.Fatalf("degridding: expected ErrCanceled, got %v", err)
	}
}

// Degridding under skip-and-flag drops the same predicted items.
func TestChaosDegridSkipAndFlag(t *testing.T) {
	pl := buildPipeline(t)
	sel := faultinject.Selector{Fraction: 0.05, Seed: 21}
	want := sel.SelectedVisibilities(pl.plan.Items)
	if want == 0 {
		t.Fatal("selector selected nothing")
	}
	g := grid.NewGrid(pl.plan.GridSize)
	_, rep, err := pl.kernels.DegridVisibilitiesFT(context.Background(), pl.plan, pl.vs, nil, g,
		faulttol.Config{Policy: faulttol.SkipAndFlag, Hook: faultinject.PanicHook(sel)})
	if err != nil {
		t.Fatalf("degrid skip-and-flag failed: %v", err)
	}
	if rep.DroppedVisibilities != want {
		t.Fatalf("dropped %d visibilities, predicted %d", rep.DroppedVisibilities, want)
	}
}
