// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout. It understands the standard
// benchmark line format including -benchmem columns and custom
// b.ReportMetric units, so CI jobs and scripts/bench.sh can diff
// kernel performance without scraping free-form text:
//
//	go test -bench Kernel -benchmem . | benchjson > BENCH_kernels.json
//
// With -best, duplicate benchmark names on stdin (a -count N run)
// collapse to their best-throughput run before emitting — the way to
// write a committed baseline from a repeated measurement:
//
//	go test -bench Distrib -count 3 . | benchjson -best > BENCH_distrib.json
//
// With -compare it instead diffs two reports and acts as a regression
// gate: benchmarks present in both are compared by visibility
// throughput (falling back to 1/ns_per_op when either side lacks the
// MVis/s metric), and any slowdown beyond -threshold percent fails the
// run. When the new report holds several runs of the same benchmark
// (go test -count N), the best run gates — repeated-run minima measure
// scheduling noise, not the code under test. A benchmark recorded in the old report but absent from the new
// one also fails the gate — a silently vanished benchmark usually
// means a renamed or deleted test, not an intentional retirement —
// unless -allow-missing is given (for subset runs that deliberately
// re-measure only part of the baseline):
//
//	benchjson -compare -threshold 10 BENCH_kernels.json new.json
//
// (flags go before the two report files: the flag package stops
// parsing at the first positional argument)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// VisPerSec is derived from the kernels' MVis/s custom metric.
	VisPerSec *float64 `json:"vis_per_sec,omitempty"`
	// Metrics holds every other custom b.ReportMetric column.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two JSON reports (old new) instead of parsing stdin")
	threshold := flag.Float64("threshold", 10, "with -compare: maximum tolerated slowdown in percent")
	allowMissing := flag.Bool("allow-missing", false,
		"with -compare: benchmarks missing from the new report warn instead of failing")
	best := flag.Bool("best", false,
		"collapse duplicate benchmark names (go test -count N) to the best run before emitting")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files (old new)")
			os.Exit(2)
		}
		ok, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *allowMissing)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	rep, err := Parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *best {
		rep.Benchmarks = bestRuns(rep.Benchmarks)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// bestRuns collapses duplicate benchmark names to the run with the
// highest throughput, preserving first-appearance order — the same
// rule the compare gate judges a -count N re-measure by, so a
// baseline written with -best holds exactly the numbers later runs
// are gated against.
func bestRuns(bs []Benchmark) []Benchmark {
	idx := make(map[string]int, len(bs))
	out := make([]Benchmark, 0, len(bs))
	for i := range bs {
		b := bs[i]
		j, ok := idx[b.Name]
		if !ok {
			idx[b.Name] = len(out)
			out = append(out, b)
			continue
		}
		pt, _ := throughput(&out[j])
		nt, _ := throughput(&b)
		if nt > pt {
			out[j] = b
		}
	}
	return out
}

// Parse consumes `go test -bench` output line by line.
func Parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line: a name, an iteration count, then
// repeated "<value> <unit>" pairs.
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %v", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		case "MVis/s":
			v := val * 1e6
			b.VisPerSec = &v
			addMetric(&b, unit, val)
		default:
			addMetric(&b, unit, val)
		}
	}
	return b, nil
}

func addMetric(b *Benchmark, unit string, val float64) {
	if b.Metrics == nil {
		b.Metrics = make(map[string]float64)
	}
	b.Metrics[unit] = val
}

// loadReport reads one JSON report written by the parse mode.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// throughput returns a higher-is-better score for a benchmark: the
// visibility rate when recorded, else the inverse op time.
func throughput(b *Benchmark) (float64, bool) {
	if b.VisPerSec != nil && *b.VisPerSec > 0 {
		return *b.VisPerSec, true
	}
	if b.NsPerOp > 0 {
		return 1 / b.NsPerOp, false
	}
	return 0, false
}

// runCompare diffs two reports benchmark by benchmark and reports
// whether every common benchmark stayed within the slowdown threshold
// (percent). A baseline benchmark missing from the new report fails
// the gate unless allowMissing is set; benchmarks only present in the
// new report merely warn (the set is allowed to grow).
func runCompare(w io.Writer, oldPath, newPath string, threshold float64, allowMissing bool) (bool, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	// Duplicate names in either report (a -count N re-measure) gate on
	// their best run: regression thresholds compare against sustained
	// capability, and the minimum over repeated runs is dominated by
	// scheduling noise rather than by the code under test.
	oldRep.Benchmarks = bestRuns(oldRep.Benchmarks)
	newRep.Benchmarks = bestRuns(newRep.Benchmarks)
	newByName := make(map[string]*Benchmark, len(newRep.Benchmarks))
	for i := range newRep.Benchmarks {
		newByName[newRep.Benchmarks[i].Name] = &newRep.Benchmarks[i]
	}
	ok := true
	compared := 0
	for i := range oldRep.Benchmarks {
		ob := &oldRep.Benchmarks[i]
		nb, found := newByName[ob.Name]
		if !found {
			if allowMissing {
				fmt.Fprintf(w, "WARN  %-40s missing from %s\n", ob.Name, newPath)
			} else {
				fmt.Fprintf(w, "FAIL  %-40s in baseline %s but missing from %s (renamed or deleted? pass -allow-missing for subset runs)\n",
					ob.Name, oldPath, newPath)
				ok = false
			}
			continue
		}
		delete(newByName, ob.Name)
		oldT, oldVis := throughput(ob)
		newT, newVis := throughput(nb)
		if oldT == 0 || newT == 0 || oldVis != newVis {
			fmt.Fprintf(w, "WARN  %-40s metrics not comparable\n", ob.Name)
			continue
		}
		compared++
		deltaPct := 100 * (newT - oldT) / oldT
		status := "ok   "
		if deltaPct < -threshold {
			status = "FAIL "
			ok = false
		}
		fmt.Fprintf(w, "%s %-40s %+7.1f%%\n", status, ob.Name, deltaPct)
	}
	for name := range newByName {
		fmt.Fprintf(w, "WARN  %-40s only in %s\n", name, newPath)
	}
	if compared == 0 {
		return false, fmt.Errorf("no comparable benchmarks between %s and %s", oldPath, newPath)
	}
	return ok, nil
}
