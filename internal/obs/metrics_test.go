package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Fatalf("gauge = %g, want -1.25", got)
	}

	// Nil instruments are no-ops, not crashes: this is what makes the
	// disabled-observer hot path branch-only.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	nc.Add(3)
	ng.Set(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("h", []float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100.5, 1e9} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["h"]
	// Inclusive upper edges: <=1, <=10, <=100, overflow.
	want := []int64{2, 2, 1, 2}
	if !reflect.DeepEqual(snap.Counts, want) {
		t.Fatalf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if snap.Count != 7 {
		t.Fatalf("count = %d, want 7", snap.Count)
	}
	wantSum := 0.5 + 1 + 1.5 + 10 + 99 + 100.5 + 1e9
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", snap.Sum, wantSum)
	}

	if _, err := r.Histogram("bad", nil); err == nil {
		t.Fatal("empty bounds should error")
	}
	if _, err := r.Histogram("bad2", []float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds should error")
	}
	// Re-lookup ignores (even invalid) bounds and returns the original.
	h2, err := r.Histogram("h", nil)
	if err != nil || h2 != h {
		t.Fatalf("re-lookup = (%p, %v), want original %p", h2, err, h)
	}
}

// TestRegistryConcurrency hammers every instrument type from many
// goroutines (including concurrent get-or-create and Snapshot) so the
// race detector can vet the registry; the counter totals must come out
// exact.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(i))
				if h, err := r.Histogram("h", DurationBuckets); err == nil {
					h.Observe(float64(i) * 1e-5)
				}
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Snapshot().Histograms["h"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("vis").Add(12345)
	r.Gauge("peak").Set(0.75)
	h, _ := r.Histogram("secs", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, snap)
	}

	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestSnapshotTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter").Add(2)
	r.Counter("a_counter").Add(1)
	r.Gauge("peak").Set(3.5)
	h, _ := r.Histogram("secs", []float64{1})
	h.Observe(2)
	h.Observe(4)

	var buf bytes.Buffer
	r.Snapshot().Table().Render(&buf)
	out := buf.String()
	for _, want := range []string{"a_counter", "b_counter", "peak", "secs_count", "secs_mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	// Counters render sorted.
	if strings.Index(out, "a_counter") > strings.Index(out, "b_counter") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	if !strings.Contains(out, "3") { // secs_mean = (2+4)/2
		t.Fatalf("histogram mean missing:\n%s", out)
	}
}
