package core

import (
	"repro/internal/grid"
	"repro/internal/xmath"
)

// floatT constrains the kernel element type to the two supported
// precisions (Params.Precision). The tiled kernels are generic over it;
// Go instantiates a fully specialized body per width, so the float64
// path pays nothing for the float32 one existing.
type floatT interface {
	~float32 | ~float64
}

// kbufs holds the precision-dependent kernel buffers of one scratch
// arena: the planar re/im backing, the phasor state, the pixel-tile
// accumulators and the degridder's visibility sums. One instantiation
// per precision lives in every scratch; only the one matching
// Params.Precision ever grows.
type kbufs[F floatT] struct {
	planar []F // 8-plane re/im backing (gridder: vis block, degridder: pixels)

	// Phasor buffers: the gridder's direct (non-recurrence) path uses
	// phRe/phIm per channel; the degridder uses all four per pixel
	// (current and delta phasors).
	phRe, phIm []F
	dRe, dIm   []F

	// acc is the gridder's per-tile accumulator block, 8 floats per
	// pixel of the tile, carried across visibility blocks. vacc is its
	// vector-kernel analogue: 8 accumulators x 4 (float64) or 8
	// (float32) SIMD lanes per pixel, lane-reduced only when the tile
	// finishes (amd64 only).
	acc  []F
	vacc []F

	// phv stages the per-timestep phasor register blocks of the
	// time-blocked vector gridder (one 18-lane block per time step of a
	// visibility block), so a single blocked kernel call can sweep a
	// whole block with the accumulators held in registers.
	phv []F

	// vsum is the degridder's visibility accumulator (8 floats per
	// visibility); partial holds the per-tile partial sums when tiles
	// run in parallel, reduced in tile order for determinism.
	vsum, partial []F

	// reP/imP are heap homes for the gridder tile's planar headers
	// (re-derived views into the item owner's planar block): their
	// addresses cross the any()-based FMA dispatch, which would
	// otherwise move stack copies to the heap once per tile.
	reP, imP [4][]F
}

// scratch holds the per-worker reusable buffers of the kernel hot
// path. A scratch is owned by exactly one worker at a time (handed out
// by Kernels.getScratch / returned by putScratch), so its buffers need
// no synchronization. Buffers grow monotonically to the largest work
// item seen and are reused as-is afterwards — every kernel fully
// overwrites the prefix it slices off, so no zeroing happens between
// items (except the accumulators, which start each tile at zero by
// definition).
type scratch struct {
	vis []xmath.Matrix2 // gather/scatter buffer, one entry per visibility

	// Phase tables stay float64 in both precisions: a float32 phase of
	// magnitude ~1e4 rad would lose ~1e-3 rad to rounding, far beyond
	// the float32 accumulation error class.
	pIdx, pOff []float64

	// Batched sine/cosine staging of the vector tiles: phase arguments
	// gathered into sArg and evaluated in one Kernels.sincosVec call
	// per seeding pass (results land in sSin/sCos, or directly in the
	// float64 phasor buffers). Arguments and results stay float64 in
	// both precisions, like the phase tables above.
	sArg, sSin, sCos []float64

	// sPhd stages the float32 vector gridder's phasor register blocks
	// in float64 (seedOctLanes); whole blocks narrow into b32.phv with
	// one xmath.CvtF64F32 sweep.
	sPhd []float64

	b64 kbufs[float64]
	b32 kbufs[float32]
}

// bufsOf selects the scratch buffer set matching the instantiated
// precision. The type switch folds away at instantiation time.
func bufsOf[F floatT](s *scratch) *kbufs[F] {
	var z F
	switch any(z).(type) {
	case float32:
		return any(&s.b32).(*kbufs[F])
	default:
		return any(&s.b64).(*kbufs[F])
	}
}

// grow returns (*buf)[:n], reallocating when the capacity is too
// small. The returned prefix contains stale data by design.
func grow[F floatT](buf *[]F, n int) []F {
	if cap(*buf) < n {
		*buf = make([]F, n)
	}
	return (*buf)[:n]
}

// growF is grow for the float64-only phase tables.
func growF(buf *[]float64, n int) []float64 { return grow(buf, n) }

// visBuf returns the gather buffer resized to n visibilities.
func (s *scratch) visBuf(n int) []xmath.Matrix2 {
	if cap(s.vis) < n {
		s.vis = make([]xmath.Matrix2, n)
	}
	return s.vis[:n]
}

// getScratch hands out a per-worker scratch from the kernel pool.
func (k *Kernels) getScratch() *scratch {
	return k.scratchPool.Get().(*scratch)
}

// putScratch returns a scratch to the pool for the next worker.
func (k *Kernels) putScratch(s *scratch) {
	k.scratchPool.Put(s)
}

// getSubgrid hands out a pooled subgrid re-anchored at (x0, y0). The
// pixel data is stale: every consumer (the gridder kernel and the
// splitter) overwrites all N~^2 pixels of all four correlation planes,
// so pooled subgrids are never zeroed.
func (k *Kernels) getSubgrid(x0, y0 int) *grid.Subgrid {
	s := k.subgridPool.Get().(*grid.Subgrid)
	s.X0, s.Y0, s.WOffset, s.WPlane = x0, y0, 0, -1
	return s
}

// putSubgrid returns a subgrid to the pool once the adder (or the
// degridder) is done with it.
func (k *Kernels) putSubgrid(s *grid.Subgrid) {
	k.subgridPool.Put(s)
}
