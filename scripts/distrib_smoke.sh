#!/bin/sh
# End-to-end smoke of distributed imaging: run idgdistrib twice with 4
# exec'd idgworker processes — once clean, once with worker 2 killed
# mid-stream by an injected crash at a checkpoint rename — and require
# both runs to print the SAME final grid SHA-256. Workers grid their
# partitions serially and the reduction tree's associativity is fixed,
# so a killed worker that resumes from its checkpoint must not change
# a single output bit; the chaos run must also report exactly one
# restart.
set -eux

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

go build -o "$workdir/idgworker" ./cmd/idgworker
go build -o "$workdir/idgdistrib" ./cmd/idgdistrib

obs="-stations 8 -steps 32 -channels 2 -grid 128 -subgrid 16 -support 4 -margin 16 -aterm-interval 16 -sources 3"

# Clean 4-worker pass.
"$workdir/idgdistrib" -worker-bin "$workdir/idgworker" \
    -workers 4 -axis rows -chunk-items 4 $obs \
    -json >"$workdir/clean.json"

# Chaos pass: worker 2's first attempt dies at its first checkpoint
# rename; the coordinator relaunches it with -resume.
"$workdir/idgdistrib" -worker-bin "$workdir/idgworker" \
    -workers 4 -axis rows -chunk-items 4 $obs \
    -checkpoint-root "$workdir/ckpt" -checkpoint-every 2 \
    -kill 2:before-rename \
    -json >"$workdir/chaos.json"

clean_sha="$(sed -n 's/.*"sha256": "\([0-9a-f]*\)".*/\1/p' "$workdir/clean.json")"
chaos_sha="$(sed -n 's/.*"sha256": "\([0-9a-f]*\)".*/\1/p' "$workdir/chaos.json")"
restarts="$(sed -n 's/.*"restarts": \([0-9]*\).*/\1/p' "$workdir/chaos.json")"

test -n "$clean_sha"
if [ "$clean_sha" != "$chaos_sha" ]; then
    echo "distrib_smoke: killed-and-resumed run diverged: clean $clean_sha chaos $chaos_sha" >&2
    exit 1
fi
if [ "$restarts" != "1" ]; then
    echo "distrib_smoke: expected exactly 1 restart, got '$restarts'" >&2
    exit 1
fi
echo "distrib_smoke: OK (sha256 $clean_sha, 1 worker killed and resumed)"
