package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 123456789.0)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Fatalf("row mangled: %q", lines[2])
	}
	if !strings.Contains(lines[3], "1.235e+08") {
		t.Fatalf("big float not in scientific notation: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2)
	var buf bytes.Buffer
	tb.CSV(&buf)
	want := "a,b\n1,2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestScatterBasic(t *testing.T) {
	us := []float64{0, 1, -1, 0.5}
	vs := []float64{0, 1, -1, -0.5}
	s := Scatter(us, vs, 21, 11)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 11 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != 21 {
			t.Fatalf("line width %d", len(l))
		}
	}
	// The origin point must be marked (center cell).
	if lines[5][10] == ' ' {
		t.Fatal("center point missing")
	}
	// Top-right corner has the (1,1) point.
	if lines[0][20] == ' ' {
		t.Fatal("corner point missing")
	}
}

func TestScatterPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Scatter([]float64{1}, []float64{}, 10, 10) },
		func() { Scatter(nil, nil, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestScatterEmptyDataOK(t *testing.T) {
	s := Scatter(nil, nil, 5, 5)
	if !strings.Contains(s, "\n") {
		t.Fatal("expected raster output")
	}
}

func TestWritePGM(t *testing.T) {
	img := []float64{0, 0.5, 1, -3}
	var buf bytes.Buffer
	if err := WritePGM(&buf, img, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	pix := out[len(out)-4:]
	if pix[0] != 0 || pix[2] != 255 || pix[3] != 0 {
		t.Fatalf("pixels = %v", pix)
	}
}

func TestWritePGMSizeMismatch(t *testing.T) {
	if err := WritePGM(&bytes.Buffer{}, make([]float64, 3), 2, 2); err == nil {
		t.Fatal("expected error")
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####....." {
		t.Fatalf("bar = %q", b)
	}
	if b := Bar(20, 10, 10); b != "##########" {
		t.Fatalf("clipped bar = %q", b)
	}
	if b := Bar(1, 0, 10); b != "" {
		t.Fatalf("degenerate bar = %q", b)
	}
}
